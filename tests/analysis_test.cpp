// Tests for the analysis subsystem: diagnostics engine, delta-cycle race
// detector, elaboration checks, guest-program lint and the IPC frame
// validator — each seeded-defect class must produce its diagnostic, and the
// shipped router example must stay clean (no false positives).
#include <gtest/gtest.h>

#include <string>

#include "analysis/diag.hpp"
#include "analysis/elab.hpp"
#include "analysis/frame.hpp"
#include "analysis/lint.hpp"
#include "analysis/race.hpp"
#include "ipc/message.hpp"
#include "router/testbench.hpp"
#include "rtos/rtos.hpp"
#include "sysc/sysc.hpp"

namespace nisc::analysis {
namespace {

using namespace sysc::time_literals;

// ---------------------------------------------------------------- DiagEngine

TEST(DiagEngineTest, CountsAndRendering) {
  DiagEngine diags;
  diags.report(Severity::Error, "test.rule-a", "first", SourceLoc{"f.s", 3, 0});
  diags.report(Severity::Warning, "test.rule-b", "second");
  EXPECT_EQ(diags.errors(), 1u);
  EXPECT_EQ(diags.warnings(), 1u);
  EXPECT_TRUE(diags.has_rule("test.rule-a"));
  EXPECT_FALSE(diags.has_rule("test.rule-c"));

  std::string text = render_text(diags);
  EXPECT_NE(text.find("f.s:3: error: first [test.rule-a]"), std::string::npos);
  EXPECT_NE(text.find("1 error, 1 warning"), std::string::npos);

  std::string json = render_json(diags);
  EXPECT_NE(json.find("\"rule\":\"test.rule-b\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
}

TEST(DiagEngineTest, PerRuleSuppression) {
  DiagEngine diags;
  diags.suppress_rule("test.noisy");
  diags.report(Severity::Error, "test.noisy", "dropped");
  diags.report(Severity::Error, "test.kept", "kept");
  EXPECT_EQ(diags.diagnostics().size(), 1u);
  EXPECT_EQ(diags.suppressed_count(), 1u);
  EXPECT_TRUE(diags.has_rule("test.kept"));
}

TEST(DiagEngineTest, JsonEscaping) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

// ---------------------------------------------------------------- race detector

// Seeded defect: two processes write the same signal in one delta cycle.
TEST(RaceDetectorTest, SameDeltaDoubleWriteFlagged) {
  sysc::sc_simcontext ctx;
  DiagEngine diags;
  race_monitor monitor(diags);
  race_monitor::scoped_attach attach(ctx, monitor);

  sysc::sc_signal<int> sig("sig");
  auto& a = ctx.create_method("writer_a", [&] { sig.write(1); });
  auto& b = ctx.create_method("writer_b", [&] { sig.write(2); });
  (void)a;
  (void)b;
  ctx.run(1_ns);  // both run in the initialization delta

  ASSERT_TRUE(diags.has_rule("race.write-write"));
  EXPECT_GE(monitor.total_races(), 1u);
  const Diagnostic& d = diags.diagnostics().front();
  EXPECT_EQ(d.severity, Severity::Error);
  EXPECT_NE(d.message.find("writer_a"), std::string::npos);
  EXPECT_NE(d.message.find("writer_b"), std::string::npos);
}

TEST(RaceDetectorTest, ReadAfterWriteSameDeltaFlagged) {
  sysc::sc_simcontext ctx;
  DiagEngine diags;
  race_monitor monitor(diags);
  race_monitor::scoped_attach attach(ctx, monitor);

  sysc::sc_signal<int> sig("sig");
  int seen = 0;
  ctx.create_method("writer", [&] { sig.write(7); });
  ctx.create_method("reader", [&] { seen = sig.read(); });
  ctx.run(1_ns);

  EXPECT_TRUE(diags.has_rule("race.read-after-write"));
  EXPECT_EQ(seen, 0);  // deferred update: reader saw the pre-delta value
}

// The handshake idiom — write in delta N, read in delta N+1 via the
// value-changed notification — must stay clean.
TEST(RaceDetectorTest, CrossDeltaHandshakeClean) {
  sysc::sc_simcontext ctx;
  DiagEngine diags;
  race_monitor monitor(diags);
  race_monitor::scoped_attach attach(ctx, monitor);

  sysc::sc_signal<int> sig("sig");
  int seen = 0;
  auto& writer = ctx.create_method("writer", [&] { sig.write(41); });
  (void)writer;
  auto& reader = ctx.create_method("reader", [&] { seen = sig.read(); });
  reader.make_sensitive(sig.value_changed_event());
  reader.dont_initialize();
  ctx.run(1_ns);

  EXPECT_EQ(seen, 41);
  EXPECT_TRUE(diags.empty()) << render_text(diags);
}

TEST(RaceDetectorTest, SameProcessRereadAndTestbenchAccessClean) {
  sysc::sc_simcontext ctx;
  DiagEngine diags;
  race_monitor monitor(diags);
  race_monitor::scoped_attach attach(ctx, monitor);

  sysc::sc_signal<int> sig("sig");
  sig.write(5);  // testbench write, outside any process: deterministic
  ctx.create_method("worker", [&] {
    sig.write(sig.read() + 1);  // same-process read+write is not a race
  });
  ctx.run(1_ns);
  // Both writes shared the init delta; the worker read the pre-delta value
  // (0) and its deferred write committed last.
  EXPECT_EQ(sig.read(), 1);  // testbench read, outside any process
  EXPECT_TRUE(diags.empty()) << render_text(diags);
}

TEST(RaceDetectorTest, RepeatedRaceReportedOnce) {
  sysc::sc_simcontext ctx;
  DiagEngine diags;
  race_monitor monitor(diags);
  race_monitor::scoped_attach attach(ctx, monitor);

  sysc::sc_signal<int> sig("sig");
  sysc::sc_clock clk("clk", 10_ns);
  int value = 0;
  auto& a = ctx.create_method("writer_a", [&] { sig.write(++value); });
  a.make_sensitive(clk.posedge_event());
  a.dont_initialize();
  auto& b = ctx.create_method("writer_b", [&] { sig.write(-value); });
  b.make_sensitive(clk.posedge_event());
  b.dont_initialize();
  ctx.run(1_us);  // 100 racing clock edges

  std::size_t reports = 0;
  for (const Diagnostic& d : diags.diagnostics()) {
    if (d.rule == "race.write-write") ++reports;
  }
  EXPECT_EQ(reports, 1u);                   // deduplicated per (rule, channel)
  EXPECT_GT(monitor.total_races(), 50u);    // but every occurrence is counted
}

// ---------------------------------------------------------------- elaboration

// Seeded defect: an sc_in left unbound.
TEST(ElabCheckTest, UnboundPortFlagged) {
  sysc::sc_simcontext ctx;
  sysc::sc_signal<int> sig("sig");
  sysc::sc_in<int> bound_port("bound");
  bound_port.bind(sig);
  sysc::sc_in<int> loose_in("loose_in");
  sysc::sc_out<int> loose_out("loose_out");

  DiagEngine diags;
  EXPECT_EQ(check_elaboration(ctx, diags), 2u);
  ASSERT_TRUE(diags.has_rule("elab.unbound-port"));
  std::string text = render_text(diags);
  EXPECT_NE(text.find("loose_in"), std::string::npos);
  EXPECT_NE(text.find("loose_out"), std::string::npos);
  EXPECT_EQ(text.find("'bound'"), std::string::npos);
}

TEST(ElabCheckTest, UnsensitizedIssProcessFlagged) {
  sysc::sc_simcontext ctx;
  sysc::sc_event ev("ev");
  ctx.create_method("orphan", [] {}, sysc::process_kind::IssMethod);
  auto& wired = ctx.create_method("wired", [] {}, sysc::process_kind::IssMethod);
  wired.make_sensitive(ev);
  ctx.create_method("plain", [] {});  // ordinary methods are not checked

  DiagEngine diags;
  check_elaboration(ctx, diags);
  ASSERT_EQ(diags.diagnostics().size(), 1u);
  EXPECT_EQ(diags.diagnostics()[0].rule, "elab.iss-process-not-sensitized");
  EXPECT_NE(diags.diagnostics()[0].message.find("orphan"), std::string::npos);
}

TEST(ElabCheckTest, IssBindingCrossChecks) {
  sysc::sc_simcontext ctx;
  sysc::iss_in<std::uint32_t> from_cpu("from_cpu");
  sysc::iss_out<std::uint32_t> to_cpu("to_cpu");
  sysc::iss_in<std::uint32_t> dangling("dangling");

  std::vector<cosim::BreakpointBinding> bindings;
  bindings.push_back({cosim::BindDirection::IssToSc, "from_cpu", "csum", 0, 0, 4});
  bindings.push_back({cosim::BindDirection::ScToIss, "to_cpu", "word", 0, 0, 4});
  // defect: names a port that does not exist
  bindings.push_back({cosim::BindDirection::IssToSc, "ghost", "x", 0, 0, 4});
  // defect: iss_out pragma targeting an iss_in port
  bindings.push_back({cosim::BindDirection::ScToIss, "from_cpu", "y", 0, 0, 4});

  DiagEngine diags;
  check_iss_bindings(ctx, bindings, diags);
  EXPECT_TRUE(diags.has_rule("elab.iss-port-unbound"));       // 'dangling'
  EXPECT_TRUE(diags.has_rule("elab.binding-unknown-port"));   // 'ghost'
  EXPECT_TRUE(diags.has_rule("elab.binding-direction"));      // 'from_cpu' as out
  std::string text = render_text(diags);
  EXPECT_NE(text.find("dangling"), std::string::npos);
}

// ---------------------------------------------------------------- lint

// Seeded defect: breakpoint on a missing line (pragma with nothing to
// attach to).
TEST(LintTest, BreakpointOnMissingLineFlagged) {
  DiagEngine diags;
  LintResult result = lint_guest_source(
      "_start:\n"
      "    nop\n"
      "    #pragma iss_in(\"hw.port\", value)\n",
      "seed.s", diags);
  EXPECT_FALSE(result.assembled);
  ASSERT_TRUE(diags.has_rule("lint.pragma"));
  EXPECT_EQ(diags.diagnostics()[0].loc.line, 3);
}

TEST(LintTest, UndefinedLabelFlagged) {
  DiagEngine diags;
  LintResult result = lint_guest_source("_start:\n    j nowhere\n", "seed.s", diags);
  EXPECT_FALSE(result.assembled);
  ASSERT_TRUE(diags.has_rule("lint.asm"));
  EXPECT_EQ(diags.diagnostics()[0].loc.line, 2);
  EXPECT_NE(diags.diagnostics()[0].message.find("nowhere"), std::string::npos);
}

// Seeded defect: variable bound to a port but never touched by code.
TEST(LintTest, BoundButUnusedVariableFlagged) {
  DiagEngine diags;
  lint_guest_source(
      "_start:\n"
      "    #pragma iss_in(\"hw.result\", dead)\n"
      "    nop\n"
      "    nop\n"
      "dead: .word 0\n",
      "seed.s", diags);
  EXPECT_TRUE(diags.has_rule("lint.variable-unused"));
  EXPECT_TRUE(diags.has_rule("lint.bind-direction"));  // nop is not a store
}

TEST(LintTest, DuplicateAndConflictingBindingsFlagged) {
  DiagEngine diags;
  lint_guest_source(
      "_start:\n"
      "    la t0, v\n"
      "    #pragma iss_out(\"hw.p\", v)\n"
      "    lw t1, 0(t0)\n"
      "    #pragma iss_out(\"hw.p\", v)\n"
      "    lw t2, 0(t0)\n"
      "    #pragma iss_in(\"hw.p\", v)\n"
      "    sw t1, 0(t0)\n"
      "    nop\n"
      "v: .word 0\n",
      "seed.s", diags);
  EXPECT_TRUE(diags.has_rule("lint.duplicate-binding"));
  EXPECT_TRUE(diags.has_rule("lint.conflicting-binding"));
}

TEST(LintTest, UnreachableBreakpointFlagged) {
  DiagEngine diags;
  lint_guest_source(
      "_start:\n"
      "    la t0, v\n"
      "    j _start\n"
      "    #pragma iss_out(\"hw.p\", v)\n"
      "    lw t1, 0(t0)\n"
      "v: .word 0\n",
      "seed.s", diags);
  EXPECT_TRUE(diags.has_rule("lint.unreachable-breakpoint"));
}

TEST(LintTest, UnknownPortFlaggedAgainstDeclaredList) {
  DiagEngine diags;
  LintOptions options;
  options.known_ports = {"router.to_cpu"};
  lint_guest_source(
      "_start:\n"
      "    la t0, v\n"
      "    #pragma iss_out(\"router.to_gpu\", v)\n"
      "    lw t1, 0(t0)\n"
      "v: .word 0\n",
      "seed.s", diags, options);
  EXPECT_TRUE(diags.has_rule("lint.unknown-port"));
}

TEST(LintTest, NolintCommentSuppressesRuleOnLine) {
  DiagEngine diags;
  lint_guest_source(
      "_start:\n"
      "    #pragma iss_in(\"hw.result\", dead)  # nolint(lint.variable-unused)\n"
      "    sw t0, 0(t1)\n"
      "    nop\n"
      "dead: .word 0\n"
      "t1_base: .word 0\n",
      "seed.s", diags);
  EXPECT_FALSE(diags.has_rule("lint.variable-unused"));
}

TEST(LintTest, LineNumbersSurviveThePragmaFilter) {
  // The defect sits *after* two pragmas; the reported line must refer to
  // the original file, not the filtered one.
  DiagEngine diags;
  lint_guest_source(
      "_start:\n"
      "    la t0, v\n"
      "    #pragma iss_out(\"hw.a\", v)\n"
      "    lw t1, 0(t0)\n"
      "    la t2, w\n"
      "    #pragma iss_in(\"hw.b\", w)\n"
      "    sw t1, 0(t2)\n"
      "    nop\n"
      "    j missing_label\n"
      "v: .word 0\n"
      "w: .word 0\n",
      "seed.s", diags);
  ASSERT_TRUE(diags.has_rule("lint.asm"));
  EXPECT_EQ(diags.diagnostics()[0].loc.line, 9);
}

// ---------------------------------------------------------------- frames

std::vector<std::uint8_t> sample_frames() {
  std::vector<std::uint8_t> bytes;
  for (const ipc::DriverMessage& msg :
       {ipc::DriverMessage::write_u32("router.from_cpu", 0xDEADBEEF),
        ipc::DriverMessage::read_request("router.to_cpu"), ipc::DriverMessage::interrupt(3)}) {
    std::vector<std::uint8_t> frame = ipc::encode_message(msg);
    bytes.insert(bytes.end(), frame.begin(), frame.end());
  }
  return bytes;
}

TEST(FrameCheckTest, WellFormedFramesPass) {
  DiagEngine diags;
  EXPECT_EQ(check_frames(sample_frames(), diags), 3u);
  EXPECT_TRUE(diags.empty()) << render_text(diags);
}

// Seeded defect: truncated frame (buffer ends inside the last body).
TEST(FrameCheckTest, TruncatedFrameFlagged) {
  std::vector<std::uint8_t> bytes = sample_frames();
  bytes.resize(bytes.size() - 3);
  DiagEngine diags;
  EXPECT_EQ(check_frames(bytes, diags), 2u);
  ASSERT_TRUE(diags.has_rule("frame.truncated"));
  EXPECT_EQ(diags.diagnostics()[0].loc.line, 3);  // third frame is the bad one
}

// Seeded defect: oversized frame (corrupt packet_size field).
TEST(FrameCheckTest, OversizedFrameFlagged) {
  std::vector<std::uint8_t> bytes = sample_frames();
  bytes[0] = 0xFF;  // patch the first size field far beyond kMaxMessageBody
  bytes[1] = 0xFF;
  bytes[2] = 0xFF;
  bytes[3] = 0xFF;
  DiagEngine diags;
  EXPECT_EQ(check_frames(bytes, diags), 0u);
  EXPECT_TRUE(diags.has_rule("frame.oversized"));
}

TEST(FrameCheckTest, MalformedBodyFlagged) {
  // A frame whose size field is consistent but whose body is garbage.
  std::vector<std::uint8_t> bytes = {4, 0, 0, 0, 0xEE, 0xEE, 0xEE, 0xEE};
  DiagEngine diags;
  EXPECT_EQ(check_frames(bytes, diags), 0u);
  EXPECT_TRUE(diags.has_rule("frame.malformed"));
}

TEST(FrameCheckTest, EmptyBufferIsClean) {
  DiagEngine diags;
  EXPECT_EQ(check_frames({}, diags), 0u);
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------- clean model

// The shipped router example must produce zero diagnostics end to end: the
// guest programs lint clean, the elaborated design checks clean, and a live
// co-simulated run raises no race reports.
TEST(CleanModelTest, RouterExampleHasNoFindings) {
  DiagEngine diags;

  LintOptions options;
  options.known_ports = {"router.to_cpu", "router.from_cpu"};
  LintResult gdb_guest = lint_guest_source(
      router::word_stream_checksum_source("router.to_cpu", "router.from_cpu"),
      "<builtin:checksum_gdb>", diags, options);
  EXPECT_TRUE(gdb_guest.assembled);
  EXPECT_EQ(gdb_guest.bindings.size(), 2u);

  lint_guest_source(rtos::guest_abi_prelude() + router::bulk_checksum_source(),
                    "<builtin:checksum_driver>", diags);

  race_monitor monitor(diags);
  router::TestbenchConfig config;
  config.scheme = router::Scheme::GdbKernel;
  config.packets_per_producer = 2;
  config.num_producers = 2;
  config.inter_packet_delay = 2_us;
  router::Testbench bench(config);
  race_monitor::scoped_attach attach(bench.context(), monitor);
  check_elaboration(bench.context(), diags);
  bench.run_until_drained(sysc::sc_time(50, sysc::SC_MS));
  EXPECT_GE(bench.report().received, 1u);

  EXPECT_TRUE(diags.empty()) << render_text(diags);
  EXPECT_EQ(monitor.total_races(), 0u);
}

}  // namespace
}  // namespace nisc::analysis
