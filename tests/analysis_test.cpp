// Tests for the analysis subsystem: diagnostics engine, delta-cycle race
// detector, elaboration checks, guest-program lint and the IPC frame
// validator — each seeded-defect class must produce its diagnostic, and the
// shipped router example must stay clean (no false positives).
#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "analysis/absint.hpp"
#include "analysis/callgraph.hpp"
#include "analysis/cfg.hpp"
#include "analysis/dataflow.hpp"
#include "analysis/diag.hpp"
#include "analysis/elab.hpp"
#include "analysis/emit_test.hpp"
#include "analysis/explore.hpp"
#include "analysis/flow.hpp"
#include "analysis/frame.hpp"
#include "analysis/lint.hpp"
#include "analysis/race.hpp"
#include "analysis/summary.hpp"
#include "ipc/message.hpp"
#include "iss/assembler.hpp"
#include "iss/cpu.hpp"
#include "iss/tracer.hpp"
#include "router/testbench.hpp"
#include "rtos/rtos.hpp"
#include "sysc/sysc.hpp"

namespace nisc::analysis {
namespace {

using namespace sysc::time_literals;

// ---------------------------------------------------------------- DiagEngine

TEST(DiagEngineTest, CountsAndRendering) {
  DiagEngine diags;
  diags.report(Severity::Error, "test.rule-a", "first", SourceLoc{"f.s", 3, 0});
  diags.report(Severity::Warning, "test.rule-b", "second");
  EXPECT_EQ(diags.errors(), 1u);
  EXPECT_EQ(diags.warnings(), 1u);
  EXPECT_TRUE(diags.has_rule("test.rule-a"));
  EXPECT_FALSE(diags.has_rule("test.rule-c"));

  std::string text = render_text(diags);
  EXPECT_NE(text.find("f.s:3: error: first [test.rule-a]"), std::string::npos);
  EXPECT_NE(text.find("1 error, 1 warning"), std::string::npos);

  std::string json = render_json(diags);
  EXPECT_NE(json.find("\"rule\":\"test.rule-b\""), std::string::npos);
  EXPECT_NE(json.find("\"errors\":1"), std::string::npos);
}

TEST(DiagEngineTest, PerRuleSuppression) {
  DiagEngine diags;
  diags.suppress_rule("test.noisy");
  diags.report(Severity::Error, "test.noisy", "dropped");
  diags.report(Severity::Error, "test.kept", "kept");
  EXPECT_EQ(diags.diagnostics().size(), 1u);
  EXPECT_EQ(diags.suppressed_count(), 1u);
  EXPECT_TRUE(diags.has_rule("test.kept"));
}

TEST(DiagEngineTest, JsonEscaping) {
  EXPECT_EQ(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

// ---------------------------------------------------------------- race detector

// Seeded defect: two processes write the same signal in one delta cycle.
TEST(RaceDetectorTest, SameDeltaDoubleWriteFlagged) {
  sysc::sc_simcontext ctx;
  DiagEngine diags;
  race_monitor monitor(diags);
  race_monitor::scoped_attach attach(ctx, monitor);

  sysc::sc_signal<int> sig("sig");
  auto& a = ctx.create_method("writer_a", [&] { sig.write(1); });
  auto& b = ctx.create_method("writer_b", [&] { sig.write(2); });
  (void)a;
  (void)b;
  ctx.run(1_ns);  // both run in the initialization delta

  ASSERT_TRUE(diags.has_rule("race.write-write"));
  EXPECT_GE(monitor.total_races(), 1u);
  const Diagnostic& d = diags.diagnostics().front();
  EXPECT_EQ(d.severity, Severity::Error);
  EXPECT_NE(d.message.find("writer_a"), std::string::npos);
  EXPECT_NE(d.message.find("writer_b"), std::string::npos);
}

TEST(RaceDetectorTest, ReadAfterWriteSameDeltaFlagged) {
  sysc::sc_simcontext ctx;
  DiagEngine diags;
  race_monitor monitor(diags);
  race_monitor::scoped_attach attach(ctx, monitor);

  sysc::sc_signal<int> sig("sig");
  int seen = 0;
  ctx.create_method("writer", [&] { sig.write(7); });
  ctx.create_method("reader", [&] { seen = sig.read(); });
  ctx.run(1_ns);

  EXPECT_TRUE(diags.has_rule("race.read-after-write"));
  EXPECT_EQ(seen, 0);  // deferred update: reader saw the pre-delta value
}

// The handshake idiom — write in delta N, read in delta N+1 via the
// value-changed notification — must stay clean.
TEST(RaceDetectorTest, CrossDeltaHandshakeClean) {
  sysc::sc_simcontext ctx;
  DiagEngine diags;
  race_monitor monitor(diags);
  race_monitor::scoped_attach attach(ctx, monitor);

  sysc::sc_signal<int> sig("sig");
  int seen = 0;
  auto& writer = ctx.create_method("writer", [&] { sig.write(41); });
  (void)writer;
  auto& reader = ctx.create_method("reader", [&] { seen = sig.read(); });
  reader.make_sensitive(sig.value_changed_event());
  reader.dont_initialize();
  ctx.run(1_ns);

  EXPECT_EQ(seen, 41);
  EXPECT_TRUE(diags.empty()) << render_text(diags);
}

TEST(RaceDetectorTest, SameProcessRereadAndTestbenchAccessClean) {
  sysc::sc_simcontext ctx;
  DiagEngine diags;
  race_monitor monitor(diags);
  race_monitor::scoped_attach attach(ctx, monitor);

  sysc::sc_signal<int> sig("sig");
  sig.write(5);  // testbench write, outside any process: deterministic
  ctx.create_method("worker", [&] {
    sig.write(sig.read() + 1);  // same-process read+write is not a race
  });
  ctx.run(1_ns);
  // Both writes shared the init delta; the worker read the pre-delta value
  // (0) and its deferred write committed last.
  EXPECT_EQ(sig.read(), 1);  // testbench read, outside any process
  EXPECT_TRUE(diags.empty()) << render_text(diags);
}

TEST(RaceDetectorTest, RepeatedRaceReportedOnce) {
  sysc::sc_simcontext ctx;
  DiagEngine diags;
  race_monitor monitor(diags);
  race_monitor::scoped_attach attach(ctx, monitor);

  sysc::sc_signal<int> sig("sig");
  sysc::sc_clock clk("clk", 10_ns);
  int value = 0;
  auto& a = ctx.create_method("writer_a", [&] { sig.write(++value); });
  a.make_sensitive(clk.posedge_event());
  a.dont_initialize();
  auto& b = ctx.create_method("writer_b", [&] { sig.write(-value); });
  b.make_sensitive(clk.posedge_event());
  b.dont_initialize();
  ctx.run(1_us);  // 100 racing clock edges

  std::size_t reports = 0;
  for (const Diagnostic& d : diags.diagnostics()) {
    if (d.rule == "race.write-write") ++reports;
  }
  EXPECT_EQ(reports, 1u);                   // deduplicated per (rule, channel)
  EXPECT_GT(monitor.total_races(), 50u);    // but every occurrence is counted
}

// ---------------------------------------------------------------- elaboration

// Seeded defect: an sc_in left unbound.
TEST(ElabCheckTest, UnboundPortFlagged) {
  sysc::sc_simcontext ctx;
  sysc::sc_signal<int> sig("sig");
  sysc::sc_in<int> bound_port("bound");
  bound_port.bind(sig);
  sysc::sc_in<int> loose_in("loose_in");
  sysc::sc_out<int> loose_out("loose_out");

  DiagEngine diags;
  EXPECT_EQ(check_elaboration(ctx, diags), 2u);
  ASSERT_TRUE(diags.has_rule("elab.unbound-port"));
  std::string text = render_text(diags);
  EXPECT_NE(text.find("loose_in"), std::string::npos);
  EXPECT_NE(text.find("loose_out"), std::string::npos);
  EXPECT_EQ(text.find("'bound'"), std::string::npos);
}

TEST(ElabCheckTest, UnsensitizedIssProcessFlagged) {
  sysc::sc_simcontext ctx;
  sysc::sc_event ev("ev");
  ctx.create_method("orphan", [] {}, sysc::process_kind::IssMethod);
  auto& wired = ctx.create_method("wired", [] {}, sysc::process_kind::IssMethod);
  wired.make_sensitive(ev);
  ctx.create_method("plain", [] {});  // ordinary methods are not checked

  DiagEngine diags;
  check_elaboration(ctx, diags);
  ASSERT_EQ(diags.diagnostics().size(), 1u);
  EXPECT_EQ(diags.diagnostics()[0].rule, "elab.iss-process-not-sensitized");
  EXPECT_NE(diags.diagnostics()[0].message.find("orphan"), std::string::npos);
}

TEST(ElabCheckTest, IssBindingCrossChecks) {
  sysc::sc_simcontext ctx;
  sysc::iss_in<std::uint32_t> from_cpu("from_cpu");
  sysc::iss_out<std::uint32_t> to_cpu("to_cpu");
  sysc::iss_in<std::uint32_t> dangling("dangling");

  std::vector<cosim::BreakpointBinding> bindings;
  bindings.push_back({cosim::BindDirection::IssToSc, "from_cpu", "csum", 0, 0, 4});
  bindings.push_back({cosim::BindDirection::ScToIss, "to_cpu", "word", 0, 0, 4});
  // defect: names a port that does not exist
  bindings.push_back({cosim::BindDirection::IssToSc, "ghost", "x", 0, 0, 4});
  // defect: iss_out pragma targeting an iss_in port
  bindings.push_back({cosim::BindDirection::ScToIss, "from_cpu", "y", 0, 0, 4});

  DiagEngine diags;
  check_iss_bindings(ctx, bindings, diags);
  EXPECT_TRUE(diags.has_rule("elab.iss-port-unbound"));       // 'dangling'
  EXPECT_TRUE(diags.has_rule("elab.binding-unknown-port"));   // 'ghost'
  EXPECT_TRUE(diags.has_rule("elab.binding-direction"));      // 'from_cpu' as out
  std::string text = render_text(diags);
  EXPECT_NE(text.find("dangling"), std::string::npos);
}

// ---------------------------------------------------------------- lint

// Seeded defect: breakpoint on a missing line (pragma with nothing to
// attach to).
TEST(LintTest, BreakpointOnMissingLineFlagged) {
  DiagEngine diags;
  LintResult result = lint_guest_source(
      "_start:\n"
      "    nop\n"
      "    #pragma iss_in(\"hw.port\", value)\n",
      "seed.s", diags);
  EXPECT_FALSE(result.assembled);
  ASSERT_TRUE(diags.has_rule("lint.pragma"));
  EXPECT_EQ(diags.diagnostics()[0].loc.line, 3);
}

TEST(LintTest, UndefinedLabelFlagged) {
  DiagEngine diags;
  LintResult result = lint_guest_source("_start:\n    j nowhere\n", "seed.s", diags);
  EXPECT_FALSE(result.assembled);
  ASSERT_TRUE(diags.has_rule("lint.asm"));
  EXPECT_EQ(diags.diagnostics()[0].loc.line, 2);
  EXPECT_NE(diags.diagnostics()[0].message.find("nowhere"), std::string::npos);
}

// Seeded defect: variable bound to a port but never touched by code.
TEST(LintTest, BoundButUnusedVariableFlagged) {
  DiagEngine diags;
  lint_guest_source(
      "_start:\n"
      "    #pragma iss_in(\"hw.result\", dead)\n"
      "    nop\n"
      "    nop\n"
      "dead: .word 0\n",
      "seed.s", diags);
  EXPECT_TRUE(diags.has_rule("lint.variable-unused"));
  EXPECT_TRUE(diags.has_rule("lint.bind-direction"));  // nop is not a store
}

TEST(LintTest, DuplicateAndConflictingBindingsFlagged) {
  DiagEngine diags;
  lint_guest_source(
      "_start:\n"
      "    la t0, v\n"
      "    #pragma iss_out(\"hw.p\", v)\n"
      "    lw t1, 0(t0)\n"
      "    #pragma iss_out(\"hw.p\", v)\n"
      "    lw t2, 0(t0)\n"
      "    #pragma iss_in(\"hw.p\", v)\n"
      "    sw t1, 0(t0)\n"
      "    nop\n"
      "v: .word 0\n",
      "seed.s", diags);
  EXPECT_TRUE(diags.has_rule("lint.duplicate-binding"));
  EXPECT_TRUE(diags.has_rule("lint.conflicting-binding"));
}

TEST(LintTest, UnreachableBreakpointFlagged) {
  DiagEngine diags;
  lint_guest_source(
      "_start:\n"
      "    la t0, v\n"
      "    j _start\n"
      "    #pragma iss_out(\"hw.p\", v)\n"
      "    lw t1, 0(t0)\n"
      "v: .word 0\n",
      "seed.s", diags);
  EXPECT_TRUE(diags.has_rule("NL301"));
}

TEST(LintTest, AllAssemblyErrorsReportedInOnePass) {
  DiagEngine diags;
  LintResult result = lint_guest_source(
      "_start:\n"
      "    frobnicate a0\n"
      "x:  nop\n"
      "x:  nop\n"
      "    j nowhere\n",
      "seed.s", diags);
  EXPECT_FALSE(result.assembled);
  std::size_t asm_errors = 0;
  std::size_t redefined = 0;
  for (const Diagnostic& d : diags.diagnostics()) {
    if (d.rule == "lint.asm") ++asm_errors;
    if (d.rule == "lint.label-redefined") ++redefined;
  }
  EXPECT_EQ(asm_errors, 2u);  // frobnicate + nowhere
  EXPECT_EQ(redefined, 1u);
  // Errors arrive sorted by original source line.
  EXPECT_EQ(diags.diagnostics()[0].loc.line, 2);
  EXPECT_EQ(diags.diagnostics()[1].loc.line, 4);
  EXPECT_EQ(diags.diagnostics()[2].loc.line, 5);
}

TEST(LintTest, UnknownPortFlaggedAgainstDeclaredList) {
  DiagEngine diags;
  LintOptions options;
  options.known_ports = {"router.to_cpu"};
  lint_guest_source(
      "_start:\n"
      "    la t0, v\n"
      "    #pragma iss_out(\"router.to_gpu\", v)\n"
      "    lw t1, 0(t0)\n"
      "v: .word 0\n",
      "seed.s", diags, options);
  EXPECT_TRUE(diags.has_rule("lint.unknown-port"));
}

TEST(LintTest, NolintCommentSuppressesRuleOnLine) {
  DiagEngine diags;
  lint_guest_source(
      "_start:\n"
      "    #pragma iss_in(\"hw.result\", dead)  # nolint(lint.variable-unused)\n"
      "    sw t0, 0(t1)\n"
      "    nop\n"
      "dead: .word 0\n"
      "t1_base: .word 0\n",
      "seed.s", diags);
  EXPECT_FALSE(diags.has_rule("lint.variable-unused"));
}

TEST(LintTest, LineNumbersSurviveThePragmaFilter) {
  // The defect sits *after* two pragmas; the reported line must refer to
  // the original file, not the filtered one.
  DiagEngine diags;
  lint_guest_source(
      "_start:\n"
      "    la t0, v\n"
      "    #pragma iss_out(\"hw.a\", v)\n"
      "    lw t1, 0(t0)\n"
      "    la t2, w\n"
      "    #pragma iss_in(\"hw.b\", w)\n"
      "    sw t1, 0(t2)\n"
      "    nop\n"
      "    j missing_label\n"
      "v: .word 0\n"
      "w: .word 0\n",
      "seed.s", diags);
  ASSERT_TRUE(diags.has_rule("lint.asm"));
  EXPECT_EQ(diags.diagnostics()[0].loc.line, 9);
}

// ---------------------------------------------------------------- cfg

TEST(CfgTest, LinearAndBranchEdges) {
  iss::Program prog = iss::assemble(
      "_start:\n"
      "    li t0, 3\n"
      "loop:\n"
      "    addi t0, t0, -1\n"
      "    bnez t0, loop\n"
      "    ebreak\n");
  Cfg cfg = Cfg::build(prog);
  ASSERT_EQ(cfg.blocks().size(), 3u);
  EXPECT_EQ(cfg.entry(), cfg.block_at(prog.entry));

  std::size_t head = cfg.block_at(prog.symbol("_start"));
  std::size_t loop = cfg.block_at(prog.symbol("loop"));
  ASSERT_NE(head, Cfg::npos);
  ASSERT_NE(loop, Cfg::npos);
  ASSERT_EQ(cfg.blocks()[head].succs.size(), 1u);
  EXPECT_EQ(cfg.blocks()[head].succs[0].block, loop);
  EXPECT_EQ(cfg.blocks()[head].succs[0].kind, EdgeKind::FallThrough);

  // The loop block ends in bnez: a Branch back-edge plus a FallThrough.
  std::set<std::pair<std::size_t, EdgeKind>> loop_succs;
  for (const CfgEdge& e : cfg.blocks()[loop].succs) loop_succs.insert({e.block, e.kind});
  EXPECT_TRUE(loop_succs.count({loop, EdgeKind::Branch}) > 0);
  EXPECT_EQ(loop_succs.size(), 2u);
}

TEST(CfgTest, CallReturnAndSummaryEdges) {
  iss::Program prog = iss::assemble(
      "_start:\n"
      "    call leaf\n"
      "    ebreak\n"
      "leaf:\n"
      "    ret\n");
  Cfg cfg = Cfg::build(prog);
  std::size_t caller = cfg.block_at(prog.symbol("_start"));
  std::size_t after = cfg.block_at(prog.symbol("_start") + 4);
  std::size_t leaf = cfg.block_at(prog.symbol("leaf"));
  ASSERT_NE(after, Cfg::npos);

  std::set<std::pair<std::size_t, EdgeKind>> succs;
  for (const CfgEdge& e : cfg.blocks()[caller].succs) succs.insert({e.block, e.kind});
  EXPECT_TRUE(succs.count({leaf, EdgeKind::Call}) > 0);
  EXPECT_TRUE(succs.count({after, EdgeKind::CallFall}) > 0);

  std::set<std::pair<std::size_t, EdgeKind>> ret_succs;
  for (const CfgEdge& e : cfg.blocks()[leaf].succs) ret_succs.insert({e.block, e.kind});
  EXPECT_TRUE(ret_succs.count({after, EdgeKind::Return}) > 0);

  ASSERT_EQ(cfg.call_targets().size(), 1u);
  EXPECT_EQ(cfg.call_targets()[0], prog.symbol("leaf"));
}

TEST(CfgTest, IndirectJumpTargetsOnlyAddressTakenLabels) {
  iss::Program prog = iss::assemble(
      "_start:\n"
      "    la t0, handler\n"
      "    jr t0\n"
      "other:\n"
      "    ebreak\n"
      "handler:\n"
      "    ebreak\n");
  Cfg cfg = Cfg::build(prog);
  std::size_t jr_block = cfg.block_at(prog.symbol("_start"));
  std::size_t handler = cfg.block_at(prog.symbol("handler"));
  std::size_t other = cfg.block_at(prog.symbol("other"));
  ASSERT_EQ(cfg.blocks()[jr_block].succs.size(), 1u);
  EXPECT_EQ(cfg.blocks()[jr_block].succs[0].block, handler);
  EXPECT_EQ(cfg.blocks()[jr_block].succs[0].kind, EdgeKind::Indirect);
  // `other` is dead: only the address-taken label is an indirect target.
  EXPECT_TRUE(cfg.blocks()[other].preds.empty());
}

// ---------------------------------------------------------------- dataflow

TEST(DataflowTest, ReversePostOrderAndReachabilityOnDiamond) {
  iss::Program prog = iss::assemble(
      "_start:\n"
      "    beqz t0, right\n"
      "    nop\n"
      "    j merge\n"
      "right:\n"
      "    nop\n"
      "merge:\n"
      "    ebreak\n"
      "dead:\n"
      "    nop\n");
  Cfg cfg = Cfg::build(prog);
  std::vector<std::size_t> rpo = reverse_post_order(cfg, cfg.entry(), kInterprocEdges);
  ASSERT_EQ(rpo.size(), 4u);  // dead block excluded
  EXPECT_EQ(rpo.front(), cfg.entry());
  EXPECT_EQ(rpo.back(), cfg.block_at(prog.symbol("merge")));

  std::vector<bool> reach = reachable_blocks(cfg, cfg.entry(), kInterprocEdges);
  EXPECT_TRUE(reach[cfg.block_at(prog.symbol("merge"))]);
  EXPECT_FALSE(reach[cfg.block_at(prog.symbol("dead"))]);
}

// ---------------------------------------------------------------- absint

TEST(IntervalTest, JoinWidenAndArithmetic) {
  Interval a = Interval::exact(4);
  EXPECT_TRUE(a.join(Interval::exact(10)));
  EXPECT_EQ(a, Interval::bounded(4, 10));
  EXPECT_FALSE(a.join(Interval::exact(7)));  // already inside

  Interval w = Interval::bounded(0, 10);
  EXPECT_TRUE(w.widen(Interval::bounded(0, 11)));
  EXPECT_EQ(w.hi, Interval::kMax);  // growing bound jumps to the extreme
  EXPECT_EQ(w.lo, 0);               // stable bound survives widening

  EXPECT_EQ(Interval::exact(6).plus(Interval::exact(7)), Interval::exact(13));
  EXPECT_EQ(Interval::bounded(2, 4).minus(Interval::bounded(1, 1)), Interval::bounded(1, 3));
  EXPECT_TRUE(Interval::top().plus(Interval::exact(1)).is_top());
}

TEST(AbsValueTest, JoinTracksInitAndBaseLattices) {
  AbsValue v = AbsValue::exact(5);
  EXPECT_TRUE(v.join(AbsValue::uninit()));
  EXPECT_EQ(v.init, AbsValue::Init::Mixed);

  AbsValue sp = AbsValue::sp_entry();
  EXPECT_TRUE(sp.join(AbsValue::exact(16)));  // sp-relative vs absolute
  EXPECT_EQ(sp.base, AbsValue::Base::None);
  EXPECT_TRUE(sp.range.is_top());
}

TEST(AbsintTest, ConstantsPropagateExactly) {
  iss::Program prog = iss::assemble(
      "_start:\n"
      "    li t0, 40\n"
      "    addi t0, t0, 2\n"
      "    slli t1, t0, 1\n"
      "    ebreak\n");
  Cfg cfg = Cfg::build(prog);
  RegDomain domain;
  DataflowResult<RegDomain> flow = run_forward(cfg, domain, kInterprocEdges, cfg.entry());
  ASSERT_TRUE(flow.out[cfg.entry()].has_value());
  const RegState& out = *flow.out[cfg.entry()];
  EXPECT_EQ(out.regs[5].range, Interval::exact(42));  // t0
  EXPECT_EQ(out.regs[6].range, Interval::exact(84));  // t1
  EXPECT_EQ(out.regs[7].init, AbsValue::Init::Uninit);  // t2 untouched
}

TEST(AbsintTest, StackPointerStaysSymbolic) {
  iss::Program prog = iss::assemble(
      "_start:\n"
      "    addi sp, sp, -16\n"
      "    addi sp, sp, 16\n"
      "    ebreak\n");
  Cfg cfg = Cfg::build(prog);
  RegDomain domain;
  DataflowResult<RegDomain> flow = run_forward(cfg, domain, kInterprocEdges, cfg.entry());
  ASSERT_TRUE(flow.out[cfg.entry()].has_value());
  const AbsValue& sp = flow.out[cfg.entry()]->regs[2];
  EXPECT_EQ(sp.base, AbsValue::Base::Sp);
  EXPECT_EQ(sp.range, Interval::exact(0));  // balanced again
}

TEST(AbsintTest, WideningTerminatesOnInfiniteLoop) {
  iss::Program prog = iss::assemble(
      "_start:\n"
      "    li t0, 0\n"
      "loop:\n"
      "    addi t0, t0, 1\n"
      "    j loop\n");
  Cfg cfg = Cfg::build(prog);
  RegDomain domain;
  DataflowResult<RegDomain> flow = run_forward(cfg, domain, kInterprocEdges, cfg.entry());
  std::size_t loop = cfg.block_at(prog.symbol("loop"));
  ASSERT_TRUE(flow.in[loop].has_value());  // converged despite the cycle
  EXPECT_EQ(flow.in[loop]->regs[5].init, AbsValue::Init::Init);
}

// ---------------------------------------------------------------- flow rules

std::string fixture_path(const std::string& name) {
  return std::string(NISC_SOURCE_DIR "/examples/guests/bad/") + name;
}

std::string read_file_or_die(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Source line of the instruction at `addr`, via the program's code table.
int line_of(const iss::Program& prog, std::uint32_t addr) {
  for (const iss::CodeLoc& loc : prog.code) {
    if (loc.addr == addr) return loc.line;
  }
  return 0;
}

TEST(FlowRuleTest, EveryBadFixtureFlagsItsRule) {
  const struct {
    const char* file;
    const char* rule;
  } cases[] = {
      {"nl301_unreachable_bp.s", "NL301"},   {"nl302_uninit_read.s", "NL302"},
      {"nl303_oob_access.s", "NL303"},       {"nl304_stack_imbalance.s", "NL304"},
      {"nl305_unwritten_binding.s", "NL305"},
  };
  for (const auto& c : cases) {
    DiagEngine diags;
    LintResult result =
        lint_guest_source(read_file_or_die(fixture_path(c.file)), c.file, diags);
    EXPECT_TRUE(result.assembled) << c.file;
    EXPECT_TRUE(diags.has_rule(c.rule)) << c.file << "\n" << render_text(diags);
    // The seeded defect is the only finding class in each fixture.
    for (const Diagnostic& d : diags.diagnostics()) EXPECT_EQ(d.rule, c.rule) << c.file;
  }
}

// NL301 oracle: with a breakpoint armed on the binding label, a bounded run
// halts at the final ebreak and the trace never visits the breakpoint.
TEST(FlowRuleTest, Nl301VerdictAgreesWithExecution) {
  DiagEngine diags;
  LintResult r = lint_guest_source(read_file_or_die(fixture_path("nl301_unreachable_bp.s")),
                                   "nl301", diags);
  ASSERT_TRUE(r.assembled);
  ASSERT_TRUE(diags.has_rule("NL301"));
  ASSERT_EQ(r.bindings.size(), 1u);
  std::uint32_t bp = r.program.symbol(r.bindings[0].label);

  iss::Cpu cpu;
  r.program.load_into(cpu.mem());
  cpu.reset(r.program.entry);
  cpu.add_breakpoint(bp);
  iss::ExecutionTracer tracer(cpu, 256);
  EXPECT_EQ(cpu.run(1000), iss::Halt::Ebreak);  // never the breakpoint
  for (const iss::TraceEntry& e : tracer.entries()) EXPECT_NE(e.pc, bp);
}

// NL302 oracle: replaying the run with a written-register scoreboard finds
// dynamic read-before-write at exactly the statically flagged lines.
TEST(FlowRuleTest, Nl302VerdictAgreesWithExecution) {
  DiagEngine diags;
  LintResult r =
      lint_guest_source(read_file_or_die(fixture_path("nl302_uninit_read.s")), "nl302", diags);
  ASSERT_TRUE(r.assembled);
  std::set<int> flagged_lines;
  for (const Diagnostic& d : diags.diagnostics()) {
    ASSERT_EQ(d.rule, "NL302");
    flagged_lines.insert(d.loc.line);
  }
  ASSERT_FALSE(flagged_lines.empty());

  iss::Cpu cpu;
  r.program.load_into(cpu.mem());
  cpu.reset(r.program.entry);
  std::set<unsigned> written = {0, 2};  // x0 and sp are environment-provided
  std::set<int> dynamic_lines;
  cpu.set_trace_hook([&](std::uint32_t pc, std::uint32_t word) {
    iss::Instr in = iss::decode(word);
    for (std::uint8_t rr : RegDomain::regs_read(in)) {
      if (written.count(rr) == 0) dynamic_lines.insert(line_of(r.program, pc));
    }
    if (in.rd != 0) written.insert(in.rd);
  });
  EXPECT_EQ(cpu.run(1000), iss::Halt::Ebreak);
  EXPECT_EQ(dynamic_lines, flagged_lines);
}

// NL303 oracle: the run must die with a memory fault at the flagged line.
TEST(FlowRuleTest, Nl303VerdictAgreesWithExecution) {
  DiagEngine diags;
  LintResult r =
      lint_guest_source(read_file_or_die(fixture_path("nl303_oob_access.s")), "nl303", diags);
  ASSERT_TRUE(r.assembled);
  ASSERT_TRUE(diags.has_rule("NL303"));
  int flagged_line = diags.diagnostics()[0].loc.line;

  iss::Cpu cpu;  // default 1 MiB map, matching LintOptions::mem_size
  r.program.load_into(cpu.mem());
  cpu.reset(r.program.entry);
  iss::ExecutionTracer tracer(cpu, 16);
  EXPECT_EQ(cpu.run(1000), iss::Halt::MemoryFault);
  ASSERT_FALSE(tracer.entries().empty());
  EXPECT_EQ(line_of(r.program, tracer.entries().back().pc), flagged_line);
}

// NL304 oracle: after the run the stack pointer is off by exactly the
// imbalance the analysis proved (-8 bytes from the 0x10000 it set up).
TEST(FlowRuleTest, Nl304VerdictAgreesWithExecution) {
  DiagEngine diags;
  LintResult r = lint_guest_source(read_file_or_die(fixture_path("nl304_stack_imbalance.s")),
                                   "nl304", diags);
  ASSERT_TRUE(r.assembled);
  ASSERT_TRUE(diags.has_rule("NL304"));
  EXPECT_NE(diags.diagnostics()[0].message.find("-8 bytes"), std::string::npos);

  iss::Cpu cpu;
  r.program.load_into(cpu.mem());
  cpu.reset(r.program.entry);
  EXPECT_EQ(cpu.run(1000), iss::Halt::Ebreak);
  EXPECT_EQ(cpu.reg(2), 0x10000u - 8u);  // the leak the warning promised
}

// NL305 oracle: with flag == 0 the breakpoint is reached while the bound
// variable's store never executed — the port would sample the stale zero.
TEST(FlowRuleTest, Nl305VerdictAgreesWithExecution) {
  DiagEngine diags;
  LintResult r = lint_guest_source(read_file_or_die(fixture_path("nl305_unwritten_binding.s")),
                                   "nl305", diags);
  ASSERT_TRUE(r.assembled);
  ASSERT_TRUE(diags.has_rule("NL305"));
  ASSERT_EQ(r.bindings.size(), 1u);
  std::uint32_t bp = r.program.symbol(r.bindings[0].label);
  std::uint32_t store_addr = 0;
  for (const iss::CodeLoc& loc : r.program.code) {
    if (loc.line == r.bindings[0].statement_line) store_addr = loc.addr;
  }
  ASSERT_NE(store_addr, 0u);

  iss::Cpu cpu;
  r.program.load_into(cpu.mem());
  cpu.reset(r.program.entry);
  cpu.add_breakpoint(bp);
  iss::ExecutionTracer tracer(cpu, 256);
  EXPECT_EQ(cpu.run(1000), iss::Halt::Breakpoint);
  for (const iss::TraceEntry& e : tracer.entries()) EXPECT_NE(e.pc, store_addr);
  EXPECT_EQ(cpu.mem().read32(r.program.symbol(r.bindings[0].variable)), 0u);  // stale
}

TEST(FlowRuleTest, NolintSuppressesFlowRule) {
  DiagEngine diags;
  lint_guest_source(
      "_start:\n"
      "    li t0, 0x200000\n"
      "    lw t1, 0(t0)  # nolint(NL303)\n"
      "    ebreak\n",
      "seed.s", diags);
  EXPECT_TRUE(diags.empty()) << render_text(diags);
}

TEST(FlowRuleTest, FlowOptOutSkipsNlRules) {
  DiagEngine diags;
  LintOptions options;
  options.flow = false;
  lint_guest_source(
      "_start:\n"
      "    li t0, 0x200000\n"
      "    lw t1, 0(t0)\n"
      "    ebreak\n",
      "seed.s", diags, options);
  EXPECT_TRUE(diags.empty()) << render_text(diags);
}

TEST(FlowRuleTest, MemSizeOptionMovesTheMapBoundary) {
  const char* src =
      "_start:\n"
      "    li t0, 0x1000\n"
      "    lw t1, 0(t0)\n"
      "    ebreak\n";
  DiagEngine small;
  LintOptions options;
  options.mem_size = 0x800;
  lint_guest_source(src, "seed.s", small, options);
  EXPECT_TRUE(small.has_rule("NL303"));

  DiagEngine large;
  lint_guest_source(src, "seed.s", large);  // default 1 MiB: in map
  EXPECT_TRUE(large.empty()) << render_text(large);
}

// Zero false positives: every guest program committed under examples/guests/
// must come through the full rule set (flow rules included) clean.
TEST(FlowCleanTest, CommittedGuestsHaveNoFindings) {
  namespace fs = std::filesystem;
  int checked = 0;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(NISC_SOURCE_DIR "/examples/guests")) {
    if (!entry.is_regular_file() || entry.path().extension() != ".s") continue;
    DiagEngine diags;
    LintResult result =
        lint_guest_source(rtos::guest_abi_prelude() + read_file_or_die(entry.path().string()),
                          entry.path().filename().string(), diags);
    EXPECT_TRUE(result.assembled) << entry.path();
    EXPECT_TRUE(diags.empty()) << entry.path() << "\n" << render_text(diags);
    ++checked;
  }
  EXPECT_GE(checked, 2);  // the committed guest corpus
}

// ---------------------------------------------------------------- call graph

TEST(CallGraphTest, FunctionsSitesAndSccsBottomUp) {
  iss::Program prog = iss::assemble(
      "_start:\n"
      "    li a0, 3\n"
      "    call even\n"
      "    ebreak\n"
      "even:\n"
      "    beqz a0, even_yes\n"
      "    addi a0, a0, -1\n"
      "    call odd\n"
      "    ret\n"
      "even_yes:\n"
      "    ret\n"
      "odd:\n"
      "    addi a0, a0, -1\n"
      "    call even\n"
      "    ret\n");
  Cfg cfg = Cfg::build(prog);
  CallGraph cg = CallGraph::build(cfg, prog);

  ASSERT_EQ(cg.functions().size(), 3u);  // _start, even, odd
  std::size_t start_fn = cg.function_at(prog.entry);
  std::size_t even_fn = cg.function_at(prog.symbol("even"));
  std::size_t odd_fn = cg.function_at(prog.symbol("odd"));
  ASSERT_NE(start_fn, CallGraph::npos);
  ASSERT_NE(even_fn, CallGraph::npos);
  ASSERT_NE(odd_fn, CallGraph::npos);
  EXPECT_EQ(cg.entry_function(), start_fn);
  EXPECT_EQ(cg.functions()[even_fn].name, "even");
  EXPECT_EQ(cg.sites().size(), 3u);

  // even <-> odd form one recursive SCC; _start's SCC is not recursive and,
  // with the list in bottom-up (callees-first) order, must come after it.
  EXPECT_EQ(cg.functions()[even_fn].scc, cg.functions()[odd_fn].scc);
  EXPECT_TRUE(cg.scc_is_recursive(cg.functions()[even_fn].scc));
  EXPECT_FALSE(cg.scc_is_recursive(cg.functions()[start_fn].scc));
  EXPECT_GT(cg.functions()[start_fn].scc, cg.functions()[even_fn].scc);

  // Direct call sites resolve to exactly one callee.
  const CallSite& start_site = cg.sites()[cg.functions()[start_fn].call_sites.front()];
  EXPECT_TRUE(start_site.resolved);
  EXPECT_FALSE(start_site.indirect);
  ASSERT_EQ(start_site.callees.size(), 1u);
  EXPECT_EQ(start_site.callees.front(), even_fn);
}

// ---------------------------------------------------------------- summaries

TEST(SummaryTest, SpDeltaAndSpillReloadPreservation) {
  iss::Program prog = iss::assemble(
      "_start:\n"
      "    li sp, 0x1000\n"
      "    call fn\n"
      "    ebreak\n"
      "fn:\n"
      "    addi sp, sp, -16\n"
      "    sw s0, 12(sp)\n"
      "    li s0, 9\n"
      "    lw s0, 12(sp)\n"
      "    addi sp, sp, 16\n"
      "    ret\n");
  Cfg cfg = Cfg::build(prog);
  CallGraph cg = CallGraph::build(cfg, prog);
  SummaryTable table = SummaryTable::compute(cfg, cg, {});
  std::size_t fn = cg.function_at(prog.symbol("fn"));
  ASSERT_NE(fn, CallGraph::npos);
  const FunctionSummary& s = table.of(fn);

  EXPECT_FALSE(s.havoc);
  EXPECT_TRUE(s.reached_ret);
  ASSERT_TRUE(s.sp_delta.has_value());
  EXPECT_EQ(*s.sp_delta, 0);
  // The spill/reload pair restores the entry value of s0 despite the
  // clobbering li in between.
  EXPECT_TRUE(s.exit_regs[8].is_entry_identity(8));
  EXPECT_TRUE(s.exit_regs[2].is_sp_rel());
}

TEST(SummaryTest, EntryReadsFollowValuesAndClobbersAreExact) {
  iss::Program prog = iss::assemble(
      "_start:\n"
      "    li sp, 0x1000\n"
      "    li a0, 1\n"
      "    li a1, 2\n"
      "    call fn\n"
      "    ebreak\n"
      "fn:\n"
      "    mv t0, a0\n"
      "    add a0, t0, a1\n"
      "    li s1, 0\n"
      "    ret\n");
  Cfg cfg = Cfg::build(prog);
  CallGraph cg = CallGraph::build(cfg, prog);
  SummaryTable table = SummaryTable::compute(cfg, cg, {});
  const FunctionSummary& s = table.of(cg.function_at(prog.symbol("fn")));

  // a0 is consumed through the t0 copy; a1 directly. t3 never.
  EXPECT_NE(s.read_of(10), nullptr);
  EXPECT_NE(s.read_of(11), nullptr);
  EXPECT_EQ(s.read_of(28), nullptr);
  // s1 is definitely clobbered to the constant 0 at exit.
  EXPECT_EQ(s.exit_regs[9].base, AbsValue::Base::None);
  EXPECT_EQ(s.exit_regs[9].range, Interval::exact(0));
}

TEST(SummaryTest, RecursiveSccTerminatesWithSoundSummary) {
  iss::Program prog = iss::assemble(
      "_start:\n"
      "    li sp, 0x1000\n"
      "    li a0, 3\n"
      "    call count\n"
      "    ebreak\n"
      "count:\n"
      "    beqz a0, count_done\n"
      "    addi a0, a0, -1\n"
      "    call count\n"
      "count_done:\n"
      "    ret\n");
  Cfg cfg = Cfg::build(prog);
  CallGraph cg = CallGraph::build(cfg, prog);
  SummaryTable table = SummaryTable::compute(cfg, cg, {});  // must terminate
  std::size_t fn = cg.function_at(prog.symbol("count"));
  EXPECT_TRUE(cg.scc_is_recursive(cg.functions()[fn].scc));
  const FunctionSummary& s = table.of(fn);
  // Widening-then-narrowing must converge to a real summary: the recursion
  // is stack-balanced, so the havoc backstop would be a precision bug.
  EXPECT_FALSE(s.havoc);
  EXPECT_TRUE(s.reached_ret);
  ASSERT_TRUE(s.sp_delta.has_value());
  EXPECT_EQ(*s.sp_delta, 0);
  EXPECT_EQ(table.stats().havoc_summaries, 0u);
}

// A mutually recursive pair with real frames: the widening/narrowing SCC
// fixpoint must prove both balanced (exact sp_delta 0) without the havoc
// fallback, and the ISS run confirms the stack comes back level.
TEST(SummaryTest, MutualRecursionConvergesWithoutHavoc) {
  iss::Program prog = iss::assemble(
      "_start:\n"
      "    li sp, 0x10000\n"
      "    li a0, 5\n"
      "    call even\n"
      "    ebreak\n"
      "even:\n"
      "    addi sp, sp, -16\n"
      "    sw ra, 12(sp)\n"
      "    beqz a0, even_base\n"
      "    addi a0, a0, -1\n"
      "    call odd\n"
      "    j even_out\n"
      "even_base:\n"
      "    li a0, 1\n"
      "even_out:\n"
      "    lw ra, 12(sp)\n"
      "    addi sp, sp, 16\n"
      "    ret\n"
      "odd:\n"
      "    addi sp, sp, -16\n"
      "    sw ra, 12(sp)\n"
      "    beqz a0, odd_base\n"
      "    addi a0, a0, -1\n"
      "    call even\n"
      "    j odd_out\n"
      "odd_base:\n"
      "    li a0, 0\n"
      "odd_out:\n"
      "    lw ra, 12(sp)\n"
      "    addi sp, sp, 16\n"
      "    ret\n");
  Cfg cfg = Cfg::build(prog);
  CallGraph cg = CallGraph::build(cfg, prog);
  SummaryTable table = SummaryTable::compute(cfg, cg, {});
  for (const char* name : {"even", "odd"}) {
    const FunctionSummary& s = table.of(cg.function_at(prog.symbol(name)));
    EXPECT_FALSE(s.havoc) << name;
    EXPECT_TRUE(s.reached_ret) << name;
    ASSERT_TRUE(s.sp_delta.has_value()) << name;
    EXPECT_EQ(*s.sp_delta, 0) << name;
    EXPECT_TRUE(s.exit_regs[2].is_sp_rel()) << name;
  }
  EXPECT_EQ(table.stats().havoc_summaries, 0u);
  EXPECT_GT(table.stats().narrowing_iterations, 0u);

  iss::Cpu cpu;  // the oracle: is_even(5) == 0 and sp comes back level
  prog.load_into(cpu.mem());
  cpu.reset(prog.entry);
  EXPECT_EQ(cpu.run(10000), iss::Halt::Ebreak);
  EXPECT_EQ(cpu.reg(10), 0u);
  EXPECT_EQ(cpu.reg(2), 0x10000u);
}

// An indirect call through a two-entry address-taken set: the joined site
// summary keeps only the claims that hold for every target — entry reads
// intersect, exit values join, and the balanced sp survives.
TEST(SummaryTest, IndirectCallJoinsAddressTakenTargets) {
  iss::Program prog = iss::assemble(
      "_start:\n"
      "    li sp, 0x10000\n"
      "    la t0, f_one\n"
      "    la t1, f_two\n"
      "    li a0, 4\n"
      "    li a1, 2\n"
      "    jalr ra, t0, 0\n"
      "    ebreak\n"
      "f_one:\n"
      "    add a0, a0, a1\n"
      "    ret\n"
      "f_two:\n"
      "    addi a0, a0, 1\n"
      "    li s1, 5\n"
      "    ret\n");
  Cfg cfg = Cfg::build(prog);
  CallGraph cg = CallGraph::build(cfg, prog);
  std::size_t site_idx = CallGraph::npos;
  for (std::size_t i = 0; i < cg.sites().size(); ++i) {
    if (cg.sites()[i].indirect) site_idx = i;
  }
  ASSERT_NE(site_idx, CallGraph::npos);
  const CallSite& site = cg.sites()[site_idx];
  ASSERT_TRUE(site.resolved);
  ASSERT_EQ(site.callees.size(), 2u);

  SummaryTable table = SummaryTable::compute(cfg, cg, {});
  const FunctionSummary s = table.at_site(cg, site_idx);
  EXPECT_FALSE(s.havoc);
  EXPECT_TRUE(s.reached_ret);
  ASSERT_TRUE(s.sp_delta.has_value());
  EXPECT_EQ(*s.sp_delta, 0);
  // a0 is read by both targets; a1 only by f_one — the intersection drops it.
  EXPECT_NE(s.read_of(10), nullptr);
  EXPECT_EQ(s.read_of(11), nullptr);
  // s1 is clobbered by f_two but preserved by f_one: the join can neither
  // claim identity nor a definite clobber.
  EXPECT_FALSE(s.exit_regs[9].is_entry_identity(9));
  EXPECT_FALSE(s.exit_regs[9].base == AbsValue::Base::None &&
               s.exit_regs[9].range.is_exact());
}

TEST(SummaryTest, UnresolvedIndirectCallGetsHavoc) {
  iss::Program prog = iss::assemble(
      "_start:\n"
      "    li t0, 64\n"
      "    jalr ra, t0, 0\n"
      "    ebreak\n");
  Cfg cfg = Cfg::build(prog);
  CallGraph cg = CallGraph::build(cfg, prog);
  ASSERT_EQ(cg.sites().size(), 1u);
  EXPECT_TRUE(cg.sites()[0].indirect);
  EXPECT_FALSE(cg.sites()[0].resolved);  // no address-taken code labels
  SummaryTable table = SummaryTable::compute(cfg, cg, {});
  const FunctionSummary& s = table.at_site(cg, 0);
  EXPECT_TRUE(s.havoc);
  EXPECT_TRUE(s.reached_ret);            // havoc assumes an ABI-balanced return
  EXPECT_TRUE(s.exit_regs[2].is_sp_rel());
}

TEST(SummaryTest, ApplySummaryMarksNoReturnCalleeDead) {
  FunctionSummary never;  // default: reached_ret == false
  RegState state;
  state.regs[2] = AbsValue::sp_entry();
  apply_summary(never, state);
  EXPECT_TRUE(state.dead);
}

// ---------------------------------------------------------------- NL31x rules

TEST(FlowRuleTest, EveryInterprocFixtureFlagsItsRule) {
  const struct {
    const char* file;
    const char* rule;
    std::set<std::string> companions;  // additional rules the fixture may fire
  } cases[] = {
      // The context-sensitive clone pass (k = 1) proves the callee-side
      // defect under the guilty call string too, so the call-site rule
      // gains its intraprocedural companion inside the callee clone.
      {"nl311_uninit_call.s", "NL311", {"NL302"}},
      {"nl312_oob_helper.s", "NL312", {"NL303"}},
      {"nl313_cross_stack.s", "NL313", {"NL304"}},  // leak itself is an NL304
      {"nl314_clobbered_sreg.s", "NL314", {}},
      {"nl315_dead_callee_binding.s", "NL315", {}},
      {"nl316_frame_clobber.s", "NL316", {}},
      {"nl317_context_clobber.s", "NL317", {}},
  };
  for (const auto& c : cases) {
    DiagEngine diags;
    LintResult result =
        lint_guest_source(read_file_or_die(fixture_path(c.file)), c.file, diags);
    EXPECT_TRUE(result.assembled) << c.file;
    EXPECT_TRUE(diags.has_rule(c.rule)) << c.file << "\n" << render_text(diags);
    for (const Diagnostic& d : diags.diagnostics()) {
      EXPECT_TRUE(d.rule == c.rule || c.companions.count(d.rule) > 0)
          << c.file << " fired unexpected " << d.rule << ": " << d.message;
    }
  }
}

// NL315 refines NL305: the generic "may be stale" warning must be replaced
// by the dead-writer evidence, not duplicated.
TEST(FlowRuleTest, Nl315ReplacesTheNl305Warning) {
  DiagEngine diags;
  lint_guest_source(read_file_or_die(fixture_path("nl315_dead_callee_binding.s")), "nl315",
                    diags);
  EXPECT_TRUE(diags.has_rule("NL315"));
  EXPECT_FALSE(diags.has_rule("NL305")) << render_text(diags);
}

// NL311 oracle: replaying the run with a written-register scoreboard shows
// the callee really does consume t2 before anything wrote it.
TEST(FlowRuleTest, Nl311VerdictAgreesWithExecution) {
  DiagEngine diags;
  LintResult r = lint_guest_source(read_file_or_die(fixture_path("nl311_uninit_call.s")),
                                   "nl311", diags);
  ASSERT_TRUE(r.assembled);
  ASSERT_TRUE(diags.has_rule("NL311"));
  EXPECT_NE(diags.diagnostics()[0].message.find("register t2"), std::string::npos);

  iss::Cpu cpu;
  r.program.load_into(cpu.mem());
  cpu.reset(r.program.entry);
  std::set<unsigned> written = {0, 2};
  bool t2_read_before_write = false;
  cpu.set_trace_hook([&](std::uint32_t, std::uint32_t word) {
    iss::Instr in = iss::decode(word);
    for (std::uint8_t rr : RegDomain::regs_read(in)) {
      if (rr == 7 && written.count(7) == 0) t2_read_before_write = true;
    }
    if (in.rd != 0) written.insert(in.rd);
  });
  EXPECT_EQ(cpu.run(1000), iss::Halt::Ebreak);
  EXPECT_TRUE(t2_read_before_write);
}

// NL312 oracle: the run dies with a memory fault inside the helper, on the
// store the summary attributed the footprint to — after the first, clean
// call already wrote `out`.
TEST(FlowRuleTest, Nl312VerdictAgreesWithExecution) {
  DiagEngine diags;
  LintResult r = lint_guest_source(read_file_or_die(fixture_path("nl312_oob_helper.s")),
                                   "nl312", diags);
  ASSERT_TRUE(r.assembled);
  ASSERT_TRUE(diags.has_rule("NL312"));

  iss::Cpu cpu;  // default 1 MiB map, matching LintOptions::mem_size
  r.program.load_into(cpu.mem());
  cpu.reset(r.program.entry);
  iss::ExecutionTracer tracer(cpu, 16);
  EXPECT_EQ(cpu.run(1000), iss::Halt::MemoryFault);
  ASSERT_FALSE(tracer.entries().empty());
  EXPECT_EQ(tracer.entries().back().pc, r.program.symbol("store_word"));
  EXPECT_EQ(cpu.mem().read32(r.program.symbol("out")), 1u);  // first call landed
}

// NL313 oracle: the imbalance the cross-call rule promised is exactly what
// the stack pointer shows after the run.
TEST(FlowRuleTest, Nl313VerdictAgreesWithExecution) {
  DiagEngine diags;
  LintResult r = lint_guest_source(read_file_or_die(fixture_path("nl313_cross_stack.s")),
                                   "nl313", diags);
  ASSERT_TRUE(r.assembled);
  ASSERT_TRUE(diags.has_rule("NL313"));

  iss::Cpu cpu;
  r.program.load_into(cpu.mem());
  cpu.reset(r.program.entry);
  EXPECT_EQ(cpu.run(1000), iss::Halt::Ebreak);
  EXPECT_EQ(cpu.reg(2), 0x10000u - 8u);
}

// NL314 oracle: the caller's store after the call writes helper's 0, not
// the 123 the caller put in s1 — the clobber is observable.
TEST(FlowRuleTest, Nl314VerdictAgreesWithExecution) {
  DiagEngine diags;
  LintResult r = lint_guest_source(read_file_or_die(fixture_path("nl314_clobbered_sreg.s")),
                                   "nl314", diags);
  ASSERT_TRUE(r.assembled);
  ASSERT_TRUE(diags.has_rule("NL314"));
  EXPECT_NE(diags.diagnostics()[0].message.find("s1"), std::string::npos);

  iss::Cpu cpu;
  r.program.load_into(cpu.mem());
  cpu.reset(r.program.entry);
  EXPECT_EQ(cpu.run(1000), iss::Halt::Ebreak);
  EXPECT_EQ(cpu.mem().read32(r.program.symbol("out")), 0u);  // not 123
}

// NL315 oracle: the breakpoint is reached, the bound variable is stale, and
// the trace never enters the dead writer.
TEST(FlowRuleTest, Nl315VerdictAgreesWithExecution) {
  DiagEngine diags;
  LintResult r = lint_guest_source(read_file_or_die(fixture_path("nl315_dead_callee_binding.s")),
                                   "nl315", diags);
  ASSERT_TRUE(r.assembled);
  ASSERT_TRUE(diags.has_rule("NL315"));
  ASSERT_EQ(r.bindings.size(), 1u);

  iss::Cpu cpu;
  r.program.load_into(cpu.mem());
  cpu.reset(r.program.entry);
  cpu.add_breakpoint(r.program.symbol(r.bindings[0].label));
  iss::ExecutionTracer tracer(cpu, 256);
  EXPECT_EQ(cpu.run(1000), iss::Halt::Breakpoint);
  EXPECT_EQ(cpu.mem().read32(r.program.symbol(r.bindings[0].variable)), 0u);  // stale
  for (const iss::TraceEntry& e : tracer.entries()) EXPECT_LT(e.pc, r.program.symbol("fill"));
}

// NL316 oracle: halted just before the binding store, the bound variable
// already holds helper's spilled s0 — the frame clobbered it. The defect
// needs the exact per-context sp, so --context-k=0 is the negative control.
TEST(FlowRuleTest, Nl316VerdictAgreesWithExecution) {
  DiagEngine diags;
  LintResult r = lint_guest_source(read_file_or_die(fixture_path("nl316_frame_clobber.s")),
                                   "nl316", diags);
  ASSERT_TRUE(r.assembled);
  ASSERT_TRUE(diags.has_rule("NL316"));
  EXPECT_NE(diags.diagnostics()[0].message.find("'flag'"), std::string::npos);
  ASSERT_EQ(r.bindings.size(), 1u);

  LintOptions joined;  // context-insensitive: the joined sp interval is mute
  joined.context_k = 0;
  DiagEngine diags0;
  lint_guest_source(read_file_or_die(fixture_path("nl316_frame_clobber.s")), "nl316", diags0,
                    joined);
  EXPECT_FALSE(diags0.has_rule("NL316")) << render_text(diags0);

  std::uint32_t store_addr = 0;
  for (const iss::CodeLoc& loc : r.program.code) {
    if (loc.line == r.bindings[0].statement_line) store_addr = loc.addr;
  }
  ASSERT_NE(store_addr, 0u);
  iss::Cpu cpu;
  r.program.load_into(cpu.mem());
  cpu.reset(r.program.entry);
  cpu.add_breakpoint(store_addr);
  EXPECT_EQ(cpu.run(1000), iss::Halt::Breakpoint);
  // The spill slot of the guilty call landed on flag: s0's 0x5AFE is there.
  EXPECT_EQ(cpu.mem().read32(r.program.symbol("flag")), 0x5AFEu);
}

// NL317 oracle: the second caller's 77 never reaches out_b — scramble's 0
// is echoed instead. Context-insensitively the defect is invisible (s1 is
// Mixed at the call), so --context-k=0 is the negative control.
TEST(FlowRuleTest, Nl317VerdictAgreesWithExecution) {
  DiagEngine diags;
  LintResult r = lint_guest_source(read_file_or_die(fixture_path("nl317_context_clobber.s")),
                                   "nl317", diags);
  ASSERT_TRUE(r.assembled);
  ASSERT_TRUE(diags.has_rule("NL317"));
  EXPECT_NE(diags.diagnostics()[0].message.find("s1"), std::string::npos);
  EXPECT_NE(diags.diagnostics()[0].message.find("call string"), std::string::npos);

  LintOptions joined;
  joined.context_k = 0;
  DiagEngine diags0;
  lint_guest_source(read_file_or_die(fixture_path("nl317_context_clobber.s")), "nl317", diags0,
                    joined);
  EXPECT_FALSE(diags0.has_rule("NL317")) << render_text(diags0);

  iss::Cpu cpu;
  r.program.load_into(cpu.mem());
  cpu.reset(r.program.entry);
  EXPECT_EQ(cpu.run(1000), iss::Halt::Ebreak);
  EXPECT_EQ(cpu.mem().read32(r.program.symbol("out_b")), 0u);  // not 77
}

// A helper reached from three contexts with disjoint argument values: only
// the k = 1 clone of the third call string keeps a0 exact through `fetch`,
// so NL312 needs context sensitivity — the joined entry interval spans the
// map boundary and proves nothing. The ISS run faults exactly there.
TEST(FlowRuleTest, ContextClonesSeparateDisjointArguments) {
  // fetch indexes off two arguments, so its own summary cannot pin the
  // address entry-relatively — only a clone with both arguments exact can.
  const std::string source =
      "_start:\n"
      "    li sp, 0x10000\n"
      "    la a0, buf_a\n"
      "    li a1, 0\n"
      "    call fetch\n"
      "    la a0, buf_b\n"
      "    li a1, 4\n"
      "    call fetch\n"
      "    li a0, 0x200000\n"
      "    li a1, 0\n"
      "    call fetch\n"
      "    ebreak\n"
      "fetch:\n"
      "    addi sp, sp, -16\n"
      "    sw ra, 12(sp)\n"
      "    add a0, a0, a1\n"
      "    call peek\n"
      "    lw ra, 12(sp)\n"
      "    addi sp, sp, 16\n"
      "    ret\n"
      "peek:\n"
      "    lw a0, 0(a0)\n"
      "    ret\n"
      "buf_a: .word 7\n"
      "buf_b: .word 9\n"
      "       .word 11\n";
  DiagEngine diags;
  LintResult r = lint_guest_source(source, "ctx3.s", diags);
  ASSERT_TRUE(r.assembled);
  EXPECT_TRUE(diags.has_rule("NL312")) << render_text(diags);

  LintOptions joined;
  joined.context_k = 0;
  DiagEngine diags0;
  lint_guest_source(source, "ctx3.s", diags0, joined);
  EXPECT_FALSE(diags0.has_rule("NL312")) << render_text(diags0);

  iss::Cpu cpu;  // first two calls read the buffers; the third faults in peek
  r.program.load_into(cpu.mem());
  cpu.reset(r.program.entry);
  iss::ExecutionTracer tracer(cpu, 16);
  EXPECT_EQ(cpu.run(1000), iss::Halt::MemoryFault);
  ASSERT_FALSE(tracer.entries().empty());
  EXPECT_EQ(tracer.entries().back().pc, r.program.symbol("peek"));
}

// NL311 through an indirect call joining two targets: the warning fires
// only for registers every candidate consumes (a0); a1 is read by just one
// target, so the intersection keeps the analysis honest about it.
TEST(FlowRuleTest, IndirectNl311UsesTargetIntersection) {
  DiagEngine diags;
  lint_guest_source(
      "_start:\n"
      "    li sp, 0x10000\n"
      "    la t0, f_one\n"
      "    la t1, f_two\n"
      "    jalr ra, t0, 0\n"
      "    ebreak\n"
      "f_one:\n"
      "    add a0, a0, a1\n"
      "    ret\n"
      "f_two:\n"
      "    addi a0, a0, 1\n"
      "    ret\n",
      "indirect.s", diags);
  std::size_t nl311 = 0;
  for (const Diagnostic& d : diags.diagnostics()) {
    if (d.rule != "NL311") continue;
    ++nl311;
    EXPECT_NE(d.message.find("f_one/f_two"), std::string::npos) << d.message;
    EXPECT_NE(d.message.find("register a0"), std::string::npos) << d.message;
  }
  EXPECT_EQ(nl311, 1u) << render_text(diags);  // a0 only, never a1
}

// The --stats counters surface the precision contract: the clean corpus
// guest needs no havoc fallback, narrowing ran, and k = 0 collapses the
// clone table back to one summary per function.
TEST(FlowRuleTest, StatsReportZeroHavocOnCleanGuest) {
  const std::string source =
      read_file_or_die(std::string(NISC_SOURCE_DIR "/examples/guests/checksum_helpers.s"));
  DiagEngine diags;
  LintResult r = lint_guest_source(source, "checksum_helpers.s", diags);
  ASSERT_TRUE(r.assembled);
  EXPECT_GE(r.stats.functions, 3u);
  EXPECT_GT(r.stats.clones, r.stats.functions);  // call strings materialized
  EXPECT_EQ(r.stats.havoc_summaries, 0u);
  EXPECT_GT(r.stats.narrowing_iterations, 0u);
  EXPECT_EQ(r.stats.clone_overflows, 0u);

  LintOptions joined;
  joined.context_k = 0;
  DiagEngine diags0;
  LintResult r0 = lint_guest_source(source, "checksum_helpers.s", diags0, joined);
  EXPECT_EQ(r0.stats.clones, r0.stats.functions);
}

// When the whole-program pass and the per-function context pass derive the
// same defect, exactly one diagnostic comes out, annotated with the call
// provenance.
TEST(FlowRuleTest, InterprocDuplicateMergesIntoOneDiagnostic) {
  DiagEngine diags;
  lint_guest_source(
      "_start:\n"
      "    li sp, 0x10000\n"
      "    call poke\n"
      "    ebreak\n"
      "poke:\n"
      "    li t0, 0x200000\n"
      "    sw zero, 0(t0)\n"
      "    ret\n",
      "seed.s", diags);
  std::size_t nl303 = 0;
  for (const Diagnostic& d : diags.diagnostics()) {
    if (d.rule == "NL303") {
      ++nl303;
      EXPECT_NE(d.message.find("via call from line 3"), std::string::npos) << d.message;
    }
  }
  EXPECT_EQ(nl303, 1u) << render_text(diags);
}

TEST(FlowRuleTest, InterprocOptOutSkipsNl31xRules) {
  LintOptions options;
  options.interproc = false;
  DiagEngine diags;
  LintResult r = lint_guest_source(read_file_or_die(fixture_path("nl311_uninit_call.s")),
                                   "nl311", diags, options);
  ASSERT_TRUE(r.assembled);
  EXPECT_TRUE(diags.empty()) << render_text(diags);
  EXPECT_TRUE(r.summaries_json.empty());
}

// The multi-function clean guest exercises prologue spills, a loop calling
// a helper, and frame release — and must stay finding-free with the
// interprocedural pass on (it is also swept by CommittedGuestsHaveNoFindings).
TEST(FlowRuleTest, ChecksumHelpersGuestIsCleanWithSummaries) {
  DiagEngine diags;
  LintResult r = lint_guest_source(
      read_file_or_die(std::string(NISC_SOURCE_DIR "/examples/guests/checksum_helpers.s")),
      "checksum_helpers.s", diags);
  ASSERT_TRUE(r.assembled);
  EXPECT_TRUE(diags.empty()) << render_text(diags);
  // The summary dump names every function and proves checksum balanced.
  EXPECT_NE(r.summaries_json.find("\"name\":\"checksum\""), std::string::npos);
  EXPECT_NE(r.summaries_json.find("\"name\":\"accumulate\""), std::string::npos);
  EXPECT_NE(r.summaries_json.find("\"sp_delta\":0"), std::string::npos);
}

// Smoke bound only: the context-sensitive interprocedural pass does real
// extra work (clone table, narrowing sweeps), so the old hard 2x wall-time
// ratio is retired — regressions are tracked by bench_lint against the
// committed BENCH_lint.json baseline instead. This test just catches
// runaway blowups (4x plus constant slack for timer noise on loaded CI
// machines).
TEST(FlowPerfTest, InterprocSmokeBound) {
  namespace fs = std::filesystem;
  std::vector<std::string> corpus;
  for (const char* dir : {NISC_SOURCE_DIR "/examples/guests",
                          NISC_SOURCE_DIR "/examples/guests/bad"}) {
    for (const fs::directory_entry& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file() && entry.path().extension() == ".s") {
        corpus.push_back(read_file_or_die(entry.path().string()));
      }
    }
  }
  ASSERT_GE(corpus.size(), 10u);

  auto lint_corpus = [&](bool interproc) {
    LintOptions options;
    options.interproc = interproc;
    auto begin = std::chrono::steady_clock::now();
    for (const std::string& source : corpus) {
      DiagEngine diags;
      lint_guest_source(source, "perf.s", diags, options);
    }
    return std::chrono::steady_clock::now() - begin;
  };
  // Best of three to shrug off scheduler noise.
  auto best_off = lint_corpus(false);
  auto best_on = lint_corpus(true);
  for (int i = 0; i < 2; ++i) {
    best_off = std::min(best_off, lint_corpus(false));
    best_on = std::min(best_on, lint_corpus(true));
  }
  EXPECT_LE(best_on, 4 * best_off + std::chrono::milliseconds(100))
      << "interproc: " << std::chrono::duration_cast<std::chrono::microseconds>(best_on).count()
      << "us, intraproc only: "
      << std::chrono::duration_cast<std::chrono::microseconds>(best_off).count() << "us";
}

// ---------------------------------------------------------------- emit-test

TEST(EmitTestTest, CounterexamplesCompileIntoGtestSources) {
  ModelOptions model_options;
  model_options.recovery = false;
  ProtocolModel model = make_model(ModelId::DriverKernel, model_options);
  EnvOptions env = EnvOptions::faulty();
  ExploreReport report = explore(model, env);
  ASSERT_FALSE(report.violations.empty());  // the faulty environment bites

  std::string tu = emit_regression_tests(report, ModelId::DriverKernel, model_options, env);
  EXPECT_NE(tu.find("#include <gtest/gtest.h>"), std::string::npos);
  EXPECT_NE(tu.find("TEST(EmittedDriverKernel, NL41"), std::string::npos);
  EXPECT_NE(tu.find("ViolationKind::"), std::string::npos);
  EXPECT_NE(tu.find("ipc::FaultPlan plan;"), std::string::npos);
  EXPECT_NE(tu.find("options.recovery = false;"), std::string::npos);
  EXPECT_NE(tu.find("env.corrupting = true;"), std::string::npos);
  // Every counterexample became one TEST, each with its trace as comments.
  std::size_t tests = 0;
  for (std::size_t pos = 0; (pos = tu.find("TEST(", pos)) != std::string::npos; ++pos) ++tests;
  EXPECT_EQ(tests, report.violations.size());
  EXPECT_NE(tu.find("minimal counterexample trace"), std::string::npos);

  EXPECT_EQ(emitted_test_filename(ModelId::DriverKernel), "emitted_driver_kernel_test.cpp");
  EXPECT_EQ(emitted_test_filename(ModelId::GdbWrapper), "emitted_gdb_wrapper_test.cpp");
}

TEST(EmitTestTest, CleanExplorationEmitsDocumentationTest) {
  ModelOptions model_options;
  model_options.recovery = false;
  ExploreReport report = explore(make_model(ModelId::GdbWrapper, model_options), EnvOptions{});
  ASSERT_TRUE(report.clean());
  std::string tu =
      emit_regression_tests(report, ModelId::GdbWrapper, model_options, EnvOptions{});
  EXPECT_NE(tu.find("ExplorationStaysClean"), std::string::npos);
  EXPECT_NE(tu.find("EXPECT_TRUE(report.clean());"), std::string::npos);
}

// ---------------------------------------------------------------- frames

std::vector<std::uint8_t> sample_frames() {
  std::vector<std::uint8_t> bytes;
  for (const ipc::DriverMessage& msg :
       {ipc::DriverMessage::write_u32("router.from_cpu", 0xDEADBEEF),
        ipc::DriverMessage::read_request("router.to_cpu"), ipc::DriverMessage::interrupt(3)}) {
    std::vector<std::uint8_t> frame = ipc::encode_message(msg);
    bytes.insert(bytes.end(), frame.begin(), frame.end());
  }
  return bytes;
}

TEST(FrameCheckTest, WellFormedFramesPass) {
  DiagEngine diags;
  EXPECT_EQ(check_frames(sample_frames(), diags), 3u);
  EXPECT_TRUE(diags.empty()) << render_text(diags);
}

// Seeded defect: truncated frame (buffer ends inside the last body).
TEST(FrameCheckTest, TruncatedFrameFlagged) {
  std::vector<std::uint8_t> bytes = sample_frames();
  bytes.resize(bytes.size() - 3);
  DiagEngine diags;
  EXPECT_EQ(check_frames(bytes, diags), 2u);
  ASSERT_TRUE(diags.has_rule("frame.truncated"));
  EXPECT_EQ(diags.diagnostics()[0].loc.line, 3);  // third frame is the bad one
}

// Seeded defect: oversized frame (corrupt packet_size field).
TEST(FrameCheckTest, OversizedFrameFlagged) {
  std::vector<std::uint8_t> bytes = sample_frames();
  bytes[0] = 0xFF;  // patch the first size field far beyond kMaxMessageBody
  bytes[1] = 0xFF;
  bytes[2] = 0xFF;
  bytes[3] = 0xFF;
  DiagEngine diags;
  EXPECT_EQ(check_frames(bytes, diags), 0u);
  EXPECT_TRUE(diags.has_rule("frame.oversized"));
}

TEST(FrameCheckTest, MalformedBodyFlagged) {
  // A frame whose size field is consistent but whose body is garbage.
  std::vector<std::uint8_t> bytes = {4, 0, 0, 0, 0xEE, 0xEE, 0xEE, 0xEE};
  DiagEngine diags;
  EXPECT_EQ(check_frames(bytes, diags), 0u);
  EXPECT_TRUE(diags.has_rule("frame.malformed"));
}

TEST(FrameCheckTest, EmptyBufferIsClean) {
  DiagEngine diags;
  EXPECT_EQ(check_frames({}, diags), 0u);
  EXPECT_TRUE(diags.empty());
}

// ---------------------------------------------------------------- clean model

// The shipped router example must produce zero diagnostics end to end: the
// guest programs lint clean, the elaborated design checks clean, and a live
// co-simulated run raises no race reports.
TEST(CleanModelTest, RouterExampleHasNoFindings) {
  DiagEngine diags;

  LintOptions options;
  options.known_ports = {"router.to_cpu", "router.from_cpu"};
  LintResult gdb_guest = lint_guest_source(
      router::word_stream_checksum_source("router.to_cpu", "router.from_cpu"),
      "<builtin:checksum_gdb>", diags, options);
  EXPECT_TRUE(gdb_guest.assembled);
  EXPECT_EQ(gdb_guest.bindings.size(), 2u);

  lint_guest_source(rtos::guest_abi_prelude() + router::bulk_checksum_source(),
                    "<builtin:checksum_driver>", diags);

  race_monitor monitor(diags);
  router::TestbenchConfig config;
  config.scheme = router::Scheme::GdbKernel;
  config.packets_per_producer = 2;
  config.num_producers = 2;
  config.inter_packet_delay = 2_us;
  router::Testbench bench(config);
  race_monitor::scoped_attach attach(bench.context(), monitor);
  check_elaboration(bench.context(), diags);
  bench.run_until_drained(sysc::sc_time(50, sysc::SC_MS));
  EXPECT_GE(bench.report().received, 1u);

  EXPECT_TRUE(diags.empty()) << render_text(diags);
  EXPECT_EQ(monitor.total_races(), 0u);
}

}  // namespace
}  // namespace nisc::analysis
