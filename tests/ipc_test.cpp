// Unit tests for nisc::ipc — fds, channels over all transports, and the
// Driver-Kernel message protocol.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "ipc/channel.hpp"
#include "ipc/fd.hpp"
#include "ipc/message.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"

namespace nisc::ipc {
namespace {

using util::RuntimeError;

// ---------------------------------------------------------------- Fd

TEST(FdTest, DefaultInvalid) {
  Fd fd;
  EXPECT_FALSE(fd.valid());
}

TEST(FdTest, MoveTransfersOwnership) {
  ChannelPair pair = make_channel_pair(Transport::Pipe);
  int raw = pair.a.read_fd().get();
  EXPECT_GE(raw, 0);
  Channel moved = std::move(pair.a);
  EXPECT_EQ(moved.read_fd().get(), raw);
  EXPECT_FALSE(pair.a.read_fd().valid());  // NOLINT(bugprone-use-after-move)
}

TEST(FdTest, ReleaseDisownsDescriptor) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  Fd a(fds[0]);
  int raw = a.release();
  EXPECT_EQ(raw, fds[0]);
  EXPECT_FALSE(a.valid());
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---------------------------------------------------------------- Channel

class ChannelTest : public ::testing::TestWithParam<Transport> {};

TEST_P(ChannelTest, RoundTrip) {
  ChannelPair pair = make_channel_pair(GetParam());
  pair.a.send_str("hello");
  std::uint8_t buf[5];
  pair.b.recv_exact(buf);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), 5), "hello");
}

TEST_P(ChannelTest, BothDirections) {
  ChannelPair pair = make_channel_pair(GetParam());
  pair.a.send_str("ping");
  pair.b.send_str("pong");
  std::uint8_t buf[4];
  pair.b.recv_exact(buf);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), 4), "ping");
  pair.a.recv_exact(buf);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), 4), "pong");
}

TEST_P(ChannelTest, ReadableReflectsPendingData) {
  ChannelPair pair = make_channel_pair(GetParam());
  EXPECT_FALSE(pair.b.readable(0));
  pair.a.send_str("x");
  EXPECT_TRUE(pair.b.readable(100));
  std::uint8_t buf[1];
  pair.b.recv_exact(buf);
  EXPECT_FALSE(pair.b.readable(0));
}

TEST_P(ChannelTest, RecvSomeNonBlocking) {
  ChannelPair pair = make_channel_pair(GetParam());
  std::uint8_t buf[16];
  EXPECT_EQ(pair.b.recv_some(buf), 0u);
  pair.a.send_str("abc");
  // Data may need a moment on TCP loopback.
  ASSERT_TRUE(pair.b.readable(1000));
  EXPECT_EQ(pair.b.recv_some(buf), 3u);
}

TEST_P(ChannelTest, PeerCloseRaises) {
  ChannelPair pair = make_channel_pair(GetParam());
  pair.a.close();
  std::uint8_t buf[1];
  EXPECT_THROW(pair.b.recv_exact(buf), RuntimeError);
}

TEST_P(ChannelTest, LargeTransferAcrossThreads) {
  ChannelPair pair = make_channel_pair(GetParam());
  std::vector<std::uint8_t> payload(1 << 20);
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<std::uint8_t>(i * 7);
  std::thread sender([&] { pair.a.send(payload); });
  std::vector<std::uint8_t> received(payload.size());
  pair.b.recv_exact(received);
  sender.join();
  EXPECT_EQ(received, payload);
}

INSTANTIATE_TEST_SUITE_P(AllTransports, ChannelTest,
                         ::testing::Values(Transport::Pipe, Transport::SocketPair, Transport::Tcp),
                         [](const auto& info) { return transport_name(info.param); });

TEST(TcpTest, ListenerReportsEphemeralPort) {
  TcpListener listener(0);
  EXPECT_GT(listener.port(), 0);
}

TEST(TcpTest, ExplicitConnect) {
  TcpListener listener(0);
  Channel client = tcp_connect(listener.port());
  Channel server = listener.accept();
  client.send_str("hi");
  std::uint8_t buf[2];
  server.recv_exact(buf);
  EXPECT_EQ(buf[0], 'h');
  EXPECT_EQ(buf[1], 'i');
}

// ---------------------------------------------------------------- messages

TEST(MessageTest, TypeNames) {
  EXPECT_STREQ(msg_type_name(MsgType::Read), "READ");
  EXPECT_STREQ(msg_type_name(MsgType::Write), "WRITE");
  EXPECT_STREQ(msg_type_name(MsgType::ReadReply), "READ-REPLY");
  EXPECT_STREQ(msg_type_name(MsgType::Interrupt), "INTERRUPT");
}

TEST(MessageTest, EncodeDecodeRoundTripEmpty) {
  DriverMessage msg;
  msg.type = MsgType::Read;
  auto frame = encode_message(msg);
  auto body = std::span<const std::uint8_t>(frame).subspan(4);
  auto decoded = decode_message_body(body);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), msg);
}

TEST(MessageTest, EncodeDecodeRoundTripItems) {
  DriverMessage msg;
  msg.type = MsgType::Write;
  msg.items.push_back({"router.data_in", {1, 2, 3, 4}});
  msg.items.push_back({"router.len_in", {9}});
  auto frame = encode_message(msg);
  auto decoded = decode_message_body(std::span<const std::uint8_t>(frame).subspan(4));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), msg);
}

TEST(MessageTest, WriteU32Helper) {
  auto msg = DriverMessage::write_u32("p", 0xAABBCCDD);
  EXPECT_EQ(msg.type, MsgType::Write);
  ASSERT_EQ(msg.items.size(), 1u);
  EXPECT_EQ(msg.items[0].data, (std::vector<std::uint8_t>{0xDD, 0xCC, 0xBB, 0xAA}));
}

TEST(MessageTest, InterruptHelper) {
  auto msg = DriverMessage::interrupt(7);
  EXPECT_EQ(msg.irq(), 7u);
  auto other = DriverMessage::read_request("p");
  EXPECT_FALSE(other.irq().has_value());
}

TEST(MessageTest, DecodeRejectsTruncatedHeader) {
  std::uint8_t body[] = {0x01};
  EXPECT_FALSE(decode_message_body(body).ok());
}

TEST(MessageTest, DecodeRejectsUnknownType) {
  std::uint8_t body[] = {0x09, 0x00, 0x00};
  EXPECT_FALSE(decode_message_body(body).ok());
}

TEST(MessageTest, DecodeRejectsTruncatedItem) {
  DriverMessage msg = DriverMessage::write_u32("port", 1);
  auto frame = encode_message(msg);
  auto body = std::span<const std::uint8_t>(frame).subspan(4);
  for (std::size_t cut = 3; cut + 1 < body.size(); ++cut) {
    EXPECT_FALSE(decode_message_body(body.subspan(0, cut)).ok()) << "cut=" << cut;
  }
}

TEST(MessageTest, DecodeRejectsTrailingBytes) {
  DriverMessage msg = DriverMessage::read_request("p");
  auto frame = encode_message(msg);
  frame.push_back(0xEE);
  auto body = std::span<const std::uint8_t>(frame).subspan(4);
  EXPECT_FALSE(decode_message_body(body).ok());
}

TEST(MessageTest, SendRecvOverChannel) {
  ChannelPair pair = make_channel_pair(Transport::SocketPair);
  DriverMessage msg;
  msg.type = MsgType::ReadReply;
  msg.items.push_back({"csum_out", {0xEF, 0xBE, 0xAD, 0xDE}});
  send_message(pair.a, msg);
  DriverMessage received = recv_message(pair.b);
  EXPECT_EQ(received, msg);
}

TEST(MessageTest, TryRecvReturnsNulloptWhenIdle) {
  ChannelPair pair = make_channel_pair(Transport::SocketPair);
  EXPECT_FALSE(try_recv_message(pair.b).has_value());
  send_message(pair.a, DriverMessage::interrupt(3));
  ASSERT_TRUE(pair.b.readable(1000));
  auto msg = try_recv_message(pair.b);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->irq(), 3u);
}

TEST(MessageTest, ManyMessagesInFlight) {
  ChannelPair pair = make_channel_pair(Transport::Pipe);
  for (std::uint32_t i = 0; i < 100; ++i) {
    send_message(pair.a, DriverMessage::write_u32("p", i));
  }
  for (std::uint32_t i = 0; i < 100; ++i) {
    DriverMessage m = recv_message(pair.b);
    ASSERT_EQ(m.items.size(), 1u);
    EXPECT_EQ(util::read_le(m.items[0].data, 4), i);
  }
}

TEST(MessageTest, RecvRejectsOversizedFrame) {
  ChannelPair pair = make_channel_pair(Transport::Pipe);
  std::uint8_t bogus[4] = {0xFF, 0xFF, 0xFF, 0x7F};  // ~2 GiB body
  pair.a.send(bogus);
  EXPECT_THROW(recv_message(pair.b), RuntimeError);
}

}  // namespace
}  // namespace nisc::ipc
