// Unit tests for nisc::ipc — fds, channels over all transports, and the
// Driver-Kernel message protocol.
#include <gtest/gtest.h>

#include <pthread.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstring>
#include <thread>

#include "ipc/capture.hpp"
#include "ipc/channel.hpp"
#include "ipc/fault.hpp"
#include "ipc/fd.hpp"
#include "ipc/message.hpp"
#include "ipc/retry.hpp"
#include "util/deadline.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"

namespace nisc::ipc {
namespace {

using util::RuntimeError;

// ---------------------------------------------------------------- Fd

TEST(FdTest, DefaultInvalid) {
  Fd fd;
  EXPECT_FALSE(fd.valid());
}

TEST(FdTest, MoveTransfersOwnership) {
  ChannelPair pair = make_channel_pair(Transport::Pipe);
  int raw = pair.a.read_fd().get();
  EXPECT_GE(raw, 0);
  Channel moved = std::move(pair.a);
  EXPECT_EQ(moved.read_fd().get(), raw);
  EXPECT_FALSE(pair.a.read_fd().valid());  // NOLINT(bugprone-use-after-move)
}

TEST(FdTest, ReleaseDisownsDescriptor) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  Fd a(fds[0]);
  int raw = a.release();
  EXPECT_EQ(raw, fds[0]);
  EXPECT_FALSE(a.valid());
  ::close(fds[0]);
  ::close(fds[1]);
}

// ---------------------------------------------------------------- Channel

class ChannelTest : public ::testing::TestWithParam<Transport> {};

TEST_P(ChannelTest, RoundTrip) {
  ChannelPair pair = make_channel_pair(GetParam());
  pair.a.send_str("hello");
  std::uint8_t buf[5];
  pair.b.recv_exact(buf);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), 5), "hello");
}

TEST_P(ChannelTest, BothDirections) {
  ChannelPair pair = make_channel_pair(GetParam());
  pair.a.send_str("ping");
  pair.b.send_str("pong");
  std::uint8_t buf[4];
  pair.b.recv_exact(buf);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), 4), "ping");
  pair.a.recv_exact(buf);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), 4), "pong");
}

TEST_P(ChannelTest, ReadableReflectsPendingData) {
  ChannelPair pair = make_channel_pair(GetParam());
  EXPECT_FALSE(pair.b.readable(0));
  pair.a.send_str("x");
  EXPECT_TRUE(pair.b.readable(100));
  std::uint8_t buf[1];
  pair.b.recv_exact(buf);
  EXPECT_FALSE(pair.b.readable(0));
}

TEST_P(ChannelTest, RecvSomeNonBlocking) {
  ChannelPair pair = make_channel_pair(GetParam());
  std::uint8_t buf[16];
  EXPECT_EQ(pair.b.recv_some(buf), 0u);
  pair.a.send_str("abc");
  // Data may need a moment on TCP loopback.
  ASSERT_TRUE(pair.b.readable(1000));
  EXPECT_EQ(pair.b.recv_some(buf), 3u);
}

TEST_P(ChannelTest, PeerCloseRaises) {
  ChannelPair pair = make_channel_pair(GetParam());
  pair.a.close();
  std::uint8_t buf[1];
  EXPECT_THROW(pair.b.recv_exact(buf), RuntimeError);
}

TEST_P(ChannelTest, LargeTransferAcrossThreads) {
  ChannelPair pair = make_channel_pair(GetParam());
  std::vector<std::uint8_t> payload(1 << 20);
  for (std::size_t i = 0; i < payload.size(); ++i) payload[i] = static_cast<std::uint8_t>(i * 7);
  std::thread sender([&] { pair.a.send(payload); });
  std::vector<std::uint8_t> received(payload.size());
  pair.b.recv_exact(received);
  sender.join();
  EXPECT_EQ(received, payload);
}

INSTANTIATE_TEST_SUITE_P(AllTransports, ChannelTest,
                         ::testing::Values(Transport::Pipe, Transport::SocketPair, Transport::Tcp),
                         [](const auto& info) { return transport_name(info.param); });

TEST(TcpTest, ListenerReportsEphemeralPort) {
  TcpListener listener(0);
  EXPECT_GT(listener.port(), 0);
}

TEST(TcpTest, ExplicitConnect) {
  TcpListener listener(0);
  Channel client = tcp_connect(listener.port());
  Channel server = listener.accept();
  client.send_str("hi");
  std::uint8_t buf[2];
  server.recv_exact(buf);
  EXPECT_EQ(buf[0], 'h');
  EXPECT_EQ(buf[1], 'i');
}

// ---------------------------------------------------------------- messages

TEST(MessageTest, TypeNames) {
  EXPECT_STREQ(msg_type_name(MsgType::Read), "READ");
  EXPECT_STREQ(msg_type_name(MsgType::Write), "WRITE");
  EXPECT_STREQ(msg_type_name(MsgType::ReadReply), "READ-REPLY");
  EXPECT_STREQ(msg_type_name(MsgType::Interrupt), "INTERRUPT");
}

TEST(MessageTest, EncodeDecodeRoundTripEmpty) {
  DriverMessage msg;
  msg.type = MsgType::Read;
  auto frame = encode_message(msg);
  auto body = std::span<const std::uint8_t>(frame).subspan(4);
  auto decoded = decode_message_body(body);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), msg);
}

TEST(MessageTest, EncodeDecodeRoundTripItems) {
  DriverMessage msg;
  msg.type = MsgType::Write;
  msg.items.push_back({"router.data_in", {1, 2, 3, 4}});
  msg.items.push_back({"router.len_in", {9}});
  auto frame = encode_message(msg);
  auto decoded = decode_message_body(std::span<const std::uint8_t>(frame).subspan(4));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), msg);
}

TEST(MessageTest, WriteU32Helper) {
  auto msg = DriverMessage::write_u32("p", 0xAABBCCDD);
  EXPECT_EQ(msg.type, MsgType::Write);
  ASSERT_EQ(msg.items.size(), 1u);
  EXPECT_EQ(msg.items[0].data, (std::vector<std::uint8_t>{0xDD, 0xCC, 0xBB, 0xAA}));
}

TEST(MessageTest, InterruptHelper) {
  auto msg = DriverMessage::interrupt(7);
  EXPECT_EQ(msg.irq(), 7u);
  auto other = DriverMessage::read_request("p");
  EXPECT_FALSE(other.irq().has_value());
}

TEST(MessageTest, DecodeRejectsTruncatedHeader) {
  std::uint8_t body[] = {0x01};
  EXPECT_FALSE(decode_message_body(body).ok());
}

TEST(MessageTest, DecodeRejectsUnknownType) {
  std::uint8_t body[] = {0x09, 0x00, 0x00};
  EXPECT_FALSE(decode_message_body(body).ok());
}

TEST(MessageTest, DecodeRejectsTruncatedItem) {
  DriverMessage msg = DriverMessage::write_u32("port", 1);
  auto frame = encode_message(msg);
  auto body = std::span<const std::uint8_t>(frame).subspan(4);
  for (std::size_t cut = 3; cut + 1 < body.size(); ++cut) {
    EXPECT_FALSE(decode_message_body(body.subspan(0, cut)).ok()) << "cut=" << cut;
  }
}

TEST(MessageTest, DecodeRejectsTrailingBytes) {
  DriverMessage msg = DriverMessage::read_request("p");
  auto frame = encode_message(msg);
  frame.push_back(0xEE);
  auto body = std::span<const std::uint8_t>(frame).subspan(4);
  EXPECT_FALSE(decode_message_body(body).ok());
}

TEST(MessageTest, SendRecvOverChannel) {
  ChannelPair pair = make_channel_pair(Transport::SocketPair);
  DriverMessage msg;
  msg.type = MsgType::ReadReply;
  msg.items.push_back({"csum_out", {0xEF, 0xBE, 0xAD, 0xDE}});
  send_message(pair.a, msg);
  DriverMessage received = recv_message(pair.b);
  EXPECT_EQ(received, msg);
}

TEST(MessageTest, TryRecvReturnsNulloptWhenIdle) {
  ChannelPair pair = make_channel_pair(Transport::SocketPair);
  EXPECT_FALSE(try_recv_message(pair.b).has_value());
  send_message(pair.a, DriverMessage::interrupt(3));
  ASSERT_TRUE(pair.b.readable(1000));
  auto msg = try_recv_message(pair.b);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->irq(), 3u);
}

TEST(MessageTest, ManyMessagesInFlight) {
  ChannelPair pair = make_channel_pair(Transport::Pipe);
  for (std::uint32_t i = 0; i < 100; ++i) {
    send_message(pair.a, DriverMessage::write_u32("p", i));
  }
  for (std::uint32_t i = 0; i < 100; ++i) {
    DriverMessage m = recv_message(pair.b);
    ASSERT_EQ(m.items.size(), 1u);
    EXPECT_EQ(util::read_le(m.items[0].data, 4), i);
  }
}

TEST(MessageTest, RecvRejectsOversizedFrame) {
  ChannelPair pair = make_channel_pair(Transport::Pipe);
  std::uint8_t bogus[4] = {0xFF, 0xFF, 0xFF, 0x7F};  // ~2 GiB body
  pair.a.send(bogus);
  EXPECT_THROW(recv_message(pair.b), RuntimeError);
}

// ---------------------------------------------------------------- Deadline

TEST(DeadlineTest, NeverIsUnlimited) {
  util::Deadline d = util::Deadline::never();
  EXPECT_TRUE(d.unlimited());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining_ms(), -1);
}

TEST(DeadlineTest, NegativeMeansNever) {
  EXPECT_TRUE(util::Deadline::after_ms(-1).unlimited());
}

TEST(DeadlineTest, ZeroExpiresImmediately) {
  util::Deadline d = util::Deadline::after_ms(0);
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_ms(), 0);
}

TEST(DeadlineTest, RemainingClampsToZeroAfterExpiry) {
  util::Deadline d = util::Deadline::after_ms(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(d.expired());
  EXPECT_EQ(d.remaining_ms(), 0);
}

// ---------------------------------------------------------------- EINTR

// Regression test: poll_readable used to restart the *full* timeout after
// every EINTR, so a steady signal stream made the wait unbounded. With the
// deadline fix it returns once the original timeout elapses no matter how
// often it is interrupted.
TEST(FdTest, PollReadableHonorsDeadlineAcrossEintr) {
  struct sigaction sa = {};
  sa.sa_handler = [](int) {};
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: poll(2) must see EINTR
  struct sigaction old = {};
  ASSERT_EQ(sigaction(SIGUSR1, &sa, &old), 0);

  ChannelPair pair = make_channel_pair(Transport::Pipe);
  pthread_t poller = pthread_self();
  std::atomic<bool> stop{false};
  std::thread pest([&] {
    while (!stop.load()) {
      pthread_kill(poller, SIGUSR1);
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  });

  auto start = std::chrono::steady_clock::now();
  bool ready = poll_readable(pair.b.read_fd(), 150);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  stop.store(true);
  pest.join();
  sigaction(SIGUSR1, &old, nullptr);

  EXPECT_FALSE(ready);
  EXPECT_GE(elapsed, 100);   // did wait roughly the requested timeout
  EXPECT_LT(elapsed, 2000);  // and the signals did not keep re-arming it
}

// ---------------------------------------------------------------- timeouts

TEST(ChannelTimeoutTest, RecvExactTimesOutInsteadOfHanging) {
  ChannelPair pair = make_channel_pair(Transport::SocketPair);
  pair.b.set_io_timeout(50);
  std::uint8_t buf[4];
  try {
    pair.b.recv_exact(buf);
    FAIL() << "recv_exact returned without data";
  } catch (const RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos) << e.what();
  }
}

TEST(ChannelTimeoutTest, AcceptTimesOutWithoutPeer) {
  TcpListener listener(0);
  try {
    (void)listener.accept(50);
    FAIL() << "accept returned without a peer";
  } catch (const RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos) << e.what();
  }
}

// ---------------------------------------------------------------- TCP edges

namespace {
/// Grabs an ephemeral port and releases it so the test can race on it.
std::uint16_t probe_free_port() {
  TcpListener probe(0);
  return probe.port();
}
}  // namespace

TEST(TcpEdgeTest, ConnectBeforeListenRecoveredByRetry) {
  std::uint16_t port = probe_free_port();
  std::thread late_listener([port] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    TcpListener listener(port);
    Channel server = listener.accept(2000);
    std::uint8_t buf[2];
    server.recv_exact(buf);
    server.send(std::span<const std::uint8_t>(buf, 2));  // echo
  });
  RetryPolicy policy;
  policy.max_attempts = 20;
  policy.initial_backoff_ms = 10;
  policy.max_backoff_ms = 50;
  Channel client = tcp_connect(port, policy);  // first attempts are refused
  client.send_str("ok");
  std::uint8_t buf[2];
  client.recv_exact(buf);
  EXPECT_EQ(buf[0], 'o');
  late_listener.join();
}

TEST(TcpEdgeTest, ConnectExhaustsRetriesAndThrows) {
  std::uint16_t port = probe_free_port();  // nobody listens on it
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_ms = 1;
  policy.max_backoff_ms = 5;
  try {
    (void)tcp_connect(port, policy);
    FAIL() << "connect to a dead port succeeded";
  } catch (const RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("attempt"), std::string::npos) << e.what();
  }
}

TEST(TcpEdgeTest, ListenOnPortInUseThrows) {
  TcpListener first(0);
  EXPECT_THROW(TcpListener second(first.port()), RuntimeError);
}

TEST(TcpEdgeTest, PeerCloseMidFrameRaisesPromptly) {
  TcpListener listener(0);
  Channel client = tcp_connect(listener.port());
  Channel server = listener.accept();
  client.send_str("he");  // 2 of the 5 bytes the peer expects
  client.close();         // then vanish mid-frame
  std::uint8_t buf[5];
  auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(server.recv_exact(buf), RuntimeError);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_LT(elapsed, 5000);  // EOF, not a timeout crawl
}

// ---------------------------------------------------------------- Backoff

TEST(RetryTest, BackoffIsDeterministicForASeed) {
  RetryPolicy policy;
  policy.max_attempts = 6;
  Backoff a(policy);
  Backoff b(policy);
  for (int i = 0; i < policy.max_attempts; ++i) {
    EXPECT_EQ(a.next_delay_ms(), b.next_delay_ms()) << "attempt " << i;
  }
}

TEST(RetryTest, BackoffGrowsWithinJitterBoundsAndExhausts) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_ms = 8;
  policy.multiplier = 2.0;
  policy.max_backoff_ms = 40;
  policy.jitter = 0.25;
  Backoff backoff(policy);
  double base = policy.initial_backoff_ms;
  for (int attempt = 1; attempt < policy.max_attempts; ++attempt) {
    int delay = backoff.next_delay_ms();
    double capped = std::min(base, static_cast<double>(policy.max_backoff_ms));
    EXPECT_GE(delay, static_cast<int>(capped)) << "attempt " << attempt;
    EXPECT_LE(delay, policy.max_backoff_ms) << "attempt " << attempt;
    base *= policy.multiplier;
  }
  EXPECT_EQ(backoff.next_delay_ms(), -1);  // budget exhausted
  EXPECT_FALSE(backoff.attempts_left());
}

TEST(RetryTest, SingleAttemptNeverRetries) {
  RetryPolicy policy;
  policy.max_attempts = 1;
  Backoff backoff(policy);
  EXPECT_TRUE(backoff.attempts_left());
  EXPECT_EQ(backoff.next_delay_ms(), -1);
}

// ---------------------------------------------------------------- faults

TEST(FaultTest, CorruptSendFlipsExactlyOneBit) {
  ChannelPair pair = make_channel_pair(Transport::SocketPair);
  auto state = FaultyChannel::install(pair.a, FaultPlan{}.corrupt_send(1, 2));
  pair.a.send_str("hello");
  std::uint8_t buf[5];
  pair.b.recv_exact(buf);
  EXPECT_EQ(buf[0], 'h');
  EXPECT_EQ(buf[2], 'l' ^ 0x01);
  EXPECT_EQ(buf[4], 'o');
  EXPECT_EQ(state->stats().injected[static_cast<int>(FaultKind::CorruptByte)], 1u);
}

TEST(FaultTest, DropSendSwallowsTheTransfer) {
  ChannelPair pair = make_channel_pair(Transport::SocketPair);
  auto state = FaultyChannel::install(pair.a, FaultPlan{}.drop_send(1));
  pair.a.send_str("gone");
  EXPECT_FALSE(pair.b.readable(50));
  pair.a.send_str("here");  // op 2: unaffected
  std::uint8_t buf[4];
  pair.b.recv_exact(buf);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), 4), "here");
  EXPECT_EQ(state->stats().injected[static_cast<int>(FaultKind::Drop)], 1u);
}

TEST(FaultTest, DuplicateSendDeliversTwice) {
  ChannelPair pair = make_channel_pair(Transport::SocketPair);
  FaultyChannel::install(pair.a, FaultPlan{}.duplicate_send(1));
  pair.a.send_str("ab");
  std::uint8_t buf[4];
  pair.b.recv_exact(buf);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), 4), "abab");
}

TEST(FaultTest, TruncateSendKeepsOnlyThePrefix) {
  ChannelPair pair = make_channel_pair(Transport::SocketPair);
  FaultyChannel::install(pair.a, FaultPlan{}.truncate_send(1, 3));
  pair.a.send_str("hello");
  ASSERT_TRUE(pair.b.readable(1000));
  std::uint8_t buf[16];
  EXPECT_EQ(pair.b.recv_some(buf), 3u);
  EXPECT_EQ(std::string(reinterpret_cast<char*>(buf), 3), "hel");
  EXPECT_FALSE(pair.b.readable(50));  // the tail never arrives
}

TEST(FaultTest, DisconnectSendClosesMidFrame) {
  ChannelPair pair = make_channel_pair(Transport::SocketPair);
  FaultyChannel::install(pair.a, FaultPlan{}.disconnect_send(1, 2));
  pair.a.send_str("hello");
  std::uint8_t buf[16];
  ASSERT_TRUE(pair.b.readable(1000));
  EXPECT_EQ(pair.b.recv_some(buf), 2u);       // the cut frame prefix
  EXPECT_THROW(pair.b.recv_exact(buf), RuntimeError);  // then EOF
  EXPECT_THROW(pair.a.send_str("x"), RuntimeError);    // endpoint is dead
}

TEST(FaultTest, ShortReadCapsRecvSome) {
  ChannelPair pair = make_channel_pair(Transport::SocketPair);
  FaultyChannel::install(pair.a, FaultPlan{}.short_reads(1, 2, 2));
  pair.b.send_str("abcdef");
  ASSERT_TRUE(pair.a.readable(1000));
  std::uint8_t buf[16];
  EXPECT_EQ(pair.a.recv_some(buf), 2u);  // op 1 capped
  EXPECT_EQ(pair.a.recv_some(buf), 2u);  // op 2 capped
  EXPECT_EQ(pair.a.recv_some(buf), 2u);  // op 3 uncapped, 2 bytes remain
}

TEST(FaultTest, EagainStormSuppressesReadability) {
  ChannelPair pair = make_channel_pair(Transport::SocketPair);
  auto state = FaultyChannel::install(pair.a, FaultPlan{}.eagain_storm(1, 3));
  pair.b.send_str("x");
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(pair.a.readable(0));  // polls 1..3 suppressed
  EXPECT_FALSE(pair.a.readable(0));
  EXPECT_FALSE(pair.a.readable(0));
  EXPECT_TRUE(pair.a.readable(1000));  // poll 4 sees the data
  EXPECT_EQ(state->stats().injected[static_cast<int>(FaultKind::EagainStorm)], 3u);
}

TEST(FaultTest, MinSizeDefersDropPastAcks) {
  // An RSP "+" ack is one byte; drop_send's default min_size skips it and
  // the armed fault hits the next real frame instead.
  ChannelPair pair = make_channel_pair(Transport::SocketPair);
  auto state = FaultyChannel::install(pair.a, FaultPlan{}.drop_send(1));
  pair.a.send_str("+");
  std::uint8_t ack[1];
  pair.b.recv_exact(ack);
  EXPECT_EQ(ack[0], '+');  // the ack went through
  pair.a.send_str("$S05#b8");
  EXPECT_FALSE(pair.b.readable(50));  // the deferred drop ate the frame
  EXPECT_EQ(state->stats().injected[static_cast<int>(FaultKind::Drop)], 1u);
}

TEST(FaultTest, RepeatingWindowFiresPeriodically) {
  ChannelPair pair = make_channel_pair(Transport::SocketPair);
  FaultPlan plan;
  plan.specs.push_back({FaultKind::Drop, FaultDir::Send, /*nth=*/2, /*every=*/3,
                        /*count=*/1, /*arg=*/0, /*min_size=*/0, /*probability=*/1.0});
  auto state = FaultyChannel::install(pair.a, plan);
  for (int i = 0; i < 9; ++i) pair.a.send_str("ab");  // ops 2, 5, 8 dropped
  EXPECT_EQ(state->stats().injected[static_cast<int>(FaultKind::Drop)], 3u);
  std::uint8_t buf[12];
  pair.b.recv_exact(buf);  // 6 surviving transfers x 2 bytes
  EXPECT_FALSE(pair.b.readable(50));
}

TEST(FaultTest, SeededProbabilityIsReproducible) {
  FaultPlan plan;
  plan.seed = 1234;
  plan.specs.push_back({FaultKind::Drop, FaultDir::Send, /*nth=*/1, /*every=*/1,
                        /*count=*/1, /*arg=*/0, /*min_size=*/0, /*probability=*/0.5});
  auto run = [&plan] {
    ChannelPair pair = make_channel_pair(Transport::SocketPair);
    auto state = FaultyChannel::install(pair.a, plan);
    for (int i = 0; i < 32; ++i) pair.a.send_str("x");
    return state->stats().injected[static_cast<int>(FaultKind::Drop)];
  };
  std::uint64_t first = run();
  EXPECT_GT(first, 0u);
  EXPECT_LT(first, 32u);
  EXPECT_EQ(run(), first);  // same plan, same seed, same faults
}

TEST(FaultTest, StatsCountOperations) {
  ChannelPair pair = make_channel_pair(Transport::SocketPair);
  auto state = FaultyChannel::install(pair.a, FaultPlan{});  // no specs
  pair.a.send_str("abc");
  std::uint8_t buf[3];
  pair.b.send_str("xyz");
  pair.a.recv_exact(buf);
  (void)pair.a.readable(0);
  FaultStats stats = state->stats();
  EXPECT_EQ(stats.send_ops, 1u);
  EXPECT_EQ(stats.recv_ops, 1u);
  EXPECT_GE(stats.polls, 1u);
  EXPECT_EQ(stats.total_injected(), 0u);
}

TEST(FaultTest, WrapReturnsDecoratedChannel) {
  ChannelPair pair = make_channel_pair(Transport::SocketPair);
  Channel wrapped = FaultyChannel::wrap(std::move(pair.a), FaultPlan{}.drop_send(1));
  ASSERT_NE(wrapped.faults(), nullptr);
  wrapped.send_str("zz");
  EXPECT_FALSE(pair.b.readable(50));
}

TEST(FaultTest, KindNamesAreStable) {
  EXPECT_STREQ(fault_kind_name(FaultKind::CorruptByte), "corrupt-byte");
  EXPECT_STREQ(fault_kind_name(FaultKind::Disconnect), "disconnect");
}

// ---------------------------------------------------------------- capture

TEST(CaptureTest, RingKeepsMostRecentTransfers) {
  WireCapture capture("test", 2);
  std::uint8_t byte = 0;
  for (int i = 0; i < 5; ++i) {
    byte = static_cast<std::uint8_t>('a' + i);
    capture.record(CaptureDir::Tx, std::span<const std::uint8_t>(&byte, 1));
  }
  EXPECT_EQ(capture.size(), 2u);
  EXPECT_EQ(capture.total_recorded(), 5u);
}

TEST(CaptureTest, DumpDecodesAsDriverFrames) {
  WireCapture capture("gdb", 8);
  const std::uint8_t tx[] = {'$', '?', '#', '3', 'f'};
  const std::uint8_t rx[] = {'+'};
  capture.record(CaptureDir::Tx, tx);
  capture.record(CaptureDir::Rx, rx);
  std::vector<std::uint8_t> dump = capture.dump();
  std::span<const std::uint8_t> rest(dump);
  std::vector<std::string> ports;
  while (rest.size() >= 4) {
    std::uint32_t size = static_cast<std::uint32_t>(util::read_le(rest, 4));
    rest = rest.subspan(4);
    ASSERT_GE(rest.size(), size);
    auto decoded = decode_message_body(rest.subspan(0, size));
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded.value().items.size(), 1u);
    ports.push_back(decoded.value().items[0].port);
    rest = rest.subspan(size);
  }
  EXPECT_TRUE(rest.empty());
  ASSERT_EQ(ports.size(), 2u);
  EXPECT_EQ(ports[0], "gdb.tx#0");
  EXPECT_EQ(ports[1], "gdb.rx#1");
}

TEST(CaptureTest, RenderTextShowsDirectionAndSize) {
  WireCapture capture("drv", 8);
  const std::uint8_t tx[] = {0xDE, 0xAD};
  capture.record(CaptureDir::Tx, tx);
  std::string text = capture.render_text();
  EXPECT_NE(text.find("tx"), std::string::npos);
  EXPECT_NE(text.find("2"), std::string::npos);
}

TEST(CaptureTest, ChannelRecordsBothDirections) {
  ChannelPair pair = make_channel_pair(Transport::SocketPair);
  auto capture = std::make_shared<WireCapture>("chan", 8);
  pair.a.attach_capture(capture);
  pair.a.send_str("out");
  pair.b.send_str("in!");
  std::uint8_t buf[3];
  pair.a.recv_exact(buf);
  pair.b.recv_exact(buf);
  EXPECT_EQ(capture->size(), 2u);  // one Tx + one Rx on endpoint a
}

TEST(CaptureTest, RingWrapsKeepingTheMostRecentFrames) {
  WireCapture capture("ring", 4);
  for (int i = 0; i < 10; ++i) {
    const std::uint8_t byte = static_cast<std::uint8_t>(i);
    capture.record(CaptureDir::Tx, {&byte, 1});
  }
  EXPECT_EQ(capture.size(), 4u);            // ring capacity
  EXPECT_EQ(capture.total_recorded(), 10u);  // nothing miscounted by eviction

  // The dump must contain exactly the surviving transfers — seq 6..9 — and
  // none of the evicted ones. Pseudo-ports carry the sequence numbers.
  const std::vector<std::uint8_t> dump = capture.dump();
  const std::string text(dump.begin(), dump.end());
  for (int seq = 6; seq <= 9; ++seq) {
    EXPECT_NE(text.find("ring.tx#" + std::to_string(seq)), std::string::npos) << seq;
  }
  EXPECT_EQ(text.find("ring.tx#5"), std::string::npos);
  EXPECT_EQ(text.find("ring.tx#0"), std::string::npos);
}

TEST(CaptureTest, WrappedDumpStillParsesAsFrames) {
  // After heavy wraparound the dump must still be a clean concatenation of
  // whole Driver-Kernel frames (u32 size | body) with nothing left over.
  WireCapture capture("wrap", 3);
  for (int i = 0; i < 50; ++i) {
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(1 + i % 7),
                                      static_cast<std::uint8_t>(i));
    capture.record(i % 2 == 0 ? CaptureDir::Tx : CaptureDir::Rx, payload);
  }
  const std::vector<std::uint8_t> dump = capture.dump();
  std::size_t offset = 0;
  std::size_t frames = 0;
  while (offset + 4 <= dump.size()) {
    const std::uint32_t size = static_cast<std::uint32_t>(dump[offset]) |
                               (dump[offset + 1] << 8) | (dump[offset + 2] << 16) |
                               (static_cast<std::uint32_t>(dump[offset + 3]) << 24);
    ASSERT_LE(offset + 4 + size, dump.size());
    offset += 4 + size;
    ++frames;
  }
  EXPECT_EQ(offset, dump.size());  // ends exactly on a frame boundary
  EXPECT_EQ(frames, 3u);
}

// ---------------------------------------------------------------- observer

namespace {
/// Counts callbacks; deliberately slow so callbacks overlap detach windows.
class CountingObserver final : public WireObserver {
 public:
  void on_wire(CaptureDir, std::span<const std::uint8_t>) override {
    calls.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::yield();
  }
  std::atomic<std::uint64_t> calls{0};
};
}  // namespace

TEST(ObserverRaceTest, AttachDetachWhileTrafficInFlight) {
  // Regression test: attach_observer/observer publish the shared_ptr with
  // atomic_load/atomic_store, so re-attaching a monitor while the peer is
  // mid-traffic (what the supervisor does on recovery) must not race the
  // sender's use of the previous observer. Run under TSan in CI.
  ChannelPair pair = make_channel_pair(Transport::SocketPair);
  auto observer = std::make_shared<CountingObserver>();
  std::atomic<bool> stop{false};

  std::thread sender([&] {
    std::uint8_t byte = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      pair.a.send({&byte, 1});
      ++byte;
    }
  });
  std::thread receiver([&] {
    std::uint8_t buf[256];
    while (true) {
      if (pair.b.readable(20)) {
        pair.b.recv_some(buf);
      } else if (stop.load(std::memory_order_acquire)) {
        return;  // wire is dry and the sender has been told to quit
      }
    }
  });

  for (int i = 0; i < 2000; ++i) {
    pair.a.attach_observer(observer);
    std::this_thread::yield();
    pair.a.attach_observer(nullptr);  // detach mid-traffic
  }
  stop.store(true, std::memory_order_release);
  sender.join();
  receiver.join();

  EXPECT_GT(observer->calls.load(), 0u);  // the tap really saw traffic
  EXPECT_EQ(pair.a.observer(), nullptr);
  pair.a.attach_observer(observer);
  EXPECT_EQ(pair.a.observer(), observer);
}

}  // namespace
}  // namespace nisc::ipc
