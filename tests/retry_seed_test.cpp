// Regression tests for the NISC_FAULT_SEED hook on ipc::default_retry_seed
// (satellite of the checkpoint/recovery PR): the fault-matrix seed must flow
// into the backoff jitter stream so crash-matrix reruns of the same seed get
// bit-identical retry schedules.
//
// default_retry_seed caches its env lookup in a function-local static (one
// process, one seed), so the variable is injected from a global initializer
// that runs before main — this test lives in its own binary for exactly that
// reason and must not be merged into ipc_test.
#include <gtest/gtest.h>

#include <cstdlib>
#include <vector>

#include "ipc/retry.hpp"

namespace nisc::ipc {
namespace {

constexpr std::uint64_t kGolden = 0x9E3779B97F4A7C15ULL;
constexpr unsigned long long kEnvSeed = 1234;

const bool g_env_injected = [] {
  ::setenv("NISC_FAULT_SEED", "1234", /*overwrite=*/1);
  return true;
}();

std::vector<int> schedule(const RetryPolicy& policy) {
  Backoff backoff(policy);
  std::vector<int> delays;
  for (int delay = backoff.next_delay_ms(); delay >= 0; delay = backoff.next_delay_ms()) {
    delays.push_back(delay);
  }
  return delays;
}

TEST(RetrySeedTest, EnvSeedIsMixedIntoTheDefaultSeed) {
  ASSERT_TRUE(g_env_injected);
  const std::uint64_t expected = kGolden ^ (kEnvSeed * 0xBF58476D1CE4E5B9ULL);
  EXPECT_EQ(default_retry_seed(), expected);
  EXPECT_NE(default_retry_seed(), kGolden);  // env really took effect
}

TEST(RetrySeedTest, DefaultPolicyPicksUpTheEnvSeed) {
  const RetryPolicy policy;  // seed defaults to default_retry_seed()
  EXPECT_EQ(policy.seed, default_retry_seed());
}

TEST(RetrySeedTest, SeedIsCachedForTheLifetimeOfTheProcess) {
  const std::uint64_t before = default_retry_seed();
  ::setenv("NISC_FAULT_SEED", "9999", /*overwrite=*/1);
  EXPECT_EQ(default_retry_seed(), before);  // mid-run setenv must not split schedules
  ::setenv("NISC_FAULT_SEED", "1234", /*overwrite=*/1);
}

TEST(RetrySeedTest, SameSeedSameSchedule) {
  RetryPolicy policy;
  policy.max_attempts = 8;
  policy.initial_backoff_ms = 4;
  policy.max_backoff_ms = 1000;
  const std::vector<int> first = schedule(policy);
  const std::vector<int> second = schedule(policy);
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.size(), 7u);  // max_attempts - 1 delays
}

TEST(RetrySeedTest, DifferentSeedsDecorrelateJitter) {
  RetryPolicy a;
  a.max_attempts = 16;
  a.initial_backoff_ms = 64;
  a.max_backoff_ms = 1 << 20;  // keep the exponential curve un-clamped
  a.jitter = 1.0;
  RetryPolicy b = a;
  b.seed = a.seed ^ 0x1ULL;
  EXPECT_NE(schedule(a), schedule(b));
}

}  // namespace
}  // namespace nisc::ipc
