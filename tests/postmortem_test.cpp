// Cross-process observability end-to-end (DESIGN.md §10.5-10.6): a real
// supervised session with tracing + the obs side-band on, checked two ways:
//  * the happy path — the merged Chrome trace the supervisor writes after a
//    clean run correlates supervisor device spans with worker ecall spans
//    (flow arrows across pids, clock-rebased timestamps, sim_ps stamps);
//  * the crash path — a SIGKILL mid-run leaves a complete flight-recorder
//    bundle (merged trace, both metrics dumps, wire capture, checkpoint
//    describe + bytes, findings, manifest) before the worker respawns.
//
// Like the crash matrix, this forks the real cosim_issworker binary, so the
// suite runs RUN_SERIAL with a generous timeout.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <iterator>
#include <map>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "analysis/diag.hpp"
#include "analysis/protocol.hpp"
#include "cosim/checkpoint.hpp"
#include "cosim/supervisor.hpp"
#include "cosim/worker.hpp"
#include "iss/cpu.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace nisc::cosim {
namespace {

// Same interaction mix as the crash matrix: device writes, synchronous
// reads, periodic interrupts — every path that emits correlated spans.
constexpr const char* kGuestSource = R"(
_start:
    li   s0, 0
    li   s1, 40
loop:
    slli a0, s0, 2
    addi a1, a0, 7
    addi a0, a0, 0x200
    li   a7, 1
    ecall
    andi t1, s0, 3
    bnez t1, no_irq
    li   a0, 0x100
    andi a1, s0, 31
    li   a7, 1
    ecall
no_irq:
    li   a0, 0x104
    li   a7, 2
    ecall
    li   a7, 3
    ecall
    addi s0, s0, 1
    bne  s0, s1, loop
    li   a0, 0
    li   a7, 0
    ecall
)";

SupervisorConfig obs_config(const std::string& label) {
  SupervisorConfig config;
  config.worker_path = NISC_WORKER_BIN;
  config.worker.guest_source = kGuestSource;
  config.worker.mem_size = 1 << 16;
  config.worker.ckpt_every = 64;
  config.worker.trace = true;
  config.obs_export = true;
  config.session_label = label;
  config.hang_timeout_ms = 5000;
  return config;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

class PostmortemTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::clear_trace(); }
  void TearDown() override {
    obs::disable_tracing();
    obs::clear_trace();
  }
};

TEST_F(PostmortemTest, MergedTraceCorrelatesWorkerAndSupervisor) {
  obs::enable_tracing();
  const std::string out = ::testing::TempDir() + "pm-merged.json";
  SupervisorConfig config = obs_config("pmtest");
  config.trace_out = out;
  Supervisor supervisor(std::move(config));
  const SupervisorOutcome outcome = supervisor.run();
  obs::disable_tracing();

  EXPECT_EQ(outcome.guest_halt, static_cast<std::uint8_t>(iss::Halt::Ecall));
  EXPECT_EQ(outcome.recoveries, 0);
  // The final pre-Done pull populated the worker-side exports.
  EXPECT_FALSE(outcome.worker_trace.threads.empty());
  const util::JsonValue wm = util::parse_json(outcome.worker_metrics_json);
  EXPECT_EQ(wm.at("schema").as_int(), 1);
  // Steady clocks of two processes on one host: the measured offset is
  // microseconds-ish, never minutes. 10s is a generous sanity bound.
  EXPECT_LT(std::llabs(static_cast<long long>(outcome.clock_offset_ns)), 10'000'000'000LL);

  const util::JsonValue doc = util::parse_json(slurp(out));
  const util::JsonArray& events = doc.at("traceEvents").as_array();

  std::map<std::string, unsigned> process_names;
  std::map<std::string, std::set<unsigned>> flow_pids;   // flow id -> pids seen
  std::map<std::string, std::set<std::string>> flow_phases;
  int worker_spans = 0, sup_spans = 0;
  for (const util::JsonValue& e : events) {
    const std::string& ph = e.at("ph").as_string();
    const unsigned pid = static_cast<unsigned>(e.at("pid").as_uint());
    if (ph == "M" && e.at("name").as_string() == "process_name") {
      process_names[e.at("args").at("name").as_string()] = pid;
    }
    if (ph == "s" || ph == "t" || ph == "f") {
      flow_pids[e.at("id").as_string()].insert(pid);
      flow_phases[e.at("id").as_string()].insert(ph);
    }
    if (ph == "B" && e.at("name").as_string() == "worker.ecall.dev_write") {
      ++worker_spans;
      // S2: the worker run loop publishes cycles * clock_period_ps, so its
      // spans carry simulated time.
      EXPECT_NE(e.at("args").find("sim_ps"), nullptr);
    }
    if (ph == "B" && e.at("name").as_string() == "sup.dev_write") ++sup_spans;
  }
  ASSERT_EQ(process_names.size(), 2u);
  ASSERT_NE(process_names.find("pmtest/supervisor"), process_names.end());
  ASSERT_NE(process_names.find("pmtest/worker"), process_names.end());
  EXPECT_NE(process_names["pmtest/supervisor"], process_names["pmtest/worker"]);
  EXPECT_EQ(worker_spans, 40 + 10);  // data writes + irq triggers
  EXPECT_EQ(sup_spans, 40 + 10);

  // Correlation: flows that both start ('s', worker) and finish ('f',
  // supervisor) span the two pids — the Perfetto arrows.
  int cross_process_flows = 0;
  for (const auto& [id, pids] : flow_pids) {
    if (pids.size() < 2) continue;
    const std::set<std::string>& phases = flow_phases[id];
    if (phases.count("s") && phases.count("f")) ++cross_process_flows;
  }
  EXPECT_GE(cross_process_flows, 40);
}

TEST_F(PostmortemTest, SigkillMidRunWritesPostmortemBundle) {
  obs::enable_tracing();
  const std::string pm_dir = ::testing::TempDir() + "pm-bundles";
  SupervisorConfig config = obs_config("pmkill");
  config.postmortem_dir = pm_dir;
  // Kill past the second checkpoint (ckpt_every=64) so at least one
  // ObsReport pull has landed before the crash: the bundle then carries
  // real worker-side trace data, not just supervisor state.
  config.fault_plan = {{FaultKind::CrashAt, 150}};
  Supervisor supervisor(std::move(config));
  const SupervisorOutcome outcome = supervisor.run();
  obs::disable_tracing();

  EXPECT_EQ(outcome.recoveries, 1);
  EXPECT_EQ(outcome.guest_halt, static_cast<std::uint8_t>(iss::Halt::Ecall));
  ASSERT_EQ(outcome.postmortem_paths.size(), 1u);
  const std::string& bundle = outcome.postmortem_paths[0];
  EXPECT_NE(bundle.find("pmkill-pm1"), std::string::npos);

  // Every bundle file exists and the structured ones parse.
  const util::JsonValue trace = util::parse_json(slurp(bundle + "/trace.json"));
  EXPECT_FALSE(trace.at("traceEvents").as_array().empty());
  const util::JsonValue metrics = util::parse_json(slurp(bundle + "/metrics.json"));
  EXPECT_EQ(metrics.at("schema").as_int(), 1);
  util::parse_json(slurp(bundle + "/worker_metrics.json"));  // "{}" before first pull is fine
  EXPECT_FALSE(slurp(bundle + "/wire.capture").empty());
  EXPECT_FALSE(slurp(bundle + "/checkpoint.txt").empty());
  // A checkpoint existed at kill time (instret 150 > ckpt_every 64), so its
  // bytes are in the bundle and decode.
  const std::string ckpt_bytes = slurp(bundle + "/checkpoint.ckpt");
  ASSERT_FALSE(ckpt_bytes.empty());
  const Checkpoint decoded = decode_checkpoint(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(ckpt_bytes.data()), ckpt_bytes.size()));
  EXPECT_TRUE(decoded.iss.has_value());

  // A SIGKILL races its own detection: the supervisor may reap the child
  // first (death) or hit EOF on the socket first (protocol error). Either
  // classification is correct; both must leave the bundle.
  const std::string findings = slurp(bundle + "/findings.txt");
  EXPECT_NE(findings.find("reason: sup.recover."), std::string::npos);

  const util::JsonValue manifest = util::parse_json(slurp(bundle + "/MANIFEST.json"));
  EXPECT_EQ(manifest.at("schema").as_int(), 1);
  EXPECT_EQ(manifest.at("session").as_string(), "pmkill");
  const std::string& reason = manifest.at("reason").as_string();
  EXPECT_TRUE(reason == "sup.recover.death" || reason == "sup.recover.protocol") << reason;
  std::set<std::string> listed;
  for (const util::JsonValue& f : manifest.at("files").as_array()) {
    listed.insert(f.as_string());
  }
  for (const char* name : {"trace.json", "metrics.json", "worker_metrics.json", "wire.capture",
                           "checkpoint.txt", "checkpoint.ckpt", "findings.txt"}) {
    EXPECT_TRUE(listed.count(name)) << name << " missing from MANIFEST";
  }

  // The flight recorder must not perturb crash consistency: the recovered
  // run still reaches a clean halt with the control counters.
  EXPECT_EQ(outcome.writes_applied, 40u + 10u);
  EXPECT_EQ(outcome.reads_served, 40u);
  EXPECT_EQ(outcome.irqs_sent, 10u);
}

TEST_F(PostmortemTest, FindingsHookOutputLandsInTheBundle) {
  obs::enable_tracing();
  SupervisorConfig config = obs_config("pmhook");
  config.postmortem_dir = ::testing::TempDir() + "pm-hook";
  config.fault_plan = {{FaultKind::CrashAt, 100}};
  bool hook_ran = false;
  config.findings_hook = [&hook_ran](std::span<const std::uint8_t> dump) {
    hook_ran = true;
    return "hook saw " + std::to_string(dump.size()) + " capture bytes\n";
  };
  Supervisor supervisor(std::move(config));
  const SupervisorOutcome outcome = supervisor.run();
  obs::disable_tracing();

  ASSERT_EQ(outcome.postmortem_paths.size(), 1u);
  const std::string findings = slurp(outcome.postmortem_paths[0] + "/findings.txt");
  EXPECT_TRUE(hook_ran);
  EXPECT_NE(findings.find("hook saw "), std::string::npos);
}

TEST_F(PostmortemTest, WorkerCaptureFindingsHaveNoFalsePositives) {
  // Regression: the bundle's findings.txt used to run the Driver-Kernel
  // frame validator over the worker-wire capture, flagging every frame as
  // undecodable (NL402) — FTID trace trailers included. Replaying the dump
  // through the Worker model must produce no undecodable-frame or
  // impossible-message findings on a real traced session.
  obs::enable_tracing();
  SupervisorConfig config = obs_config("pmlint");
  config.postmortem_dir = ::testing::TempDir() + "pm-lint";
  // Kill early so the 32-transfer capture ring still holds the whole epoch
  // from Hello: the replay then starts at the model's initial state.
  config.fault_plan = {{FaultKind::CrashAt, 20}};
  config.findings_hook = [](std::span<const std::uint8_t> dump) {
    analysis::DiagEngine diags;
    analysis::check_capture(dump, analysis::make_model(analysis::ModelId::Worker), diags,
                            "wire.capture");
    return analysis::render_text(diags);
  };
  Supervisor supervisor(std::move(config));
  const SupervisorOutcome outcome = supervisor.run();
  obs::disable_tracing();

  ASSERT_EQ(outcome.postmortem_paths.size(), 1u);
  const std::string findings = slurp(outcome.postmortem_paths[0] + "/findings.txt");
  EXPECT_NE(findings.find("conformance:"), std::string::npos) << findings;
  EXPECT_EQ(findings.find("undecodable"), std::string::npos) << findings;
  EXPECT_EQ(findings.find("NL401"), std::string::npos) << findings;
}

TEST_F(PostmortemTest, ObsSidebandPreservesBitIdenticalRecovery) {
  // The whole side-band (trace trailers, clock syncs, obs pulls, postmortem
  // capture) rides on seq-0 frames outside the crash-consistency
  // bookkeeping. A killed run with everything enabled must still produce
  // the same final checkpoint as an uninterrupted observed run.
  obs::enable_tracing();
  Supervisor control_sup(obs_config("pmbit"));
  const SupervisorOutcome control = control_sup.run();

  SupervisorConfig config = obs_config("pmbit");
  config.postmortem_dir = ::testing::TempDir() + "pm-bit";
  config.fault_plan = {{FaultKind::CrashAt, 200}};
  Supervisor killed_sup(std::move(config));
  const SupervisorOutcome killed = killed_sup.run();
  obs::disable_tracing();

  EXPECT_EQ(killed.recoveries, 1);
  EXPECT_EQ(killed.final_checkpoint, control.final_checkpoint)
      << "observability side-band perturbed the recovered checkpoint";
}

}  // namespace
}  // namespace nisc::cosim
