// Unit and loopback tests for the GDB Remote Serial Protocol layer.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "ipc/channel.hpp"
#include "iss/assembler.hpp"
#include "iss/cpu.hpp"
#include "rsp/client.hpp"
#include "rsp/packet.hpp"
#include "rsp/stub.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"

namespace nisc::rsp {
namespace {

// ---------------------------------------------------------------- framing

TEST(PacketTest, ChecksumMatchesSpecExample) {
  // "$g#67": 'g' = 0x67.
  EXPECT_EQ(packet_checksum("g"), 0x67);
  EXPECT_EQ(packet_checksum(""), 0);
}

TEST(PacketTest, FrameFormat) {
  EXPECT_EQ(frame_packet("g"), "$g#67");
  EXPECT_EQ(frame_packet("OK"), "$OK#9a");
}

TEST(PacketTest, FrameEscapesReservedChars) {
  std::string frame = frame_packet("a#b");
  EXPECT_EQ(frame.substr(0, 1), "$");
  EXPECT_NE(frame.find('}'), std::string::npos);
  // Round-trip through the reader.
  PacketReader reader;
  reader.feed(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(frame.data()), frame.size()));
  auto event = reader.next();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->kind, RspEventKind::Packet);
  EXPECT_EQ(event->payload, "a#b");
}

void feed_str(PacketReader& reader, std::string_view text) {
  reader.feed(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

TEST(PacketTest, ReaderHandlesAckNakInterrupt) {
  PacketReader reader;
  feed_str(reader, "+-\x03");
  EXPECT_EQ(reader.next()->kind, RspEventKind::Ack);
  EXPECT_EQ(reader.next()->kind, RspEventKind::Nak);
  EXPECT_EQ(reader.next()->kind, RspEventKind::Interrupt);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(PacketTest, ReaderAssemblesAcrossFeeds) {
  PacketReader reader;
  std::string frame = frame_packet("mdeadbeef,4");
  for (char c : frame) {
    EXPECT_FALSE(reader.next().has_value());
    feed_str(reader, std::string_view(&c, 1));
  }
  auto event = reader.next();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->payload, "mdeadbeef,4");
}

TEST(PacketTest, ReaderRejectsBadChecksum) {
  PacketReader reader;
  feed_str(reader, "$g#00");
  auto event = reader.next();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->kind, RspEventKind::Nak);
}

TEST(PacketTest, ReaderSkipsStrayBytes) {
  PacketReader reader;
  feed_str(reader, "zz$OK#9a");
  auto event = reader.next();
  ASSERT_TRUE(event.has_value());
  EXPECT_EQ(event->kind, RspEventKind::Packet);
  EXPECT_EQ(event->payload, "OK");
}

TEST(PacketTest, MultiplePacketsInOneFeed) {
  PacketReader reader;
  feed_str(reader, frame_packet("one") + "+" + frame_packet("two"));
  EXPECT_EQ(reader.next()->payload, "one");
  EXPECT_EQ(reader.next()->kind, RspEventKind::Ack);
  EXPECT_EQ(reader.next()->payload, "two");
}

// ---------------------------------------------------------------- stub+client loopback

/// Test fixture running a GdbStub on a dedicated target thread, as the
/// co-simulation layer does.
class RspLoopback : public ::testing::Test {
 protected:
  void start(const std::string& program, StubOptions options = {}) {
    cpu_ = std::make_unique<iss::Cpu>(1 << 16);
    iss::Program prog = iss::assemble(program);
    prog.load_into(cpu_->mem());
    cpu_->reset(prog.entry);
    symbols_ = prog.symbols;

    auto pair = ipc::make_channel_pair(ipc::Transport::SocketPair);
    stub_ = std::make_unique<GdbStub>(*cpu_, std::move(pair.a), std::move(options));
    client_ = std::make_unique<GdbClient>(std::move(pair.b));
    target_thread_ = std::thread([this] { stub_->serve(); });
  }

  void TearDown() override {
    if (target_thread_.joinable()) {
      if (client_) {
        if (client_->running()) client_->interrupt();
        // Drain any pending stop reply so 'k' is seen while halted.
        if (client_->running()) client_->wait_stop(1000);
        client_->kill();
      }
      target_thread_.join();
    }
  }

  std::uint32_t sym(const std::string& name) { return symbols_.at(name); }

  std::unique_ptr<iss::Cpu> cpu_;
  std::unique_ptr<GdbStub> stub_;
  std::unique_ptr<GdbClient> client_;
  std::map<std::string, std::uint32_t> symbols_;
  std::thread target_thread_;
};

TEST_F(RspLoopback, QueryHaltReason) {
  start("nop\nebreak\n");
  EXPECT_EQ(client_->transact("?"), "S05");
}

TEST_F(RspLoopback, QSupportedReportsPacketSize) {
  start("ebreak\n");
  EXPECT_EQ(client_->transact("qSupported"), "PacketSize=4000");
}

TEST_F(RspLoopback, UnknownPacketGetsEmptyReply) {
  start("ebreak\n");
  EXPECT_EQ(client_->transact("vMustReplyEmpty"), "");
}

TEST_F(RspLoopback, ReadWriteRegisters) {
  start("ebreak\n");
  auto regs = client_->read_registers();
  ASSERT_EQ(regs.size(), 33u);
  EXPECT_EQ(regs[0], 0u);

  client_->write_register(5, 0xDEADBEEF);
  EXPECT_EQ(client_->read_register(5), 0xDEADBEEFu);
  EXPECT_EQ(cpu_->reg(5), 0xDEADBEEFu);

  client_->write_pc(0x40);
  EXPECT_EQ(client_->read_pc(), 0x40u);
}

TEST_F(RspLoopback, WriteAllRegisters) {
  start("ebreak\n");
  auto regs = client_->read_registers();
  regs[7] = 1234;
  regs[32] = 0x80;
  std::string payload = "G";
  for (std::uint32_t r : regs) payload += util::hex_encode_u32_le(r);
  EXPECT_EQ(client_->transact(payload), "OK");
  EXPECT_EQ(cpu_->reg(7), 1234u);
  EXPECT_EQ(cpu_->pc(), 0x80u);
}

TEST_F(RspLoopback, ReadWriteMemory) {
  start("ebreak\n");
  std::vector<std::uint8_t> data = {0x11, 0x22, 0x33, 0x44, 0x55};
  client_->write_memory(0x100, data);
  EXPECT_EQ(client_->read_memory(0x100, 5), data);
  client_->write_u32(0x200, 0xCAFED00D);
  EXPECT_EQ(client_->read_u32(0x200), 0xCAFED00Du);
}

TEST_F(RspLoopback, OutOfBoundsMemoryReportsError) {
  start("ebreak\n");
  EXPECT_THROW(client_->read_memory(0xFFFFFFF0, 32), util::RuntimeError);
}

TEST_F(RspLoopback, BreakpointRoundTrip) {
  start(R"(
  _start:
      li a0, 1
  bp_here:
      li a0, 2
      ebreak
  )");
  client_->set_breakpoint(sym("bp_here"));
  client_->cont();
  auto stop = client_->wait_stop(2000);
  ASSERT_TRUE(stop.has_value());
  EXPECT_EQ(stop->signal, 5);
  EXPECT_EQ(client_->read_pc(), sym("bp_here"));
  EXPECT_EQ(client_->read_register(10), 1u);  // a0: first li done, second not

  client_->remove_breakpoint(sym("bp_here"));
  client_->cont();
  stop = client_->wait_stop(2000);
  ASSERT_TRUE(stop.has_value());
  EXPECT_EQ(client_->read_register(10), 2u);
}

TEST_F(RspLoopback, PollStopIsNonBlocking) {
  start(R"(
      li t0, 200000
  spin:
      addi t0, t0, -1
      bnez t0, spin
      ebreak
  )");
  client_->cont();
  // Immediately after cont the target is still spinning.
  (void)client_->poll_stop();  // may or may not be stopped yet, but must not block
  std::optional<StopReply> stop;
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!stop && std::chrono::steady_clock::now() < deadline) {
    if (client_->running()) {
      stop = client_->poll_stop();
      if (!stop) std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  ASSERT_TRUE(stop.has_value());
  EXPECT_EQ(stop->signal, 5);
  EXPECT_GT(client_->stats().stop_polls, 0u);
}

TEST_F(RspLoopback, WatchpointReportsAddress) {
  start(R"(
  _start:
      la t0, var
      li t1, 7
      sw t1, 0(t0)
      ebreak
  var: .word 0
  )");
  client_->set_watchpoint(sym("var"), 4);
  client_->cont();
  auto stop = client_->wait_stop(2000);
  ASSERT_TRUE(stop.has_value());
  ASSERT_TRUE(stop->watch_addr.has_value());
  EXPECT_EQ(*stop->watch_addr, sym("var"));
  EXPECT_EQ(client_->read_u32(sym("var")), 7u);
}

TEST_F(RspLoopback, SingleStep) {
  start("li a0, 1\nli a0, 2\nebreak\n");
  StopReply stop = client_->step();
  EXPECT_EQ(stop.signal, 5);
  EXPECT_EQ(client_->read_pc(), 4u);
  EXPECT_EQ(client_->read_register(10), 1u);
  client_->step();
  EXPECT_EQ(client_->read_register(10), 2u);
}

TEST_F(RspLoopback, InterruptHaltsRunningTarget) {
  start("spin: j spin\n");
  client_->cont();
  client_->interrupt();
  auto stop = client_->wait_stop(2000);
  ASSERT_TRUE(stop.has_value());
  EXPECT_EQ(stop->signal, 2);  // SIGINT
}

TEST_F(RspLoopback, IllegalInstructionSignalsSigill) {
  start(".word 0\n");  // all-zero word: illegal
  client_->cont();
  auto stop = client_->wait_stop(2000);
  ASSERT_TRUE(stop.has_value());
  EXPECT_EQ(stop->signal, 4);
}

TEST_F(RspLoopback, ThrottleCallbackMetersExecution) {
  std::atomic<std::uint64_t> granted{0};
  StubOptions options;
  options.quantum = 64;
  options.acquire_quantum = [&granted](std::uint64_t want) {
    granted += want;
    return want;
  };
  start(R"(
      li t0, 1000
  spin:
      addi t0, t0, -1
      bnez t0, spin
      ebreak
  )", std::move(options));
  client_->cont();
  auto stop = client_->wait_stop(2000);
  ASSERT_TRUE(stop.has_value());
  EXPECT_GE(granted.load(), 2000u);  // ~2001 instructions executed in 64-slices
}

TEST_F(RspLoopback, RunQuantumExecutesBoundedSlice) {
  start(R"(
      li t0, 1000
  spin:
      addi t0, t0, -1
      bnez t0, spin
      ebreak
  )");
  StopReply stop = client_->run_quantum(10);
  EXPECT_EQ(stop.signal, 0);  // quantum exhausted, still running
  EXPECT_EQ(cpu_->instret(), 10u);
  stop = client_->run_quantum(1000000);
  EXPECT_EQ(stop.signal, 5);  // reached the ebreak
}

TEST_F(RspLoopback, RunQuantumStopsAtBreakpoint) {
  start(R"(
  _start:
      li a0, 1
  bp_here:
      li a0, 2
      ebreak
  )");
  client_->set_breakpoint(sym("bp_here"));
  StopReply stop = client_->run_quantum(1000);
  EXPECT_EQ(stop.signal, 5);
  ASSERT_TRUE(stop.pc.has_value());
  EXPECT_EQ(*stop.pc, sym("bp_here"));
  EXPECT_EQ(client_->read_register(10), 1u);  // stopped before the second li
}

TEST_F(RspLoopback, RunQuantumRejectsMalformedCount) {
  start("ebreak\n");
  EXPECT_EQ(client_->transact("qnisc.run:zz"), "E01");
}

TEST_F(RspLoopback, StatsCountTraffic) {
  start("ebreak\n");
  client_->transact("?");
  client_->read_registers();
  EXPECT_GE(stub_->stats().packets_handled, 2u);
  EXPECT_GE(client_->stats().transactions, 2u);
}

}  // namespace
}  // namespace nisc::rsp
