// Unit tests for nisc::util.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "util/checksum.hpp"
#include "util/error.hpp"
#include "util/hex.hpp"
#include "util/loc.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace nisc::util {
namespace {

// ---------------------------------------------------------------- error

TEST(ErrorTest, RequirePassesOnTrue) { EXPECT_NO_THROW(require(true, "nope")); }

TEST(ErrorTest, RequireThrowsLogicError) {
  EXPECT_THROW(require(false, "boom"), LogicError);
}

TEST(ErrorTest, ResultHoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.error().empty());
}

TEST(ErrorTest, ResultHoldsError) {
  auto r = Result<int>::failure("bad");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.error(), "bad");
  EXPECT_THROW(r.value(), RuntimeError);
}

TEST(ErrorTest, ResultMoveValue) {
  Result<std::string> r(std::string("hello"));
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "hello");
}

// ---------------------------------------------------------------- hex

TEST(HexTest, DigitRoundTrip) {
  for (unsigned i = 0; i < 16; ++i) {
    EXPECT_EQ(hex_value(hex_digit(i)), static_cast<int>(i));
  }
}

TEST(HexTest, DigitRejectsGarbage) {
  EXPECT_EQ(hex_value('g'), -1);
  EXPECT_EQ(hex_value(' '), -1);
  EXPECT_EQ(hex_value('\0'), -1);
}

TEST(HexTest, UppercaseAccepted) {
  EXPECT_EQ(hex_value('A'), 10);
  EXPECT_EQ(hex_value('F'), 15);
}

TEST(HexTest, EncodeBytes) {
  const std::uint8_t data[] = {0x00, 0x7F, 0xFF, 0x0A};
  EXPECT_EQ(hex_encode(data), "007fff0a");
}

TEST(HexTest, EncodeEmpty) {
  EXPECT_EQ(hex_encode(std::span<const std::uint8_t>{}), "");
}

TEST(HexTest, DecodeRoundTrip) {
  const std::uint8_t data[] = {0xDE, 0xAD, 0xBE, 0xEF, 0x01};
  auto decoded = hex_decode(hex_encode(data));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), std::vector<std::uint8_t>(std::begin(data), std::end(data)));
}

TEST(HexTest, DecodeRejectsOddLength) { EXPECT_FALSE(hex_decode("abc").ok()); }

TEST(HexTest, DecodeRejectsNonHex) { EXPECT_FALSE(hex_decode("zz").ok()); }

TEST(HexTest, U32LittleEndian) {
  EXPECT_EQ(hex_encode_u32_le(0x12345678), "78563412");
  auto back = hex_decode_u32_le("78563412");
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), 0x12345678u);
}

TEST(HexTest, U32RejectsShortInput) { EXPECT_FALSE(hex_decode_u32_le("7856").ok()); }

TEST(HexTest, ReadWriteLeWidths) {
  std::uint8_t buf[4] = {0, 0, 0, 0};
  write_le(buf, 2, 0xBEEF);
  EXPECT_EQ(buf[0], 0xEF);
  EXPECT_EQ(buf[1], 0xBE);
  EXPECT_EQ(read_le(buf, 2), 0xBEEFu);
  write_le(buf, 4, 0xCAFEBABE);
  EXPECT_EQ(read_le(buf, 4), 0xCAFEBABEu);
  EXPECT_EQ(read_le(buf, 1), 0xBEu);
}

TEST(HexTest, ReadLeChecksWidth) {
  std::uint8_t buf[4] = {};
  EXPECT_THROW(read_le(buf, 5), LogicError);
  EXPECT_THROW(read_le(std::span<const std::uint8_t>(buf, 1), 2), LogicError);
}

// ---------------------------------------------------------------- rng

TEST(RngTest, Deterministic) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(RngTest, BelowRejectsZero) {
  Rng rng(3);
  EXPECT_THROW(rng.below(0), LogicError);
}

TEST(RngTest, BetweenInclusive) {
  Rng rng(4);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    auto v = rng.between(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values hit
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(6);
  EXPECT_FALSE(rng.chance(0.0));
  EXPECT_TRUE(rng.chance(1.0));
}

TEST(RngTest, ChanceRoughlyCalibrated) {
  Rng rng(8);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(hits, 2500, 250);
}

// ---------------------------------------------------------------- checksum

TEST(ChecksumTest, InternetChecksumKnownVector) {
  // Classic RFC1071 example bytes.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  // Compute with an independent formulation.
  std::uint32_t sum = 0x0100 + 0x03f2 + 0xf5f4 + 0xf7f6;  // big-endian words... but our
  (void)sum;  // implementation pairs little-endian; just verify involution property below.
  std::uint16_t c = internet_checksum(data);
  // Appending the checksum (LE) must make the raw sum all-ones.
  std::vector<std::uint8_t> with(data, data + sizeof(data));
  with.push_back(static_cast<std::uint8_t>(c & 0xFF));
  with.push_back(static_cast<std::uint8_t>(c >> 8));
  EXPECT_EQ(internet_checksum(with), 0);
}

TEST(ChecksumTest, InternetChecksumOddLength) {
  const std::uint8_t data[] = {0xAB};
  EXPECT_EQ(internet_checksum(data), static_cast<std::uint16_t>(~0xABu));
}

TEST(ChecksumTest, InternetChecksumEmpty) {
  EXPECT_EQ(internet_checksum(std::span<const std::uint8_t>{}), 0xFFFF);
}

TEST(ChecksumTest, Crc16KnownVector) {
  // CRC-16/CCITT-FALSE("123456789") = 0x29B1.
  const std::uint8_t data[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(crc16_ccitt(data), 0x29B1);
}

TEST(ChecksumTest, Crc16Empty) {
  EXPECT_EQ(crc16_ccitt(std::span<const std::uint8_t>{}), 0xFFFF);
}

TEST(ChecksumTest, Crc16DetectsSwap) {
  const std::uint8_t a[] = {1, 2, 3, 4};
  const std::uint8_t b[] = {2, 1, 3, 4};
  EXPECT_NE(crc16_ccitt(a), crc16_ccitt(b));
}

TEST(ChecksumTest, WordSumBasic) {
  const std::uint8_t data[] = {1, 0, 0, 0, 2, 0, 0, 0};
  EXPECT_EQ(word_sum32(data), 3u);
}

TEST(ChecksumTest, WordSumTail) {
  const std::uint8_t data[] = {0, 0, 0, 0, 0xFF, 0x01};
  EXPECT_EQ(word_sum32(data), 0x01FFu);
}

TEST(ChecksumTest, WordSumEmpty) {
  EXPECT_EQ(word_sum32(std::span<const std::uint8_t>{}), 0u);
}

TEST(ChecksumTest, WordSumOrderSensitiveAcrossWords) {
  const std::uint8_t a[] = {1, 0, 0, 0, 0, 2, 0, 0};
  const std::uint8_t b[] = {0, 2, 0, 0, 1, 0, 0, 0};
  EXPECT_EQ(word_sum32(a), word_sum32(b));  // addition commutes across words...
  const std::uint8_t c[] = {2, 0, 0, 0, 0, 1, 0, 0};
  EXPECT_NE(word_sum32(a), word_sum32(c));  // ...but not across byte lanes
}

// ---------------------------------------------------------------- strings

TEST(StringsTest, Trim) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("\t x \n"), "x");
}

TEST(StringsTest, SplitKeepsEmpties) {
  auto parts = split("a,,b", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[2], "b");
}

TEST(StringsTest, SplitSingle) {
  auto parts = split("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StringsTest, SplitWsDropsEmpties) {
  auto parts = split_ws("  add  x1, x2 \t x3 ");
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "add");
  EXPECT_EQ(parts[3], "x3");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(starts_with("iss_in.port", "iss_in"));
  EXPECT_FALSE(starts_with("iss", "iss_in"));
  EXPECT_TRUE(ends_with("router.clk", ".clk"));
  EXPECT_FALSE(ends_with("clk", "router.clk"));
}

TEST(StringsTest, ParseIntDecimal) {
  EXPECT_EQ(parse_int("42"), 42);
  EXPECT_EQ(parse_int("-17"), -17);
  EXPECT_EQ(parse_int("+8"), 8);
  EXPECT_EQ(parse_int(" 10 "), 10);
}

TEST(StringsTest, ParseIntHexAndBinary) {
  EXPECT_EQ(parse_int("0x1F"), 31);
  EXPECT_EQ(parse_int("-0x10"), -16);
  EXPECT_EQ(parse_int("0b101"), 5);
}

TEST(StringsTest, ParseIntRejectsGarbage) {
  EXPECT_FALSE(parse_int("").has_value());
  EXPECT_FALSE(parse_int("abc").has_value());
  EXPECT_FALSE(parse_int("0x").has_value());
  EXPECT_FALSE(parse_int("12x").has_value());
  EXPECT_FALSE(parse_int("-").has_value());
  EXPECT_FALSE(parse_int("0b2").has_value());
}

TEST(StringsTest, ParseIntOverflow) {
  EXPECT_FALSE(parse_int("99999999999999999999").has_value());
  EXPECT_TRUE(parse_int("9223372036854775807").has_value());
  EXPECT_FALSE(parse_int("9223372036854775808").has_value());
  EXPECT_TRUE(parse_int("-9223372036854775808").has_value());
}

TEST(StringsTest, ToLower) { EXPECT_EQ(to_lower("AdDi X1"), "addi x1"); }

// ---------------------------------------------------------------- loc

TEST(LocTest, CountsCodeCommentBlank) {
  auto loc = count_loc("int x;\n// comment\n\nint y; // trailing\n");
  EXPECT_EQ(loc.code, 2);
  EXPECT_EQ(loc.comment, 1);
  EXPECT_EQ(loc.blank, 1);
}

TEST(LocTest, BlockComments) {
  auto loc = count_loc("/* a\n b\n c */\nint x;\n");
  EXPECT_EQ(loc.comment, 3);
  EXPECT_EQ(loc.code, 1);
}

TEST(LocTest, AssemblyComments) {
  auto loc = count_loc("# full line\n  addi x1, x0, 1\n; another\n");
  EXPECT_EQ(loc.comment, 2);
  EXPECT_EQ(loc.code, 1);
}

TEST(LocTest, Empty) {
  auto loc = count_loc("");
  EXPECT_EQ(loc.total(), 0);
}

TEST(LocTest, CodeBeforeBlockComment) {
  auto loc = count_loc("int x; /* start\n end */ int y;\n");
  EXPECT_EQ(loc.code, 2);
}

}  // namespace
}  // namespace nisc::util
