// Overhead guard for the observability layer. Lives in its own binary so
// that no other test touches the metrics registry or the tracer first: the
// whole point is to pin down the cost of the *disabled* hot path.
//
//   * MetricsRegistry must not exist until the first counter/gauge/histogram
//     lookup (a binary that never uses metrics pays nothing).
//   * With tracing disabled, ScopedSpan / instant / emit must perform zero
//     heap allocations (counted via global operator new overrides).
//   * Counter::add on the enabled path is allocation-free too.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

// Count every scalar/array heap allocation in the process. The matching
// deletes free with std::free; the aligned overloads keep the pairs legal
// for over-aligned types.
void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace {

using namespace nisc;

TEST(ObsOverheadTest, InertUntilFirstTouch) {
  // Nothing in this binary has used metrics or tracing yet: the registry
  // must not have been constructed behind our back (e.g. by static init
  // inside nisc_obs).
  EXPECT_FALSE(obs::MetricsRegistry::exists());
  EXPECT_FALSE(obs::tracing_enabled());
}

TEST(ObsOverheadTest, DisabledTracePathAllocatesNothing) {
  ASSERT_FALSE(obs::tracing_enabled());
  ASSERT_FALSE(obs::MetricsRegistry::exists());

  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    obs::ScopedSpan span("overhead.span", "test", "i", static_cast<std::uint64_t>(i));
    obs::instant("overhead.instant", "test");
    // Raw emit() skips the enabled check by contract, so call sites guard it:
    if (obs::tracing_enabled()) obs::emit('i', "overhead.raw", "test");
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);

  EXPECT_EQ(after - before, 0u) << "disabled tracing hot path must not allocate";
  EXPECT_FALSE(obs::MetricsRegistry::exists())
      << "tracing calls must not construct the metrics registry";
}

TEST(ObsOverheadTest, FirstRegistryTouchFlipsExists) {
  ASSERT_FALSE(obs::MetricsRegistry::exists());
  obs::Counter& c = obs::counter("overhead.touch");
  EXPECT_TRUE(obs::MetricsRegistry::exists());

  // Enabled-path guard: with the handle cached (the `static obs::Counter&`
  // idiom used across the codebase) adds are a single relaxed fetch_add.
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) c.add(1);
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "Counter::add must not allocate";
  EXPECT_EQ(c.value(), 10000u);
}

}  // namespace
