// Tests for the protocol automata layer (DESIGN.md §11): model construction,
// the explicit-state model checker (fault-free proofs + known-by-construction
// counterexamples under adversarial environments), the conformance monitor
// (NL401..NL404 over synthetic and captured traffic, including the PR 2
// quiesce degradation), and the acceptance pipeline: a statically found
// counterexample replayed through a real FaultyChannel schedule and caught by
// the live monitor.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "analysis/diag.hpp"
#include "analysis/explore.hpp"
#include "analysis/frame.hpp"
#include "analysis/protocol.hpp"
#include "cosim/driver_kernel.hpp"
#include "cosim/worker.hpp"
#include "ipc/capture.hpp"
#include "ipc/channel.hpp"
#include "ipc/fault.hpp"
#include "ipc/message.hpp"
#include "rsp/packet.hpp"
#include "sysc/sysc.hpp"

namespace nisc::analysis {
namespace {

using namespace sysc::time_literals;

// encode_message already emits the full wire frame (u32 size + body).
std::vector<std::uint8_t> frame_bytes(const ipc::DriverMessage& msg) {
  return ipc::encode_message(msg);
}

std::vector<std::uint8_t> rsp_bytes(std::string_view payload) {
  std::string framed = rsp::frame_packet(payload);
  return std::vector<std::uint8_t>(framed.begin(), framed.end());
}

/// One worker wire frame (u32 body_len | u8 op | u64 seq | payload), with
/// the optional 12-byte FTID trace trailer when `trace_id` is nonzero and
/// the op has a fixed payload — byte-compatible with cosim::send_frame.
std::vector<std::uint8_t> worker_frame_bytes(cosim::WorkerOp op, std::uint64_t seq,
                                             std::vector<std::uint8_t> payload = {},
                                             std::uint64_t trace_id = 0) {
  const std::size_t fixed = cosim::worker_op_fixed_payload(op);
  const bool trailer = trace_id != 0 && fixed != 0 && payload.size() == fixed;
  std::vector<std::uint8_t> out;
  const auto le32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  const auto le64 = [&](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  le32(static_cast<std::uint32_t>(1 + 8 + payload.size() + (trailer ? 12 : 0)));
  out.push_back(static_cast<std::uint8_t>(op));
  le64(seq);
  out.insert(out.end(), payload.begin(), payload.end());
  if (trailer) {
    le64(trace_id);
    le32(cosim::kFrameTraceMagic);
  }
  return out;
}

// ------------------------------------------------------------------- Models

TEST(ProtocolModelTest, AllFiveModelsBuild) {
  for (ModelId id : {ModelId::DriverKernel, ModelId::GdbKernel, ModelId::GdbWrapper,
                     ModelId::Worker, ModelId::DriverIrq}) {
    ProtocolModel model = make_model(id);
    EXPECT_EQ(model.id, id);
    EXPECT_FALSE(model.symbols.empty());
    EXPECT_FALSE(model.channels.empty());
    EXPECT_GE(model.endpoint_a.states().size(), 2u);
    EXPECT_GE(model.endpoint_b.states().size(), 2u);
    EXPECT_EQ(model_from_name(model.name), id);
  }
  EXPECT_FALSE(model_from_name("no-such-model").has_value());
}

TEST(ProtocolModelTest, WorkerShape) {
  ProtocolModel model = make_model(ModelId::Worker);
  EXPECT_EQ(model.wire, WireFormat::Worker);
  EXPECT_TRUE(model.monitored(0));   // data socket carries the capture
  EXPECT_FALSE(model.monitored(1));  // irq socket is its own wire
  EXPECT_EQ(model.reset_event, "respawn");
  EXPECT_EQ(model.reset_state, 0);
  EXPECT_TRUE(model.crash.enabled);
  EXPECT_EQ(model.crash.units, 2);
  ASSERT_EQ(model.crash.unit_irq_symbols.size(), 2u);
  EXPECT_GE(model.crash.unit_irq_symbols[0], 0);  // the DevWrite unit irqs
  EXPECT_EQ(model.crash.unit_irq_symbols[1], -1);
  // The sideband states only exist when the side-band is spoken.
  EXPECT_GE(model.endpoint_a.find_state("SyncClock"), 0);
  ModelOptions nosb;
  nosb.sideband = false;
  EXPECT_LT(make_model(ModelId::Worker, nosb).endpoint_a.find_state("SyncClock"), 0);
}

TEST(ProtocolModelTest, DriverIrqWorkerWireVariant) {
  ProtocolModel plain = make_model(ModelId::DriverIrq);
  EXPECT_EQ(plain.wire, WireFormat::DriverKernel);
  EXPECT_TRUE(plain.reset_event.empty());

  ModelOptions o;
  o.worker_wire = true;
  ProtocolModel wk = make_model(ModelId::DriverIrq, o);
  EXPECT_EQ(wk.wire, WireFormat::Worker);
  EXPECT_EQ(wk.reset_event, "respawn");
  EXPECT_EQ(wk.symbols.size(), 15u);  // the full worker alphabet
  EXPECT_GE(wk.endpoint_a.find_state("Isr"), 0);
}

TEST(ProtocolModelTest, DriverKernelShape) {
  ProtocolModel model = make_model(ModelId::DriverKernel);
  // Kernel (A) has the quiesce degradation state from PR 2; the irq channel
  // is not observable by the monitor (separate socket, no capture).
  EXPECT_GE(model.endpoint_a.find_state("Quiesced"), 0);
  EXPECT_GE(model.endpoint_b.find_state("Degraded"), 0);
  EXPECT_TRUE(model.monitored(0));   // data
  EXPECT_FALSE(model.monitored(1));  // irq
  EXPECT_GE(model.garbage_symbol, 0);

  // ModelOptions::recovery = false removes the degradation machinery: no
  // transition of the core model is a recovery escape hatch.
  ModelOptions no_recovery;
  no_recovery.recovery = false;
  ProtocolModel core = make_model(ModelId::DriverKernel, no_recovery);
  for (const ProtocolAutomaton* automaton : {&core.endpoint_a, &core.endpoint_b}) {
    for (std::size_t s = 0; s < automaton->states().size(); ++s) {
      for (const ProtoTransition& t : automaton->from(static_cast<int>(s))) {
        EXPECT_FALSE(t.recovery);
      }
    }
  }
}

// ----------------------------------------------------------- Model checking

TEST(ExploreTest, FaultFreeCompositionsAreClean) {
  for (ModelId id : {ModelId::DriverKernel, ModelId::GdbKernel, ModelId::GdbWrapper}) {
    ExploreReport report = explore(make_model(id));
    EXPECT_TRUE(report.complete) << model_name(id);
    EXPECT_TRUE(report.violations.empty())
        << model_name(id) << ":\n" << render_text(report);
    EXPECT_GT(report.states, 10u);
  }
}

TEST(ExploreTest, FaultFreeCoreProtocolIsCleanWithoutRecovery) {
  ModelOptions options;
  options.recovery = false;
  for (ModelId id : {ModelId::DriverKernel, ModelId::GdbKernel, ModelId::GdbWrapper}) {
    ExploreReport report = explore(make_model(id, options));
    EXPECT_TRUE(report.clean()) << model_name(id) << ":\n" << render_text(report);
  }
}

TEST(ExploreTest, RecoveryHandlesFullyAdversarialEnvironment) {
  // The resilience machinery (quiesce / timeout / die) must absorb loss,
  // duplication, corruption and disconnects without dead ends.
  for (ModelId id : {ModelId::DriverKernel, ModelId::GdbKernel, ModelId::GdbWrapper}) {
    ExploreReport report = explore(make_model(id), EnvOptions::faulty());
    EXPECT_TRUE(report.clean()) << model_name(id) << ":\n" << render_text(report);
  }
}

TEST(ExploreTest, WorkerAndDriverIrqFaultFreeAreClean) {
  for (ModelId id : {ModelId::Worker, ModelId::DriverIrq}) {
    ExploreReport report = explore(make_model(id));
    EXPECT_TRUE(report.clean()) << model_name(id) << ":\n" << render_text(report);
    EXPECT_GT(report.states, 5u);
  }
  // The irq automaton also survives the fully adversarial wire.
  ExploreReport irq = explore(make_model(ModelId::DriverIrq), EnvOptions::faulty());
  EXPECT_TRUE(irq.clean()) << render_text(irq);
}

TEST(ExploreTest, WorkerIsCrashConsistentUnderKillAnywhere) {
  // The tentpole proof: SIGKILL at every reachable state (two kills deep),
  // respawn from the last checkpoint, irq-log re-delivery — and no effect is
  // ever duplicated (NL413), no ack ever lost (NL414), no dead end appears.
  EnvOptions crash;
  crash.crashing = true;
  for (bool sideband : {true, false}) {
    ModelOptions options;
    options.sideband = sideband;
    ExploreReport report = explore(make_model(ModelId::Worker, options), crash);
    EXPECT_TRUE(report.clean())
        << "sideband=" << sideband << ":\n" << render_text(report);
    // The crash environment must actually enlarge the space (kill points).
    ExploreReport fault_free = explore(make_model(ModelId::Worker, options));
    EXPECT_GT(report.states, fault_free.states) << "sideband=" << sideband;
  }
}

TEST(ExploreTest, DisabledReplyLogDuplicatesEffectNL413) {
  // Negative control: without the reply log a post-crash replay re-applies
  // the device write — the checker must find NL413 with a minimal trace
  // that contains the kill itself.
  ModelOptions options;
  options.worker_reply_log = false;
  EnvOptions crash;
  crash.crashing = true;
  ExploreReport report = explore(make_model(ModelId::Worker, options), crash);
  ASSERT_FALSE(report.violations.empty());
  const auto dup = std::find_if(report.violations.begin(), report.violations.end(),
                                [](const Counterexample& ce) {
                                  return ce.kind == ViolationKind::DuplicateEffect;
                                });
  ASSERT_NE(dup, report.violations.end()) << render_text(report);
  EXPECT_STREQ(violation_rule(dup->kind), "NL413");
  EXPECT_STREQ(violation_kind_name(dup->kind), "duplicate-effect");
  EXPECT_TRUE(std::any_of(dup->trace.begin(), dup->trace.end(), [](const TraceStep& s) {
    return s.effect == TraceStep::Effect::Crashed;
  })) << render_text(report);
  // BFS minimality: kill after the first applied write, replay, re-apply.
  EXPECT_LE(dup->trace.size(), 10u) << render_text(report);
}

TEST(ExploreTest, EagerReplyLogPruningLosesAckNL414) {
  // Negative control: pruning the reply log at ack time (instead of at the
  // checkpoint) starves a replayed request after a crash — the worker waits
  // forever for the ack of an effect the supervisor already applied.
  ModelOptions options;
  options.worker_eager_prune = true;
  EnvOptions crash;
  crash.crashing = true;
  ExploreReport report = explore(make_model(ModelId::Worker, options), crash);
  const auto lost = std::find_if(report.violations.begin(), report.violations.end(),
                                 [](const Counterexample& ce) {
                                   return ce.kind == ViolationKind::LostAck;
                                 });
  ASSERT_NE(lost, report.violations.end()) << render_text(report);
  EXPECT_STREQ(violation_rule(lost->kind), "NL414");
  EXPECT_STREQ(violation_kind_name(lost->kind), "lost-ack");
}

TEST(ExploreTest, LossWithoutRecoveryDeadlocksDriverKernel) {
  // Known by construction: with no recovery and no spontaneous output
  // pushes, losing a READ leaves the driver waiting forever. (With
  // push_outputs the kernel's pushes genuinely rescue the lost reply — the
  // full model is clean under loss, which FaultFree/Recovery tests cover.)
  ModelOptions options;
  options.recovery = false;
  options.push_outputs = false;
  options.interrupts = false;
  EnvOptions env;
  env.lossy = true;
  ExploreReport report = explore(make_model(ModelId::DriverKernel, options), env);
  ASSERT_FALSE(report.violations.empty());
  bool saw_minimal_deadlock = false;
  for (const Counterexample& ce : report.violations) {
    if (ce.kind != ViolationKind::Deadlock) continue;
    EXPECT_FALSE(ce.trace.empty());
    std::size_t faults = 0;
    for (const TraceStep& step : ce.trace) {
      if (step.effect != TraceStep::Effect::Normal) ++faults;
    }
    // Minimality: one lost message suffices, and BFS must find such a trace.
    if (faults == 1) saw_minimal_deadlock = true;
  }
  EXPECT_TRUE(saw_minimal_deadlock) << render_text(report);

  DiagEngine diags;
  report_violations(report, diags);
  EXPECT_TRUE(diags.has_rule("NL410"));
  EXPECT_GT(diags.errors(), 0u);
}

TEST(ExploreTest, CorruptionWithoutRecoveryIsUnspecifiedReception) {
  // Garbage arriving at an endpoint with no garbage transition and no other
  // way forward is an unspecified reception, not a deadlock.
  ModelOptions options;
  options.recovery = false;
  options.push_outputs = false;
  options.interrupts = false;
  EnvOptions env;
  env.corrupting = true;
  ExploreReport report = explore(make_model(ModelId::DriverKernel, options), env);
  bool saw_unspecified = false;
  for (const Counterexample& ce : report.violations) {
    if (ce.kind == ViolationKind::UnspecifiedReception) saw_unspecified = true;
  }
  EXPECT_TRUE(saw_unspecified) << render_text(report);

  DiagEngine diags;
  report_violations(report, diags);
  EXPECT_TRUE(diags.has_rule("NL411"));
}

TEST(ExploreTest, ReportRenderings) {
  ModelOptions options;
  options.recovery = false;
  ExploreReport report = explore(make_model(ModelId::GdbWrapper, options), EnvOptions::faulty());
  ASSERT_FALSE(report.violations.empty());
  std::string text = render_text(report);
  EXPECT_NE(text.find("deadlock"), std::string::npos);
  std::string json = render_json(report);
  EXPECT_NE(json.find("\"model\":\"gdb-wrapper\""), std::string::npos);
  EXPECT_NE(json.find("\"violations\":["), std::string::npos);
}

// ------------------------------------------------------------ StreamDecoder

TEST(StreamDecoderTest, ReassemblesDriverKernelFramesAcrossChunks) {
  StreamDecoder decoder(WireFormat::DriverKernel, /*toward_target=*/false);
  std::vector<std::uint8_t> frame = frame_bytes(ipc::DriverMessage::write_u32("p", 7));
  std::vector<WireSymbol> out;
  // Feed byte by byte: exactly one symbol, no garbage.
  for (std::size_t i = 0; i < frame.size(); ++i) {
    decoder.feed(std::span<const std::uint8_t>(&frame[i], 1), out);
  }
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].malformed);
  EXPECT_EQ(decoder.pending(), 0u);
}

TEST(StreamDecoderTest, RspAcksAreFilteredAndPayloadsClassified) {
  StreamDecoder decoder(WireFormat::Rsp, /*toward_target=*/true);
  std::vector<WireSymbol> out;
  std::vector<std::uint8_t> bytes = {'+'};
  decoder.feed(bytes, out);
  EXPECT_TRUE(out.empty());  // acks are advisory, not protocol symbols
  bytes = rsp_bytes("c");
  decoder.feed(bytes, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].malformed);
}

TEST(StreamDecoderTest, WorkerFramesReassembleWithChunkBoundaryInsideTrailer) {
  // A traced DevWrite: 8 payload bytes + the 12-byte FTID trailer. Split the
  // stream so one chunk boundary falls inside the trailer — the decoder must
  // still emit exactly one symbol and strip the trailer from the payload.
  StreamDecoder decoder(WireFormat::Worker, /*toward_target=*/false);
  const std::vector<std::uint8_t> frame =
      worker_frame_bytes(cosim::WorkerOp::DevWrite, 1, {1, 0, 0, 0, 42, 0, 0, 0},
                         /*trace_id=*/0xABCDu);
  ASSERT_EQ(frame.size(), 4u + 1 + 8 + 8 + 12);
  std::vector<WireSymbol> out;
  const std::size_t mid_trailer = frame.size() - 6;  // inside the u64 trace_id
  decoder.feed(std::span<const std::uint8_t>(frame.data(), mid_trailer), out);
  EXPECT_TRUE(out.empty());
  EXPECT_GT(decoder.pending(), 0u);
  decoder.feed(std::span<const std::uint8_t>(frame.data() + mid_trailer,
                                             frame.size() - mid_trailer),
               out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_FALSE(out[0].malformed);
  EXPECT_NE(out[0].detail.find("traced"), std::string::npos);
  EXPECT_NE(out[0].detail.find("8 payload byte(s)"), std::string::npos) << out[0].detail;
  EXPECT_EQ(decoder.pending(), 0u);
}

TEST(StreamDecoderTest, WorkerDrainSplitMidTrailerAndTruncatedFinalFrame) {
  // drain_to_frame_boundary on the worker wire (the checkpoint invariant):
  // a drain that starts with the frame torn inside the FTID trailer keeps
  // reading until the trailer completes, and a sender that dies mid-frame
  // leaves the drain dirty.
  ipc::ChannelPair pair = ipc::make_channel_pair(ipc::Transport::SocketPair);
  const std::vector<std::uint8_t> frame =
      worker_frame_bytes(cosim::WorkerOp::WriteAck, 3, {7, 0, 0, 0, 0, 0, 0, 0},
                         /*trace_id=*/0x1122334455667788u);
  const std::size_t split = frame.size() - 9;  // boundary inside the trailer
  pair.b.send(std::span<const std::uint8_t>(frame.data(), split));
  std::thread finisher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    pair.b.send(std::span<const std::uint8_t>(frame.data() + split, frame.size() - split));
  });
  DrainResult drained = drain_to_frame_boundary(pair.a, WireFormat::Worker,
                                                /*toward_target=*/false, /*timeout_ms=*/2000);
  finisher.join();
  EXPECT_TRUE(drained.clean);
  EXPECT_EQ(drained.bytes, frame);
  ASSERT_EQ(drained.symbols.size(), 1u);
  EXPECT_FALSE(drained.symbols[0].malformed);
  EXPECT_NE(drained.symbols[0].detail.find("traced"), std::string::npos);

  // Truncated final frame: the sender never completes the body.
  pair.b.send(std::span<const std::uint8_t>(frame.data(), split));
  DrainResult dirty = drain_to_frame_boundary(pair.a, WireFormat::Worker,
                                              /*toward_target=*/false, /*timeout_ms=*/50);
  EXPECT_FALSE(dirty.clean);
  EXPECT_EQ(dirty.bytes.size(), split);
}

TEST(FrameDialectTest, WorkerFramesValidateAndTrailersAreNotDefects) {
  // Satellite regression: the Driver-Kernel validator false-positives on
  // every worker frame; the Worker dialect accepts them, FTID trailers
  // included, and still catches real defects.
  std::vector<std::uint8_t> stream;
  const auto append = [&](std::vector<std::uint8_t> f) {
    stream.insert(stream.end(), f.begin(), f.end());
  };
  append(worker_frame_bytes(cosim::WorkerOp::Hello, 0, {0x57, 0x52, 0x4B, 0x31}));
  append(worker_frame_bytes(cosim::WorkerOp::DevWrite, 1, {1, 0, 0, 0, 9, 0, 0, 0},
                            /*trace_id=*/77));
  append(worker_frame_bytes(cosim::WorkerOp::WriteAck, 1, {0, 0, 0, 0, 0, 0, 0, 0}));

  DiagEngine worker_diags;
  EXPECT_EQ(check_frames(stream, worker_diags, "<worker>", FrameDialect::Worker), 3u);
  EXPECT_EQ(worker_diags.errors(), 0u);
  EXPECT_EQ(worker_diags.warnings(), 0u);

  DiagEngine dk_diags;
  check_frames(stream, dk_diags, "<worker-as-dk>");  // the old false positive
  EXPECT_GT(dk_diags.errors(), 0u);

  // Real defects still fire: unknown op, then a fixed-payload length lie.
  std::vector<std::uint8_t> bad_op = worker_frame_bytes(cosim::WorkerOp::Hello, 0, {});
  bad_op[4] = 0x7F;
  DiagEngine bad_op_diags;
  EXPECT_EQ(check_frames(bad_op, bad_op_diags, "<bad-op>", FrameDialect::Worker), 0u);
  EXPECT_TRUE(bad_op_diags.has_rule("frame.malformed"));

  std::vector<std::uint8_t> short_write =
      worker_frame_bytes(cosim::WorkerOp::DevWrite, 2, {1, 2, 3});
  DiagEngine short_diags;
  EXPECT_EQ(check_frames(short_write, short_diags, "<short>", FrameDialect::Worker), 0u);
  EXPECT_TRUE(short_diags.has_rule("frame.malformed"));

  std::vector<std::uint8_t> torn =
      worker_frame_bytes(cosim::WorkerOp::DevRead, 3, {8, 0, 0, 0});
  torn.resize(torn.size() - 2);
  DiagEngine torn_diags;
  EXPECT_EQ(check_frames(torn, torn_diags, "<torn>", FrameDialect::Worker), 0u);
  EXPECT_TRUE(torn_diags.has_rule("frame.truncated"));
}

// ------------------------------------------------------ Conformance monitor

TEST(ConformanceMonitorTest, CleanDriverKernelStreamIsAccepted) {
  DiagEngine diags;
  ConformanceMonitor monitor(make_model(ModelId::DriverKernel), diags);
  // Driver -> kernel WRITE (monitor watches A, so this is Rx), kernel ->
  // driver READ-REPLY push (Tx).
  std::vector<std::uint8_t> write = frame_bytes(ipc::DriverMessage::write_u32("iss_in", 1));
  monitor.on_transfer(ipc::CaptureDir::Rx, write);
  std::vector<std::uint8_t> reply = frame_bytes(ipc::DriverMessage{
      ipc::MsgType::ReadReply, {{"iss_out", {1, 0, 0, 0}}}});
  monitor.on_transfer(ipc::CaptureDir::Tx, reply);
  monitor.finish();
  EXPECT_EQ(monitor.messages_seen(), 2u);
  EXPECT_EQ(diags.errors(), 0u);
  EXPECT_EQ(diags.warnings(), 0u);
}

TEST(ConformanceMonitorTest, QuiesceDegradationSequenceIsAccepted) {
  // Satellite: the full PR 2 degradation sequence must conform — healthy
  // traffic, then the out-of-band quiesce event, then silence.
  DiagEngine diags;
  ConformanceMonitor monitor(make_model(ModelId::DriverKernel), diags);
  std::vector<std::uint8_t> write = frame_bytes(ipc::DriverMessage::write_u32("iss_in", 1));
  monitor.on_transfer(ipc::CaptureDir::Rx, write);
  EXPECT_TRUE(monitor.state_possible("Run"));
  monitor.on_event("quiesce");
  EXPECT_TRUE(monitor.state_possible("Quiesced"));
  monitor.finish();
  EXPECT_EQ(diags.errors(), 0u);
  EXPECT_EQ(diags.warnings(), 0u);
}

TEST(ConformanceMonitorTest, TrafficAfterQuiesceIsNL403) {
  DiagEngine diags;
  ConformanceMonitor monitor(make_model(ModelId::DriverKernel), diags);
  monitor.on_event("quiesce");
  std::vector<std::uint8_t> write = frame_bytes(ipc::DriverMessage::write_u32("iss_in", 1));
  monitor.on_transfer(ipc::CaptureDir::Rx, write);
  monitor.finish();
  EXPECT_TRUE(diags.has_rule("NL403"));
  EXPECT_GT(diags.errors(), 0u);
}

TEST(ConformanceMonitorTest, UnexpectedMessageIsNL401) {
  // Interrupts travel on the dedicated irq socket; one on the data port is
  // impossible in every kernel state.
  DiagEngine diags;
  ConformanceMonitor monitor(make_model(ModelId::DriverKernel), diags);
  std::vector<std::uint8_t> irq = frame_bytes(ipc::DriverMessage::interrupt(3));
  monitor.on_transfer(ipc::CaptureDir::Tx, irq);
  EXPECT_TRUE(diags.has_rule("NL401"));
}

TEST(ConformanceMonitorTest, StreamEndingMidFrameIsNL402) {
  DiagEngine diags;
  ConformanceMonitor monitor(make_model(ModelId::DriverKernel), diags);
  std::vector<std::uint8_t> frame = frame_bytes(ipc::DriverMessage::write_u32("iss_in", 1));
  frame.resize(frame.size() - 2);  // cut mid-body
  monitor.on_transfer(ipc::CaptureDir::Rx, frame);
  monitor.finish();
  EXPECT_TRUE(diags.has_rule("NL402"));
}

TEST(ConformanceMonitorTest, MissingReplyIsNL404) {
  // A READ with no READ-REPLY leaves the kernel in MustReply: the stream
  // ends non-quiescent.
  DiagEngine diags;
  ConformanceMonitor monitor(make_model(ModelId::DriverKernel), diags);
  std::vector<std::uint8_t> read = frame_bytes(ipc::DriverMessage::read_request("iss_out"));
  monitor.on_transfer(ipc::CaptureDir::Rx, read);
  EXPECT_TRUE(monitor.state_possible("MustReply"));
  monitor.finish();
  EXPECT_TRUE(diags.has_rule("NL404"));
  EXPECT_EQ(diags.errors(), 0u);  // NL404 is a warning
  EXPECT_GT(diags.warnings(), 0u);
}

TEST(ConformanceMonitorTest, GdbKernelRoundTripConforms) {
  DiagEngine diags;
  ConformanceMonitor monitor(make_model(ModelId::GdbKernel), diags);
  std::vector<std::uint8_t> cont = rsp_bytes("c");
  monitor.on_transfer(ipc::CaptureDir::Tx, cont);
  EXPECT_TRUE(monitor.state_possible("Running"));
  std::vector<std::uint8_t> stop = rsp_bytes("T05");
  monitor.on_transfer(ipc::CaptureDir::Rx, stop);
  EXPECT_TRUE(monitor.state_possible("Halted"));
  std::vector<std::uint8_t> kill = rsp_bytes("k");
  monitor.on_transfer(ipc::CaptureDir::Tx, kill);
  monitor.finish();
  EXPECT_EQ(diags.errors(), 0u);
  EXPECT_EQ(diags.warnings(), 0u);
  EXPECT_EQ(monitor.messages_seen(), 3u);
}

TEST(ConformanceMonitorTest, CheckCaptureReplaysWireCaptureDumps) {
  ipc::WireCapture capture("drv-data", 8);
  std::vector<std::uint8_t> read = frame_bytes(ipc::DriverMessage::read_request("iss_out"));
  std::vector<std::uint8_t> reply = frame_bytes(ipc::DriverMessage{
      ipc::MsgType::ReadReply, {{"iss_out", {1, 0, 0, 0}}}});
  capture.record(ipc::CaptureDir::Rx, read);
  capture.record(ipc::CaptureDir::Tx, reply);
  std::vector<std::uint8_t> dump = capture.dump();

  DiagEngine diags;
  std::size_t transfers =
      check_capture(dump, make_model(ModelId::DriverKernel), diags, "<test>");
  EXPECT_EQ(transfers, 2u);
  EXPECT_EQ(diags.errors(), 0u);
  EXPECT_EQ(diags.warnings(), 0u);
}

TEST(ConformanceMonitorTest, TruncatedFinalFrameInDumpIsFlagged) {
  // A worker SIGKILLed mid-send leaves its capture dump ending inside the
  // last frame. Both post-mortem paths must flag it: the frame validator
  // (frame.truncated) and the capture replayer (NL402, stream ends
  // mid-frame) — while still crediting the complete frames before the tear.
  ipc::WireCapture capture("drv-data", 8);
  std::vector<std::uint8_t> read = frame_bytes(ipc::DriverMessage::read_request("iss_out"));
  std::vector<std::uint8_t> reply = frame_bytes(ipc::DriverMessage{
      ipc::MsgType::ReadReply, {{"iss_out", {1, 0, 0, 0}}}});
  capture.record(ipc::CaptureDir::Rx, read);
  capture.record(ipc::CaptureDir::Tx, reply);
  std::vector<std::uint8_t> dump = capture.dump();
  ASSERT_GT(dump.size(), 6u);
  dump.resize(dump.size() - 5);  // tear the final frame mid-body

  DiagEngine frame_diags;
  const std::size_t good = check_frames(dump, frame_diags, "<truncated>");
  EXPECT_EQ(good, 1u);
  EXPECT_TRUE(frame_diags.has_rule("frame.truncated"));

  DiagEngine wire_diags;
  check_capture(dump, make_model(ModelId::DriverKernel), wire_diags, "<truncated>");
  EXPECT_TRUE(wire_diags.has_rule("NL402"));
  EXPECT_GE(wire_diags.errors(), 1u);
}

TEST(ConformanceMonitorTest, DrainToFrameBoundaryReassemblesSplitFrames) {
  // The checkpoint frame-boundary invariant (DESIGN.md §12): a drain that
  // starts mid-frame keeps reading until the sender finishes the frame, so
  // the returned bytes are whole frames — safe to store in a snapshot.
  ipc::ChannelPair pair = ipc::make_channel_pair(ipc::Transport::SocketPair);
  std::vector<std::uint8_t> frame = frame_bytes(ipc::DriverMessage::read_request("iss_out"));

  // First half now; second half from a helper thread after a delay.
  const std::size_t split = frame.size() / 2;
  pair.b.send(std::span<const std::uint8_t>(frame.data(), split));
  std::thread finisher([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    pair.b.send(std::span<const std::uint8_t>(frame.data() + split, frame.size() - split));
  });

  DrainResult drained =
      drain_to_frame_boundary(pair.a, WireFormat::DriverKernel, /*toward_target=*/true,
                              /*timeout_ms=*/2000);
  finisher.join();
  EXPECT_TRUE(drained.clean);
  EXPECT_EQ(drained.bytes, frame);
  ASSERT_EQ(drained.symbols.size(), 1u);
  EXPECT_FALSE(drained.symbols[0].malformed);

  // And when the sender never completes the frame, the drain reports dirty.
  pair.b.send(std::span<const std::uint8_t>(frame.data(), split));
  DrainResult dirty =
      drain_to_frame_boundary(pair.a, WireFormat::DriverKernel, /*toward_target=*/true,
                              /*timeout_ms=*/50);
  EXPECT_FALSE(dirty.clean);
  EXPECT_EQ(dirty.bytes.size(), split);
}

TEST(ConformanceMonitorTest, ObsEnabledWorkerSessionReplaysWithZeroFindings) {
  // Satellite regression: a captured obs-enabled session — spawn ClockSync
  // handshake, seq-0 PullObs/ObsReport interleaved with guest traffic, FTID
  // trailers on the data frames — must replay through the Worker model with
  // zero findings. Frames are recorded from the supervisor's side (Tx =
  // supervisor send), exactly as the real capture ring sees them.
  ipc::WireCapture capture("sup-data", 32);
  const auto rec = [&](ipc::CaptureDir dir, std::vector<std::uint8_t> frame) {
    capture.record(dir, frame);
  };
  using cosim::WorkerOp;
  rec(ipc::CaptureDir::Rx, worker_frame_bytes(WorkerOp::Hello, 0, {0x57, 0x52, 0x4B, 0x31,
                                                                   1, 0, 0, 0}));
  rec(ipc::CaptureDir::Tx, worker_frame_bytes(WorkerOp::Start, 0, {1, 2, 3}));
  rec(ipc::CaptureDir::Tx, worker_frame_bytes(WorkerOp::ClockSync, 0, {0, 0, 0, 0, 0, 0, 0, 0}));
  rec(ipc::CaptureDir::Rx,
      worker_frame_bytes(WorkerOp::ClockSyncAck, 0, {9, 0, 0, 0, 0, 0, 0, 0}));
  rec(ipc::CaptureDir::Rx, worker_frame_bytes(WorkerOp::DevWrite, 1,
                                              {0, 1, 0, 0, 42, 0, 0, 0}, /*trace_id=*/5));
  rec(ipc::CaptureDir::Tx, worker_frame_bytes(WorkerOp::WriteAck, 1,
                                              {1, 0, 0, 0, 0, 0, 0, 0}, /*trace_id=*/5));
  rec(ipc::CaptureDir::Rx, worker_frame_bytes(WorkerOp::Ckpt, 2, {0xAA, 0xBB}));
  rec(ipc::CaptureDir::Tx, worker_frame_bytes(WorkerOp::PullObs, 0, {}));
  rec(ipc::CaptureDir::Rx, worker_frame_bytes(WorkerOp::ObsReport, 0, {0x7B, 0x7D}));
  rec(ipc::CaptureDir::Rx, worker_frame_bytes(WorkerOp::DevRead, 3, {4, 1, 0, 0},
                                              /*trace_id=*/6));
  rec(ipc::CaptureDir::Tx,
      worker_frame_bytes(WorkerOp::ReadReply, 3, {7, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0},
                         /*trace_id=*/6));
  rec(ipc::CaptureDir::Rx, worker_frame_bytes(WorkerOp::Done, 4, {1, 0xCC}));

  DiagEngine diags;
  const std::size_t transfers =
      check_capture(capture.dump(), make_model(ModelId::Worker), diags, "<obs-session>");
  EXPECT_EQ(transfers, 12u);
  EXPECT_EQ(diags.errors(), 0u) << render_text(diags);
  EXPECT_EQ(diags.warnings(), 0u) << render_text(diags);
}

TEST(ConformanceMonitorTest, RespawnEventResetsWorkerDecodersAndState) {
  // A SIGKILL tears the last frame mid-wire; the supervisor announces
  // "respawn" before the replacement socket speaks. The live monitor must
  // drop the torn bytes and accept the fresh handshake with no findings.
  auto monitor = std::make_shared<LiveConformanceMonitor>(make_model(ModelId::Worker),
                                                          "<live>");
  using cosim::WorkerOp;
  const std::vector<std::uint8_t> hello =
      worker_frame_bytes(WorkerOp::Hello, 0, {0x57, 0x52, 0x4B, 0x31});
  const std::vector<std::uint8_t> sync =
      worker_frame_bytes(WorkerOp::ClockSync, 0, {0, 0, 0, 0, 0, 0, 0, 0});
  const std::vector<std::uint8_t> sync_ack =
      worker_frame_bytes(WorkerOp::ClockSyncAck, 0, {9, 0, 0, 0, 0, 0, 0, 0});
  monitor->on_wire(ipc::CaptureDir::Rx, hello);
  monitor->on_wire(ipc::CaptureDir::Tx, worker_frame_bytes(WorkerOp::Start, 0, {1}));
  monitor->on_wire(ipc::CaptureDir::Tx, sync);
  monitor->on_wire(ipc::CaptureDir::Rx, sync_ack);
  // Worker dies mid-frame: only half a DevWrite arrives.
  const std::vector<std::uint8_t> torn =
      worker_frame_bytes(WorkerOp::DevWrite, 1, {0, 1, 0, 0, 42, 0, 0, 0});
  monitor->on_wire(ipc::CaptureDir::Rx,
                   std::span<const std::uint8_t>(torn.data(), torn.size() / 2));
  monitor->on_wire_event("respawn");
  // Fresh epoch: full handshake again, this time a Resume.
  monitor->on_wire(ipc::CaptureDir::Rx, hello);
  monitor->on_wire(ipc::CaptureDir::Tx, worker_frame_bytes(WorkerOp::Resume, 0, {1}));
  monitor->on_wire(ipc::CaptureDir::Tx, sync);
  monitor->on_wire(ipc::CaptureDir::Rx, sync_ack);
  monitor->on_wire(ipc::CaptureDir::Rx, torn);  // the replayed write, whole
  monitor->on_wire(ipc::CaptureDir::Tx,
                   worker_frame_bytes(WorkerOp::WriteAck, 1, {1, 0, 0, 0, 0, 0, 0, 0}));
  monitor->finish();
  EXPECT_EQ(monitor->diags().errors(), 0u) << render_text(monitor->diags());
}

TEST(ConformanceMonitorTest, DriverIrqMonitorAcceptsDeliveryAckCycles) {
  // Pump-side monitor (no flip): INTERRUPTs arrive as Rx, the pump's "ack"
  // wire event closes each Isr cycle.
  auto monitor = std::make_shared<LiveConformanceMonitor>(make_model(ModelId::DriverIrq),
                                                          "<irq>");
  const std::vector<std::uint8_t> irq =
      frame_bytes(ipc::DriverMessage::interrupt(2));
  for (int i = 0; i < 3; ++i) {
    monitor->on_wire(ipc::CaptureDir::Rx, irq);
    monitor->on_wire_event("ack");
  }
  monitor->finish();
  EXPECT_EQ(monitor->diags().errors(), 0u) << render_text(monitor->diags());
  EXPECT_EQ(monitor->messages_seen(), 3u);
}

TEST(ConformanceMonitorTest, WorkerWireIrqMonitorAcceptsSupervisorIrqStream) {
  // The supervisor's irq socket: Worker-format Irq frames, sent by the
  // supervisor (flip_direction puts it in the sender role), arbitrarily many
  // per session via the internal-ack epsilon, respawn re-sends included.
  ModelOptions o;
  o.worker_wire = true;
  auto monitor = std::make_shared<LiveConformanceMonitor>(
      make_model(ModelId::DriverIrq, o), "<sup-irq>", /*flip_direction=*/true);
  for (std::uint64_t seq = 1; seq <= 4; ++seq) {
    monitor->on_wire(ipc::CaptureDir::Tx,
                     worker_frame_bytes(cosim::WorkerOp::Irq, seq, {2, 0, 0, 0}));
  }
  monitor->on_wire_event("respawn");
  for (std::uint64_t seq = 3; seq <= 5; ++seq) {  // irq-log re-send overlaps
    monitor->on_wire(ipc::CaptureDir::Tx,
                     worker_frame_bytes(cosim::WorkerOp::Irq, seq, {2, 0, 0, 0}));
  }
  monitor->finish();
  EXPECT_EQ(monitor->diags().errors(), 0u) << render_text(monitor->diags());
}

// ---------------------------------------- Counterexample -> FaultPlan replay

/// Finds a counterexample whose environment faults all hit endpoint A's
/// sends and which fault_plan_for can express completely.
const Counterexample* find_a_side_counterexample(const ExploreReport& report) {
  for (const Counterexample& ce : report.violations) {
    bool has_fault = false;
    bool all_a = true;
    for (const TraceStep& step : ce.trace) {
      if (step.effect == TraceStep::Effect::Normal) continue;
      has_fault = true;
      if (step.endpoint != 'A') all_a = false;
    }
    if (has_fault && all_a && fault_plan_for(ce, 'A').complete) return &ce;
  }
  return nullptr;
}

/// The known-by-construction stuck state the acceptance pipeline replays: a
/// corrupting wire turns the kernel's READ-REPLY into garbage the
/// recovery-less driver cannot receive (unspecified reception).
ExploreReport corrupted_reply_report() {
  ModelOptions options;
  options.recovery = false;
  options.push_outputs = false;
  options.interrupts = false;
  EnvOptions env;
  env.corrupting = true;
  ExploreLimits limits;
  // The kernel-side corruption needs three steps; keep enough per-kind slots
  // that the shallower driver-side counterexamples do not crowd it out.
  limits.max_violations_per_kind = 32;
  return explore(make_model(ModelId::DriverKernel, options), env, limits);
}

TEST(ReplayTest, CounterexampleMapsToSingleCorruptFaultPlan) {
  // The acceptance pipeline, static half: the counterexample's environment
  // faults must translate into a complete FaultPlan against the kernel-side
  // endpoint (its first send gets corrupted).
  ExploreReport report = corrupted_reply_report();
  const Counterexample* ce = find_a_side_counterexample(report);
  ASSERT_NE(ce, nullptr) << render_text(report);

  FaultPlanResult result = fault_plan_for(*ce, 'A');
  EXPECT_TRUE(result.complete);
  ASSERT_EQ(result.plan.specs.size(), 1u);
  EXPECT_EQ(result.plan.specs[0].kind, ipc::FaultKind::CorruptByte);
  EXPECT_EQ(result.plan.specs[0].nth, 1u);
}

TEST(ReplayTest, StaticCounterexampleReproducesLiveAsNL4xx) {
  // The acceptance pipeline, dynamic half: run the statically found fault
  // schedule against a *real* DriverKernelExtension with a live conformance
  // monitor on the kernel-side data endpoint. The kernel's READ-REPLY is
  // corrupted on the wire, so the monitor must flag the send as an NL4xx
  // error (NL402 when the frame no longer decodes, NL401 when the flipped
  // type byte decodes as a message the kernel never sends).
  ExploreReport report = corrupted_reply_report();
  const Counterexample* ce = find_a_side_counterexample(report);
  ASSERT_NE(ce, nullptr) << render_text(report);
  ipc::FaultPlan plan = fault_plan_for(*ce, 'A').plan;

  sysc::sc_simcontext ctx;
  sysc::sc_clock clk("clk", 10_ns);
  sysc::iss_out<std::uint32_t> out_port("hw.out");
  out_port.write(42);

  ipc::ChannelPair data = ipc::make_channel_pair(ipc::Transport::SocketPair);
  ipc::ChannelPair irq = ipc::make_channel_pair(ipc::Transport::SocketPair);
  data.a.set_io_timeout(2000);
  data.b.set_io_timeout(2000);
  ipc::FaultyChannel::install(data.a, plan);
  auto monitor = std::make_shared<LiveConformanceMonitor>(
      make_model(ModelId::DriverKernel), "<replay>");
  data.a.attach_observer(monitor);

  cosim::DriverKernelOptions dk_options;
  dk_options.push_outputs = false;
  cosim::DriverKernelExtension ext(std::move(data.a), std::move(irq.a),
                                   /*budget=*/nullptr, dk_options);
  ctx.register_extension(&ext);

  // Act as the driver: ask for hw.out; the reply leaves the kernel mangled.
  ipc::send_message(data.b, ipc::DriverMessage::read_request("hw.out"));
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    ctx.run(100_ns);
    if (monitor->messages_seen() >= 2) break;
  }
  ctx.unregister_extension(&ext);
  try {
    ipc::recv_message(data.b);  // the driver-side view of the mangled reply
  } catch (const util::RuntimeError&) {
    // Undecodable on the driver side too: exactly the modelled garbage.
  }

  monitor->finish();
  EXPECT_GE(monitor->messages_seen(), 2u);  // the READ and the mangled reply
  EXPECT_GT(monitor->diags().errors(), 0u);
  EXPECT_TRUE(monitor->diags().has_rule("NL402") || monitor->diags().has_rule("NL401"));
}

TEST(ReplayTest, LostReadDeadlockReplaysViaDriverSidePlan) {
  // The lossy counterpart: the checker's minimal deadlock under a lossy
  // environment loses the driver's READ. fault_plan_for('B') turns that
  // into a drop on the driver-side endpoint; replayed against a real
  // extension, the stuck state manifests as a reply that never comes.
  ModelOptions options;
  options.recovery = false;
  options.push_outputs = false;
  options.interrupts = false;
  EnvOptions env;
  env.lossy = true;
  ExploreReport report = explore(make_model(ModelId::DriverKernel, options), env);
  const Counterexample* lost_read = nullptr;
  for (const Counterexample& ce : report.violations) {
    if (ce.kind != ViolationKind::Deadlock) continue;
    FaultPlanResult candidate = fault_plan_for(ce, 'B');
    if (candidate.complete && !candidate.plan.empty()) {
      lost_read = &ce;
      break;
    }
  }
  ASSERT_NE(lost_read, nullptr) << render_text(report);
  ipc::FaultPlan plan = fault_plan_for(*lost_read, 'B').plan;
  ASSERT_EQ(plan.specs[0].kind, ipc::FaultKind::Drop);

  sysc::sc_simcontext ctx;
  sysc::sc_clock clk("clk", 10_ns);
  sysc::iss_out<std::uint32_t> out_port("hw.out");
  out_port.write(42);

  ipc::ChannelPair data = ipc::make_channel_pair(ipc::Transport::SocketPair);
  ipc::ChannelPair irq = ipc::make_channel_pair(ipc::Transport::SocketPair);
  data.a.set_io_timeout(2000);
  data.b.set_io_timeout(2000);
  ipc::FaultyChannel::install(data.b, plan);
  auto monitor = std::make_shared<LiveConformanceMonitor>(
      make_model(ModelId::DriverKernel), "<replay>");
  data.a.attach_observer(monitor);

  cosim::DriverKernelOptions dk_options;
  dk_options.push_outputs = false;
  cosim::DriverKernelExtension ext(std::move(data.a), std::move(irq.a),
                                   /*budget=*/nullptr, dk_options);
  ctx.register_extension(&ext);

  ipc::send_message(data.b, ipc::DriverMessage::read_request("hw.out"));
  ctx.run(1_us);
  ctx.unregister_extension(&ext);

  // The READ was swallowed on the wire: the kernel never saw it (the
  // monitor observed nothing) and the driver's reply never arrives — the
  // statically predicted (Run, AwaitReply) deadlock, live.
  EXPECT_FALSE(data.b.readable(100));
  monitor->finish();
  EXPECT_EQ(monitor->messages_seen(), 0u);
  EXPECT_EQ(monitor->diags().errors(), 0u);
}

TEST(ReplayTest, HealthyWireStaysCleanUnderLiveMonitor) {
  // Control: same setup, no fault plan — the reply arrives and the monitor
  // reports nothing.
  sysc::sc_simcontext ctx;
  sysc::sc_clock clk("clk", 10_ns);
  sysc::iss_out<std::uint32_t> out_port("hw.out");
  out_port.write(7);

  ipc::ChannelPair data = ipc::make_channel_pair(ipc::Transport::SocketPair);
  ipc::ChannelPair irq = ipc::make_channel_pair(ipc::Transport::SocketPair);
  data.a.set_io_timeout(2000);
  data.b.set_io_timeout(2000);
  auto monitor = std::make_shared<LiveConformanceMonitor>(
      make_model(ModelId::DriverKernel), "<replay>");
  data.a.attach_observer(monitor);

  cosim::DriverKernelOptions dk_options;
  dk_options.push_outputs = false;
  cosim::DriverKernelExtension ext(std::move(data.a), std::move(irq.a),
                                   /*budget=*/nullptr, dk_options);
  ctx.register_extension(&ext);

  ipc::send_message(data.b, ipc::DriverMessage::read_request("hw.out"));
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    ctx.run(100_ns);
    if (monitor->messages_seen() >= 2) break;
  }
  ipc::DriverMessage reply = ipc::recv_message(data.b);
  EXPECT_EQ(reply.type, ipc::MsgType::ReadReply);
  ctx.unregister_extension(&ext);

  monitor->finish();
  EXPECT_EQ(monitor->messages_seen(), 2u);
  EXPECT_EQ(monitor->diags().errors(), 0u);
  EXPECT_EQ(monitor->diags().warnings(), 0u);
}

}  // namespace
}  // namespace nisc::analysis
