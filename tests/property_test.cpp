// Property-based and fuzz tests across modules: randomized inputs checked
// against invariants and independent oracles.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "ipc/message.hpp"
#include "iss/assembler.hpp"
#include "iss/cpu.hpp"
#include "iss/isa.hpp"
#include "rsp/packet.hpp"
#include "util/checksum.hpp"
#include "util/hex.hpp"
#include "util/rng.hpp"

namespace {

using nisc::util::Rng;

// ---------------------------------------------------------------- ISA fuzz

TEST(IsaProperty, RandomWordsNeverCrashTheDecoder) {
  Rng rng(101);
  for (int i = 0; i < 200000; ++i) {
    nisc::iss::Instr instr = nisc::iss::decode(rng.next_u32());
    if (instr.op != nisc::iss::Op::Illegal) {
      // Every legal decode must disassemble and re-encode without throwing.
      std::string text = nisc::iss::disassemble(instr);
      ASSERT_FALSE(text.empty());
      std::uint32_t word = nisc::iss::encode(instr);
      (void)word;
    }
  }
}

TEST(IsaProperty, DecodeEncodeDecodeIsStable) {
  // For legal words, the canonical re-encoding must decode to an equivalent
  // instruction (same disassembly). FENCE/ECALL/EBREAK are canonicalized.
  Rng rng(202);
  int checked = 0;
  for (int i = 0; i < 200000; ++i) {
    std::uint32_t word = rng.next_u32();
    nisc::iss::Instr a = nisc::iss::decode(word);
    if (a.op == nisc::iss::Op::Illegal || a.op == nisc::iss::Op::Fence) continue;
    nisc::iss::Instr b = nisc::iss::decode(nisc::iss::encode(a));
    ASSERT_EQ(nisc::iss::disassemble(a), nisc::iss::disassemble(b)) << "word=" << word;
    ++checked;
  }
  EXPECT_GT(checked, 5000);  // the encoding space is dense enough to hit
}

// ------------------------------------------------- CPU vs host-side oracle

/// Host-side evaluator for register-register/immediate arithmetic — an
/// independent oracle for the interpreter's ALU semantics.
std::uint32_t oracle_alu(nisc::iss::Op op, std::uint32_t rs1, std::uint32_t rs2,
                         std::int32_t imm) {
  using nisc::iss::Op;
  auto s = [](std::uint32_t v) { return static_cast<std::int32_t>(v); };
  switch (op) {
    case Op::Addi: return rs1 + static_cast<std::uint32_t>(imm);
    case Op::Slti: return s(rs1) < imm ? 1 : 0;
    case Op::Sltiu: return rs1 < static_cast<std::uint32_t>(imm) ? 1 : 0;
    case Op::Xori: return rs1 ^ static_cast<std::uint32_t>(imm);
    case Op::Ori: return rs1 | static_cast<std::uint32_t>(imm);
    case Op::Andi: return rs1 & static_cast<std::uint32_t>(imm);
    case Op::Add: return rs1 + rs2;
    case Op::Sub: return rs1 - rs2;
    case Op::Sll: return rs1 << (rs2 & 31);
    case Op::Slt: return s(rs1) < s(rs2) ? 1 : 0;
    case Op::Sltu: return rs1 < rs2 ? 1 : 0;
    case Op::Xor: return rs1 ^ rs2;
    case Op::Srl: return rs1 >> (rs2 & 31);
    case Op::Sra: return static_cast<std::uint32_t>(s(rs1) >> (rs2 & 31));
    case Op::Or: return rs1 | rs2;
    case Op::And: return rs1 & rs2;
    case Op::Mul: return rs1 * rs2;
    default: return 0;
  }
}

TEST(CpuProperty, RandomAluProgramsMatchOracle) {
  using nisc::iss::Op;
  static constexpr std::array<Op, 11> kRegOps = {Op::Add, Op::Sub, Op::Sll, Op::Slt,
                                                 Op::Sltu, Op::Xor, Op::Srl, Op::Sra,
                                                 Op::Or, Op::And, Op::Mul};
  static constexpr std::array<Op, 6> kImmOps = {Op::Addi, Op::Slti, Op::Sltiu,
                                                Op::Xori, Op::Ori, Op::Andi};
  Rng rng(303);
  for (int trial = 0; trial < 200; ++trial) {
    // Generate a random straight-line ALU program over x1..x15.
    std::array<std::uint32_t, 32> oracle_regs{};
    nisc::iss::Cpu cpu(1 << 16);
    std::uint32_t addr = 0;
    const int length = 1 + static_cast<int>(rng.below(60));
    for (int i = 0; i < length; ++i) {
      nisc::iss::Instr instr;
      instr.rd = static_cast<std::uint8_t>(1 + rng.below(15));
      instr.rs1 = static_cast<std::uint8_t>(rng.below(16));
      if (rng.chance(0.5)) {
        instr.op = kRegOps[rng.below(kRegOps.size())];
        instr.rs2 = static_cast<std::uint8_t>(rng.below(16));
      } else {
        instr.op = kImmOps[rng.below(kImmOps.size())];
        instr.imm = static_cast<std::int32_t>(rng.between(0, 4095)) - 2048;
      }
      cpu.mem().write32(addr, nisc::iss::encode(instr));
      addr += 4;
      // Oracle evaluation.
      std::uint32_t result = oracle_alu(instr.op, oracle_regs[instr.rs1],
                                        oracle_regs[instr.rs2], instr.imm);
      if (instr.rd != 0) oracle_regs[instr.rd] = result;
    }
    cpu.mem().write32(addr, nisc::iss::encode({nisc::iss::Op::Ebreak, 0, 0, 0, 0}));
    ASSERT_EQ(cpu.run(10000), nisc::iss::Halt::Ebreak) << "trial " << trial;
    for (std::uint8_t r = 0; r < 16; ++r) {
      ASSERT_EQ(cpu.reg(r), oracle_regs[r]) << "trial " << trial << " reg " << int(r);
    }
  }
}

TEST(CpuProperty, RandomMemoryImagesNeverCrash) {
  Rng rng(404);
  for (int trial = 0; trial < 100; ++trial) {
    nisc::iss::Cpu cpu(4096);
    for (std::uint32_t a = 0; a < 4096; a += 4) cpu.mem().write32(a, rng.next_u32());
    nisc::iss::Halt halt = cpu.run(5000);
    // Whatever happens, the CPU halts or exhausts its quantum with sane state.
    EXPECT_EQ(cpu.reg(0), 0u);
    (void)halt;
  }
}

TEST(CpuProperty, X0StaysZeroUnderRandomArithmetic) {
  Rng rng(505);
  nisc::iss::Cpu cpu(1 << 12);
  std::uint32_t addr = 0;
  for (int i = 0; i < 100; ++i) {
    nisc::iss::Instr instr{nisc::iss::Op::Addi, 0, static_cast<std::uint8_t>(rng.below(32)), 0,
                           static_cast<std::int32_t>(rng.below(100))};
    cpu.mem().write32(addr, nisc::iss::encode(instr));
    addr += 4;
  }
  cpu.mem().write32(addr, nisc::iss::encode({nisc::iss::Op::Ebreak, 0, 0, 0, 0}));
  EXPECT_EQ(cpu.run(1000), nisc::iss::Halt::Ebreak);
  EXPECT_EQ(cpu.reg(0), 0u);
}

// ---------------------------------------------------------------- RSP fuzz

TEST(RspProperty, RandomBytesNeverCrashTheReader) {
  Rng rng(606);
  nisc::rsp::PacketReader reader;
  for (int burst = 0; burst < 2000; ++burst) {
    std::uint8_t buf[64];
    std::size_t n = 1 + rng.below(sizeof(buf));
    for (std::size_t i = 0; i < n; ++i) buf[i] = static_cast<std::uint8_t>(rng.next_u32());
    reader.feed(std::span<const std::uint8_t>(buf, n));
    while (reader.next().has_value()) {
    }
  }
}

TEST(RspProperty, FrameParseRoundTripsArbitraryPayloads) {
  Rng rng(707);
  for (int trial = 0; trial < 2000; ++trial) {
    std::string payload;
    std::size_t n = rng.below(64);
    for (std::size_t i = 0; i < n; ++i) {
      payload.push_back(static_cast<char>(rng.between(1, 126)));  // no NUL
    }
    std::string frame = nisc::rsp::frame_packet(payload);
    nisc::rsp::PacketReader reader;
    reader.feed(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(frame.data()), frame.size()));
    auto event = reader.next();
    ASSERT_TRUE(event.has_value());
    ASSERT_EQ(event->kind, nisc::rsp::RspEventKind::Packet);
    ASSERT_EQ(event->payload, payload);
    EXPECT_FALSE(reader.next().has_value());
  }
}

// ---------------------------------------------------------------- message fuzz

TEST(MessageProperty, RandomBodiesNeverCrashTheDecoder) {
  Rng rng(808);
  for (int trial = 0; trial < 5000; ++trial) {
    std::vector<std::uint8_t> body(rng.below(128));
    for (auto& b : body) b = static_cast<std::uint8_t>(rng.next_u32());
    auto result = nisc::ipc::decode_message_body(body);
    (void)result;  // ok or clean error, never UB
  }
}

TEST(MessageProperty, EncodeDecodeIsIdentityForRandomMessages) {
  Rng rng(909);
  for (int trial = 0; trial < 1000; ++trial) {
    nisc::ipc::DriverMessage msg;
    msg.type = static_cast<nisc::ipc::MsgType>(rng.below(4));
    std::size_t items = rng.below(5);
    for (std::size_t i = 0; i < items; ++i) {
      nisc::ipc::MsgItem item;
      std::size_t name_len = 1 + rng.below(20);
      for (std::size_t c = 0; c < name_len; ++c) {
        item.port.push_back(static_cast<char>(rng.between('a', 'z')));
      }
      item.data.resize(rng.below(40));
      for (auto& b : item.data) b = static_cast<std::uint8_t>(rng.next_u32());
      msg.items.push_back(std::move(item));
    }
    auto frame = nisc::ipc::encode_message(msg);
    auto decoded = nisc::ipc::decode_message_body(
        std::span<const std::uint8_t>(frame).subspan(4));
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded.value(), msg);
  }
}

// ---------------------------------------------------------------- checksum properties

TEST(ChecksumProperty, InternetChecksumVerifiesAppendedData) {
  Rng rng(111);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> data(2 * (1 + rng.below(100)));  // even length
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u32());
    std::uint16_t checksum = nisc::util::internet_checksum(data);
    data.push_back(static_cast<std::uint8_t>(checksum & 0xFF));
    data.push_back(static_cast<std::uint8_t>(checksum >> 8));
    ASSERT_EQ(nisc::util::internet_checksum(data), 0);
  }
}

TEST(ChecksumProperty, Crc16DetectsSingleBitFlips) {
  Rng rng(222);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> data(1 + rng.below(64));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u32());
    std::uint16_t original = nisc::util::crc16_ccitt(data);
    std::size_t byte = rng.below(data.size());
    data[byte] ^= static_cast<std::uint8_t>(1u << rng.below(8));
    ASSERT_NE(nisc::util::crc16_ccitt(data), original);
  }
}

TEST(ChecksumProperty, WordSumMatchesNaiveSum) {
  Rng rng(333);
  for (int trial = 0; trial < 500; ++trial) {
    std::size_t words = rng.below(32);
    std::vector<std::uint8_t> data(words * 4);
    std::uint32_t expected = 0;
    for (std::size_t w = 0; w < words; ++w) {
      std::uint32_t v = rng.next_u32();
      expected += v;
      nisc::util::write_le(std::span<std::uint8_t>(data).subspan(w * 4), 4, v);
    }
    ASSERT_EQ(nisc::util::word_sum32(data), expected);
  }
}

// ---------------------------------------------------------------- hex property

TEST(HexProperty, EncodeDecodeIsIdentity) {
  Rng rng(444);
  for (int trial = 0; trial < 1000; ++trial) {
    std::vector<std::uint8_t> data(rng.below(64));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng.next_u32());
    auto decoded = nisc::util::hex_decode(nisc::util::hex_encode(data));
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded.value(), data);
  }
}

// ---------------------------------------------------------------- assembler property

TEST(AsmProperty, AssembleDisassembleAgreesOnMnemonic) {
  // Every mnemonic assembled alone must disassemble back to itself.
  const char* lines[] = {
      "add a0, a1, a2", "sub s0, s1, s2", "xor t0, t1, t2", "or t3, t4, t5",
      "and a3, a4, a5", "sll s3, s4, s5", "srl t6, a6, a7", "sra s6, s7, s8",
      "slt s9, s10, s11", "sltu a0, a1, a2", "mul a0, a1, a2", "div a0, a1, a2",
      "rem a0, a1, a2", "addi a0, a1, -5", "andi a0, a1, 7", "ori a0, a1, 7",
      "xori a0, a1, 7", "slti a0, a1, -1", "sltiu a0, a1, 9", "slli a0, a1, 3",
      "srli a0, a1, 3", "srai a0, a1, 3", "lw a0, 4(sp)", "lh a0, 2(sp)",
      "lb a0, 1(sp)", "lbu a0, 1(sp)", "lhu a0, 2(sp)", "sw a0, 4(sp)",
      "sh a0, 2(sp)", "sb a0, 1(sp)", "ecall", "ebreak",
  };
  for (const char* line : lines) {
    nisc::iss::Program prog = nisc::iss::assemble(std::string(line) + "\n");
    ASSERT_EQ(prog.bytes.size(), 4u) << line;
    std::uint32_t word = nisc::util::read_le(prog.bytes, 4);
    std::string mnemonic = std::string(line).substr(0, std::string(line).find(' '));
    std::string dis = nisc::iss::disassemble(nisc::iss::decode(word));
    ASSERT_EQ(dis.substr(0, mnemonic.size()), mnemonic) << line << " -> " << dis;
  }
}

TEST(AsmProperty, BranchOffsetsResolveBothDirections) {
  Rng rng(555);
  for (int trial = 0; trial < 50; ++trial) {
    // A chain of numbered labels with random forward/backward branches that
    // must all assemble (targets within range by construction).
    std::string source;
    const int blocks = 10;
    for (int b = 0; b < blocks; ++b) {
      source += "blk" + std::to_string(b) + ":\n  addi t0, t0, 1\n";
      int target = static_cast<int>(rng.below(blocks));
      source += "  beq t1, t2, blk" + std::to_string(target) + "\n";
    }
    source += "  ebreak\n";
    nisc::iss::Program prog = nisc::iss::assemble(source);
    EXPECT_EQ(prog.bytes.size(), static_cast<std::size_t>(blocks * 8 + 4));
  }
}

}  // namespace
