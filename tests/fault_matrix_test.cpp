// Fault matrix: every FaultKind x all three co-simulation schemes x two
// transports. Each cell boots a full router testbench with a seeded
// FaultPlan on the target-side transport, runs it to completion under a
// wall-clock deadline, and classifies the documented outcome:
//
//   Recovered        all produced traffic was delivered despite the fault
//                    (protocol-level recovery: RSP NAK/resend, reassembly)
//   Degraded         the run completed but lost capability or traffic: a
//                    Driver-Kernel port quiesced, a driver went dark, time
//                    correlation was abandoned, or packets were lost while
//                    the simulation itself stayed healthy
//   StructuredError  the scheme ended the run with a CosimError carrying a
//                    non-empty wire post-mortem
//
// Crashing and hanging are the only failure modes. The RNG seed is taken
// from NISC_FAULT_SEED when set (the CI sweep exercises several), so any
// seed must land every cell in one of the three classes above.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <tuple>

#include "analysis/protocol.hpp"
#include "ipc/fault.hpp"
#include "router/testbench.hpp"
#include "sysc/sysc.hpp"

namespace nisc {
namespace {

using router::Scheme;
using router::Testbench;
using router::TestbenchConfig;
using router::TestbenchReport;

enum class Outcome { Recovered, Degraded, StructuredError };

const char* outcome_name(Outcome outcome) {
  switch (outcome) {
    case Outcome::Recovered: return "Recovered";
    case Outcome::Degraded: return "Degraded";
    case Outcome::StructuredError: return "StructuredError";
  }
  return "?";
}

std::uint64_t seed_from_env() {
  const char* env = std::getenv("NISC_FAULT_SEED");
  if (env == nullptr || *env == '\0') return 0x1CEB00DAULL;
  return std::strtoull(env, nullptr, 0);
}

/// One deterministic plan per fault kind, aimed at protocol frames: the
/// defer rules (arg / min_size) skip one-byte RSP acks so the same plan is
/// meaningful on every scheme.
ipc::FaultPlan plan_for(ipc::FaultKind kind) {
  ipc::FaultPlan plan;
  plan.seed = seed_from_env();
  switch (kind) {
    case ipc::FaultKind::CorruptByte:
      plan.corrupt_send(1, 4);
      break;
    case ipc::FaultKind::Truncate:
      plan.truncate_send(2, 3);
      break;
    case ipc::FaultKind::Drop:
      plan.drop_send(2);
      break;
    case ipc::FaultKind::Duplicate:
      plan.duplicate_send(2);
      break;
    case ipc::FaultKind::Delay:
      plan.delay_send(1, 2000, 4);
      plan.specs.back().every = 2;  // every other sizeable send is late
      break;
    case ipc::FaultKind::ShortRead:
      plan.short_reads(1, 1, 50);  // first 50 reads dribble one byte each
      break;
    case ipc::FaultKind::EagainStorm:
      plan.eagain_storm(1, 20);
      break;
    case ipc::FaultKind::Disconnect:
      plan.disconnect_send(3, 2);
      break;
  }
  return plan;
}

TestbenchConfig cell_config(Scheme scheme, ipc::Transport transport) {
  TestbenchConfig config;
  config.scheme = scheme;
  config.transport = transport;
  config.packets_per_producer = 3;
  config.num_producers = 2;
  config.inter_packet_delay = sysc::sc_time::from_ps(2000000);  // 2 us
  config.instructions_per_us = 400000;
  // Shrunk deadlines so every faulted cell settles in seconds, not the
  // production 10 s / 30 s defaults.
  config.reply_timeout_ms = 500;
  config.io_timeout_ms = 1000;
  config.pay_timeout_ms = 300;
  if (scheme == Scheme::GdbWrapper) {
    // The wrapper pays one blocking RSP round trip per clock edge; a slow
    // clock keeps the cycle count (and the wall clock) bounded when a fault
    // makes the run last to the drain limit.
    config.clock_period = sysc::sc_time::from_ps(1000000);  // 1 us
  }
  return config;
}

analysis::ModelId model_for(Scheme scheme) {
  switch (scheme) {
    case Scheme::GdbWrapper: return analysis::ModelId::GdbWrapper;
    case Scheme::GdbKernel: return analysis::ModelId::GdbKernel;
    case Scheme::DriverKernel: return analysis::ModelId::DriverKernel;
  }
  return analysis::ModelId::GdbKernel;
}

/// Live conformance monitor for a cell: every session's SystemC-side wire
/// is checked against the scheme's protocol automaton as it runs.
std::shared_ptr<analysis::LiveConformanceMonitor> make_monitor(Scheme scheme) {
  return std::make_shared<analysis::LiveConformanceMonitor>(
      analysis::make_model(model_for(scheme)), "<live>");
}

/// Driver-Kernel cells additionally tap the interrupt socket on its pump
/// side: INTERRUPT frames arrive as Rx and the pump reports each ISR
/// retirement as an "ack" wire event, so the tap replays the delivery +
/// acknowledge cycle of the DriverIrq automaton (DESIGN.md §11).
std::shared_ptr<analysis::LiveConformanceMonitor> make_irq_monitor() {
  return std::make_shared<analysis::LiveConformanceMonitor>(
      analysis::make_model(analysis::ModelId::DriverIrq), "<live.irq>");
}

sysc::sc_time drain_limit(Scheme scheme) {
  return scheme == Scheme::GdbWrapper ? sysc::sc_time::from_ps(2000000000)   // 2 ms
                                      : sysc::sc_time::from_ps(5000000000);  // 5 ms
}

using Cell = std::tuple<Scheme, ipc::Transport, ipc::FaultKind>;

class FaultMatrix : public ::testing::TestWithParam<Cell> {};

TEST_P(FaultMatrix, CellSettlesWithDocumentedOutcome) {
  const auto [scheme, transport, kind] = GetParam();
  TestbenchConfig config = cell_config(scheme, transport);
  config.fault_plan = plan_for(kind);
  auto monitor = make_monitor(scheme);
  config.wire_observer = monitor;
  std::shared_ptr<analysis::LiveConformanceMonitor> irq_monitor;
  if (scheme == Scheme::DriverKernel) {
    irq_monitor = make_irq_monitor();
    config.irq_observer = irq_monitor;
  }

  const auto start = std::chrono::steady_clock::now();
  Testbench bench(config);
  bench.run_until_drained(drain_limit(scheme));
  TestbenchReport report = bench.report();

  // Classify. A quiesced port / dark driver / lost throttle is degradation
  // even though it latches a CosimError post-mortem: the simulation itself
  // kept running. Only a run the scheme had to end counts as a structured
  // error.
  Outcome outcome;
  if (bench.degraded()) {
    outcome = Outcome::Degraded;
  } else if (bench.cosim_error()) {
    outcome = Outcome::StructuredError;
  } else if (report.produced > 0 && report.received == report.produced) {
    outcome = Outcome::Recovered;
  } else {
    outcome = Outcome::Degraded;  // completed with traffic loss, no crash
  }

  // Any latched error must carry a usable post-mortem.
  if (auto error = bench.cosim_error()) {
    EXPECT_FALSE(error->scheme.empty());
    EXPECT_FALSE(error->message.empty());
    EXPECT_FALSE(error->post_mortem.empty());
  }

  // The plan must have actually bitten (the cell exercised the fault).
  EXPECT_GT(bench.faults_injected(), 0u)
      << ipc::fault_kind_name(kind) << " never triggered";

  bench.shutdown();  // must join every target thread promptly

  const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
      std::chrono::steady_clock::now() - start);
  EXPECT_LT(elapsed.count(), 60) << "cell blew its wall-clock deadline";

  // Informational: faulted wires are expected to violate the protocol; the
  // interesting signal is which NL4xx rules each fault kind trips.
  monitor->finish();
  RecordProperty("outcome", outcome_name(outcome));
  RecordProperty("nl4xx_errors", static_cast<int>(monitor->diags().errors()));
  std::uint64_t irq_msgs = 0;
  std::uint64_t irq_errors = 0;
  if (irq_monitor) {
    irq_monitor->finish();
    irq_msgs = irq_monitor->messages_seen();
    irq_errors = irq_monitor->diags().errors();
    RecordProperty("irq_nl4xx_errors", static_cast<int>(irq_errors));
    // The fault plan bites the data transport; the interrupt socket itself
    // stays clean, so the delivery/acknowledge cycle must conform even in a
    // faulted cell unless the run degraded (a quiesced port or dark driver
    // can strand a delivered irq mid-cycle).
    if (outcome == Outcome::Recovered) {
      EXPECT_EQ(irq_errors, 0u) << analysis::render_text(irq_monitor->diags());
    }
  }
  std::printf("[ cell ] %s / %s / %s -> %s (%llu/%llu packets, %llu faults, "
              "%llu wire msgs, %llu NL4xx errors, %llu irq msgs, %llu irq NL4xx)\n",
              router::scheme_name(scheme), ipc::transport_name(transport),
              ipc::fault_kind_name(kind), outcome_name(outcome),
              static_cast<unsigned long long>(report.received),
              static_cast<unsigned long long>(report.produced),
              static_cast<unsigned long long>(bench.faults_injected()),
              static_cast<unsigned long long>(monitor->messages_seen()),
              static_cast<unsigned long long>(monitor->diags().errors()),
              static_cast<unsigned long long>(irq_msgs),
              static_cast<unsigned long long>(irq_errors));
}

// A healthy control row: the same cell configuration with no plan installed
// must deliver everything — otherwise fault-cell outcomes would measure the
// shrunken config, not the fault.
class HealthyBaseline
    : public ::testing::TestWithParam<std::tuple<Scheme, ipc::Transport>> {};

TEST_P(HealthyBaseline, AllTrafficDelivered) {
  const auto [scheme, transport] = GetParam();
  TestbenchConfig config = cell_config(scheme, transport);
  auto monitor = make_monitor(scheme);
  config.wire_observer = monitor;
  std::shared_ptr<analysis::LiveConformanceMonitor> irq_monitor;
  if (scheme == Scheme::DriverKernel) {
    irq_monitor = make_irq_monitor();
    config.irq_observer = irq_monitor;
  }
  Testbench bench(config);
  bench.run_until_drained(drain_limit(scheme));
  TestbenchReport report = bench.report();
  EXPECT_EQ(report.received, report.produced);
  EXPECT_FALSE(bench.cosim_error().has_value());
  EXPECT_FALSE(bench.degraded());
  EXPECT_EQ(bench.faults_injected(), 0u);
  bench.shutdown();
  // A healthy wire must conform: zero NL4xx errors from the live monitor.
  monitor->finish();
  EXPECT_GT(monitor->messages_seen(), 0u);
  EXPECT_EQ(monitor->diags().errors(), 0u) << analysis::render_text(monitor->diags());
  if (irq_monitor) {
    // Packet arrival is announced over the interrupt socket, so a healthy
    // Driver-Kernel run must replay clean delivery/acknowledge cycles.
    irq_monitor->finish();
    EXPECT_GT(irq_monitor->messages_seen(), 0u);
    EXPECT_EQ(irq_monitor->diags().errors(), 0u)
        << analysis::render_text(irq_monitor->diags());
  }
}

std::string scheme_tag(Scheme scheme) {
  switch (scheme) {
    case Scheme::GdbWrapper: return "GdbWrapper";
    case Scheme::GdbKernel: return "GdbKernel";
    case Scheme::DriverKernel: return "DriverKernel";
  }
  return "unknown";
}

std::string kind_tag(ipc::FaultKind kind) {
  switch (kind) {
    case ipc::FaultKind::CorruptByte: return "CorruptByte";
    case ipc::FaultKind::Truncate: return "Truncate";
    case ipc::FaultKind::Drop: return "Drop";
    case ipc::FaultKind::Duplicate: return "Duplicate";
    case ipc::FaultKind::Delay: return "Delay";
    case ipc::FaultKind::ShortRead: return "ShortRead";
    case ipc::FaultKind::EagainStorm: return "EagainStorm";
    case ipc::FaultKind::Disconnect: return "Disconnect";
  }
  return "unknown";
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, FaultMatrix,
    ::testing::Combine(::testing::Values(Scheme::GdbWrapper, Scheme::GdbKernel,
                                         Scheme::DriverKernel),
                       ::testing::Values(ipc::Transport::Pipe, ipc::Transport::SocketPair),
                       ::testing::Values(ipc::FaultKind::CorruptByte, ipc::FaultKind::Truncate,
                                         ipc::FaultKind::Drop, ipc::FaultKind::Duplicate,
                                         ipc::FaultKind::Delay, ipc::FaultKind::ShortRead,
                                         ipc::FaultKind::EagainStorm,
                                         ipc::FaultKind::Disconnect)),
    [](const auto& info) {
      return scheme_tag(std::get<0>(info.param)) + "_" +
             ipc::transport_name(std::get<1>(info.param)) + "_" +
             kind_tag(std::get<2>(info.param));
    });

INSTANTIATE_TEST_SUITE_P(
    Control, HealthyBaseline,
    ::testing::Combine(::testing::Values(Scheme::GdbWrapper, Scheme::GdbKernel,
                                         Scheme::DriverKernel),
                       ::testing::Values(ipc::Transport::Pipe, ipc::Transport::SocketPair)),
    [](const auto& info) {
      return scheme_tag(std::get<0>(info.param)) + "_" +
             ipc::transport_name(std::get<1>(info.param));
    });

}  // namespace
}  // namespace nisc
