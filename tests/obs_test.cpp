// Observability-layer tests: metrics registry semantics (histogram bucket
// edges in particular) and the Chrome-trace exporter round trip, parsed
// back with the in-repo JSON parser.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"
#include "util/json.hpp"

using namespace nisc;

namespace {

TEST(MetricsTest, CounterAndGaugeBasics) {
  obs::Counter& c = obs::counter("test.counter");
  const std::uint64_t before = c.value();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), before + 42);
  // Same name -> same object, stable address.
  EXPECT_EQ(&c, &obs::counter("test.counter"));

  obs::Gauge& g = obs::gauge("test.gauge");
  g.set(-7);
  g.add(10);
  EXPECT_EQ(g.value(), 3);
}

TEST(MetricsTest, HistogramBucketBoundaryEdges) {
  obs::Histogram& h = obs::histogram("test.hist_edges", {10, 100});
  ASSERT_EQ(h.bucket_slots(), 3u);  // two bounds + overflow

  h.observe(0);    // lowest representable sample -> first bucket
  h.observe(10);   // exactly on a bound -> that bucket (inclusive)
  h.observe(11);   // one past the bound -> next bucket
  h.observe(100);  // exactly on the last bound -> last real bucket
  h.observe(101);  // one past the last bound -> overflow bucket

  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 0u + 10 + 11 + 100 + 101);
}

TEST(MetricsTest, HistogramQuantiles) {
  obs::Histogram& h = obs::histogram("test.hist_quantile", {1, 2, 4, 8});
  EXPECT_EQ(h.quantile(0.5), 0u);  // empty
  for (int i = 0; i < 90; ++i) h.observe(1);
  for (int i = 0; i < 10; ++i) h.observe(8);
  EXPECT_EQ(h.quantile(0.5), 1u);
  EXPECT_LE(h.quantile(0.95), 8u);
  EXPECT_GT(h.quantile(0.95), 1u);
}

TEST(MetricsTest, HistogramKeepsOriginalBounds) {
  obs::Histogram& h = obs::histogram("test.hist_bounds", {5, 50});
  obs::Histogram& again = obs::histogram("test.hist_bounds", {1, 2, 3});
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.bounds(), (std::vector<std::uint64_t>{5, 50}));
}

TEST(MetricsTest, RenderJsonParsesAndCarriesSchema) {
  obs::counter("test.render_counter").add(3);
  obs::gauge("test.render_gauge").set(-5);
  obs::histogram("test.render_hist", {10}).observe(7);

  const std::string json = obs::MetricsRegistry::instance().render_json();
  const util::JsonValue doc = util::parse_json(json);
  EXPECT_EQ(doc.at("schema").as_int(), 1);
  EXPECT_GE(doc.at("counters").at("test.render_counter").as_uint(), 3u);
  EXPECT_EQ(doc.at("gauges").at("test.render_gauge").as_int(), -5);
  const util::JsonValue& hist = doc.at("histograms").at("test.render_hist");
  EXPECT_GE(hist.at("count").as_uint(), 1u);
  EXPECT_EQ(hist.at("bounds").as_array().size(), 1u);
  EXPECT_EQ(hist.at("buckets").as_array().size(), 2u);
}

// ---------------------------------------------------------------------------
// Chrome-trace exporter round trip

class ChromeTraceTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::clear_trace(); }
  void TearDown() override {
    obs::disable_tracing();
    obs::clear_trace();
  }
};

TEST_F(ChromeTraceTest, ExportRoundTrip) {
  obs::enable_tracing();
  {
    obs::ScopedSpan outer("outer", "test", "arg", 42);
    obs::instant("tick", "test", "n", 7);
    obs::ScopedSpan inner("inner", "test");
  }
  std::thread worker([] {
    obs::set_thread_sim_time_ps(123456);
    {
      obs::ScopedSpan span("worker", "test");
      obs::instant("worker.tick", "test");
    }
    obs::set_thread_sim_time_ps(obs::kNoSimTime);
  });
  worker.join();
  obs::disable_tracing();

  // Valid JSON with the Chrome trace_event top-level shape.
  const util::JsonValue doc = util::parse_json(obs::chrome_trace_json());
  const util::JsonArray& events = doc.at("traceEvents").as_array();
  ASSERT_GE(events.size(), 8u);  // 3 B + 3 E + 2 i

  std::map<std::uint64_t, int> depth;           // per-tid open-span depth
  std::map<std::uint64_t, double> last_ts;      // per-tid timestamp monotonicity
  std::map<std::string, int> names;
  for (const util::JsonValue& e : events) {
    const std::string& ph = e.at("ph").as_string();
    ASSERT_TRUE(ph == "B" || ph == "E" || ph == "i") << ph;
    const std::uint64_t tid = e.at("tid").as_uint();
    const double ts = e.at("ts").as_double();
    auto it = last_ts.find(tid);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "non-monotonic ts on tid " << tid;
    }
    last_ts[tid] = ts;
    if (ph == "B") ++depth[tid];
    if (ph == "E") {
      --depth[tid];
      EXPECT_GE(depth[tid], 0) << "E without matching B on tid " << tid;
    }
    ++names[e.at("name").as_string()];
  }
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << "unbalanced spans on tid " << tid;
  EXPECT_EQ(names["outer"], 2);
  EXPECT_EQ(names["inner"], 2);
  EXPECT_EQ(names["worker"], 2);
  EXPECT_EQ(names["tick"], 1);

  // The worker thread published a simulated time: its events carry sim_ps.
  bool worker_sim_ps_seen = false;
  for (const util::JsonValue& e : events) {
    if (e.at("name").as_string() != "worker") continue;
    const util::JsonValue* args = e.find("args");
    ASSERT_NE(args, nullptr);
    const util::JsonValue* sim = args->find("sim_ps");
    ASSERT_NE(sim, nullptr);
    EXPECT_EQ(sim->as_uint(), 123456u);
    worker_sim_ps_seen = true;
  }
  EXPECT_TRUE(worker_sim_ps_seen);
}

TEST_F(ChromeTraceTest, RepairsUnbalancedSpans) {
  obs::enable_tracing();
  obs::emit('E', "orphan_end", "test");    // E with no B: must be dropped
  obs::emit('B', "dangling_begin", "test");  // B with no E: must be closed
  obs::instant("marker", "test");
  obs::disable_tracing();

  const util::JsonValue doc = util::parse_json(obs::chrome_trace_json());
  int balance = 0;
  int orphan_ends = 0;
  int dangling = 0;
  for (const util::JsonValue& e : doc.at("traceEvents").as_array()) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "B") ++balance;
    if (ph == "E") {
      --balance;
      EXPECT_GE(balance, 0);
    }
    if (e.at("name").as_string() == "orphan_end") ++orphan_ends;
    if (e.at("name").as_string() == "dangling_begin") ++dangling;
  }
  EXPECT_EQ(balance, 0);
  EXPECT_EQ(orphan_ends, 0) << "orphan E events must not survive export";
  EXPECT_EQ(dangling, 2) << "dangling B must gain a synthesized E";
}

TEST_F(ChromeTraceTest, DisabledEmitsNothing) {
  ASSERT_FALSE(obs::tracing_enabled());
  {
    obs::ScopedSpan span("invisible", "test");
    obs::instant("invisible.tick", "test");
  }
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST_F(ChromeTraceTest, RingCapacityBoundsMemory) {
  // The capacity override only applies to rings created afterwards, so the
  // spam runs on a fresh thread (the main thread's ring already exists).
  obs::enable_tracing(64);
  std::thread spammer([] {
    for (int i = 0; i < 1000; ++i) obs::instant("spam", "test");
  });
  spammer.join();
  obs::disable_tracing();
  EXPECT_LE(obs::trace_event_count(), 64u);
  EXPECT_GE(obs::trace_dropped_count(), 900u);
  // Export still parses after heavy eviction.
  const util::JsonValue doc = util::parse_json(obs::chrome_trace_json());
  EXPECT_LE(doc.at("traceEvents").as_array().size(), 64u);
}

TEST_F(ChromeTraceTest, InternReturnsStablePointers) {
  const char* a = obs::intern("runtime.name");
  const char* b = obs::intern(std::string("runtime.") + "name");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "runtime.name");
}

// ---------------------------------------------------------------------------
// Cross-process snapshot + merge (DESIGN.md §10.5)

TEST_F(ChromeTraceTest, TraceSnapshotEncodeDecodeRoundTrip) {
  obs::enable_tracing();
  obs::set_thread_sim_time_ps(4242);
  {
    obs::ScopedSpan span("snap.span", "test", "k", 9);
    obs::flow_begin("snap.flow", "flow", 0xBEEF);
    obs::instant("snap.tick", "test");
  }
  obs::set_thread_sim_time_ps(obs::kNoSimTime);
  obs::disable_tracing();

  const obs::TraceSnapshot snap = obs::take_trace_snapshot();
  ASSERT_FALSE(snap.threads.empty());
  std::size_t events = 0;
  for (const auto& t : snap.threads) events += t.events.size();
  ASSERT_GE(events, 4u);  // B + s + i + E

  const std::vector<std::uint8_t> wire = obs::encode_trace_snapshot(snap);
  const obs::TraceSnapshot back = obs::decode_trace_snapshot(wire);
  EXPECT_EQ(back, snap);

  // The flow event and the sim_ps stamp survive the wire.
  bool flow_seen = false;
  for (const auto& t : back.threads) {
    for (const auto& e : t.events) {
      if (e.phase == 's') {
        EXPECT_EQ(e.flow_id, 0xBEEFu);
        EXPECT_EQ(e.sim_ps, 4242u);
        flow_seen = true;
      }
    }
  }
  EXPECT_TRUE(flow_seen);

  // Corruption is loud, not silent: bad magic and truncation both throw.
  std::vector<std::uint8_t> bad = wire;
  bad[0] ^= 0xFF;
  EXPECT_THROW(obs::decode_trace_snapshot(bad), util::RuntimeError);
  EXPECT_THROW(
      obs::decode_trace_snapshot(std::span<const std::uint8_t>(wire.data(), wire.size() - 1)),
      util::RuntimeError);
}

TEST_F(ChromeTraceTest, MergedExportAlignsClocksAndLinksFlows) {
  // Two hand-built process snapshots: a supervisor-side flow start and a
  // worker-side flow finish sharing one id, with the worker clock 5µs
  // behind (offset +5000ns rebases it).
  obs::TraceSnapshot sup;
  sup.threads.push_back({1, 0, {
      {"sup.dev_write", "sup", "seq", 1, 10000, obs::kNoSimTime, 0, 'B'},
      {"dev_access", "flow", "", 0, 10500, obs::kNoSimTime, 77, 's'},
      {"sup.dev_write", "sup", "", 0, 11000, obs::kNoSimTime, 0, 'E'},
  }});
  obs::TraceSnapshot wrk;
  wrk.threads.push_back({2, 3, {
      {"worker.ecall", "worker", "addr", 0x200, 5200, 7000, 0, 'B'},
      {"dev_access", "flow", "", 0, 5400, 7000, 77, 'f'},
      {"worker.ecall", "worker", "", 0, 5600, 7000, 0, 'E'},
  }});
  std::vector<obs::ProcessTrace> procs;
  procs.push_back({"m/supervisor", 1, 0, std::move(sup)});
  procs.push_back({"m/worker", 2, 5000, std::move(wrk)});

  const util::JsonValue doc = util::parse_json(obs::chrome_trace_json(procs));
  const util::JsonArray& events = doc.at("traceEvents").as_array();

  std::map<std::string, unsigned> process_names;  // name -> pid
  double flow_start_ts = -1, flow_finish_ts = -1;
  unsigned flow_start_pid = 0, flow_finish_pid = 0;
  std::string flow_start_id, flow_finish_id;
  for (const util::JsonValue& e : events) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "M" && e.at("name").as_string() == "process_name") {
      process_names[e.at("args").at("name").as_string()] =
          static_cast<unsigned>(e.at("pid").as_uint());
    }
    if (ph == "s") {
      flow_start_ts = e.at("ts").as_double();
      flow_start_pid = static_cast<unsigned>(e.at("pid").as_uint());
      flow_start_id = e.at("id").as_string();
    }
    if (ph == "f") {
      flow_finish_ts = e.at("ts").as_double();
      flow_finish_pid = static_cast<unsigned>(e.at("pid").as_uint());
      flow_finish_id = e.at("id").as_string();
      EXPECT_EQ(e.at("bp").as_string(), "e");
    }
  }
  EXPECT_EQ(process_names["m/supervisor"], 1u);
  EXPECT_EQ(process_names["m/worker"], 2u);
  // Same flow id on both sides, different pids: the Perfetto arrow.
  EXPECT_EQ(flow_start_id, flow_finish_id);
  EXPECT_NE(flow_start_id, "");
  EXPECT_EQ(flow_start_pid, 1u);
  EXPECT_EQ(flow_finish_pid, 2u);
  // Worker ts 5400ns + offset 5000ns = 10400ns = 10.4µs: lands between the
  // supervisor's flow start (10.5µs) minus slack and span end.
  EXPECT_DOUBLE_EQ(flow_finish_ts, 10.4);
  EXPECT_DOUBLE_EQ(flow_start_ts, 10.5);

  // Worker events keep their sim_ps args through the merge.
  bool sim_seen = false;
  for (const util::JsonValue& e : events) {
    if (e.at("ph").as_string() != "B") continue;
    if (e.at("name").as_string() != "worker.ecall") continue;
    EXPECT_EQ(e.at("args").at("sim_ps").as_uint(), 7000u);
    EXPECT_EQ(e.at("args").at("addr").as_uint(), 0x200u);
    sim_seen = true;
  }
  EXPECT_TRUE(sim_seen);
}

TEST_F(ChromeTraceTest, DroppedEventsSurfaceAsCounter) {
  const std::uint64_t before = obs::counter("trace.dropped_events").value();
  obs::enable_tracing(32);
  std::thread spammer([] {
    for (int i = 0; i < 500; ++i) obs::instant("spam", "test");
  });
  spammer.join();
  obs::disable_tracing();
  // At least 500-32 evictions landed on the registry counter (S1: the same
  // counter `cosim_stat stats` prints).
  EXPECT_GE(obs::counter("trace.dropped_events").value(), before + 468);
  const util::JsonValue doc =
      util::parse_json(obs::MetricsRegistry::instance().render_json());
  EXPECT_GE(doc.at("counters").at("trace.dropped_events").as_uint(), before + 468);

  // The per-thread dropped count also rides in the snapshot.
  const obs::TraceSnapshot snap = obs::take_trace_snapshot();
  std::uint64_t snap_dropped = 0;
  for (const auto& t : snap.threads) snap_dropped += t.dropped;
  EXPECT_GE(snap_dropped, 468u);
}

// ---------------------------------------------------------------------------
// Concurrency (S3): export and render while writers are live. Run under
// TSan these must stay clean — rings are field-atomic, the registry locks.

TEST(MetricsConcurrencyTest, RenderAndSnapshotUnderConcurrentUpdates) {
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 4; ++w) {
    writers.emplace_back([&stop, w] {
      obs::Counter& c = obs::counter("test.concurrent_counter");
      obs::Gauge& g = obs::gauge("test.concurrent_gauge");
      obs::Histogram& h = obs::histogram("test.concurrent_hist", {10, 100, 1000});
      // A fixed floor of iterations, then spin until the readers finish —
      // guarantees real overlap regardless of scheduling.
      for (std::uint64_t i = 0; i < 1000 || !stop.load(std::memory_order_relaxed); ++i) {
        c.add();
        g.set(static_cast<std::int64_t>(i) * (w % 2 ? 1 : -1));
        h.observe(i % 2000);
      }
    });
  }
  for (int round = 0; round < 50; ++round) {
    const std::string json = obs::MetricsRegistry::instance().render_json();
    const util::JsonValue doc = util::parse_json(json);
    EXPECT_EQ(doc.at("schema").as_int(), 1);
    const obs::MetricsSnapshot snap = obs::MetricsRegistry::instance().snapshot();
    const util::JsonValue doc2 = util::parse_json(obs::render_snapshot_json(snap));
    EXPECT_EQ(doc2.at("schema").as_int(), 1);
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  EXPECT_GE(obs::counter("test.concurrent_counter").value(), 1u);
}

TEST_F(ChromeTraceTest, ExportWhileRecording) {
  obs::enable_tracing(1024);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  for (int w = 0; w < 3; ++w) {
    writers.emplace_back([&stop] {
      while (!stop.load(std::memory_order_relaxed)) {
        obs::ScopedSpan span("live.span", "test", "n", 1);
        obs::flow_step("live.flow", "flow", 0x1234);
        obs::instant("live.tick", "test");
      }
    });
  }
  // Snapshots and full JSON exports taken mid-recording must stay
  // well-formed (torn slots are skipped or repaired, never emitted raw).
  for (int round = 0; round < 20; ++round) {
    const obs::TraceSnapshot snap = obs::take_trace_snapshot();
    const std::vector<std::uint8_t> wire = obs::encode_trace_snapshot(snap);
    EXPECT_EQ(obs::decode_trace_snapshot(wire), snap);
    const util::JsonValue doc = util::parse_json(obs::chrome_trace_json());
    int balance = 0;
    for (const util::JsonValue& e : doc.at("traceEvents").as_array()) {
      const std::string& ph = e.at("ph").as_string();
      if (ph == "B") ++balance;
      if (ph == "E") {
        --balance;
        EXPECT_GE(balance, 0);
      }
    }
    EXPECT_EQ(balance, 0);
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  obs::disable_tracing();
}

}  // namespace
