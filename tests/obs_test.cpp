// Observability-layer tests: metrics registry semantics (histogram bucket
// edges in particular) and the Chrome-trace exporter round trip, parsed
// back with the in-repo JSON parser.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

using namespace nisc;

namespace {

TEST(MetricsTest, CounterAndGaugeBasics) {
  obs::Counter& c = obs::counter("test.counter");
  const std::uint64_t before = c.value();
  c.add();
  c.add(41);
  EXPECT_EQ(c.value(), before + 42);
  // Same name -> same object, stable address.
  EXPECT_EQ(&c, &obs::counter("test.counter"));

  obs::Gauge& g = obs::gauge("test.gauge");
  g.set(-7);
  g.add(10);
  EXPECT_EQ(g.value(), 3);
}

TEST(MetricsTest, HistogramBucketBoundaryEdges) {
  obs::Histogram& h = obs::histogram("test.hist_edges", {10, 100});
  ASSERT_EQ(h.bucket_slots(), 3u);  // two bounds + overflow

  h.observe(0);    // lowest representable sample -> first bucket
  h.observe(10);   // exactly on a bound -> that bucket (inclusive)
  h.observe(11);   // one past the bound -> next bucket
  h.observe(100);  // exactly on the last bound -> last real bucket
  h.observe(101);  // one past the last bound -> overflow bucket

  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 0u + 10 + 11 + 100 + 101);
}

TEST(MetricsTest, HistogramQuantiles) {
  obs::Histogram& h = obs::histogram("test.hist_quantile", {1, 2, 4, 8});
  EXPECT_EQ(h.quantile(0.5), 0u);  // empty
  for (int i = 0; i < 90; ++i) h.observe(1);
  for (int i = 0; i < 10; ++i) h.observe(8);
  EXPECT_EQ(h.quantile(0.5), 1u);
  EXPECT_LE(h.quantile(0.95), 8u);
  EXPECT_GT(h.quantile(0.95), 1u);
}

TEST(MetricsTest, HistogramKeepsOriginalBounds) {
  obs::Histogram& h = obs::histogram("test.hist_bounds", {5, 50});
  obs::Histogram& again = obs::histogram("test.hist_bounds", {1, 2, 3});
  EXPECT_EQ(&h, &again);
  EXPECT_EQ(again.bounds(), (std::vector<std::uint64_t>{5, 50}));
}

TEST(MetricsTest, RenderJsonParsesAndCarriesSchema) {
  obs::counter("test.render_counter").add(3);
  obs::gauge("test.render_gauge").set(-5);
  obs::histogram("test.render_hist", {10}).observe(7);

  const std::string json = obs::MetricsRegistry::instance().render_json();
  const util::JsonValue doc = util::parse_json(json);
  EXPECT_EQ(doc.at("schema").as_int(), 1);
  EXPECT_GE(doc.at("counters").at("test.render_counter").as_uint(), 3u);
  EXPECT_EQ(doc.at("gauges").at("test.render_gauge").as_int(), -5);
  const util::JsonValue& hist = doc.at("histograms").at("test.render_hist");
  EXPECT_GE(hist.at("count").as_uint(), 1u);
  EXPECT_EQ(hist.at("bounds").as_array().size(), 1u);
  EXPECT_EQ(hist.at("buckets").as_array().size(), 2u);
}

// ---------------------------------------------------------------------------
// Chrome-trace exporter round trip

class ChromeTraceTest : public ::testing::Test {
 protected:
  void SetUp() override { obs::clear_trace(); }
  void TearDown() override {
    obs::disable_tracing();
    obs::clear_trace();
  }
};

TEST_F(ChromeTraceTest, ExportRoundTrip) {
  obs::enable_tracing();
  {
    obs::ScopedSpan outer("outer", "test", "arg", 42);
    obs::instant("tick", "test", "n", 7);
    obs::ScopedSpan inner("inner", "test");
  }
  std::thread worker([] {
    obs::set_thread_sim_time_ps(123456);
    {
      obs::ScopedSpan span("worker", "test");
      obs::instant("worker.tick", "test");
    }
    obs::set_thread_sim_time_ps(obs::kNoSimTime);
  });
  worker.join();
  obs::disable_tracing();

  // Valid JSON with the Chrome trace_event top-level shape.
  const util::JsonValue doc = util::parse_json(obs::chrome_trace_json());
  const util::JsonArray& events = doc.at("traceEvents").as_array();
  ASSERT_GE(events.size(), 8u);  // 3 B + 3 E + 2 i

  std::map<std::uint64_t, int> depth;           // per-tid open-span depth
  std::map<std::uint64_t, double> last_ts;      // per-tid timestamp monotonicity
  std::map<std::string, int> names;
  for (const util::JsonValue& e : events) {
    const std::string& ph = e.at("ph").as_string();
    ASSERT_TRUE(ph == "B" || ph == "E" || ph == "i") << ph;
    const std::uint64_t tid = e.at("tid").as_uint();
    const double ts = e.at("ts").as_double();
    auto it = last_ts.find(tid);
    if (it != last_ts.end()) {
      EXPECT_GE(ts, it->second) << "non-monotonic ts on tid " << tid;
    }
    last_ts[tid] = ts;
    if (ph == "B") ++depth[tid];
    if (ph == "E") {
      --depth[tid];
      EXPECT_GE(depth[tid], 0) << "E without matching B on tid " << tid;
    }
    ++names[e.at("name").as_string()];
  }
  for (const auto& [tid, d] : depth) EXPECT_EQ(d, 0) << "unbalanced spans on tid " << tid;
  EXPECT_EQ(names["outer"], 2);
  EXPECT_EQ(names["inner"], 2);
  EXPECT_EQ(names["worker"], 2);
  EXPECT_EQ(names["tick"], 1);

  // The worker thread published a simulated time: its events carry sim_ps.
  bool worker_sim_ps_seen = false;
  for (const util::JsonValue& e : events) {
    if (e.at("name").as_string() != "worker") continue;
    const util::JsonValue* args = e.find("args");
    ASSERT_NE(args, nullptr);
    const util::JsonValue* sim = args->find("sim_ps");
    ASSERT_NE(sim, nullptr);
    EXPECT_EQ(sim->as_uint(), 123456u);
    worker_sim_ps_seen = true;
  }
  EXPECT_TRUE(worker_sim_ps_seen);
}

TEST_F(ChromeTraceTest, RepairsUnbalancedSpans) {
  obs::enable_tracing();
  obs::emit('E', "orphan_end", "test");    // E with no B: must be dropped
  obs::emit('B', "dangling_begin", "test");  // B with no E: must be closed
  obs::instant("marker", "test");
  obs::disable_tracing();

  const util::JsonValue doc = util::parse_json(obs::chrome_trace_json());
  int balance = 0;
  int orphan_ends = 0;
  int dangling = 0;
  for (const util::JsonValue& e : doc.at("traceEvents").as_array()) {
    const std::string& ph = e.at("ph").as_string();
    if (ph == "B") ++balance;
    if (ph == "E") {
      --balance;
      EXPECT_GE(balance, 0);
    }
    if (e.at("name").as_string() == "orphan_end") ++orphan_ends;
    if (e.at("name").as_string() == "dangling_begin") ++dangling;
  }
  EXPECT_EQ(balance, 0);
  EXPECT_EQ(orphan_ends, 0) << "orphan E events must not survive export";
  EXPECT_EQ(dangling, 2) << "dangling B must gain a synthesized E";
}

TEST_F(ChromeTraceTest, DisabledEmitsNothing) {
  ASSERT_FALSE(obs::tracing_enabled());
  {
    obs::ScopedSpan span("invisible", "test");
    obs::instant("invisible.tick", "test");
  }
  EXPECT_EQ(obs::trace_event_count(), 0u);
}

TEST_F(ChromeTraceTest, RingCapacityBoundsMemory) {
  // The capacity override only applies to rings created afterwards, so the
  // spam runs on a fresh thread (the main thread's ring already exists).
  obs::enable_tracing(64);
  std::thread spammer([] {
    for (int i = 0; i < 1000; ++i) obs::instant("spam", "test");
  });
  spammer.join();
  obs::disable_tracing();
  EXPECT_LE(obs::trace_event_count(), 64u);
  EXPECT_GE(obs::trace_dropped_count(), 900u);
  // Export still parses after heavy eviction.
  const util::JsonValue doc = util::parse_json(obs::chrome_trace_json());
  EXPECT_LE(doc.at("traceEvents").as_array().size(), 64u);
}

TEST_F(ChromeTraceTest, InternReturnsStablePointers) {
  const char* a = obs::intern("runtime.name");
  const char* b = obs::intern(std::string("runtime.") + "name");
  EXPECT_EQ(a, b);
  EXPECT_STREQ(a, "runtime.name");
}

}  // namespace
