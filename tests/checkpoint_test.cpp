// Unit tests for the crash-consistent checkpoint container (DESIGN.md §12):
// per-layer byte-identical round trips (ISS, kernel, channel, worker,
// unknown sections), the sparse-page memory encoding, bit-identical resume
// of a restored CPU, corruption detection (magic/version/truncation/CRC),
// and the supervisor<->worker frame/config codecs.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "cosim/checkpoint.hpp"
#include "cosim/worker.hpp"
#include "ipc/channel.hpp"
#include "iss/assembler.hpp"
#include "iss/cpu.hpp"
#include "iss/program.hpp"
#include "sysc/sysc.hpp"
#include "util/error.hpp"

namespace nisc::cosim {
namespace {

using namespace sysc::time_literals;

// A guest that keeps mutating registers and memory so mid-run snapshots are
// interesting: a counted loop accumulating into a0 and storing each partial
// sum to a walking pointer.
constexpr const char* kGuestSource = R"(
_start:
    li   a0, 0
    li   t0, 0
    li   t1, 200
    la   t2, sums
loop:
    add  a0, a0, t0
    sw   a0, 0(t2)
    addi t2, t2, 4
    addi t0, t0, 1
    bne  t0, t1, loop
    ebreak

sums:
    .space 1024
)";

iss::Cpu make_guest_cpu(std::size_t mem = 1 << 16) {
  const iss::Program program = iss::assemble(kGuestSource);
  iss::Cpu cpu(mem);
  program.load_into(cpu.mem());
  cpu.set_pc(program.entry);
  return cpu;
}

// ------------------------------------------------------------------- ISS

TEST(IssSnapshotTest, CaptureEncodeDecodeApplyRoundTripsBitIdentically) {
  iss::Cpu cpu = make_guest_cpu();
  cpu.add_breakpoint(0x400);
  cpu.add_watchpoint(0x800, 16);
  ASSERT_EQ(cpu.run(137), iss::Halt::Quantum);

  const IssSnapshot snap = IssSnapshot::capture(cpu);
  Checkpoint checkpoint;
  checkpoint.iss = snap;
  const std::vector<std::uint8_t> bytes = encode_checkpoint(checkpoint);
  const Checkpoint decoded = decode_checkpoint(bytes);
  ASSERT_TRUE(decoded.iss.has_value());
  EXPECT_EQ(*decoded.iss, snap);

  iss::Cpu restored(static_cast<std::size_t>(snap.mem_size));
  decoded.iss->apply(restored);
  EXPECT_EQ(IssSnapshot::capture(restored), snap);
  EXPECT_EQ(restored.pc(), cpu.pc());
  EXPECT_EQ(restored.instret(), cpu.instret());
  EXPECT_TRUE(restored.has_breakpoint(0x400));
}

TEST(IssSnapshotTest, RestoredCpuResumesBitIdenticallyToTheOriginal) {
  iss::Cpu control = make_guest_cpu();
  iss::Cpu victim = make_guest_cpu();
  ASSERT_EQ(victim.run(271), iss::Halt::Quantum);

  // "Crash" the victim, restore into a fresh CPU, run both to completion.
  const IssSnapshot snap = IssSnapshot::capture(victim);
  iss::Cpu recovered(static_cast<std::size_t>(snap.mem_size));
  snap.apply(recovered);

  const iss::Halt control_halt = control.run(1000000);
  const iss::Halt recovered_halt = recovered.run(1000000);
  EXPECT_EQ(control_halt, iss::Halt::Ebreak);
  EXPECT_EQ(recovered_halt, iss::Halt::Ebreak);
  EXPECT_EQ(IssSnapshot::capture(recovered), IssSnapshot::capture(control));
}

TEST(IssSnapshotTest, AllZeroPagesAreElided) {
  iss::Cpu cpu(1 << 20);  // 256 pages, almost all zero
  const std::uint32_t word = 0xDEADBEEF;
  cpu.mem().write_block(200 * kCheckpointPageSize + 12,
                        {reinterpret_cast<const std::uint8_t*>(&word), 4});
  const IssSnapshot snap = IssSnapshot::capture(cpu);
  ASSERT_EQ(snap.pages.size(), 1u);
  EXPECT_EQ(snap.pages[0].first, 200u);
  EXPECT_EQ(snap.pages[0].second.size(), kCheckpointPageSize);

  // Restore clears first, so a dirty target still converges to the snapshot.
  iss::Cpu dirty(1 << 20);
  const std::uint32_t junk = 0x12345678;
  dirty.mem().write_block(5 * kCheckpointPageSize,
                          {reinterpret_cast<const std::uint8_t*>(&junk), 4});
  snap.apply(dirty);
  EXPECT_EQ(IssSnapshot::capture(dirty), snap);
}

TEST(IssSnapshotTest, ApplyRejectsMemorySizeMismatch) {
  iss::Cpu cpu = make_guest_cpu(1 << 16);
  const IssSnapshot snap = IssSnapshot::capture(cpu);
  iss::Cpu wrong(1 << 15);
  EXPECT_THROW(snap.apply(wrong), util::RuntimeError);
}

// ------------------------------------------------------------------ kernel

TEST(KernelSectionTest, HandBuiltStateRoundTrips) {
  sysc::kernel_state state;
  state.now_ps = 123456789;
  state.timed_seq = 42;
  state.stats.delta_cycles = 7;
  state.stats.process_dispatches = 19;
  state.stats.channel_updates = 3;
  state.stats.timed_advances = 5;
  state.stats.extension_checks = 11;
  state.timed.push_back({200000, 40, false, "dev_irq", 0});
  state.timed.push_back({200000, 41, true, "poller", 0});
  state.delta_events.push_back({"dev_update", 1});

  Checkpoint checkpoint;
  checkpoint.kernel = state;
  const Checkpoint decoded = decode_checkpoint(encode_checkpoint(checkpoint));
  ASSERT_TRUE(decoded.kernel.has_value());
  EXPECT_EQ(*decoded.kernel, state);
}

TEST(KernelSectionTest, LiveContextSurvivesSaveEncodeDecodeRestore) {
  // A context with a pending timed notification, snapshotted mid-run,
  // shipped through the wire format, and restored into a rebuilt design.
  auto build = [](sysc::sc_simcontext& ctx) {
    sysc::sc_simcontext::ContextGuard guard(ctx);
    return std::make_unique<sysc::sc_event>("tick");
  };

  sysc::sc_simcontext original;
  auto tick = build(original);
  original.run(0_ns);  // initialization
  tick->notify(50_ns);
  original.run(10_ns);
  const sysc::kernel_state state = original.save_state();
  EXPECT_EQ(state.now_ps, 10000u);
  ASSERT_EQ(state.timed.size(), 1u);

  Checkpoint checkpoint;
  checkpoint.kernel = state;
  const Checkpoint decoded = decode_checkpoint(encode_checkpoint(checkpoint));
  ASSERT_TRUE(decoded.kernel.has_value());

  sysc::sc_simcontext rebuilt;
  auto tick2 = build(rebuilt);
  rebuilt.restore_state(*decoded.kernel);
  EXPECT_EQ(rebuilt.save_state(), state);
  EXPECT_EQ(rebuilt.time_stamp().ps(), 10000u);
}

// --------------------------------------------------------- channel / worker

TEST(ChannelSectionTest, ChannelsAndWorkerRoundTripInOrder) {
  Checkpoint checkpoint;
  checkpoint.channels.push_back({"worker-data", 17, 12, {1, 2, 3, 4}});
  checkpoint.channels.push_back({"sup-data", 12, 17, {}});
  WorkerSnapshot worker;
  worker.irqs_delivered = 5;
  worker.pending_irqs = {3, 1, 4};
  worker.dev_rx = {0xAA, 0xBB};
  checkpoint.worker = worker;

  const Checkpoint decoded = decode_checkpoint(encode_checkpoint(checkpoint));
  ASSERT_EQ(decoded.channels.size(), 2u);
  EXPECT_EQ(decoded.channels[0], checkpoint.channels[0]);
  EXPECT_EQ(decoded.channels[1], checkpoint.channels[1]);
  ASSERT_TRUE(decoded.worker.has_value());
  EXPECT_EQ(*decoded.worker, worker);
  EXPECT_EQ(decoded, checkpoint);
}

TEST(ChannelSectionTest, UnknownSectionsArePreservedVerbatim) {
  Checkpoint checkpoint;
  checkpoint.channels.push_back({"data", 1, 1, {}});
  checkpoint.extra.emplace_back(0x21565846u /* "FXV!" */,
                                std::vector<std::uint8_t>{9, 8, 7, 6, 5});

  const std::vector<std::uint8_t> bytes = encode_checkpoint(checkpoint);
  const Checkpoint decoded = decode_checkpoint(bytes);
  ASSERT_EQ(decoded.extra.size(), 1u);
  EXPECT_EQ(decoded.extra[0], checkpoint.extra[0]);
  // Forward compatibility: re-encoding reproduces the exact input bytes,
  // unknown section included.
  EXPECT_EQ(encode_checkpoint(decoded), bytes);
}

TEST(ChannelSectionTest, EncodingIsDeterministic) {
  iss::Cpu cpu = make_guest_cpu();
  ASSERT_EQ(cpu.run(64), iss::Halt::Quantum);
  Checkpoint checkpoint;
  checkpoint.iss = IssSnapshot::capture(cpu);
  checkpoint.channels.push_back({"worker-data", 2, 1, {}});
  EXPECT_EQ(encode_checkpoint(checkpoint), encode_checkpoint(checkpoint));
}

// -------------------------------------------------------------- corruption

std::vector<std::uint8_t> sample_checkpoint_bytes() {
  iss::Cpu cpu = make_guest_cpu();
  cpu.run(32);
  Checkpoint checkpoint;
  checkpoint.iss = IssSnapshot::capture(cpu);
  checkpoint.channels.push_back({"data", 3, 2, {}});
  return encode_checkpoint(checkpoint);
}

TEST(CorruptionTest, BadMagicIsRejected) {
  std::vector<std::uint8_t> bytes = sample_checkpoint_bytes();
  bytes[0] ^= 0xFF;
  EXPECT_THROW(decode_checkpoint(bytes), util::RuntimeError);
}

TEST(CorruptionTest, UnsupportedVersionIsRejected) {
  std::vector<std::uint8_t> bytes = sample_checkpoint_bytes();
  bytes[4] = 0x7F;  // version field follows the magic
  EXPECT_THROW(decode_checkpoint(bytes), util::RuntimeError);
}

TEST(CorruptionTest, TruncationIsRejectedAtEveryPrefix) {
  const std::vector<std::uint8_t> bytes = sample_checkpoint_bytes();
  // Chopping anywhere inside the container must throw, never misparse.
  for (std::size_t keep : {bytes.size() - 1, bytes.size() - 7, bytes.size() / 2,
                           std::size_t{9}, std::size_t{5}, std::size_t{1}}) {
    EXPECT_THROW(decode_checkpoint(std::span(bytes.data(), keep)), util::RuntimeError)
        << "prefix " << keep;
  }
}

TEST(CorruptionTest, PayloadBitFlipFailsTheSectionCrc) {
  std::vector<std::uint8_t> bytes = sample_checkpoint_bytes();
  bytes[bytes.size() / 2] ^= 0x01;  // somewhere inside a section payload
  EXPECT_THROW(decode_checkpoint(bytes), util::RuntimeError);
}

// -------------------------------------------------- worker config / frames

TEST(WorkerCodecTest, ConfigRoundTrips) {
  WorkerConfig config;
  config.guest_source = kGuestSource;
  config.mem_size = 1 << 18;
  config.ckpt_every = 97;
  config.fault = {FaultKind::CrashAt, 1234};
  EXPECT_EQ(decode_worker_config(encode_worker_config(config)), config);
}

TEST(WorkerCodecTest, FramesRoundTripOverASocketpair) {
  ipc::ChannelPair pair = ipc::make_channel_pair(ipc::Transport::SocketPair);
  pair.a.set_io_timeout(2000);
  pair.b.set_io_timeout(2000);

  WorkerFrame frame;
  frame.op = WorkerOp::DevWrite;
  frame.seq = 0x1122334455667788ULL;
  frame.payload = {1, 0, 0, 0, 7, 0, 0, 0};
  send_frame(pair.a, frame);
  EXPECT_EQ(recv_frame(pair.b), frame);

  WorkerFrame empty;
  empty.op = WorkerOp::Hello;
  empty.seq = 0;
  send_frame(pair.b, empty);
  EXPECT_EQ(recv_frame(pair.a), empty);
}

TEST(WorkerCodecTest, ConfigObsExtensionRoundTrips) {
  WorkerConfig config;
  config.guest_source = kGuestSource;
  config.mem_size = 1 << 18;
  config.ckpt_every = 97;
  config.trace = true;
  config.obs_export = true;
  config.trace_buf = 4096;
  config.clock_period_ps = 1250;
  config.worker_index = 3;
  config.session_label = "matrix-7";
  EXPECT_EQ(decode_worker_config(encode_worker_config(config)), config);
}

TEST(WorkerCodecTest, ConfigWithoutExtensionDecodesToDefaults) {
  // A pre-observability encoder stops after the fault block: chopping the
  // "WCX1" extension off must decode (old-wire compatibility) and leave the
  // obs fields at their defaults.
  WorkerConfig config;
  config.guest_source = kGuestSource;
  config.trace = true;
  config.obs_export = true;
  config.session_label = "dropme";
  std::vector<std::uint8_t> wire = encode_worker_config(config);

  // The extension is the encoding's tail: magic + flags + trace_buf +
  // clock_period + worker_index + label (u16 length prefix).
  const std::size_t ext_len = 4 + 1 + 8 + 4 + 4 + 2 + config.session_label.size();
  ASSERT_GT(wire.size(), ext_len);
  ASSERT_EQ(wire[wire.size() - ext_len], 'W');  // "WCX1" magic starts here
  wire.resize(wire.size() - ext_len);

  const WorkerConfig decoded = decode_worker_config(wire);
  EXPECT_EQ(decoded.guest_source, kGuestSource);
  EXPECT_FALSE(decoded.trace);
  EXPECT_FALSE(decoded.obs_export);
  EXPECT_EQ(decoded.session_label, "worker");
}

TEST(WorkerCodecTest, FrameTraceIdTrailerRoundTrips) {
  ipc::ChannelPair pair = ipc::make_channel_pair(ipc::Transport::SocketPair);
  pair.a.set_io_timeout(2000);
  pair.b.set_io_timeout(2000);

  WorkerFrame frame;
  frame.op = WorkerOp::DevWrite;
  frame.seq = 42;
  frame.trace_id = (1ULL << 48) | 42;
  frame.payload = {0, 2, 0, 0, 9, 0, 0, 0};
  send_frame(pair.a, frame);
  const WorkerFrame got = recv_frame(pair.b);
  EXPECT_EQ(got, frame);
  EXPECT_EQ(got.trace_id, (1ULL << 48) | 42);
  EXPECT_EQ(got.payload.size(), worker_op_fixed_payload(WorkerOp::DevWrite));

  // trace_id 0 = no trailer on the wire: both shapes interleave freely.
  frame.trace_id = 0;
  frame.seq = 43;
  send_frame(pair.a, frame);
  EXPECT_EQ(recv_frame(pair.b), frame);
}

TEST(WorkerCodecTest, LegacyDecoderSeesTrailerAsPayloadSuffix) {
  // What an old (pre-trailer) decoder does with a tagged frame: the 12-byte
  // trailer rides inside the payload. The frame still parses — prefix
  // fields are untouched — which is the compat contract: new fields extend,
  // never reshape. A variable-payload op (Ckpt) never gets a trailer, so
  // only fixed-payload ops need the suffix-tolerant read.
  ipc::ChannelPair pair = ipc::make_channel_pair(ipc::Transport::SocketPair);
  pair.a.set_io_timeout(2000);
  pair.b.set_io_timeout(2000);

  // Hand-encode DevWrite + trailer the way send_frame does...
  const std::uint64_t id = 0xABCDULL;
  std::vector<std::uint8_t> body;
  body.push_back(static_cast<std::uint8_t>(WorkerOp::DevWrite));
  for (int i = 0; i < 8; ++i) body.push_back(i == 0 ? 7 : 0);  // seq 7
  for (int i = 0; i < 8; ++i) body.push_back(0x5A);            // fixed payload
  for (int i = 0; i < 8; ++i) body.push_back(static_cast<std::uint8_t>(id >> (8 * i)));
  for (const char c : {'F', 'T', 'I', 'D'}) body.push_back(static_cast<std::uint8_t>(c));
  std::uint8_t len[4];
  const std::uint32_t body_len = static_cast<std::uint32_t>(body.size());
  std::memcpy(len, &body_len, 4);
  pair.a.send(len);
  pair.a.send(body);

  // ...the modern decoder strips it back out:
  const WorkerFrame got = recv_frame(pair.b);
  EXPECT_EQ(got.op, WorkerOp::DevWrite);
  EXPECT_EQ(got.seq, 7u);
  EXPECT_EQ(got.trace_id, id);
  EXPECT_EQ(got.payload.size(), 8u);

  // ...and peek_frame_trace_id reads it off the raw transfer (the ObsTap
  // wire-observer path) without decoding the frame.
  std::vector<std::uint8_t> transfer(len, len + 4);
  transfer.insert(transfer.end(), body.begin(), body.end());
  EXPECT_EQ(peek_frame_trace_id(ipc::CaptureDir::Tx, transfer), id);
  // Untagged or partial transfers peek as 0 (no correlation).
  transfer.resize(transfer.size() - 1);
  EXPECT_EQ(peek_frame_trace_id(ipc::CaptureDir::Tx, transfer), 0u);
}

TEST(WorkerCodecTest, ObsReportRoundTrips) {
  WorkerObsReport report;
  report.worker_now_ns = 0x1122334455ULL;
  report.metrics_json = "{\"schema\":1,\"counters\":{\"x\":3}}";
  obs::TraceSnapshot::Thread thread;
  thread.tid = 9;
  thread.dropped = 2;
  thread.events.push_back({"w.span", "worker", "addr", 0x200, 777, 5000, 0xF1, 'B'});
  report.trace.threads.push_back(std::move(thread));
  EXPECT_EQ(decode_obs_report(encode_obs_report(report)), report);
}

TEST(WorkerCodecTest, OversizedFrameHeaderIsAProtocolError) {
  ipc::ChannelPair pair = ipc::make_channel_pair(ipc::Transport::SocketPair);
  pair.b.set_io_timeout(2000);
  const std::uint32_t absurd = kMaxWorkerFrame + 1;
  std::uint8_t header[4];
  std::memcpy(header, &absurd, 4);
  pair.a.send(header);
  EXPECT_THROW(recv_frame(pair.b), util::RuntimeError);
}

// -------------------------------------------------------- describe / diff

TEST(DescribeDiffTest, DescribeNamesEverySection) {
  iss::Cpu cpu = make_guest_cpu();
  cpu.run(16);
  Checkpoint checkpoint;
  checkpoint.iss = IssSnapshot::capture(cpu);
  checkpoint.kernel = sysc::kernel_state{};
  checkpoint.channels.push_back({"data", 1, 0, {}});
  checkpoint.worker = WorkerSnapshot{};
  const std::string text = describe_checkpoint(checkpoint);
  EXPECT_NE(text.find("ISS"), std::string::npos);
  EXPECT_NE(text.find("KRNL"), std::string::npos);
  EXPECT_NE(text.find("CHAN"), std::string::npos);
  EXPECT_NE(text.find("WRKR"), std::string::npos);
}

TEST(DescribeDiffTest, DiffIsEmptyForEqualAndNamesTheFieldOtherwise) {
  iss::Cpu cpu = make_guest_cpu();
  cpu.run(16);
  Checkpoint a;
  a.iss = IssSnapshot::capture(cpu);
  Checkpoint b = a;
  EXPECT_TRUE(diff_checkpoints(a, b).empty());

  b.iss->pc += 4;
  const std::vector<std::string> diffs = diff_checkpoints(a, b);
  ASSERT_FALSE(diffs.empty());
  bool mentions_pc = false;
  for (const std::string& line : diffs) {
    if (line.find("pc") != std::string::npos) mentions_pc = true;
  }
  EXPECT_TRUE(mentions_pc);
}

TEST(DescribeDiffTest, DiffTruncatesAtMaxLines) {
  iss::Cpu a_cpu = make_guest_cpu();
  Checkpoint a;
  a.iss = IssSnapshot::capture(a_cpu);
  Checkpoint b = a;
  for (std::size_t i = 0; i < 31; ++i) b.iss->regs[i] ^= 0xFFFFFFFFu;
  b.iss->pc ^= 0xFFFFu;
  b.iss->instret = 999;
  const std::vector<std::string> diffs = diff_checkpoints(a, b, 8);
  ASSERT_LE(diffs.size(), 9u);  // 8 lines + the truncation marker
  EXPECT_NE(diffs.back().find("more difference"), std::string::npos);
}

}  // namespace
}  // namespace nisc::cosim
