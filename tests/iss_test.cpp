// Unit tests for the RV32IM ISS: ISA codec, memory, CPU semantics, debug
// surface (breakpoints/watchpoints) and the assembler.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "iss/assembler.hpp"
#include "iss/cpu.hpp"
#include "iss/isa.hpp"
#include "iss/memory.hpp"
#include "util/error.hpp"

namespace nisc::iss {
namespace {

using util::LogicError;
using util::RuntimeError;

// ---------------------------------------------------------------- isa

TEST(IsaTest, GoldenEncodings) {
  EXPECT_EQ(encode({Op::Addi, 1, 0, 0, 5}), 0x00500093u);
  EXPECT_EQ(encode({Op::Add, 3, 1, 2, 0}), 0x002081B3u);
  EXPECT_EQ(encode({Op::Lw, 5, 2, 0, 8}), 0x00812283u);
  EXPECT_EQ(encode({Op::Sw, 0, 2, 5, 12}), 0x00512623u);
  EXPECT_EQ(encode({Op::Ecall, 0, 0, 0, 0}), 0x00000073u);
  EXPECT_EQ(encode({Op::Ebreak, 0, 0, 0, 0}), 0x00100073u);
}

TEST(IsaTest, GoldenDecodes) {
  EXPECT_EQ(decode(0x00500093u), (Instr{Op::Addi, 1, 0, 5, 5}));  // rs2 field = imm bits
  Instr lw = decode(0x00812283u);
  EXPECT_EQ(lw.op, Op::Lw);
  EXPECT_EQ(lw.rd, 5);
  EXPECT_EQ(lw.rs1, 2);
  EXPECT_EQ(lw.imm, 8);
}

TEST(IsaTest, IllegalWordsDecodeAsIllegal) {
  EXPECT_EQ(decode(0x00000000u).op, Op::Illegal);
  EXPECT_EQ(decode(0xFFFFFFFFu).op, Op::Illegal);
  EXPECT_EQ(decode(0x0000007Fu).op, Op::Illegal);
}

TEST(IsaTest, EncodeRejectsIllegal) {
  EXPECT_THROW(encode(Instr{}), LogicError);
  EXPECT_THROW(encode({Op::Addi, 1, 0, 0, 5000}), LogicError);   // imm12 overflow
  EXPECT_THROW(encode({Op::Beq, 0, 1, 2, 3}), LogicError);       // odd branch offset
  EXPECT_THROW(encode({Op::Slli, 1, 1, 0, 37}), LogicError);     // shamt >= 32
}

TEST(IsaTest, RegNames) {
  EXPECT_EQ(reg_abi_name(0), "zero");
  EXPECT_EQ(reg_abi_name(1), "ra");
  EXPECT_EQ(reg_abi_name(2), "sp");
  EXPECT_EQ(reg_abi_name(10), "a0");
  EXPECT_EQ(reg_abi_name(31), "t6");
}

TEST(IsaTest, ParseReg) {
  EXPECT_EQ(parse_reg("x0"), 0);
  EXPECT_EQ(parse_reg("x31"), 31);
  EXPECT_EQ(parse_reg("zero"), 0);
  EXPECT_EQ(parse_reg("sp"), 2);
  EXPECT_EQ(parse_reg("a0"), 10);
  EXPECT_EQ(parse_reg("fp"), 8);
  EXPECT_EQ(parse_reg("s0"), 8);
  EXPECT_FALSE(parse_reg("x32").has_value());
  EXPECT_FALSE(parse_reg("q7").has_value());
  EXPECT_FALSE(parse_reg("").has_value());
}

TEST(IsaTest, Disassemble) {
  EXPECT_EQ(disassemble(decode(0x00500093u)), "addi x1, x0, 5");
  EXPECT_EQ(disassemble(decode(0x002081B3u)), "add x3, x1, x2");
  EXPECT_EQ(disassemble(decode(0x00812283u)), "lw x5, 8(x2)");
  EXPECT_EQ(disassemble(decode(0x00000073u)), "ecall");
}

TEST(IsaTest, RangeHelpers) {
  EXPECT_TRUE(fits_imm12(2047));
  EXPECT_TRUE(fits_imm12(-2048));
  EXPECT_FALSE(fits_imm12(2048));
  EXPECT_TRUE(fits_branch(-4096));
  EXPECT_FALSE(fits_branch(4095));  // odd
  EXPECT_TRUE(fits_jump(1048574));
  EXPECT_FALSE(fits_jump(1048575));
}

class IsaRoundTrip : public ::testing::TestWithParam<Instr> {};

TEST_P(IsaRoundTrip, EncodeDecodeIsIdentity) {
  const Instr& original = GetParam();
  Instr round = decode(encode(original));
  EXPECT_EQ(round.op, original.op) << disassemble(original);
  if (round.op != Op::Fence && round.op != Op::Ecall && round.op != Op::Ebreak) {
    EXPECT_EQ(disassemble(round), disassemble(original));
  }
}

std::vector<Instr> roundtrip_cases() {
  std::vector<Instr> cases = {
      {Op::Lui, 7, 0, 0, static_cast<std::int32_t>(0xABCDE000)},
      {Op::Auipc, 3, 0, 0, 0x7F000},
      {Op::Jal, 1, 0, 0, -2048},
      {Op::Jal, 0, 0, 0, 1048574},
      {Op::Jalr, 1, 5, 0, -4},
      {Op::Beq, 0, 1, 2, -4096},
      {Op::Bne, 0, 3, 4, 4094},
      {Op::Blt, 0, 5, 6, 8},
      {Op::Bge, 0, 7, 8, -8},
      {Op::Bltu, 0, 9, 10, 100},
      {Op::Bgeu, 0, 11, 12, -100},
      {Op::Lb, 1, 2, 0, -1},
      {Op::Lh, 3, 4, 0, 2},
      {Op::Lw, 5, 6, 0, 2047},
      {Op::Lbu, 7, 8, 0, -2048},
      {Op::Lhu, 9, 10, 0, 0},
      {Op::Sb, 0, 1, 2, -1},
      {Op::Sh, 0, 3, 4, 2},
      {Op::Sw, 0, 5, 6, 2047},
      {Op::Addi, 1, 2, 0, -2048},
      {Op::Slti, 3, 4, 0, 5},
      {Op::Sltiu, 5, 6, 0, 7},
      {Op::Xori, 7, 8, 0, -1},
      {Op::Ori, 9, 10, 0, 255},
      {Op::Andi, 11, 12, 0, 15},
      {Op::Slli, 13, 14, 0, 31},
      {Op::Srli, 15, 16, 0, 1},
      {Op::Srai, 17, 18, 0, 16},
      {Op::Add, 19, 20, 21, 0},
      {Op::Sub, 22, 23, 24, 0},
      {Op::Sll, 25, 26, 27, 0},
      {Op::Slt, 28, 29, 30, 0},
      {Op::Sltu, 31, 1, 2, 0},
      {Op::Xor, 3, 4, 5, 0},
      {Op::Srl, 6, 7, 8, 0},
      {Op::Sra, 9, 10, 11, 0},
      {Op::Or, 12, 13, 14, 0},
      {Op::And, 15, 16, 17, 0},
      {Op::Fence, 0, 0, 0, 0},
      {Op::Ecall, 0, 0, 0, 0},
      {Op::Ebreak, 0, 0, 0, 0},
      {Op::Mul, 1, 2, 3, 0},
      {Op::Mulh, 4, 5, 6, 0},
      {Op::Mulhsu, 7, 8, 9, 0},
      {Op::Mulhu, 10, 11, 12, 0},
      {Op::Div, 13, 14, 15, 0},
      {Op::Divu, 16, 17, 18, 0},
      {Op::Rem, 19, 20, 21, 0},
      {Op::Remu, 22, 23, 24, 0},
  };
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllOps, IsaRoundTrip, ::testing::ValuesIn(roundtrip_cases()),
                         [](const auto& info) {
                           return std::string(op_name(info.param.op)) + "_" +
                                  std::to_string(info.index);
                         });

// ---------------------------------------------------------------- memory

TEST(MemoryTest, LittleEndianLayout) {
  Memory mem(64);
  mem.write32(0, 0x11223344);
  EXPECT_EQ(mem.read8(0), 0x44);
  EXPECT_EQ(mem.read8(3), 0x11);
  EXPECT_EQ(mem.read16(0), 0x3344);
  EXPECT_EQ(mem.read16(2), 0x1122);
}

TEST(MemoryTest, WidthRoundTrips) {
  Memory mem(64);
  mem.write8(10, 0xAB);
  EXPECT_EQ(mem.read8(10), 0xAB);
  mem.write16(12, 0xBEEF);
  EXPECT_EQ(mem.read16(12), 0xBEEF);
  mem.write32(16, 0xCAFEBABE);
  EXPECT_EQ(mem.read32(16), 0xCAFEBABE);
}

TEST(MemoryTest, OutOfBoundsThrows) {
  Memory mem(16);
  EXPECT_THROW(mem.read8(16), RuntimeError);
  EXPECT_THROW(mem.read32(13), RuntimeError);
  EXPECT_THROW(mem.write32(14, 0), RuntimeError);
  EXPECT_NO_THROW(mem.read32(12));
}

TEST(MemoryTest, BlockOps) {
  Memory mem(64);
  std::vector<std::uint8_t> data = {1, 2, 3, 4, 5};
  mem.write_block(20, data);
  EXPECT_EQ(mem.read_block(20, 5), data);
  EXPECT_THROW(mem.write_block(62, data), RuntimeError);
}

TEST(MemoryTest, ClearZeroes) {
  Memory mem(32);
  mem.write32(0, 0xFFFFFFFF);
  mem.clear();
  EXPECT_EQ(mem.read32(0), 0u);
}

// ---------------------------------------------------------------- cpu helpers

/// Assembles and runs `source` for at most `max` instructions.
Cpu run_program(const std::string& source, std::uint64_t max = 10000) {
  Cpu cpu(1 << 16);
  Program prog = assemble(source);
  prog.load_into(cpu.mem());
  cpu.reset(prog.entry);
  cpu.run(max);
  return cpu;
}

constexpr std::uint8_t kA0 = 10;
constexpr std::uint8_t kA1 = 11;

// ---------------------------------------------------------------- cpu: ALU sweep

struct AluCase {
  const char* name;
  const char* body;           // program body; result expected in a0
  std::uint32_t expected_a0;
};

class CpuAluTest : public ::testing::TestWithParam<AluCase> {};

TEST_P(CpuAluTest, ComputesExpectedValue) {
  const AluCase& c = GetParam();
  Cpu cpu = run_program(std::string(c.body) + "\nebreak\n");
  EXPECT_EQ(cpu.last_halt(), Halt::Ebreak);
  EXPECT_EQ(cpu.reg(kA0), c.expected_a0) << c.body;
}

const AluCase kAluCases[] = {
    {"addi", "li a0, 5\naddi a0, a0, 7", 12},
    {"addi_neg", "li a0, 5\naddi a0, a0, -7", static_cast<std::uint32_t>(-2)},
    {"add", "li a1, 100\nli a2, 23\nadd a0, a1, a2", 123},
    {"sub", "li a1, 100\nli a2, 23\nsub a0, a1, a2", 77},
    {"sub_wrap", "li a1, 0\nli a2, 1\nsub a0, a1, a2", 0xFFFFFFFF},
    {"slt_true", "li a1, -5\nli a2, 3\nslt a0, a1, a2", 1},
    {"slt_false", "li a1, 3\nli a2, -5\nslt a0, a1, a2", 0},
    {"sltu_true", "li a1, 3\nli a2, -5\nsltu a0, a1, a2", 1},  // -5 unsigned is huge
    {"slti", "li a1, -10\nslti a0, a1, -5", 1},
    {"sltiu", "li a1, 4\nsltiu a0, a1, 5", 1},
    {"xor", "li a1, 0xFF\nli a2, 0x0F\nxor a0, a1, a2", 0xF0},
    {"xori", "li a1, 0xF0\nxori a0, a1, 0xF", 0xFF},
    {"or", "li a1, 0xF0\nli a2, 0x0F\nor a0, a1, a2", 0xFF},
    {"ori", "li a1, 0xF0\nori a0, a1, 0x0F", 0xFF},
    {"and", "li a1, 0xFF\nli a2, 0x3C\nand a0, a1, a2", 0x3C},
    {"andi", "li a1, 0xFF\nandi a0, a1, 0x3C", 0x3C},
    {"sll", "li a1, 1\nli a2, 8\nsll a0, a1, a2", 256},
    {"slli", "li a1, 3\nslli a0, a1, 4", 48},
    {"srl", "li a1, 256\nli a2, 4\nsrl a0, a1, a2", 16},
    {"srli", "li a1, -1\nsrli a0, a1, 28", 0xF},
    {"sra", "li a1, -16\nli a2, 2\nsra a0, a1, a2", static_cast<std::uint32_t>(-4)},
    {"srai", "li a1, -16\nsrai a0, a1, 2", static_cast<std::uint32_t>(-4)},
    {"sll_masks_shamt", "li a1, 1\nli a2, 33\nsll a0, a1, a2", 2},  // shamt & 31
    {"lui", "lui a0, 0x12345", 0x12345000},
    {"li_large", "li a0, 0x12345678", 0x12345678},
    {"li_neg_large", "li a0, -305419896", static_cast<std::uint32_t>(-305419896)},
    {"li_hi_bit", "li a0, 0x80000000", 0x80000000},
    {"li_edge_0x800", "li a0, 0x800", 0x800},   // exercises hi/lo sign fixup
    {"li_edge_0xFFF", "li a0, 0xFFF", 0xFFF},
    {"mv", "li a1, 42\nmv a0, a1", 42},
    {"not", "li a1, 0\nnot a0, a1", 0xFFFFFFFF},
    {"neg", "li a1, 5\nneg a0, a1", static_cast<std::uint32_t>(-5)},
    {"seqz_true", "li a1, 0\nseqz a0, a1", 1},
    {"seqz_false", "li a1, 3\nseqz a0, a1", 0},
    {"snez_true", "li a1, 3\nsnez a0, a1", 1},
    {"snez_false", "li a1, 0\nsnez a0, a1", 0},
    {"mul", "li a1, 7\nli a2, 6\nmul a0, a1, a2", 42},
    {"mul_wrap", "li a1, 0x10000\nli a2, 0x10000\nmul a0, a1, a2", 0},
    {"mulh", "li a1, 0x40000000\nli a2, 4\nmulh a0, a1, a2", 1},
    {"mulh_neg", "li a1, -1\nli a2, -1\nmulh a0, a1, a2", 0},
    {"mulhu", "li a1, -1\nli a2, -1\nmulhu a0, a1, a2", 0xFFFFFFFE},
    {"mulhsu", "li a1, -1\nli a2, -1\nmulhsu a0, a1, a2", 0xFFFFFFFF},
    {"div", "li a1, 42\nli a2, -7\ndiv a0, a1, a2", static_cast<std::uint32_t>(-6)},
    {"div_by_zero", "li a1, 42\nli a2, 0\ndiv a0, a1, a2", 0xFFFFFFFF},
    {"div_overflow", "li a1, 0x80000000\nli a2, -1\ndiv a0, a1, a2", 0x80000000},
    {"divu", "li a1, 42\nli a2, 5\ndivu a0, a1, a2", 8},
    {"divu_by_zero", "li a1, 42\nli a2, 0\ndivu a0, a1, a2", 0xFFFFFFFF},
    {"rem", "li a1, 43\nli a2, 7\nrem a0, a1, a2", 1},
    {"rem_neg", "li a1, -43\nli a2, 7\nrem a0, a1, a2", static_cast<std::uint32_t>(-1)},
    {"rem_by_zero", "li a1, 43\nli a2, 0\nrem a0, a1, a2", 43},
    {"rem_overflow", "li a1, 0x80000000\nli a2, -1\nrem a0, a1, a2", 0},
    {"remu", "li a1, 43\nli a2, 7\nremu a0, a1, a2", 1},
    {"remu_by_zero", "li a1, 43\nli a2, 0\nremu a0, a1, a2", 43},
    {"x0_always_zero", "li a1, 99\nadd x0, a1, a1\nmv a0, x0", 0},
};

INSTANTIATE_TEST_SUITE_P(Semantics, CpuAluTest, ::testing::ValuesIn(kAluCases),
                         [](const auto& info) { return std::string(info.param.name); });

// ---------------------------------------------------------------- cpu: control flow

TEST(CpuTest, BranchTakenAndNotTaken) {
  Cpu cpu = run_program(R"(
      li a0, 0
      li a1, 1
      li a2, 2
      beq a1, a2, skip    # not taken
      addi a0, a0, 1
      bne a1, a2, skip    # taken
      addi a0, a0, 100    # skipped
  skip:
      addi a0, a0, 10
      ebreak
  )");
  EXPECT_EQ(cpu.reg(kA0), 11u);
}

TEST(CpuTest, LoopSumsIntegers) {
  Cpu cpu = run_program(R"(
      li a0, 0
      li a1, 1
      li a2, 11
  loop:
      add a0, a0, a1
      addi a1, a1, 1
      bne a1, a2, loop
      ebreak
  )");
  EXPECT_EQ(cpu.reg(kA0), 55u);
}

TEST(CpuTest, JalLinksReturnAddress) {
  Cpu cpu = run_program(R"(
  _start:
      call func
      mv a0, a1
      ebreak
  func:
      li a1, 77
      ret
  )");
  EXPECT_EQ(cpu.reg(kA0), 77u);
}

TEST(CpuTest, JalrClearsLowBit) {
  Cpu cpu = run_program(R"(
      la t0, target+1     # odd address; jalr must clear bit 0
      jalr ra, t0, 0
  target:
      li a0, 5
      ebreak
  )");
  EXPECT_EQ(cpu.reg(kA0), 5u);
}

TEST(CpuTest, AuipcIsPcRelative) {
  Cpu cpu = run_program("auipc a0, 1\nebreak\n");
  EXPECT_EQ(cpu.reg(kA0), 0x1000u);  // pc (0) + 1<<12
}

TEST(CpuTest, ZeroComparisonBranches) {
  Cpu cpu = run_program(R"(
      li a0, 0
      li a1, -3
      bltz a1, neg
      j end
  neg:
      li a0, 1
      li a2, 3
      bgtz a2, pos
      j end
  pos:
      addi a0, a0, 2
  end:
      ebreak
  )");
  EXPECT_EQ(cpu.reg(kA0), 3u);
}

// ---------------------------------------------------------------- cpu: memory ops

TEST(CpuTest, LoadStoreWidths) {
  Cpu cpu = run_program(R"(
      la t0, buf
      li t1, 0x11223344
      sw t1, 0(t0)
      lb a0, 0(t0)        # 0x44 sign-ext positive
      lbu a1, 3(t0)       # 0x11
      lh a2, 0(t0)        # 0x3344
      lhu a3, 2(t0)       # 0x1122
      ebreak
  buf:
      .word 0
  )");
  EXPECT_EQ(cpu.reg(10), 0x44u);
  EXPECT_EQ(cpu.reg(11), 0x11u);
  EXPECT_EQ(cpu.reg(12), 0x3344u);
  EXPECT_EQ(cpu.reg(13), 0x1122u);
}

TEST(CpuTest, SignExtendingLoads) {
  Cpu cpu = run_program(R"(
      la t0, buf
      lb a0, 0(t0)
      lh a1, 0(t0)
      ebreak
  buf:
      .byte 0x80, 0xFF
  )");
  EXPECT_EQ(cpu.reg(10), 0xFFFFFF80u);
  EXPECT_EQ(cpu.reg(11), 0xFFFF80u | 0xFF000000u);
}

TEST(CpuTest, MemoryFaultOnWildStore) {
  Cpu cpu = run_program("li t0, 0x7FFFFFF0\nsw t0, 0(t0)\nebreak\n");
  EXPECT_EQ(cpu.last_halt(), Halt::MemoryFault);
}

TEST(CpuTest, MemoryFaultOnWildFetch) {
  Cpu cpu = run_program("li t0, 0x100000\njr t0\n");
  EXPECT_EQ(cpu.last_halt(), Halt::MemoryFault);
}

TEST(CpuTest, IllegalInstructionHalts) {
  Cpu cpu(1 << 16);
  cpu.mem().write32(0, 0);  // all-zero word is not a valid instruction
  EXPECT_EQ(cpu.run(10), Halt::IllegalInstruction);
}

// ---------------------------------------------------------------- cpu: debug

TEST(CpuTest, BreakpointStopsBeforeInstruction) {
  Cpu cpu(1 << 16);
  Program prog = assemble("li a0, 1\nli a0, 2\nli a0, 3\nebreak\n");
  prog.load_into(cpu.mem());
  cpu.add_breakpoint(8);  // the "li a0, 3"
  Halt halt = cpu.run(100);
  EXPECT_EQ(halt, Halt::Breakpoint);
  EXPECT_EQ(cpu.pc(), 8u);
  EXPECT_EQ(cpu.reg(kA0), 2u);  // not yet executed
}

TEST(CpuTest, ResumeFromBreakpointStepsOver) {
  Cpu cpu(1 << 16);
  Program prog = assemble("li a0, 1\nli a0, 2\nli a0, 3\nebreak\n");
  prog.load_into(cpu.mem());
  cpu.add_breakpoint(8);
  ASSERT_EQ(cpu.run(100), Halt::Breakpoint);
  Halt halt = cpu.run(100);  // resumes across the breakpointed instruction
  EXPECT_EQ(halt, Halt::Ebreak);
  EXPECT_EQ(cpu.reg(kA0), 3u);
}

TEST(CpuTest, RemoveBreakpoint) {
  Cpu cpu(1 << 16);
  Program prog = assemble("li a0, 1\nli a0, 2\nebreak\n");
  prog.load_into(cpu.mem());
  cpu.add_breakpoint(4);
  cpu.remove_breakpoint(4);
  EXPECT_EQ(cpu.run(100), Halt::Ebreak);
}

TEST(CpuTest, WatchpointFiresOnWrite) {
  Cpu cpu(1 << 16);
  Program prog = assemble(R"(
      la t0, var
      li t1, 9
      sw t1, 0(t0)
      ebreak
  var: .word 0
  )");
  prog.load_into(cpu.mem());
  cpu.add_watchpoint(prog.symbol("var"), 4);
  Halt halt = cpu.run(100);
  EXPECT_EQ(halt, Halt::Watchpoint);
  EXPECT_EQ(cpu.watch_hit_addr(), prog.symbol("var"));
  EXPECT_EQ(cpu.mem().read32(prog.symbol("var")), 9u);  // store already landed
}

TEST(CpuTest, WatchpointPartialOverlap) {
  Cpu cpu(1 << 16);
  Program prog = assemble(R"(
      la t0, var
      li t1, 9
      sb t1, 3(t0)       # writes the last byte of the watched word
      ebreak
  var: .word 0
  )");
  prog.load_into(cpu.mem());
  cpu.add_watchpoint(prog.symbol("var"), 4);
  EXPECT_EQ(cpu.run(100), Halt::Watchpoint);
}

TEST(CpuTest, WatchpointRemoved) {
  Cpu cpu(1 << 16);
  Program prog = assemble(R"(
      la t0, var
      li t1, 9
      sw t1, 0(t0)
      ebreak
  var: .word 0
  )");
  prog.load_into(cpu.mem());
  cpu.add_watchpoint(prog.symbol("var"), 4);
  cpu.remove_watchpoint(prog.symbol("var"));
  EXPECT_EQ(cpu.run(100), Halt::Ebreak);
}

TEST(CpuTest, QuantumExpires) {
  Cpu cpu(1 << 16);
  Program prog = assemble("loop: j loop\n");
  prog.load_into(cpu.mem());
  EXPECT_EQ(cpu.run(1000), Halt::Quantum);
  EXPECT_EQ(cpu.instret(), 1000u);
}

TEST(CpuTest, RequestStop) {
  Cpu cpu(1 << 16);
  Program prog = assemble("loop: j loop\n");
  prog.load_into(cpu.mem());
  cpu.request_stop();
  EXPECT_EQ(cpu.run(1000), Halt::Stopped);
  EXPECT_EQ(cpu.run(10), Halt::Quantum);  // stop request is one-shot
}

TEST(CpuTest, EcallWithoutHandlerHalts) {
  Cpu cpu = run_program("li a7, 1\necall\nebreak\n", 10);
  EXPECT_EQ(cpu.last_halt(), Halt::Ecall);
  EXPECT_EQ(cpu.pc(), 8u);  // past the ecall
}

TEST(CpuTest, EcallHandlerServicesSyscall) {
  Cpu cpu(1 << 16);
  Program prog = assemble("li a7, 42\necall\nmv a0, a1\nebreak\n");
  prog.load_into(cpu.mem());
  cpu.set_ecall_handler([](Cpu& c) {
    EXPECT_EQ(c.reg(17), 42u);  // a7
    c.set_reg(11, 1234);        // a1 := result
    return Cpu::EcallResult::Handled;
  });
  EXPECT_EQ(cpu.run(100), Halt::Ebreak);
  EXPECT_EQ(cpu.reg(kA0), 1234u);
}

TEST(CpuTest, EcallHandlerMayHalt) {
  Cpu cpu(1 << 16);
  Program prog = assemble("ecall\nebreak\n");
  prog.load_into(cpu.mem());
  cpu.set_ecall_handler([](Cpu&) { return Cpu::EcallResult::Halt; });
  EXPECT_EQ(cpu.run(100), Halt::Ecall);
}

TEST(CpuTest, CyclesExceedInstret) {
  Cpu cpu = run_program("li a1, 100\nli a2, 7\ndiv a0, a1, a2\nebreak\n");
  EXPECT_GT(cpu.cycles(), cpu.instret());
}

TEST(CpuTest, AddCyclesChargesOverhead) {
  Cpu cpu(1 << 16);
  std::uint64_t before = cpu.cycles();
  cpu.add_cycles(500);
  EXPECT_EQ(cpu.cycles(), before + 500);
}

TEST(CpuTest, ResetPreservesMemory) {
  Cpu cpu(1 << 16);
  cpu.mem().write32(100, 0xDEAD);
  cpu.set_reg(5, 7);
  cpu.reset(0x40);
  EXPECT_EQ(cpu.pc(), 0x40u);
  EXPECT_EQ(cpu.reg(5), 0u);
  EXPECT_EQ(cpu.mem().read32(100), 0xDEADu);
}

TEST(CpuTest, SetRegIgnoresX0) {
  Cpu cpu(1 << 16);
  cpu.set_reg(0, 99);
  EXPECT_EQ(cpu.reg(0), 0u);
}

// ---------------------------------------------------------------- assembler

TEST(AsmTest, EmptyProgram) {
  Program prog = assemble("");
  EXPECT_TRUE(prog.bytes.empty());
  EXPECT_EQ(prog.entry, 0u);
}

TEST(AsmTest, CommentsIgnored) {
  Program prog = assemble("# comment\n; another\n// third\nnop  # trailing\n");
  EXPECT_EQ(prog.bytes.size(), 4u);
}

TEST(AsmTest, LabelsAndForwardReferences) {
  Program prog = assemble(R"(
  _start:
      j end
      nop
  end:
      ebreak
  )");
  EXPECT_EQ(prog.symbol("_start"), 0u);
  EXPECT_EQ(prog.symbol("end"), 8u);
  EXPECT_EQ(prog.entry, 0u);
}

TEST(AsmTest, LabelOnOwnLine) {
  Program prog = assemble("alone:\n  nop\n");
  EXPECT_EQ(prog.symbol("alone"), 0u);
}

TEST(AsmTest, MultipleLabelsSameAddress) {
  Program prog = assemble("a: b:\n  nop\n");
  EXPECT_EQ(prog.symbol("a"), prog.symbol("b"));
}

TEST(AsmTest, TrailingLabelPointsToEnd) {
  Program prog = assemble("nop\nend:\n");
  EXPECT_EQ(prog.symbol("end"), 4u);
}

TEST(AsmTest, BaseOffsetsSymbols) {
  Program prog = assemble("x: nop\n", 0x1000);
  EXPECT_EQ(prog.base, 0x1000u);
  EXPECT_EQ(prog.symbol("x"), 0x1000u);
  EXPECT_EQ(prog.entry, 0x1000u);
}

TEST(AsmTest, EntryIsStartSymbol) {
  Program prog = assemble("nop\n_start: nop\n");
  EXPECT_EQ(prog.entry, 4u);
}

TEST(AsmTest, DataDirectives) {
  Program prog = assemble(R"(
  words: .word 1, 0x10, sym
  halfs: .half 0x1234, 0x5678
  bytes: .byte 1, 2, 3
  text:  .asciz "hi\n"
  sym:   .word 0
  )");
  EXPECT_EQ(prog.bytes[0], 1u);
  EXPECT_EQ(prog.bytes[4], 0x10u);
  std::uint32_t sym = prog.symbol("sym");
  EXPECT_EQ(prog.bytes[8], sym & 0xFF);
  EXPECT_EQ(prog.symbol("halfs"), 12u);
  EXPECT_EQ(prog.bytes[12], 0x34u);
  EXPECT_EQ(prog.bytes[13], 0x12u);
  EXPECT_EQ(prog.symbol("bytes"), 16u);
  EXPECT_EQ(prog.bytes[16], 1u);
  std::uint32_t text = prog.symbol("text");
  EXPECT_EQ(prog.bytes[text], 'h');
  EXPECT_EQ(prog.bytes[text + 1], 'i');
  EXPECT_EQ(prog.bytes[text + 2], '\n');
  EXPECT_EQ(prog.bytes[text + 3], 0u);
}

TEST(AsmTest, AlignPadsToBoundary) {
  Program prog = assemble(".byte 1\n.align 4\nx: .word 2\n");
  EXPECT_EQ(prog.symbol("x"), 4u);
}

TEST(AsmTest, AlignNoopWhenAligned) {
  Program prog = assemble(".word 1\n.align 4\nx: .word 2\n");
  EXPECT_EQ(prog.symbol("x"), 4u);
}

TEST(AsmTest, OrgAdvancesLocation) {
  Program prog = assemble("nop\n.org 0x20\nx: .word 5\n");
  EXPECT_EQ(prog.symbol("x"), 0x20u);
  EXPECT_EQ(prog.bytes.size(), 0x24u);
  EXPECT_EQ(prog.bytes[0x20], 5u);
}

TEST(AsmTest, SpaceReserves) {
  Program prog = assemble("buf: .space 10\nx: .word 1\n");
  EXPECT_EQ(prog.symbol("x"), 10u);
}

TEST(AsmTest, EquDefinesConstant) {
  Program prog = assemble(".equ MAGIC, 0x42\nli a0, MAGIC\nebreak\n");
  Cpu cpu(1 << 16);
  prog.load_into(cpu.mem());
  cpu.run(100);
  EXPECT_EQ(cpu.reg(kA0), 0x42u);
}

TEST(AsmTest, SymbolPlusOffsetExpression) {
  Program prog = assemble("buf: .word 1, 2\n.equ SECOND, buf+4\n");
  EXPECT_EQ(prog.symbol("SECOND"), 4u);
}

TEST(AsmTest, ErrorsCarryLineNumbers) {
  try {
    assemble("nop\nbogus a0, a1\n");
    FAIL() << "expected throw";
  } catch (const RuntimeError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(AsmTest, RejectsDuplicateLabel) {
  EXPECT_THROW(assemble("x: nop\nx: nop\n"), RuntimeError);
}

TEST(AsmTest, AssembleAllReportsEveryError) {
  // Three independent defects on three lines: all of them must surface in
  // one pass, in line order, not just the first.
  AssembleResult result = assemble_all(
      "nop\n"
      "frobnicate a0\n"
      "addi a0, a0, 5000\n"
      "j nowhere\n");
  ASSERT_EQ(result.errors.size(), 3u);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.errors[0].line, 2);
  EXPECT_EQ(result.errors[1].line, 3);
  EXPECT_EQ(result.errors[2].line, 4);
  EXPECT_NE(result.errors[0].message.find("frobnicate"), std::string::npos);
  EXPECT_NE(result.errors[2].message.find("nowhere"), std::string::npos);
}

TEST(AsmTest, AssembleAllLabelRedefinedFirstDefinitionWins) {
  AssembleResult result = assemble_all(
      "x: .word 1\n"
      "y: .word 2\n"
      "x: .word 3\n");
  ASSERT_EQ(result.errors.size(), 1u);
  EXPECT_TRUE(result.errors[0].label_redefined);
  EXPECT_EQ(result.errors[0].line, 3);
  EXPECT_NE(result.errors[0].message.find("first defined on line 1"), std::string::npos);
  EXPECT_EQ(result.program.symbol("x"), 0u);  // first definition wins
}

TEST(AsmTest, AssembleAllCleanSourceHasNoErrors) {
  AssembleResult result = assemble_all("start: nop\nebreak\n");
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.program.bytes.size(), 8u);
}

TEST(AsmTest, CodeTableCoversEveryInstructionWord) {
  // li with a large immediate expands to two words sharing one source line;
  // data words never enter the code table.
  Program prog = assemble(
      "start: li t0, 0x12345\n"
      "ebreak\n"
      "buf: .word 1, 2\n");
  ASSERT_EQ(prog.code.size(), 3u);
  EXPECT_EQ(prog.code[0].addr, 0u);
  EXPECT_EQ(prog.code[0].line, 1);
  EXPECT_EQ(prog.code[1].addr, 4u);
  EXPECT_EQ(prog.code[1].line, 1);
  EXPECT_EQ(prog.code[2].addr, 8u);
  EXPECT_EQ(prog.code[2].line, 2);
}

TEST(AsmTest, AddressTakenRecordsMaterializedSymbols) {
  Program prog = assemble(
      "start: la t0, buf\n"
      "j start\n"
      "buf: .word 0\n"
      "table: .word start\n");
  EXPECT_TRUE(prog.address_taken.count(prog.symbol("buf")) > 0);   // la
  EXPECT_TRUE(prog.address_taken.count(prog.symbol("start")) > 0); // .word
  // A plain jump target is not address-taken.
  EXPECT_EQ(prog.address_taken.size(), 2u);
}

TEST(AsmTest, RejectsUnknownInstruction) {
  EXPECT_THROW(assemble("frobnicate a0\n"), RuntimeError);
}

TEST(AsmTest, RejectsBadRegister) {
  EXPECT_THROW(assemble("addi q0, x0, 1\n"), RuntimeError);
}

TEST(AsmTest, RejectsUndefinedSymbol) {
  EXPECT_THROW(assemble("j nowhere\n"), RuntimeError);
}

TEST(AsmTest, RejectsWrongOperandCount) {
  EXPECT_THROW(assemble("add a0, a1\n"), RuntimeError);
}

TEST(AsmTest, RejectsImmediateOverflow) {
  EXPECT_THROW(assemble("addi a0, a0, 5000\n"), RuntimeError);
}

TEST(AsmTest, RejectsBackwardOrg) {
  EXPECT_THROW(assemble(".org 8\n.org 4\n"), RuntimeError);
}

TEST(AsmTest, RejectsBadAlign) {
  EXPECT_THROW(assemble(".align 3\n"), RuntimeError);
}

TEST(AsmTest, MemOperandVariants) {
  Program prog = assemble(R"(
      la t0, buf
      lw a0, (t0)
      lw a1, 4(t0)
      ebreak
  buf: .word 7, 8
  )");
  Cpu cpu(1 << 16);
  prog.load_into(cpu.mem());
  cpu.run(100);
  EXPECT_EQ(cpu.reg(10), 7u);
  EXPECT_EQ(cpu.reg(11), 8u);
}

TEST(AsmTest, DisassemblyRoundTripThroughImage) {
  Program prog = assemble("addi a0, zero, 42\n");
  std::uint32_t word = static_cast<std::uint32_t>(prog.bytes[0]) | (prog.bytes[1] << 8) |
                       (prog.bytes[2] << 16) | (static_cast<std::uint32_t>(prog.bytes[3]) << 24);
  EXPECT_EQ(disassemble(decode(word)), "addi x10, x0, 42");
}

// ---------------------------------------------------------------- integration:
// the guest checksum kernel the router case study uses.

TEST(CpuTest, GuestChecksumMatchesHostReference) {
  // Sum 4 little-endian words, like the router's checksum application.
  Cpu cpu = run_program(R"(
  _start:
      la t0, data
      li t1, 4          # word count
      li a0, 0
  loop:
      lw t2, 0(t0)
      add a0, a0, t2
      addi t0, t0, 4
      addi t1, t1, -1
      bnez t1, loop
      ebreak
  data:
      .word 0x11111111, 0x22222222, 0x33333333, 0x44444444
  )");
  EXPECT_EQ(cpu.last_halt(), Halt::Ebreak);
  EXPECT_EQ(cpu.reg(kA0), 0xAAAAAAAAu);
}

}  // namespace
}  // namespace nisc::iss
