// Unit tests for the niscosim SystemC-like kernel: time, events, processes,
// signals, fifos, clocks, iss ports and kernel-extension hooks.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sysc/sysc.hpp"

namespace nisc::sysc {
namespace {

// ---------------------------------------------------------------- sc_time

TEST(TimeTest, LiteralsAndScale) {
  EXPECT_EQ((5_ns).ps(), 5000u);
  EXPECT_EQ((2_us).ps(), 2000000u);
  EXPECT_EQ((1_ms).ps(), 1000000000u);
  EXPECT_EQ(sc_time(1.5, SC_NS).ps(), 1500u);
}

TEST(TimeTest, Ordering) {
  EXPECT_LT(1_ns, 2_ns);
  EXPECT_EQ(1000_ps, 1_ns);
  EXPECT_GT(1_us, 999_ns);
}

TEST(TimeTest, Arithmetic) {
  EXPECT_EQ(1_ns + 500_ps, 1500_ps);
  EXPECT_EQ(2_us - 1_us, 1_us);
  EXPECT_EQ(3_ns * 4, 12_ns);
  EXPECT_THROW(1_ns - 2_ns, util::LogicError);
}

TEST(TimeTest, NegativeRejected) { EXPECT_THROW(sc_time(-1.0, SC_NS), util::LogicError); }

TEST(TimeTest, ToString) {
  EXPECT_EQ((5_ns).to_string(), "5 ns");
  EXPECT_EQ((1500_ps).to_string(), "1500 ps");
  EXPECT_EQ((2_ms).to_string(), "2 ms");
  EXPECT_EQ(sc_time(3.0, SC_SEC).to_string(), "3 s");
}

TEST(TimeTest, Conversions) {
  EXPECT_DOUBLE_EQ((1500_ps).to_ns(), 1.5);
  EXPECT_DOUBLE_EQ((2_ms).to_ms(), 2.0);
  EXPECT_DOUBLE_EQ(sc_time(1.0, SC_SEC).to_seconds(), 1.0);
}

// ---------------------------------------------------------------- objects & naming

TEST(ObjectTest, RequiresContext) {
  EXPECT_THROW(current_context(), util::LogicError);
}

TEST(ObjectTest, UniqueNames) {
  sc_simcontext ctx;
  sc_signal<int> a("sig");
  sc_signal<int> b("sig");
  EXPECT_EQ(a.name(), "sig");
  EXPECT_EQ(b.name(), "sig_1");
  EXPECT_EQ(ctx.find_object("sig"), &a);
  EXPECT_EQ(ctx.find_object("sig_1"), &b);
  EXPECT_EQ(ctx.find_object("nope"), nullptr);
}

TEST(ObjectTest, RemovalUnregisters) {
  sc_simcontext ctx;
  {
    sc_signal<int> a("temp");
    EXPECT_NE(ctx.find_object("temp"), nullptr);
  }
  EXPECT_EQ(ctx.find_object("temp"), nullptr);
}

TEST(ObjectTest, CreateOwnsObjects) {
  sc_simcontext ctx;
  auto& sig = ctx.create<sc_signal<int>>("owned");
  EXPECT_EQ(ctx.find_object("owned"), &sig);
}

// ---------------------------------------------------------------- method processes

TEST(MethodTest, RunsOnceAtInitialization) {
  sc_simcontext ctx;
  int runs = 0;
  ctx.create_method("m", [&] { ++runs; });
  ctx.run(1_ns);
  EXPECT_EQ(runs, 1);
}

TEST(MethodTest, DontInitializeSkipsInitRun) {
  sc_simcontext ctx;
  int runs = 0;
  auto& p = ctx.create_method("m", [&] { ++runs; });
  p.dont_initialize();
  ctx.run(1_ns);
  EXPECT_EQ(runs, 0);
}

TEST(MethodTest, TriggeredByDeltaNotification) {
  sc_simcontext ctx;
  sc_event ev("ev");
  int runs = 0;
  auto& p = ctx.create_method("m", [&] { ++runs; });
  p.make_sensitive(ev);
  p.dont_initialize();
  ctx.create_method("kick", [&] { ev.notify_delta(); }).dont_initialize();
  // Manually make `kick` runnable by notifying through another event.
  sc_event start("start");
  ctx.find_object("kick");
  ctx.run(1_ns);
  EXPECT_EQ(runs, 0);  // nothing ever triggered
}

TEST(MethodTest, ChainedNotifications) {
  sc_simcontext ctx;
  sc_event ev("ev");
  std::vector<int> order;
  auto& chain = ctx.create_method("chain", [&] { order.push_back(2); });
  chain.make_sensitive(ev);
  chain.dont_initialize();
  ctx.create_method("init", [&] {
    order.push_back(1);
    ev.notify_delta();
  });
  ctx.run(1_ns);
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(MethodTest, ImmediateNotificationRunsSamePhase) {
  sc_simcontext ctx;
  sc_event ev("ev");
  std::uint64_t trigger_delta = 0;
  std::uint64_t run_delta = ~0ULL;
  auto& target = ctx.create_method("t", [&] { run_delta = ctx.delta_count(); });
  target.make_sensitive(ev);
  target.dont_initialize();
  ctx.create_method("kick", [&] {
    trigger_delta = ctx.delta_count();
    ev.notify();  // immediate
  });
  ctx.run(1_ns);
  EXPECT_EQ(run_delta, trigger_delta);
}

TEST(MethodTest, TimedNotification) {
  sc_simcontext ctx;
  sc_event ev("ev");
  sc_time fired = sc_time::max();
  auto& target = ctx.create_method("t", [&] { fired = ctx.time_stamp(); });
  target.make_sensitive(ev);
  target.dont_initialize();
  ctx.create_method("kick", [&] { ev.notify(10_ns); });
  ctx.run(100_ns);
  EXPECT_EQ(fired, 10_ns);
}

TEST(MethodTest, RunWindowExcludesLaterEvents) {
  sc_simcontext ctx;
  sc_event ev("ev");
  int runs = 0;
  auto& target = ctx.create_method("t", [&] { ++runs; });
  target.make_sensitive(ev);
  target.dont_initialize();
  ctx.create_method("kick", [&] { ev.notify(10_ns); });
  ctx.run(5_ns);
  EXPECT_EQ(runs, 0);
  EXPECT_EQ(ctx.time_stamp(), 5_ns);
  ctx.run(10_ns);
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(ctx.time_stamp(), 10_ns);  // stops when starved after the event
}

TEST(MethodTest, PeriodicSelfRetrigger) {
  sc_simcontext ctx;
  sc_event tick("tick");
  int runs = 0;
  auto& p = ctx.create_method("p", [&] {
    ++runs;
    tick.notify(10_ns);
  });
  p.make_sensitive(tick);
  ctx.run(95_ns);
  EXPECT_EQ(runs, 10);  // t=0 (init) plus 10,20,...,90
}

// ---------------------------------------------------------------- signals

TEST(SignalTest, InitialValue) {
  sc_simcontext ctx;
  sc_signal<int> sig("s", 42);
  EXPECT_EQ(sig.read(), 42);
}

TEST(SignalTest, WriteVisibleAfterUpdatePhase) {
  sc_simcontext ctx;
  sc_signal<int> sig("s");
  int seen_during_write_phase = -1;
  ctx.create_method("w", [&] {
    sig.write(7);
    seen_during_write_phase = sig.read();
  });
  ctx.run(1_ns);
  EXPECT_EQ(seen_during_write_phase, 0);  // old value within the evaluate phase
  EXPECT_EQ(sig.read(), 7);               // updated afterwards
}

TEST(SignalTest, ValueChangedTriggersSensitiveProcess) {
  sc_simcontext ctx;
  sc_signal<int> sig("s");
  std::vector<int> seen;
  auto& reader = ctx.create_method("r", [&] { seen.push_back(sig.read()); });
  reader.make_sensitive(sig.value_changed_event());
  reader.dont_initialize();
  ctx.create_method("w", [&] { sig.write(5); });
  ctx.run(1_ns);
  EXPECT_EQ(seen, (std::vector<int>{5}));
}

TEST(SignalTest, NoEventWhenValueUnchanged) {
  sc_simcontext ctx;
  sc_signal<int> sig("s", 5);
  int triggers = 0;
  auto& reader = ctx.create_method("r", [&] { ++triggers; });
  reader.make_sensitive(sig.value_changed_event());
  reader.dont_initialize();
  ctx.create_method("w", [&] { sig.write(5); });  // same value
  ctx.run(1_ns);
  EXPECT_EQ(triggers, 0);
}

TEST(SignalTest, LastWriteWins) {
  sc_simcontext ctx;
  sc_signal<int> sig("s");
  ctx.create_method("w", [&] {
    sig.write(1);
    sig.write(2);
    sig.write(3);
  });
  ctx.run(1_ns);
  EXPECT_EQ(sig.read(), 3);
}

TEST(SignalTest, BoolEdges) {
  sc_simcontext ctx;
  sc_signal<bool> sig("s", false);
  int pos = 0;
  int neg = 0;
  auto& p = ctx.create_method("pos", [&] { ++pos; });
  p.make_sensitive(sig.posedge_event());
  p.dont_initialize();
  auto& n = ctx.create_method("neg", [&] { ++neg; });
  n.make_sensitive(sig.negedge_event());
  n.dont_initialize();

  ctx.create_method("drive", [&] { sig.write(true); });
  ctx.run(1_ns);
  EXPECT_EQ(pos, 1);
  EXPECT_EQ(neg, 0);
}

TEST(SignalTest, EventFlagDuringFollowingDelta) {
  sc_simcontext ctx;
  sc_signal<int> sig("s");
  bool flag_seen = false;
  auto& reader = ctx.create_method("r", [&] { flag_seen = sig.event(); });
  reader.make_sensitive(sig.value_changed_event());
  reader.dont_initialize();
  ctx.create_method("w", [&] { sig.write(9); });
  ctx.run(1_ns);
  EXPECT_TRUE(flag_seen);
}

// ---------------------------------------------------------------- ports

TEST(PortTest, UnboundPortFailsElaboration) {
  sc_simcontext ctx;
  sc_in<int> in("in");
  EXPECT_THROW(ctx.run(1_ns), util::LogicError);
}

TEST(PortTest, BoundPortsReadAndWrite) {
  sc_simcontext ctx;
  sc_signal<int> sig("s");
  sc_in<int> in("in");
  sc_out<int> out("out");
  in.bind(sig);
  out.bind(sig);
  ctx.create_method("w", [&] { out.write(11); });
  ctx.run(1_ns);
  EXPECT_EQ(in.read(), 11);
  EXPECT_EQ(out.read(), 11);
}

TEST(PortTest, PortEventsForwardToSignal) {
  sc_simcontext ctx;
  sc_signal<bool> sig("s");
  sc_in<bool> in("in");
  in.bind(sig);
  int pos = 0;
  auto& p = ctx.create_method("p", [&] { ++pos; });
  p.make_sensitive(in.posedge_event());
  p.dont_initialize();
  ctx.create_method("w", [&] { sig.write(true); });
  ctx.run(1_ns);
  EXPECT_EQ(pos, 1);
}

TEST(PortTest, ReadBeforeBindThrows) {
  sc_simcontext ctx;
  sc_in<int> in("in");
  EXPECT_THROW(in.read(), util::LogicError);
}

// ---------------------------------------------------------------- threads

TEST(ThreadTest, RunsUntilFirstWait) {
  sc_simcontext ctx;
  int phase = 0;
  sc_event ev("ev");
  ctx.create_thread("t", [&] {
    phase = 1;
    wait(ev);
    phase = 2;
  });
  ctx.run(1_ns);
  EXPECT_EQ(phase, 1);
}

TEST(ThreadTest, WaitEventResumes) {
  sc_simcontext ctx;
  sc_event ev("ev");
  int phase = 0;
  ctx.create_thread("t", [&] {
    phase = 1;
    wait(ev);
    phase = 2;
  });
  ctx.create_method("kick", [&] { ev.notify(5_ns); });
  ctx.run(10_ns);
  EXPECT_EQ(phase, 2);
}

TEST(ThreadTest, WaitTimeAdvancesClock) {
  sc_simcontext ctx;
  std::vector<std::uint64_t> stamps;
  ctx.create_thread("t", [&] {
    for (int i = 0; i < 3; ++i) {
      stamps.push_back(ctx.time_stamp().ps());
      wait(10_ns);
    }
  });
  ctx.run(100_ns);
  EXPECT_EQ(stamps, (std::vector<std::uint64_t>{0, 10000, 20000}));
}

TEST(ThreadTest, StaticSensitivityIgnoredDuringTimedWait) {
  sc_simcontext ctx;
  sc_event ev("ev");
  int resumes = 0;
  auto& t = ctx.create_thread("t", [&] {
    for (;;) {
      wait(20_ns);
      ++resumes;
    }
  });
  t.make_sensitive(ev);
  ctx.create_method("noise", [&] { ev.notify(5_ns); });
  ctx.run(25_ns);
  EXPECT_EQ(resumes, 1);  // the 5ns notify must not wake the timed wait
}

TEST(ThreadTest, TwoThreadsPingPong) {
  sc_simcontext ctx;
  sc_event ping("ping");
  sc_event pong("pong");
  std::vector<std::string> log;
  ctx.create_thread("a", [&] {
    for (int i = 0; i < 3; ++i) {
      log.push_back("a");
      ping.notify_delta();
      wait(pong);
    }
  });
  ctx.create_thread("b", [&] {
    for (int i = 0; i < 3; ++i) {
      wait(ping);
      log.push_back("b");
      pong.notify_delta();
    }
  });
  ctx.run(1_ns);
  EXPECT_EQ(log, (std::vector<std::string>{"a", "b", "a", "b", "a", "b"}));
}

TEST(ThreadTest, TerminatedThreadStopsRunning) {
  sc_simcontext ctx;
  int runs = 0;
  sc_event ev("ev");
  auto& t = ctx.create_thread("t", [&] { ++runs; });  // returns immediately
  t.make_sensitive(ev);
  ctx.create_method("kick", [&] { ev.notify(5_ns); });
  ctx.run(10_ns);
  EXPECT_EQ(runs, 1);
  EXPECT_TRUE(t.terminated());
}

TEST(ThreadTest, ExceptionPropagatesToRun) {
  sc_simcontext ctx;
  ctx.create_thread("t", [&] { throw std::runtime_error("guest fault"); });
  EXPECT_THROW(ctx.run(1_ns), std::runtime_error);
}

TEST(ThreadTest, BlockedThreadKilledCleanlyAtTeardown) {
  sc_simcontext ctx;
  sc_event ev("ev");
  ctx.create_thread("t", [&] {
    for (;;) wait(ev);
  });
  ctx.run(1_ns);
  // Context destruction must join the blocked thread without hanging.
}

TEST(ThreadTest, WaitOutsideProcessThrows) {
  sc_simcontext ctx;
  EXPECT_THROW(wait(1_ns), util::LogicError);
}

// ---------------------------------------------------------------- fifo

TEST(FifoTest, NonBlockingOps) {
  sc_simcontext ctx;
  sc_fifo<int> fifo("f", 2);
  EXPECT_TRUE(fifo.nb_write(1));
  EXPECT_TRUE(fifo.nb_write(2));
  EXPECT_FALSE(fifo.nb_write(3));  // full
  int v = 0;
  EXPECT_TRUE(fifo.nb_read(v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(fifo.nb_read(v));
  EXPECT_EQ(v, 2);
  EXPECT_FALSE(fifo.nb_read(v));  // empty
}

TEST(FifoTest, CountsTrackContents) {
  sc_simcontext ctx;
  sc_fifo<int> fifo("f", 4);
  EXPECT_EQ(fifo.num_free(), 4u);
  fifo.nb_write(1);
  fifo.nb_write(2);
  EXPECT_EQ(fifo.num_available(), 2u);
  EXPECT_EQ(fifo.num_free(), 2u);
}

TEST(FifoTest, ZeroCapacityRejected) {
  sc_simcontext ctx;
  EXPECT_THROW(sc_fifo<int>("f", 0), util::LogicError);
}

TEST(FifoTest, BlockingProducerConsumer) {
  sc_simcontext ctx;
  sc_fifo<int> fifo("f", 2);
  std::vector<int> received;
  ctx.create_thread("producer", [&] {
    for (int i = 0; i < 10; ++i) fifo.write(i);
  });
  ctx.create_thread("consumer", [&] {
    for (int i = 0; i < 10; ++i) received.push_back(fifo.read());
  });
  ctx.run(1_ns);
  EXPECT_EQ(received, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
}

TEST(FifoTest, ConsumerBlocksUntilData) {
  sc_simcontext ctx;
  sc_fifo<int> fifo("f", 4);
  sc_time consumed_at = sc_time::max();
  ctx.create_thread("consumer", [&] {
    int v = fifo.read();
    (void)v;
    consumed_at = ctx.time_stamp();
  });
  ctx.create_thread("producer", [&] {
    wait(30_ns);
    fifo.write(1);
  });
  ctx.run(100_ns);
  EXPECT_EQ(consumed_at, 30_ns);
}

// ---------------------------------------------------------------- clock

TEST(ClockTest, PosedgesAccumulate) {
  sc_simcontext ctx;
  sc_clock clk("clk", 10_ns);
  ctx.run(95_ns);
  // Posedges at 0,10,...,90 -> 10 posedges.
  EXPECT_EQ(clk.posedge_count(), 10u);
}

TEST(ClockTest, ProcessSensitiveToPosedge) {
  sc_simcontext ctx;
  sc_clock clk("clk", 10_ns);
  int edges = 0;
  auto& p = ctx.create_method("p", [&] { ++edges; });
  p.make_sensitive(clk.posedge_event());
  p.dont_initialize();
  ctx.run(45_ns);
  EXPECT_EQ(edges, 5);  // 0,10,20,30,40
}

TEST(ClockTest, OddPeriodRejected) {
  sc_simcontext ctx;
  EXPECT_THROW(sc_clock("clk", 3_ps), util::LogicError);
}

TEST(ClockTest, ValueAlternates) {
  sc_simcontext ctx;
  sc_clock clk("clk", 10_ns);
  std::vector<bool> samples;
  auto& p = ctx.create_method("sample", [&] { samples.push_back(clk.read()); });
  p.make_sensitive(clk.signal().value_changed_event());
  p.dont_initialize();
  ctx.run(25_ns);
  ASSERT_GE(samples.size(), 4u);
  EXPECT_TRUE(samples[0]);
  EXPECT_FALSE(samples[1]);
  EXPECT_TRUE(samples[2]);
  EXPECT_FALSE(samples[3]);
}

// ---------------------------------------------------------------- run control

TEST(RunTest, StopEndsRunEarly) {
  sc_simcontext ctx;
  sc_event tick("tick");
  int runs = 0;
  auto& p = ctx.create_method("p", [&] {
    if (++runs == 3) ctx.stop();
    tick.notify(10_ns);
  });
  p.make_sensitive(tick);
  ctx.run(1000_ns);
  EXPECT_EQ(runs, 3);
  EXPECT_EQ(ctx.time_stamp(), 20_ns);
}

TEST(RunTest, RepeatedRunsContinueSimulation) {
  sc_simcontext ctx;
  sc_event tick("tick");
  int runs = 0;
  auto& p = ctx.create_method("p", [&] {
    ++runs;
    tick.notify(10_ns);
  });
  p.make_sensitive(tick);
  ctx.run(25_ns);
  int after_first = runs;
  ctx.run(20_ns);
  EXPECT_GT(runs, after_first);
  EXPECT_EQ(ctx.time_stamp(), 45_ns);
}

TEST(RunTest, RunToStarvationEnds) {
  sc_simcontext ctx;
  sc_event ev("ev");
  int runs = 0;
  auto& p = ctx.create_method("p", [&] { ++runs; });
  p.make_sensitive(ev);
  p.dont_initialize();
  ctx.create_method("kick", [&] { ev.notify(50_ns); });
  sc_time end = ctx.run_to_starvation();
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(end, 50_ns);
}

TEST(RunTest, StatsAccumulate) {
  sc_simcontext ctx;
  sc_clock clk("clk", 10_ns);
  ctx.run(100_ns);
  const kernel_stats& stats = ctx.stats();
  EXPECT_GT(stats.delta_cycles, 10u);
  EXPECT_GT(stats.process_dispatches, 10u);
  EXPECT_GT(stats.channel_updates, 10u);
  EXPECT_GT(stats.timed_advances, 9u);
}

TEST(RunTest, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    sc_simcontext ctx;
    sc_clock clk("clk", 10_ns);
    sc_signal<int> sig("s");
    auto& p = ctx.create_method("p", [&] { sig.write(sig.read() + 1); });
    p.make_sensitive(clk.posedge_event());
    p.dont_initialize();
    ctx.run(1000_ns);
    return std::pair(ctx.stats().delta_cycles, sig.read());
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---------------------------------------------------------------- modules

struct Counter : sc_module {
  explicit Counter(std::string name) : sc_module(std::move(name)) {
    declare_method("step", &Counter::step);
    sensitive << clk.pos();  // deferred: clk is not bound yet
    dont_initialize();
  }
  void step() { ++count; }
  sc_in<bool> clk{"clk"};
  int count = 0;
};

TEST(ModuleTest, DeclaredMethodRuns) {
  sc_simcontext ctx;
  sc_clock clk("clk", 10_ns);
  auto& counter = ctx.create<Counter>("counter");
  counter.clk.bind(clk.signal());
  ctx.run(45_ns);
  EXPECT_EQ(counter.count, 5);
}

TEST(ModuleTest, ProcessNamesAreHierarchical) {
  sc_simcontext ctx;
  sc_clock clk("clk", 10_ns);
  auto& counter = ctx.create<Counter>("counter");
  counter.clk.bind(clk.signal());
  EXPECT_NE(ctx.find_object("counter.step"), nullptr);
}

struct Handshake : sc_module {
  explicit Handshake(std::string name) : sc_module(std::move(name)) {
    declare_thread("body", &Handshake::body);
  }
  void body() {
    stage = 1;
    wait(go);
    stage = 2;
  }
  sc_event go{"go"};
  int stage = 0;
};

TEST(ModuleTest, DeclaredThreadWaits) {
  sc_simcontext ctx;
  auto& m = ctx.create<Handshake>("m");
  ctx.run(1_ns);
  EXPECT_EQ(m.stage, 1);
  m.go.notify_delta();
  ctx.run(1_ns);
  EXPECT_EQ(m.stage, 2);
}

TEST(ModuleTest, SensitiveWithoutProcessThrows) {
  sc_simcontext ctx;
  struct Bad : sc_module {
    explicit Bad(std::string name) : sc_module(std::move(name)) {
      sc_event ev("ev");
      sensitive << ev;  // no process declared yet
    }
  };
  EXPECT_THROW(ctx.create<Bad>("bad"), util::LogicError);
}

// ---------------------------------------------------------------- iss ports

TEST(IssPortTest, RegistryFindsPortsByName) {
  sc_simcontext ctx;
  iss_in<std::uint32_t> in("data_in");
  iss_out<std::uint32_t> out("data_out");
  EXPECT_EQ(ctx.find_iss_port("data_in"), &in);
  EXPECT_EQ(ctx.find_iss_port("data_out"), &out);
  EXPECT_EQ(ctx.find_iss_port("nope"), nullptr);
  EXPECT_EQ(ctx.iss_ports().size(), 2u);
}

TEST(IssPortTest, PortUnregistersOnDestruction) {
  sc_simcontext ctx;
  {
    iss_in<std::uint32_t> in("tmp");
    EXPECT_NE(ctx.find_iss_port("tmp"), nullptr);
  }
  EXPECT_EQ(ctx.find_iss_port("tmp"), nullptr);
}

TEST(IssPortTest, DeliverTriggersIssProcess) {
  sc_simcontext ctx;
  iss_in<std::uint32_t> in("data_in");
  std::vector<std::uint32_t> seen;
  auto& p = ctx.create_method("iss_p", [&] { seen.push_back(in.read()); },
                              process_kind::IssMethod);
  p.make_sensitive(in.written_event());
  p.dont_initialize();
  ctx.run(1_ns);
  EXPECT_TRUE(seen.empty());  // not dispatched until data crosses the boundary
  in.deliver(0xABCD);
  ctx.run(1_ns);
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{0xABCD}));
}

TEST(IssPortTest, DeliverBytesDecodesLittleEndian) {
  sc_simcontext ctx;
  iss_in<std::uint32_t> in("p");
  const std::uint8_t bytes[] = {0x78, 0x56, 0x34, 0x12};
  in.deliver_bytes(bytes);
  EXPECT_EQ(in.read(), 0x12345678u);
}

TEST(IssPortTest, DeliverBytesRejectsWrongWidth) {
  sc_simcontext ctx;
  iss_in<std::uint32_t> in("p");
  const std::uint8_t bytes[] = {0x01, 0x02};
  EXPECT_THROW(in.deliver_bytes(bytes), util::LogicError);
}

TEST(IssPortTest, OutPortPeekAndFreshness) {
  sc_simcontext ctx;
  iss_out<std::uint32_t> out("p");
  EXPECT_FALSE(out.has_fresh_value());
  out.write(0xCAFEBABE);
  EXPECT_TRUE(out.has_fresh_value());
  auto bytes = out.peek_bytes();
  EXPECT_EQ(bytes, (std::vector<std::uint8_t>{0xBE, 0xBA, 0xFE, 0xCA}));
  out.consume_fresh();
  EXPECT_FALSE(out.has_fresh_value());
}

TEST(IssPortTest, OutPortRejectsDeliver) {
  sc_simcontext ctx;
  iss_out<std::uint32_t> out("p");
  const std::uint8_t bytes[] = {1, 2, 3, 4};
  EXPECT_THROW(out.deliver_bytes(bytes), util::LogicError);
}

TEST(IssPortTest, DuplicateNamesRejected) {
  sc_simcontext ctx;
  iss_in<std::uint32_t> a("dup");
  // sc_object renames to dup_1, so registration sees a fresh name; verify
  // both are addressable.
  iss_in<std::uint32_t> b("dup");
  EXPECT_EQ(ctx.find_iss_port("dup"), &a);
  EXPECT_EQ(ctx.find_iss_port("dup_1"), &b);
}

TEST(IssPortTest, TransferCountTracksTraffic) {
  sc_simcontext ctx;
  iss_in<std::uint32_t> in("p");
  in.deliver(1);
  in.deliver(2);
  in.deliver(3);
  EXPECT_EQ(in.transfer_count(), 3u);
}

// ---------------------------------------------------------------- extensions

struct CountingExtension : kernel_extension {
  void on_elaboration(sc_simcontext&) override { ++elaborations; }
  void on_cycle_begin(sc_simcontext&) override { ++begins; }
  void on_cycle_end(sc_simcontext&) override { ++ends; }
  void on_time_advance(sc_simcontext&, const sc_time&) override { ++advances; }
  void on_run_end(sc_simcontext&) override { ++run_ends; }
  int elaborations = 0;
  int begins = 0;
  int ends = 0;
  int advances = 0;
  int run_ends = 0;
};

TEST(ExtensionTest, HooksInvoked) {
  sc_simcontext ctx;
  CountingExtension ext;
  ctx.register_extension(&ext);
  sc_clock clk("clk", 10_ns);
  ctx.run(100_ns);
  EXPECT_EQ(ext.elaborations, 1);
  EXPECT_GT(ext.begins, 10);
  EXPECT_EQ(ext.begins, ext.ends);
  EXPECT_GE(ext.advances, 10);
  EXPECT_EQ(ext.run_ends, 1);
}

TEST(ExtensionTest, UnregisterStopsCallbacks) {
  sc_simcontext ctx;
  CountingExtension ext;
  ctx.register_extension(&ext);
  sc_clock clk("clk", 10_ns);
  ctx.run(20_ns);
  int begins = ext.begins;
  ctx.unregister_extension(&ext);
  ctx.run(20_ns);
  EXPECT_EQ(ext.begins, begins);
}

struct InjectingExtension : kernel_extension {
  explicit InjectingExtension(iss_in<std::uint32_t>& port) : port(&port) {}
  void on_cycle_begin(sc_simcontext&) override {
    if (!injected) {
      injected = true;
      port->deliver(99);
    }
  }
  iss_in<std::uint32_t>* port;
  bool injected = false;
};

TEST(ExtensionTest, ExtensionCanDeliverToIssPorts) {
  // This is the paper's Fig. 3 path: the kernel checks for ISS activity at
  // cycle start and feeds the matching iss_in port, waking its iss_process.
  sc_simcontext ctx;
  iss_in<std::uint32_t> port("from_iss");
  std::vector<std::uint32_t> seen;
  auto& p = ctx.create_method("consume", [&] { seen.push_back(port.read()); },
                              process_kind::IssMethod);
  p.make_sensitive(port.written_event());
  p.dont_initialize();
  InjectingExtension ext(port);
  ctx.register_extension(&ext);
  ctx.run(1_ns);
  EXPECT_EQ(seen, (std::vector<std::uint32_t>{99}));
}

struct StarvationExtension : kernel_extension {
  bool on_starvation(sc_simcontext&) override {
    ++calls;
    if (calls < 3 && event != nullptr) {
      event->notify_delta();
      return true;
    }
    return false;
  }
  sc_event* event = nullptr;
  int calls = 0;
};

TEST(ExtensionTest, StarvationHookKeepsRunAlive) {
  sc_simcontext ctx;
  sc_event ev("ev");
  int runs = 0;
  auto& p = ctx.create_method("p", [&] { ++runs; });
  p.make_sensitive(ev);
  p.dont_initialize();
  StarvationExtension ext;
  ext.event = &ev;
  ctx.register_extension(&ext);
  ctx.run(100_ns);
  EXPECT_EQ(ext.calls, 3);
  EXPECT_EQ(runs, 2);  // revived twice
}

}  // namespace
}  // namespace nisc::sysc
