// Tests for the co-simulation layer: time budget, pragma filter, and
// end-to-end runs of the GDB-Kernel, GDB-Wrapper and Driver-Kernel schemes.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "cosim/driver_kernel.hpp"
#include "cosim/gdb_kernel.hpp"
#include "cosim/gdb_wrapper.hpp"
#include "cosim/pragma.hpp"
#include "cosim/session.hpp"
#include "cosim/time_budget.hpp"
#include "iss/assembler.hpp"
#include "sysc/sysc.hpp"
#include "util/error.hpp"

namespace nisc::cosim {
namespace {

using namespace nisc::sysc::time_literals;

// ---------------------------------------------------------------- TimeBudget

TEST(TimeBudgetTest, DepositThenAcquire) {
  TimeBudget budget;
  budget.deposit(100);
  EXPECT_EQ(budget.acquire(60), 60u);
  EXPECT_EQ(budget.acquire(60), 40u);  // partial grant
}

TEST(TimeBudgetTest, TryAcquireNonBlocking) {
  TimeBudget budget;
  EXPECT_EQ(budget.try_acquire(10), 0u);
  budget.deposit(5);
  EXPECT_EQ(budget.try_acquire(10), 5u);
}

TEST(TimeBudgetTest, CapBoundsAccumulation) {
  TimeBudget budget(100);
  budget.deposit(1000);
  EXPECT_EQ(budget.available(), 100u);
}

TEST(TimeBudgetTest, CloseUnblocksWaiter) {
  TimeBudget budget;
  std::uint64_t got = 99;
  std::thread waiter([&] { got = budget.acquire(10); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  budget.close();
  waiter.join();
  EXPECT_EQ(got, 0u);
  EXPECT_TRUE(budget.closed());
}

TEST(TimeBudgetTest, AcquireBlocksUntilDeposit) {
  TimeBudget budget;
  std::uint64_t got = 0;
  std::thread waiter([&] { got = budget.acquire(10); });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  budget.deposit(3);
  waiter.join();
  EXPECT_EQ(got, 3u);
}

// ---------------------------------------------------------------- pragma filter

TEST(PragmaTest, IssOutLabelLandsOnSameLine) {
  auto filtered = filter_pragmas(R"(
_start:
    #pragma iss_out("hw.to_cpu", in_var)
    lw t0, 0(t1)
    ebreak
in_var: .word 0
)");
  ASSERT_EQ(filtered.bindings.size(), 1u);
  EXPECT_EQ(filtered.bindings[0].direction, BindDirection::ScToIss);
  EXPECT_EQ(filtered.bindings[0].port, "hw.to_cpu");
  EXPECT_EQ(filtered.bindings[0].variable, "in_var");
  // Label must directly precede the lw.
  std::size_t label = filtered.source.find("__bp_0:");
  std::size_t lw = filtered.source.find("lw t0");
  ASSERT_NE(label, std::string::npos);
  EXPECT_LT(label, lw);
  EXPECT_EQ(filtered.source.find("#pragma"), std::string::npos);  // stripped
}

TEST(PragmaTest, IssInLabelLandsOnFollowingLine) {
  auto filtered = filter_pragmas(R"(
    #pragma iss_in("hw.from_cpu", out_var)
    sw t0, 0(t2)
    nop
    ebreak
out_var: .word 0
)");
  ASSERT_EQ(filtered.bindings.size(), 1u);
  std::size_t sw_pos = filtered.source.find("sw t0");
  std::size_t label = filtered.source.find("__bp_0:");
  std::size_t nop = filtered.source.find("nop");
  ASSERT_NE(label, std::string::npos);
  EXPECT_LT(sw_pos, label);  // label is after the annotated statement...
  EXPECT_LT(label, nop);     // ...and before the next one
}

TEST(PragmaTest, ResolvedBindingsCarryAddresses) {
  auto filtered = filter_pragmas(R"(
_start:
    #pragma iss_out("p", var)
    lw t0, 0(t1)
    ebreak
var: .word 0
)");
  iss::Program prog = iss::assemble(filtered.source);
  auto bindings = resolve_bindings(filtered.bindings, prog);
  ASSERT_EQ(bindings.size(), 1u);
  EXPECT_EQ(bindings[0].breakpoint_addr, prog.symbol("__bp_0"));
  EXPECT_EQ(bindings[0].variable_addr, prog.symbol("var"));
  EXPECT_EQ(bindings[0].width, 4u);
}

TEST(PragmaTest, ConsecutivePragmas) {
  auto filtered = filter_pragmas(R"(
    #pragma iss_out("a", v1)
    lw t0, 0(t1)
    #pragma iss_out("b", v2)
    lw t2, 0(t3)
    ebreak
v1: .word 0
v2: .word 0
)");
  ASSERT_EQ(filtered.bindings.size(), 2u);
  iss::Program prog = iss::assemble(filtered.source);
  auto bindings = resolve_bindings(filtered.bindings, prog);
  EXPECT_NE(bindings[0].breakpoint_addr, bindings[1].breakpoint_addr);
}

TEST(PragmaTest, PassesThroughPlainSource) {
  std::string source = "_start:\n  nop\n  ebreak\n";
  auto filtered = filter_pragmas(source);
  EXPECT_TRUE(filtered.bindings.empty());
  EXPECT_EQ(filtered.source, source);
}

TEST(PragmaTest, RejectsMalformedPragma) {
  EXPECT_THROW(filter_pragmas("#pragma iss_in(noquotes, v)\nnop\n"), util::RuntimeError);
  EXPECT_THROW(filter_pragmas("#pragma bogus(\"p\", v)\nnop\n"), util::RuntimeError);
  EXPECT_THROW(filter_pragmas("#pragma iss_in(\"p\")\nnop\n"), util::RuntimeError);
}

TEST(PragmaTest, RejectsPragmaWithoutStatement) {
  EXPECT_THROW(filter_pragmas("nop\n#pragma iss_out(\"p\", v)\n"), util::RuntimeError);
  EXPECT_THROW(filter_pragmas("#pragma iss_in(\"p\", v)\nnop\n"), util::RuntimeError);
}

TEST(PragmaTest, ResolveFailsOnUnknownVariable) {
  auto filtered = filter_pragmas("#pragma iss_out(\"p\", ghost)\nlw t0, 0(t1)\nebreak\n");
  iss::Program prog = iss::assemble(filtered.source);
  EXPECT_THROW(resolve_bindings(filtered.bindings, prog), util::RuntimeError);
}

// ---------------------------------------------------------------- GDB-Kernel

/// Guest: read in_var (injected from SystemC), double it, publish out_var.
constexpr const char* kDoublerGuest = R"(
_start:
    la t1, in_var
    #pragma iss_out("hw.to_cpu", in_var)
    lw t0, 0(t1)
    slli t0, t0, 1
    la t2, out_var
    #pragma iss_in("hw.from_cpu", out_var)
    sw t0, 0(t2)
    nop
    ebreak
in_var: .word 0
out_var: .word 0
)";

TEST(GdbKernelTest, SingleShotRoundTrip) {
  sysc::sc_simcontext ctx;
  sysc::sc_clock clk("clk", 10_ns);
  sysc::iss_out<std::uint32_t> to_cpu("hw.to_cpu");
  sysc::iss_in<std::uint32_t> from_cpu("hw.from_cpu");
  to_cpu.write(21);

  GdbTarget target(kDoublerGuest);
  GdbKernelOptions options;
  options.instructions_per_us = 1000000;
  GdbKernelExtension ext(target.client(), &target.budget(), target.bindings(), options);
  ctx.register_extension(&ext);
  target.start();

  { auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (!ext.target_finished() && std::chrono::steady_clock::now() < deadline) ctx.run(100_ns); }
  EXPECT_TRUE(ext.target_finished());
  EXPECT_EQ(from_cpu.read(), 42u);
  EXPECT_EQ(ext.stats().values_from_sc, 1u);
  EXPECT_EQ(ext.stats().values_to_sc, 1u);
  EXPECT_GT(ext.stats().polls, 0u);
  target.shutdown();
}

TEST(GdbKernelTest, IssProcessWakesOnDelivery) {
  sysc::sc_simcontext ctx;
  sysc::sc_clock clk("clk", 10_ns);
  sysc::iss_out<std::uint32_t> to_cpu("hw.to_cpu");
  sysc::iss_in<std::uint32_t> from_cpu("hw.from_cpu");
  to_cpu.write(5);

  std::vector<std::uint32_t> results;
  auto& proc = ctx.create_method("collect", [&] { results.push_back(from_cpu.read()); },
                                 sysc::process_kind::IssMethod);
  proc.make_sensitive(from_cpu.written_event());
  proc.dont_initialize();

  GdbTarget target(kDoublerGuest);
  GdbKernelOptions options;
  options.instructions_per_us = 1000000;
  GdbKernelExtension ext(target.client(), &target.budget(), target.bindings(), options);
  ctx.register_extension(&ext);
  target.start();

  { auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (!ext.target_finished() && std::chrono::steady_clock::now() < deadline) ctx.run(100_ns); }
  ASSERT_TRUE(ext.target_finished());
  // The iss_process ran exactly once: when data actually crossed the
  // boundary (paper §3.1).
  EXPECT_EQ(results, (std::vector<std::uint32_t>{10}));
  EXPECT_EQ(proc.run_count(), 1u);
  target.shutdown();
}

TEST(GdbKernelTest, LoopedTransfersPreserveOrder) {
  // Guest echoes (value + index accumulator) for 5 handshakes: SystemC
  // writes a fresh value only after consuming the previous result.
  constexpr const char* kEchoGuest = R"(
_start:
    li s0, 5
    la t1, in_var
    la t2, out_var
loop:
    #pragma iss_out("hw.to_cpu", in_var)
    lw t0, 0(t1)
    addi t0, t0, 100
    #pragma iss_in("hw.from_cpu", out_var)
    sw t0, 0(t2)
    nop
    addi s0, s0, -1
    bnez s0, loop
    ebreak
in_var: .word 0
out_var: .word 0
)";
  sysc::sc_simcontext ctx;
  sysc::sc_clock clk("clk", 10_ns);
  sysc::iss_out<std::uint32_t> to_cpu("hw.to_cpu");
  sysc::iss_in<std::uint32_t> from_cpu("hw.from_cpu");

  std::vector<std::uint32_t> results;
  auto& proc = ctx.create_method(
      "collect",
      [&] {
        results.push_back(from_cpu.read());
        to_cpu.write(static_cast<std::uint32_t>(results.size() + 1));  // next input
      },
      sysc::process_kind::IssMethod);
  proc.make_sensitive(from_cpu.written_event());
  proc.dont_initialize();
  to_cpu.write(1);

  GdbTarget target(kEchoGuest);
  GdbKernelOptions options;
  options.instructions_per_us = 1000000;
  GdbKernelExtension ext(target.client(), &target.budget(), target.bindings(), options);
  ctx.register_extension(&ext);
  target.start();

  { auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (!ext.target_finished() && std::chrono::steady_clock::now() < deadline) ctx.run(100_ns); }
  ASSERT_TRUE(ext.target_finished());
  // The freshness gate makes the handshake lossless and deterministic: each
  // injected input is consumed exactly once.
  EXPECT_EQ(results, (std::vector<std::uint32_t>{101, 102, 103, 104, 105}));
  target.shutdown();
}

TEST(GdbKernelTest, ElaborationRejectsUnknownPort) {
  sysc::sc_simcontext ctx;
  sysc::sc_clock clk("clk", 10_ns);
  // No iss ports registered at all.
  GdbTarget target(kDoublerGuest);
  GdbKernelExtension ext(target.client(), &target.budget(), target.bindings());
  ctx.register_extension(&ext);
  target.start();
  EXPECT_THROW(ctx.run(10_ns), util::LogicError);
  target.shutdown();
}

// ---------------------------------------------------------------- GDB-Wrapper

TEST(GdbWrapperTest, SingleShotRoundTrip) {
  sysc::sc_simcontext ctx;
  sysc::sc_clock clk("clk", 10_ns);
  sysc::iss_out<std::uint32_t> to_cpu("hw.to_cpu");
  sysc::iss_in<std::uint32_t> from_cpu("hw.from_cpu");
  to_cpu.write(21);

  GdbTargetConfig config;
  config.throttled = false;  // the wrapper's lock-step paces the ISS itself
  GdbTarget target(kDoublerGuest, config);
  GdbWrapperOptions options;
  options.instructions_per_cycle = 4;
  auto& wrapper = ctx.create<GdbWrapperModule>("wrapper", target.client(), target.bindings(),
                                               options);
  wrapper.clk.bind(clk.signal());
  target.start();

  { auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (!wrapper.target_finished() && std::chrono::steady_clock::now() < deadline) ctx.run(100_ns); }
  EXPECT_TRUE(wrapper.target_finished());
  EXPECT_EQ(from_cpu.read(), 42u);
  EXPECT_EQ(wrapper.stats().values_from_sc, 1u);
  EXPECT_EQ(wrapper.stats().values_to_sc, 1u);
  // Lock-step: one blocking quantum round trip per clock cycle; the guest
  // needs several cycles at 4 instructions each.
  EXPECT_GE(wrapper.stats().steps, 3u);
  EXPECT_EQ(wrapper.stats().breakpoint_events, 2u);
  target.shutdown();
}

// ---------------------------------------------------------------- Driver-Kernel

/// Guest: blocking dev_read of one word, add one, dev_write it back, exit.
constexpr const char* kIncrementGuest = R"(
_start:
    li a0, 0
    la a1, buf
    li a2, 4
    li a7, SYS_DEV_READ
    ecall
    la t0, buf
    lw t1, 0(t0)
    addi t1, t1, 1
    sw t1, 0(t0)
    li a0, 0
    la a1, buf
    li a2, 4
    li a7, SYS_DEV_WRITE
    ecall
    li a7, SYS_EXIT
    ecall
buf: .word 0
)";

struct DriverFixture : ::testing::Test {
  void boot(const std::string& guest, DriverKernelOptions ext_options = {}) {
    ctx = std::make_unique<sysc::sc_simcontext>();
    clk = &ctx->create<sysc::sc_clock>("clk", 10_ns);
    to_cpu = &ctx->create<sysc::iss_out<std::uint32_t>>("hw.to_cpu");
    from_cpu = &ctx->create<sysc::iss_in<std::uint32_t>>("hw.from_cpu");

    DriverTargetConfig config;
    config.write_port = "hw.from_cpu";
    config.read_port = "hw.to_cpu";
    target = std::make_unique<DriverTarget>(guest, config);
    ext_options.instructions_per_us = 1000000;
    ext = std::make_unique<DriverKernelExtension>(target->take_data_endpoint(),
                                                  target->take_interrupt_endpoint(),
                                                  &target->budget(), ext_options);
    ctx->register_extension(ext.get());
    target->start();
  }

  void run_until_finished() {
    // Bound by wall clock, not window count: the target thread's progress
    // depends on host scheduling.
    auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
    while (!target->finished() && std::chrono::steady_clock::now() < deadline) {
      ctx->run(100_ns);
    }
  }

  void TearDown() override {
    if (target) target->shutdown();
    if (ctx && ext) ctx->unregister_extension(ext.get());
  }

  std::unique_ptr<sysc::sc_simcontext> ctx;
  sysc::sc_clock* clk = nullptr;
  sysc::iss_out<std::uint32_t>* to_cpu = nullptr;
  sysc::iss_in<std::uint32_t>* from_cpu = nullptr;
  std::unique_ptr<DriverTarget> target;
  std::unique_ptr<DriverKernelExtension> ext;
};

TEST_F(DriverFixture, ReadIncrementWriteRoundTrip) {
  boot(kIncrementGuest);
  to_cpu->write(41);  // pushed to the driver at the end of the first cycle
  run_until_finished();
  ASSERT_TRUE(target->finished());
  EXPECT_EQ(target->last_status(), rtos::RunStatus::AllDone);
  EXPECT_EQ(from_cpu->read(), 42u);
  EXPECT_GE(ext->stats().messages_in, 1u);   // the guest's WRITE
  EXPECT_GE(ext->stats().messages_out, 1u);  // the pushed input value
}

TEST_F(DriverFixture, InterruptReachesGuestIsr) {
  constexpr const char* kIsrGuest = R"(
_start:
    la a1, isr
    li a0, 5
    li a7, SYS_IRQ_ATTACH
    ecall
spin:
    la t0, flag
    lw t1, 0(t0)
    beqz t1, spin
    li a7, SYS_PUTC
    li a0, 68          # 'D'
    ecall
    li a7, SYS_EXIT
    ecall
isr:
    li a7, SYS_PUTC
    li a0, 73          # 'I'
    ecall
    la t0, flag
    li t1, 1
    sw t1, 0(t0)
    ret
flag: .word 0
)";
  boot(kIsrGuest);
  // Let the guest attach its handler, then raise the device interrupt.
  ctx->run(1_us);
  ext->post_interrupt(5);
  run_until_finished();
  ASSERT_TRUE(target->finished());
  EXPECT_EQ(target->kernel().console(), "ID");
  EXPECT_EQ(ext->stats().interrupts_sent, 1u);
  EXPECT_EQ(target->kernel().stats().isr_dispatches, 1u);
}

TEST_F(DriverFixture, MultipleTransfersKeepOrder) {
  // Guest loops 4 times: read word, add 100, write back.
  constexpr const char* kLoopGuest = R"(
_start:
    li s0, 4
loop:
    li a0, 0
    la a1, buf
    li a2, 4
    li a7, SYS_DEV_READ
    ecall
    la t0, buf
    lw t1, 0(t0)
    addi t1, t1, 100
    sw t1, 0(t0)
    li a0, 0
    la a1, buf
    li a2, 4
    li a7, SYS_DEV_WRITE
    ecall
    addi s0, s0, -1
    bnez s0, loop
    li a7, SYS_EXIT
    ecall
buf: .word 0
)";
  boot(kLoopGuest);

  std::vector<std::uint32_t> results;
  auto& proc = ctx->create_method(
      "collect",
      [&] {
        results.push_back(from_cpu->read());
        to_cpu->write(static_cast<std::uint32_t>(results.size() + 1));
      },
      sysc::process_kind::IssMethod);
  proc.make_sensitive(from_cpu->written_event());
  proc.dont_initialize();

  to_cpu->write(1);
  run_until_finished();
  ASSERT_TRUE(target->finished());
  ASSERT_EQ(results.size(), 4u);
  EXPECT_EQ(results[0], 101u);
  EXPECT_EQ(results[1], 102u);
  EXPECT_EQ(results[2], 103u);
  EXPECT_EQ(results[3], 104u);
}

TEST_F(DriverFixture, GuestFaultEndsSession) {
  boot("_start:\n  .word 0xffffffff\n");
  run_until_finished();
  EXPECT_TRUE(target->finished());
  EXPECT_EQ(target->last_status(), rtos::RunStatus::Fault);
}

TEST(DriverTargetTest, EndpointsCanOnlyBeTakenOnce) {
  DriverTargetConfig config;
  config.write_port = "a";
  config.read_port = "b";
  DriverTarget target("_start:\n li a7, SYS_EXIT\n ecall\n", config);
  (void)target.take_data_endpoint();
  EXPECT_THROW(target.take_data_endpoint(), util::LogicError);
}

}  // namespace
}  // namespace nisc::cosim
