// Tests for the observability tooling: VCD waveform tracing (kernel side)
// and the instruction tracer (ISS side).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "iss/assembler.hpp"
#include "iss/tracer.hpp"
#include "sysc/sysc.hpp"
#include "sysc/vcd_trace.hpp"

namespace {

using namespace nisc::sysc;
using namespace nisc::sysc::time_literals;

std::string temp_path(const char* stem) {
  return std::string("/tmp/niscosim_") + stem + "_" + std::to_string(::getpid()) + ".vcd";
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// ---------------------------------------------------------------- VCD

TEST(VcdTest, HeaderListsTracedSignals) {
  std::string path = temp_path("header");
  {
    sc_simcontext ctx;
    sc_signal<bool> flag("flag");
    sc_signal<int> count("count");
    vcd_trace_file vcd(path, ctx);
    vcd.trace(flag, "flag");
    vcd.trace(count, "count");
    EXPECT_EQ(vcd.channel_count(), 2u);
    ctx.run(1_ns);
  }
  std::string text = slurp(path);
  EXPECT_NE(text.find("$timescale 1 ps $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 1 ! flag $end"), std::string::npos);
  EXPECT_NE(text.find("$var wire 32 \" count $end"), std::string::npos);
  EXPECT_NE(text.find("$enddefinitions $end"), std::string::npos);
  std::remove(path.c_str());
}

TEST(VcdTest, RecordsClockToggles) {
  std::string path = temp_path("clock");
  std::uint64_t changes = 0;
  {
    sc_simcontext ctx;
    sc_clock clk("clk", 10_ns);
    vcd_trace_file vcd(path, ctx);
    vcd.trace(clk.signal(), "clk");
    ctx.run(100_ns);
    changes = vcd.changes_written();
  }
  std::string text = slurp(path);
  // 100 ns at a 10 ns period: ~20 toggles, each a "0!" or "1!" record.
  EXPECT_GE(changes, 18u);
  EXPECT_NE(text.find("#5000"), std::string::npos);  // negedge at 5 ns
  EXPECT_NE(text.find("1!"), std::string::npos);
  EXPECT_NE(text.find("0!"), std::string::npos);
  std::remove(path.c_str());
}

TEST(VcdTest, VectorValuesWrittenInBinary) {
  std::string path = temp_path("vector");
  {
    sc_simcontext ctx;
    sc_signal<int> value("value");
    vcd_trace_file vcd(path, ctx);
    vcd.trace(value, "value");
    ctx.create_method("drive", [&] { value.write(5); });
    ctx.run(1_ns);
  }
  std::string text = slurp(path);
  EXPECT_NE(text.find("b101 !"), std::string::npos);
  std::remove(path.c_str());
}

TEST(VcdTest, NoDuplicateRecordsForStableSignals) {
  std::string path = temp_path("stable");
  std::uint64_t changes = 0;
  {
    sc_simcontext ctx;
    sc_signal<int> constant("constant", 7);
    sc_clock clk("clk", 10_ns);  // keeps cycles happening
    vcd_trace_file vcd(path, ctx);
    vcd.trace(constant, "constant");
    ctx.run(200_ns);
    changes = vcd.changes_written();
  }
  EXPECT_EQ(changes, 1u);  // initial value only
  std::remove(path.c_str());
}

TEST(VcdTest, RejectsUnwritablePath) {
  sc_simcontext ctx;
  EXPECT_THROW(vcd_trace_file("/nonexistent_dir/x.vcd", ctx), nisc::util::RuntimeError);
}

TEST(VcdTest, TraceAfterRunRejected) {
  std::string path = temp_path("late");
  sc_simcontext ctx;
  sc_signal<bool> flag("flag");
  vcd_trace_file vcd(path, ctx);
  ctx.run(1_ns);
  EXPECT_THROW(vcd.trace(flag, "flag"), nisc::util::LogicError);
  std::remove(path.c_str());
}

// ---------------------------------------------------------------- instruction tracer

TEST(TracerTest, RecordsExecutedInstructions) {
  nisc::iss::Cpu cpu(1 << 16);
  nisc::iss::Program prog = nisc::iss::assemble("li a0, 1\nli a0, 2\nebreak\n");
  prog.load_into(cpu.mem());
  nisc::iss::ExecutionTracer tracer(cpu, 16);
  cpu.run(100);
  EXPECT_EQ(tracer.total_recorded(), 3u);  // two li + the ebreak fetch
  ASSERT_GE(tracer.size(), 2u);
  EXPECT_EQ(tracer.entries()[0].pc, 0u);
  EXPECT_EQ(tracer.entries()[1].pc, 4u);
}

TEST(TracerTest, RingBufferKeepsTail) {
  nisc::iss::Cpu cpu(1 << 16);
  nisc::iss::Program prog = nisc::iss::assemble(R"(
      li t0, 100
  spin:
      addi t0, t0, -1
      bnez t0, spin
      ebreak
  )");
  prog.load_into(cpu.mem());
  nisc::iss::ExecutionTracer tracer(cpu, 8);
  cpu.run(10000);
  EXPECT_EQ(tracer.size(), 8u);
  EXPECT_GT(tracer.total_recorded(), 8u);
  // The last entry is the ebreak.
  EXPECT_EQ(tracer.entries().back().pc, prog.symbol("spin") + 8);
}

TEST(TracerTest, DumpContainsDisassembly) {
  nisc::iss::Cpu cpu(1 << 16);
  nisc::iss::Program prog = nisc::iss::assemble("addi a0, zero, 42\nebreak\n");
  prog.load_into(cpu.mem());
  nisc::iss::ExecutionTracer tracer(cpu);
  cpu.run(10);
  std::string dump = tracer.dump();
  EXPECT_NE(dump.find("addi x10, x0, 42"), std::string::npos);
  EXPECT_NE(dump.find("ebreak"), std::string::npos);
}

TEST(TracerTest, DetachRestoresFullSpeedPath) {
  nisc::iss::Cpu cpu(1 << 16);
  nisc::iss::Program prog = nisc::iss::assemble("spin: j spin\n");
  prog.load_into(cpu.mem());
  {
    nisc::iss::ExecutionTracer tracer(cpu, 4);
    cpu.run(100);
    EXPECT_EQ(tracer.total_recorded(), 100u);
  }
  cpu.run(100);  // tracer destroyed: hook removed, no crash
}

TEST(TracerTest, ClearKeepsCounters) {
  nisc::iss::Cpu cpu(1 << 16);
  nisc::iss::Program prog = nisc::iss::assemble("spin: j spin\n");
  prog.load_into(cpu.mem());
  nisc::iss::ExecutionTracer tracer(cpu, 4);
  cpu.run(10);
  tracer.clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.total_recorded(), 10u);
}

}  // namespace
