// Failure injection: broken transports, malformed protocol traffic, guest
// faults and corrupted frames must degrade gracefully, never crash or hang
// the co-simulation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "cosim/driver_kernel.hpp"
#include "cosim/gdb_kernel.hpp"
#include "cosim/session.hpp"
#include "cosim/watchdog.hpp"
#include "ipc/fault.hpp"
#include "ipc/message.hpp"
#include "iss/assembler.hpp"
#include "rsp/client.hpp"
#include "rsp/stub.hpp"
#include "sysc/sysc.hpp"
#include "util/error.hpp"

namespace nisc {
namespace {

using namespace nisc::sysc::time_literals;

// ---------------------------------------------------------------- RSP layer

TEST(RspFailure, ClientSurvivesCorruptedReplyViaNak) {
  // The stub-side endpoint corrupts byte 1 of its first reply *frame* (the
  // CorruptByte defer rule skips the one-byte "+" ack): the client NAKs,
  // the stub retransmits, and the transaction still completes.
  iss::Cpu cpu(1 << 16);
  iss::Program prog = iss::assemble("ebreak\n");
  prog.load_into(cpu.mem());

  auto pair = ipc::make_channel_pair(ipc::Transport::SocketPair);
  auto faults = ipc::FaultyChannel::install(pair.a, ipc::FaultPlan{}.corrupt_send(1, 1));
  rsp::GdbStub stub(cpu, std::move(pair.a));
  rsp::GdbClient client(std::move(pair.b));
  std::thread serve([&] { stub.serve(); });

  EXPECT_EQ(client.transact("?"), "S05");  // survives the corruption
  EXPECT_EQ(faults->stats().injected[static_cast<int>(ipc::FaultKind::CorruptByte)], 1u);
  client.kill();
  serve.join();
}

TEST(RspFailure, ClientGivesUpWhenEveryReplyIsDropped) {
  // All stub frames vanish: await_reply must throw at its deadline instead
  // of blocking forever.
  iss::Cpu cpu(1 << 16);
  auto pair = ipc::make_channel_pair(ipc::Transport::SocketPair);
  ipc::FaultPlan plan;
  plan.specs.push_back({ipc::FaultKind::Drop, ipc::FaultDir::Send, /*nth=*/1, /*every=*/1,
                        /*count=*/1, /*arg=*/0, /*min_size=*/2, /*probability=*/1.0});
  ipc::FaultyChannel::install(pair.a, plan);
  rsp::GdbStub stub(cpu, std::move(pair.a));
  rsp::GdbClient client(std::move(pair.b), rsp::ClientOptions{/*reply_timeout_ms=*/200});
  std::thread serve([&] { stub.serve(); });
  auto start = std::chrono::steady_clock::now();
  EXPECT_THROW(client.transact("?"), util::RuntimeError);
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - start)
                     .count();
  EXPECT_GE(elapsed, 150);
  EXPECT_LT(elapsed, 5000);
  stub.request_stop();
  serve.join();
}

TEST(RspFailure, StubExitsOnTransportClose) {
  iss::Cpu cpu(1 << 16);
  auto pair = ipc::make_channel_pair(ipc::Transport::Pipe);
  rsp::GdbStub stub(cpu, std::move(pair.a));
  std::thread serve([&] { stub.serve(); });
  pair.b.close();  // peer disappears
  serve.join();    // must terminate, not hang
}

TEST(RspFailure, ClientThrowsAfterPeerDeath) {
  iss::Cpu cpu(1 << 16);
  auto pair = ipc::make_channel_pair(ipc::Transport::Pipe);
  auto stub = std::make_unique<rsp::GdbStub>(cpu, std::move(pair.a));
  rsp::GdbClient client(std::move(pair.b));
  std::thread serve([&] { stub->serve(); });
  client.kill();
  serve.join();
  stub.reset();  // closes the stub-side fds
  EXPECT_THROW(client.transact("?"), util::RuntimeError);
}

// ---------------------------------------------------------------- Driver layer

struct DriverFailureFixture : ::testing::Test {
  void boot() {
    ctx = std::make_unique<sysc::sc_simcontext>();
    clk = &ctx->create<sysc::sc_clock>("clk", 10_ns);
    port_in = &ctx->create<sysc::iss_in<std::uint32_t>>("dev.in");
    port_out = &ctx->create<sysc::iss_out<std::uint32_t>>("dev.out");
    auto data = ipc::make_channel_pair(ipc::Transport::SocketPair);
    auto irq = ipc::make_channel_pair(ipc::Transport::SocketPair);
    ext = std::make_unique<cosim::DriverKernelExtension>(std::move(data.a), std::move(irq.a),
                                                         nullptr);
    ctx->register_extension(ext.get());
    driver_data = std::move(data.b);
    driver_irq = std::move(irq.b);
  }

  void TearDown() override {
    if (ctx && ext) ctx->unregister_extension(ext.get());
  }

  std::unique_ptr<sysc::sc_simcontext> ctx;
  sysc::sc_clock* clk = nullptr;
  sysc::iss_in<std::uint32_t>* port_in = nullptr;
  sysc::iss_out<std::uint32_t>* port_out = nullptr;
  std::unique_ptr<cosim::DriverKernelExtension> ext;
  ipc::Channel driver_data;
  ipc::Channel driver_irq;
};

TEST_F(DriverFailureFixture, WriteToUnknownPortIsDropped) {
  boot();
  ipc::send_message(driver_data, ipc::DriverMessage::write_u32("no.such.port", 1));
  ipc::send_message(driver_data, ipc::DriverMessage::write_u32("dev.in", 42));
  ctx->run(100_ns);
  EXPECT_EQ(port_in->read(), 42u);  // the good message still lands
  EXPECT_EQ(ext->stats().messages_in, 2u);
}

TEST_F(DriverFailureFixture, WrongWidthPayloadIsDropped) {
  boot();
  ipc::DriverMessage bad;
  bad.type = ipc::MsgType::Write;
  bad.items.push_back({"dev.in", {0x01, 0x02}});  // 2 bytes into a u32 port
  ipc::send_message(driver_data, bad);
  ipc::send_message(driver_data, ipc::DriverMessage::write_u32("dev.in", 7));
  ctx->run(100_ns);
  EXPECT_EQ(port_in->read(), 7u);
  EXPECT_EQ(ext->stats().words_delivered, 1u);
}

TEST_F(DriverFailureFixture, ReadOfInputPortIsRejected) {
  boot();
  ipc::send_message(driver_data, ipc::DriverMessage::read_request("dev.in"));
  ctx->run(100_ns);
  // The reply must arrive (possibly with no items) and the kernel survives.
  ASSERT_TRUE(driver_data.readable(1000));
  ipc::DriverMessage reply = ipc::recv_message(driver_data);
  EXPECT_EQ(reply.type, ipc::MsgType::ReadReply);
  EXPECT_TRUE(reply.items.empty());
}

TEST_F(DriverFailureFixture, DriverDisappearingMidRunIsTolerated) {
  boot();
  port_out->write(9);     // something to push
  driver_data.close();    // the ISS process dies
  driver_irq.close();
  ctx->run(200_ns);       // pushes fail silently; simulation continues
  ext->post_interrupt(3);
  ctx->run(200_ns);
  EXPECT_GT(ctx->time_stamp().ps(), 0u);
}

TEST(DriverTargetFailure, GuestFaultShutsDownCleanly) {
  cosim::DriverTargetConfig config;
  config.write_port = "a";
  config.read_port = "b";
  config.throttled = false;
  cosim::DriverTarget target("_start:\n  .word 0xffffffff\n", config);
  (void)target.take_data_endpoint();
  (void)target.take_interrupt_endpoint();
  target.start();
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!target.finished() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(target.finished());
  EXPECT_EQ(target.last_status(), rtos::RunStatus::Fault);
  target.shutdown();
}

// ---------------------------------------------------------------- GDB session

TEST(GdbSessionFailure, GuestFaultFinishesExtension) {
  sysc::sc_simcontext ctx;
  sysc::sc_clock clk("clk", 10_ns);
  // The guest dereferences a wild pointer immediately.
  cosim::GdbTarget target("_start:\n  li t0, 0x7ff00000\n  lw t1, 0(t0)\n  ebreak\n");
  cosim::GdbKernelOptions options;
  options.instructions_per_us = 1000000;
  cosim::GdbKernelExtension ext(target.client(), &target.budget(), {}, options);
  ctx.register_extension(&ext);
  target.start();
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!ext.target_finished() && std::chrono::steady_clock::now() < deadline) {
    ctx.run(1_us);
  }
  EXPECT_TRUE(ext.target_finished());  // SIGSEGV stop marks the end
  target.shutdown();
  ctx.unregister_extension(&ext);
}

TEST(GdbSessionFailure, ShutdownWhileGuestSpinsForever) {
  sysc::sc_simcontext ctx;
  sysc::sc_clock clk("clk", 10_ns);
  cosim::GdbTarget target("_start:\nspin:\n  j spin\n");
  cosim::GdbKernelOptions options;
  options.instructions_per_us = 1000000;
  cosim::GdbKernelExtension ext(target.client(), &target.budget(), {}, options);
  ctx.register_extension(&ext);
  target.start();
  ctx.run(1_us);
  target.shutdown();  // must interrupt the free-running guest and join
  ctx.unregister_extension(&ext);
}

TEST(GdbSessionFailure, DoubleShutdownIsIdempotent) {
  cosim::GdbTarget target("_start:\n  ebreak\n");
  target.start();
  target.shutdown();
  target.shutdown();
}

TEST(GdbSessionFailure, MidFrameDisconnectYieldsStructuredError) {
  // The stub's first sizeable frame (the ebreak stop reply) is cut after
  // two bytes and the transport closed: the kernel extension must end the
  // run with a CosimError carrying a wire post-mortem, never crash or hang.
  sysc::sc_simcontext ctx;
  sysc::sc_clock clk("clk", 10_ns);
  cosim::GdbTargetConfig config;
  config.fault_plan.disconnect_send(1, 2);
  config.reply_timeout_ms = 500;
  config.io_timeout_ms = 1000;
  config.throttled = false;
  cosim::GdbTarget target("_start:\n  ebreak\n", config);
  cosim::GdbKernelOptions options;
  options.instructions_per_us = 1000000;
  cosim::GdbKernelExtension ext(target.client(), nullptr, {}, options);
  ctx.register_extension(&ext);
  target.start();
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (!ext.error() && !ext.target_finished() &&
         std::chrono::steady_clock::now() < deadline) {
    ctx.run(1_us);
  }
  ASSERT_TRUE(ext.error().has_value());
  EXPECT_EQ(ext.error()->scheme, "gdb-kernel");
  EXPECT_FALSE(ext.error()->message.empty());
  EXPECT_FALSE(ext.error()->post_mortem.empty());
  target.shutdown();
  ctx.unregister_extension(&ext);
}

// ---------------------------------------------------------------- Watchdog

TEST(WatchdogFailure, TripsAndBlamesTheIssWhenAllowanceGoesUnconsumed) {
  cosim::TimeBudget budget;
  budget.deposit(1000);  // allowance present, consumer never moves
  std::atomic<std::uint64_t> progress{0};
  cosim::WatchdogConfig config;
  config.check_interval_ms = 10;
  config.stall_threshold_ms = 40;
  cosim::LivenessWatchdog dog("stall-test", progress, &budget, config);
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (!dog.tripped() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(dog.tripped());
  EXPECT_NE(dog.report().find("ISS/target side is blocked"), std::string::npos);
  dog.stop();
}

TEST(WatchdogFailure, StaysQuietWhileProgressFlows) {
  cosim::TimeBudget budget;
  budget.deposit(1000);
  std::atomic<std::uint64_t> progress{0};
  cosim::WatchdogConfig config;
  config.check_interval_ms = 10;
  config.stall_threshold_ms = 40;
  cosim::LivenessWatchdog dog("live-test", progress, &budget, config);
  for (int i = 0; i < 20; ++i) {
    progress.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_FALSE(dog.tripped());
  dog.stop();
}

TEST(WatchdogFailure, IdleConsumerIsNotAStall) {
  // Halted at a breakpoint (consumer idle): silence is expected, no trip.
  cosim::TimeBudget budget;
  budget.deposit(1000);
  budget.set_idle(true);
  std::atomic<std::uint64_t> progress{0};
  cosim::WatchdogConfig config;
  config.check_interval_ms = 10;
  config.stall_threshold_ms = 40;
  cosim::LivenessWatchdog dog("idle-test", progress, &budget, config);
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  EXPECT_FALSE(dog.tripped());
  dog.stop();
}

}  // namespace
}  // namespace nisc
