// Failure injection: broken transports, malformed protocol traffic, guest
// faults and corrupted frames must degrade gracefully, never crash or hang
// the co-simulation.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "cosim/driver_kernel.hpp"
#include "cosim/gdb_kernel.hpp"
#include "cosim/session.hpp"
#include "ipc/message.hpp"
#include "iss/assembler.hpp"
#include "rsp/client.hpp"
#include "rsp/stub.hpp"
#include "sysc/sysc.hpp"
#include "util/error.hpp"

namespace nisc {
namespace {

using namespace nisc::sysc::time_literals;

// ---------------------------------------------------------------- RSP layer

TEST(RspFailure, ClientSurvivesCorruptedReplyViaNak) {
  // A proxy thread corrupts the first stop-reply frame; the client NAKs and
  // the stub retransmits, so the transaction still completes.
  iss::Cpu cpu(1 << 16);
  iss::Program prog = iss::assemble("ebreak\n");
  prog.load_into(cpu.mem());

  auto stub_side = ipc::make_channel_pair(ipc::Transport::SocketPair);
  auto client_side = ipc::make_channel_pair(ipc::Transport::SocketPair);
  rsp::GdbStub stub(cpu, std::move(stub_side.a));
  rsp::GdbClient client(std::move(client_side.a));

  std::atomic<bool> stop{false};
  std::thread proxy([&] {
    // stub_side.b <-> client_side.b, flipping one byte of the first frame
    // from the stub.
    bool corrupted = false;
    std::uint8_t buf[512];
    while (!stop.load()) {
      if (client_side.b.readable(5)) {
        std::size_t n = client_side.b.recv_some(buf);
        if (n > 0) stub_side.b.send(std::span<const std::uint8_t>(buf, n));
      }
      if (stub_side.b.readable(5)) {
        std::size_t n = stub_side.b.recv_some(buf);
        if (n > 0) {
          if (!corrupted) {
            for (std::size_t i = 0; i < n; ++i) {
              if (buf[i] == '$' && i + 1 < n) {
                buf[i + 1] ^= 0x01;  // corrupt the first payload byte
                corrupted = true;
                break;
              }
            }
          }
          client_side.b.send(std::span<const std::uint8_t>(buf, n));
        }
      }
    }
  });
  std::thread serve([&] { stub.serve(); });

  EXPECT_EQ(client.transact("?"), "S05");  // survives the corruption
  client.kill();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  stop.store(true);
  proxy.join();
  serve.join();
}

TEST(RspFailure, StubExitsOnTransportClose) {
  iss::Cpu cpu(1 << 16);
  auto pair = ipc::make_channel_pair(ipc::Transport::Pipe);
  rsp::GdbStub stub(cpu, std::move(pair.a));
  std::thread serve([&] { stub.serve(); });
  pair.b.close();  // peer disappears
  serve.join();    // must terminate, not hang
}

TEST(RspFailure, ClientThrowsAfterPeerDeath) {
  iss::Cpu cpu(1 << 16);
  auto pair = ipc::make_channel_pair(ipc::Transport::Pipe);
  auto stub = std::make_unique<rsp::GdbStub>(cpu, std::move(pair.a));
  rsp::GdbClient client(std::move(pair.b));
  std::thread serve([&] { stub->serve(); });
  client.kill();
  serve.join();
  stub.reset();  // closes the stub-side fds
  EXPECT_THROW(client.transact("?"), util::RuntimeError);
}

// ---------------------------------------------------------------- Driver layer

struct DriverFailureFixture : ::testing::Test {
  void boot() {
    ctx = std::make_unique<sysc::sc_simcontext>();
    clk = &ctx->create<sysc::sc_clock>("clk", 10_ns);
    port_in = &ctx->create<sysc::iss_in<std::uint32_t>>("dev.in");
    port_out = &ctx->create<sysc::iss_out<std::uint32_t>>("dev.out");
    auto data = ipc::make_channel_pair(ipc::Transport::SocketPair);
    auto irq = ipc::make_channel_pair(ipc::Transport::SocketPair);
    ext = std::make_unique<cosim::DriverKernelExtension>(std::move(data.a), std::move(irq.a),
                                                         nullptr);
    ctx->register_extension(ext.get());
    driver_data = std::move(data.b);
    driver_irq = std::move(irq.b);
  }

  void TearDown() override {
    if (ctx && ext) ctx->unregister_extension(ext.get());
  }

  std::unique_ptr<sysc::sc_simcontext> ctx;
  sysc::sc_clock* clk = nullptr;
  sysc::iss_in<std::uint32_t>* port_in = nullptr;
  sysc::iss_out<std::uint32_t>* port_out = nullptr;
  std::unique_ptr<cosim::DriverKernelExtension> ext;
  ipc::Channel driver_data;
  ipc::Channel driver_irq;
};

TEST_F(DriverFailureFixture, WriteToUnknownPortIsDropped) {
  boot();
  ipc::send_message(driver_data, ipc::DriverMessage::write_u32("no.such.port", 1));
  ipc::send_message(driver_data, ipc::DriverMessage::write_u32("dev.in", 42));
  ctx->run(100_ns);
  EXPECT_EQ(port_in->read(), 42u);  // the good message still lands
  EXPECT_EQ(ext->stats().messages_in, 2u);
}

TEST_F(DriverFailureFixture, WrongWidthPayloadIsDropped) {
  boot();
  ipc::DriverMessage bad;
  bad.type = ipc::MsgType::Write;
  bad.items.push_back({"dev.in", {0x01, 0x02}});  // 2 bytes into a u32 port
  ipc::send_message(driver_data, bad);
  ipc::send_message(driver_data, ipc::DriverMessage::write_u32("dev.in", 7));
  ctx->run(100_ns);
  EXPECT_EQ(port_in->read(), 7u);
  EXPECT_EQ(ext->stats().words_delivered, 1u);
}

TEST_F(DriverFailureFixture, ReadOfInputPortIsRejected) {
  boot();
  ipc::send_message(driver_data, ipc::DriverMessage::read_request("dev.in"));
  ctx->run(100_ns);
  // The reply must arrive (possibly with no items) and the kernel survives.
  ASSERT_TRUE(driver_data.readable(1000));
  ipc::DriverMessage reply = ipc::recv_message(driver_data);
  EXPECT_EQ(reply.type, ipc::MsgType::ReadReply);
  EXPECT_TRUE(reply.items.empty());
}

TEST_F(DriverFailureFixture, DriverDisappearingMidRunIsTolerated) {
  boot();
  port_out->write(9);     // something to push
  driver_data.close();    // the ISS process dies
  driver_irq.close();
  ctx->run(200_ns);       // pushes fail silently; simulation continues
  ext->post_interrupt(3);
  ctx->run(200_ns);
  EXPECT_GT(ctx->time_stamp().ps(), 0u);
}

TEST(DriverTargetFailure, GuestFaultShutsDownCleanly) {
  cosim::DriverTargetConfig config;
  config.write_port = "a";
  config.read_port = "b";
  config.throttled = false;
  cosim::DriverTarget target("_start:\n  .word 0xffffffff\n", config);
  (void)target.take_data_endpoint();
  (void)target.take_interrupt_endpoint();
  target.start();
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!target.finished() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(target.finished());
  EXPECT_EQ(target.last_status(), rtos::RunStatus::Fault);
  target.shutdown();
}

// ---------------------------------------------------------------- GDB session

TEST(GdbSessionFailure, GuestFaultFinishesExtension) {
  sysc::sc_simcontext ctx;
  sysc::sc_clock clk("clk", 10_ns);
  // The guest dereferences a wild pointer immediately.
  cosim::GdbTarget target("_start:\n  li t0, 0x7ff00000\n  lw t1, 0(t0)\n  ebreak\n");
  cosim::GdbKernelOptions options;
  options.instructions_per_us = 1000000;
  cosim::GdbKernelExtension ext(target.client(), &target.budget(), {}, options);
  ctx.register_extension(&ext);
  target.start();
  auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (!ext.target_finished() && std::chrono::steady_clock::now() < deadline) {
    ctx.run(1_us);
  }
  EXPECT_TRUE(ext.target_finished());  // SIGSEGV stop marks the end
  target.shutdown();
  ctx.unregister_extension(&ext);
}

TEST(GdbSessionFailure, ShutdownWhileGuestSpinsForever) {
  sysc::sc_simcontext ctx;
  sysc::sc_clock clk("clk", 10_ns);
  cosim::GdbTarget target("_start:\nspin:\n  j spin\n");
  cosim::GdbKernelOptions options;
  options.instructions_per_us = 1000000;
  cosim::GdbKernelExtension ext(target.client(), &target.budget(), {}, options);
  ctx.register_extension(&ext);
  target.start();
  ctx.run(1_us);
  target.shutdown();  // must interrupt the free-running guest and join
  ctx.unregister_extension(&ext);
}

TEST(GdbSessionFailure, DoubleShutdownIsIdempotent) {
  cosim::GdbTarget target("_start:\n  ebreak\n");
  target.start();
  target.shutdown();
  target.shutdown();
}

}  // namespace
}  // namespace nisc
