// Crash matrix (DESIGN.md §12): SIGKILL the supervised ISS worker at
// randomized instruction counts and assert the recovered session's final
// checkpoint is bit-identical to an uninterrupted control run's.
//
// The worker is a real child process (cosim_issworker, path baked in via
// NISC_WORKER_BIN), so the kills are real kills: the supervisor sees EOF or
// a dead pid, respawns over fresh socketpairs, replays the last checkpoint
// and re-sends undrained interrupts. The guest exercises every recovery-
// sensitive path: device writes, synchronous device reads, interrupt
// raising and draining — all logged into guest memory so any divergence
// shows up in the ISS page diff, not just the counters.
//
// Full matrix: >= 8 distinct kill points x 3 seeds, plus hang, garbage and
// multi-crash cells. NISC_CRASH_QUICK=1 (the PR CI profile) shrinks it to
// 3 points x 1 seed. On mismatch the control and recovered checkpoints are
// written next to the test as artifacts and the field diff is printed.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "analysis/diag.hpp"
#include "analysis/protocol.hpp"
#include "cosim/checkpoint.hpp"
#include "cosim/supervisor.hpp"
#include "cosim/worker.hpp"
#include "iss/cpu.hpp"
#include "util/rng.hpp"

namespace nisc::cosim {
namespace {

// 40 iterations; every iteration does a device write, an op-count read and
// an irq pop; every 4th raises an interrupt. All results are logged to
// memory so the final ISS pages encode the full device interaction history.
constexpr const char* kGuestSource = R"(
_start:
    li   s0, 0          # i
    li   s1, 40         # iterations
    la   s2, log
loop:
    # dev_write(0x200 + 4*i, 4*i + 7)
    slli a0, s0, 2
    addi a1, a0, 7
    addi a0, a0, 0x200
    li   a7, 1
    ecall
    # every 4th iteration: raise irq line (i & 31)
    andi t1, s0, 3
    bnez t1, no_irq
    li   a0, 0x100
    andi a1, s0, 31
    li   a7, 1
    ecall
no_irq:
    # log dev_read(op count)
    li   a0, 0x104
    li   a7, 2
    ecall
    sw   a0, 0(s2)
    addi s2, s2, 4
    # log irq_pop (line or ~0)
    li   a7, 3
    ecall
    sw   a0, 0(s2)
    addi s2, s2, 4
    addi s0, s0, 1
    bne  s0, s1, loop
    li   a0, 0
    li   a7, 0          # exit
    ecall

log:
    .space 2048
)";

bool quick_profile() {
  const char* env = std::getenv("NISC_CRASH_QUICK");
  return env != nullptr && *env != '\0' && *env != '0';
}

SupervisorConfig base_config() {
  SupervisorConfig config;
  config.worker_path = NISC_WORKER_BIN;
  config.worker.guest_source = kGuestSource;
  config.worker.mem_size = 1 << 16;
  config.worker.ckpt_every = 64;
  config.hang_timeout_ms = 5000;
  // CI forensics: when NISC_POSTMORTEM_DIR is set (the crash-matrix job
  // exports it), every recovery leaves a flight-recorder bundle there, and
  // the job uploads the directory as an artifact on failure.
  if (const char* dir = std::getenv("NISC_POSTMORTEM_DIR"); dir != nullptr && *dir != '\0') {
    config.postmortem_dir = dir;
  }
  return config;
}

/// Live conformance monitors on both supervisor sockets (DESIGN.md §11):
/// the Worker model walks the data wire, the worker-wire DriverIrq model
/// the interrupt wire (flip_direction: the supervisor is the sender there).
/// Matrix cells assert zero NL4xx findings live — not just bit-identical
/// checkpoints after the fact.
struct LiveMonitors {
  std::shared_ptr<analysis::LiveConformanceMonitor> data;
  std::shared_ptr<analysis::LiveConformanceMonitor> irq;

  explicit LiveMonitors(const std::string& label) {
    analysis::ModelOptions data_options;
    data_options.sideband = false;  // no obs side-band in these cells
    data = std::make_shared<analysis::LiveConformanceMonitor>(
        analysis::make_model(analysis::ModelId::Worker, data_options), label + ".data");
    analysis::ModelOptions irq_options;
    irq_options.worker_wire = true;
    irq = std::make_shared<analysis::LiveConformanceMonitor>(
        analysis::make_model(analysis::ModelId::DriverIrq, irq_options), label + ".irq",
        /*flip_direction=*/true);
  }

  void attach(SupervisorConfig& config) const {
    config.data_observer = data;
    config.irq_observer = irq;
  }

  void expect_clean(const std::string& label) {
    data->finish();
    irq->finish();
    EXPECT_EQ(data->diags().errors(), 0u)
        << label << " data wire:\n" << analysis::render_text(data->diags());
    EXPECT_EQ(irq->diags().errors(), 0u)
        << label << " irq wire:\n" << analysis::render_text(irq->diags());
  }
};

void dump_artifact(const std::string& name, std::span<const std::uint8_t> bytes) {
  const std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  std::fprintf(stderr, "crash_matrix artifact: %s (%zu bytes)\n", path.c_str(), bytes.size());
}

/// Bit-identity assertion with forensic output: on mismatch both
/// checkpoints become artifacts and the decoded field diff is printed.
void expect_bit_identical(const SupervisorOutcome& control, const SupervisorOutcome& cell,
                          const std::string& label) {
  if (cell.final_checkpoint == control.final_checkpoint) return;
  dump_artifact(label + "-control.ckpt", control.final_checkpoint);
  dump_artifact(label + "-recovered.ckpt", cell.final_checkpoint);
  std::string rendered;
  for (const std::string& line :
       diff_checkpoints(decode_checkpoint(control.final_checkpoint),
                        decode_checkpoint(cell.final_checkpoint))) {
    rendered += "  " + line + "\n";
  }
  ADD_FAILURE() << label << ": recovered final checkpoint diverges from control\n" << rendered;
}

struct ControlRun {
  SupervisorOutcome outcome;
  std::uint64_t total_instret = 0;
};

/// One uninterrupted run, shared by every matrix cell.
const ControlRun& control_run() {
  static const ControlRun control = [] {
    Supervisor supervisor(base_config());
    ControlRun run;
    run.outcome = supervisor.run();
    const Checkpoint decoded = decode_checkpoint(run.outcome.final_checkpoint);
    EXPECT_TRUE(decoded.iss.has_value());
    if (decoded.iss) run.total_instret = decoded.iss->instret;
    return run;
  }();
  return control;
}

TEST(CrashMatrixTest, ControlRunCompletesWithoutRecovery) {
  const ControlRun& control = control_run();
  EXPECT_EQ(control.outcome.recoveries, 0);
  EXPECT_EQ(control.outcome.guest_halt, static_cast<std::uint8_t>(iss::Halt::Ecall));
  EXPECT_EQ(control.outcome.writes_applied, 40u + 10u);  // data writes + irq triggers
  EXPECT_EQ(control.outcome.reads_served, 40u);
  EXPECT_EQ(control.outcome.irqs_sent, 10u);
  // Long enough that the randomized kill points spread across several
  // checkpoint intervals (ckpt_every = 64).
  EXPECT_GT(control.total_instret, 512u);

  // Determinism baseline: a second uninterrupted run is bit-identical.
  Supervisor again(base_config());
  const SupervisorOutcome repeat = again.run();
  expect_bit_identical(control.outcome, repeat, "control-repeat");
}

TEST(CrashMatrixTest, KilledWorkerRecoversBitIdenticallyAtRandomizedPoints) {
  const ControlRun& control = control_run();
  ASSERT_GT(control.total_instret, 2u);

  const std::vector<std::uint64_t> seeds =
      quick_profile() ? std::vector<std::uint64_t>{1} : std::vector<std::uint64_t>{1, 7, 1234};
  const std::size_t points_per_seed = quick_profile() ? 3 : 8;

  for (const std::uint64_t seed : seeds) {
    util::Rng rng(seed);
    std::set<std::uint64_t> points;
    while (points.size() < points_per_seed) {
      points.insert(rng.between(1, control.total_instret - 1));
    }
    for (const std::uint64_t at : points) {
      const std::string label =
          "kill-s" + std::to_string(seed) + "-i" + std::to_string(at);
      SupervisorConfig config = base_config();
      config.fault_plan = {{FaultKind::CrashAt, at}};
      LiveMonitors monitors(label);
      monitors.attach(config);
      Supervisor supervisor(std::move(config));
      const SupervisorOutcome outcome = supervisor.run();
      EXPECT_EQ(outcome.recoveries, 1) << label;
      EXPECT_EQ(outcome.guest_halt, static_cast<std::uint8_t>(iss::Halt::Ecall)) << label;
      expect_bit_identical(control.outcome, outcome, label);
      monitors.expect_clean(label);
    }
  }
}

TEST(CrashMatrixTest, HungWorkerIsDetectedAndRecovered) {
  const ControlRun& control = control_run();
  SupervisorConfig config = base_config();
  config.hang_timeout_ms = 500;  // the worker stops; only the deadline saves us
  config.fault_plan = {{FaultKind::HangAt, control.total_instret / 2}};
  Supervisor supervisor(std::move(config));
  const SupervisorOutcome outcome = supervisor.run();
  EXPECT_GE(outcome.recoveries, 1);
  expect_bit_identical(control.outcome, outcome, "hang");
}

TEST(CrashMatrixTest, GarbageOnTheWireIsAProtocolErrorAndRecovered) {
  const ControlRun& control = control_run();
  SupervisorConfig config = base_config();
  config.fault_plan = {{FaultKind::GarbageAt, control.total_instret / 3}};
  LiveMonitors monitors("garbage");
  monitors.attach(config);
  Supervisor supervisor(std::move(config));
  const SupervisorOutcome outcome = supervisor.run();
  EXPECT_GE(outcome.recoveries, 1);
  expect_bit_identical(control.outcome, outcome, "garbage");
  // The live data monitor must flag the corruption (NL402: the decoder
  // wedges on an implausible frame) and recover across the respawn reset —
  // the epochs after the reset replay cleanly, so NL402 is the only rule.
  monitors.data->finish();
  EXPECT_TRUE(monitors.data->diags().has_rule("NL402"))
      << analysis::render_text(monitors.data->diags());
}

TEST(CrashMatrixTest, ChaosNoDedupDuplicatesEffectsLikeNL413Predicts) {
  // The model checker's NL413 negative control, run against the real
  // supervisor: disable seq dedup, kill the worker once past the first
  // checkpoint, and the recovery replay re-applies device effects — the
  // run diverges from control exactly as the counterexample predicts.
  const ControlRun& control = control_run();
  SupervisorConfig config = base_config();
  config.chaos_no_dedup = true;
  config.fault_plan = {{FaultKind::CrashAt, control.total_instret / 2}};
  Supervisor supervisor(std::move(config));
  const SupervisorOutcome outcome = supervisor.run();
  EXPECT_GE(outcome.recoveries, 1);
  EXPECT_GT(outcome.writes_applied, control.outcome.writes_applied);
  EXPECT_NE(outcome.final_checkpoint, control.outcome.final_checkpoint);
}

TEST(CrashMatrixTest, RepeatedCrashesStillConverge) {
  const ControlRun& control = control_run();
  SupervisorConfig config = base_config();
  config.fault_plan = {{FaultKind::CrashAt, control.total_instret / 4},
                       {FaultKind::CrashAt, control.total_instret / 2},
                       {FaultKind::CrashAt, (3 * control.total_instret) / 4}};
  LiveMonitors monitors("multi-crash");
  monitors.attach(config);
  Supervisor supervisor(std::move(config));
  const SupervisorOutcome outcome = supervisor.run();
  EXPECT_EQ(outcome.recoveries, 3);
  expect_bit_identical(control.outcome, outcome, "multi-crash");
  monitors.expect_clean("multi-crash");
}

TEST(CrashMatrixTest, RecoveryBudgetIsEnforced) {
  SupervisorConfig config = base_config();
  config.max_recoveries = 2;
  // More planned crashes than the budget allows: the supervisor must give
  // up with an error instead of thrashing forever.
  config.fault_plan = {{FaultKind::CrashAt, 10},
                       {FaultKind::CrashAt, 20},
                       {FaultKind::CrashAt, 30},
                       {FaultKind::CrashAt, 40}};
  Supervisor supervisor(std::move(config));
  EXPECT_THROW(supervisor.run(), std::exception);
}

TEST(CrashMatrixTest, CheckpointFileArtifactIsWrittenAndLoadable) {
  const std::string path = ::testing::TempDir() + "crash-matrix-latest.ckpt";
  SupervisorConfig config = base_config();
  config.checkpoint_path = path;
  Supervisor supervisor(std::move(config));
  const SupervisorOutcome outcome = supervisor.run();

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << path;
  const std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                        std::istreambuf_iterator<char>());
  EXPECT_EQ(bytes, outcome.final_checkpoint);
  const Checkpoint decoded = decode_checkpoint(bytes);
  EXPECT_TRUE(decoded.iss.has_value());
  EXPECT_TRUE(decoded.kernel.has_value());
  EXPECT_TRUE(decoded.worker.has_value());
  EXPECT_FALSE(decoded.channels.empty());
}

}  // namespace
}  // namespace nisc::cosim
