// Tests for the eCos-like RTOS model: scheduling, syscalls, device drivers,
// interrupts, and the OS cycle-overhead accounting.
#include <gtest/gtest.h>

#include <deque>

#include "iss/assembler.hpp"
#include "iss/cpu.hpp"
#include "rtos/rtos.hpp"

namespace nisc::rtos {
namespace {

/// In-memory loopback driver for tests: read() serves a host-fed queue,
/// write() records everything.
class TestDriver : public Driver {
 public:
  std::string_view name() const noexcept override { return "testdev"; }

  std::size_t write(std::span<const std::uint8_t> data) override {
    written.insert(written.end(), data.begin(), data.end());
    return data.size();
  }

  std::size_t read(std::span<std::uint8_t> out) override {
    std::size_t n = 0;
    while (n < out.size() && !rx.empty()) {
      out[n++] = rx.front();
      rx.pop_front();
    }
    return n;
  }

  void feed(std::initializer_list<std::uint8_t> bytes) {
    rx.insert(rx.end(), bytes.begin(), bytes.end());
  }

  std::deque<std::uint8_t> rx;
  std::vector<std::uint8_t> written;
};

struct RtosFixture : ::testing::Test {
  void boot(const std::string& body, RtosConfig config = {}) {
    cpu = std::make_unique<iss::Cpu>(1 << 16);
    kernel = std::make_unique<Kernel>(*cpu, config);
    program = iss::assemble(guest_abi_prelude() + body);
    kernel->load(program);
    auto drv = std::make_unique<TestDriver>();
    driver = drv.get();
    ASSERT_EQ(kernel->register_driver(std::move(drv)), 0);
  }

  std::unique_ptr<iss::Cpu> cpu;
  std::unique_ptr<Kernel> kernel;
  iss::Program program;
  TestDriver* driver = nullptr;
};

TEST_F(RtosFixture, SingleThreadRunsAndExits) {
  boot(R"(
  _start:
      li a7, SYS_PUTC
      li a0, 72        # 'H'
      ecall
      li a0, 105       # 'i'
      ecall
      li a7, SYS_EXIT
      ecall
  )");
  EXPECT_EQ(kernel->run(100000), RunStatus::AllDone);
  EXPECT_EQ(kernel->console(), "Hi");
  EXPECT_EQ(kernel->live_threads(), 0);
}

TEST_F(RtosFixture, EbreakTerminatesThread) {
  boot("_start:\n  ebreak\n");
  EXPECT_EQ(kernel->run(1000), RunStatus::AllDone);
}

TEST_F(RtosFixture, BudgetExhaustionReturnsBudget) {
  boot("_start:\nspin:\n  j spin\n");
  EXPECT_EQ(kernel->run(5000), RunStatus::Budget);
  EXPECT_GE(cpu->instret(), 5000u);
}

TEST_F(RtosFixture, GuestFaultSurfaces) {
  boot("_start:\n  .word 0xffffffff\n");
  EXPECT_EQ(kernel->run(1000), RunStatus::Fault);
  EXPECT_EQ(kernel->last_fault(), iss::Halt::IllegalInstruction);
}

TEST_F(RtosFixture, GetTidReturnsZeroForMain) {
  boot(R"(
  _start:
      li a7, SYS_GETTID
      ecall
      addi a0, a0, 48   # '0' + tid
      li a7, SYS_PUTC
      ecall
      li a7, SYS_EXIT
      ecall
  )");
  EXPECT_EQ(kernel->run(100000), RunStatus::AllDone);
  EXPECT_EQ(kernel->console(), "0");
}

TEST_F(RtosFixture, TwoThreadsInterleaveOnYield) {
  boot(R"(
  _start:
      la a0, worker
      li a1, 0
      li a7, SYS_THREAD_CREATE
      ecall
      li t0, 3
  main_loop:
      li a7, SYS_PUTC
      li a0, 65        # 'A'
      ecall
      li a7, SYS_YIELD
      ecall
      addi t0, t0, -1
      bnez t0, main_loop
      li a7, SYS_EXIT
      ecall
  worker:
      li t0, 3
  w_loop:
      li a7, SYS_PUTC
      li a0, 66        # 'B'
      ecall
      li a7, SYS_YIELD
      ecall
      addi t0, t0, -1
      bnez t0, w_loop
      li a7, SYS_EXIT
      ecall
  )");
  EXPECT_EQ(kernel->run(1000000), RunStatus::AllDone);
  EXPECT_EQ(kernel->console(), "ABABAB");
  EXPECT_EQ(kernel->thread_count(), 2);
}

TEST_F(RtosFixture, ThreadFunctionReturnIsExit) {
  boot(R"(
  _start:
      la a0, worker
      li a1, 0
      li a7, SYS_THREAD_CREATE
      ecall
      li a7, SYS_YIELD
      ecall
      li a7, SYS_EXIT
      ecall
  worker:
      li a7, SYS_PUTC
      li a0, 87        # 'W'
      ecall
      ret              # returns into the kernel's exit stub
  )");
  EXPECT_EQ(kernel->run(1000000), RunStatus::AllDone);
  EXPECT_EQ(kernel->console(), "W");
}

TEST_F(RtosFixture, ThreadCreateFailsPastLimit) {
  RtosConfig config;
  config.max_threads = 2;
  boot(R"(
  _start:
      la a0, noop
      li a1, 0
      li a7, SYS_THREAD_CREATE
      ecall              # tid 1: ok
      la a0, noop
      li a7, SYS_THREAD_CREATE
      ecall              # fails: limit reached
      bltz a0, good
      li a7, SYS_EXIT
      ecall
  good:
      li a7, SYS_PUTC
      li a0, 71          # 'G'
      ecall
      li a7, SYS_EXIT
      ecall
  noop:
      ret
  )", config);
  EXPECT_EQ(kernel->run(1000000), RunStatus::AllDone);
  EXPECT_EQ(kernel->console(), "G");
}

TEST_F(RtosFixture, SleepAdvancesCyclesWhenIdle) {
  boot(R"(
  _start:
      li a0, 50000
      li a7, SYS_SLEEP
      ecall
      li a7, SYS_PUTC
      li a0, 90        # 'Z'
      ecall
      li a7, SYS_EXIT
      ecall
  )");
  EXPECT_EQ(kernel->run(100000), RunStatus::AllDone);
  EXPECT_EQ(kernel->console(), "Z");
  EXPECT_GE(cpu->cycles(), 50000u);
  EXPECT_GT(kernel->stats().idle_wakeups, 0u);
}

TEST_F(RtosFixture, DevWriteReachesDriver) {
  boot(R"(
  _start:
      li a0, 0         # dev 0
      la a1, msg
      li a2, 3
      li a7, SYS_DEV_WRITE
      ecall
      li a7, SYS_EXIT
      ecall
  msg: .byte 1, 2, 3
  )");
  EXPECT_EQ(kernel->run(100000), RunStatus::AllDone);
  EXPECT_EQ(driver->written, (std::vector<std::uint8_t>{1, 2, 3}));
}

TEST_F(RtosFixture, DevWriteBadDeviceReturnsError) {
  boot(R"(
  _start:
      li a0, 9         # no such device
      la a1, msg
      li a2, 1
      li a7, SYS_DEV_WRITE
      ecall
      bltz a0, good
      li a7, SYS_EXIT
      ecall
  good:
      li a7, SYS_PUTC
      li a0, 69        # 'E'
      ecall
      li a7, SYS_EXIT
      ecall
  msg: .byte 5
  )");
  EXPECT_EQ(kernel->run(100000), RunStatus::AllDone);
  EXPECT_EQ(kernel->console(), "E");
}

TEST_F(RtosFixture, DevReadBlocksUntilDataArrives) {
  boot(R"(
  _start:
      li a0, 0
      la a1, buf
      li a2, 4
      li a7, SYS_DEV_READ
      ecall
      la t0, buf
      lbu a0, 0(t0)
      li a7, SYS_PUTC
      ecall
      li a7, SYS_EXIT
      ecall
  buf: .space 4
  )");
  EXPECT_EQ(kernel->run(100000), RunStatus::Idle);  // blocked, nothing to read
  driver->feed({'X'});
  EXPECT_EQ(kernel->run(100000), RunStatus::AllDone);
  EXPECT_EQ(kernel->console(), "X");
}

TEST_F(RtosFixture, DevReadImmediateWhenDataPresent) {
  boot(R"(
  _start:
      li a0, 0
      la a1, buf
      li a2, 2
      li a7, SYS_DEV_READ
      ecall
      addi a0, a0, 48   # '0' + bytes read
      li a7, SYS_PUTC
      ecall
      li a7, SYS_EXIT
      ecall
  buf: .space 4
  )");
  driver->feed({0xAA, 0xBB});
  EXPECT_EQ(kernel->run(100000), RunStatus::AllDone);
  EXPECT_EQ(kernel->console(), "2");
}

TEST_F(RtosFixture, BlockedReaderDoesNotStarveOtherThreads) {
  boot(R"(
  _start:
      la a0, reader
      li a1, 0
      li a7, SYS_THREAD_CREATE
      ecall
      li a7, SYS_YIELD
      ecall               # give the reader a chance to block
      li a7, SYS_PUTC
      li a0, 77           # 'M': main still runs while reader blocks
      ecall
      li a7, SYS_EXIT
      ecall
  reader:
      li a0, 0
      la a1, buf
      li a2, 1
      li a7, SYS_DEV_READ
      ecall
      li a7, SYS_PUTC
      li a0, 82           # 'R'
      ecall
      li a7, SYS_EXIT
      ecall
  buf: .space 4
  )");
  EXPECT_EQ(kernel->run(100000), RunStatus::Idle);
  EXPECT_EQ(kernel->console(), "M");
  driver->feed({1});
  EXPECT_EQ(kernel->run(100000), RunStatus::AllDone);
  EXPECT_EQ(kernel->console(), "MR");
}

TEST_F(RtosFixture, IrqDispatchesAttachedHandler) {
  boot(R"(
  _start:
      la a1, isr
      li a0, 7
      li a7, SYS_IRQ_ATTACH
      ecall
  wait_loop:
      la t0, flag
      lw t1, 0(t0)
      bnez t1, done
      li a7, SYS_YIELD
      ecall
      j wait_loop
  done:
      li a7, SYS_PUTC
      li a0, 68        # 'D'
      ecall
      li a7, SYS_EXIT
      ecall
  isr:
      li a7, SYS_PUTC
      li a0, 73        # 'I'
      ecall
      la t0, flag
      li t1, 1
      sw t1, 0(t0)
      ret              # returns into the kernel's iret stub
  flag: .word 0
  )");
  EXPECT_EQ(kernel->run(5000), RunStatus::Budget);  // spinning on the flag
  EXPECT_EQ(kernel->console(), "");
  kernel->raise_irq(7);
  EXPECT_EQ(kernel->run(100000), RunStatus::AllDone);
  EXPECT_EQ(kernel->console(), "ID");
  EXPECT_EQ(kernel->stats().isr_dispatches, 1u);
}

TEST_F(RtosFixture, IsrReceivesIrqNumberInA0) {
  boot(R"(
  _start:
      la a1, isr
      li a0, 3
      li a7, SYS_IRQ_ATTACH
      ecall
  spin:
      la t0, flag
      lw t1, 0(t0)
      beqz t1, spin
      li a7, SYS_EXIT
      ecall
  isr:
      addi a0, a0, 48   # '0' + irq
      li a7, SYS_PUTC
      ecall
      la t0, flag
      li t1, 1
      sw t1, 0(t0)
      ret
  flag: .word 0
  )");
  EXPECT_EQ(kernel->run(2000), RunStatus::Budget);  // handler now attached
  kernel->raise_irq(3);
  EXPECT_EQ(kernel->run(1000000), RunStatus::AllDone);
  EXPECT_EQ(kernel->console(), "3");
}

TEST_F(RtosFixture, UnattachedIrqIsDropped) {
  boot("_start:\n  li a7, SYS_EXIT\n  ecall\n");
  kernel->raise_irq(42);
  EXPECT_EQ(kernel->run(100000), RunStatus::AllDone);
  EXPECT_EQ(kernel->stats().isr_dispatches, 0u);
}

TEST_F(RtosFixture, IrqInterruptsRunningThreadAndResumesIt) {
  boot(R"(
  _start:
      la a1, isr
      li a0, 1
      li a7, SYS_IRQ_ATTACH
      ecall
      li t0, 0
      li t1, 300000
  spin:
      addi t0, t0, 1
      blt t0, t1, spin
      li a7, SYS_EXIT
      ecall
  isr:
      la t2, hits        # t2 is caller-saved; ISR runs on its own context
      lw t3, 0(t2)
      addi t3, t3, 1
      sw t3, 0(t2)
      ret
  hits: .word 0
  )");
  EXPECT_EQ(kernel->run(1000), RunStatus::Budget);
  kernel->raise_irq(1);
  EXPECT_EQ(kernel->run(2000), RunStatus::Budget);
  EXPECT_EQ(cpu->mem().read32(program.symbol("hits")), 1u);
  // The interrupted spin loop keeps its registers (t0 advanced, not reset).
  EXPECT_EQ(kernel->run(2000000), RunStatus::AllDone);
}

TEST_F(RtosFixture, PreemptionSharesCpuBetweenSpinners) {
  boot(R"(
  _start:
      la a0, spinner2
      li a1, 0
      li a7, SYS_THREAD_CREATE
      ecall
      la t0, c1
  spin1:
      lw t1, 0(t0)
      addi t1, t1, 1
      sw t1, 0(t0)
      j spin1
  spinner2:
      la t0, c2
  spin2:
      lw t1, 0(t0)
      addi t1, t1, 1
      sw t1, 0(t0)
      j spin2
  c1: .word 0
  c2: .word 0
  )");
  EXPECT_EQ(kernel->run(200000), RunStatus::Budget);
  EXPECT_GT(cpu->mem().read32(program.symbol("c1")), 1000u);
  EXPECT_GT(cpu->mem().read32(program.symbol("c2")), 1000u);
  EXPECT_GT(kernel->stats().context_switches, 10u);
}

TEST_F(RtosFixture, SyscallsChargeOverheadCycles) {
  RtosConfig config;
  config.syscall_overhead_cycles = 1000;
  boot(R"(
  _start:
      li a7, SYS_PUTC
      li a0, 46        # '.'
      ecall
      li a7, SYS_EXIT
      ecall
  )", config);
  EXPECT_EQ(kernel->run(100000), RunStatus::AllDone);
  // Two syscalls at 1000 cycles each dominate the handful of instructions.
  EXPECT_GE(cpu->cycles(), 2000u);
  EXPECT_LT(cpu->instret(), 20u);
  EXPECT_EQ(kernel->stats().syscalls, 2u);
}

TEST_F(RtosFixture, ContextSwitchChargesCycles) {
  RtosConfig fat;
  fat.context_switch_cycles = 5000;
  boot("_start:\n  li a7, SYS_EXIT\n  ecall\n", fat);
  EXPECT_EQ(kernel->run(100000), RunStatus::AllDone);
  EXPECT_GE(cpu->cycles(), 5000u);  // at least the initial dispatch
}

TEST_F(RtosFixture, GuestAbiPreludeDefinesAllSyscalls) {
  // The prelude must assemble standalone and define every SYS_ constant.
  iss::Program prog = iss::assemble(guest_abi_prelude() +
                                    "li a0, SYS_IRET\nli a1, SYS_EXIT\nebreak\n");
  EXPECT_EQ(prog.symbols.count("SYS_DEV_READ"), 1u);
  EXPECT_EQ(prog.symbols.at("SYS_IRET"), 9u);
}

}  // namespace
}  // namespace nisc::rtos
