// Tests for the router case study: packet/checksum, routing table, the
// router module in isolation, and end-to-end runs under all three
// co-simulation schemes.
#include <gtest/gtest.h>

#include "iss/assembler.hpp"
#include "iss/cpu.hpp"
#include "router/guest_programs.hpp"
#include "router/testbench.hpp"
#include "rtos/rtos.hpp"
#include "util/checksum.hpp"

namespace nisc::router {
namespace {

using namespace nisc::sysc::time_literals;

// ---------------------------------------------------------------- packet

TEST(PacketTest, WireWordsLayout) {
  Packet p;
  p.src = 2;
  p.dst = 3;
  p.id = 77;
  p.payload = {10, 20, 30, 40};
  auto words = p.wire_words();
  EXPECT_EQ(words[0], 2u | (3u << 8));
  EXPECT_EQ(words[1], 77u);
  EXPECT_EQ(words[2], 10u);
  EXPECT_EQ(words[5], 40u);
}

TEST(PacketTest, GoldenChecksumMatchesWordSum) {
  Packet p;
  p.src = 1;
  p.dst = 2;
  p.id = 3;
  p.payload = {0xDEADBEEF, 0x12345678, 0, 0xFFFFFFFF};
  std::uint32_t expected = 0;
  for (std::uint32_t w : p.wire_words()) expected += w;
  EXPECT_EQ(p.golden_checksum(), expected);
  EXPECT_EQ(p.golden_checksum(), util::word_sum32(p.checksum_bytes()));
}

TEST(PacketTest, ChecksumBytesAreLittleEndian) {
  Packet p;
  p.src = 0xAB;
  auto bytes = p.checksum_bytes();
  ASSERT_EQ(bytes.size(), static_cast<std::size_t>(kWireWords) * 4);
  EXPECT_EQ(bytes[0], 0xAB);
  EXPECT_EQ(bytes[1], 0x00);
}

TEST(PacketTest, ToWireRoundTrip) {
  Packet p;
  p.src = 9;
  p.dst = 1;
  p.id = 42;
  p.payload = {1, 2, 3, 4};
  PacketWire wire = to_wire(p);
  auto words = p.wire_words();
  for (int i = 0; i < kWireWords; ++i) EXPECT_EQ(wire.words[i], words[static_cast<std::size_t>(i)]);
}

// ---------------------------------------------------------------- routing table

TEST(RoutingTableTest, LookupAndMiss) {
  RoutingTable table;
  table.add_route(5, 2);
  EXPECT_EQ(table.lookup(5), 2);
  EXPECT_FALSE(table.lookup(6).has_value());
  EXPECT_EQ(table.size(), 1u);
}

TEST(RoutingTableTest, UniformModRouting) {
  RoutingTable table = RoutingTable::uniform(4, 16);
  EXPECT_EQ(table.size(), 16u);
  EXPECT_EQ(table.lookup(0), 0);
  EXPECT_EQ(table.lookup(5), 1);
  EXPECT_EQ(table.lookup(15), 3);
  EXPECT_FALSE(table.lookup(16).has_value());
}

TEST(RoutingTableTest, OverwriteRoute) {
  RoutingTable table;
  table.add_route(1, 0);
  table.add_route(1, 3);
  EXPECT_EQ(table.lookup(1), 3);
}

// ---------------------------------------------------------------- guest programs

TEST(GuestProgramTest, WordStreamSourceAssembles) {
  auto filtered = cosim::filter_pragmas(word_stream_checksum_source("r.to_cpu", "r.from_cpu"));
  iss::Program prog = iss::assemble(filtered.source);
  EXPECT_EQ(filtered.bindings.size(), 2u);
  EXPECT_TRUE(prog.has_symbol("word_in"));
  EXPECT_TRUE(prog.has_symbol("csum_out"));
}

TEST(GuestProgramTest, BulkSourceAssembles) {
  iss::Program prog = iss::assemble(rtos::guest_abi_prelude() + bulk_checksum_source());
  EXPECT_TRUE(prog.has_symbol("buf"));
  EXPECT_TRUE(prog.has_symbol("out"));
}

TEST(GuestProgramTest, BulkChecksumSemanticsMatchGolden) {
  // Execute just the summation kernel of the bulk guest against a packet
  // image and compare with the host reference.
  Packet p;
  p.src = 3;
  p.dst = 1;
  p.id = 9;
  p.payload = {0x01020304, 0xA0B0C0D0, 7, 0x80000001};
  iss::Cpu cpu(1 << 16);
  iss::Program prog = iss::assemble(R"(
  _start:
      la t1, buf
      li s1, 6
      li s2, 0
  sum_loop:
      lw t0, 0(t1)
      add s2, s2, t0
      addi t1, t1, 4
      addi s1, s1, -1
      bnez s1, sum_loop
      mv a0, s2
      ebreak
  buf: .space 24
  )");
  prog.load_into(cpu.mem());
  auto bytes = p.checksum_bytes();
  cpu.mem().write_block(prog.symbol("buf"), bytes);
  cpu.run(10000);
  EXPECT_EQ(cpu.reg(10), p.golden_checksum());
}

// ---------------------------------------------------------------- router module (no cosim)

/// A host-side "CPU" standing in for the ISS: consumes words from the
/// to_cpu port and delivers the word-sum to from_cpu, via the same port API
/// the kernel extensions use.
struct FakeCpu {
  explicit FakeCpu(sysc::sc_simcontext& ctx, Router& router) {
    to_cpu = dynamic_cast<sysc::iss_out<std::uint32_t>*>(
        ctx.find_iss_port(router.to_cpu_port_name()));
    from_cpu = dynamic_cast<sysc::iss_in<std::uint32_t>*>(
        ctx.find_iss_port(router.from_cpu_port_name()));
    auto& p = ctx.create_method("fake_cpu", [this] { step(); }, sysc::process_kind::IssMethod);
    p.make_sensitive(to_cpu->written_event());
    p.dont_initialize();
  }
  void step() {
    sum += to_cpu->read();
    to_cpu->consume_fresh();
    if (++words == kWireWords) {
      from_cpu->deliver(sum);
      sum = 0;
      words = 0;
      ++packets;
    }
  }
  sysc::iss_out<std::uint32_t>* to_cpu = nullptr;
  sysc::iss_in<std::uint32_t>* from_cpu = nullptr;
  std::uint32_t sum = 0;
  int words = 0;
  int packets = 0;
};

TEST(RouterModuleTest, ForwardsWithFakeCpu) {
  sysc::sc_simcontext ctx;
  auto& router = ctx.create<Router>("router", RoutingTable::uniform(kNumPorts, 16),
                                    OffloadMode::WordStream);
  FakeCpu cpu(ctx, router);
  ASSERT_NE(cpu.to_cpu, nullptr);
  ASSERT_NE(cpu.from_cpu, nullptr);

  Packet p;
  p.src = 0;
  p.dst = 6;  // -> output port 2
  p.id = 1;
  p.payload = {11, 22, 33, 44};
  ASSERT_TRUE(router.input(0).nb_write(p));
  router.enqueue_event().notify_delta();

  ctx.run(1_us);
  EXPECT_EQ(router.stats().accepted, 1u);
  EXPECT_EQ(router.stats().forwarded, 1u);
  EXPECT_EQ(cpu.packets, 1);
  Packet out;
  ASSERT_TRUE(router.output(2).nb_read(out));
  EXPECT_EQ(out.checksum, p.golden_checksum());
  EXPECT_EQ(out.id, 1u);
}

TEST(RouterModuleTest, DropsUnroutedDestinations) {
  sysc::sc_simcontext ctx;
  RoutingTable table;  // empty: nothing routed
  auto& router = ctx.create<Router>("router", table, OffloadMode::WordStream);
  FakeCpu cpu(ctx, router);

  Packet p;
  p.dst = 9;
  ASSERT_TRUE(router.input(1).nb_write(p));
  router.enqueue_event().notify_delta();
  ctx.run(1_us);
  EXPECT_EQ(router.stats().dropped_no_route, 1u);
  EXPECT_EQ(router.stats().forwarded, 0u);
}

TEST(RouterModuleTest, RoundRobinAcrossInputs) {
  sysc::sc_simcontext ctx;
  auto& router = ctx.create<Router>("router", RoutingTable::uniform(kNumPorts, 4),
                                    OffloadMode::WordStream);
  FakeCpu cpu(ctx, router);
  for (int port = 0; port < kNumPorts; ++port) {
    Packet p;
    p.src = static_cast<std::uint8_t>(port);
    p.dst = 0;
    p.id = static_cast<std::uint32_t>(port);
    ASSERT_TRUE(router.input(port).nb_write(p));
  }
  router.enqueue_event().notify_delta();
  ctx.run(10_us);
  EXPECT_EQ(router.stats().accepted, 4u);
  EXPECT_EQ(router.stats().forwarded, 4u);
  // All went to output 0; ids must appear in round-robin order 0,1,2,3.
  for (std::uint32_t expected = 0; expected < 4; ++expected) {
    Packet out;
    ASSERT_TRUE(router.output(0).nb_read(out));
    EXPECT_EQ(out.id, expected);
  }
}

TEST(RouterModuleTest, BulkModeUsesPacketWirePort) {
  sysc::sc_simcontext ctx;
  auto& router = ctx.create<Router>("router", RoutingTable::uniform(kNumPorts, 4),
                                    OffloadMode::BulkPacket);
  auto* bulk = dynamic_cast<sysc::iss_out<PacketWire>*>(
      ctx.find_iss_port(router.to_cpu_port_name()));
  ASSERT_NE(bulk, nullptr);
  EXPECT_EQ(bulk->width_bytes(), static_cast<std::size_t>(kWireWords) * 4);
}

// ---------------------------------------------------------------- end-to-end schemes

class SchemeEndToEnd : public ::testing::TestWithParam<Scheme> {};

TEST_P(SchemeEndToEnd, AllPacketsForwardedAtLowRate) {
  TestbenchConfig config;
  config.scheme = GetParam();
  config.packets_per_producer = 3;
  config.num_producers = 4;
  config.inter_packet_delay = 5_us;
  config.instructions_per_us = 400000;
  Testbench bench(config);
  bench.run_until_drained(sysc::sc_time(50, sysc::SC_MS));
  TestbenchReport r = bench.report();

  EXPECT_EQ(r.produced, 12u);
  EXPECT_EQ(r.received, 12u) << "scheme " << scheme_name(GetParam());
  EXPECT_EQ(r.checksum_ok, 12u);
  EXPECT_EQ(r.checksum_bad, 0u);
  EXPECT_EQ(r.dropped_input, 0u);
  EXPECT_DOUBLE_EQ(r.forwarded_pct, 100.0);
}

TEST_P(SchemeEndToEnd, OverloadDropsPackets) {
  TestbenchConfig config;
  config.scheme = GetParam();
  config.packets_per_producer = 40;
  config.num_producers = 4;
  config.fifo_capacity = 2;
  config.inter_packet_delay = 10_ns;       // flood
  config.instructions_per_us = 50000;      // slow CPU
  Testbench bench(config);
  bench.run_until_drained(sysc::sc_time(50, sysc::SC_MS));
  TestbenchReport r = bench.report();

  EXPECT_EQ(r.produced, 160u);
  EXPECT_GT(r.dropped_input, 0u) << "scheme " << scheme_name(GetParam());
  EXPECT_LT(r.forwarded_pct, 100.0);
  EXPECT_EQ(r.checksum_bad, 0u);  // whatever arrives is intact
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, SchemeEndToEnd,
                         ::testing::Values(Scheme::GdbWrapper, Scheme::GdbKernel,
                                           Scheme::DriverKernel),
                         [](const auto& info) {
                           switch (info.param) {
                             case Scheme::GdbWrapper: return "GdbWrapper";
                             case Scheme::GdbKernel: return "GdbKernel";
                             case Scheme::DriverKernel: return "DriverKernel";
                           }
                           return "unknown";
                         });

TEST(TestbenchTest, ReportAccountsForEveryPacket) {
  TestbenchConfig config;
  config.scheme = Scheme::GdbKernel;
  config.packets_per_producer = 5;
  config.inter_packet_delay = 2_us;
  Testbench bench(config);
  bench.run_until_drained(sysc::sc_time(50, sysc::SC_MS));
  TestbenchReport r = bench.report();
  EXPECT_EQ(r.produced,
            r.received + r.dropped_input + r.dropped_no_route + r.dropped_output);
  EXPECT_GT(r.kernel_delta_cycles, 0u);
}

TEST(TestbenchTest, DriverSchemeUsesMessages) {
  TestbenchConfig config;
  config.scheme = Scheme::DriverKernel;
  config.packets_per_producer = 2;
  config.num_producers = 1;
  config.inter_packet_delay = 2_us;
  Testbench bench(config);
  bench.run_until_drained(sysc::sc_time(50, sysc::SC_MS));
  TestbenchReport r = bench.report();
  EXPECT_GE(r.driver_messages, 4u);  // >= one push + one write per packet
  EXPECT_EQ(r.lockstep_steps, 0u);
  EXPECT_EQ(r.received, 2u);
}

// The paper's Figure 7 claim at test scale: at the same inter-packet delay
// the Driver-Kernel scheme forwards fewer packets, because the RTOS charges
// guest cycles for syscalls/context switches and the cycle-metered time
// budget turns that into real simulated slowdown.
TEST(Figure7Shape, OsOverheadLowersForwardingRate) {
  auto forwarded = [](Scheme scheme) {
    TestbenchConfig config;
    config.scheme = scheme;
    config.packets_per_producer = 15;
    config.num_producers = 4;
    config.fifo_capacity = 4;
    config.inter_packet_delay = 10_us;
    config.instructions_per_us = 30;  // slow CPU: checksum-bound
    config.rtos.syscall_overhead_cycles = 100;
    config.rtos.context_switch_cycles = 120;
    Testbench bench(config);
    bench.run_until_drained(sysc::sc_time(100, sysc::SC_MS));
    return bench.report().forwarded_pct;
  };
  double gdb = forwarded(Scheme::GdbKernel);
  double drv = forwarded(Scheme::DriverKernel);
  EXPECT_GT(gdb, 90.0);
  EXPECT_LT(drv, gdb - 10.0);  // the OS overhead is visible
}

// ---------------------------------------------------------------- MPSoC

TEST(MultiCpuTest, RouterNamesPortsPerEngine) {
  sysc::sc_simcontext ctx;
  auto& router = ctx.create<Router>("router", RoutingTable::uniform(kNumPorts, 4),
                                    OffloadMode::WordStream, 8, /*engines=*/2);
  EXPECT_EQ(router.to_cpu_port_name(0), "router.to_cpu0");
  EXPECT_EQ(router.from_cpu_port_name(1), "router.from_cpu1");
  EXPECT_NE(ctx.find_iss_port("router.to_cpu0"), nullptr);
  EXPECT_NE(ctx.find_iss_port("router.from_cpu1"), nullptr);
  EXPECT_THROW(router.to_cpu_port_name(2), util::LogicError);
}

TEST(MultiCpuTest, SingleEngineKeepsLegacyNames) {
  sysc::sc_simcontext ctx;
  auto& router = ctx.create<Router>("router", RoutingTable::uniform(kNumPorts, 4),
                                    OffloadMode::WordStream, 8, 1);
  EXPECT_EQ(router.to_cpu_port_name(), "router.to_cpu");
}

TEST(MultiCpuTest, TwoGdbCpusShareTheLoad) {
  TestbenchConfig config;
  config.scheme = Scheme::GdbKernel;
  config.num_cpus = 2;
  config.packets_per_producer = 8;
  config.num_producers = 4;
  config.inter_packet_delay = 1_us;
  config.instructions_per_us = 400000;
  Testbench bench(config);
  bench.run_until_drained(sysc::sc_time(100, sysc::SC_MS));
  TestbenchReport r = bench.report();
  EXPECT_EQ(r.received, 32u);
  EXPECT_EQ(r.checksum_ok, 32u);
  const RouterStats& rs = bench.router().stats();
  ASSERT_EQ(rs.per_engine.size(), 2u);
  EXPECT_GT(rs.per_engine[0], 0u);
  EXPECT_GT(rs.per_engine[1], 0u);
  EXPECT_EQ(rs.per_engine[0] + rs.per_engine[1], 32u);
}

TEST(MultiCpuTest, TwoDriverCpusShareTheLoad) {
  TestbenchConfig config;
  config.scheme = Scheme::DriverKernel;
  config.num_cpus = 2;
  config.packets_per_producer = 6;
  config.num_producers = 4;
  config.inter_packet_delay = 1_us;
  config.instructions_per_us = 400000;
  Testbench bench(config);
  bench.run_until_drained(sysc::sc_time(100, sysc::SC_MS));
  TestbenchReport r = bench.report();
  EXPECT_EQ(r.received, 24u);
  EXPECT_EQ(r.checksum_ok, 24u);
  const RouterStats& rs = bench.router().stats();
  EXPECT_GT(rs.per_engine[0], 0u);
  EXPECT_GT(rs.per_engine[1], 0u);
}

TEST(MultiCpuTest, SecondCpuRaisesSaturationThroughput) {
  auto forwarded_with_cpus = [](int cpus) {
    TestbenchConfig config;
    config.scheme = Scheme::GdbKernel;
    config.num_cpus = cpus;
    config.packets_per_producer = 25;
    config.num_producers = 4;
    config.fifo_capacity = 2;
    config.inter_packet_delay = 4_us;
    config.instructions_per_us = 15;  // slow CPUs: checksum is the bottleneck
    Testbench bench(config);
    bench.run_until_drained(sysc::sc_time(200, sysc::SC_MS));
    return bench.report().forwarded_pct;
  };
  double one = forwarded_with_cpus(1);
  double two = forwarded_with_cpus(2);
  EXPECT_LT(one, 99.0);       // single CPU saturates and drops packets
  EXPECT_GT(two, one + 5.0);  // a second CPU visibly raises throughput
}

TEST(TestbenchTest, WrapperSchemeCountsLockstepSteps) {
  TestbenchConfig config;
  config.scheme = Scheme::GdbWrapper;
  config.packets_per_producer = 1;
  config.num_producers = 1;
  config.inter_packet_delay = 2_us;
  Testbench bench(config);
  bench.run_until_drained(sysc::sc_time(50, sysc::SC_MS));
  TestbenchReport r = bench.report();
  // One quantum round trip per stop at least: 6 word injections + 1 result
  // delivery for the single packet.
  EXPECT_GE(r.lockstep_steps, 7u);
  EXPECT_EQ(r.breakpoint_events, 7u);
  EXPECT_EQ(r.received, 1u);
}

}  // namespace
}  // namespace nisc::router
