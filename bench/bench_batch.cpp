// Ablation A5: driver message batching — why Driver-Kernel wins ~3x.
//
// The Driver-Kernel scheme crosses the ISS<->SystemC boundary once per
// *packet* (one WRITE message with the whole payload), while the GDB
// schemes cross once per *word* (a breakpoint stop plus memory-read round
// trips). This bench isolates that effect: it pushes a fixed number of
// payload words through the driver-protocol channel with varying batch
// sizes and measures messages and words per second.
//
//   $ ./bench_batch
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include "bench_json.hpp"
#include "ipc/message.hpp"

using namespace nisc::ipc;

namespace {

struct Sample {
  double seconds;
  std::uint64_t messages;
};

/// Streams `total_words` 4-byte items in WRITE messages of `batch` items;
/// the peer acknowledges every message with an empty READ-REPLY (modeling
/// the per-message kernel handling).
Sample run_batch(std::size_t total_words, std::size_t batch, Transport transport) {
  ChannelPair pair = make_channel_pair(transport);
  std::thread kernel_side([&] {
    try {
      for (;;) {
        DriverMessage msg = recv_message(pair.b);
        DriverMessage ack;
        ack.type = MsgType::ReadReply;
        send_message(pair.b, ack);
        if (msg.items.empty()) break;
      }
    } catch (...) {
    }
  });

  DriverMessage msg;
  msg.type = MsgType::Write;
  for (std::size_t i = 0; i < batch; ++i) {
    msg.items.push_back({"router.to_cpu", {1, 2, 3, 4}});
  }

  auto start = std::chrono::steady_clock::now();
  std::uint64_t messages = 0;
  for (std::size_t sent = 0; sent < total_words; sent += batch) {
    send_message(pair.a, msg);
    DriverMessage ack = recv_message(pair.a);
    (void)ack;
    ++messages;
  }
  double seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  DriverMessage done;
  done.type = MsgType::Write;  // empty item list terminates the peer
  send_message(pair.a, done);
  recv_message(pair.a);
  kernel_side.join();
  return {seconds, messages};
}

}  // namespace

int main() {
  const std::size_t total_words = nisc::bench::quick_mode() ? 12000 : 60000;
  const int reps = nisc::bench::quick_mode() ? 1 : nisc::bench::repetitions();
  nisc::bench::Recorder recorder("batch");
  std::printf("A5 — words per message vs boundary-crossing cost (%zu words total)\n\n",
              total_words);
  std::printf("%8s %12s %14s %14s\n", "batch", "messages", "wall ms", "words/s");

  double word_at_1 = 0;
  double word_at_6 = 0;
  for (std::size_t batch : {1UL, 2UL, 6UL, 24UL, 96UL}) {
    Sample s{};
    for (int r = 0; r < reps; ++r) {
      s = run_batch(total_words, batch, Transport::SocketPair);
      recorder.record("batch_" + std::to_string(batch), s.seconds);
    }
    double words_per_s = total_words / s.seconds;
    if (batch == 1) word_at_1 = words_per_s;
    if (batch == 6) word_at_6 = words_per_s;
    std::printf("%8zu %12llu %14.1f %14.0f\n", batch,
                static_cast<unsigned long long>(s.messages), s.seconds * 1000.0, words_per_s);
  }
  std::printf("\npacket-sized batches (6 words) move data %.1fx faster than per-word\n",
              word_at_1 > 0 ? word_at_6 / word_at_1 : 0.0);
  recorder.write();
  return 0;
}
