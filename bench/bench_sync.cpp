// Ablation A4: synchronization granularity.
//
// Sweeps the GDB-Wrapper lock-step mode (per-cycle quantum vs
// per-instruction single-step) and the lock-step ratio, showing how the
// cost of wrapper-style co-simulation scales with synchronization
// frequency — the motivation for moving the wrapper into the kernel.
//
//   $ ./bench_sync
#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "cosim/gdb_wrapper.hpp"
#include "router/testbench.hpp"

using namespace nisc;
using namespace nisc::sysc::time_literals;

namespace {

struct Sample {
  double wall_ms;
  std::uint64_t round_trips;
  std::uint64_t received;
};

Sample run_wrapper(cosim::LockstepMode mode, sysc::sc_time clock_period) {
  // Fixed workload: 20 packets through the router.
  router::TestbenchConfig config;
  config.scheme = router::Scheme::GdbWrapper;
  config.packets_per_producer = 5;
  config.num_producers = 4;
  config.inter_packet_delay = 2_us;
  config.instructions_per_us = 400000;
  config.clock_period = clock_period;
  router::Testbench bench(config);

  // Swap the wrapper's lock-step mode by rebuilding is intrusive; instead we
  // emulate single-step frequency with a finer clock for the quantum mode
  // and expose the explicit mode through a dedicated micro-run below.
  (void)mode;
  bench.run_until_drained(sysc::sc_time(50, sysc::SC_MS));
  router::TestbenchReport r = bench.report();
  Sample s{r.wall_seconds * 1000.0, r.lockstep_steps, r.received};
  bench.shutdown();
  return s;
}

/// Direct micro-comparison of the two lock-step modes on a raw target.
Sample run_mode_micro(cosim::LockstepMode mode) {
  using namespace nisc::cosim;
  sysc::sc_simcontext ctx;
  sysc::sc_clock clk("clk", 10_ns);
  sysc::iss_out<std::uint32_t> to_cpu("hw.to_cpu");
  sysc::iss_in<std::uint32_t> from_cpu("hw.from_cpu");

  // Guest: 200 echo round trips.
  const std::string guest = R"(
_start:
    li s0, 200
    la t1, in_var
    la t2, out_var
loop:
    #pragma iss_out("hw.to_cpu", in_var)
    lw t0, 0(t1)
    addi t0, t0, 1
    #pragma iss_in("hw.from_cpu", out_var)
    sw t0, 0(t2)
    nop
    addi s0, s0, -1
    bnez s0, loop
    ebreak
in_var: .word 0
out_var: .word 0
)";
  std::uint64_t echoes = 0;
  auto& proc = ctx.create_method(
      "echo",
      [&] {
        ++echoes;
        to_cpu.write(static_cast<std::uint32_t>(echoes));
      },
      sysc::process_kind::IssMethod);
  proc.make_sensitive(from_cpu.written_event());
  proc.dont_initialize();
  to_cpu.write(0);

  GdbTargetConfig tc;
  tc.throttled = false;
  GdbTarget target(guest, tc);
  GdbWrapperOptions options;
  options.instructions_per_cycle = 8;
  options.mode = mode;
  auto& wrapper = ctx.create<GdbWrapperModule>("wrapper", target.client(), target.bindings(),
                                               options);
  wrapper.clk.bind(clk.signal());
  target.start();

  auto start = std::chrono::steady_clock::now();
  auto deadline = start + std::chrono::seconds(60);
  while (!wrapper.target_finished() && std::chrono::steady_clock::now() < deadline) {
    ctx.run(10_us);
  }
  double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - start).count();
  Sample s{wall_ms, wrapper.stats().steps, echoes};
  target.shutdown();
  return s;
}

}  // namespace

int main() {
  nisc::bench::Recorder recorder("sync");
  std::printf("A4 — synchronization granularity\n\n");

  std::printf("Lock-step mode micro-comparison (200 echo round trips):\n");
  Sample quantum = run_mode_micro(cosim::LockstepMode::Quantum);
  Sample single = run_mode_micro(cosim::LockstepMode::SingleStep);
  recorder.record("micro/quantum", quantum.wall_ms / 1000.0);
  recorder.record("micro/single_step", single.wall_ms / 1000.0);
  std::printf("  %-12s %10.1f ms  %8llu round trips\n", "quantum", quantum.wall_ms,
              static_cast<unsigned long long>(quantum.round_trips));
  std::printf("  %-12s %10.1f ms  %8llu round trips\n", "single-step", single.wall_ms,
              static_cast<unsigned long long>(single.round_trips));
  std::printf("  per-instruction sync costs %.1fx the round trips\n\n",
              quantum.round_trips > 0
                  ? static_cast<double>(single.round_trips) / quantum.round_trips
                  : 0.0);

  if (nisc::bench::quick_mode()) {
    std::printf("(quick mode: clock-period sweep skipped)\n");
    recorder.write();
    return 0;
  }
  std::printf("Clock period sweep (sync once per cycle; finer clock = more syncs):\n");
  for (std::uint64_t period_ns : {10ULL, 40ULL, 160ULL}) {
    Sample s = run_wrapper(cosim::LockstepMode::Quantum,
                           sysc::sc_time::from_ps(period_ns * 1000));
    recorder.record("sweep/clock_" + std::to_string(period_ns) + "ns", s.wall_ms / 1000.0);
    std::printf("  clock %4llu ns: %8.1f ms wall, %8llu round trips, %llu/20 packets\n",
                static_cast<unsigned long long>(period_ns), s.wall_ms,
                static_cast<unsigned long long>(s.round_trips),
                static_cast<unsigned long long>(s.received));
  }
  recorder.write();
  return 0;
}
