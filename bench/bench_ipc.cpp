// Ablation A1: IPC transport choice.
//
// The paper uses a pipe for GDB-Kernel and sockets (4444/4445) for
// Driver-Kernel. This benchmark measures raw round-trip latency and bulk
// throughput of the three transports so the scheme-level results can be
// normalized against transport cost.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <atomic>
#include <thread>

#include "ipc/channel.hpp"
#include "ipc/message.hpp"

namespace {

using namespace nisc::ipc;

Transport transport_of(int index) {
  switch (index) {
    case 0: return Transport::Pipe;
    case 1: return Transport::SocketPair;
    default: return Transport::Tcp;
  }
}

/// Echo peer: returns every byte it receives. Uses bounded polls so the
/// destructor can stop it without racing a blocked read.
class EchoPeer {
 public:
  explicit EchoPeer(Channel channel) : channel_(std::move(channel)) {
    thread_ = std::thread([this] { run(); });
  }
  ~EchoPeer() {
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
    channel_.close();
  }

 private:
  void run() {
    std::uint8_t buf[4096];
    try {
      while (!stop_.load()) {
        if (!channel_.readable(10)) continue;
        std::size_t got = channel_.recv_some(buf);
        if (got > 0) channel_.send(std::span<const std::uint8_t>(buf, got));
      }
    } catch (...) {
      // peer closed
    }
  }

  Channel channel_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

void BM_RoundTrip(benchmark::State& state) {
  ChannelPair pair = make_channel_pair(transport_of(static_cast<int>(state.range(0))));
  EchoPeer peer(std::move(pair.b));
  std::uint8_t byte = 0x55;
  for (auto _ : state) {
    pair.a.send(std::span<const std::uint8_t>(&byte, 1));
    pair.a.recv_exact(std::span<std::uint8_t>(&byte, 1));
  }
  state.SetLabel(transport_name(transport_of(static_cast<int>(state.range(0)))));
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoundTrip)->Arg(0)->Arg(1)->Arg(2);

void BM_Throughput(benchmark::State& state) {
  ChannelPair pair = make_channel_pair(transport_of(static_cast<int>(state.range(0))));
  constexpr std::size_t kChunk = 64 * 1024;
  std::vector<std::uint8_t> data(kChunk, 0xAA);
  std::thread sink([&pair] {
    std::vector<std::uint8_t> buf(kChunk);
    try {
      for (;;) pair.b.recv_exact(buf);
    } catch (...) {
    }
  });
  for (auto _ : state) {
    pair.a.send(data);
  }
  pair.a.close();
  pair.b.close();
  sink.join();
  state.SetLabel(transport_name(transport_of(static_cast<int>(state.range(0)))));
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kChunk);
}
BENCHMARK(BM_Throughput)->Arg(0)->Arg(1)->Arg(2);

void BM_DriverMessageCodec(benchmark::State& state) {
  DriverMessage msg;
  msg.type = MsgType::Write;
  for (int i = 0; i < state.range(0); ++i) {
    msg.items.push_back({"router.to_cpu", {1, 2, 3, 4}});
  }
  for (auto _ : state) {
    auto frame = encode_message(msg);
    auto body = std::span<const std::uint8_t>(frame).subspan(4);
    auto decoded = decode_message_body(body);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DriverMessageCodec)->Arg(1)->Arg(6)->Arg(24);

}  // namespace

int main(int argc, char** argv) {
  return nisc::bench::run_gbench_main("ipc", argc, argv);
}
