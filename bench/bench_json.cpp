#include "bench_json.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "obs/metrics.hpp"

namespace nisc::bench {

bool quick_mode() {
  const char* env = std::getenv("NISC_BENCH_QUICK");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

int repetitions() {
  if (const char* env = std::getenv("NISC_BENCH_REPS")) {
    const int n = std::atoi(env);
    if (n >= 1) return n;
  }
  return 3;
}

Recorder::Recorder(std::string bench_name) : bench_(std::move(bench_name)) {}

Recorder::Series& Recorder::series(const std::string& name, const char* unit) {
  for (Series& s : series_) {
    if (s.name == name) return s;
  }
  series_.push_back(Series{name, unit, {}});
  return series_.back();
}

void Recorder::record(const std::string& result, double value, const char* unit) {
  series(result, unit).values.push_back(value);
}

std::string Recorder::path() const {
  std::string dir = ".";
  if (const char* env = std::getenv("NISC_BENCH_OUT")) {
    if (env[0] != '\0') dir = env;
  }
  return dir + "/BENCH_" + bench_ + ".json";
}

namespace {

/// Nearest-rank quantile of an already-sorted sample.
double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  out += buf;
}

}  // namespace

std::string Recorder::render_json() const {
  std::string out = "{\"schema\":1,\"bench\":\"" + bench_ + "\",\"quick\":";
  out += quick_mode() ? "true" : "false";
  out += ",\"results\":[";
  bool first = true;
  for (const Series& s : series_) {
    if (!first) out += ',';
    first = false;
    std::vector<double> sorted = s.values;
    std::sort(sorted.begin(), sorted.end());
    out += "{\"name\":\"" + s.name + "\",\"unit\":\"" + s.unit + "\",\"runs\":[";
    for (std::size_t i = 0; i < s.values.size(); ++i) {
      if (i > 0) out += ',';
      append_double(out, s.values[i]);
    }
    out += "],\"median\":";
    append_double(out, quantile_sorted(sorted, 0.5));
    out += ",\"p90\":";
    append_double(out, quantile_sorted(sorted, 0.9));
    out += '}';
  }
  out += "],\"metrics\":";
  // Embed the registry snapshot only if the run touched it: writing the
  // report must not be the first registry touch.
  if (obs::MetricsRegistry::exists()) {
    out += obs::MetricsRegistry::instance().render_json();
  } else {
    out += "null";
  }
  out += "}\n";
  return out;
}

bool Recorder::write() const {
  const std::string file = path();
  std::ofstream out(file);
  if (!out) {
    std::fprintf(stderr, "bench: cannot write %s\n", file.c_str());
    return false;
  }
  out << render_json();
  std::printf("wrote %s\n", file.c_str());
  return true;
}

}  // namespace nisc::bench
