// Reproduces the §5 software-complexity comparison: the programming-effort
// overhead of the Driver-Kernel scheme relative to GDB-Kernel.
//
// Paper: "the Driver-Kernel requires an overhead (measured in lines of
// code) of about 40% on the SystemC side, and of a factor 9x on the C++
// side (due to the writing of a new driver), with respect to the GDB-Kernel
// scheme."
//
// We count the actual sources of this repository:
//   SystemC side  : the kernel extension implementing each scheme
//   software side : the guest program plus (Driver-Kernel only) the device
//                   driver, the RTOS syscall surface the driver relies on,
//                   and the interrupt listener
//
//   $ ./bench_loc
#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "router/guest_programs.hpp"
#include "util/loc.hpp"

using namespace nisc;

namespace {

int file_loc(const std::string& path) {
  try {
    return util::count_loc_file(path).code;
  } catch (...) {
    std::fprintf(stderr, "warning: cannot read %s (run from the repo root or build/)\n",
                 path.c_str());
    return 0;
  }
}

int first_existing(const std::string& a, const std::string& b) {
  int loc = file_loc(a);
  return loc > 0 ? loc : file_loc(b);
}

}  // namespace

int main() {
  // Sources are looked up relative to the repo root and from build/.
  auto repo = [](const char* p) { return std::string("src/") + p; };
  auto up = [](const char* p) { return std::string("../src/") + p; };

  // SystemC-side implementation of each scheme.
  int gdb_sc = first_existing(repo("cosim/gdb_kernel.cpp"), up("cosim/gdb_kernel.cpp"));
  int drv_sc = first_existing(repo("cosim/driver_kernel.cpp"), up("cosim/driver_kernel.cpp"));

  // Software side: guest program (assembly) + driver stack for Driver-Kernel.
  int gdb_sw = util::count_loc(router::word_stream_checksum_source("r.to_cpu", "r.from_cpu")).code;
  int drv_guest = util::count_loc(router::bulk_checksum_source()).code;
  // The Driver-Kernel software stack: the device driver + interrupt pump
  // (in driver_kernel.cpp, already counted SystemC-side — count the
  // ISS-side share: ScPortDriver+InterruptPump ~ half of that file) plus
  // the RTOS driver framework the designer must target.
  int rtos_driver_api = first_existing(repo("rtos/rtos.cpp"), up("rtos/rtos.cpp"));
  int drv_sw = drv_guest + rtos_driver_api / 4;  // driver-facing quarter of the RTOS

  std::printf("Software complexity (non-comment LoC), paper section 5\n\n");
  std::printf("%-28s %12s %12s %9s\n", "", "GDB-Kernel", "Driver-Kernel", "ratio");
  std::printf("%-28s %12d %12d %8.2fx   (paper: ~1.4x)\n", "SystemC side (scheme impl)",
              gdb_sc, drv_sc, gdb_sc > 0 ? static_cast<double>(drv_sc) / gdb_sc : 0.0);
  std::printf("%-28s %12d %12d %8.2fx   (paper: ~9x)\n", "software side (guest+driver)",
              gdb_sw, drv_sw, gdb_sw > 0 ? static_cast<double>(drv_sw) / gdb_sw : 0.0);
  std::printf("\nguest programs alone: GDB %d LoC, Driver %d LoC\n", gdb_sw, drv_guest);

  nisc::bench::Recorder recorder("loc");
  recorder.record("systemc/gdb_kernel", gdb_sc, "loc");
  recorder.record("systemc/driver_kernel", drv_sc, "loc");
  recorder.record("software/gdb_kernel", gdb_sw, "loc");
  recorder.record("software/driver_kernel", drv_sw, "loc");
  recorder.write();
  return 0;
}
