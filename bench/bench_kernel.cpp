// Ablation A3: throughput of the SystemC-like simulation kernel itself,
// and the marginal cost of the kernel-extension hooks the paper's schemes
// add to the scheduler.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "sysc/sysc.hpp"

namespace {

using namespace nisc::sysc;
using namespace nisc::sysc::time_literals;

void BM_DeltaCycles(benchmark::State& state) {
  sc_simcontext ctx;
  sc_event ev("ev");
  std::uint64_t burst = 0;
  auto& p = ctx.create_method("p", [&] {
    if (burst > 0) {
      --burst;
      ev.notify_delta();
    }
  });
  p.make_sensitive(ev);
  ctx.run(1_ps);  // initialization
  std::uint64_t before = ctx.stats().delta_cycles;
  for (auto _ : state) {
    burst = 1000;
    ev.notify_delta();
    ctx.run(1_ps);  // runs the burst of deltas, then starves
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ctx.stats().delta_cycles - before));
  state.SetLabel("delta cycles/s");
}
BENCHMARK(BM_DeltaCycles);

void BM_TimedEvents(benchmark::State& state) {
  sc_simcontext ctx;
  sc_event ev("ev");
  std::uint64_t fired = 0;
  auto& p = ctx.create_method("p", [&] {
    ++fired;
    ev.notify(1_ns);
  });
  p.make_sensitive(ev);
  for (auto _ : state) {
    ctx.run(100_ns);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(fired));
  state.SetLabel("timed notifications/s");
}
BENCHMARK(BM_TimedEvents);

void BM_SignalToggles(benchmark::State& state) {
  sc_simcontext ctx;
  sc_signal<int> sig("s");
  sc_event ev("ev");
  int value = 0;
  auto& p = ctx.create_method("p", [&] {
    sig.write(++value);
    ev.notify(1_ns);
  });
  p.make_sensitive(ev);
  for (auto _ : state) {
    ctx.run(100_ns);
  }
  state.SetItemsProcessed(value);
  state.SetLabel("signal updates/s");
}
BENCHMARK(BM_SignalToggles);

void BM_ThreadContextSwitch(benchmark::State& state) {
  sc_simcontext ctx;
  sc_event kick("kick");
  sc_event ping("ping");
  sc_event pong("pong");
  std::uint64_t burst = 0;
  std::uint64_t switches = 0;
  ctx.create_thread("a", [&] {
    for (;;) {
      while (burst == 0) wait(kick);
      --burst;
      ping.notify_delta();
      ++switches;
      wait(pong);
    }
  });
  ctx.create_thread("b", [&] {
    for (;;) {
      wait(ping);
      pong.notify_delta();
    }
  });
  ctx.run(1_ps);
  for (auto _ : state) {
    burst = 500;
    kick.notify_delta();
    ctx.run(1_ps);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(switches) * 2);
  state.SetLabel("thread handoffs/s");
}
BENCHMARK(BM_ThreadContextSwitch);

struct NullExtension : kernel_extension {};

void BM_ExtensionHookOverhead(benchmark::State& state) {
  sc_simcontext ctx;
  std::vector<NullExtension> extensions(static_cast<std::size_t>(state.range(0)));
  for (auto& ext : extensions) ctx.register_extension(&ext);
  sc_event ev("ev");
  std::uint64_t burst = 0;
  auto& p = ctx.create_method("p", [&] {
    if (burst > 0) {
      --burst;
      ev.notify_delta();
    }
  });
  p.make_sensitive(ev);
  ctx.run(1_ps);
  std::uint64_t before = ctx.stats().delta_cycles;
  for (auto _ : state) {
    burst = 1000;
    ev.notify_delta();
    ctx.run(1_ps);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ctx.stats().delta_cycles - before));
  state.SetLabel(std::to_string(state.range(0)) + " idle extensions");
}
BENCHMARK(BM_ExtensionHookOverhead)->Arg(0)->Arg(1)->Arg(4);

void BM_ClockedDesign(benchmark::State& state) {
  sc_simcontext ctx;
  sc_clock clk("clk", 10_ns);
  sc_signal<int> sig("s");
  int value = 0;
  auto& p = ctx.create_method("p", [&] { sig.write(++value); });
  p.make_sensitive(clk.posedge_event());
  p.dont_initialize();
  for (auto _ : state) {
    ctx.run(1_us);  // 100 clock cycles per iteration
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(clk.posedge_count()));
  state.SetLabel("clock cycles/s");
}
BENCHMARK(BM_ClockedDesign);

}  // namespace

int main(int argc, char** argv) {
  return nisc::bench::run_gbench_main("kernel", argc, argv);
}
