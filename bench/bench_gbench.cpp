// run_gbench_main: BENCHMARK_MAIN() plus a BENCH_<name>.json side channel.
#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "bench_json.hpp"

namespace nisc::bench {

namespace {

/// Forwards to the stock console output while siphoning every
/// per-repetition run (aggregates excluded) into the Recorder.
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CapturingReporter(Recorder& recorder) : recorder_(recorder) {}

  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.run_type == Run::RT_Aggregate || run.error_occurred) continue;
      const double seconds =
          run.iterations > 0 ? run.real_accumulated_time / static_cast<double>(run.iterations)
                             : 0.0;
      recorder_.record(run.run_name.str(), seconds);
    }
    ConsoleReporter::ReportRuns(reports);
  }

 private:
  Recorder& recorder_;
};

bool has_flag(int argc, char** argv, const char* prefix) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], prefix, std::strlen(prefix)) == 0) return true;
  }
  return false;
}

}  // namespace

int run_gbench_main(const char* bench_name, int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  // Injected flags need stable storage across Initialize().
  static std::string reps_flag;
  static std::string min_time_flag;
  if (!has_flag(argc, argv, "--benchmark_repetitions")) {
    reps_flag = "--benchmark_repetitions=" + std::to_string(repetitions());
    args.push_back(reps_flag.data());
  }
  if (quick_mode() && !has_flag(argc, argv, "--benchmark_min_time")) {
    min_time_flag = "--benchmark_min_time=0.05";
    args.push_back(min_time_flag.data());
  }
  int adjusted_argc = static_cast<int>(args.size());
  benchmark::Initialize(&adjusted_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(adjusted_argc, args.data())) return 1;

  Recorder recorder(bench_name);
  CapturingReporter reporter(recorder);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return recorder.write() ? 0 : 1;
}

}  // namespace nisc::bench
