// Reproduces Figure 7 of the paper: percentage of packets forwarded by the
// router vs inter-packet delay, under GDB-Kernel and Driver-Kernel.
//
// Expected shape (paper): both curves rise toward 100% as the delay grows;
// the Driver-Kernel curve lies *below* the GDB-Kernel curve at equal delay,
// because the OS (scheduling, syscall and driver overhead, modeled as guest
// cycles) slows the checksum application down — "the difference is a
// measure of the overhead imposed by the OS".
//
//   $ ./bench_fig7
#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "router/testbench.hpp"

using namespace nisc;
using namespace nisc::sysc::time_literals;

namespace {

double forwarded_pct(router::Scheme scheme, sysc::sc_time delay) {
  router::TestbenchConfig config;
  config.scheme = scheme;
  config.packets_per_producer = 50;
  config.num_producers = 4;
  config.fifo_capacity = 4;
  config.inter_packet_delay = delay;
  // A deliberately slow CPU so the checksum application is the bottleneck
  // (the allowance is metered in CPU cycles per simulated microsecond).
  config.instructions_per_us = 30;
  // OS cost model: the Driver-Kernel guest pays these on every packet; the
  // bare-metal GDB-Kernel guest pays nothing.
  config.rtos.syscall_overhead_cycles = 100;
  config.rtos.context_switch_cycles = 120;
  config.rtos.isr_entry_cycles = 80;
  router::Testbench bench(config);
  bench.run_until_drained(sysc::sc_time(400, sysc::SC_MS));
  router::TestbenchReport r = bench.report();
  bench.shutdown();
  return r.forwarded_pct;
}

}  // namespace

int main() {
  const std::uint64_t all_delays_us[] = {2, 5, 10, 20, 40, 80, 160};
  const std::uint64_t quick_delays_us[] = {2, 20, 160};
  const std::uint64_t* delays_us = nisc::bench::quick_mode() ? quick_delays_us : all_delays_us;
  const std::size_t num_delays = nisc::bench::quick_mode() ? 3 : 7;
  nisc::bench::Recorder recorder("fig7");

  std::printf("Figure 7 — %% packets forwarded vs inter-packet delay\n");
  std::printf("(Driver-Kernel below GDB-Kernel: the OS overhead slows the app)\n\n");
  std::printf("%-22s %14s %14s %10s\n", "inter-packet delay", "GDB-Kernel", "Driver-Kernel",
              "delta");

  bool shape_ok = true;
  for (std::size_t i = 0; i < num_delays; ++i) {
    const std::uint64_t d = delays_us[i];
    sysc::sc_time delay = sysc::sc_time::from_ps(d * 1000000ULL);
    double gdb = forwarded_pct(router::Scheme::GdbKernel, delay);
    double drv = forwarded_pct(router::Scheme::DriverKernel, delay);
    recorder.record("gdb_kernel/" + std::to_string(d) + "us", gdb, "%");
    recorder.record("driver_kernel/" + std::to_string(d) + "us", drv, "%");
    std::printf("%18llu us %13.1f%% %13.1f%% %9.1f%%\n",
                static_cast<unsigned long long>(d), gdb, drv, gdb - drv);
    std::fflush(stdout);
    if (drv > gdb + 10.0) shape_ok = false;  // Driver must not beat GDB-Kernel
  }
  std::printf("\nshape %s: both curves rise with delay; Driver-Kernel trails GDB-Kernel\n",
              shape_ok ? "HOLDS" : "VIOLATED");
  recorder.write();
  return shape_ok ? 0 : 1;
}
