// Ablation A2: raw ISS speed and the cost of its debug machinery.
//
// Establishes the baseline instruction throughput of the RV32IM
// interpreter, the slowdown from armed breakpoints/watchpoints, and the
// effect of quantum size on run() overhead — the knobs the co-simulation
// layer turns.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include "iss/assembler.hpp"
#include "iss/cpu.hpp"

namespace {

using namespace nisc::iss;

constexpr const char* kSpinLoop = R"(
_start:
    li t0, 0
loop:
    addi t0, t0, 1
    andi t1, t0, 255
    xor t2, t1, t0
    j loop
)";

Cpu make_cpu(const char* source) {
  Cpu cpu(1 << 16);
  Program prog = assemble(source);
  prog.load_into(cpu.mem());
  cpu.reset(prog.entry);
  return cpu;
}

void BM_IssExecution(benchmark::State& state) {
  Cpu cpu = make_cpu(kSpinLoop);
  for (auto _ : state) {
    cpu.run(10000);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cpu.instret()));
  state.SetLabel("instructions/s");
}
BENCHMARK(BM_IssExecution);

void BM_IssWithBreakpoints(benchmark::State& state) {
  Cpu cpu = make_cpu(kSpinLoop);
  // Armed but never hit: measures the per-instruction pc lookup.
  for (int i = 0; i < state.range(0); ++i) {
    cpu.add_breakpoint(0x1000 + static_cast<std::uint32_t>(i) * 4);
  }
  for (auto _ : state) {
    cpu.run(10000);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cpu.instret()));
  state.SetLabel(std::to_string(state.range(0)) + " armed breakpoints");
}
BENCHMARK(BM_IssWithBreakpoints)->Arg(1)->Arg(8)->Arg(64);

void BM_IssWithWatchpoint(benchmark::State& state) {
  Cpu cpu = make_cpu(R"(
  _start:
      la t3, var
  loop:
      addi t0, t0, 1
      sw t0, 0(t3)
      j loop
  var: .word 0
  unrelated: .word 0
  )");
  cpu.add_watchpoint(0xF000, 4);  // armed elsewhere: every store scans it
  for (auto _ : state) {
    cpu.run(10000);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cpu.instret()));
}
BENCHMARK(BM_IssWithWatchpoint);

void BM_IssQuantumGranularity(benchmark::State& state) {
  Cpu cpu = make_cpu(kSpinLoop);
  const std::uint64_t quantum = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    cpu.run(quantum);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(cpu.instret()));
  state.SetLabel("quantum=" + std::to_string(quantum));
}
BENCHMARK(BM_IssQuantumGranularity)->Arg(16)->Arg(256)->Arg(4096)->Arg(65536);

void BM_Assembler(benchmark::State& state) {
  std::string source;
  for (int i = 0; i < 200; ++i) {
    std::string label = "l";
    label += std::to_string(i);
    source += label;
    source += ": addi t0, t0, 1\n    bnez t0, ";
    source += label;
    source += "\n";
  }
  for (auto _ : state) {
    Program prog = assemble(source);
    benchmark::DoNotOptimize(prog);
  }
  state.SetItemsProcessed(state.iterations() * 400);  // statements
}
BENCHMARK(BM_Assembler);

}  // namespace

int main(int argc, char** argv) {
  return nisc::bench::run_gbench_main("iss", argc, argv);
}
