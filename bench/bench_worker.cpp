// Ablation A8: worker-wire frame overhead with correlation IDs.
//
// The observability side-band (DESIGN.md §10.5) appends a 12-byte trailer
// (trace_id + "FTID" magic) to fixed-payload frames when tracing is on.
// This benchmark pins the cost of that trailer against the plain frame
// path so the "tracing disabled = free" claim stays checked in CI:
//   * BM_FrameRoundTrip/0      — DevWrite->WriteAck over a socketpair,
//                                trace_id 0 (no trailer, the default path);
//   * BM_FrameRoundTrip/1      — same exchange with a nonzero trace_id
//                                (trailer appended, stripped, echoed back);
//   * BM_FrameCodec            — encode+decode only, no I/O, both shapes.
#include <benchmark/benchmark.h>

#include "bench_json.hpp"

#include <atomic>
#include <thread>

#include "cosim/worker.hpp"
#include "ipc/channel.hpp"

namespace {

using namespace nisc::cosim;
using namespace nisc::ipc;

/// Echo peer speaking the worker framing: every DevWrite is answered with a
/// WriteAck carrying the same seq and trace_id (the supervisor's ack path).
class FramePeer {
 public:
  explicit FramePeer(Channel channel) : channel_(std::move(channel)) {
    thread_ = std::thread([this] { run(); });
  }
  ~FramePeer() {
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
    channel_.close();
  }

 private:
  void run() {
    try {
      while (!stop_.load()) {
        if (!channel_.readable(10)) continue;
        WorkerFrame frame = recv_frame(channel_);
        WorkerFrame ack;
        ack.op = WorkerOp::WriteAck;
        ack.seq = frame.seq;
        ack.trace_id = frame.trace_id;
        ack.payload.assign(8, 0);
        send_frame(channel_, ack);
      }
    } catch (...) {
      // peer closed
    }
  }

  Channel channel_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

void BM_FrameRoundTrip(benchmark::State& state) {
  ChannelPair pair = make_channel_pair(Transport::SocketPair);
  FramePeer peer(std::move(pair.b));
  const bool with_id = state.range(0) != 0;
  WorkerFrame frame;
  frame.op = WorkerOp::DevWrite;
  frame.payload.assign(8, 0x5A);
  std::uint64_t seq = 0;
  for (auto _ : state) {
    frame.seq = ++seq;
    frame.trace_id = with_id ? (1ull << 48) | seq : 0;
    send_frame(pair.a, frame);
    WorkerFrame ack = recv_frame(pair.a);
    benchmark::DoNotOptimize(ack.trace_id);
  }
  state.SetLabel(with_id ? "trace_id" : "plain");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrameRoundTrip)->Arg(0)->Arg(1);

// Codec-only cost: how much of the trailer shows up without syscalls. Uses
// peek_frame_trace_id on the encoded bytes the same way ObsTap does.
void BM_FrameCodec(benchmark::State& state) {
  const bool with_id = state.range(0) != 0;
  std::vector<std::uint8_t> wire;
  wire.reserve(64);
  std::uint64_t seq = 0;
  for (auto _ : state) {
    ++seq;
    const std::uint64_t id = with_id ? (1ull << 48) | seq : 0;
    wire.clear();
    const std::size_t fixed = worker_op_fixed_payload(WorkerOp::DevWrite);
    const std::size_t body = 1 + 8 + fixed + (id != 0 ? 12 : 0);
    auto put32 = [&wire](std::uint32_t v) {
      for (int i = 0; i < 4; ++i) wire.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    };
    auto put64 = [&wire](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) wire.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    };
    put32(static_cast<std::uint32_t>(body));
    wire.push_back(static_cast<std::uint8_t>(WorkerOp::DevWrite));
    put64(seq);
    for (std::size_t i = 0; i < fixed; ++i) wire.push_back(0x5A);
    if (id != 0) {
      put64(id);
      put32(kFrameTraceMagic);
    }
    benchmark::DoNotOptimize(peek_frame_trace_id(CaptureDir::Tx, wire));
  }
  state.SetLabel(with_id ? "trace_id" : "plain");
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FrameCodec)->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  return nisc::bench::run_gbench_main("worker", argc, argv);
}
