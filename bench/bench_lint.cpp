// Static-analysis throughput: wall time of cosim_lint's flow pipeline over
// the committed guest corpus and over a synthetic many-function guest that
// stresses the interprocedural machinery (call-string clones, SCC
// widening/narrowing, summary joins).
//
// Results (seconds per corpus sweep / per synthetic lint):
//   corpus/intraproc    flow rules only, interprocedural pass off
//   corpus/interproc    full pipeline at the default --context-k=1
//   synthetic/k0        generated call tree, context-insensitive summaries
//   synthetic/k1        generated call tree, k-limited call-string clones
//
// CI gates the medians against bench/baselines/BENCH_lint.json (see the
// perf-smoke job); NISC_BENCH_QUICK=1 shrinks the workload.
//
//   $ ./bench_lint
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/diag.hpp"
#include "analysis/lint.hpp"
#include "bench_json.hpp"

using namespace nisc;
namespace fs = std::filesystem;

namespace {

std::vector<std::string> load_corpus() {
  std::vector<std::string> corpus;
  for (const char* root : {"examples/guests", "../examples/guests"}) {
    if (!fs::is_directory(root)) continue;
    for (const char* dir : {"", "/bad"}) {
      for (const fs::directory_entry& entry : fs::directory_iterator(std::string(root) + dir)) {
        if (!entry.is_regular_file() || entry.path().extension() != ".s") continue;
        std::ifstream in(entry.path(), std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        corpus.push_back(buf.str());
      }
    }
    break;
  }
  return corpus;
}

/// A call tree of `layers` x `width` helper functions: every layer-n helper
/// calls two layer-(n+1) helpers with different arguments, the leaves do
/// frame spills — lots of distinct call strings and real SCC-free summary
/// work, which is exactly what the clone table has to chew through.
std::string synthetic_guest(int layers, int width) {
  std::ostringstream out;
  out << "_start:\n    li sp, 0x10000\n    li a0, 1\n    call f_0_0\n    ebreak\n";
  for (int l = 0; l < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      out << "f_" << l << "_" << w << ":\n";
      out << "    addi sp, sp, -16\n    sw ra, 12(sp)\n    sw s0, 8(sp)\n";
      out << "    mv s0, a0\n";
      if (l + 1 < layers) {
        out << "    addi a0, s0, " << w << "\n";
        out << "    call f_" << l + 1 << "_" << w << "\n";
        out << "    addi a0, s0, " << w + 1 << "\n";
        out << "    call f_" << l + 1 << "_" << (w + 1) % width << "\n";
      } else {
        out << "    add a0, s0, s0\n";
      }
      out << "    lw s0, 8(sp)\n    lw ra, 12(sp)\n    addi sp, sp, 16\n    ret\n";
    }
  }
  return out.str();
}

double time_lint(const std::vector<std::string>& sources, const analysis::LintOptions& options,
                 int iters) {
  // Best of three sweeps: the workloads are sub-millisecond, so a single
  // scheduler hiccup would otherwise dominate the regression gate.
  double best = 0;
  for (int attempt = 0; attempt < 3; ++attempt) {
    auto begin = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      for (const std::string& source : sources) {
        analysis::DiagEngine diags;
        analysis::lint_guest_source(source, "bench.s", diags, options);
      }
    }
    std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - begin;
    double per_iter = elapsed.count() / iters;
    if (attempt == 0 || per_iter < best) best = per_iter;
  }
  return best;
}

}  // namespace

int main() {
  const bool quick = bench::quick_mode();
  const int reps = bench::repetitions();
  const int iters = quick ? 10 : 25;

  std::vector<std::string> corpus = load_corpus();
  if (corpus.empty()) {
    std::fprintf(stderr, "bench_lint: guest corpus not found (run from the repo root)\n");
    return 1;
  }
  std::vector<std::string> synthetic = {synthetic_guest(quick ? 4 : 6, quick ? 3 : 4)};

  analysis::LintOptions intraproc;
  intraproc.interproc = false;
  analysis::LintOptions k0;
  k0.context_k = 0;
  analysis::LintOptions k1;  // defaults: interproc on, context_k = 1

  bench::Recorder recorder("lint");
  std::printf("cosim_lint flow-pipeline wall time (%d files, best of %d reps)\n\n",
              static_cast<int>(corpus.size()), reps);
  for (int r = 0; r < reps; ++r) {
    double corpus_off = time_lint(corpus, intraproc, iters);
    double corpus_on = time_lint(corpus, k1, iters);
    double synth_k0 = time_lint(synthetic, k0, iters);
    double synth_k1 = time_lint(synthetic, k1, iters);
    recorder.record("corpus/intraproc", corpus_off);
    recorder.record("corpus/interproc", corpus_on);
    recorder.record("synthetic/k0", synth_k0);
    recorder.record("synthetic/k1", synth_k1);
    std::printf("  rep %d: corpus %.3f ms -> %.3f ms, synthetic k0 %.3f ms -> k1 %.3f ms\n",
                r + 1, corpus_off * 1e3, corpus_on * 1e3, synth_k0 * 1e3, synth_k1 * 1e3);
  }
  recorder.write();
  return 0;
}
