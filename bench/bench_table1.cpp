// Reproduces Table 1 of the paper: co-simulation wall-clock time of the
// router case study under the three schemes, for three simulated durations
// in a 1 : 10 : 100 ratio (the paper's 1000 / 10000 / 100000 columns).
//
// Expected shape (paper): GDB-Kernel ~30% faster than the GDB-Wrapper
// baseline; Driver-Kernel ~3x faster; speedups stable across durations.
// Absolute numbers depend on the host — the ratios are the result.
//
//   $ ./bench_table1
#include <algorithm>
#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "router/testbench.hpp"

using namespace nisc;
using namespace nisc::sysc::time_literals;

namespace {

double run_scheme(router::Scheme scheme, sysc::sc_time duration) {
  router::TestbenchConfig config;
  config.scheme = scheme;
  config.packets_per_producer = 0;  // continuous traffic for the whole run
  config.num_producers = 4;
  config.inter_packet_delay = 2_us;
  config.instructions_per_us = 400000;
  router::Testbench bench(config);
  bench.run_for(duration);
  router::TestbenchReport r = bench.report();
  bench.shutdown();
  return r.wall_seconds;
}

}  // namespace

int main() {
  const sysc::sc_time durations[] = {100_us, 1_ms, sysc::sc_time(10, sysc::SC_MS)};
  const char* labels[] = {"100us", "1ms", "10ms"};
  const router::Scheme schemes[] = {router::Scheme::GdbWrapper, router::Scheme::GdbKernel,
                                    router::Scheme::DriverKernel};
  // Quick mode keeps CI cheap: shortest column only, single rep.
  const int num_durations = nisc::bench::quick_mode() ? 1 : 3;
  const int reps = nisc::bench::quick_mode() ? 1 : nisc::bench::repetitions();
  nisc::bench::Recorder recorder("table1");

  std::printf("Table 1 — Simulation performance [wall-clock ms] vs simulated time\n");
  std::printf("(paper columns 1000/10000/100000 map to the 1:10:100 ratio below)\n\n");
  std::printf("%-14s %12s %12s %12s\n", "Scheme", labels[0], labels[1], labels[2]);

  double wall[3][3] = {};
  for (int s = 0; s < 3; ++s) {
    std::printf("%-14s", router::scheme_name(schemes[s]));
    for (int d = 0; d < num_durations; ++d) {
      for (int r = 0; r < reps; ++r) {
        const double seconds = run_scheme(schemes[s], durations[d]);
        wall[s][d] = r == 0 ? seconds : std::min(wall[s][d], seconds);
        recorder.record(std::string(router::scheme_name(schemes[s])) + "/" + labels[d], seconds);
      }
      std::printf(" %11.1f ", wall[s][d] * 1000.0);
      std::fflush(stdout);
    }
    std::printf("\n");
  }

  std::printf("\nSpeedup over GDB-Wrapper (paper: GDB-Kernel ~1.3x, Driver-Kernel ~3x)\n");
  for (int s = 1; s < 3; ++s) {
    std::printf("%-14s", router::scheme_name(schemes[s]));
    for (int d = 0; d < num_durations; ++d) {
      std::printf(" %10.2fx ", wall[0][d] / wall[s][d]);
    }
    std::printf("\n");
  }
  recorder.write();
  return 0;
}
