// Ablation A6: multi-processor scaling (extension experiment).
//
// The paper's architectural template allows "several processors"; this
// bench measures how the router's sustainable forwarding rate scales with
// the number of co-simulated checksum CPUs when the CPU is the bottleneck.
// Each CPU is a full ISS + GDB stub session with its own kernel bindings.
//
//   $ ./bench_mpsoc
#include <cstdio>
#include <string>

#include "bench_json.hpp"
#include "router/testbench.hpp"

using namespace nisc;
using namespace nisc::sysc::time_literals;

namespace {

struct Sample {
  double forwarded_pct;
  double wall_ms;
  std::vector<std::uint64_t> per_engine;
};

Sample run_with_cpus(int cpus) {
  router::TestbenchConfig config;
  config.scheme = router::Scheme::GdbKernel;
  config.num_cpus = cpus;
  config.packets_per_producer = 40;
  config.num_producers = 4;
  config.fifo_capacity = 2;
  config.inter_packet_delay = 4_us;
  config.instructions_per_us = 15;  // slow CPUs: checksum-bound router
  router::Testbench bench(config);
  bench.run_until_drained(sysc::sc_time(400, sysc::SC_MS));
  router::TestbenchReport r = bench.report();
  Sample s{r.forwarded_pct, r.wall_seconds * 1000.0, bench.router().stats().per_engine};
  bench.shutdown();
  return s;
}

}  // namespace

int main() {
  std::printf("A6 — forwarding rate vs number of co-simulated CPUs\n");
  std::printf("(checksum-bound router, 160 packets at 4 us inter-packet delay)\n\n");
  std::printf("%6s %14s %12s  %s\n", "CPUs", "forwarded", "wall ms", "per-CPU packets");

  nisc::bench::Recorder recorder("mpsoc");
  const std::vector<int> cpu_counts = nisc::bench::quick_mode() ? std::vector<int>{1, 2}
                                                                : std::vector<int>{1, 2, 4};
  double prev = 0.0;
  bool monotone = true;
  for (int cpus : cpu_counts) {
    Sample s = run_with_cpus(cpus);
    recorder.record("cpus_" + std::to_string(cpus) + "/forwarded", s.forwarded_pct, "%");
    recorder.record("cpus_" + std::to_string(cpus) + "/wall", s.wall_ms / 1000.0);
    std::printf("%6d %13.1f%% %12.1f  ", cpus, s.forwarded_pct, s.wall_ms);
    for (std::uint64_t n : s.per_engine) std::printf("%llu ", static_cast<unsigned long long>(n));
    std::printf("\n");
    std::fflush(stdout);
    if (s.forwarded_pct + 2.0 < prev) monotone = false;
    prev = s.forwarded_pct;
  }
  std::printf("\nshape %s: more CPUs sustain a higher forwarding rate\n",
              monotone ? "HOLDS" : "VIOLATED");
  recorder.write();
  return monotone ? 0 : 1;
}
