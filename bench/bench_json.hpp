// Machine-readable bench output: every bench_* binary writes a
// BENCH_<name>.json next to its console report so CI (and cosim_stat) can
// diff runs without scraping stdout.
//
// Environment knobs, honoured by every bench:
//   NISC_BENCH_OUT=DIR   directory for BENCH_<name>.json (default: cwd)
//   NISC_BENCH_REPS=N    repetitions per measured result (default: 3)
//   NISC_BENCH_QUICK=1   CI smoke mode: shrink workloads, fewer reps
//
// File shape (schema 1):
//   {"schema":1,"bench":"kernel","quick":false,
//    "results":[{"name":"BM_DeltaCycles","unit":"s",
//                "runs":[...],"median":...,"p90":...}],
//    "metrics":{...}}            // obs registry snapshot, null if untouched
#pragma once

#include <string>
#include <vector>

namespace nisc::bench {

/// True when NISC_BENCH_QUICK is set non-empty (CI smoke mode).
bool quick_mode();

/// Repetitions per measured result: NISC_BENCH_REPS, default 3 (min 1).
int repetitions();

/// Collects repeated measurements and renders BENCH_<bench>.json.
class Recorder {
 public:
  explicit Recorder(std::string bench_name);

  /// Appends one run of `result` (insertion order of first touch is kept).
  void record(const std::string& result, double value, const char* unit = "s");

  /// Destination path: $NISC_BENCH_OUT/BENCH_<bench>.json (or cwd).
  std::string path() const;

  /// Renders the JSON document (median/p90 per result, metrics snapshot).
  std::string render_json() const;

  /// Writes path(); returns false (with a stderr note) on I/O failure.
  bool write() const;

 private:
  struct Series {
    std::string name;
    std::string unit;
    std::vector<double> values;
  };
  Series& series(const std::string& name, const char* unit);

  std::string bench_;
  std::vector<Series> series_;
};

/// Drop-in replacement for BENCHMARK_MAIN(): forces repetitions so
/// median/p90 are meaningful, captures every per-repetition run, and writes
/// BENCH_<bench_name>.json after the console report.
int run_gbench_main(const char* bench_name, int argc, char** argv);

}  // namespace nisc::bench
