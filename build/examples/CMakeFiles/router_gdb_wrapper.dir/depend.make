# Empty dependencies file for router_gdb_wrapper.
# This may be replaced when dependencies are built.
