file(REMOVE_RECURSE
  "CMakeFiles/router_gdb_wrapper.dir/router_gdb_wrapper.cpp.o"
  "CMakeFiles/router_gdb_wrapper.dir/router_gdb_wrapper.cpp.o.d"
  "router_gdb_wrapper"
  "router_gdb_wrapper.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_gdb_wrapper.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
