file(REMOVE_RECURSE
  "CMakeFiles/fir_offload.dir/fir_offload.cpp.o"
  "CMakeFiles/fir_offload.dir/fir_offload.cpp.o.d"
  "fir_offload"
  "fir_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fir_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
