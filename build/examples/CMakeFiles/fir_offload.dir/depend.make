# Empty dependencies file for fir_offload.
# This may be replaced when dependencies are built.
