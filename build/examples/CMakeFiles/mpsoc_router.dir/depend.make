# Empty dependencies file for mpsoc_router.
# This may be replaced when dependencies are built.
