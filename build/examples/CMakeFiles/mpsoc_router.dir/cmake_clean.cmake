file(REMOVE_RECURSE
  "CMakeFiles/mpsoc_router.dir/mpsoc_router.cpp.o"
  "CMakeFiles/mpsoc_router.dir/mpsoc_router.cpp.o.d"
  "mpsoc_router"
  "mpsoc_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpsoc_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
