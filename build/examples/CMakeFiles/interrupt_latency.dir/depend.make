# Empty dependencies file for interrupt_latency.
# This may be replaced when dependencies are built.
