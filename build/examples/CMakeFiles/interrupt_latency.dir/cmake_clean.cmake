file(REMOVE_RECURSE
  "CMakeFiles/interrupt_latency.dir/interrupt_latency.cpp.o"
  "CMakeFiles/interrupt_latency.dir/interrupt_latency.cpp.o.d"
  "interrupt_latency"
  "interrupt_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interrupt_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
