file(REMOVE_RECURSE
  "CMakeFiles/router_driver_kernel.dir/router_driver_kernel.cpp.o"
  "CMakeFiles/router_driver_kernel.dir/router_driver_kernel.cpp.o.d"
  "router_driver_kernel"
  "router_driver_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_driver_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
