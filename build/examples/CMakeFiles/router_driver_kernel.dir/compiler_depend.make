# Empty compiler generated dependencies file for router_driver_kernel.
# This may be replaced when dependencies are built.
