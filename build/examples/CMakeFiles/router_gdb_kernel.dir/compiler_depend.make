# Empty compiler generated dependencies file for router_gdb_kernel.
# This may be replaced when dependencies are built.
