file(REMOVE_RECURSE
  "CMakeFiles/router_gdb_kernel.dir/router_gdb_kernel.cpp.o"
  "CMakeFiles/router_gdb_kernel.dir/router_gdb_kernel.cpp.o.d"
  "router_gdb_kernel"
  "router_gdb_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/router_gdb_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
