file(REMOVE_RECURSE
  "CMakeFiles/pragma_filter_tool.dir/pragma_filter_tool.cpp.o"
  "CMakeFiles/pragma_filter_tool.dir/pragma_filter_tool.cpp.o.d"
  "pragma_filter_tool"
  "pragma_filter_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pragma_filter_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
