# Empty compiler generated dependencies file for pragma_filter_tool.
# This may be replaced when dependencies are built.
