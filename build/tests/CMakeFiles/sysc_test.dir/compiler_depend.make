# Empty compiler generated dependencies file for sysc_test.
# This may be replaced when dependencies are built.
