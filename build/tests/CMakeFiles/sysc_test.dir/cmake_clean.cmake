file(REMOVE_RECURSE
  "CMakeFiles/sysc_test.dir/sysc_test.cpp.o"
  "CMakeFiles/sysc_test.dir/sysc_test.cpp.o.d"
  "sysc_test"
  "sysc_test.pdb"
  "sysc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sysc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
