file(REMOVE_RECURSE
  "CMakeFiles/rsp_test.dir/rsp_test.cpp.o"
  "CMakeFiles/rsp_test.dir/rsp_test.cpp.o.d"
  "rsp_test"
  "rsp_test.pdb"
  "rsp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rsp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
