# Empty compiler generated dependencies file for rsp_test.
# This may be replaced when dependencies are built.
