
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/rsp_test.cpp" "tests/CMakeFiles/rsp_test.dir/rsp_test.cpp.o" "gcc" "tests/CMakeFiles/rsp_test.dir/rsp_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rsp/CMakeFiles/nisc_rsp.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/nisc_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/iss/CMakeFiles/nisc_iss.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nisc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
