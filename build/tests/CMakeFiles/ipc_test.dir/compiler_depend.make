# Empty compiler generated dependencies file for ipc_test.
# This may be replaced when dependencies are built.
