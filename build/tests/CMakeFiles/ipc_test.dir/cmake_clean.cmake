file(REMOVE_RECURSE
  "CMakeFiles/ipc_test.dir/ipc_test.cpp.o"
  "CMakeFiles/ipc_test.dir/ipc_test.cpp.o.d"
  "ipc_test"
  "ipc_test.pdb"
  "ipc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ipc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
