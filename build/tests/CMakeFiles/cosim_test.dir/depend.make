# Empty dependencies file for cosim_test.
# This may be replaced when dependencies are built.
