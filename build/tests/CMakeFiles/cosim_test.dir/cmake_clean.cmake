file(REMOVE_RECURSE
  "CMakeFiles/cosim_test.dir/cosim_test.cpp.o"
  "CMakeFiles/cosim_test.dir/cosim_test.cpp.o.d"
  "cosim_test"
  "cosim_test.pdb"
  "cosim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cosim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
