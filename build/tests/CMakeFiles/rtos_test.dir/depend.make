# Empty dependencies file for rtos_test.
# This may be replaced when dependencies are built.
