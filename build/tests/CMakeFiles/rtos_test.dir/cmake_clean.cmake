file(REMOVE_RECURSE
  "CMakeFiles/rtos_test.dir/rtos_test.cpp.o"
  "CMakeFiles/rtos_test.dir/rtos_test.cpp.o.d"
  "rtos_test"
  "rtos_test.pdb"
  "rtos_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rtos_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
