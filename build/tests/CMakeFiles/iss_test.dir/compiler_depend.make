# Empty compiler generated dependencies file for iss_test.
# This may be replaced when dependencies are built.
