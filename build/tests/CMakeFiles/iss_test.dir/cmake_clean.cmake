file(REMOVE_RECURSE
  "CMakeFiles/iss_test.dir/iss_test.cpp.o"
  "CMakeFiles/iss_test.dir/iss_test.cpp.o.d"
  "iss_test"
  "iss_test.pdb"
  "iss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
