# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/ipc_test[1]_include.cmake")
include("/root/repo/build/tests/sysc_test[1]_include.cmake")
include("/root/repo/build/tests/iss_test[1]_include.cmake")
include("/root/repo/build/tests/rsp_test[1]_include.cmake")
include("/root/repo/build/tests/rtos_test[1]_include.cmake")
include("/root/repo/build/tests/cosim_test[1]_include.cmake")
include("/root/repo/build/tests/router_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
