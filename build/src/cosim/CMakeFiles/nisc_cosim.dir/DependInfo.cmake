
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cosim/driver_kernel.cpp" "src/cosim/CMakeFiles/nisc_cosim.dir/driver_kernel.cpp.o" "gcc" "src/cosim/CMakeFiles/nisc_cosim.dir/driver_kernel.cpp.o.d"
  "/root/repo/src/cosim/gdb_kernel.cpp" "src/cosim/CMakeFiles/nisc_cosim.dir/gdb_kernel.cpp.o" "gcc" "src/cosim/CMakeFiles/nisc_cosim.dir/gdb_kernel.cpp.o.d"
  "/root/repo/src/cosim/gdb_wrapper.cpp" "src/cosim/CMakeFiles/nisc_cosim.dir/gdb_wrapper.cpp.o" "gcc" "src/cosim/CMakeFiles/nisc_cosim.dir/gdb_wrapper.cpp.o.d"
  "/root/repo/src/cosim/pragma.cpp" "src/cosim/CMakeFiles/nisc_cosim.dir/pragma.cpp.o" "gcc" "src/cosim/CMakeFiles/nisc_cosim.dir/pragma.cpp.o.d"
  "/root/repo/src/cosim/session.cpp" "src/cosim/CMakeFiles/nisc_cosim.dir/session.cpp.o" "gcc" "src/cosim/CMakeFiles/nisc_cosim.dir/session.cpp.o.d"
  "/root/repo/src/cosim/time_budget.cpp" "src/cosim/CMakeFiles/nisc_cosim.dir/time_budget.cpp.o" "gcc" "src/cosim/CMakeFiles/nisc_cosim.dir/time_budget.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sysc/CMakeFiles/nisc_sysc.dir/DependInfo.cmake"
  "/root/repo/build/src/rsp/CMakeFiles/nisc_rsp.dir/DependInfo.cmake"
  "/root/repo/build/src/rtos/CMakeFiles/nisc_rtos.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/nisc_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/iss/CMakeFiles/nisc_iss.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nisc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
