file(REMOVE_RECURSE
  "libnisc_cosim.a"
)
