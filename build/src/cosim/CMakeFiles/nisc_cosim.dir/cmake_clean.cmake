file(REMOVE_RECURSE
  "CMakeFiles/nisc_cosim.dir/driver_kernel.cpp.o"
  "CMakeFiles/nisc_cosim.dir/driver_kernel.cpp.o.d"
  "CMakeFiles/nisc_cosim.dir/gdb_kernel.cpp.o"
  "CMakeFiles/nisc_cosim.dir/gdb_kernel.cpp.o.d"
  "CMakeFiles/nisc_cosim.dir/gdb_wrapper.cpp.o"
  "CMakeFiles/nisc_cosim.dir/gdb_wrapper.cpp.o.d"
  "CMakeFiles/nisc_cosim.dir/pragma.cpp.o"
  "CMakeFiles/nisc_cosim.dir/pragma.cpp.o.d"
  "CMakeFiles/nisc_cosim.dir/session.cpp.o"
  "CMakeFiles/nisc_cosim.dir/session.cpp.o.d"
  "CMakeFiles/nisc_cosim.dir/time_budget.cpp.o"
  "CMakeFiles/nisc_cosim.dir/time_budget.cpp.o.d"
  "libnisc_cosim.a"
  "libnisc_cosim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nisc_cosim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
