# Empty dependencies file for nisc_cosim.
# This may be replaced when dependencies are built.
