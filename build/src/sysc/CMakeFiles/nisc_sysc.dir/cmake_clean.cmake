file(REMOVE_RECURSE
  "CMakeFiles/nisc_sysc.dir/kernel.cpp.o"
  "CMakeFiles/nisc_sysc.dir/kernel.cpp.o.d"
  "CMakeFiles/nisc_sysc.dir/sc_time.cpp.o"
  "CMakeFiles/nisc_sysc.dir/sc_time.cpp.o.d"
  "CMakeFiles/nisc_sysc.dir/vcd_trace.cpp.o"
  "CMakeFiles/nisc_sysc.dir/vcd_trace.cpp.o.d"
  "libnisc_sysc.a"
  "libnisc_sysc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nisc_sysc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
