
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sysc/kernel.cpp" "src/sysc/CMakeFiles/nisc_sysc.dir/kernel.cpp.o" "gcc" "src/sysc/CMakeFiles/nisc_sysc.dir/kernel.cpp.o.d"
  "/root/repo/src/sysc/sc_time.cpp" "src/sysc/CMakeFiles/nisc_sysc.dir/sc_time.cpp.o" "gcc" "src/sysc/CMakeFiles/nisc_sysc.dir/sc_time.cpp.o.d"
  "/root/repo/src/sysc/vcd_trace.cpp" "src/sysc/CMakeFiles/nisc_sysc.dir/vcd_trace.cpp.o" "gcc" "src/sysc/CMakeFiles/nisc_sysc.dir/vcd_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nisc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
