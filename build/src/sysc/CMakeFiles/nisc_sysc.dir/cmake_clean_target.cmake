file(REMOVE_RECURSE
  "libnisc_sysc.a"
)
