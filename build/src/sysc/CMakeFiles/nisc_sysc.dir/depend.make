# Empty dependencies file for nisc_sysc.
# This may be replaced when dependencies are built.
