# CMake generated Testfile for 
# Source directory: /root/repo/src/sysc
# Build directory: /root/repo/build/src/sysc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
