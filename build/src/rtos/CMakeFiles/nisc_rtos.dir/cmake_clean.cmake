file(REMOVE_RECURSE
  "CMakeFiles/nisc_rtos.dir/rtos.cpp.o"
  "CMakeFiles/nisc_rtos.dir/rtos.cpp.o.d"
  "libnisc_rtos.a"
  "libnisc_rtos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nisc_rtos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
