file(REMOVE_RECURSE
  "libnisc_rtos.a"
)
