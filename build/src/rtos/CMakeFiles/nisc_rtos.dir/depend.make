# Empty dependencies file for nisc_rtos.
# This may be replaced when dependencies are built.
