
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/iss/assembler.cpp" "src/iss/CMakeFiles/nisc_iss.dir/assembler.cpp.o" "gcc" "src/iss/CMakeFiles/nisc_iss.dir/assembler.cpp.o.d"
  "/root/repo/src/iss/cpu.cpp" "src/iss/CMakeFiles/nisc_iss.dir/cpu.cpp.o" "gcc" "src/iss/CMakeFiles/nisc_iss.dir/cpu.cpp.o.d"
  "/root/repo/src/iss/isa.cpp" "src/iss/CMakeFiles/nisc_iss.dir/isa.cpp.o" "gcc" "src/iss/CMakeFiles/nisc_iss.dir/isa.cpp.o.d"
  "/root/repo/src/iss/tracer.cpp" "src/iss/CMakeFiles/nisc_iss.dir/tracer.cpp.o" "gcc" "src/iss/CMakeFiles/nisc_iss.dir/tracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nisc_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
