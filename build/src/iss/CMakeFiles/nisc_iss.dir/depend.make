# Empty dependencies file for nisc_iss.
# This may be replaced when dependencies are built.
