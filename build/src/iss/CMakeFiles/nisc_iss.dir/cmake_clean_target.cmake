file(REMOVE_RECURSE
  "libnisc_iss.a"
)
