file(REMOVE_RECURSE
  "CMakeFiles/nisc_iss.dir/assembler.cpp.o"
  "CMakeFiles/nisc_iss.dir/assembler.cpp.o.d"
  "CMakeFiles/nisc_iss.dir/cpu.cpp.o"
  "CMakeFiles/nisc_iss.dir/cpu.cpp.o.d"
  "CMakeFiles/nisc_iss.dir/isa.cpp.o"
  "CMakeFiles/nisc_iss.dir/isa.cpp.o.d"
  "CMakeFiles/nisc_iss.dir/tracer.cpp.o"
  "CMakeFiles/nisc_iss.dir/tracer.cpp.o.d"
  "libnisc_iss.a"
  "libnisc_iss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nisc_iss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
