file(REMOVE_RECURSE
  "libnisc_ipc.a"
)
