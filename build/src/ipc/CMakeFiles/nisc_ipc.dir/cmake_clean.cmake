file(REMOVE_RECURSE
  "CMakeFiles/nisc_ipc.dir/channel.cpp.o"
  "CMakeFiles/nisc_ipc.dir/channel.cpp.o.d"
  "CMakeFiles/nisc_ipc.dir/fd.cpp.o"
  "CMakeFiles/nisc_ipc.dir/fd.cpp.o.d"
  "CMakeFiles/nisc_ipc.dir/message.cpp.o"
  "CMakeFiles/nisc_ipc.dir/message.cpp.o.d"
  "libnisc_ipc.a"
  "libnisc_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nisc_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
