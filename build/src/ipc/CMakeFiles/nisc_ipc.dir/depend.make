# Empty dependencies file for nisc_ipc.
# This may be replaced when dependencies are built.
