file(REMOVE_RECURSE
  "libnisc_rsp.a"
)
