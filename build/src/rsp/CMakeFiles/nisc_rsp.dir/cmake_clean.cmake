file(REMOVE_RECURSE
  "CMakeFiles/nisc_rsp.dir/client.cpp.o"
  "CMakeFiles/nisc_rsp.dir/client.cpp.o.d"
  "CMakeFiles/nisc_rsp.dir/packet.cpp.o"
  "CMakeFiles/nisc_rsp.dir/packet.cpp.o.d"
  "CMakeFiles/nisc_rsp.dir/stub.cpp.o"
  "CMakeFiles/nisc_rsp.dir/stub.cpp.o.d"
  "libnisc_rsp.a"
  "libnisc_rsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nisc_rsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
