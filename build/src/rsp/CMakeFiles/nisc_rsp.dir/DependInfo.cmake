
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rsp/client.cpp" "src/rsp/CMakeFiles/nisc_rsp.dir/client.cpp.o" "gcc" "src/rsp/CMakeFiles/nisc_rsp.dir/client.cpp.o.d"
  "/root/repo/src/rsp/packet.cpp" "src/rsp/CMakeFiles/nisc_rsp.dir/packet.cpp.o" "gcc" "src/rsp/CMakeFiles/nisc_rsp.dir/packet.cpp.o.d"
  "/root/repo/src/rsp/stub.cpp" "src/rsp/CMakeFiles/nisc_rsp.dir/stub.cpp.o" "gcc" "src/rsp/CMakeFiles/nisc_rsp.dir/stub.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/nisc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/nisc_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/iss/CMakeFiles/nisc_iss.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
