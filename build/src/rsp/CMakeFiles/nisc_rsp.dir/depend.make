# Empty dependencies file for nisc_rsp.
# This may be replaced when dependencies are built.
