# Empty compiler generated dependencies file for nisc_util.
# This may be replaced when dependencies are built.
