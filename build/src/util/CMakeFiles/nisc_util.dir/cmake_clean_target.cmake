file(REMOVE_RECURSE
  "libnisc_util.a"
)
