file(REMOVE_RECURSE
  "CMakeFiles/nisc_util.dir/checksum.cpp.o"
  "CMakeFiles/nisc_util.dir/checksum.cpp.o.d"
  "CMakeFiles/nisc_util.dir/hex.cpp.o"
  "CMakeFiles/nisc_util.dir/hex.cpp.o.d"
  "CMakeFiles/nisc_util.dir/loc.cpp.o"
  "CMakeFiles/nisc_util.dir/loc.cpp.o.d"
  "CMakeFiles/nisc_util.dir/log.cpp.o"
  "CMakeFiles/nisc_util.dir/log.cpp.o.d"
  "CMakeFiles/nisc_util.dir/rng.cpp.o"
  "CMakeFiles/nisc_util.dir/rng.cpp.o.d"
  "CMakeFiles/nisc_util.dir/strings.cpp.o"
  "CMakeFiles/nisc_util.dir/strings.cpp.o.d"
  "libnisc_util.a"
  "libnisc_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nisc_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
