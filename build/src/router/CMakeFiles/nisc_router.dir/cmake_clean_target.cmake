file(REMOVE_RECURSE
  "libnisc_router.a"
)
