file(REMOVE_RECURSE
  "CMakeFiles/nisc_router.dir/guest_programs.cpp.o"
  "CMakeFiles/nisc_router.dir/guest_programs.cpp.o.d"
  "CMakeFiles/nisc_router.dir/packet.cpp.o"
  "CMakeFiles/nisc_router.dir/packet.cpp.o.d"
  "CMakeFiles/nisc_router.dir/producer.cpp.o"
  "CMakeFiles/nisc_router.dir/producer.cpp.o.d"
  "CMakeFiles/nisc_router.dir/router.cpp.o"
  "CMakeFiles/nisc_router.dir/router.cpp.o.d"
  "CMakeFiles/nisc_router.dir/testbench.cpp.o"
  "CMakeFiles/nisc_router.dir/testbench.cpp.o.d"
  "libnisc_router.a"
  "libnisc_router.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nisc_router.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
