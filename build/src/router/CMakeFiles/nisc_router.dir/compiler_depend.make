# Empty compiler generated dependencies file for nisc_router.
# This may be replaced when dependencies are built.
