
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/router/guest_programs.cpp" "src/router/CMakeFiles/nisc_router.dir/guest_programs.cpp.o" "gcc" "src/router/CMakeFiles/nisc_router.dir/guest_programs.cpp.o.d"
  "/root/repo/src/router/packet.cpp" "src/router/CMakeFiles/nisc_router.dir/packet.cpp.o" "gcc" "src/router/CMakeFiles/nisc_router.dir/packet.cpp.o.d"
  "/root/repo/src/router/producer.cpp" "src/router/CMakeFiles/nisc_router.dir/producer.cpp.o" "gcc" "src/router/CMakeFiles/nisc_router.dir/producer.cpp.o.d"
  "/root/repo/src/router/router.cpp" "src/router/CMakeFiles/nisc_router.dir/router.cpp.o" "gcc" "src/router/CMakeFiles/nisc_router.dir/router.cpp.o.d"
  "/root/repo/src/router/testbench.cpp" "src/router/CMakeFiles/nisc_router.dir/testbench.cpp.o" "gcc" "src/router/CMakeFiles/nisc_router.dir/testbench.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sysc/CMakeFiles/nisc_sysc.dir/DependInfo.cmake"
  "/root/repo/build/src/cosim/CMakeFiles/nisc_cosim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nisc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/rsp/CMakeFiles/nisc_rsp.dir/DependInfo.cmake"
  "/root/repo/build/src/rtos/CMakeFiles/nisc_rtos.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/nisc_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/iss/CMakeFiles/nisc_iss.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
