file(REMOVE_RECURSE
  "CMakeFiles/bench_loc.dir/bench_loc.cpp.o"
  "CMakeFiles/bench_loc.dir/bench_loc.cpp.o.d"
  "bench_loc"
  "bench_loc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
