
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_loc.cpp" "bench/CMakeFiles/bench_loc.dir/bench_loc.cpp.o" "gcc" "bench/CMakeFiles/bench_loc.dir/bench_loc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/router/CMakeFiles/nisc_router.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/nisc_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cosim/CMakeFiles/nisc_cosim.dir/DependInfo.cmake"
  "/root/repo/build/src/sysc/CMakeFiles/nisc_sysc.dir/DependInfo.cmake"
  "/root/repo/build/src/rsp/CMakeFiles/nisc_rsp.dir/DependInfo.cmake"
  "/root/repo/build/src/rtos/CMakeFiles/nisc_rtos.dir/DependInfo.cmake"
  "/root/repo/build/src/ipc/CMakeFiles/nisc_ipc.dir/DependInfo.cmake"
  "/root/repo/build/src/iss/CMakeFiles/nisc_iss.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
