# Empty compiler generated dependencies file for bench_kernel.
# This may be replaced when dependencies are built.
