file(REMOVE_RECURSE
  "CMakeFiles/bench_mpsoc.dir/bench_mpsoc.cpp.o"
  "CMakeFiles/bench_mpsoc.dir/bench_mpsoc.cpp.o.d"
  "bench_mpsoc"
  "bench_mpsoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mpsoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
