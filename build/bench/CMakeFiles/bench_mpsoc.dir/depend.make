# Empty dependencies file for bench_mpsoc.
# This may be replaced when dependencies are built.
