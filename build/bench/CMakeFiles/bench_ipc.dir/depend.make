# Empty dependencies file for bench_ipc.
# This may be replaced when dependencies are built.
