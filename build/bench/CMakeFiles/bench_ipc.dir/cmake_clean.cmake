file(REMOVE_RECURSE
  "CMakeFiles/bench_ipc.dir/bench_ipc.cpp.o"
  "CMakeFiles/bench_ipc.dir/bench_ipc.cpp.o.d"
  "bench_ipc"
  "bench_ipc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
