# Empty compiler generated dependencies file for bench_iss.
# This may be replaced when dependencies are built.
