file(REMOVE_RECURSE
  "CMakeFiles/bench_iss.dir/bench_iss.cpp.o"
  "CMakeFiles/bench_iss.dir/bench_iss.cpp.o.d"
  "bench_iss"
  "bench_iss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_iss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
