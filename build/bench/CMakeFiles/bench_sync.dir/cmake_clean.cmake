file(REMOVE_RECURSE
  "CMakeFiles/bench_sync.dir/bench_sync.cpp.o"
  "CMakeFiles/bench_sync.dir/bench_sync.cpp.o.d"
  "bench_sync"
  "bench_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
