#include "rtos/rtos.hpp"

#include <algorithm>

#include "iss/isa.hpp"
#include "util/log.hpp"

namespace nisc::rtos {

namespace {
constexpr std::uint8_t kA0 = 10;
constexpr std::uint8_t kA1 = 11;
constexpr std::uint8_t kA2 = 12;
constexpr std::uint8_t kA7 = 17;
constexpr std::uint8_t kSp = 2;
constexpr std::uint8_t kRa = 1;
}  // namespace

std::string guest_abi_prelude() {
  return R"(.equ SYS_EXIT, 0
.equ SYS_YIELD, 1
.equ SYS_SLEEP, 2
.equ SYS_DEV_WRITE, 3
.equ SYS_DEV_READ, 4
.equ SYS_IRQ_ATTACH, 5
.equ SYS_THREAD_CREATE, 6
.equ SYS_GETTID, 7
.equ SYS_PUTC, 8
.equ SYS_IRET, 9
)";
}

const char* run_status_name(RunStatus status) noexcept {
  switch (status) {
    case RunStatus::Budget: return "budget";
    case RunStatus::Idle: return "idle";
    case RunStatus::AllDone: return "all-done";
    case RunStatus::Fault: return "fault";
  }
  return "?";
}

Kernel::Kernel(iss::Cpu& cpu, RtosConfig config) : cpu_(cpu), config_(config) {}

void Kernel::load(const iss::Program& program) {
  program.load_into(cpu_.mem());

  // Kernel stubs at the top of memory: tiny guest shims that re-enter the
  // kernel. Thread functions return into exit_stub_; ISRs return into
  // iret_stub_.
  const std::uint32_t top = static_cast<std::uint32_t>(cpu_.mem().size());
  exit_stub_ = top - 16;
  iret_stub_ = top - 8;
  cpu_.mem().write32(exit_stub_, iss::encode({iss::Op::Addi, kA7, 0, 0,
                                              static_cast<std::int32_t>(Sys::Exit)}));
  cpu_.mem().write32(exit_stub_ + 4, iss::encode({iss::Op::Ecall, 0, 0, 0, 0}));
  cpu_.mem().write32(iret_stub_, iss::encode({iss::Op::Addi, kA7, 0, 0,
                                              static_cast<std::int32_t>(Sys::Iret)}));
  cpu_.mem().write32(iret_stub_ + 4, iss::encode({iss::Op::Ecall, 0, 0, 0, 0}));

  isr_stack_ = exit_stub_;                      // ISR stack grows down from the stubs
  stack_top_ = isr_stack_ - config_.stack_size;  // thread 0 stack below the ISR's

  threads_.clear();
  current_ = -1;
  last_scheduled_ = -1;
  in_isr_ = false;
  pending_ = Pending::None;

  int main_tid = create_thread(program.entry, 0);
  util::require(main_tid == 0, "Kernel::load: main thread creation failed");

  cpu_.set_ecall_handler([this](iss::Cpu&) { return handle_ecall(); });
}

int Kernel::create_thread(std::uint32_t entry, std::uint32_t arg) {
  if (threads_.size() >= config_.max_threads) return -1;
  int tid = static_cast<int>(threads_.size());
  Thread t;
  t.pc = entry;
  t.regs[kSp] = stack_top_ - config_.stack_size * static_cast<std::uint32_t>(tid);
  t.regs[kRa] = exit_stub_;
  t.regs[kA0] = arg;
  t.state = ThreadState::Ready;
  threads_.push_back(t);
  return tid;
}

int Kernel::register_driver(std::unique_ptr<Driver> driver) {
  util::require(driver != nullptr, "register_driver: null");
  drivers_.push_back(std::move(driver));
  return static_cast<int>(drivers_.size()) - 1;
}

Driver& Kernel::driver(int dev_id) {
  util::require(dev_id >= 0 && dev_id < static_cast<int>(drivers_.size()),
                "driver: bad device id");
  return *drivers_[static_cast<std::size_t>(dev_id)];
}

void Kernel::raise_irq(std::uint32_t irq) {
  std::lock_guard lock(irq_mutex_);
  pending_irqs_.push_back(irq);
}

int Kernel::live_threads() const noexcept {
  int n = 0;
  for (const Thread& t : threads_) {
    if (t.state != ThreadState::Done) ++n;
  }
  return n;
}

void Kernel::save_context(Thread& t) {
  for (std::uint8_t i = 0; i < 32; ++i) t.regs[i] = cpu_.reg(i);
  t.pc = cpu_.pc();
}

void Kernel::restore_context(const Thread& t) {
  for (std::uint8_t i = 1; i < 32; ++i) cpu_.set_reg(i, t.regs[i]);
  cpu_.set_pc(t.pc);
}

void Kernel::switch_to(int tid) {
  cpu_.add_cycles(config_.context_switch_cycles);
  ++stats_.context_switches;
  restore_context(threads_[static_cast<std::size_t>(tid)]);
  current_ = tid;
  last_scheduled_ = tid;
  timeslice_used_ = 0;
}

bool Kernel::retry_blocked_reads() {
  bool progressed = false;
  for (Thread& t : threads_) {
    if (t.state != ThreadState::Blocked) continue;
    Driver& drv = driver(t.blocked_dev);
    std::vector<std::uint8_t> buf(t.pending_len);
    std::size_t n = drv.read(buf);
    if (n == 0) continue;
    cpu_.mem().write_block(t.pending_buf, std::span<const std::uint8_t>(buf.data(), n));
    t.regs[kA0] = static_cast<std::uint32_t>(n);
    t.state = ThreadState::Ready;
    t.blocked_dev = -1;
    progressed = true;
  }
  return progressed;
}

bool Kernel::wake_due_sleepers() {
  bool woke = false;
  for (Thread& t : threads_) {
    if (t.state == ThreadState::Sleeping && t.wake_cycle <= cpu_.cycles()) {
      t.state = ThreadState::Ready;
      woke = true;
    }
  }
  return woke;
}

std::optional<int> Kernel::pick_ready(int after) const {
  const int n = static_cast<int>(threads_.size());
  for (int step = 1; step <= n; ++step) {
    int tid = (after + step) % n;
    if (tid < 0) tid += n;
    if (threads_[static_cast<std::size_t>(tid)].state == ThreadState::Ready) return tid;
  }
  return std::nullopt;
}

bool Kernel::dispatch_irq() {
  if (in_isr_) return false;
  std::uint32_t irq = 0;
  {
    std::lock_guard lock(irq_mutex_);
    if (pending_irqs_.empty()) return false;
    irq = pending_irqs_.front();
    pending_irqs_.pop_front();
  }
  auto it = irq_handlers_.find(irq);
  if (it == irq_handlers_.end()) {
    // No handler yet: hold the interrupt until one attaches.
    unclaimed_irqs_.push_back(irq);
    return false;
  }
  if (current_ >= 0) {
    save_context(threads_[static_cast<std::size_t>(current_)]);
  }
  interrupted_tid_ = current_;
  in_isr_ = true;
  current_ = -1;
  ++stats_.isr_dispatches;
  cpu_.add_cycles(config_.isr_entry_cycles);
  // Build the ISR execution context directly on the CPU.
  for (std::uint8_t i = 1; i < 32; ++i) cpu_.set_reg(i, 0);
  cpu_.set_reg(kSp, isr_stack_);
  cpu_.set_reg(kRa, iret_stub_);
  cpu_.set_reg(kA0, irq);
  cpu_.set_pc(it->second);
  return true;
}

iss::Cpu::EcallResult Kernel::handle_ecall() {
  ++stats_.syscalls;
  cpu_.add_cycles(config_.syscall_overhead_cycles);
  const std::uint32_t num = cpu_.reg(kA7);
  const std::uint32_t a0 = cpu_.reg(kA0);
  const std::uint32_t a1 = cpu_.reg(kA1);
  const std::uint32_t a2 = cpu_.reg(kA2);
  switch (static_cast<Sys>(num)) {
    case Sys::Exit:
      pending_ = Pending::Exit;
      return iss::Cpu::EcallResult::Halt;
    case Sys::Yield:
      pending_ = Pending::Yield;
      return iss::Cpu::EcallResult::Halt;
    case Sys::Sleep:
      pending_ = Pending::Sleep;
      pending_sleep_ = a0;
      return iss::Cpu::EcallResult::Halt;
    case Sys::DevWrite: {
      if (a0 >= drivers_.size()) {
        cpu_.set_reg(kA0, ~0u);
        return iss::Cpu::EcallResult::Handled;
      }
      auto data = cpu_.mem().read_block(a1, a2);
      std::size_t n = drivers_[a0]->write(data);
      cpu_.set_reg(kA0, static_cast<std::uint32_t>(n));
      return iss::Cpu::EcallResult::Handled;
    }
    case Sys::DevRead: {
      if (a0 >= drivers_.size()) {
        cpu_.set_reg(kA0, ~0u);
        return iss::Cpu::EcallResult::Handled;
      }
      std::vector<std::uint8_t> buf(a2);
      std::size_t n = drivers_[a0]->read(buf);
      if (n > 0) {
        cpu_.mem().write_block(a1, std::span<const std::uint8_t>(buf.data(), n));
        cpu_.set_reg(kA0, static_cast<std::uint32_t>(n));
        return iss::Cpu::EcallResult::Handled;
      }
      pending_ = Pending::BlockRead;
      pending_dev_ = static_cast<int>(a0);
      pending_read_buf_ = a1;
      pending_read_len_ = a2;
      return iss::Cpu::EcallResult::Halt;
    }
    case Sys::IrqAttach: {
      irq_handlers_[a0] = a1;
      // Re-arm any interrupt that arrived before the handler existed.
      auto held = std::partition(unclaimed_irqs_.begin(), unclaimed_irqs_.end(),
                                 [&](std::uint32_t irq) { return irq != a0; });
      if (held != unclaimed_irqs_.end()) {
        std::lock_guard lock(irq_mutex_);
        for (auto it = held; it != unclaimed_irqs_.end(); ++it) pending_irqs_.push_back(*it);
      }
      unclaimed_irqs_.erase(held, unclaimed_irqs_.end());
      cpu_.set_reg(kA0, 0);
      return iss::Cpu::EcallResult::Handled;
    }
    case Sys::ThreadCreate: {
      int tid = create_thread(a0, a1);
      cpu_.set_reg(kA0, static_cast<std::uint32_t>(tid));
      return iss::Cpu::EcallResult::Handled;
    }
    case Sys::GetTid:
      cpu_.set_reg(kA0, static_cast<std::uint32_t>(current_));
      return iss::Cpu::EcallResult::Handled;
    case Sys::Putc:
      console_.push_back(static_cast<char>(a0));
      return iss::Cpu::EcallResult::Handled;
    case Sys::Iret:
      pending_ = Pending::Iret;
      return iss::Cpu::EcallResult::Halt;
    default:
      cpu_.set_reg(kA0, ~0u);
      return iss::Cpu::EcallResult::Handled;
  }
}

RunStatus Kernel::run(std::uint64_t max_instructions) {
  util::require(!threads_.empty(), "Kernel::run before load");
  const std::uint64_t start = cpu_.instret();
  auto used = [&] { return cpu_.instret() - start; };

  while (used() < max_instructions) {
    dispatch_irq();

    if (current_ < 0 && !in_isr_) {
      retry_blocked_reads();
      wake_due_sleepers();
      auto next = pick_ready(last_scheduled_);
      if (!next) {
        if (live_threads() == 0) return RunStatus::AllDone;
        // Fast-forward to the earliest sleeper if one exists.
        std::uint64_t earliest = ~0ULL;
        for (const Thread& t : threads_) {
          if (t.state == ThreadState::Sleeping) earliest = std::min(earliest, t.wake_cycle);
        }
        if (earliest != ~0ULL) {
          if (earliest > cpu_.cycles()) cpu_.add_cycles(earliest - cpu_.cycles());
          ++stats_.idle_wakeups;
          wake_due_sleepers();
          continue;
        }
        return RunStatus::Idle;  // everything blocked on device I/O
      }
      switch_to(*next);
    }

    const std::uint64_t slice = std::min(config_.slice, max_instructions - used());
    if (slice == 0) break;
    iss::Halt halt = cpu_.run(slice);

    if (halt == iss::Halt::Quantum) {
      timeslice_used_ += slice;
      if (!in_isr_ && timeslice_used_ >= config_.timeslice) {
        // Round-robin preemption when someone else is ready.
        if (pick_ready(current_).value_or(current_) != current_) {
          save_context(threads_[static_cast<std::size_t>(current_)]);
          threads_[static_cast<std::size_t>(current_)].state = ThreadState::Ready;
          current_ = -1;
        } else {
          timeslice_used_ = 0;
        }
      }
      continue;
    }

    if (halt == iss::Halt::Ecall) {
      Pending pending = pending_;
      pending_ = Pending::None;
      if (in_isr_) {
        if (pending == Pending::Iret) {
          in_isr_ = false;
          cpu_.add_cycles(config_.isr_exit_cycles);
          if (interrupted_tid_ >= 0) {
            restore_context(threads_[static_cast<std::size_t>(interrupted_tid_)]);
            current_ = interrupted_tid_;
          }
          interrupted_tid_ = -1;
          continue;
        }
        // Blocking syscalls inside an ISR are a guest bug.
        last_fault_ = iss::Halt::Ecall;
        return RunStatus::Fault;
      }
      Thread& t = threads_[static_cast<std::size_t>(current_)];
      switch (pending) {
        case Pending::Exit:
          t.state = ThreadState::Done;
          break;
        case Pending::Yield:
          save_context(t);
          t.state = ThreadState::Ready;
          break;
        case Pending::Sleep:
          save_context(t);
          t.state = ThreadState::Sleeping;
          t.wake_cycle = cpu_.cycles() + pending_sleep_;
          break;
        case Pending::BlockRead:
          save_context(t);
          t.state = ThreadState::Blocked;
          t.blocked_dev = pending_dev_;
          t.pending_buf = pending_read_buf_;
          t.pending_len = pending_read_len_;
          break;
        case Pending::Iret:
          last_fault_ = iss::Halt::Ecall;  // iret outside ISR: guest bug
          return RunStatus::Fault;
        case Pending::None:
          break;  // handler returned Halt without setting pending: ignore
      }
      current_ = -1;
      continue;
    }

    if (halt == iss::Halt::Ebreak) {
      // Treat ebreak as thread exit: lets bare test programs terminate.
      if (in_isr_) {
        last_fault_ = halt;
        return RunStatus::Fault;
      }
      threads_[static_cast<std::size_t>(current_)].state = ThreadState::Done;
      current_ = -1;
      continue;
    }

    last_fault_ = halt;
    return RunStatus::Fault;
  }
  return RunStatus::Budget;
}

}  // namespace nisc::rtos
