// An eCos-like RTOS model running on the ISS.
//
// The paper's Driver-Kernel scheme assumes an operating system on the
// simulated CPU (eCos on the i386 synthetic target) exposing device-driver
// APIs and interrupt service routines. This module models that OS at the
// syscall boundary: guest code executes natively on the RV32 ISS and enters
// the kernel through `ecall`; the kernel itself (scheduler, driver registry,
// ISR dispatch) runs host-side but charges configurable *guest cycles* for
// every OS service, so OS overhead is visible to the co-simulated timing —
// exactly the effect the paper measures in Figure 7.
//
// Guest ABI (all syscalls: number in a7, args in a0..a2, result in a0):
//
//   0 SYS_EXIT                      terminate calling thread
//   1 SYS_YIELD                     round-robin reschedule
//   2 SYS_SLEEP   (a0=cycles)       sleep for a0 CPU cycles
//   3 SYS_DEV_WRITE (a0=dev, a1=buf, a2=len)  -> bytes written
//   4 SYS_DEV_READ  (a0=dev, a1=buf, a2=len)  -> bytes read (blocks if none)
//   5 SYS_IRQ_ATTACH (a0=irq, a1=handler)     register an ISR
//   6 SYS_THREAD_CREATE (a0=entry, a1=arg)    -> new tid
//   7 SYS_GETTID                              -> tid
//   8 SYS_PUTC    (a0=char)        debug console
//   9 SYS_IRET                     return from ISR (emitted by the kernel stub)
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "iss/cpu.hpp"
#include "iss/program.hpp"

namespace nisc::rtos {

/// Syscall numbers of the guest ABI.
enum class Sys : std::uint32_t {
  Exit = 0,
  Yield = 1,
  Sleep = 2,
  DevWrite = 3,
  DevRead = 4,
  IrqAttach = 5,
  ThreadCreate = 6,
  GetTid = 7,
  Putc = 8,
  Iret = 9,
};

/// Assembly prelude defining SYS_* constants; prepend to guest sources.
std::string guest_abi_prelude();

/// A device driver registered with the kernel. read()/write() are called on
/// the kernel's (target) thread.
class Driver {
 public:
  virtual ~Driver() = default;
  virtual std::string_view name() const noexcept = 0;
  /// Consumes `data` from the guest; returns bytes accepted.
  virtual std::size_t write(std::span<const std::uint8_t> data) = 0;
  /// Produces bytes for the guest; returns bytes copied (0 = would block).
  virtual std::size_t read(std::span<std::uint8_t> out) = 0;
};

/// OS cost model and memory layout knobs.
struct RtosConfig {
  std::uint32_t max_threads = 8;
  std::uint32_t stack_size = 0x800;
  /// Guest cycles charged per OS service (the Figure 7 overheads).
  std::uint32_t context_switch_cycles = 150;
  std::uint32_t syscall_overhead_cycles = 80;
  std::uint32_t isr_entry_cycles = 120;
  std::uint32_t isr_exit_cycles = 60;
  /// Round-robin timeslice in instructions.
  std::uint64_t timeslice = 1024;
  /// Instructions per inner run slice (bounds ISR dispatch latency).
  std::uint64_t slice = 256;
};

/// Why Kernel::run returned.
enum class RunStatus : std::uint8_t {
  Budget,   ///< instruction budget exhausted
  Idle,     ///< every live thread is blocked on device I/O
  AllDone,  ///< every thread exited
  Fault,    ///< a guest thread faulted (illegal instruction, bad memory, ...)
};

const char* run_status_name(RunStatus status) noexcept;

struct RtosStats {
  std::uint64_t syscalls = 0;
  std::uint64_t context_switches = 0;
  std::uint64_t isr_dispatches = 0;
  std::uint64_t idle_wakeups = 0;
};

class Kernel {
 public:
  explicit Kernel(iss::Cpu& cpu, RtosConfig config = {});

  /// Loads the program image, installs kernel stubs and creates the main
  /// thread (tid 0) at the program entry.
  void load(const iss::Program& program);

  /// Registers a driver; returns its device id for SYS_DEV_* calls.
  int register_driver(std::unique_ptr<Driver> driver);
  Driver& driver(int dev_id);

  /// Queues an interrupt for dispatch. Thread-safe (callable from the
  /// listener thread receiving the socket-interrupt-port messages).
  void raise_irq(std::uint32_t irq);

  /// Runs guest threads for up to `max_instructions`.
  RunStatus run(std::uint64_t max_instructions);

  // -- inspection --------------------------------------------------------

  int thread_count() const noexcept { return static_cast<int>(threads_.size()); }
  int live_threads() const noexcept;
  int current_tid() const noexcept { return current_; }
  bool in_isr() const noexcept { return in_isr_; }
  const std::string& console() const noexcept { return console_; }
  const RtosStats& stats() const noexcept { return stats_; }
  iss::Halt last_fault() const noexcept { return last_fault_; }

 private:
  enum class ThreadState : std::uint8_t { Ready, Blocked, Sleeping, Done };

  struct Thread {
    std::array<std::uint32_t, 32> regs{};
    std::uint32_t pc = 0;
    ThreadState state = ThreadState::Ready;
    std::uint64_t wake_cycle = 0;       // Sleeping
    int blocked_dev = -1;               // Blocked on SYS_DEV_READ
    std::uint32_t pending_buf = 0;      // guest buffer of the blocked read
    std::uint32_t pending_len = 0;
  };

  /// What the last ecall asked the scheduler to do.
  enum class Pending : std::uint8_t { None, Exit, Yield, Sleep, BlockRead, Iret };

  iss::Cpu::EcallResult handle_ecall();
  void save_context(Thread& t);
  void restore_context(const Thread& t);
  void switch_to(int tid);
  bool retry_blocked_reads();
  bool wake_due_sleepers();
  std::optional<int> pick_ready(int after) const;
  bool dispatch_irq();
  int create_thread(std::uint32_t entry, std::uint32_t arg);

  iss::Cpu& cpu_;
  RtosConfig config_;
  std::vector<Thread> threads_;
  std::vector<std::unique_ptr<Driver>> drivers_;
  int current_ = -1;

  // ISR state: one interrupt level (nested irqs queue up). Interrupts that
  // arrive before a handler is attached stay pending (level-triggered
  // semantics) and fire on attach.
  std::map<std::uint32_t, std::uint32_t> irq_handlers_;
  std::deque<std::uint32_t> pending_irqs_;
  std::vector<std::uint32_t> unclaimed_irqs_;
  std::mutex irq_mutex_;
  bool in_isr_ = false;
  Thread interrupted_;  // context saved across the ISR
  int interrupted_tid_ = -1;

  Pending pending_ = Pending::None;
  std::uint64_t pending_sleep_ = 0;
  int pending_dev_ = -1;
  std::uint32_t pending_read_buf_ = 0;
  std::uint32_t pending_read_len_ = 0;
  std::uint64_t timeslice_used_ = 0;
  int last_scheduled_ = -1;

  std::uint32_t exit_stub_ = 0;
  std::uint32_t iret_stub_ = 0;
  std::uint32_t stack_top_ = 0;
  std::uint32_t isr_stack_ = 0;

  std::string console_;
  RtosStats stats_;
  iss::Halt last_fault_ = iss::Halt::None;
};

}  // namespace nisc::rtos
