// Instruction-trace support for the ISS: a bounded ring buffer of the most
// recently retired instructions, dumpable with disassembly — the tool one
// reaches for when a co-simulated guest misbehaves.
#pragma once

#include <deque>
#include <string>

#include "iss/cpu.hpp"

namespace nisc::iss {

/// One retired instruction.
struct TraceEntry {
  std::uint32_t pc = 0;
  std::uint32_t word = 0;
  std::uint64_t instret = 0;
};

/// Attaches to a Cpu and records every retired instruction into a ring
/// buffer of fixed capacity. Detaches automatically on destruction.
class ExecutionTracer {
 public:
  ExecutionTracer(Cpu& cpu, std::size_t capacity = 64);
  ~ExecutionTracer();

  ExecutionTracer(const ExecutionTracer&) = delete;
  ExecutionTracer& operator=(const ExecutionTracer&) = delete;

  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t size() const noexcept { return entries_.size(); }
  std::uint64_t total_recorded() const noexcept { return total_; }
  const std::deque<TraceEntry>& entries() const noexcept { return entries_; }

  /// Formats the buffered tail as a table with an "instret  pc  disassembly"
  /// header. When more instructions were retired than the ring holds, the
  /// header is followed by a "... N earlier instruction(s) evicted ..."
  /// marker so a truncated dump cannot be mistaken for the full history.
  std::string dump() const;

  /// Clears the buffer (counters keep running).
  void clear() noexcept { entries_.clear(); }

 private:
  void record(std::uint32_t pc, std::uint32_t word);

  Cpu& cpu_;
  std::size_t capacity_;
  std::deque<TraceEntry> entries_;
  std::uint64_t total_ = 0;
};

}  // namespace nisc::iss
