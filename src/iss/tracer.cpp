#include "iss/tracer.hpp"

#include <cstdio>

#include "util/error.hpp"

namespace nisc::iss {

ExecutionTracer::ExecutionTracer(Cpu& cpu, std::size_t capacity)
    : cpu_(cpu), capacity_(capacity) {
  util::require(capacity_ > 0, "ExecutionTracer: capacity must be positive");
  cpu_.set_trace_hook([this](std::uint32_t pc, std::uint32_t word) { record(pc, word); });
}

ExecutionTracer::~ExecutionTracer() { cpu_.set_trace_hook(nullptr); }

void ExecutionTracer::record(std::uint32_t pc, std::uint32_t word) {
  if (entries_.size() >= capacity_) entries_.pop_front();
  entries_.push_back(TraceEntry{pc, word, cpu_.instret()});
  ++total_;
}

std::string ExecutionTracer::dump() const {
  std::string out;
  char line[96];
  out += "   instret        pc  disassembly\n";
  if (total_ > entries_.size()) {
    std::snprintf(line, sizeof(line), "  ... %llu earlier instruction(s) evicted ...\n",
                  static_cast<unsigned long long>(total_ - entries_.size()));
    out += line;
  }
  for (const TraceEntry& e : entries_) {
    std::snprintf(line, sizeof(line), "  %8llu  %08x: %s\n",
                  static_cast<unsigned long long>(e.instret), e.pc,
                  disassemble(decode(e.word)).c_str());
    out += line;
  }
  return out;
}

}  // namespace nisc::iss
