// An assembled guest program: raw image, symbols, entry point.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "iss/memory.hpp"
#include "util/error.hpp"

namespace nisc::iss {

/// Output of the assembler; loadable into the ISS memory. Symbols map guest
/// labels (the paper's "variables of the application") to addresses, which
/// is what the co-simulation layer binds breakpoints and iss ports to.
struct Program {
  std::uint32_t base = 0;
  std::vector<std::uint8_t> bytes;
  std::map<std::string, std::uint32_t> symbols;
  std::uint32_t entry = 0;

  bool has_symbol(const std::string& name) const { return symbols.count(name) > 0; }

  /// Address of `name`; throws RuntimeError when undefined.
  std::uint32_t symbol(const std::string& name) const {
    auto it = symbols.find(name);
    if (it == symbols.end()) throw util::RuntimeError("undefined symbol: " + name);
    return it->second;
  }

  std::uint32_t end_address() const noexcept {
    return base + static_cast<std::uint32_t>(bytes.size());
  }

  /// Copies the image into guest memory at its base address.
  void load_into(Memory& mem) const { mem.write_block(base, bytes); }
};

}  // namespace nisc::iss
