// An assembled guest program: raw image, symbols, entry point.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "iss/memory.hpp"
#include "util/error.hpp"

namespace nisc::iss {

/// Where one assembled instruction word landed: its address and the 1-based
/// source line it came from. Pseudo-instructions that expand to two words
/// (li/la) contribute two entries sharing one line.
struct CodeLoc {
  std::uint32_t addr = 0;
  int line = 0;

  bool operator==(const CodeLoc&) const = default;
};

/// Output of the assembler; loadable into the ISS memory. Symbols map guest
/// labels (the paper's "variables of the application") to addresses, which
/// is what the co-simulation layer binds breakpoints and iss ports to.
struct Program {
  std::uint32_t base = 0;
  std::vector<std::uint8_t> bytes;
  std::map<std::string, std::uint32_t> symbols;
  std::uint32_t entry = 0;

  /// Every emitted instruction word in ascending address order — the code /
  /// data discrimination and line table the flow analyzer builds its CFG on.
  std::vector<CodeLoc> code;

  /// Addresses of symbols whose value was materialized into a register or a
  /// data word (la/li/.word/...): the conservative target set for indirect
  /// jumps (jr through a jump table).
  std::set<std::uint32_t> address_taken;

  bool has_symbol(const std::string& name) const { return symbols.count(name) > 0; }

  /// Address of `name`; throws RuntimeError when undefined.
  std::uint32_t symbol(const std::string& name) const {
    auto it = symbols.find(name);
    if (it == symbols.end()) throw util::RuntimeError("undefined symbol: " + name);
    return it->second;
  }

  std::uint32_t end_address() const noexcept {
    return base + static_cast<std::uint32_t>(bytes.size());
  }

  /// Copies the image into guest memory at its base address.
  void load_into(Memory& mem) const { mem.write_block(base, bytes); }
};

}  // namespace nisc::iss
