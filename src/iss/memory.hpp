// Flat little-endian guest memory with bounds checking.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/error.hpp"

namespace nisc::iss {

// GCC 12's jump threading duplicates the byte accesses onto the out-of-bounds
// path that check() terminates with a throw, producing -Warray-bounds and
// -Wstringop-overflow reports for code that can never execute (GCC PR106297).
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Warray-bounds"
#pragma GCC diagnostic ignored "-Wstringop-overflow"
#endif

/// The ISS's byte-addressed memory. Accesses outside [0, size) throw
/// RuntimeError (the CPU converts this into a MemoryFault halt).
class Memory {
 public:
  explicit Memory(std::size_t size = 1 << 20) : bytes_(size, 0) {}

  std::size_t size() const noexcept { return bytes_.size(); }

  std::uint8_t read8(std::uint32_t addr) const {
    check(addr, 1);
    return bytes_[addr];
  }
  std::uint16_t read16(std::uint32_t addr) const {
    check(addr, 2);
    return static_cast<std::uint16_t>(bytes_[addr] | (bytes_[addr + 1] << 8));
  }
  std::uint32_t read32(std::uint32_t addr) const {
    check(addr, 4);
    return static_cast<std::uint32_t>(bytes_[addr]) |
           (static_cast<std::uint32_t>(bytes_[addr + 1]) << 8) |
           (static_cast<std::uint32_t>(bytes_[addr + 2]) << 16) |
           (static_cast<std::uint32_t>(bytes_[addr + 3]) << 24);
  }

  void write8(std::uint32_t addr, std::uint8_t value) {
    check(addr, 1);
    bytes_[addr] = value;
  }
  void write16(std::uint32_t addr, std::uint16_t value) {
    check(addr, 2);
    bytes_[addr] = static_cast<std::uint8_t>(value);
    bytes_[addr + 1] = static_cast<std::uint8_t>(value >> 8);
  }
  void write32(std::uint32_t addr, std::uint32_t value) {
    check(addr, 4);
    bytes_[addr] = static_cast<std::uint8_t>(value);
    bytes_[addr + 1] = static_cast<std::uint8_t>(value >> 8);
    bytes_[addr + 2] = static_cast<std::uint8_t>(value >> 16);
    bytes_[addr + 3] = static_cast<std::uint8_t>(value >> 24);
  }

  /// Bulk copy into guest memory (program loading, debugger writes).
  void write_block(std::uint32_t addr, std::span<const std::uint8_t> data) {
    check(addr, data.size());
    std::copy(data.begin(), data.end(), bytes_.begin() + addr);
  }

  /// Bulk copy out of guest memory (debugger reads).
  std::vector<std::uint8_t> read_block(std::uint32_t addr, std::size_t len) const {
    check(addr, len);
    return {bytes_.begin() + addr, bytes_.begin() + addr + len};
  }

  /// Zeroes all of memory.
  void clear() noexcept { std::fill(bytes_.begin(), bytes_.end(), 0); }

  /// Read-only view over the whole address space (checkpoint page scan).
  std::span<const std::uint8_t> bytes() const noexcept { return bytes_; }

 private:
  void check(std::uint32_t addr, std::size_t len) const {
    if (static_cast<std::uint64_t>(addr) + len > bytes_.size()) {
      throw util::RuntimeError("memory access out of bounds at 0x" + std::to_string(addr));
    }
  }

  std::vector<std::uint8_t> bytes_;
};

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

}  // namespace nisc::iss
