// RV32IM instruction set: opcodes, decode, encode and disassembly.
//
// The niscosim ISS executes the RV32I base integer ISA plus the M extension
// (the paper used an i386 synthetic target; any GDB-debuggable ISA serves —
// see DESIGN.md). Encodings follow the RISC-V unprivileged specification so
// the decoder and the assembler are mutually checkable.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace nisc::iss {

/// All instructions the ISS executes. Illegal marks undecodable words.
enum class Op : std::uint8_t {
  // RV32I
  Lui, Auipc, Jal, Jalr,
  Beq, Bne, Blt, Bge, Bltu, Bgeu,
  Lb, Lh, Lw, Lbu, Lhu,
  Sb, Sh, Sw,
  Addi, Slti, Sltiu, Xori, Ori, Andi, Slli, Srli, Srai,
  Add, Sub, Sll, Slt, Sltu, Xor, Srl, Sra, Or, And,
  Fence, Ecall, Ebreak,
  // M extension
  Mul, Mulh, Mulhsu, Mulhu, Div, Divu, Rem, Remu,
  Illegal,
};

/// Mnemonic for an Op ("addi", "lw", ...).
std::string_view op_name(Op op) noexcept;

/// A decoded instruction. Fields not used by the format are zero.
struct Instr {
  Op op = Op::Illegal;
  std::uint8_t rd = 0;
  std::uint8_t rs1 = 0;
  std::uint8_t rs2 = 0;
  std::int32_t imm = 0;

  bool operator==(const Instr&) const = default;
};

/// Decodes one 32-bit instruction word.
Instr decode(std::uint32_t word) noexcept;

/// Encodes a decoded instruction back to its word. Inverse of decode for
/// all legal instructions. Throws LogicError on Illegal or malformed fields.
std::uint32_t encode(const Instr& instr);

/// Human-readable rendering, e.g. "addi x5, x0, 42".
std::string disassemble(const Instr& instr);

/// ABI register name ("zero", "ra", "sp", ..., "t6").
std::string_view reg_abi_name(std::uint8_t reg) noexcept;

/// Parses "x0".."x31" or an ABI name; nullopt if unknown.
std::optional<std::uint8_t> parse_reg(std::string_view name) noexcept;

/// True when `imm` fits the 12-bit signed immediate of I/S-type formats.
constexpr bool fits_imm12(std::int64_t imm) noexcept { return imm >= -2048 && imm <= 2047; }

/// True when `offset` fits the B-type branch range (±4 KiB, even).
constexpr bool fits_branch(std::int64_t offset) noexcept {
  return offset >= -4096 && offset <= 4094 && (offset & 1) == 0;
}

/// True when `offset` fits the J-type jump range (±1 MiB, even).
constexpr bool fits_jump(std::int64_t offset) noexcept {
  return offset >= -1048576 && offset <= 1048574 && (offset & 1) == 0;
}

}  // namespace nisc::iss
