// A two-pass RV32IM assembler.
//
// Lets guest programs (the paper's checksum application, the RTOS test
// workloads) be written as strings and assembled at run time, removing any
// dependency on an external cross toolchain.
//
// Supported syntax:
//   label:                         # also on their own line
//   addi a0, a1, -4                # all RV32IM instructions, ABI reg names
//   lw   a0, 8(sp)                 # loads/stores with imm(reg) or (reg)
//   beq  a0, a1, loop              # branch/jump targets: labels or numbers
//   li / la / mv / not / neg / nop / j / jr / call / ret / seqz / snez
//   beqz bnez bltz bgez bgtz blez bgt ble bgtu bleu    # pseudo-instructions
//   .org .word .half .byte .ascii .asciz .space .align .equ .globl
//   # ; //                         comments
//
// Errors throw util::RuntimeError with "line N: ..." messages.
#pragma once

#include <string_view>

#include "iss/program.hpp"

namespace nisc::iss {

/// Assembles `source` into a loadable program. `base` is the load address
/// of the first byte. Entry is the `_start` symbol when present, else base.
Program assemble(std::string_view source, std::uint32_t base = 0);

}  // namespace nisc::iss
