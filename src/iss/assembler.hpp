// A two-pass RV32IM assembler.
//
// Lets guest programs (the paper's checksum application, the RTOS test
// workloads) be written as strings and assembled at run time, removing any
// dependency on an external cross toolchain.
//
// Supported syntax:
//   label:                         # also on their own line
//   addi a0, a1, -4                # all RV32IM instructions, ABI reg names
//   lw   a0, 8(sp)                 # loads/stores with imm(reg) or (reg)
//   beq  a0, a1, loop              # branch/jump targets: labels or numbers
//   li / la / mv / not / neg / nop / j / jr / call / ret / seqz / snez
//   beqz bnez bltz bgez bgtz blez bgt ble bgtu bleu    # pseudo-instructions
//   .org .word .half .byte .ascii .asciz .space .align .equ .globl
//   # ; //                         comments
//
// Errors throw util::RuntimeError with "line N: ..." messages; assemble_all
// collects every error in one pass instead.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "iss/program.hpp"

namespace nisc::iss {

/// One assembly error, located at its 1-based source line.
struct AsmError {
  int line = 0;
  std::string message;
  /// True for duplicate label / .equ definitions (the first definition wins).
  bool label_redefined = false;
};

/// Best-effort program plus every error found in one pass. When `errors` is
/// non-empty the program image is incomplete: statements that failed emit
/// nothing and later addresses may have shifted.
struct AssembleResult {
  Program program;
  std::vector<AsmError> errors;

  bool ok() const noexcept { return errors.empty(); }
};

/// Assembles `source` into a loadable program. `base` is the load address
/// of the first byte. Entry is the `_start` symbol when present, else base.
/// Throws RuntimeError with the first error ("line N: ..." message).
Program assemble(std::string_view source, std::uint32_t base = 0);

/// Like assemble(), but keeps going after an error and reports all of them,
/// sorted by line, instead of throwing.
AssembleResult assemble_all(std::string_view source, std::uint32_t base = 0);

}  // namespace nisc::iss
