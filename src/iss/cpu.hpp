// The RV32IM instruction-set simulator core.
//
// Execution model: step() runs exactly one instruction; run(max) executes
// until a halt condition (breakpoint, watchpoint, ebreak, unhandled ecall,
// fault) or until `max` instructions have retired (Halt::Quantum), which is
// how the co-simulation layer meters guest execution against SystemC time.
//
// Breakpoint semantics follow GDB: execution stops with pc *at* the
// breakpointed instruction, before executing it; continuing from a
// breakpoint first steps over it.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>

#include "iss/isa.hpp"
#include "iss/memory.hpp"

namespace nisc::iss {

/// Why the CPU stopped (or didn't).
enum class Halt : std::uint8_t {
  None,         ///< still running (only returned by step())
  Breakpoint,   ///< pc reached a breakpoint
  Watchpoint,   ///< a write watchpoint fired
  Ebreak,       ///< EBREAK executed
  Ecall,        ///< ECALL executed and no handler claimed it
  Quantum,      ///< instruction budget exhausted (run(max) only)
  IllegalInstruction,
  MemoryFault,
  Stopped,      ///< stop() was requested externally
};

const char* halt_name(Halt halt) noexcept;

/// Synthetic per-instruction cycle costs (documented in DESIGN.md). They
/// give guest code a plausible, configurable notion of CPU time for the
/// paper's Figure 7 experiment.
struct CycleModel {
  std::uint32_t base = 1;          ///< every instruction
  std::uint32_t load_store = 1;    ///< extra for memory ops
  std::uint32_t branch_taken = 1;  ///< extra for taken branches/jumps
  std::uint32_t mul = 3;           ///< extra for MUL*
  std::uint32_t div = 16;          ///< extra for DIV*/REM*
};

class Cpu {
 public:
  /// Result of an ecall handler.
  enum class EcallResult : std::uint8_t {
    Handled,  ///< syscall serviced; execution continues
    Halt,     ///< surface Halt::Ecall to the run loop
  };
  using EcallHandler = std::function<EcallResult(Cpu&)>;

  explicit Cpu(std::size_t mem_size = 1 << 20) : mem_(mem_size) { reset(); }

  /// Resets registers, pc and counters (memory is preserved).
  void reset(std::uint32_t pc = 0) noexcept;

  // -- architectural state --------------------------------------------------

  std::uint32_t reg(std::uint8_t index) const { return regs_.at(index); }
  void set_reg(std::uint8_t index, std::uint32_t value) {
    if (index != 0) regs_.at(index) = value;
  }
  std::uint32_t pc() const noexcept { return pc_; }
  void set_pc(std::uint32_t pc) noexcept { pc_ = pc; }

  Memory& mem() noexcept { return mem_; }
  const Memory& mem() const noexcept { return mem_; }

  std::uint64_t instret() const noexcept { return instret_; }
  std::uint64_t cycles() const noexcept { return cycles_; }
  /// Charges extra cycles (used by the RTOS model for OS overhead).
  void add_cycles(std::uint64_t n) noexcept { cycles_ += n; }

  // -- checkpoint interface (cosim/checkpoint.hpp) ---------------------------

  /// Overwrites the retirement/cycle counters with snapshot values. Only the
  /// checkpoint restore path may call this: the counters otherwise advance
  /// solely through execution.
  void restore_counters(std::uint64_t instret, std::uint64_t cycles) noexcept {
    instret_ = instret;
    cycles_ = cycles;
  }
  /// Overwrites the last-halt reason with a snapshot value.
  void restore_halt(Halt halt) noexcept { last_halt_ = halt; }

  CycleModel& cycle_model() noexcept { return cycle_model_; }
  const CycleModel& cycle_model() const noexcept { return cycle_model_; }

  // -- debug interface (GDB stub) --------------------------------------------

  void add_breakpoint(std::uint32_t addr) { breakpoints_.insert(addr); }
  void remove_breakpoint(std::uint32_t addr) noexcept { breakpoints_.erase(addr); }
  bool has_breakpoint(std::uint32_t addr) const noexcept { return breakpoints_.count(addr) > 0; }
  std::size_t breakpoint_count() const noexcept { return breakpoints_.size(); }
  const std::set<std::uint32_t>& breakpoints() const noexcept { return breakpoints_; }

  /// Write watchpoint over [addr, addr+len).
  void add_watchpoint(std::uint32_t addr, std::uint32_t len) { watchpoints_[addr] = len; }
  void remove_watchpoint(std::uint32_t addr) noexcept { watchpoints_.erase(addr); }
  const std::map<std::uint32_t, std::uint32_t>& watchpoints() const noexcept {
    return watchpoints_;
  }

  /// Address whose watchpoint fired last (valid after Halt::Watchpoint).
  std::uint32_t watch_hit_addr() const noexcept { return watch_hit_addr_; }

  /// Requests the current/next run() to stop (callable from other threads
  /// only between run() calls; the co-simulation layer serializes access).
  void request_stop() noexcept { stop_requested_ = true; }

  // -- execution --------------------------------------------------------------

  void set_ecall_handler(EcallHandler handler) { ecall_handler_ = std::move(handler); }

  /// Optional per-instruction trace hook, invoked with (pc, raw word) just
  /// before each decoded instruction executes. Costs one branch when unset.
  using TraceHook = std::function<void(std::uint32_t pc, std::uint32_t word)>;
  void set_trace_hook(TraceHook hook) { trace_hook_ = std::move(hook); }

  /// Executes one instruction. Returns Halt::None while running.
  Halt step();

  /// Runs until a halt condition or `max_instructions` retirements.
  Halt run(std::uint64_t max_instructions);

  /// Last halt reason returned by run().
  Halt last_halt() const noexcept { return last_halt_; }

 private:
  Halt execute(const Instr& instr);
  bool check_watch(std::uint32_t addr, std::uint32_t len) noexcept;

  Memory mem_;
  std::array<std::uint32_t, 32> regs_{};
  std::uint32_t pc_ = 0;
  std::uint64_t instret_ = 0;
  std::uint64_t cycles_ = 0;
  CycleModel cycle_model_;
  std::set<std::uint32_t> breakpoints_;
  std::map<std::uint32_t, std::uint32_t> watchpoints_;
  std::uint32_t watch_hit_addr_ = 0;
  bool watch_pending_ = false;
  bool stop_requested_ = false;
  Halt last_halt_ = Halt::None;
  EcallHandler ecall_handler_;
  TraceHook trace_hook_;
};

}  // namespace nisc::iss
