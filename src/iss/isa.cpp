#include "iss/isa.hpp"

#include <array>
#include <cstdio>

#include "util/error.hpp"

namespace nisc::iss {
namespace {

constexpr std::uint32_t kOpLui = 0b0110111;
constexpr std::uint32_t kOpAuipc = 0b0010111;
constexpr std::uint32_t kOpJal = 0b1101111;
constexpr std::uint32_t kOpJalr = 0b1100111;
constexpr std::uint32_t kOpBranch = 0b1100011;
constexpr std::uint32_t kOpLoad = 0b0000011;
constexpr std::uint32_t kOpStore = 0b0100011;
constexpr std::uint32_t kOpOpImm = 0b0010011;
constexpr std::uint32_t kOpOp = 0b0110011;
constexpr std::uint32_t kOpMiscMem = 0b0001111;
constexpr std::uint32_t kOpSystem = 0b1110011;

std::int32_t sign_extend(std::uint32_t value, unsigned bits) noexcept {
  std::uint32_t mask = 1u << (bits - 1);
  return static_cast<std::int32_t>((value ^ mask) - mask);
}

std::uint32_t imm_i(std::uint32_t w) noexcept { return w >> 20; }
std::uint32_t imm_s(std::uint32_t w) noexcept { return ((w >> 25) << 5) | ((w >> 7) & 0x1F); }
std::uint32_t imm_b(std::uint32_t w) noexcept {
  return (((w >> 31) & 1) << 12) | (((w >> 7) & 1) << 11) | (((w >> 25) & 0x3F) << 5) |
         (((w >> 8) & 0xF) << 1);
}
std::uint32_t imm_u(std::uint32_t w) noexcept { return w & 0xFFFFF000; }
std::uint32_t imm_j(std::uint32_t w) noexcept {
  return (((w >> 31) & 1) << 20) | (((w >> 12) & 0xFF) << 12) | (((w >> 20) & 1) << 11) |
         (((w >> 21) & 0x3FF) << 1);
}

}  // namespace

std::string_view op_name(Op op) noexcept {
  switch (op) {
    case Op::Lui: return "lui";
    case Op::Auipc: return "auipc";
    case Op::Jal: return "jal";
    case Op::Jalr: return "jalr";
    case Op::Beq: return "beq";
    case Op::Bne: return "bne";
    case Op::Blt: return "blt";
    case Op::Bge: return "bge";
    case Op::Bltu: return "bltu";
    case Op::Bgeu: return "bgeu";
    case Op::Lb: return "lb";
    case Op::Lh: return "lh";
    case Op::Lw: return "lw";
    case Op::Lbu: return "lbu";
    case Op::Lhu: return "lhu";
    case Op::Sb: return "sb";
    case Op::Sh: return "sh";
    case Op::Sw: return "sw";
    case Op::Addi: return "addi";
    case Op::Slti: return "slti";
    case Op::Sltiu: return "sltiu";
    case Op::Xori: return "xori";
    case Op::Ori: return "ori";
    case Op::Andi: return "andi";
    case Op::Slli: return "slli";
    case Op::Srli: return "srli";
    case Op::Srai: return "srai";
    case Op::Add: return "add";
    case Op::Sub: return "sub";
    case Op::Sll: return "sll";
    case Op::Slt: return "slt";
    case Op::Sltu: return "sltu";
    case Op::Xor: return "xor";
    case Op::Srl: return "srl";
    case Op::Sra: return "sra";
    case Op::Or: return "or";
    case Op::And: return "and";
    case Op::Fence: return "fence";
    case Op::Ecall: return "ecall";
    case Op::Ebreak: return "ebreak";
    case Op::Mul: return "mul";
    case Op::Mulh: return "mulh";
    case Op::Mulhsu: return "mulhsu";
    case Op::Mulhu: return "mulhu";
    case Op::Div: return "div";
    case Op::Divu: return "divu";
    case Op::Rem: return "rem";
    case Op::Remu: return "remu";
    case Op::Illegal: return "illegal";
  }
  return "?";
}

Instr decode(std::uint32_t w) noexcept {
  Instr instr;
  instr.rd = static_cast<std::uint8_t>((w >> 7) & 0x1F);
  instr.rs1 = static_cast<std::uint8_t>((w >> 15) & 0x1F);
  instr.rs2 = static_cast<std::uint8_t>((w >> 20) & 0x1F);
  const std::uint32_t opcode = w & 0x7F;
  const std::uint32_t funct3 = (w >> 12) & 0x7;
  const std::uint32_t funct7 = w >> 25;

  switch (opcode) {
    case kOpLui:
      instr.op = Op::Lui;
      instr.imm = static_cast<std::int32_t>(imm_u(w));
      return instr;
    case kOpAuipc:
      instr.op = Op::Auipc;
      instr.imm = static_cast<std::int32_t>(imm_u(w));
      return instr;
    case kOpJal:
      instr.op = Op::Jal;
      instr.imm = sign_extend(imm_j(w), 21);
      return instr;
    case kOpJalr:
      if (funct3 != 0) break;
      instr.op = Op::Jalr;
      instr.imm = sign_extend(imm_i(w), 12);
      return instr;
    case kOpBranch: {
      static constexpr std::array<Op, 8> kBranch = {Op::Beq,  Op::Bne,  Op::Illegal, Op::Illegal,
                                                    Op::Blt,  Op::Bge,  Op::Bltu,    Op::Bgeu};
      instr.op = kBranch[funct3];
      if (instr.op == Op::Illegal) break;
      instr.imm = sign_extend(imm_b(w), 13);
      return instr;
    }
    case kOpLoad: {
      static constexpr std::array<Op, 8> kLoad = {Op::Lb,  Op::Lh,  Op::Lw,      Op::Illegal,
                                                  Op::Lbu, Op::Lhu, Op::Illegal, Op::Illegal};
      instr.op = kLoad[funct3];
      if (instr.op == Op::Illegal) break;
      instr.imm = sign_extend(imm_i(w), 12);
      return instr;
    }
    case kOpStore: {
      static constexpr std::array<Op, 8> kStore = {Op::Sb,      Op::Sh,      Op::Sw,      Op::Illegal,
                                                   Op::Illegal, Op::Illegal, Op::Illegal, Op::Illegal};
      instr.op = kStore[funct3];
      if (instr.op == Op::Illegal) break;
      instr.imm = sign_extend(imm_s(w), 12);
      return instr;
    }
    case kOpOpImm: {
      instr.imm = sign_extend(imm_i(w), 12);
      switch (funct3) {
        case 0: instr.op = Op::Addi; return instr;
        case 1:
          if (funct7 != 0) break;
          instr.op = Op::Slli;
          instr.imm = static_cast<std::int32_t>(instr.rs2);  // shamt
          return instr;
        case 2: instr.op = Op::Slti; return instr;
        case 3: instr.op = Op::Sltiu; return instr;
        case 4: instr.op = Op::Xori; return instr;
        case 5:
          if (funct7 == 0) {
            instr.op = Op::Srli;
          } else if (funct7 == 0b0100000) {
            instr.op = Op::Srai;
          } else {
            break;
          }
          instr.imm = static_cast<std::int32_t>(instr.rs2);  // shamt
          return instr;
        case 6: instr.op = Op::Ori; return instr;
        case 7: instr.op = Op::Andi; return instr;
        default: break;
      }
      break;
    }
    case kOpOp: {
      if (funct7 == 0b0000001) {  // M extension
        static constexpr std::array<Op, 8> kMul = {Op::Mul,  Op::Mulh, Op::Mulhsu, Op::Mulhu,
                                                   Op::Div,  Op::Divu, Op::Rem,    Op::Remu};
        instr.op = kMul[funct3];
        return instr;
      }
      if (funct7 == 0) {
        static constexpr std::array<Op, 8> kOp0 = {Op::Add, Op::Sll, Op::Slt, Op::Sltu,
                                                   Op::Xor, Op::Srl, Op::Or,  Op::And};
        instr.op = kOp0[funct3];
        return instr;
      }
      if (funct7 == 0b0100000) {
        if (funct3 == 0) {
          instr.op = Op::Sub;
          return instr;
        }
        if (funct3 == 5) {
          instr.op = Op::Sra;
          return instr;
        }
      }
      break;
    }
    case kOpMiscMem:
      instr.op = Op::Fence;
      return instr;
    case kOpSystem:
      if (w == 0x00000073) {
        instr.op = Op::Ecall;
        return instr;
      }
      if (w == 0x00100073) {
        instr.op = Op::Ebreak;
        return instr;
      }
      break;
    default: break;
  }
  return Instr{};  // Illegal
}

namespace {

std::uint32_t enc_r(std::uint32_t funct7, std::uint8_t rs2, std::uint8_t rs1, std::uint32_t funct3,
                    std::uint8_t rd, std::uint32_t opcode) {
  return (funct7 << 25) | (std::uint32_t{rs2} << 20) | (std::uint32_t{rs1} << 15) |
         (funct3 << 12) | (std::uint32_t{rd} << 7) | opcode;
}

std::uint32_t enc_i(std::int32_t imm, std::uint8_t rs1, std::uint32_t funct3, std::uint8_t rd,
                    std::uint32_t opcode) {
  util::require(fits_imm12(imm), "encode: I-type immediate out of range");
  return (static_cast<std::uint32_t>(imm & 0xFFF) << 20) | (std::uint32_t{rs1} << 15) |
         (funct3 << 12) | (std::uint32_t{rd} << 7) | opcode;
}

std::uint32_t enc_s(std::int32_t imm, std::uint8_t rs2, std::uint8_t rs1, std::uint32_t funct3,
                    std::uint32_t opcode) {
  util::require(fits_imm12(imm), "encode: S-type immediate out of range");
  std::uint32_t uimm = static_cast<std::uint32_t>(imm & 0xFFF);
  return ((uimm >> 5) << 25) | (std::uint32_t{rs2} << 20) | (std::uint32_t{rs1} << 15) |
         (funct3 << 12) | ((uimm & 0x1F) << 7) | opcode;
}

std::uint32_t enc_b(std::int32_t imm, std::uint8_t rs2, std::uint8_t rs1, std::uint32_t funct3) {
  util::require(fits_branch(imm), "encode: branch offset out of range");
  std::uint32_t uimm = static_cast<std::uint32_t>(imm);
  return (((uimm >> 12) & 1) << 31) | (((uimm >> 5) & 0x3F) << 25) | (std::uint32_t{rs2} << 20) |
         (std::uint32_t{rs1} << 15) | (funct3 << 12) | (((uimm >> 1) & 0xF) << 8) |
         (((uimm >> 11) & 1) << 7) | kOpBranch;
}

std::uint32_t enc_u(std::int32_t imm, std::uint8_t rd, std::uint32_t opcode) {
  util::require((imm & 0xFFF) == 0, "encode: U-type immediate must be 4K aligned");
  return static_cast<std::uint32_t>(imm) | (std::uint32_t{rd} << 7) | opcode;
}

std::uint32_t enc_j(std::int32_t imm, std::uint8_t rd) {
  util::require(fits_jump(imm), "encode: jump offset out of range");
  std::uint32_t uimm = static_cast<std::uint32_t>(imm);
  return (((uimm >> 20) & 1) << 31) | (((uimm >> 1) & 0x3FF) << 21) | (((uimm >> 11) & 1) << 20) |
         (((uimm >> 12) & 0xFF) << 12) | (std::uint32_t{rd} << 7) | kOpJal;
}

std::uint32_t enc_shift(std::uint32_t funct7, std::int32_t shamt, std::uint8_t rs1,
                        std::uint32_t funct3, std::uint8_t rd) {
  util::require(shamt >= 0 && shamt < 32, "encode: shift amount out of range");
  return (funct7 << 25) | (static_cast<std::uint32_t>(shamt) << 20) | (std::uint32_t{rs1} << 15) |
         (funct3 << 12) | (std::uint32_t{rd} << 7) | kOpOpImm;
}

}  // namespace

std::uint32_t encode(const Instr& in) {
  switch (in.op) {
    case Op::Lui: return enc_u(in.imm, in.rd, kOpLui);
    case Op::Auipc: return enc_u(in.imm, in.rd, kOpAuipc);
    case Op::Jal: return enc_j(in.imm, in.rd);
    case Op::Jalr: return enc_i(in.imm, in.rs1, 0, in.rd, kOpJalr);
    case Op::Beq: return enc_b(in.imm, in.rs2, in.rs1, 0);
    case Op::Bne: return enc_b(in.imm, in.rs2, in.rs1, 1);
    case Op::Blt: return enc_b(in.imm, in.rs2, in.rs1, 4);
    case Op::Bge: return enc_b(in.imm, in.rs2, in.rs1, 5);
    case Op::Bltu: return enc_b(in.imm, in.rs2, in.rs1, 6);
    case Op::Bgeu: return enc_b(in.imm, in.rs2, in.rs1, 7);
    case Op::Lb: return enc_i(in.imm, in.rs1, 0, in.rd, kOpLoad);
    case Op::Lh: return enc_i(in.imm, in.rs1, 1, in.rd, kOpLoad);
    case Op::Lw: return enc_i(in.imm, in.rs1, 2, in.rd, kOpLoad);
    case Op::Lbu: return enc_i(in.imm, in.rs1, 4, in.rd, kOpLoad);
    case Op::Lhu: return enc_i(in.imm, in.rs1, 5, in.rd, kOpLoad);
    case Op::Sb: return enc_s(in.imm, in.rs2, in.rs1, 0, kOpStore);
    case Op::Sh: return enc_s(in.imm, in.rs2, in.rs1, 1, kOpStore);
    case Op::Sw: return enc_s(in.imm, in.rs2, in.rs1, 2, kOpStore);
    case Op::Addi: return enc_i(in.imm, in.rs1, 0, in.rd, kOpOpImm);
    case Op::Slti: return enc_i(in.imm, in.rs1, 2, in.rd, kOpOpImm);
    case Op::Sltiu: return enc_i(in.imm, in.rs1, 3, in.rd, kOpOpImm);
    case Op::Xori: return enc_i(in.imm, in.rs1, 4, in.rd, kOpOpImm);
    case Op::Ori: return enc_i(in.imm, in.rs1, 6, in.rd, kOpOpImm);
    case Op::Andi: return enc_i(in.imm, in.rs1, 7, in.rd, kOpOpImm);
    case Op::Slli: return enc_shift(0, in.imm, in.rs1, 1, in.rd);
    case Op::Srli: return enc_shift(0, in.imm, in.rs1, 5, in.rd);
    case Op::Srai: return enc_shift(0b0100000, in.imm, in.rs1, 5, in.rd);
    case Op::Add: return enc_r(0, in.rs2, in.rs1, 0, in.rd, kOpOp);
    case Op::Sub: return enc_r(0b0100000, in.rs2, in.rs1, 0, in.rd, kOpOp);
    case Op::Sll: return enc_r(0, in.rs2, in.rs1, 1, in.rd, kOpOp);
    case Op::Slt: return enc_r(0, in.rs2, in.rs1, 2, in.rd, kOpOp);
    case Op::Sltu: return enc_r(0, in.rs2, in.rs1, 3, in.rd, kOpOp);
    case Op::Xor: return enc_r(0, in.rs2, in.rs1, 4, in.rd, kOpOp);
    case Op::Srl: return enc_r(0, in.rs2, in.rs1, 5, in.rd, kOpOp);
    case Op::Sra: return enc_r(0b0100000, in.rs2, in.rs1, 5, in.rd, kOpOp);
    case Op::Or: return enc_r(0, in.rs2, in.rs1, 6, in.rd, kOpOp);
    case Op::And: return enc_r(0, in.rs2, in.rs1, 7, in.rd, kOpOp);
    case Op::Fence: return 0x0000000F;
    case Op::Ecall: return 0x00000073;
    case Op::Ebreak: return 0x00100073;
    case Op::Mul: return enc_r(1, in.rs2, in.rs1, 0, in.rd, kOpOp);
    case Op::Mulh: return enc_r(1, in.rs2, in.rs1, 1, in.rd, kOpOp);
    case Op::Mulhsu: return enc_r(1, in.rs2, in.rs1, 2, in.rd, kOpOp);
    case Op::Mulhu: return enc_r(1, in.rs2, in.rs1, 3, in.rd, kOpOp);
    case Op::Div: return enc_r(1, in.rs2, in.rs1, 4, in.rd, kOpOp);
    case Op::Divu: return enc_r(1, in.rs2, in.rs1, 5, in.rd, kOpOp);
    case Op::Rem: return enc_r(1, in.rs2, in.rs1, 6, in.rd, kOpOp);
    case Op::Remu: return enc_r(1, in.rs2, in.rs1, 7, in.rd, kOpOp);
    case Op::Illegal: break;
  }
  throw util::LogicError("encode: illegal instruction");
}

std::string disassemble(const Instr& in) {
  char buf[64];
  const char* name = op_name(in.op).data();
  switch (in.op) {
    case Op::Lui:
    case Op::Auipc:
      std::snprintf(buf, sizeof(buf), "%s x%u, 0x%x", name, in.rd,
                    static_cast<std::uint32_t>(in.imm) >> 12);
      break;
    case Op::Jal:
      std::snprintf(buf, sizeof(buf), "%s x%u, %d", name, in.rd, in.imm);
      break;
    case Op::Jalr:
    case Op::Lb: case Op::Lh: case Op::Lw: case Op::Lbu: case Op::Lhu:
      std::snprintf(buf, sizeof(buf), "%s x%u, %d(x%u)", name, in.rd, in.imm, in.rs1);
      break;
    case Op::Sb: case Op::Sh: case Op::Sw:
      std::snprintf(buf, sizeof(buf), "%s x%u, %d(x%u)", name, in.rs2, in.imm, in.rs1);
      break;
    case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge: case Op::Bltu: case Op::Bgeu:
      std::snprintf(buf, sizeof(buf), "%s x%u, x%u, %d", name, in.rs1, in.rs2, in.imm);
      break;
    case Op::Addi: case Op::Slti: case Op::Sltiu: case Op::Xori: case Op::Ori: case Op::Andi:
    case Op::Slli: case Op::Srli: case Op::Srai:
      std::snprintf(buf, sizeof(buf), "%s x%u, x%u, %d", name, in.rd, in.rs1, in.imm);
      break;
    case Op::Fence: case Op::Ecall: case Op::Ebreak: case Op::Illegal:
      std::snprintf(buf, sizeof(buf), "%s", name);
      break;
    default:  // R-type
      std::snprintf(buf, sizeof(buf), "%s x%u, x%u, x%u", name, in.rd, in.rs1, in.rs2);
      break;
  }
  return buf;
}

std::string_view reg_abi_name(std::uint8_t reg) noexcept {
  static constexpr std::array<std::string_view, 32> kNames = {
      "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0",
      "a1",   "a2", "a3", "a4", "a5", "a6", "a7", "s2", "s3", "s4", "s5",
      "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};
  if (reg >= 32) return "?";
  return kNames[reg];
}

std::optional<std::uint8_t> parse_reg(std::string_view name) noexcept {
  if (name.size() >= 2 && (name[0] == 'x' || name[0] == 'X')) {
    int value = 0;
    bool numeric = true;
    for (std::size_t i = 1; i < name.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') {
        numeric = false;
        break;
      }
      value = value * 10 + (name[i] - '0');
    }
    if (numeric && value < 32) return static_cast<std::uint8_t>(value);
  }
  for (std::uint8_t i = 0; i < 32; ++i) {
    if (reg_abi_name(i) == name) return i;
  }
  if (name == "fp") return 8;  // frame pointer alias of s0
  return std::nullopt;
}

}  // namespace nisc::iss
