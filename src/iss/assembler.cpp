#include "iss/assembler.hpp"

#include <algorithm>
#include <cctype>
#include <map>
#include <optional>
#include <sstream>
#include <vector>

#include "iss/isa.hpp"
#include "util/strings.hpp"

namespace nisc::iss {
namespace {

using util::parse_int;
using util::RuntimeError;
using util::split;
using util::to_lower;
using util::trim;

struct Statement {
  int line = 0;
  std::string mnemonic;               // lower-case instruction or ".directive"
  std::vector<std::string> operands;  // comma-separated, trimmed
  std::uint32_t addr = 0;
  std::uint32_t size = 0;
  bool errored = false;  // failed in layout; skipped by the emit pass
};

/// Internal error signal; the per-statement recovery loops catch it so one
/// pass can report every error (AsmError carries it out of the assembler).
struct AsmFail {
  int line;
  std::string message;
};

[[noreturn]] void fail(int line, const std::string& message) { throw AsmFail{line, message}; }

/// Strips "#", ";" and "//" comments (not inside string literals).
std::string strip_comment(std::string_view line) {
  std::string out;
  bool in_string = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (c == '"' && (i == 0 || line[i - 1] != '\\')) in_string = !in_string;
    if (!in_string) {
      if (c == '#' || c == ';') break;
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
    }
    out.push_back(c);
  }
  return out;
}

/// Splits operands on commas that are outside string literals.
std::vector<std::string> split_operands(std::string_view text) {
  std::vector<std::string> out;
  std::string current;
  bool in_string = false;
  for (std::size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '"' && (i == 0 || text[i - 1] != '\\')) in_string = !in_string;
    if (c == ',' && !in_string) {
      out.emplace_back(trim(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!trim(current).empty() || !out.empty()) out.emplace_back(trim(current));
  while (!out.empty() && out.back().empty()) out.pop_back();
  return out;
}

class Assembler {
 public:
  explicit Assembler(std::uint32_t base) : base_(base) {}

  AssembleResult run(std::string_view source) {
    parse(source);
    layout();
    emit();
    program_.base = base_;
    program_.entry = program_.has_symbol("_start") ? program_.symbol("_start") : base_;
    std::stable_sort(errors_.begin(), errors_.end(),
                     [](const AsmError& a, const AsmError& b) { return a.line < b.line; });
    return {std::move(program_), std::move(errors_)};
  }

 private:
  // ---------------------------------------------------------------- parsing

  void parse(std::string_view source) {
    int line_no = 0;
    std::size_t pos = 0;
    while (pos <= source.size()) {
      std::size_t eol = source.find('\n', pos);
      std::string_view raw =
          source.substr(pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
      pos = (eol == std::string_view::npos) ? source.size() + 1 : eol + 1;
      ++line_no;
      if (raw.empty() && pos > source.size()) break;

      std::string text = strip_comment(raw);
      std::string_view rest = trim(text);

      // Leading labels: "name:" possibly several on one line.
      while (true) {
        std::size_t colon = rest.find(':');
        if (colon == std::string_view::npos) break;
        std::string_view candidate = trim(rest.substr(0, colon));
        if (candidate.empty() || !is_identifier(candidate)) break;
        labels_.push_back({line_no, std::string(candidate), statements_.size()});
        rest = trim(rest.substr(colon + 1));
      }
      if (rest.empty()) continue;

      Statement stmt;
      stmt.line = line_no;
      std::size_t ws = rest.find_first_of(" \t");
      std::string_view head = ws == std::string_view::npos ? rest : rest.substr(0, ws);
      std::string_view tail = ws == std::string_view::npos ? "" : trim(rest.substr(ws));
      stmt.mnemonic = to_lower(head);
      stmt.operands = split_operands(tail);
      statements_.push_back(std::move(stmt));
    }
  }

  static bool is_identifier(std::string_view s) {
    if (s.empty()) return false;
    if (!(std::isalpha(static_cast<unsigned char>(s[0])) || s[0] == '_' || s[0] == '.')) return false;
    for (char c : s) {
      if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.')) return false;
    }
    return true;
  }

  // ---------------------------------------------------------------- pass 1

  void layout() {
    std::uint32_t lc = base_;
    std::size_t label_index = 0;
    for (std::size_t i = 0; i < statements_.size(); ++i) {
      while (label_index < labels_.size() && labels_[label_index].statement == i) {
        define_symbol(labels_[label_index].line, labels_[label_index].name, lc);
        ++label_index;
      }
      Statement& stmt = statements_[i];
      stmt.addr = lc;
      try {
        stmt.size = statement_size(stmt, lc);
      } catch (const AsmFail& e) {
        errors_.push_back({e.line, e.message, false});
        stmt.errored = true;
        stmt.size = stmt.mnemonic[0] == '.' ? 0 : 4;  // keep later addresses plausible
      }
      lc += stmt.size;
    }
    while (label_index < labels_.size()) {
      define_symbol(labels_[label_index].line, labels_[label_index].name, lc);
      ++label_index;
    }
    image_size_ = lc - base_;
  }

  void define_symbol(int line, const std::string& name, std::uint32_t value) {
    auto [it, inserted] = first_definition_.try_emplace(name, line);
    if (!inserted) {
      errors_.push_back({line,
                         "label '" + name + "' redefined (first defined on line " +
                             std::to_string(it->second) + ")",
                         true});
      return;  // the first definition wins
    }
    program_.symbols[name] = value;
  }

  std::uint32_t statement_size(Statement& stmt, std::uint32_t lc) {
    const std::string& m = stmt.mnemonic;
    if (m[0] == '.') return directive_size(stmt, lc);
    if (m == "li") {
      if (stmt.operands.size() != 2) fail(stmt.line, "li needs rd, imm");
      auto value = parse_int(stmt.operands[1]);
      return (value && fits_imm12(*value)) ? 4 : 8;
    }
    if (m == "la") return 8;
    return 4;
  }

  std::uint32_t directive_size(Statement& stmt, std::uint32_t lc) {
    const std::string& m = stmt.mnemonic;
    const auto& ops = stmt.operands;
    if (m == ".org") {
      auto target = parse_int(op_at(stmt, 0));
      if (!target || *target < lc || *target > 0xFFFFFFFFLL) {
        fail(stmt.line, ".org target must be a constant >= current location");
      }
      return static_cast<std::uint32_t>(*target) - lc;
    }
    if (m == ".word") return static_cast<std::uint32_t>(ops.size()) * 4;
    if (m == ".half") return static_cast<std::uint32_t>(ops.size()) * 2;
    if (m == ".byte") return static_cast<std::uint32_t>(ops.size());
    if (m == ".ascii" || m == ".asciz") {
      std::string s = parse_string_literal(stmt.line, op_at(stmt, 0));
      return static_cast<std::uint32_t>(s.size()) + (m == ".asciz" ? 1 : 0);
    }
    if (m == ".space") {
      auto n = parse_int(op_at(stmt, 0));
      if (!n || *n < 0) fail(stmt.line, ".space needs a non-negative constant");
      return static_cast<std::uint32_t>(*n);
    }
    if (m == ".align") {
      auto n = parse_int(op_at(stmt, 0));
      if (!n || *n <= 0 || (*n & (*n - 1)) != 0) fail(stmt.line, ".align needs a power of two");
      std::uint32_t align = static_cast<std::uint32_t>(*n);
      return (align - (lc % align)) % align;
    }
    if (m == ".equ") {
      if (stmt.operands.size() != 2) fail(stmt.line, ".equ needs name, value");
      auto value = resolve_value(stmt.line, stmt.operands[1], /*allow_undefined=*/false);
      define_symbol(stmt.line, stmt.operands[0], static_cast<std::uint32_t>(value));
      return 0;
    }
    if (m == ".globl" || m == ".global" || m == ".text" || m == ".data" || m == ".section") {
      return 0;  // accepted for source compatibility, no effect
    }
    fail(stmt.line, "unknown directive: " + m);
  }

  const std::string& op_at(const Statement& stmt, std::size_t index) {
    if (index >= stmt.operands.size()) fail(stmt.line, "missing operand");
    return stmt.operands[index];
  }

  static std::string parse_string_literal(int line, std::string_view text) {
    text = trim(text);
    if (text.size() < 2 || text.front() != '"' || text.back() != '"') {
      fail(line, "expected string literal");
    }
    std::string out;
    for (std::size_t i = 1; i + 1 < text.size(); ++i) {
      char c = text[i];
      if (c == '\\' && i + 2 < text.size() + 1) {
        ++i;
        switch (text[i]) {
          case 'n': out.push_back('\n'); break;
          case 't': out.push_back('\t'); break;
          case '0': out.push_back('\0'); break;
          case '\\': out.push_back('\\'); break;
          case '"': out.push_back('"'); break;
          default: fail(line, "unknown escape in string literal");
        }
      } else {
        out.push_back(c);
      }
    }
    return out;
  }

  // ---------------------------------------------------------------- pass 2

  void emit() {
    program_.bytes.assign(image_size_, 0);
    for (Statement& stmt : statements_) {
      if (stmt.errored) continue;  // already reported in layout
      try {
        if (stmt.mnemonic[0] == '.') {
          emit_directive(stmt);
        } else {
          emit_instruction(stmt);
          for (std::uint32_t off = 0; off < stmt.size; off += 4) {
            program_.code.push_back({stmt.addr + off, stmt.line});
          }
        }
      } catch (const AsmFail& e) {
        errors_.push_back({e.line, e.message, false});
        stmt.errored = true;
      }
    }
  }

  void put8(std::uint32_t addr, std::uint8_t value) { program_.bytes.at(addr - base_) = value; }
  void put16(std::uint32_t addr, std::uint16_t value) {
    put8(addr, static_cast<std::uint8_t>(value));
    put8(addr + 1, static_cast<std::uint8_t>(value >> 8));
  }
  void put32(std::uint32_t addr, std::uint32_t value) {
    put16(addr, static_cast<std::uint16_t>(value));
    put16(addr + 2, static_cast<std::uint16_t>(value >> 16));
  }

  void emit_directive(const Statement& stmt) {
    const std::string& m = stmt.mnemonic;
    std::uint32_t addr = stmt.addr;
    if (m == ".word") {
      for (const std::string& op : stmt.operands) {
        put32(addr, static_cast<std::uint32_t>(
                        resolve_value(stmt.line, op, /*allow_undefined=*/false,
                                      /*record_taken=*/true)));
        addr += 4;
      }
    } else if (m == ".half") {
      for (const std::string& op : stmt.operands) {
        put16(addr, static_cast<std::uint16_t>(
                        resolve_value(stmt.line, op, /*allow_undefined=*/false,
                                      /*record_taken=*/true)));
        addr += 2;
      }
    } else if (m == ".byte") {
      for (const std::string& op : stmt.operands) {
        put8(addr, static_cast<std::uint8_t>(resolve_value(stmt.line, op)));
        addr += 1;
      }
    } else if (m == ".ascii" || m == ".asciz") {
      std::string s = parse_string_literal(stmt.line, stmt.operands[0]);
      for (char c : s) put8(addr++, static_cast<std::uint8_t>(c));
      if (m == ".asciz") put8(addr, 0);
    }
    // .org/.space/.align leave zero padding; .equ/.globl/... emit nothing.
  }

  /// Resolves an integer, `symbol`, `symbol+k` or `symbol-k` expression.
  /// `record_taken` marks symbol-based results as address-taken (la/li/.word
  /// operands — the conservative indirect-jump target set).
  std::int64_t resolve_value(int line, std::string_view text, bool allow_undefined = false,
                             bool record_taken = false) {
    text = trim(text);
    if (auto v = parse_int(text)) return *v;
    // symbol with optional +/- constant offset
    std::size_t op_pos = text.find_first_of("+-", 1);
    std::string_view sym = op_pos == std::string_view::npos ? text : trim(text.substr(0, op_pos));
    std::int64_t offset = 0;
    if (op_pos != std::string_view::npos) {
      auto off = parse_int(trim(text.substr(op_pos)));
      if (!off) fail(line, "bad expression: " + std::string(text));
      offset = *off;
    }
    auto it = program_.symbols.find(std::string(sym));
    if (it == program_.symbols.end()) {
      if (allow_undefined) return 0;
      fail(line, "undefined symbol: " + std::string(sym));
    }
    std::int64_t value = static_cast<std::int64_t>(it->second) + offset;
    if (record_taken) program_.address_taken.insert(static_cast<std::uint32_t>(value));
    return value;
  }

  std::uint8_t reg_operand(const Statement& stmt, std::size_t index) {
    auto reg = parse_reg(op_at(stmt, index));
    if (!reg) fail(stmt.line, "bad register: " + op_at(stmt, index));
    return *reg;
  }

  std::int32_t imm_operand(const Statement& stmt, std::size_t index) {
    return static_cast<std::int32_t>(resolve_value(stmt.line, op_at(stmt, index)));
  }

  /// Parses "imm(reg)" or "(reg)" memory operands.
  std::pair<std::int32_t, std::uint8_t> mem_operand(const Statement& stmt, std::size_t index) {
    const std::string& text = op_at(stmt, index);
    std::size_t open = text.find('(');
    std::size_t close = text.rfind(')');
    if (open == std::string::npos || close == std::string::npos || close < open) {
      fail(stmt.line, "expected imm(reg): " + text);
    }
    std::string_view imm_text = trim(std::string_view(text).substr(0, open));
    std::int32_t imm = imm_text.empty()
                           ? 0
                           : static_cast<std::int32_t>(resolve_value(stmt.line, imm_text));
    auto reg = parse_reg(trim(std::string_view(text).substr(open + 1, close - open - 1)));
    if (!reg) fail(stmt.line, "bad base register in: " + text);
    return {imm, *reg};
  }

  std::int32_t branch_offset(const Statement& stmt, std::size_t index) {
    std::int64_t target = resolve_value(stmt.line, op_at(stmt, index));
    std::int64_t offset = target - static_cast<std::int64_t>(stmt.addr);
    if (!fits_branch(offset)) fail(stmt.line, "branch target out of range");
    return static_cast<std::int32_t>(offset);
  }

  std::int32_t jump_offset(const Statement& stmt, std::size_t index, std::uint32_t from) {
    std::int64_t target = resolve_value(stmt.line, op_at(stmt, index));
    std::int64_t offset = target - static_cast<std::int64_t>(from);
    if (!fits_jump(offset)) fail(stmt.line, "jump target out of range");
    return static_cast<std::int32_t>(offset);
  }

  void put_instr(std::uint32_t addr, const Instr& instr) {
    try {
      put32(addr, encode(instr));
    } catch (const util::LogicError& e) {
      fail(current_line_, e.what());
    }
  }

  int current_line_ = 0;

  void emit_li(const Statement& stmt, std::uint8_t rd, std::int64_t value) {
    if (stmt.size == 4) {
      put_instr(stmt.addr, {Op::Addi, rd, 0, 0, static_cast<std::int32_t>(value)});
      return;
    }
    const std::uint32_t uvalue = static_cast<std::uint32_t>(value);
    const std::uint32_t hi = (uvalue + 0x800) & 0xFFFFF000;
    const std::int32_t lo = static_cast<std::int32_t>(uvalue - hi);
    put_instr(stmt.addr, {Op::Lui, rd, 0, 0, static_cast<std::int32_t>(hi)});
    put_instr(stmt.addr + 4, {Op::Addi, rd, rd, 0, lo});
  }

  void emit_instruction(const Statement& stmt) {
    const std::string& m = stmt.mnemonic;
    const int line = stmt.line;
    current_line_ = line;
    auto need = [&](std::size_t n) {
      if (stmt.operands.size() != n) {
        fail(line, m + ": expected " + std::to_string(n) + " operands, got " +
                       std::to_string(stmt.operands.size()));
      }
    };

    // R-type
    static const std::map<std::string, Op> kRType = {
        {"add", Op::Add}, {"sub", Op::Sub}, {"sll", Op::Sll}, {"slt", Op::Slt},
        {"sltu", Op::Sltu}, {"xor", Op::Xor}, {"srl", Op::Srl}, {"sra", Op::Sra},
        {"or", Op::Or}, {"and", Op::And}, {"mul", Op::Mul}, {"mulh", Op::Mulh},
        {"mulhsu", Op::Mulhsu}, {"mulhu", Op::Mulhu}, {"div", Op::Div},
        {"divu", Op::Divu}, {"rem", Op::Rem}, {"remu", Op::Remu}};
    if (auto it = kRType.find(m); it != kRType.end()) {
      need(3);
      put_instr(stmt.addr, {it->second, reg_operand(stmt, 0), reg_operand(stmt, 1),
                            reg_operand(stmt, 2), 0});
      return;
    }

    // I-type arithmetic and shifts
    static const std::map<std::string, Op> kIType = {
        {"addi", Op::Addi}, {"slti", Op::Slti}, {"sltiu", Op::Sltiu}, {"xori", Op::Xori},
        {"ori", Op::Ori}, {"andi", Op::Andi}, {"slli", Op::Slli}, {"srli", Op::Srli},
        {"srai", Op::Srai}};
    if (auto it = kIType.find(m); it != kIType.end()) {
      need(3);
      put_instr(stmt.addr,
                {it->second, reg_operand(stmt, 0), reg_operand(stmt, 1), 0, imm_operand(stmt, 2)});
      return;
    }

    // Loads
    static const std::map<std::string, Op> kLoad = {
        {"lb", Op::Lb}, {"lh", Op::Lh}, {"lw", Op::Lw}, {"lbu", Op::Lbu}, {"lhu", Op::Lhu}};
    if (auto it = kLoad.find(m); it != kLoad.end()) {
      need(2);
      auto [imm, base] = mem_operand(stmt, 1);
      put_instr(stmt.addr, {it->second, reg_operand(stmt, 0), base, 0, imm});
      return;
    }

    // Stores
    static const std::map<std::string, Op> kStore = {{"sb", Op::Sb}, {"sh", Op::Sh}, {"sw", Op::Sw}};
    if (auto it = kStore.find(m); it != kStore.end()) {
      need(2);
      auto [imm, base] = mem_operand(stmt, 1);
      put_instr(stmt.addr, {it->second, 0, base, reg_operand(stmt, 0), imm});
      return;
    }

    // Branches
    static const std::map<std::string, Op> kBranch = {
        {"beq", Op::Beq}, {"bne", Op::Bne}, {"blt", Op::Blt},
        {"bge", Op::Bge}, {"bltu", Op::Bltu}, {"bgeu", Op::Bgeu}};
    if (auto it = kBranch.find(m); it != kBranch.end()) {
      need(3);
      put_instr(stmt.addr, {it->second, 0, reg_operand(stmt, 0), reg_operand(stmt, 1),
                            branch_offset(stmt, 2)});
      return;
    }
    // Swapped-operand branch pseudos
    static const std::map<std::string, Op> kBranchSwap = {
        {"bgt", Op::Blt}, {"ble", Op::Bge}, {"bgtu", Op::Bltu}, {"bleu", Op::Bgeu}};
    if (auto it = kBranchSwap.find(m); it != kBranchSwap.end()) {
      need(3);
      put_instr(stmt.addr, {it->second, 0, reg_operand(stmt, 1), reg_operand(stmt, 0),
                            branch_offset(stmt, 2)});
      return;
    }
    // Zero-comparison branch pseudos
    static const std::map<std::string, std::pair<Op, bool>> kBranchZero = {
        {"beqz", {Op::Beq, false}}, {"bnez", {Op::Bne, false}}, {"bltz", {Op::Blt, false}},
        {"bgez", {Op::Bge, false}}, {"bgtz", {Op::Blt, true}}, {"blez", {Op::Bge, true}}};
    if (auto it = kBranchZero.find(m); it != kBranchZero.end()) {
      need(2);
      auto [op, swapped] = it->second;
      std::uint8_t rs = reg_operand(stmt, 0);
      std::uint8_t rs1 = swapped ? 0 : rs;
      std::uint8_t rs2 = swapped ? rs : 0;
      put_instr(stmt.addr, {op, 0, rs1, rs2, branch_offset(stmt, 1)});
      return;
    }

    // Jumps and upper immediates
    if (m == "lui" || m == "auipc") {
      need(2);
      std::int64_t value = resolve_value(line, op_at(stmt, 1));
      if (value < 0 || value > 0xFFFFF) fail(line, m + ": 20-bit immediate out of range");
      put_instr(stmt.addr, {m == "lui" ? Op::Lui : Op::Auipc, reg_operand(stmt, 0), 0, 0,
                            static_cast<std::int32_t>(value << 12)});
      return;
    }
    if (m == "jal") {
      if (stmt.operands.size() == 1) {  // jal target  (rd = ra)
        put_instr(stmt.addr, {Op::Jal, 1, 0, 0, jump_offset(stmt, 0, stmt.addr)});
      } else {
        need(2);
        put_instr(stmt.addr,
                  {Op::Jal, reg_operand(stmt, 0), 0, 0, jump_offset(stmt, 1, stmt.addr)});
      }
      return;
    }
    if (m == "jalr") {
      if (stmt.operands.size() == 1) {  // jalr rs  (rd = ra, imm = 0)
        put_instr(stmt.addr, {Op::Jalr, 1, reg_operand(stmt, 0), 0, 0});
      } else if (stmt.operands.size() == 2 && stmt.operands[1].find('(') != std::string::npos) {
        auto [imm, base] = mem_operand(stmt, 1);
        put_instr(stmt.addr, {Op::Jalr, reg_operand(stmt, 0), base, 0, imm});
      } else {
        need(3);
        put_instr(stmt.addr,
                  {Op::Jalr, reg_operand(stmt, 0), reg_operand(stmt, 1), 0, imm_operand(stmt, 2)});
      }
      return;
    }
    if (m == "j") {
      need(1);
      put_instr(stmt.addr, {Op::Jal, 0, 0, 0, jump_offset(stmt, 0, stmt.addr)});
      return;
    }
    if (m == "call") {
      need(1);
      put_instr(stmt.addr, {Op::Jal, 1, 0, 0, jump_offset(stmt, 0, stmt.addr)});
      return;
    }
    if (m == "jr") {
      need(1);
      put_instr(stmt.addr, {Op::Jalr, 0, reg_operand(stmt, 0), 0, 0});
      return;
    }
    if (m == "ret") {
      need(0);
      put_instr(stmt.addr, {Op::Jalr, 0, 1, 0, 0});
      return;
    }

    // Simple pseudo-instructions
    if (m == "nop") {
      need(0);
      put_instr(stmt.addr, {Op::Addi, 0, 0, 0, 0});
      return;
    }
    if (m == "mv") {
      need(2);
      put_instr(stmt.addr, {Op::Addi, reg_operand(stmt, 0), reg_operand(stmt, 1), 0, 0});
      return;
    }
    if (m == "not") {
      need(2);
      put_instr(stmt.addr, {Op::Xori, reg_operand(stmt, 0), reg_operand(stmt, 1), 0, -1});
      return;
    }
    if (m == "neg") {
      need(2);
      put_instr(stmt.addr, {Op::Sub, reg_operand(stmt, 0), 0, reg_operand(stmt, 1), 0});
      return;
    }
    if (m == "seqz") {
      need(2);
      put_instr(stmt.addr, {Op::Sltiu, reg_operand(stmt, 0), reg_operand(stmt, 1), 0, 1});
      return;
    }
    if (m == "snez") {
      need(2);
      put_instr(stmt.addr, {Op::Sltu, reg_operand(stmt, 0), 0, reg_operand(stmt, 1), 0});
      return;
    }
    if (m == "li" || m == "la") {
      need(2);
      emit_li(stmt, reg_operand(stmt, 0),
              resolve_value(line, op_at(stmt, 1), /*allow_undefined=*/false,
                            /*record_taken=*/true));
      return;
    }
    if (m == "ecall") {
      need(0);
      put_instr(stmt.addr, {Op::Ecall, 0, 0, 0, 0});
      return;
    }
    if (m == "ebreak") {
      need(0);
      put_instr(stmt.addr, {Op::Ebreak, 0, 0, 0, 0});
      return;
    }
    if (m == "fence") {
      put_instr(stmt.addr, {Op::Fence, 0, 0, 0, 0});
      return;
    }

    fail(line, "unknown instruction: " + m);
  }

  struct Label {
    int line;
    std::string name;
    std::size_t statement;  // index of the statement the label precedes
  };

  std::uint32_t base_;
  std::uint32_t image_size_ = 0;
  std::vector<Statement> statements_;
  std::vector<Label> labels_;
  std::map<std::string, int> first_definition_;  // symbol -> defining line
  std::vector<AsmError> errors_;
  Program program_;
};

}  // namespace

Program assemble(std::string_view source, std::uint32_t base) {
  AssembleResult result = Assembler(base).run(source);
  if (!result.ok()) {
    const AsmError& e = result.errors.front();
    throw RuntimeError("line " + std::to_string(e.line) + ": " + e.message);
  }
  return std::move(result.program);
}

AssembleResult assemble_all(std::string_view source, std::uint32_t base) {
  return Assembler(base).run(source);
}

}  // namespace nisc::iss
