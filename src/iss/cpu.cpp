#include "iss/cpu.hpp"

#include "obs/metrics.hpp"

namespace nisc::iss {

const char* halt_name(Halt halt) noexcept {
  switch (halt) {
    case Halt::None: return "none";
    case Halt::Breakpoint: return "breakpoint";
    case Halt::Watchpoint: return "watchpoint";
    case Halt::Ebreak: return "ebreak";
    case Halt::Ecall: return "ecall";
    case Halt::Quantum: return "quantum";
    case Halt::IllegalInstruction: return "illegal-instruction";
    case Halt::MemoryFault: return "memory-fault";
    case Halt::Stopped: return "stopped";
  }
  return "?";
}

void Cpu::reset(std::uint32_t pc) noexcept {
  regs_.fill(0);
  pc_ = pc;
  instret_ = 0;
  cycles_ = 0;
  stop_requested_ = false;
  watch_pending_ = false;
  last_halt_ = Halt::None;
}

bool Cpu::check_watch(std::uint32_t addr, std::uint32_t len) noexcept {
  for (const auto& [w_addr, w_len] : watchpoints_) {
    if (addr < w_addr + w_len && w_addr < addr + len) {
      watch_hit_addr_ = w_addr;
      return true;
    }
  }
  return false;
}

Halt Cpu::step() {
  std::uint32_t word;
  try {
    word = mem_.read32(pc_);
  } catch (const util::RuntimeError&) {
    return Halt::MemoryFault;
  }
  const Instr instr = decode(word);
  if (instr.op == Op::Illegal) return Halt::IllegalInstruction;
  if (trace_hook_) trace_hook_(pc_, word);
  try {
    return execute(instr);
  } catch (const util::RuntimeError&) {
    return Halt::MemoryFault;
  }
}

Halt Cpu::execute(const Instr& in) {
  const std::uint32_t rs1 = regs_[in.rs1];
  const std::uint32_t rs2 = regs_[in.rs2];
  std::uint32_t next_pc = pc_ + 4;
  std::uint32_t result = 0;
  bool write_rd = true;
  std::uint64_t extra_cycles = 0;

  switch (in.op) {
    case Op::Lui: result = static_cast<std::uint32_t>(in.imm); break;
    case Op::Auipc: result = pc_ + static_cast<std::uint32_t>(in.imm); break;
    case Op::Jal:
      result = pc_ + 4;
      next_pc = pc_ + static_cast<std::uint32_t>(in.imm);
      extra_cycles = cycle_model_.branch_taken;
      break;
    case Op::Jalr:
      result = pc_ + 4;
      next_pc = (rs1 + static_cast<std::uint32_t>(in.imm)) & ~1u;
      extra_cycles = cycle_model_.branch_taken;
      break;
    case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge: case Op::Bltu: case Op::Bgeu: {
      bool taken = false;
      switch (in.op) {
        case Op::Beq: taken = rs1 == rs2; break;
        case Op::Bne: taken = rs1 != rs2; break;
        case Op::Blt: taken = static_cast<std::int32_t>(rs1) < static_cast<std::int32_t>(rs2); break;
        case Op::Bge: taken = static_cast<std::int32_t>(rs1) >= static_cast<std::int32_t>(rs2); break;
        case Op::Bltu: taken = rs1 < rs2; break;
        default: taken = rs1 >= rs2; break;
      }
      if (taken) {
        next_pc = pc_ + static_cast<std::uint32_t>(in.imm);
        extra_cycles = cycle_model_.branch_taken;
      }
      write_rd = false;
      break;
    }
    case Op::Lb:
      result = static_cast<std::uint32_t>(
          static_cast<std::int32_t>(static_cast<std::int8_t>(mem_.read8(rs1 + in.imm))));
      extra_cycles = cycle_model_.load_store;
      break;
    case Op::Lh:
      result = static_cast<std::uint32_t>(
          static_cast<std::int32_t>(static_cast<std::int16_t>(mem_.read16(rs1 + in.imm))));
      extra_cycles = cycle_model_.load_store;
      break;
    case Op::Lw:
      result = mem_.read32(rs1 + in.imm);
      extra_cycles = cycle_model_.load_store;
      break;
    case Op::Lbu:
      result = mem_.read8(rs1 + in.imm);
      extra_cycles = cycle_model_.load_store;
      break;
    case Op::Lhu:
      result = mem_.read16(rs1 + in.imm);
      extra_cycles = cycle_model_.load_store;
      break;
    case Op::Sb: {
      const std::uint32_t addr = rs1 + static_cast<std::uint32_t>(in.imm);
      mem_.write8(addr, static_cast<std::uint8_t>(rs2));
      if (check_watch(addr, 1)) watch_pending_ = true;
      write_rd = false;
      extra_cycles = cycle_model_.load_store;
      break;
    }
    case Op::Sh: {
      const std::uint32_t addr = rs1 + static_cast<std::uint32_t>(in.imm);
      mem_.write16(addr, static_cast<std::uint16_t>(rs2));
      if (check_watch(addr, 2)) watch_pending_ = true;
      write_rd = false;
      extra_cycles = cycle_model_.load_store;
      break;
    }
    case Op::Sw: {
      const std::uint32_t addr = rs1 + static_cast<std::uint32_t>(in.imm);
      mem_.write32(addr, rs2);
      if (check_watch(addr, 4)) watch_pending_ = true;
      write_rd = false;
      extra_cycles = cycle_model_.load_store;
      break;
    }
    case Op::Addi: result = rs1 + static_cast<std::uint32_t>(in.imm); break;
    case Op::Slti:
      result = static_cast<std::int32_t>(rs1) < in.imm ? 1 : 0;
      break;
    case Op::Sltiu: result = rs1 < static_cast<std::uint32_t>(in.imm) ? 1 : 0; break;
    case Op::Xori: result = rs1 ^ static_cast<std::uint32_t>(in.imm); break;
    case Op::Ori: result = rs1 | static_cast<std::uint32_t>(in.imm); break;
    case Op::Andi: result = rs1 & static_cast<std::uint32_t>(in.imm); break;
    case Op::Slli: result = rs1 << in.imm; break;
    case Op::Srli: result = rs1 >> in.imm; break;
    case Op::Srai: result = static_cast<std::uint32_t>(static_cast<std::int32_t>(rs1) >> in.imm); break;
    case Op::Add: result = rs1 + rs2; break;
    case Op::Sub: result = rs1 - rs2; break;
    case Op::Sll: result = rs1 << (rs2 & 31); break;
    case Op::Slt:
      result = static_cast<std::int32_t>(rs1) < static_cast<std::int32_t>(rs2) ? 1 : 0;
      break;
    case Op::Sltu: result = rs1 < rs2 ? 1 : 0; break;
    case Op::Xor: result = rs1 ^ rs2; break;
    case Op::Srl: result = rs1 >> (rs2 & 31); break;
    case Op::Sra: result = static_cast<std::uint32_t>(static_cast<std::int32_t>(rs1) >> (rs2 & 31)); break;
    case Op::Or: result = rs1 | rs2; break;
    case Op::And: result = rs1 & rs2; break;
    case Op::Fence: write_rd = false; break;
    case Op::Mul:
      result = rs1 * rs2;
      extra_cycles = cycle_model_.mul;
      break;
    case Op::Mulh:
      result = static_cast<std::uint32_t>(
          (static_cast<std::int64_t>(static_cast<std::int32_t>(rs1)) *
           static_cast<std::int64_t>(static_cast<std::int32_t>(rs2))) >> 32);
      extra_cycles = cycle_model_.mul;
      break;
    case Op::Mulhsu:
      result = static_cast<std::uint32_t>(
          (static_cast<std::int64_t>(static_cast<std::int32_t>(rs1)) *
           static_cast<std::int64_t>(static_cast<std::uint64_t>(rs2))) >> 32);
      extra_cycles = cycle_model_.mul;
      break;
    case Op::Mulhu:
      result = static_cast<std::uint32_t>(
          (static_cast<std::uint64_t>(rs1) * static_cast<std::uint64_t>(rs2)) >> 32);
      extra_cycles = cycle_model_.mul;
      break;
    case Op::Div:
      if (rs2 == 0) {
        result = ~0u;
      } else if (rs1 == 0x80000000u && rs2 == ~0u) {
        result = rs1;  // overflow per spec
      } else {
        result = static_cast<std::uint32_t>(static_cast<std::int32_t>(rs1) /
                                            static_cast<std::int32_t>(rs2));
      }
      extra_cycles = cycle_model_.div;
      break;
    case Op::Divu:
      result = rs2 == 0 ? ~0u : rs1 / rs2;
      extra_cycles = cycle_model_.div;
      break;
    case Op::Rem:
      if (rs2 == 0) {
        result = rs1;
      } else if (rs1 == 0x80000000u && rs2 == ~0u) {
        result = 0;
      } else {
        result = static_cast<std::uint32_t>(static_cast<std::int32_t>(rs1) %
                                            static_cast<std::int32_t>(rs2));
      }
      extra_cycles = cycle_model_.div;
      break;
    case Op::Remu:
      result = rs2 == 0 ? rs1 : rs1 % rs2;
      extra_cycles = cycle_model_.div;
      break;
    case Op::Ecall: {
      pc_ += 4;
      ++instret_;
      cycles_ += cycle_model_.base;
      if (ecall_handler_) {
        if (ecall_handler_(*this) == EcallResult::Handled) return Halt::None;
      }
      return Halt::Ecall;
    }
    case Op::Ebreak:
      // pc stays at the ebreak, GDB-style.
      return Halt::Ebreak;
    case Op::Illegal:
      return Halt::IllegalInstruction;
  }

  if (write_rd && in.rd != 0) regs_[in.rd] = result;
  pc_ = next_pc;
  ++instret_;
  cycles_ += cycle_model_.base + extra_cycles;
  if (watch_pending_) {
    watch_pending_ = false;
    return Halt::Watchpoint;
  }
  return Halt::None;
}

Halt Cpu::run(std::uint64_t max_instructions) {
  if (stop_requested_) {
    stop_requested_ = false;
    return last_halt_ = Halt::Stopped;
  }
  const std::uint64_t instret_begin = instret_;
  std::uint64_t breakpoint_checks = 0;
  Halt halt = Halt::Quantum;
  for (std::uint64_t executed = 0; executed < max_instructions; ++executed) {
    Halt step_halt = step();
    if (step_halt != Halt::None) {
      halt = step_halt;
      break;
    }
    if (!breakpoints_.empty()) {
      ++breakpoint_checks;
      if (breakpoints_.count(pc_) > 0) {
        halt = Halt::Breakpoint;
        break;
      }
    }
    if (stop_requested_) {
      stop_requested_ = false;
      halt = Halt::Stopped;
      break;
    }
  }
  // Batched publication: the per-instruction loop stays registry-free; each
  // run slice costs two relaxed adds, however many instructions it retired.
  static obs::Counter& c_instret = obs::counter("iss.instructions");
  static obs::Counter& c_bp_checks = obs::counter("iss.breakpoint_checks");
  c_instret.add(instret_ - instret_begin);
  c_bp_checks.add(breakpoint_checks);
  return last_halt_ = halt;
}

}  // namespace nisc::iss
