#include "cosim/gdb_wrapper.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace nisc::cosim {

GdbWrapperModule::GdbWrapperModule(std::string name, rsp::GdbClient& client,
                                   std::vector<BreakpointBinding> bindings,
                                   GdbWrapperOptions options)
    : sc_module(std::move(name)), client_(client), bindings_(std::move(bindings)),
      options_(options) {
  util::require(options_.instructions_per_cycle > 0, "GdbWrapper: zero lock-step ratio");
  for (const BreakpointBinding& b : bindings_) by_addr_[b.breakpoint_addr] = &b;
  declare_method("cycle", &GdbWrapperModule::cycle);
  sensitive << clk.pos();
  dont_initialize();
}

void GdbWrapperModule::on_elaboration() {
  sc_module::on_elaboration();
  // Quantum mode relies on target-side breakpoints to stop at binding lines.
  // A transport fault this early ends the run with a structured error, the
  // same as a mid-run failure.
  try {
    for (const BreakpointBinding& b : bindings_) client_.set_breakpoint(b.breakpoint_addr);
  } catch (const util::RuntimeError& e) {
    fail(e.what());
  }
}

void GdbWrapperModule::fail(const std::string& what) {
  finished_ = true;
  error_ = make_cosim_error("gdb-wrapper", what, client_.channel().capture());
  NISC_ERROR("gdb-wrapper") << "transport failure, ending simulation: " << what;
  context().stop();
}

void GdbWrapperModule::cycle() {
  if (finished_) return;
  ++stats_.cycles;
  // Every lock-step cycle already pays at least one blocking RSP round
  // trip, so direct counter adds are noise here (unlike the kernel-embedded
  // schemes, which batch).
  static obs::Counter& c_cycles = obs::counter("cosim.gdbw.cycles");
  c_cycles.add(1);
  obs::ScopedSpan span("cosim.lockstep_cycle", "cosim", "cycle", stats_.cycles);
  try {
    // A binding that could not be serviced yet (the hardware has not
    // produced a fresh value): the ISS holds at its breakpoint line until it
    // can. The per-cycle lock-step synchronization still happens — in [14]
    // the host OS mediates ISS<->SystemC synchronization through IPC on
    // *every* cycle, which is precisely the overhead the proposed schemes
    // remove.
    if (pending_binding_ != nullptr) {
      if (!service_breakpoint(*pending_binding_)) {
        (void)client_.read_pc();  // blocking sync round trip, result unused
        ++stats_.steps;
        obs::counter("cosim.gdbw.steps").add(1);
        return;
      }
      pending_binding_ = nullptr;
    }
    if (options_.mode == LockstepMode::Quantum) {
      cycle_quantum();
    } else {
      cycle_single_step();
    }
  } catch (const util::RuntimeError& e) {
    fail(e.what());
  }
}

void GdbWrapperModule::cycle_quantum() {
  // One blocking round trip: the per-cycle lock-step synchronization.
  rsp::StopReply stop = client_.run_quantum(options_.instructions_per_cycle);
  ++stats_.steps;
  obs::counter("cosim.gdbw.steps").add(1);
  if (stop.signal == 0) return;  // quantum exhausted, still running
  const std::uint32_t pc = stop.pc ? *stop.pc : client_.read_pc();
  handle_stop(pc, stop.signal);
}

void GdbWrapperModule::cycle_single_step() {
  std::uint32_t prev_pc = ~0u;
  for (std::uint64_t i = 0; i < options_.instructions_per_cycle; ++i) {
    // One blocking RSP round trip per instruction.
    rsp::StopReply stop = client_.step();
    ++stats_.steps;
    obs::counter("cosim.gdbw.steps").add(1);
    const std::uint32_t pc = stop.pc ? *stop.pc : client_.read_pc();
    if (pc == prev_pc) {
      // No forward progress: the guest sits on its final ebreak.
      finished_ = true;
      NISC_INFO("gdb-wrapper") << "target finished at pc=0x" << std::hex << pc;
      return;
    }
    prev_pc = pc;
    auto it = by_addr_.find(pc);
    if (it != by_addr_.end() && handle_stop(pc, stop.signal)) return;
  }
}

bool GdbWrapperModule::handle_stop(std::uint32_t pc, int signal) {
  auto it = by_addr_.find(pc);
  if (it == by_addr_.end() || signal != 5) {
    // Stopped somewhere that is not a binding line: the guest finished
    // (ebreak) or faulted.
    finished_ = true;
    NISC_INFO("gdb-wrapper") << "target finished at pc=0x" << std::hex << pc << " signal "
                             << std::dec << signal;
    return true;
  }
  if (!service_breakpoint(*it->second)) {
    pending_binding_ = it->second;
    return true;
  }
  if (it->second->direction == BindDirection::IssToSc) {
    // The delivered value wakes its iss_process in the next delta; end the
    // cycle so a second delivery cannot overwrite it before the process
    // runs.
    return true;
  }
  return false;
}

bool GdbWrapperModule::service_breakpoint(const BreakpointBinding& binding) {
  sysc::iss_port_base* port = context().find_iss_port(binding.port);
  util::require(port != nullptr, "GdbWrapper: no iss port named " + binding.port);
  if (binding.direction == BindDirection::IssToSc) {
    auto bytes = client_.read_memory(binding.variable_addr, binding.width);
    port->deliver_bytes(bytes);
    ++stats_.values_to_sc;
  } else {
    if (!port->has_fresh_value()) return false;  // wait for the hardware
    auto bytes = port->peek_bytes();
    client_.write_memory(binding.variable_addr, bytes);
    port->consume_fresh();
    ++stats_.values_from_sc;
  }
  ++stats_.breakpoint_events;
  static obs::Counter& c_breakpoints = obs::counter("cosim.gdbw.breakpoints");
  c_breakpoints.add(1);
  obs::instant("cosim.breakpoint", "cosim", "pc", binding.breakpoint_addr);
  return true;
}

}  // namespace nisc::cosim
