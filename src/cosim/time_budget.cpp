#include "cosim/time_budget.hpp"

#include <algorithm>
#include <chrono>

namespace nisc::cosim {

void TimeBudget::deposit(std::uint64_t tokens) {
  {
    std::lock_guard lock(mutex_);
    if (idle_) {
      // The consumer is idle: its allowance burns off immediately.
      drained_.notify_all();
      return;
    }
    tokens_ = std::min(tokens_ + tokens, cap_);
  }
  cv_.notify_all();
}

std::uint64_t TimeBudget::acquire(std::uint64_t want) {
  std::unique_lock lock(mutex_);
  cv_.wait(lock, [&] { return tokens_ > 0 || closed_; });
  if (closed_ && tokens_ == 0) return 0;
  std::uint64_t granted = std::min(want, tokens_);
  tokens_ -= granted;
  drained_.notify_all();
  return granted;
}

std::uint64_t TimeBudget::try_acquire(std::uint64_t want) {
  std::lock_guard lock(mutex_);
  std::uint64_t granted = std::min(want, tokens_);
  tokens_ -= granted;
  if (granted > 0) drained_.notify_all();
  return granted;
}

bool TimeBudget::pay(std::uint64_t amount) {
  while (amount > 0) {
    std::uint64_t got = acquire(amount);
    if (got == 0) return false;  // closed
    amount -= got;
  }
  return true;
}

bool TimeBudget::wait_below(std::uint64_t level, int timeout_ms) {
  std::unique_lock lock(mutex_);
  return drained_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                           [&] { return tokens_ < level || closed_ || idle_; });
}

void TimeBudget::set_idle(bool idle) {
  {
    std::lock_guard lock(mutex_);
    idle_ = idle;
    if (idle) tokens_ = 0;  // burn whatever was banked
  }
  drained_.notify_all();
}

void TimeBudget::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool TimeBudget::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

std::uint64_t TimeBudget::available() const {
  std::lock_guard lock(mutex_);
  return tokens_;
}

}  // namespace nisc::cosim
