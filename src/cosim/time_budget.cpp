#include "cosim/time_budget.hpp"

#include <algorithm>
#include <chrono>

#include "util/deadline.hpp"

namespace nisc::cosim {

void TimeBudget::deposit(std::uint64_t tokens) {
  {
    std::lock_guard lock(mutex_);
    if (idle_) {
      // The consumer is idle: its allowance burns off immediately.
      drained_.notify_all();
      return;
    }
    tokens_ = std::min(tokens_ + tokens, cap_);
  }
  cv_.notify_all();
}

std::uint64_t TimeBudget::acquire(std::uint64_t want) { return acquire_for(want, -1); }

std::uint64_t TimeBudget::acquire_for(std::uint64_t want, int timeout_ms) {
  const util::Deadline deadline = util::Deadline::after_ms(timeout_ms);
  std::unique_lock lock(mutex_);
  for (;;) {
    if (tokens_ > 0) break;
    if (closed_) return 0;
    const int remaining = deadline.remaining_ms();
    if (remaining < 0) {
      cv_.wait(lock);
    } else {
      if (remaining == 0) return 0;  // timed out (caller checks closed())
      cv_.wait_for(lock, std::chrono::milliseconds(remaining));
    }
  }
  std::uint64_t granted = std::min(want, tokens_);
  tokens_ -= granted;
  drained_.notify_all();
  return granted;
}

std::uint64_t TimeBudget::try_acquire(std::uint64_t want) {
  std::lock_guard lock(mutex_);
  std::uint64_t granted = std::min(want, tokens_);
  tokens_ -= granted;
  if (granted > 0) drained_.notify_all();
  return granted;
}

bool TimeBudget::pay(std::uint64_t amount) {
  while (amount > 0) {
    std::uint64_t got = acquire(amount);
    if (got == 0) return false;  // closed
    amount -= got;
  }
  return true;
}

bool TimeBudget::pay_for(std::uint64_t amount, int timeout_ms) {
  const util::Deadline deadline = util::Deadline::after_ms(timeout_ms);
  while (amount > 0) {
    std::uint64_t got = acquire_for(amount, deadline.remaining_ms());
    if (got == 0) return false;  // closed or deadline hit; remainder forgiven
    amount -= got;
  }
  return true;
}

bool TimeBudget::wait_below(std::uint64_t level, int timeout_ms) {
  std::unique_lock lock(mutex_);
  return drained_.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                           [&] { return tokens_ < level || closed_ || idle_; });
}

void TimeBudget::set_idle(bool idle) {
  {
    std::lock_guard lock(mutex_);
    idle_ = idle;
    if (idle) tokens_ = 0;  // burn whatever was banked
  }
  drained_.notify_all();
}

void TimeBudget::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool TimeBudget::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

bool TimeBudget::idle() const {
  std::lock_guard lock(mutex_);
  return idle_;
}

std::uint64_t TimeBudget::available() const {
  std::lock_guard lock(mutex_);
  return tokens_;
}

}  // namespace nisc::cosim
