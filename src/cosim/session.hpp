// Target-side session orchestration for the three co-simulation schemes.
//
// The paper runs the ISS as a separate host process wired to the SystemC
// simulator over pipes/sockets. We run it on a dedicated host *thread* over
// the same kind of file descriptors (see DESIGN.md, substitutions): GdbTarget
// hosts an ISS + GDB stub (for the GDB-Wrapper and GDB-Kernel schemes),
// DriverTarget hosts an ISS + eCos-like RTOS + device driver (for the
// Driver-Kernel scheme).
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "cosim/driver_kernel.hpp"
#include "cosim/pragma.hpp"
#include "cosim/time_budget.hpp"
#include "cosim/watchdog.hpp"
#include "ipc/capture.hpp"
#include "ipc/channel.hpp"
#include "ipc/fault.hpp"
#include "iss/cpu.hpp"
#include "iss/program.hpp"
#include "rsp/client.hpp"
#include "rsp/stub.hpp"
#include "rtos/rtos.hpp"

namespace nisc::cosim {

// ---------------------------------------------------------------------------
// GdbTarget: ISS + GDB stub on a target thread (GDB-Wrapper / GDB-Kernel).

struct GdbTargetConfig {
  std::size_t mem_size = 1 << 20;
  /// Paper: the GDB-Kernel IPC mechanism is a pipe.
  ipc::Transport transport = ipc::Transport::Pipe;
  std::uint64_t stub_quantum = 1024;
  /// Meter ISS execution against a TimeBudget fed by the SystemC side.
  bool throttled = true;
  /// Fault-injection plan installed on the stub-side endpoint (empty =
  /// healthy transport, zero overhead).
  ipc::FaultPlan fault_plan;
  /// Ring-buffer the client-side wire traffic for post-mortems.
  bool capture_wire = true;
  std::size_t capture_frames = 32;
  /// Live wire tap on the client-side endpoint (e.g. an
  /// analysis::LiveConformanceMonitor); null = none.
  std::shared_ptr<ipc::WireObserver> wire_observer;
  /// Client reply deadline (see rsp::ClientOptions).
  int reply_timeout_ms = 10000;
  /// Hard deadline on every blocking channel send/recv.
  int io_timeout_ms = 30000;
  /// How long shutdown() waits for the target thread before complaining.
  int join_timeout_ms = 10000;
  /// Throttle stall bound: acquire gives up (granting 0) after this long.
  int stall_timeout_ms = 10000;
  /// Run a LivenessWatchdog over the target thread (throttled runs only).
  bool watchdog = false;
};

class GdbTarget {
 public:
  /// Assembles `guest_source` (pragmas are filtered per §3.2) and prepares
  /// the stub/client pair. Call start() to launch the target thread.
  explicit GdbTarget(const std::string& guest_source, GdbTargetConfig config = {});
  ~GdbTarget();

  GdbTarget(const GdbTarget&) = delete;
  GdbTarget& operator=(const GdbTarget&) = delete;

  const iss::Program& program() const noexcept { return program_; }
  const std::vector<BreakpointBinding>& bindings() const noexcept { return bindings_; }
  rsp::GdbClient& client() noexcept { return *client_; }
  TimeBudget& budget() noexcept { return budget_; }
  const rsp::GdbStub& stub() const noexcept { return *stub_; }

  /// Fault-injection stats handle (null without a fault_plan).
  const std::shared_ptr<ipc::FaultState>& fault_state() const noexcept { return fault_state_; }
  /// Client-side wire capture (null when capture_wire is off).
  const std::shared_ptr<ipc::WireCapture>& capture() const noexcept { return capture_; }
  /// Liveness monitor (null unless enabled and started).
  LivenessWatchdog* watchdog() noexcept { return watchdog_.get(); }

  /// The CPU is owned by the target thread while running; inspect it only
  /// before start() or after shutdown().
  iss::Cpu& cpu() noexcept { return *cpu_; }

  /// Launches the stub on the target thread.
  void start();

  /// Stops the target and joins the thread (idempotent).
  void shutdown();

 private:
  GdbTargetConfig config_;
  iss::Program program_;
  std::vector<BreakpointBinding> bindings_;
  std::unique_ptr<iss::Cpu> cpu_;
  TimeBudget budget_;
  std::unique_ptr<rsp::GdbStub> stub_;
  std::unique_ptr<rsp::GdbClient> client_;
  std::shared_ptr<ipc::FaultState> fault_state_;
  std::shared_ptr<ipc::WireCapture> capture_;
  std::atomic<std::uint64_t> progress_{0};
  std::unique_ptr<LivenessWatchdog> watchdog_;
  std::atomic<bool> exited_{false};
  std::thread thread_;
  bool started_ = false;
  bool shut_down_ = false;
};

// ---------------------------------------------------------------------------
// DriverTarget: ISS + RTOS + device driver on a target thread (Driver-Kernel).

struct DriverTargetConfig {
  std::size_t mem_size = 1 << 20;
  /// Paper: Driver-Kernel uses sockets (data port 4444, interrupt 4445).
  ipc::Transport transport = ipc::Transport::SocketPair;
  rtos::RtosConfig rtos;
  /// iss_in port fed by guest dev_write / iss_out port serving dev_read.
  std::string write_port;
  std::string read_port;
  std::uint64_t run_quantum = 2048;
  bool throttled = true;
  /// Fault-injection plan installed on the driver-side data endpoint.
  ipc::FaultPlan fault_plan;
  /// Ring-buffer the kernel-side data traffic for post-mortems.
  bool capture_wire = true;
  std::size_t capture_frames = 32;
  /// Live wire tap on the kernel-side data endpoint (e.g. an
  /// analysis::LiveConformanceMonitor); null = none.
  std::shared_ptr<ipc::WireObserver> wire_observer;
  /// Live wire tap on the pump-side interrupt endpoint. Sees every
  /// INTERRUPT as an Rx transfer plus the pump's "ack" wire event, i.e.
  /// exactly the DriverIrq automaton's alphabet (no flip_direction needed).
  std::shared_ptr<ipc::WireObserver> irq_observer;
  /// Hard deadline on every blocking channel send/recv.
  int io_timeout_ms = 30000;
  /// Pay-after settlement bound: when the SystemC side stops depositing for
  /// this long, time correlation is abandoned (the guest keeps running
  /// unthrottled) instead of deadlocking the target thread.
  int pay_timeout_ms = 5000;
  /// How long shutdown() waits for the target thread before complaining.
  int join_timeout_ms = 10000;
  /// Run a LivenessWatchdog over the target thread (throttled runs only).
  bool watchdog = false;
};

class DriverTarget {
 public:
  /// Assembles `guest_source` (the RTOS ABI prelude is prepended) and
  /// boots the RTOS with an ScPortDriver as device 0.
  explicit DriverTarget(const std::string& guest_source, DriverTargetConfig config);
  ~DriverTarget();

  DriverTarget(const DriverTarget&) = delete;
  DriverTarget& operator=(const DriverTarget&) = delete;

  /// Kernel-side endpoints to hand to DriverKernelExtension (call once each,
  /// before start()).
  ipc::Channel take_data_endpoint();
  ipc::Channel take_interrupt_endpoint();

  const iss::Program& program() const noexcept { return program_; }
  rtos::Kernel& kernel() noexcept { return *kernel_; }
  TimeBudget& budget() noexcept { return budget_; }
  iss::Cpu& cpu() noexcept { return *cpu_; }
  const ScPortDriver& driver() const noexcept { return *driver_; }

  /// Fault-injection stats handle (null without a fault_plan).
  const std::shared_ptr<ipc::FaultState>& fault_state() const noexcept { return fault_state_; }
  /// Kernel-side data-port wire capture (null when capture_wire is off).
  const std::shared_ptr<ipc::WireCapture>& capture() const noexcept { return capture_; }
  /// Liveness monitor (null unless enabled and started).
  LivenessWatchdog* watchdog() noexcept { return watchdog_.get(); }
  /// True once the target abandoned time correlation (pay deadline blown).
  bool throttle_lost() const noexcept { return throttle_lost_.load(); }

  /// Launches the RTOS scheduling loop and the interrupt listener thread.
  void start();

  /// Stops the target and joins all threads (idempotent).
  void shutdown();

  /// True once every guest thread exited.
  bool finished() const noexcept { return finished_.load(); }
  rtos::RunStatus last_status() const noexcept { return last_status_.load(); }

 private:
  void run_loop();

  DriverTargetConfig config_;
  iss::Program program_;
  std::unique_ptr<iss::Cpu> cpu_;
  std::unique_ptr<rtos::Kernel> kernel_;
  ScPortDriver* driver_ = nullptr;  // owned by kernel_
  TimeBudget budget_;
  ipc::Channel data_kernel_side_;
  ipc::Channel irq_kernel_side_;
  ipc::Channel irq_target_side_;
  std::shared_ptr<ipc::FaultState> fault_state_;
  std::shared_ptr<ipc::WireCapture> capture_;
  std::atomic<std::uint64_t> progress_{0};
  std::unique_ptr<LivenessWatchdog> watchdog_;
  std::atomic<bool> exited_{false};
  std::atomic<bool> throttle_lost_{false};
  std::unique_ptr<InterruptPump> pump_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> finished_{false};
  std::atomic<rtos::RunStatus> last_status_{rtos::RunStatus::Budget};
  bool started_ = false;
  bool shut_down_ = false;
};

}  // namespace nisc::cosim
