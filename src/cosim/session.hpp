// Target-side session orchestration for the three co-simulation schemes.
//
// The paper runs the ISS as a separate host process wired to the SystemC
// simulator over pipes/sockets. We run it on a dedicated host *thread* over
// the same kind of file descriptors (see DESIGN.md, substitutions): GdbTarget
// hosts an ISS + GDB stub (for the GDB-Wrapper and GDB-Kernel schemes),
// DriverTarget hosts an ISS + eCos-like RTOS + device driver (for the
// Driver-Kernel scheme).
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "cosim/driver_kernel.hpp"
#include "cosim/pragma.hpp"
#include "cosim/time_budget.hpp"
#include "ipc/channel.hpp"
#include "iss/cpu.hpp"
#include "iss/program.hpp"
#include "rsp/client.hpp"
#include "rsp/stub.hpp"
#include "rtos/rtos.hpp"

namespace nisc::cosim {

// ---------------------------------------------------------------------------
// GdbTarget: ISS + GDB stub on a target thread (GDB-Wrapper / GDB-Kernel).

struct GdbTargetConfig {
  std::size_t mem_size = 1 << 20;
  /// Paper: the GDB-Kernel IPC mechanism is a pipe.
  ipc::Transport transport = ipc::Transport::Pipe;
  std::uint64_t stub_quantum = 1024;
  /// Meter ISS execution against a TimeBudget fed by the SystemC side.
  bool throttled = true;
};

class GdbTarget {
 public:
  /// Assembles `guest_source` (pragmas are filtered per §3.2) and prepares
  /// the stub/client pair. Call start() to launch the target thread.
  explicit GdbTarget(const std::string& guest_source, GdbTargetConfig config = {});
  ~GdbTarget();

  GdbTarget(const GdbTarget&) = delete;
  GdbTarget& operator=(const GdbTarget&) = delete;

  const iss::Program& program() const noexcept { return program_; }
  const std::vector<BreakpointBinding>& bindings() const noexcept { return bindings_; }
  rsp::GdbClient& client() noexcept { return *client_; }
  TimeBudget& budget() noexcept { return budget_; }
  const rsp::GdbStub& stub() const noexcept { return *stub_; }

  /// The CPU is owned by the target thread while running; inspect it only
  /// before start() or after shutdown().
  iss::Cpu& cpu() noexcept { return *cpu_; }

  /// Launches the stub on the target thread.
  void start();

  /// Stops the target and joins the thread (idempotent).
  void shutdown();

 private:
  GdbTargetConfig config_;
  iss::Program program_;
  std::vector<BreakpointBinding> bindings_;
  std::unique_ptr<iss::Cpu> cpu_;
  TimeBudget budget_;
  std::unique_ptr<rsp::GdbStub> stub_;
  std::unique_ptr<rsp::GdbClient> client_;
  std::thread thread_;
  bool started_ = false;
  bool shut_down_ = false;
};

// ---------------------------------------------------------------------------
// DriverTarget: ISS + RTOS + device driver on a target thread (Driver-Kernel).

struct DriverTargetConfig {
  std::size_t mem_size = 1 << 20;
  /// Paper: Driver-Kernel uses sockets (data port 4444, interrupt 4445).
  ipc::Transport transport = ipc::Transport::SocketPair;
  rtos::RtosConfig rtos;
  /// iss_in port fed by guest dev_write / iss_out port serving dev_read.
  std::string write_port;
  std::string read_port;
  std::uint64_t run_quantum = 2048;
  bool throttled = true;
};

class DriverTarget {
 public:
  /// Assembles `guest_source` (the RTOS ABI prelude is prepended) and
  /// boots the RTOS with an ScPortDriver as device 0.
  explicit DriverTarget(const std::string& guest_source, DriverTargetConfig config);
  ~DriverTarget();

  DriverTarget(const DriverTarget&) = delete;
  DriverTarget& operator=(const DriverTarget&) = delete;

  /// Kernel-side endpoints to hand to DriverKernelExtension (call once each,
  /// before start()).
  ipc::Channel take_data_endpoint();
  ipc::Channel take_interrupt_endpoint();

  const iss::Program& program() const noexcept { return program_; }
  rtos::Kernel& kernel() noexcept { return *kernel_; }
  TimeBudget& budget() noexcept { return budget_; }
  iss::Cpu& cpu() noexcept { return *cpu_; }
  const ScPortDriver& driver() const noexcept { return *driver_; }

  /// Launches the RTOS scheduling loop and the interrupt listener thread.
  void start();

  /// Stops the target and joins all threads (idempotent).
  void shutdown();

  /// True once every guest thread exited.
  bool finished() const noexcept { return finished_.load(); }
  rtos::RunStatus last_status() const noexcept { return last_status_.load(); }

 private:
  void run_loop();

  DriverTargetConfig config_;
  iss::Program program_;
  std::unique_ptr<iss::Cpu> cpu_;
  std::unique_ptr<rtos::Kernel> kernel_;
  ScPortDriver* driver_ = nullptr;  // owned by kernel_
  TimeBudget budget_;
  ipc::Channel data_kernel_side_;
  ipc::Channel irq_kernel_side_;
  ipc::Channel irq_target_side_;
  std::unique_ptr<InterruptPump> pump_;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> finished_{false};
  std::atomic<rtos::RunStatus> last_status_{rtos::RunStatus::Budget};
  bool started_ = false;
  bool shut_down_ = false;
};

}  // namespace nisc::cosim
