// The pragma filter of paper §3.2.
//
// The GDB-Kernel programming model binds guest variables to iss_in/iss_out
// ports via breakpoints. The paper automates the setup with pragmas: "a
// special pragma, containing the name of the variable, is inserted before
// the line where the breakpoint is to be set; a simple filter automatically
// generates the proper GDB script … and a map <variable> <line>".
//
// Our guest sources are RV32 assembly, so the pragmas are:
//
//     #pragma iss_in("router.from_cpu", csum_result)
//     sw t2, 0(t3)            # the statement writing csum_result
//     <next statement>        # <- breakpoint lands HERE (line after)
//
//     #pragma iss_out("router.to_cpu", pkt_word)
//     lw t2, 0(t3)            # <- breakpoint lands HERE (the very line)
//
// matching the paper's rule: for iss_in ports the breakpoint goes on the
// line immediately *following* the statement (the value must be written
// before the stop); for iss_out ports it goes on the very line (the value
// is injected before the statement executes).
//
// filter_pragmas() rewrites the source with synthetic labels at the
// breakpoint lines and returns the binding list; resolve_bindings() turns
// labels and variable names into addresses after assembly.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "iss/program.hpp"

namespace nisc::cosim {

/// Direction of a breakpoint binding, from the SystemC port's perspective.
enum class BindDirection : std::uint8_t {
  IssToSc,  ///< iss_in port: guest variable -> SystemC (pragma iss_in)
  ScToIss,  ///< iss_out port: SystemC -> guest variable (pragma iss_out)
};

/// One pragma occurrence, before address resolution.
struct PragmaBinding {
  BindDirection direction;
  std::string port;         ///< SystemC iss port name
  std::string variable;     ///< guest symbol
  std::string label;        ///< synthetic breakpoint label injected in source
  int pragma_line = 0;      ///< 1-based source line of the pragma
  int statement_line = 0;   ///< 1-based line of the annotated statement
  int breakpoint_line = 0;  ///< 1-based line the breakpoint label lands on
};

/// Output of the filter: transformed source plus binding records.
struct FilteredSource {
  std::string source;
  std::vector<PragmaBinding> bindings;
};

/// Scans `source` for #pragma iss_in/iss_out annotations, injects synthetic
/// breakpoint labels per the paper's placement rules, and strips the
/// pragmas. Throws RuntimeError on malformed pragmas.
FilteredSource filter_pragmas(std::string_view source);

/// A fully resolved breakpoint<->port binding.
struct BreakpointBinding {
  BindDirection direction;
  std::string port;
  std::string variable;
  std::uint32_t breakpoint_addr = 0;
  std::uint32_t variable_addr = 0;
  std::uint32_t width = 4;  ///< bytes transferred per hit
};

/// Resolves filtered bindings against an assembled program's symbol table.
/// Throws RuntimeError when a label or variable is undefined.
std::vector<BreakpointBinding> resolve_bindings(const std::vector<PragmaBinding>& bindings,
                                                const iss::Program& program);

}  // namespace nisc::cosim
