// Driver-Kernel co-simulation (paper §4): the ISS masters the simulation
// through a device driver in its operating system.
//
// SystemC side (this extension, implementing the modified scheduler of
// paper Fig. 5): at the beginning of each simulation cycle it drains the
// *socket data port* (paper: port 4444) —
//     WRITE messages store data into the named iss_in ports and wake their
//     iss_processes; READ messages answer with the named iss_out values —
// and at the end of each cycle it forwards device interrupts on the
// *socket interrupt port* (paper: port 4445).
//
// ISS side: ScPortDriver is the device driver embedded in the RTOS. Guest
// code calls the driver API (SYS_DEV_WRITE / SYS_DEV_READ); the driver
// exchanges the §4.2 message format with this extension. A host listener
// thread turns interrupt messages into rtos ISR dispatches.
#pragma once

#include <algorithm>
#include <atomic>
#include <deque>
#include <optional>
#include <thread>
#include <vector>

#include "cosim/error.hpp"
#include "cosim/time_budget.hpp"
#include "ipc/message.hpp"
#include "rtos/rtos.hpp"
#include "sysc/iss_port.hpp"
#include "sysc/kernel.hpp"

namespace nisc::cosim {

struct DriverKernelOptions {
  /// ISS instructions granted per microsecond of simulated time.
  std::uint64_t instructions_per_us = 10000;
  /// Push iss_out values to the driver as soon as hardware writes them
  /// (asynchronous data flow). When false, the driver must send READ
  /// requests.
  bool push_outputs = true;
  /// Reverse throttle (see GdbKernelOptions::max_budget_lead). 0 disables.
  std::uint64_t max_budget_lead = 8192;
  /// iss_out ports this extension's driver owns: only these are pushed on
  /// its data socket. Empty = all output ports (single-CPU setups). In
  /// multi-processor designs each CPU's extension must list its own ports,
  /// or the first extension would consume every CPU's data.
  std::vector<std::string> owned_ports;
  /// IRQ number announced on the interrupt socket whenever a cycle pushed
  /// fresh iss_out data to this driver — paper Fig. 5's "interrupt
  /// generated?" edge as a data-arrival notification. Negative disables it
  /// (the driver then learns of data only by draining its data socket).
  int data_irq = -1;
};

struct DriverKernelStats {
  std::uint64_t messages_in = 0;    ///< WRITE/READ frames from the driver
  std::uint64_t messages_out = 0;   ///< READ-REPLY frames to the driver
  std::uint64_t interrupts_sent = 0;
  std::uint64_t words_delivered = 0;
};

/// SystemC-kernel-side endpoint of the Driver-Kernel scheme.
class DriverKernelExtension : public sysc::kernel_extension {
 public:
  /// `data` and `interrupts` are the kernel-side endpoints of the data and
  /// interrupt sockets; `budget` (may be null) meters the ISS.
  DriverKernelExtension(ipc::Channel data, ipc::Channel interrupts, TimeBudget* budget,
                        DriverKernelOptions options = {});

  void on_cycle_begin(sysc::sc_simcontext& ctx) override;
  void on_cycle_end(sysc::sc_simcontext& ctx) override;
  void on_time_advance(sysc::sc_simcontext& ctx, const sysc::sc_time& now) override;
  bool on_starvation(sysc::sc_simcontext& ctx) override;
  void on_run_end(sysc::sc_simcontext& ctx) override;

  /// Queues a device interrupt; it is sent on the interrupt socket at the
  /// end of the current cycle (paper Fig. 5). Callable from SystemC
  /// processes.
  void post_interrupt(std::uint32_t irq) { pending_interrupts_.push_back(irq); }

  /// True once the offload port died and was quiesced: the extension stops
  /// exchanging messages but the simulation (router, other CPUs' ports)
  /// keeps running — graceful degradation instead of teardown.
  bool quiesced() const noexcept { return quiesced_; }

  /// The failure that caused the quiesce, with the data-port wire
  /// post-mortem. Unset while healthy.
  const std::optional<CosimError>& error() const noexcept { return error_; }

  const DriverKernelStats& stats() const noexcept { return stats_; }

 private:
  void handle_message(sysc::sc_simcontext& ctx, const ipc::DriverMessage& msg);

  /// Shuts the data/interrupt ports down after a transport failure and
  /// latches a CosimError; idempotent.
  void quiesce(const std::string& reason);

  bool delivery_safe(sysc::sc_simcontext& ctx, const sysc::iss_port_base* port) const;

  ipc::Channel data_;
  ipc::Channel interrupts_;
  TimeBudget* budget_;
  DriverKernelOptions options_;
  std::deque<std::uint32_t> pending_interrupts_;
  /// Messages whose target port is still draining a previous delivery.
  std::deque<ipc::DriverMessage> backlog_;
  std::map<const sysc::iss_port_base*, std::uint64_t> last_delivery_delta_;
  std::uint64_t last_time_ps_ = 0;
  std::uint64_t deposit_remainder_ = 0;
  bool quiesced_ = false;
  std::optional<CosimError> error_;
  DriverKernelStats stats_;
  /// stats_ values already pushed into the metrics registry (the delta is
  /// published once per run() from on_run_end).
  DriverKernelStats published_;
};

/// The device driver registered inside the RTOS: forwards guest dev_write
/// payloads as WRITE messages to one iss_in port, and serves guest dev_read
/// from the stream of values the kernel pushes for one iss_out port.
class ScPortDriver : public rtos::Driver {
 public:
  ScPortDriver(ipc::Channel data, std::string write_port, std::string read_port);

  std::string_view name() const noexcept override { return "scdev"; }
  std::size_t write(std::span<const std::uint8_t> data) override;
  std::size_t read(std::span<std::uint8_t> out) override;

  /// Blocks up to `timeout_ms` for data on the channel (used by the target
  /// loop while every guest thread is blocked in dev_read).
  bool wait_incoming(int timeout_ms);

  /// True once the data channel died: writes are swallowed (returning 0 to
  /// the guest) and reads only drain what already arrived.
  bool degraded() const noexcept { return degraded_.load(std::memory_order_relaxed); }

  std::uint64_t frames_sent() const noexcept { return frames_sent_; }
  std::uint64_t frames_received() const noexcept { return frames_received_; }

 private:
  void drain_incoming();
  void mark_degraded(const char* what);

  ipc::Channel data_;
  std::string write_port_;
  std::string read_port_;
  std::deque<std::uint8_t> rx_;
  std::atomic<bool> degraded_{false};
  std::uint64_t frames_sent_ = 0;
  std::uint64_t frames_received_ = 0;
};

/// Host thread pumping the interrupt socket into rtos ISR dispatches — the
/// paper's "thread that listens to the interrupts generated from the
/// SystemC device" (§4.1).
class InterruptPump {
 public:
  InterruptPump(ipc::Channel channel, rtos::Kernel& kernel);
  ~InterruptPump();

  InterruptPump(const InterruptPump&) = delete;
  InterruptPump& operator=(const InterruptPump&) = delete;

  void stop();

  std::uint64_t delivered() const noexcept { return delivered_.load(); }

 private:
  void run();

  ipc::Channel channel_;
  rtos::Kernel& kernel_;
  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace nisc::cosim
