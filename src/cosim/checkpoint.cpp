#include "cosim/checkpoint.hpp"

#include <algorithm>
#include <sstream>

#include "cosim/bytes.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/checksum.hpp"
#include "util/error.hpp"

namespace nisc::cosim {

using util::RuntimeError;

namespace {

std::string hex32(std::uint32_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xF];
    v >>= 4;
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// ISS layer

bool IssSnapshot::operator==(const IssSnapshot& other) const {
  return regs == other.regs && pc == other.pc && instret == other.instret &&
         cycles == other.cycles && last_halt == other.last_halt &&
         cycle_model.base == other.cycle_model.base &&
         cycle_model.load_store == other.cycle_model.load_store &&
         cycle_model.branch_taken == other.cycle_model.branch_taken &&
         cycle_model.mul == other.cycle_model.mul && cycle_model.div == other.cycle_model.div &&
         breakpoints == other.breakpoints && watchpoints == other.watchpoints &&
         mem_size == other.mem_size && pages == other.pages;
}

IssSnapshot IssSnapshot::capture(const iss::Cpu& cpu) {
  IssSnapshot snap;
  for (std::uint8_t i = 0; i < 32; ++i) snap.regs[i] = cpu.reg(i);
  snap.pc = cpu.pc();
  snap.instret = cpu.instret();
  snap.cycles = cpu.cycles();
  snap.last_halt = static_cast<std::uint8_t>(cpu.last_halt());
  snap.cycle_model = const_cast<iss::Cpu&>(cpu).cycle_model();
  snap.breakpoints.assign(cpu.breakpoints().begin(), cpu.breakpoints().end());
  snap.watchpoints.assign(cpu.watchpoints().begin(), cpu.watchpoints().end());
  const std::span<const std::uint8_t> mem = cpu.mem().bytes();
  snap.mem_size = mem.size();
  for (std::size_t base = 0; base < mem.size(); base += kCheckpointPageSize) {
    const std::size_t len = std::min<std::size_t>(kCheckpointPageSize, mem.size() - base);
    const std::span<const std::uint8_t> page = mem.subspan(base, len);
    if (std::all_of(page.begin(), page.end(), [](std::uint8_t b) { return b == 0; })) continue;
    snap.pages.emplace_back(static_cast<std::uint32_t>(base / kCheckpointPageSize),
                            std::vector<std::uint8_t>(page.begin(), page.end()));
  }
  return snap;
}

void IssSnapshot::apply(iss::Cpu& cpu) const {
  if (cpu.mem().size() != mem_size) {
    throw RuntimeError("checkpoint: memory size mismatch (snapshot " + std::to_string(mem_size) +
                       ", cpu " + std::to_string(cpu.mem().size()) + ")");
  }
  cpu.mem().clear();
  for (const auto& [index, bytes] : pages) {
    const std::uint64_t base = static_cast<std::uint64_t>(index) * kCheckpointPageSize;
    if (base + bytes.size() > mem_size) {
      throw RuntimeError("checkpoint: page " + std::to_string(index) + " outside memory");
    }
    cpu.mem().write_block(static_cast<std::uint32_t>(base), bytes);
  }
  for (std::uint8_t i = 1; i < 32; ++i) cpu.set_reg(i, regs[i]);
  cpu.set_pc(pc);
  cpu.restore_counters(instret, cycles);
  cpu.restore_halt(static_cast<iss::Halt>(last_halt));
  cpu.cycle_model() = cycle_model;
  for (std::uint32_t addr : std::vector<std::uint32_t>(cpu.breakpoints().begin(),
                                                       cpu.breakpoints().end())) {
    cpu.remove_breakpoint(addr);
  }
  for (std::uint32_t addr : breakpoints) cpu.add_breakpoint(addr);
  std::vector<std::uint32_t> watch_addrs;
  for (const auto& [addr, len] : cpu.watchpoints()) watch_addrs.push_back(addr);
  for (std::uint32_t addr : watch_addrs) cpu.remove_watchpoint(addr);
  for (const auto& [addr, len] : watchpoints) cpu.add_watchpoint(addr, len);
}

// ---------------------------------------------------------------------------
// Section payload encodings

namespace {

std::vector<std::uint8_t> encode_iss(const IssSnapshot& snap) {
  ByteWriter w;
  for (std::uint32_t reg : snap.regs) w.u32(reg);
  w.u32(snap.pc);
  w.u64(snap.instret);
  w.u64(snap.cycles);
  w.u8(snap.last_halt);
  w.u32(snap.cycle_model.base);
  w.u32(snap.cycle_model.load_store);
  w.u32(snap.cycle_model.branch_taken);
  w.u32(snap.cycle_model.mul);
  w.u32(snap.cycle_model.div);
  w.u32(static_cast<std::uint32_t>(snap.breakpoints.size()));
  for (std::uint32_t addr : snap.breakpoints) w.u32(addr);
  w.u32(static_cast<std::uint32_t>(snap.watchpoints.size()));
  for (const auto& [addr, len] : snap.watchpoints) {
    w.u32(addr);
    w.u32(len);
  }
  w.u64(snap.mem_size);
  w.u32(static_cast<std::uint32_t>(snap.pages.size()));
  for (const auto& [index, bytes] : snap.pages) {
    w.u32(index);
    w.u32(static_cast<std::uint32_t>(bytes.size()));
    w.bytes(bytes);
  }
  return w.take();
}

IssSnapshot decode_iss(std::span<const std::uint8_t> payload) {
  ByteReader r(payload, "ISS section");
  IssSnapshot snap;
  for (std::uint32_t& reg : snap.regs) reg = r.u32();
  snap.pc = r.u32();
  snap.instret = r.u64();
  snap.cycles = r.u64();
  snap.last_halt = r.u8();
  snap.cycle_model.base = r.u32();
  snap.cycle_model.load_store = r.u32();
  snap.cycle_model.branch_taken = r.u32();
  snap.cycle_model.mul = r.u32();
  snap.cycle_model.div = r.u32();
  const std::uint32_t n_bp = r.u32();
  for (std::uint32_t i = 0; i < n_bp; ++i) snap.breakpoints.push_back(r.u32());
  const std::uint32_t n_wp = r.u32();
  for (std::uint32_t i = 0; i < n_wp; ++i) {
    std::uint32_t addr = r.u32();
    std::uint32_t len = r.u32();
    snap.watchpoints.emplace_back(addr, len);
  }
  snap.mem_size = r.u64();
  const std::uint32_t n_pages = r.u32();
  for (std::uint32_t i = 0; i < n_pages; ++i) {
    std::uint32_t index = r.u32();
    std::uint32_t len = r.u32();
    snap.pages.emplace_back(index, r.bytes(len));
  }
  if (!r.done()) throw RuntimeError("checkpoint: trailing bytes in ISS section");
  return snap;
}

std::vector<std::uint8_t> encode_kernel(const sysc::kernel_state& state) {
  ByteWriter w;
  w.u64(state.now_ps);
  w.u64(state.timed_seq);
  w.u64(state.stats.delta_cycles);
  w.u64(state.stats.process_dispatches);
  w.u64(state.stats.channel_updates);
  w.u64(state.stats.timed_advances);
  w.u64(state.stats.extension_checks);
  w.u32(static_cast<std::uint32_t>(state.timed.size()));
  for (const auto& entry : state.timed) {
    w.u64(entry.at_ps);
    w.u64(entry.seq);
    w.u8(entry.is_process ? 1 : 0);
    w.str(entry.name);
    w.u32(entry.ordinal);
  }
  w.u32(static_cast<std::uint32_t>(state.delta_events.size()));
  for (const auto& entry : state.delta_events) {
    w.str(entry.name);
    w.u32(entry.ordinal);
  }
  return w.take();
}

sysc::kernel_state decode_kernel(std::span<const std::uint8_t> payload) {
  ByteReader r(payload, "KRNL section");
  sysc::kernel_state state;
  state.now_ps = r.u64();
  state.timed_seq = r.u64();
  state.stats.delta_cycles = r.u64();
  state.stats.process_dispatches = r.u64();
  state.stats.channel_updates = r.u64();
  state.stats.timed_advances = r.u64();
  state.stats.extension_checks = r.u64();
  const std::uint32_t n_timed = r.u32();
  for (std::uint32_t i = 0; i < n_timed; ++i) {
    sysc::kernel_state::timed_entry entry;
    entry.at_ps = r.u64();
    entry.seq = r.u64();
    entry.is_process = r.u8() != 0;
    entry.name = r.str();
    entry.ordinal = r.u32();
    state.timed.push_back(std::move(entry));
  }
  const std::uint32_t n_delta = r.u32();
  for (std::uint32_t i = 0; i < n_delta; ++i) {
    sysc::kernel_state::delta_entry entry;
    entry.name = r.str();
    entry.ordinal = r.u32();
    state.delta_events.push_back(std::move(entry));
  }
  if (!r.done()) throw RuntimeError("checkpoint: trailing bytes in KRNL section");
  return state;
}

std::vector<std::uint8_t> encode_channel(const ChannelSnapshot& chan) {
  ByteWriter w;
  w.str(chan.label);
  w.u64(chan.tx_seq);
  w.u64(chan.rx_seq);
  w.u64(chan.inflight.size());
  w.bytes(chan.inflight);
  return w.take();
}

ChannelSnapshot decode_channel(std::span<const std::uint8_t> payload) {
  ByteReader r(payload, "CHAN section");
  ChannelSnapshot chan;
  chan.label = r.str();
  chan.tx_seq = r.u64();
  chan.rx_seq = r.u64();
  const std::uint64_t inflight = r.u64();
  chan.inflight = r.bytes(inflight);
  if (!r.done()) throw RuntimeError("checkpoint: trailing bytes in CHAN section");
  return chan;
}

std::vector<std::uint8_t> encode_worker(const WorkerSnapshot& worker) {
  ByteWriter w;
  w.u64(worker.irqs_delivered);
  w.u32(static_cast<std::uint32_t>(worker.pending_irqs.size()));
  for (std::uint32_t irq : worker.pending_irqs) w.u32(irq);
  w.u64(worker.dev_rx.size());
  w.bytes(worker.dev_rx);
  return w.take();
}

WorkerSnapshot decode_worker(std::span<const std::uint8_t> payload) {
  ByteReader r(payload, "WRKR section");
  WorkerSnapshot worker;
  worker.irqs_delivered = r.u64();
  const std::uint32_t n_irqs = r.u32();
  for (std::uint32_t i = 0; i < n_irqs; ++i) worker.pending_irqs.push_back(r.u32());
  const std::uint64_t n_rx = r.u64();
  worker.dev_rx = r.bytes(n_rx);
  if (!r.done()) throw RuntimeError("checkpoint: trailing bytes in WRKR section");
  return worker;
}

void append_section(ByteWriter& w, std::uint32_t tag, const std::vector<std::uint8_t>& payload) {
  w.u32(tag);
  w.u64(payload.size());
  w.bytes(payload);
  w.u32(util::crc32(payload));
}

std::string tag_name(std::uint32_t tag) {
  std::string name(4, '?');
  for (int i = 0; i < 4; ++i) {
    const char c = static_cast<char>((tag >> (8 * i)) & 0xFF);
    name[static_cast<std::size_t>(i)] = (c >= 0x20 && c < 0x7F) ? c : '?';
  }
  return name;
}

}  // namespace

// ---------------------------------------------------------------------------
// Container

bool Checkpoint::operator==(const Checkpoint& other) const {
  return iss == other.iss && kernel == other.kernel && channels == other.channels &&
         worker == other.worker && extra == other.extra;
}

std::vector<std::uint8_t> encode_checkpoint(const Checkpoint& checkpoint) {
  obs::ScopedSpan span("ckpt.encode", "ckpt");
  ByteWriter w;
  w.u32(kCheckpointMagic);
  w.u32(kCheckpointVersion);
  if (checkpoint.iss) append_section(w, kSectionIss, encode_iss(*checkpoint.iss));
  if (checkpoint.kernel) append_section(w, kSectionKernel, encode_kernel(*checkpoint.kernel));
  for (const ChannelSnapshot& chan : checkpoint.channels) {
    append_section(w, kSectionChannel, encode_channel(chan));
  }
  if (checkpoint.worker) append_section(w, kSectionWorker, encode_worker(*checkpoint.worker));
  for (const auto& [tag, payload] : checkpoint.extra) append_section(w, tag, payload);
  std::vector<std::uint8_t> out = w.take();
  static obs::Counter& c_encodes = obs::counter("ckpt.encodes");
  c_encodes.add(1);
  static obs::Histogram& h_bytes = obs::histogram("ckpt.bytes", obs::default_bytes_bounds());
  h_bytes.observe(out.size());
  return out;
}

Checkpoint decode_checkpoint(std::span<const std::uint8_t> bytes) {
  obs::ScopedSpan span("ckpt.decode", "ckpt", "bytes", bytes.size());
  ByteReader r(bytes, "header");
  if (r.u32() != kCheckpointMagic) throw RuntimeError("checkpoint: bad magic (not NCKP)");
  const std::uint32_t version = r.u32();
  if (version != kCheckpointVersion) {
    throw RuntimeError("checkpoint: unsupported version " + std::to_string(version) +
                       " (this build reads version " + std::to_string(kCheckpointVersion) + ")");
  }
  Checkpoint out;
  while (!r.done()) {
    const std::uint32_t tag = r.u32();
    const std::uint64_t len = r.u64();
    if (len > r.remaining()) {
      throw RuntimeError("checkpoint truncated in section " + tag_name(tag) + " (payload " +
                         std::to_string(len) + " bytes, have " + std::to_string(r.remaining()) +
                         ")");
    }
    const std::vector<std::uint8_t> payload = r.bytes(len);
    const std::uint32_t crc = r.u32();
    if (crc != util::crc32(payload)) {
      throw RuntimeError("checkpoint: CRC mismatch in section " + tag_name(tag));
    }
    switch (tag) {
      case kSectionIss: out.iss = decode_iss(payload); break;
      case kSectionKernel: out.kernel = decode_kernel(payload); break;
      case kSectionChannel: out.channels.push_back(decode_channel(payload)); break;
      case kSectionWorker: out.worker = decode_worker(payload); break;
      default: out.extra.emplace_back(tag, payload); break;
    }
  }
  static obs::Counter& c_decodes = obs::counter("ckpt.decodes");
  c_decodes.add(1);
  return out;
}

// ---------------------------------------------------------------------------
// Inspection / diff

std::string describe_checkpoint(const Checkpoint& checkpoint) {
  std::ostringstream out;
  out << "checkpoint v" << kCheckpointVersion << "\n";
  if (checkpoint.iss) {
    const IssSnapshot& iss = *checkpoint.iss;
    out << "  ISS : pc=0x" << hex32(iss.pc) << " instret=" << iss.instret
        << " cycles=" << iss.cycles << " halt=" << iss::halt_name(static_cast<iss::Halt>(iss.last_halt))
        << " mem=" << iss.mem_size << "B in " << iss.pages.size() << " page(s), "
        << iss.breakpoints.size() << " bp, " << iss.watchpoints.size() << " wp\n";
  }
  if (checkpoint.kernel) {
    const sysc::kernel_state& k = *checkpoint.kernel;
    out << "  KRNL: now=" << k.now_ps << "ps deltas=" << k.stats.delta_cycles << " timed="
        << k.timed.size() << " delta-pending=" << k.delta_events.size() << "\n";
  }
  for (const ChannelSnapshot& chan : checkpoint.channels) {
    out << "  CHAN: " << chan.label << " tx_seq=" << chan.tx_seq << " rx_seq=" << chan.rx_seq
        << " inflight=" << chan.inflight.size() << "B\n";
  }
  if (checkpoint.worker) {
    out << "  WRKR: irqs=" << checkpoint.worker->irqs_delivered << " pending="
        << checkpoint.worker->pending_irqs.size() << " dev_rx=" << checkpoint.worker->dev_rx.size()
        << "B\n";
  }
  for (const auto& [tag, payload] : checkpoint.extra) {
    out << "  " << tag_name(tag) << ": " << payload.size() << "B (unknown section, preserved)\n";
  }
  return out.str();
}

namespace {

void diff_iss(const IssSnapshot& a, const IssSnapshot& b, std::vector<std::string>& out) {
  if (a.pc != b.pc) out.push_back("iss: pc 0x" + hex32(a.pc) + " != 0x" + hex32(b.pc));
  for (std::size_t i = 0; i < 32; ++i) {
    if (a.regs[i] != b.regs[i]) {
      out.push_back("iss: x" + std::to_string(i) + " 0x" + hex32(a.regs[i]) + " != 0x" +
                    hex32(b.regs[i]));
    }
  }
  if (a.instret != b.instret) {
    out.push_back("iss: instret " + std::to_string(a.instret) + " != " + std::to_string(b.instret));
  }
  if (a.cycles != b.cycles) {
    out.push_back("iss: cycles " + std::to_string(a.cycles) + " != " + std::to_string(b.cycles));
  }
  if (a.last_halt != b.last_halt) {
    out.push_back(std::string("iss: halt ") + iss::halt_name(static_cast<iss::Halt>(a.last_halt)) +
                  " != " + iss::halt_name(static_cast<iss::Halt>(b.last_halt)));
  }
  if (a.mem_size != b.mem_size) {
    out.push_back("iss: mem size " + std::to_string(a.mem_size) + " != " +
                  std::to_string(b.mem_size));
    return;
  }
  // Pages are sorted by index on both sides; walk them in lockstep.
  std::size_t ia = 0;
  std::size_t ib = 0;
  while (ia < a.pages.size() || ib < b.pages.size()) {
    const std::uint32_t pa = ia < a.pages.size() ? a.pages[ia].first : ~0u;
    const std::uint32_t pb = ib < b.pages.size() ? b.pages[ib].first : ~0u;
    if (pa < pb) {
      out.push_back("iss: page " + std::to_string(pa) + " non-zero only in first");
      ++ia;
    } else if (pb < pa) {
      out.push_back("iss: page " + std::to_string(pb) + " non-zero only in second");
      ++ib;
    } else {
      const auto& da = a.pages[ia].second;
      const auto& db = b.pages[ib].second;
      auto mismatch = std::mismatch(da.begin(), da.end(), db.begin(), db.end());
      if (mismatch.first != da.end() || mismatch.second != db.end()) {
        const std::size_t offset = static_cast<std::size_t>(mismatch.first - da.begin());
        out.push_back("iss: page " + std::to_string(pa) + " differs at byte " +
                      std::to_string(offset) + " (addr 0x" +
                      hex32(pa * kCheckpointPageSize + static_cast<std::uint32_t>(offset)) +
                      ")");
      }
      ++ia;
      ++ib;
    }
  }
  if (a.breakpoints != b.breakpoints) out.push_back("iss: breakpoint sets differ");
  if (a.watchpoints != b.watchpoints) out.push_back("iss: watchpoint sets differ");
}

}  // namespace

std::vector<std::string> diff_checkpoints(const Checkpoint& a, const Checkpoint& b,
                                          std::size_t max_lines) {
  std::vector<std::string> out;
  if (a.iss.has_value() != b.iss.has_value()) {
    out.push_back("iss: section present only in one checkpoint");
  } else if (a.iss && !(*a.iss == *b.iss)) {
    diff_iss(*a.iss, *b.iss, out);
  }
  if (a.kernel.has_value() != b.kernel.has_value()) {
    out.push_back("kernel: section present only in one checkpoint");
  } else if (a.kernel && !(*a.kernel == *b.kernel)) {
    const sysc::kernel_state& ka = *a.kernel;
    const sysc::kernel_state& kb = *b.kernel;
    if (ka.now_ps != kb.now_ps) {
      out.push_back("kernel: now " + std::to_string(ka.now_ps) + "ps != " +
                    std::to_string(kb.now_ps) + "ps");
    }
    if (ka.stats.delta_cycles != kb.stats.delta_cycles) {
      out.push_back("kernel: delta count " + std::to_string(ka.stats.delta_cycles) + " != " +
                    std::to_string(kb.stats.delta_cycles));
    }
    if (ka.timed != kb.timed) out.push_back("kernel: timed queues differ");
    if (ka.delta_events != kb.delta_events) out.push_back("kernel: pending delta events differ");
    if (out.empty()) out.push_back("kernel: scheduler counters differ");
  }
  const std::size_t n_chan = std::max(a.channels.size(), b.channels.size());
  for (std::size_t i = 0; i < n_chan; ++i) {
    if (i >= a.channels.size() || i >= b.channels.size()) {
      out.push_back("channel[" + std::to_string(i) + "]: present only in one checkpoint");
      continue;
    }
    const ChannelSnapshot& ca = a.channels[i];
    const ChannelSnapshot& cb = b.channels[i];
    if (ca == cb) continue;
    out.push_back("channel " + ca.label + ": tx " + std::to_string(ca.tx_seq) + "/" +
                  std::to_string(cb.tx_seq) + " rx " + std::to_string(ca.rx_seq) + "/" +
                  std::to_string(cb.rx_seq) + " inflight " + std::to_string(ca.inflight.size()) +
                  "B/" + std::to_string(cb.inflight.size()) + "B");
  }
  if (a.worker != b.worker) out.push_back("worker: session extras differ");
  if (a.extra != b.extra) out.push_back("extra: unknown sections differ");
  if (out.size() > max_lines) {
    const std::size_t dropped = out.size() - max_lines;
    out.resize(max_lines);
    out.push_back("... " + std::to_string(dropped) + " more difference(s)");
  }
  return out;
}

}  // namespace nisc::cosim
