// Little-endian byte codec shared by the checkpoint format and the
// supervisor<->worker frame protocol (checkpoint.cpp, worker.cpp,
// supervisor.cpp). Writer appends; Reader is bounds-checked and throws
// RuntimeError naming the structure being decoded on truncation.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace nisc::cosim {

class ByteWriter {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    u8(static_cast<std::uint8_t>(v));
    u8(static_cast<std::uint8_t>(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(static_cast<std::uint16_t>(v));
    u16(static_cast<std::uint16_t>(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(static_cast<std::uint32_t>(v));
    u32(static_cast<std::uint32_t>(v >> 32));
  }
  void bytes(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }
  /// Length-prefixed (u32) byte blob.
  void blob(std::span<const std::uint8_t> data) {
    u32(static_cast<std::uint32_t>(data.size()));
    bytes(data);
  }
  /// Length-prefixed (u16) string.
  void str(const std::string& s) {
    util::require(s.size() <= 0xFFFF, "byte codec: string too long");
    u16(static_cast<std::uint16_t>(s.size()));
    bytes({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
  }

  std::vector<std::uint8_t> take() { return std::move(out_); }
  const std::vector<std::uint8_t>& data() const { return out_; }

 private:
  std::vector<std::uint8_t> out_;
};

class ByteReader {
 public:
  ByteReader(std::span<const std::uint8_t> data, const char* what) : data_(data), what_(what) {}

  std::uint8_t u8() {
    need(1);
    return data_[pos_++];
  }
  std::uint16_t u16() {
    std::uint16_t lo = u8();
    return static_cast<std::uint16_t>(lo | (u8() << 8));
  }
  std::uint32_t u32() {
    std::uint32_t lo = u16();
    return lo | (static_cast<std::uint32_t>(u16()) << 16);
  }
  std::uint64_t u64() {
    std::uint64_t lo = u32();
    return lo | (static_cast<std::uint64_t>(u32()) << 32);
  }
  std::vector<std::uint8_t> bytes(std::size_t n) {
    need(n);
    std::vector<std::uint8_t> out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }
  std::vector<std::uint8_t> blob() { return bytes(u32()); }
  std::string str() {
    std::size_t n = u16();
    need(n);
    std::string out(reinterpret_cast<const char*>(data_.data() + pos_), n);
    pos_ += n;
    return out;
  }

  bool done() const noexcept { return pos_ == data_.size(); }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }

 private:
  void need(std::size_t n) {
    if (pos_ + n > data_.size()) {
      throw util::RuntimeError(std::string("truncated ") + what_ + " (need " + std::to_string(n) +
                               " bytes, have " + std::to_string(remaining()) + ")");
    }
  }

  std::span<const std::uint8_t> data_;
  const char* what_;
  std::size_t pos_ = 0;
};

}  // namespace nisc::cosim
