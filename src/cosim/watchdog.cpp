#include "cosim/watchdog.hpp"

#include <chrono>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace nisc::cosim {

LivenessWatchdog::LivenessWatchdog(std::string name, const std::atomic<std::uint64_t>& progress,
                                   const TimeBudget* budget, WatchdogConfig config)
    : name_(std::move(name)), progress_(progress), budget_(budget), config_(config) {
  thread_ = std::thread([this] { run(); });
}

LivenessWatchdog::~LivenessWatchdog() { stop(); }

void LivenessWatchdog::stop() {
  {
    std::lock_guard lock(mutex_);
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

std::string LivenessWatchdog::report() const {
  std::lock_guard lock(mutex_);
  return report_;
}

void LivenessWatchdog::run() {
  std::uint64_t last_progress = progress_.load(std::memory_order_relaxed);
  int stalled_ms = 0;
  std::unique_lock lock(mutex_);
  while (!stop_requested_) {
    cv_.wait_for(lock, std::chrono::milliseconds(config_.check_interval_ms),
                 [&] { return stop_requested_; });
    if (stop_requested_) break;

    const std::uint64_t now = progress_.load(std::memory_order_relaxed);
    if (now != last_progress) {
      last_progress = now;
      stalled_ms = 0;
      continue;
    }
    if (budget_ != nullptr && (budget_->closed() || budget_->idle())) {
      // Halted at a breakpoint or past guest exit: silence is expected.
      stalled_ms = 0;
      continue;
    }
    stalled_ms += config_.check_interval_ms;
    if (stalled_ms < config_.stall_threshold_ms || tripped_.load(std::memory_order_relaxed)) {
      continue;
    }

    std::string diagnosis;
    if (budget_ == nullptr) {
      diagnosis = "no budget attached; cannot attribute the stall";
    } else if (budget_->available() > 0) {
      diagnosis = "allowance available (" + std::to_string(budget_->available()) +
                  " instructions) but not consumed: the ISS/target side is blocked";
    } else {
      diagnosis = "no allowance deposited: the SystemC side stopped advancing time";
    }
    const std::string report = "[" + name_ + "] no progress for " + std::to_string(stalled_ms) +
                               " ms: " + diagnosis;
    report_ = report;
    tripped_.store(true, std::memory_order_release);
    obs::counter("cosim.watchdog.trips").add(1);
    obs::instant("cosim.watchdog_trip", "cosim", "stalled_ms",
                 static_cast<std::uint64_t>(stalled_ms));
    lock.unlock();
    NISC_WARN("watchdog") << report;
    lock.lock();
  }
}

}  // namespace nisc::cosim
