// LivenessWatchdog: detects a co-simulation that is silently stuck.
//
// The throttled schemes interleave two failure-prone waits: the ISS thread
// waits on its TimeBudget allowance, and the SystemC side waits on ISS
// traffic. Both waits are individually bounded, but a protocol-level wedge
// (a lost frame both sides wait out) shows up only as *no progress*. The
// watchdog samples an atomic progress counter the target thread bumps on
// every slice; if the counter stops moving for `stall_threshold_ms` it
// diagnoses which side is blocked from the budget state:
//
//   allowance available, consumer not idle -> the ISS/target side is stuck
//     (it has instructions to burn and is not burning them);
//   no allowance and consumer not idle     -> the SystemC side is stuck
//     (it stopped depositing simulated time);
//   consumer idle or budget closed          -> not a stall (halted at a
//     breakpoint / guest exited): the watchdog stays quiet.
//
// The watchdog never kills anything — it trips a flag, logs one warning
// with the diagnosis, and leaves the decision to the session/test.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>

#include "cosim/time_budget.hpp"

namespace nisc::cosim {

struct WatchdogConfig {
  /// Sampling period.
  int check_interval_ms = 100;
  /// No-progress duration that counts as a stall.
  int stall_threshold_ms = 2000;
};

class LivenessWatchdog {
 public:
  /// Watches `progress` (bumped by the target thread) against `budget`
  /// (may be null: then only total silence is reported, unattributed).
  /// Monitoring starts immediately on a background thread.
  LivenessWatchdog(std::string name, const std::atomic<std::uint64_t>& progress,
                   const TimeBudget* budget, WatchdogConfig config = {});
  ~LivenessWatchdog();

  LivenessWatchdog(const LivenessWatchdog&) = delete;
  LivenessWatchdog& operator=(const LivenessWatchdog&) = delete;

  /// Stops the monitor thread (idempotent; the destructor calls it).
  void stop();

  /// True once a stall was diagnosed (latched).
  bool tripped() const noexcept { return tripped_.load(std::memory_order_acquire); }

  /// The diagnosis ("[name] no progress for N ms: ..."); empty until tripped.
  std::string report() const;

 private:
  void run();

  std::string name_;
  const std::atomic<std::uint64_t>& progress_;
  const TimeBudget* budget_;
  WatchdogConfig config_;

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  std::string report_;
  std::atomic<bool> tripped_{false};
  std::thread thread_;
};

}  // namespace nisc::cosim
