#include "cosim/driver_kernel.hpp"

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace nisc::cosim {

// ---------------------------------------------------------------------------
// DriverKernelExtension

DriverKernelExtension::DriverKernelExtension(ipc::Channel data, ipc::Channel interrupts,
                                             TimeBudget* budget, DriverKernelOptions options)
    : data_(std::move(data)), interrupts_(std::move(interrupts)), budget_(budget),
      options_(options) {}

bool DriverKernelExtension::delivery_safe(sysc::sc_simcontext& ctx,
                                          const sysc::iss_port_base* port) const {
  auto it = last_delivery_delta_.find(port);
  if (it == last_delivery_delta_.end()) return true;
  // See GdbKernelExtension::delivery_safe: the sensitive iss_process runs
  // two delta cycles after delivery.
  return ctx.delta_count() >= it->second + 2;
}

void DriverKernelExtension::quiesce(const std::string& reason) {
  if (quiesced_) return;
  quiesced_ = true;
  obs::counter("cosim.drvk.quiesces").add(1);
  obs::instant("cosim.quiesce", "cosim");
  error_ = make_cosim_error("driver-kernel", reason, data_.capture());
  NISC_WARN("driver-kernel") << "offload port quiesced (simulation continues): " << reason;
  data_.notify_observer("quiesce");
  data_.close();
  interrupts_.close();
  backlog_.clear();
  pending_interrupts_.clear();
}

void DriverKernelExtension::on_cycle_begin(sysc::sc_simcontext& ctx) {
  if (quiesced_) return;
  // Paper Fig. 5: "message to exchange?" at the start of the cycle.
  // Backlogged WRITEs (target port still draining) go first, in order.
  while (!backlog_.empty()) {
    const ipc::DriverMessage& msg = backlog_.front();
    bool safe = true;
    for (const ipc::MsgItem& item : msg.items) {
      const sysc::iss_port_base* port = ctx.find_iss_port(item.port);
      if (port != nullptr && port->is_input() && !delivery_safe(ctx, port)) safe = false;
    }
    if (!safe) return;  // preserve order: do not drain the channel past it
    ipc::DriverMessage head = std::move(backlog_.front());
    backlog_.pop_front();
    handle_message(ctx, head);
  }
  try {
    while (auto msg = ipc::try_recv_message(data_)) {
      ++stats_.messages_in;
      if (msg->type == ipc::MsgType::Write) {
        bool safe = true;
        for (const ipc::MsgItem& item : msg->items) {
          const sysc::iss_port_base* port = ctx.find_iss_port(item.port);
          if (port != nullptr && port->is_input() && !delivery_safe(ctx, port)) safe = false;
        }
        if (!safe) {
          backlog_.push_back(std::move(*msg));
          return;
        }
      }
      handle_message(ctx, *msg);
    }
  } catch (const util::RuntimeError& e) {
    // Driver side gone or stream corrupted beyond framing: shut this port
    // down but keep simulating.
    quiesce(std::string("data port receive failed: ") + e.what());
  }
}

void DriverKernelExtension::handle_message(sysc::sc_simcontext& ctx,
                                           const ipc::DriverMessage& msg) {
  obs::ScopedSpan span("cosim.drvk.message", "cosim", "type",
                       static_cast<std::uint64_t>(msg.type));
  switch (msg.type) {
    case ipc::MsgType::Write:
      // Store each data item in the iss_in port named by SCPort_i and start
      // the iss_processes sensitive to it.
      for (const ipc::MsgItem& item : msg.items) {
        sysc::iss_port_base* port = ctx.find_iss_port(item.port);
        if (port == nullptr || !port->is_input()) {
          NISC_WARN("driver-kernel") << "WRITE to unknown iss_in port " << item.port;
          continue;
        }
        if (item.data.size() != port->width_bytes()) {
          NISC_WARN("driver-kernel") << "WRITE to " << item.port << ": payload "
                                     << item.data.size() << " bytes, port width "
                                     << port->width_bytes();
          continue;  // drop the malformed item, keep the session alive
        }
        port->deliver_bytes(item.data);
        last_delivery_delta_[port] = ctx.delta_count();
        ++stats_.words_delivered;
      }
      break;
    case ipc::MsgType::Read: {
      // Answer with the current value of each named iss_out port.
      ipc::DriverMessage reply;
      reply.type = ipc::MsgType::ReadReply;
      for (const ipc::MsgItem& item : msg.items) {
        sysc::iss_port_base* port = ctx.find_iss_port(item.port);
        if (port == nullptr || port->is_input()) {
          NISC_WARN("driver-kernel") << "READ of unknown iss_out port " << item.port;
          continue;
        }
        reply.items.push_back({item.port, port->peek_bytes()});
        port->consume_fresh();
      }
      try {
        ipc::send_message(data_, reply);
        ++stats_.messages_out;
      } catch (const util::RuntimeError& e) {
        quiesce(std::string("read-reply send failed: ") + e.what());
      }
      break;
    }
    default:
      NISC_WARN("driver-kernel") << "unexpected message type from driver";
      break;
  }
}

void DriverKernelExtension::on_cycle_end(sysc::sc_simcontext& ctx) {
  if (quiesced_) return;
  // Push freshly written iss_out values to the driver (asynchronous reads).
  if (options_.push_outputs) {
    auto owned = [this](const std::string& name) {
      if (options_.owned_ports.empty()) return true;
      return std::find(options_.owned_ports.begin(), options_.owned_ports.end(), name) !=
             options_.owned_ports.end();
    };
    ipc::DriverMessage push;
    push.type = ipc::MsgType::ReadReply;
    for (sysc::iss_port_base* port : ctx.iss_ports()) {
      if (port->is_input() || !port->has_fresh_value() || !owned(port->name())) continue;
      push.items.push_back({port->name(), port->peek_bytes()});
      port->consume_fresh();
    }
    if (!push.items.empty()) {
      try {
        ipc::send_message(data_, push);
        ++stats_.messages_out;
      } catch (const util::RuntimeError& e) {
        quiesce(std::string("output push failed: ") + e.what());
        return;
      }
      // Data-arrival notification: the interrupt rides the same cycle's
      // drain below, after the data it announces is already on the wire.
      if (options_.data_irq >= 0) {
        post_interrupt(static_cast<std::uint32_t>(options_.data_irq));
      }
    }
  }
  // Reverse throttle: hold simulated time while the guest lags far behind
  // its instruction allowance (idle guests drain instantly in DriverTarget,
  // so this only bites when the ISS thread is genuinely behind).
  if (budget_ != nullptr && options_.max_budget_lead > 0 &&
      budget_->available() > options_.max_budget_lead) {
    budget_->wait_below(options_.max_budget_lead, 2);
  }
  // Paper Fig. 5: "interrupt generated?" at the end of the cycle.
  while (!pending_interrupts_.empty()) {
    std::uint32_t irq = pending_interrupts_.front();
    pending_interrupts_.pop_front();
    try {
      ipc::send_message(interrupts_, ipc::DriverMessage::interrupt(irq));
      ++stats_.interrupts_sent;
    } catch (const util::RuntimeError& e) {
      quiesce(std::string("interrupt send failed: ") + e.what());
      break;
    }
  }
}

void DriverKernelExtension::on_time_advance(sysc::sc_simcontext&, const sysc::sc_time& now) {
  if (budget_ == nullptr) return;
  const std::uint64_t elapsed_ps = now.ps() - last_time_ps_;
  last_time_ps_ = now.ps();
  const std::uint64_t scaled = elapsed_ps * options_.instructions_per_us + deposit_remainder_;
  deposit_remainder_ = scaled % 1000000;
  const std::uint64_t instructions = scaled / 1000000;
  if (instructions > 0) budget_->deposit(instructions);
}

bool DriverKernelExtension::on_starvation(sysc::sc_simcontext& ctx) {
  // Give the ISS slack and wait briefly for driver traffic.
  if (budget_ != nullptr) budget_->deposit(options_.instructions_per_us);
  if (quiesced_) return false;
  try {
    if (!data_.readable(10)) return false;
  } catch (const util::RuntimeError& e) {
    quiesce(std::string("data port poll failed: ") + e.what());
    return false;
  }
  on_cycle_begin(ctx);
  return true;
}

void DriverKernelExtension::on_run_end(sysc::sc_simcontext&) {
  if (budget_ != nullptr) budget_->deposit(options_.instructions_per_us);
  // Batched publication, mirroring GdbKernelExtension::on_run_end.
  static obs::Counter& c_in = obs::counter("cosim.drvk.messages_in");
  static obs::Counter& c_out = obs::counter("cosim.drvk.messages_out");
  static obs::Counter& c_irqs = obs::counter("cosim.drvk.interrupts_sent");
  static obs::Counter& c_words = obs::counter("cosim.drvk.words_delivered");
  c_in.add(stats_.messages_in - published_.messages_in);
  c_out.add(stats_.messages_out - published_.messages_out);
  c_irqs.add(stats_.interrupts_sent - published_.interrupts_sent);
  c_words.add(stats_.words_delivered - published_.words_delivered);
  published_ = stats_;
}

// ---------------------------------------------------------------------------
// ScPortDriver

ScPortDriver::ScPortDriver(ipc::Channel data, std::string write_port, std::string read_port)
    : data_(std::move(data)), write_port_(std::move(write_port)),
      read_port_(std::move(read_port)) {}

void ScPortDriver::mark_degraded(const char* what) {
  if (!degraded_.exchange(true, std::memory_order_relaxed)) {
    NISC_WARN("scdev") << "driver degraded (" << what
                       << "): device writes are now swallowed";
  }
}

std::size_t ScPortDriver::write(std::span<const std::uint8_t> data) {
  if (degraded()) return 0;
  ipc::DriverMessage msg;
  msg.type = ipc::MsgType::Write;
  msg.items.push_back({write_port_, std::vector<std::uint8_t>(data.begin(), data.end())});
  try {
    ipc::send_message(data_, msg);
  } catch (const util::RuntimeError&) {
    mark_degraded("send failed");
    return 0;
  }
  ++frames_sent_;
  return data.size();
}

void ScPortDriver::drain_incoming() {
  if (degraded()) return;
  try {
    while (auto msg = ipc::try_recv_message(data_)) {
      ++frames_received_;
      if (msg->type != ipc::MsgType::ReadReply) continue;
      for (const ipc::MsgItem& item : msg->items) {
        if (item.port != read_port_) continue;
        rx_.insert(rx_.end(), item.data.begin(), item.data.end());
      }
    }
  } catch (const util::RuntimeError&) {
    mark_degraded("receive failed");
  }
}

std::size_t ScPortDriver::read(std::span<std::uint8_t> out) {
  drain_incoming();
  std::size_t n = 0;
  while (n < out.size() && !rx_.empty()) {
    out[n++] = rx_.front();
    rx_.pop_front();
  }
  return n;
}

bool ScPortDriver::wait_incoming(int timeout_ms) {
  if (!rx_.empty()) return true;
  if (degraded()) return false;
  try {
    return data_.readable(timeout_ms);
  } catch (const util::RuntimeError&) {
    mark_degraded("poll failed");
    return false;
  }
}

// ---------------------------------------------------------------------------
// InterruptPump

InterruptPump::InterruptPump(ipc::Channel channel, rtos::Kernel& kernel)
    : channel_(std::move(channel)), kernel_(kernel) {
  thread_ = std::thread([this] { run(); });
}

InterruptPump::~InterruptPump() { stop(); }

void InterruptPump::stop() {
  stop_.store(true);
  if (thread_.joinable()) thread_.join();
  channel_.close();
}

void InterruptPump::run() {
  try {
    while (!stop_.load()) {
      if (!channel_.readable(20)) continue;  // bounded poll: clean shutdown
      ipc::DriverMessage msg = ipc::recv_message(channel_);
      if (auto irq = msg.irq()) {
        kernel_.raise_irq(*irq);
        delivered_.fetch_add(1);
        // ISR-acknowledge edge of the DriverIrq automaton: a live monitor on
        // this channel returns from Isr to Idle on the event.
        channel_.notify_observer("ack");
      }
    }
  } catch (const util::RuntimeError&) {
    // Channel closed: normal shutdown.
  }
}

}  // namespace nisc::cosim
