// TimeBudget: correlates ISS execution with SystemC simulated time.
//
// The SystemC kernel deposits an instruction allowance every clock cycle
// (modeling the CPU's nominal frequency); the target thread running the ISS
// withdraws before executing. The deposit path never blocks; the withdraw
// path blocks until tokens are available, which is what keeps the two
// simulators loosely synchronized in the paper's free-running schemes.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>

namespace nisc::cosim {

class TimeBudget {
 public:
  /// `cap` bounds accumulation so a stalled ISS cannot bank unbounded credit
  /// and later sprint arbitrarily far ahead of hardware time.
  explicit TimeBudget(std::uint64_t cap = 1 << 20) : cap_(cap) {}

  /// Adds `tokens` instructions of allowance (kernel thread, non-blocking).
  void deposit(std::uint64_t tokens);

  /// Withdraws up to `want` instructions, blocking until at least one token
  /// is available or the budget is closed. Returns the granted amount
  /// (0 only when closed).
  std::uint64_t acquire(std::uint64_t want);

  /// Bounded variant: additionally gives up after `timeout_ms` (< 0 waits
  /// forever). Returns 0 on timeout or close — distinguish via closed().
  std::uint64_t acquire_for(std::uint64_t want, int timeout_ms);

  /// Non-blocking variant; returns 0 when no tokens are available.
  std::uint64_t try_acquire(std::uint64_t want);

  /// Blocks until `amount` tokens have been consumed (pay-after accounting:
  /// the ISS runs a slice first, then pays its measured cycle cost).
  /// Returns false when the budget was closed before the debt was settled.
  bool pay(std::uint64_t amount);

  /// Bounded variant of pay(): gives up after `timeout_ms` total (< 0 waits
  /// forever). Returns false on timeout or close — distinguish via
  /// closed(); on timeout the unsettled remainder is forgiven (the caller
  /// degrades to unthrottled execution rather than deadlock).
  bool pay_for(std::uint64_t amount, int timeout_ms);

  /// Blocks until fewer than `level` tokens remain unconsumed, the budget
  /// is closed, or `timeout_ms` elapses. Returns true when the level was
  /// reached. This is the *reverse* throttle: the SystemC side calls it so
  /// simulated time cannot race arbitrarily ahead of an ISS that has not
  /// caught up with its allowance.
  bool wait_below(std::uint64_t level, int timeout_ms);

  /// Marks the consumer as idle: an idle CPU burns its allowance doing
  /// nothing, so deposits are discarded (and wait_below passes) until the
  /// consumer wakes. Set by the target loop around blocking-idle waits.
  void set_idle(bool idle);

  /// Unblocks all waiters permanently (teardown, or the guest exited and
  /// will never consume again).
  void close();

  bool closed() const;
  bool idle() const;
  std::uint64_t available() const;

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;        // waiters for tokens (ISS side)
  std::condition_variable drained_;   // waiters for consumption (kernel side)
  std::uint64_t tokens_ = 0;
  std::uint64_t cap_;
  bool closed_ = false;
  bool idle_ = false;
};

}  // namespace nisc::cosim
