#include "cosim/session.hpp"

#include <chrono>
#include <thread>

#include "iss/assembler.hpp"
#include "util/deadline.hpp"
#include "util/log.hpp"

namespace nisc::cosim {

namespace {

/// Waits for `exited` under a deadline, then joins. All target-side
/// blocking paths are individually bounded, so the join after an expired
/// deadline still terminates; the log line tells the operator which session
/// overstayed.
void join_with_deadline(const char* who, std::thread& thread, const std::atomic<bool>& exited,
                        int timeout_ms) {
  if (!thread.joinable()) return;
  const util::Deadline deadline = util::Deadline::after_ms(timeout_ms);
  while (!exited.load(std::memory_order_acquire) && !deadline.expired()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (!exited.load(std::memory_order_acquire)) {
    NISC_ERROR(who) << "target thread still running after " << timeout_ms
                    << " ms; joining anyway (bounded I/O deadlines will release it)";
  }
  thread.join();
}

}  // namespace

// ---------------------------------------------------------------------------
// GdbTarget

GdbTarget::GdbTarget(const std::string& guest_source, GdbTargetConfig config)
    : config_(std::move(config)) {
  FilteredSource filtered = filter_pragmas(guest_source);
  program_ = iss::assemble(filtered.source);
  bindings_ = resolve_bindings(filtered.bindings, program_);

  cpu_ = std::make_unique<iss::Cpu>(config_.mem_size);
  program_.load_into(cpu_->mem());
  cpu_->reset(program_.entry);

  ipc::ChannelPair pair = ipc::make_channel_pair(config_.transport);
  pair.a.set_io_timeout(config_.io_timeout_ms);
  pair.b.set_io_timeout(config_.io_timeout_ms);
  if (!config_.fault_plan.empty()) {
    fault_state_ = ipc::FaultyChannel::install(pair.a, config_.fault_plan);
  }
  if (config_.capture_wire) {
    capture_ = std::make_shared<ipc::WireCapture>("gdb", config_.capture_frames);
    pair.b.attach_capture(capture_);
  }
  if (config_.wire_observer) pair.b.attach_observer(config_.wire_observer);
  rsp::StubOptions stub_options;
  stub_options.quantum = config_.stub_quantum;
  if (config_.throttled) {
    stub_options.acquire_quantum = [this](std::uint64_t want) {
      std::uint64_t granted = budget_.acquire_for(want, config_.stall_timeout_ms);
      if (granted > 0) progress_.fetch_add(1, std::memory_order_relaxed);
      return granted;
    };
    // A halted CPU does not consume simulated time: park its allowance so
    // the reverse throttle never mistakes a breakpoint stop for a slow CPU.
    stub_options.on_run_state = [this](bool running) { budget_.set_idle(!running); };
    budget_.set_idle(true);  // the stub starts halted
  }
  stub_ = std::make_unique<rsp::GdbStub>(*cpu_, std::move(pair.a), std::move(stub_options));
  client_ = std::make_unique<rsp::GdbClient>(std::move(pair.b),
                                             rsp::ClientOptions{config_.reply_timeout_ms});
}

GdbTarget::~GdbTarget() { shutdown(); }

void GdbTarget::start() {
  util::require(!started_, "GdbTarget::start called twice");
  started_ = true;
  if (config_.watchdog && config_.throttled) {
    watchdog_ = std::make_unique<LivenessWatchdog>("gdb-target", progress_, &budget_);
  }
  thread_ = std::thread([this] {
    stub_->serve();
    exited_.store(true, std::memory_order_release);
  });
}

void GdbTarget::shutdown() {
  if (!started_ || shut_down_) return;
  shut_down_ = true;
  budget_.close();
  try {
    if (client_->running()) {
      client_->interrupt();
      client_->wait_stop(2000);
    }
    client_->kill();
  } catch (const util::RuntimeError&) {
    // Transport already gone; the stub also exits on EOF or its bounded
    // serve tick after request_stop below.
  }
  stub_->request_stop();
  join_with_deadline("gdb-target", thread_, exited_, config_.join_timeout_ms);
  if (watchdog_) watchdog_->stop();
}

// ---------------------------------------------------------------------------
// DriverTarget

DriverTarget::DriverTarget(const std::string& guest_source, DriverTargetConfig config)
    : config_(std::move(config)) {
  util::require(!config_.write_port.empty() && !config_.read_port.empty(),
                "DriverTarget: write_port/read_port must name iss ports");
  program_ = iss::assemble(rtos::guest_abi_prelude() + guest_source);

  cpu_ = std::make_unique<iss::Cpu>(config_.mem_size);
  kernel_ = std::make_unique<rtos::Kernel>(*cpu_, config_.rtos);
  kernel_->load(program_);

  ipc::ChannelPair data = ipc::make_channel_pair(config_.transport);
  ipc::ChannelPair irq = ipc::make_channel_pair(config_.transport);
  data.a.set_io_timeout(config_.io_timeout_ms);
  data.b.set_io_timeout(config_.io_timeout_ms);
  irq.a.set_io_timeout(config_.io_timeout_ms);
  irq.b.set_io_timeout(config_.io_timeout_ms);
  if (!config_.fault_plan.empty()) {
    fault_state_ = ipc::FaultyChannel::install(data.b, config_.fault_plan);
  }
  if (config_.capture_wire) {
    capture_ = std::make_shared<ipc::WireCapture>("drv-data", config_.capture_frames);
    data.a.attach_capture(capture_);
  }
  if (config_.wire_observer) data.a.attach_observer(config_.wire_observer);
  if (config_.irq_observer) irq.b.attach_observer(config_.irq_observer);
  data_kernel_side_ = std::move(data.a);
  irq_kernel_side_ = std::move(irq.a);
  irq_target_side_ = std::move(irq.b);

  auto driver = std::make_unique<ScPortDriver>(std::move(data.b), config_.write_port,
                                               config_.read_port);
  driver_ = driver.get();
  int dev = kernel_->register_driver(std::move(driver));
  util::require(dev == 0, "DriverTarget: scdev must be device 0");
}

DriverTarget::~DriverTarget() { shutdown(); }

ipc::Channel DriverTarget::take_data_endpoint() {
  util::require(data_kernel_side_.valid(), "take_data_endpoint: already taken");
  return std::move(data_kernel_side_);
}

ipc::Channel DriverTarget::take_interrupt_endpoint() {
  util::require(irq_kernel_side_.valid(), "take_interrupt_endpoint: already taken");
  return std::move(irq_kernel_side_);
}

void DriverTarget::start() {
  util::require(!started_, "DriverTarget::start called twice");
  started_ = true;
  if (config_.watchdog && config_.throttled) {
    watchdog_ = std::make_unique<LivenessWatchdog>("driver-target", progress_, &budget_);
  }
  pump_ = std::make_unique<InterruptPump>(std::move(irq_target_side_), *kernel_);
  thread_ = std::thread([this] {
    run_loop();
    exited_.store(true, std::memory_order_release);
  });
}

void DriverTarget::run_loop() {
  while (!stop_.load()) {
    // Pay-after accounting in CPU *cycles*: OS overhead (syscalls, context
    // switches, ISR entry) is charged as cycles by the RTOS model, and must
    // slow the guest down in simulated time — that is the paper's Figure 7
    // effect. Run a slice, then settle its measured cycle cost against the
    // allowance the SystemC side deposits as simulated time advances.
    const std::uint64_t cycles_before = cpu_->cycles();
    rtos::RunStatus status = kernel_->run(config_.run_quantum);
    last_status_.store(status);
    progress_.fetch_add(1, std::memory_order_relaxed);
    if (config_.throttled && !throttle_lost_.load(std::memory_order_relaxed)) {
      const std::uint64_t cost = cpu_->cycles() - cycles_before;
      if (cost > 0 && !budget_.pay_for(cost, config_.pay_timeout_ms)) {
        if (budget_.closed()) {
          if (status == rtos::RunStatus::Budget) break;  // shutdown
        } else {
          // The SystemC side stopped depositing (stalled or quiesced this
          // port): abandon time correlation rather than deadlock the guest.
          NISC_WARN("driver-target")
              << "allowance not settled within " << config_.pay_timeout_ms
              << " ms: time correlation lost, continuing unthrottled";
          throttle_lost_.store(true, std::memory_order_relaxed);
        }
      }
    }
    switch (status) {
      case rtos::RunStatus::AllDone:
        finished_.store(true);
        budget_.close();  // never consuming again: release the throttle
        return;
      case rtos::RunStatus::Fault:
        NISC_ERROR("driver-target") << "guest fault: "
                                    << iss::halt_name(kernel_->last_fault());
        finished_.store(true);
        budget_.close();
        return;
      case rtos::RunStatus::Idle:
        // Every guest thread is blocked in dev_read: the CPU idles, burning
        // its allowance doing nothing, until device data arrives.
        budget_.set_idle(true);
        if (!driver_->wait_incoming(1) && driver_->degraded()) {
          // No data will ever arrive on a degraded driver: idle politely
          // instead of hot-spinning until shutdown.
          std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
        budget_.set_idle(false);
        break;
      case rtos::RunStatus::Budget:
        break;
    }
  }
}

void DriverTarget::shutdown() {
  if (!started_ || shut_down_) return;
  shut_down_ = true;
  stop_.store(true);
  budget_.close();
  join_with_deadline("driver-target", thread_, exited_, config_.join_timeout_ms);
  if (pump_) pump_->stop();
  if (watchdog_) watchdog_->stop();
}

}  // namespace nisc::cosim
