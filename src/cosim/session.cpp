#include "cosim/session.hpp"

#include <chrono>

#include "iss/assembler.hpp"
#include "util/log.hpp"

namespace nisc::cosim {

// ---------------------------------------------------------------------------
// GdbTarget

GdbTarget::GdbTarget(const std::string& guest_source, GdbTargetConfig config)
    : config_(config) {
  FilteredSource filtered = filter_pragmas(guest_source);
  program_ = iss::assemble(filtered.source);
  bindings_ = resolve_bindings(filtered.bindings, program_);

  cpu_ = std::make_unique<iss::Cpu>(config_.mem_size);
  program_.load_into(cpu_->mem());
  cpu_->reset(program_.entry);

  ipc::ChannelPair pair = ipc::make_channel_pair(config_.transport);
  rsp::StubOptions stub_options;
  stub_options.quantum = config_.stub_quantum;
  if (config_.throttled) {
    stub_options.acquire_quantum = [this](std::uint64_t want) { return budget_.acquire(want); };
    // A halted CPU does not consume simulated time: park its allowance so
    // the reverse throttle never mistakes a breakpoint stop for a slow CPU.
    stub_options.on_run_state = [this](bool running) { budget_.set_idle(!running); };
    budget_.set_idle(true);  // the stub starts halted
  }
  stub_ = std::make_unique<rsp::GdbStub>(*cpu_, std::move(pair.a), std::move(stub_options));
  client_ = std::make_unique<rsp::GdbClient>(std::move(pair.b));
}

GdbTarget::~GdbTarget() { shutdown(); }

void GdbTarget::start() {
  util::require(!started_, "GdbTarget::start called twice");
  started_ = true;
  thread_ = std::thread([this] { stub_->serve(); });
}

void GdbTarget::shutdown() {
  if (!started_ || shut_down_) return;
  shut_down_ = true;
  budget_.close();
  try {
    if (client_->running()) {
      client_->interrupt();
      client_->wait_stop(2000);
    }
    client_->kill();
  } catch (const util::RuntimeError&) {
    // Transport already gone; the join below still succeeds because the
    // stub exits on EOF.
  }
  if (thread_.joinable()) thread_.join();
}

// ---------------------------------------------------------------------------
// DriverTarget

DriverTarget::DriverTarget(const std::string& guest_source, DriverTargetConfig config)
    : config_(std::move(config)) {
  util::require(!config_.write_port.empty() && !config_.read_port.empty(),
                "DriverTarget: write_port/read_port must name iss ports");
  program_ = iss::assemble(rtos::guest_abi_prelude() + guest_source);

  cpu_ = std::make_unique<iss::Cpu>(config_.mem_size);
  kernel_ = std::make_unique<rtos::Kernel>(*cpu_, config_.rtos);
  kernel_->load(program_);

  ipc::ChannelPair data = ipc::make_channel_pair(config_.transport);
  ipc::ChannelPair irq = ipc::make_channel_pair(config_.transport);
  data_kernel_side_ = std::move(data.a);
  irq_kernel_side_ = std::move(irq.a);
  irq_target_side_ = std::move(irq.b);

  auto driver = std::make_unique<ScPortDriver>(std::move(data.b), config_.write_port,
                                               config_.read_port);
  driver_ = driver.get();
  int dev = kernel_->register_driver(std::move(driver));
  util::require(dev == 0, "DriverTarget: scdev must be device 0");
}

DriverTarget::~DriverTarget() { shutdown(); }

ipc::Channel DriverTarget::take_data_endpoint() {
  util::require(data_kernel_side_.valid(), "take_data_endpoint: already taken");
  return std::move(data_kernel_side_);
}

ipc::Channel DriverTarget::take_interrupt_endpoint() {
  util::require(irq_kernel_side_.valid(), "take_interrupt_endpoint: already taken");
  return std::move(irq_kernel_side_);
}

void DriverTarget::start() {
  util::require(!started_, "DriverTarget::start called twice");
  started_ = true;
  pump_ = std::make_unique<InterruptPump>(std::move(irq_target_side_), *kernel_);
  thread_ = std::thread([this] { run_loop(); });
}

void DriverTarget::run_loop() {
  while (!stop_.load()) {
    // Pay-after accounting in CPU *cycles*: OS overhead (syscalls, context
    // switches, ISR entry) is charged as cycles by the RTOS model, and must
    // slow the guest down in simulated time — that is the paper's Figure 7
    // effect. Run a slice, then settle its measured cycle cost against the
    // allowance the SystemC side deposits as simulated time advances.
    const std::uint64_t cycles_before = cpu_->cycles();
    rtos::RunStatus status = kernel_->run(config_.run_quantum);
    last_status_.store(status);
    if (config_.throttled) {
      const std::uint64_t cost = cpu_->cycles() - cycles_before;
      if (cost > 0 && !budget_.pay(cost) && status == rtos::RunStatus::Budget) {
        break;  // budget closed: shutdown
      }
    }
    switch (status) {
      case rtos::RunStatus::AllDone:
        finished_.store(true);
        budget_.close();  // never consuming again: release the throttle
        return;
      case rtos::RunStatus::Fault:
        NISC_ERROR("driver-target") << "guest fault: "
                                    << iss::halt_name(kernel_->last_fault());
        finished_.store(true);
        budget_.close();
        return;
      case rtos::RunStatus::Idle:
        // Every guest thread is blocked in dev_read: the CPU idles, burning
        // its allowance doing nothing, until device data arrives.
        budget_.set_idle(true);
        driver_->wait_incoming(1);
        budget_.set_idle(false);
        break;
      case rtos::RunStatus::Budget:
        break;
    }
  }
}

void DriverTarget::shutdown() {
  if (!started_ || shut_down_) return;
  shut_down_ = true;
  stop_.store(true);
  budget_.close();
  if (thread_.joinable()) thread_.join();
  if (pump_) pump_->stop();
}

}  // namespace nisc::cosim
