#include "cosim/gdb_kernel.hpp"

#include <chrono>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"

namespace nisc::cosim {

GdbKernelExtension::GdbKernelExtension(rsp::GdbClient& client, TimeBudget* budget,
                                       std::vector<BreakpointBinding> bindings,
                                       GdbKernelOptions options)
    : client_(client), budget_(budget), bindings_(std::move(bindings)), options_(options) {
  for (const BreakpointBinding& b : bindings_) by_addr_[b.breakpoint_addr] = &b;
}

void GdbKernelExtension::on_elaboration(sysc::sc_simcontext& ctx) {
  // Validate that every binding references an existing iss port of the
  // right direction (configuration mistakes propagate as LogicError), then
  // install the breakpoints on the halted target.
  for (const BreakpointBinding& b : bindings_) {
    sysc::iss_port_base* port = ctx.find_iss_port(b.port);
    util::require(port != nullptr, "GdbKernel: no iss port named " + b.port);
    if (b.direction == BindDirection::IssToSc) {
      util::require(port->is_input(), "GdbKernel: binding " + b.variable +
                                          " targets non-input port " + b.port);
    } else {
      util::require(!port->is_input(), "GdbKernel: binding " + b.variable +
                                           " reads from non-output port " + b.port);
    }
  }
  // Transport faults during bring-up end the run with a structured error,
  // like any mid-run failure.
  try {
    for (const BreakpointBinding& b : bindings_) client_.set_breakpoint(b.breakpoint_addr);
    if (options_.auto_continue) client_.cont();
  } catch (const util::RuntimeError& e) {
    fail(ctx, e.what());
  }
}

void GdbKernelExtension::on_time_advance(sysc::sc_simcontext&, const sysc::sc_time& now) {
  if (budget_ == nullptr) return;
  const std::uint64_t elapsed_ps = now.ps() - last_time_ps_;
  last_time_ps_ = now.ps();
  // instructions = elapsed_ps * instr_per_us / 1e6, with remainder carry.
  const std::uint64_t scaled = elapsed_ps * options_.instructions_per_us + deposit_remainder_;
  deposit_remainder_ = scaled % 1000000;
  const std::uint64_t instructions = scaled / 1000000;
  if (instructions > 0) budget_->deposit(instructions);
}

bool GdbKernelExtension::delivery_safe(sysc::sc_simcontext& ctx,
                                       sysc::iss_port_base* port) const {
  auto it = last_delivery_delta_.find(port);
  if (it == last_delivery_delta_.end()) return true;
  // A value delivered at delta N wakes its iss_process in delta N+1's
  // evaluate phase, which runs *after* delta N+1's cycle_begin hook — so the
  // port is free for a new value only from delta N+2 on.
  return ctx.delta_count() >= it->second + 2;
}

void GdbKernelExtension::fail(sysc::sc_simcontext& ctx, const std::string& what) {
  finished_ = true;
  if (budget_ != nullptr) budget_->close();
  error_ = make_cosim_error("gdb-kernel", what, client_.channel().capture());
  NISC_ERROR("gdb-kernel") << "transport failure, ending simulation: " << what;
  ctx.stop();
}

void GdbKernelExtension::on_cycle_begin(sysc::sc_simcontext& ctx) {
  if (finished_) return;
  ++stats_.polls;
  // Service stops as long as the involved ports can absorb them; a stop
  // whose port is still draining stays deferred (the ISS remains halted:
  // backpressure instead of value loss).
  try {
    for (;;) {
      if (!deferred_stop_) {
        if (!client_.running()) return;
        deferred_stop_ = client_.poll_stop();
        if (!deferred_stop_) return;
      }
      if (!service_stop(ctx, *deferred_stop_)) return;  // still deferred
      deferred_stop_.reset();
      if (finished_) return;
    }
  } catch (const util::RuntimeError& e) {
    fail(ctx, e.what());
  }
}

void GdbKernelExtension::on_cycle_end(sysc::sc_simcontext&) {
  // Reverse throttle: after this cycle's servicing, hold simulated time
  // while the ISS is running but far behind on its instruction allowance.
  if (finished_ || budget_ == nullptr || options_.max_budget_lead == 0) return;
  if (!client_.running() || deferred_stop_) return;  // not draining by design
  if (budget_->available() > options_.max_budget_lead) {
    budget_->wait_below(options_.max_budget_lead, 2);
  }
}

bool GdbKernelExtension::on_starvation(sysc::sc_simcontext& ctx) {
  if (finished_) return false;
  try {
    if (deferred_stop_) {
      // A transfer is waiting (port draining, or no fresh hardware value).
      // Starvation means all processes ran: retry once; if it still cannot
      // be serviced the design is genuinely deadlocked and the run ends.
      if (!service_stop(ctx, *deferred_stop_)) return false;
      deferred_stop_.reset();
      return true;
    }
    if (!client_.running()) return false;
    // Nothing else can make progress: grant the ISS some slack and wait
    // briefly for it to produce an event.
    if (budget_ != nullptr) budget_->deposit(options_.instructions_per_us);
    auto stop = client_.wait_stop(10);
    if (!stop) return false;
    if (!service_stop(ctx, *stop)) deferred_stop_ = *stop;
    return true;
  } catch (const util::RuntimeError& e) {
    fail(ctx, e.what());
    return false;
  }
}

bool GdbKernelExtension::service_stop(sysc::sc_simcontext& ctx, const rsp::StopReply& stop) {
  // One RDI round trip: stop reply in hand -> transfer serviced -> continue.
  // The span covers the whole servicing (including deferred early-outs); the
  // histogram only records completed round trips (those that reach cont()).
  obs::ScopedSpan span("cosim.rdi_roundtrip", "cosim");
  const auto roundtrip_begin = std::chrono::steady_clock::now();
  const std::uint32_t pc = stop.pc ? *stop.pc : client_.read_pc();
  auto it = by_addr_.find(pc);
  if (it == by_addr_.end() || stop.signal != 5) {
    // Not one of our breakpoints: the guest finished (ebreak) or faulted.
    finished_ = true;
    if (budget_ != nullptr) budget_->close();  // never consuming again
    NISC_INFO("gdb-kernel") << "target finished at pc=0x" << std::hex << pc << " signal "
                            << std::dec << stop.signal;
    return true;
  }
  const BreakpointBinding& binding = *it->second;
  sysc::iss_port_base* port = ctx.find_iss_port(binding.port);
  if (binding.direction == BindDirection::IssToSc) {
    if (!delivery_safe(ctx, port)) return false;  // defer; ISS stays halted
    // The guest just wrote the variable: fetch it and feed the iss_in port.
    auto bytes = client_.read_memory(binding.variable_addr, binding.width);
    port->deliver_bytes(bytes);
    last_delivery_delta_[port] = ctx.delta_count();
    ++stats_.values_to_sc;
  } else {
    // The guest is about to read the variable: inject the port's value.
    // With the (default) freshness gate, the guest waits — halted — until
    // the hardware writes a value it has not consumed yet: flow control.
    if (options_.inject_requires_fresh && !port->has_fresh_value()) return false;
    auto bytes = port->peek_bytes();
    client_.write_memory(binding.variable_addr, bytes);
    port->consume_fresh();
    ++stats_.values_from_sc;
  }
  ++stats_.breakpoint_events;
  obs::instant("cosim.breakpoint", "cosim", "pc", pc);
  client_.cont();
  static obs::Histogram& h_roundtrip =
      obs::histogram("cosim.gdbk.roundtrip_us", obs::default_us_bounds());
  h_roundtrip.observe(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(std::chrono::steady_clock::now() -
                                                            roundtrip_begin)
          .count()));
  return true;
}

void GdbKernelExtension::on_run_end(sysc::sc_simcontext&) {
  // Batched publication: the per-cycle poll path touches only stats_ (plain
  // uint64 increments); the registry sees one delta per run() call.
  static obs::Counter& c_polls = obs::counter("cosim.gdbk.polls");
  static obs::Counter& c_breakpoints = obs::counter("cosim.gdbk.breakpoints");
  static obs::Counter& c_to_sc = obs::counter("cosim.gdbk.values_to_sc");
  static obs::Counter& c_from_sc = obs::counter("cosim.gdbk.values_from_sc");
  c_polls.add(stats_.polls - published_.polls);
  c_breakpoints.add(stats_.breakpoint_events - published_.breakpoint_events);
  c_to_sc.add(stats_.values_to_sc - published_.values_to_sc);
  c_from_sc.add(stats_.values_from_sc - published_.values_from_sc);
  published_ = stats_;
}

}  // namespace nisc::cosim
