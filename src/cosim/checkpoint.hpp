// Crash-consistent session checkpoints (DESIGN.md §12).
//
// A checkpoint is a versioned, length-prefixed container serializing every
// layer of a co-simulation session:
//   * ISS architectural state — registers, pc, retirement/cycle counters,
//     pending debug state (breakpoints/watchpoints), and guest memory as
//     sparse pages (all-zero pages are elided);
//   * SystemC kernel state — simulated time, the delta/sequence counters and
//     every pending timed/delta notification by name (sysc::kernel_state);
//   * wire state — per-channel send/receive frame sequence numbers plus any
//     received-but-unconsumed bytes. The frame-boundary invariant: inflight
//     bytes always contain whole frames, never a partial one (snapshots are
//     taken only after the stream has been drained through a frame decoder —
//     analysis::drain_to_frame_boundary for live Driver-Kernel/RSP wires,
//     by construction for the supervisor's worker protocol);
//   * worker session extras — delivered/pending interrupts and the device
//     read queue of a supervised ISS worker (cosim/worker.hpp).
//
// Wire layout (little-endian):
//   u32 magic "NCKP" | u32 version
//   repeated sections: u32 tag | u64 payload_len | payload | u32 crc32
// Unknown section tags decode into Checkpoint::extra and re-encode verbatim,
// so newer checkpoints survive older inspectors. Every decode error — bad
// magic, unsupported version, truncation, CRC mismatch — throws RuntimeError
// naming the offending section.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "iss/cpu.hpp"
#include "sysc/kernel.hpp"

namespace nisc::cosim {

inline constexpr std::uint32_t kCheckpointMagic = 0x504B434Eu;  // "NCKP"
inline constexpr std::uint32_t kCheckpointVersion = 1;
/// Guest memory is serialized in pages of this size; all-zero pages are
/// elided (memory is zero-initialized, so restore clears then applies).
inline constexpr std::uint32_t kCheckpointPageSize = 4096;

/// Section tags (fourcc, little-endian).
inline constexpr std::uint32_t kSectionIss = 0x20535349u;      // "ISS "
inline constexpr std::uint32_t kSectionKernel = 0x4C4E524Bu;   // "KRNL"
inline constexpr std::uint32_t kSectionChannel = 0x4E414843u;  // "CHAN"
inline constexpr std::uint32_t kSectionWorker = 0x524B5257u;   // "WRKR"

/// ISS architectural state, exactly what Cpu needs to resume bit-identically.
struct IssSnapshot {
  std::array<std::uint32_t, 32> regs{};
  std::uint32_t pc = 0;
  std::uint64_t instret = 0;
  std::uint64_t cycles = 0;
  std::uint8_t last_halt = 0;
  iss::CycleModel cycle_model;
  std::vector<std::uint32_t> breakpoints;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> watchpoints;
  std::uint64_t mem_size = 0;
  /// (page index, kCheckpointPageSize bytes) for every non-zero page, in
  /// ascending page order.
  std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>> pages;

  bool operator==(const IssSnapshot&) const;

  /// Captures the CPU's architectural state (callable only between run()
  /// slices — the co-simulation layer serializes access).
  static IssSnapshot capture(const iss::Cpu& cpu);

  /// Applies the snapshot; throws RuntimeError on memory-size mismatch.
  void apply(iss::Cpu& cpu) const;
};

/// One channel endpoint's resumable wire state. Sequence numbers count
/// whole frames: tx_seq = frames this side has sent, rx_seq = frames this
/// side has consumed. The resume handshake compares them with the peer's
/// counters to decide what to replay.
struct ChannelSnapshot {
  std::string label;
  std::uint64_t tx_seq = 0;
  std::uint64_t rx_seq = 0;
  /// Received-but-unconsumed bytes, frame-aligned (never mid-frame).
  std::vector<std::uint8_t> inflight;

  bool operator==(const ChannelSnapshot&) const = default;
};

/// Supervised-worker session extras (cosim/worker.hpp): interrupt wire
/// progress and the device bytes the guest has not yet consumed.
struct WorkerSnapshot {
  std::uint64_t irqs_delivered = 0;
  std::vector<std::uint32_t> pending_irqs;
  std::vector<std::uint8_t> dev_rx;

  bool operator==(const WorkerSnapshot&) const = default;
};

/// A decoded checkpoint: any subset of sections may be present.
struct Checkpoint {
  std::optional<IssSnapshot> iss;
  std::optional<sysc::kernel_state> kernel;
  std::vector<ChannelSnapshot> channels;
  std::optional<WorkerSnapshot> worker;
  /// Unknown sections, preserved verbatim (tag, payload) for forward
  /// compatibility: decode(encode(c)) round-trips byte-identically even
  /// for sections this build does not understand.
  std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>> extra;

  bool operator==(const Checkpoint&) const;
};

/// Serializes to the wire layout above. Deterministic: equal checkpoints
/// encode to identical bytes (the crash matrix compares runs this way).
std::vector<std::uint8_t> encode_checkpoint(const Checkpoint& checkpoint);

/// Parses and verifies (magic, version, per-section CRC). Throws
/// RuntimeError on any corruption.
Checkpoint decode_checkpoint(std::span<const std::uint8_t> bytes);

/// Human rendering for `cosim_ckpt inspect`: one line per section with
/// sizes, counters and digests.
std::string describe_checkpoint(const Checkpoint& checkpoint);

/// Field-level differences for `cosim_ckpt diff`, most significant first;
/// empty when equal. At most `max_lines` lines (then a truncation marker).
std::vector<std::string> diff_checkpoints(const Checkpoint& a, const Checkpoint& b,
                                          std::size_t max_lines = 32);

}  // namespace nisc::cosim
