// Supervised ISS worker: the guest side of the crash-recovery scheme
// (DESIGN.md §12).
//
// The paper keeps the ISS in its own process and talks to it over a data
// socket plus a dedicated interrupt socket. The supervised-session variant
// reproduces that process boundary for real: cosim::Supervisor fork/execs
// the `cosim_issworker` binary with a data and an irq socketpair, and the
// worker runs an iss::Cpu over a guest program, exchanging the frames
// defined here. Because the worker is a real process it can really die
// (SIGKILL, hang, stream corruption) and the supervisor can really
// recover it from the last checkpoint.
//
// Frame format on both sockets (little-endian):
//   u32 body_len | u8 op | u64 seq | payload
//
// Crash-consistency contract:
//  * every worker->supervisor frame carries a monotonically increasing
//    sequence number (tx_seq); the supervisor deduplicates replays after a
//    restore by tracking the last applied seq;
//  * device writes/reads are synchronous: each is acknowledged, and the ack
//    carries the supervisor's interrupt-wire high-water mark, which the
//    worker drains from the irq socket before retiring the guest's ecall —
//    interrupt delivery is thereby a deterministic function of the guest
//    instruction stream, so a replayed run is bit-identical to an
//    uninterrupted one;
//  * checkpoints are emitted on instruction-count boundaries with no
//    request outstanding, so channel snapshots never contain partial
//    frames (the frame-boundary invariant).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ipc/channel.hpp"

namespace nisc::cosim {

/// Fault injected into the worker for crash-matrix tests. The trigger fires
/// when `at_instret` guest instructions have retired.
enum class FaultKind : std::uint8_t {
  None = 0,
  CrashAt = 1,    ///< raise(SIGKILL): the crash-matrix kill point
  HangAt = 2,     ///< stop making progress (supervisor deadline fires)
  GarbageAt = 3,  ///< write junk into the data socket (protocol error)
};

struct WorkerFault {
  FaultKind kind = FaultKind::None;
  std::uint64_t at_instret = 0;

  bool operator==(const WorkerFault&) const = default;
};

/// Everything a worker needs to run a guest, sent in the Start/Resume frame.
struct WorkerConfig {
  std::string guest_source;       ///< RV32IM assembly, assembled in the worker
  std::uint64_t mem_size = 1 << 20;
  std::uint64_t ckpt_every = 64;  ///< checkpoint cadence in retired instructions
  WorkerFault fault;

  bool operator==(const WorkerConfig&) const = default;
};

std::vector<std::uint8_t> encode_worker_config(const WorkerConfig& config);
WorkerConfig decode_worker_config(std::span<const std::uint8_t> payload);

/// Frame opcodes. 0x0x: supervisor -> worker; 0x1x: worker -> supervisor.
enum class WorkerOp : std::uint8_t {
  Start = 0x01,      ///< payload: WorkerConfig — run the guest from reset
  Resume = 0x02,     ///< payload: WorkerConfig | checkpoint bytes — restore then run
  WriteAck = 0x03,   ///< payload: u64 irq high-water mark; seq echoes the DevWrite
  ReadReply = 0x04,  ///< payload: u32 value | u64 irq high-water mark
  Irq = 0x05,        ///< irq socket only; payload: u32 line; seq: irq ordinal

  Hello = 0x10,      ///< payload: u32 protocol magic; worker is ready
  Ckpt = 0x11,       ///< payload: checkpoint bytes (ISS + WRKR + CHAN sections)
  DevWrite = 0x12,   ///< payload: u32 addr | u32 value
  DevRead = 0x13,    ///< payload: u32 addr
  Done = 0x14,       ///< payload: u8 halt reason | final checkpoint bytes
};

const char* worker_op_name(WorkerOp op) noexcept;

/// Magic carried by Hello frames (protocol version 1).
inline constexpr std::uint32_t kWorkerHelloMagic = 0x314B5257u;  // "WRK1"

/// Guard on frame bodies; anything larger is stream corruption.
inline constexpr std::uint32_t kMaxWorkerFrame = 64u << 20;

struct WorkerFrame {
  WorkerOp op = WorkerOp::Hello;
  std::uint64_t seq = 0;
  std::vector<std::uint8_t> payload;

  bool operator==(const WorkerFrame&) const = default;
};

/// Writes one frame (atomically, as a single send).
void send_frame(ipc::Channel& channel, const WorkerFrame& frame);

/// Blocking read of one frame; throws RuntimeError on a malformed or
/// oversized header (the supervisor treats that as a protocol error and
/// recycles the worker).
WorkerFrame recv_frame(ipc::Channel& channel);

// -- guest-visible device ABI (ecall, args a0/a1, selector a7) --------------
inline constexpr std::uint32_t kEcallExit = 0;      ///< a0: exit code
inline constexpr std::uint32_t kEcallDevWrite = 1;  ///< a0: addr, a1: value
inline constexpr std::uint32_t kEcallDevRead = 2;   ///< a0: addr -> a0: value
inline constexpr std::uint32_t kEcallIrqPop = 3;    ///< -> a0: line or ~0u

/// Device register that raises an interrupt when written (line = value).
inline constexpr std::uint32_t kDevIrqTriggerAddr = 0x100;
/// Read-only register returning the number of writes the device has applied.
inline constexpr std::uint32_t kDevOpCountAddr = 0x104;

/// Runs the worker protocol over the two channels until the guest halts or
/// the supervisor goes away. Returns the process exit code (0 = guest ran
/// to completion and Done was sent).
int run_worker(ipc::Channel data, ipc::Channel irq);

}  // namespace nisc::cosim
