// Supervised ISS worker: the guest side of the crash-recovery scheme
// (DESIGN.md §12).
//
// The paper keeps the ISS in its own process and talks to it over a data
// socket plus a dedicated interrupt socket. The supervised-session variant
// reproduces that process boundary for real: cosim::Supervisor fork/execs
// the `cosim_issworker` binary with a data and an irq socketpair, and the
// worker runs an iss::Cpu over a guest program, exchanging the frames
// defined here. Because the worker is a real process it can really die
// (SIGKILL, hang, stream corruption) and the supervisor can really
// recover it from the last checkpoint.
//
// Frame format on both sockets (little-endian):
//   u32 body_len | u8 op | u64 seq | payload
//
// Fixed-payload ops (DevWrite/DevRead/WriteAck/ReadReply/Irq) may carry an
// optional correlation-id trailer after the payload:
//   u64 trace_id | u32 "FTID"
// Decoders that predate the trailer keep working: every handler reads a
// fixed-size payload prefix and ignores trailing bytes, and new decoders
// only strip the trailer when the length and magic both match. The
// trace_id doubles as a Chrome-trace flow id, so a worker-side ecall span
// and the supervisor-side device-access span it caused render as one flow
// arrow in the merged timeline (DESIGN.md §10.5).
//
// Crash-consistency contract:
//  * every worker->supervisor frame carries a monotonically increasing
//    sequence number (tx_seq); the supervisor deduplicates replays after a
//    restore by tracking the last applied seq;
//  * device writes/reads are synchronous: each is acknowledged, and the ack
//    carries the supervisor's interrupt-wire high-water mark, which the
//    worker drains from the irq socket before retiring the guest's ecall —
//    interrupt delivery is thereby a deterministic function of the guest
//    instruction stream, so a replayed run is bit-identical to an
//    uninterrupted one;
//  * checkpoints are emitted on instruction-count boundaries with no
//    request outstanding, so channel snapshots never contain partial
//    frames (the frame-boundary invariant);
//  * the observability side-band (ClockSync/PullObs/ClockSyncAck/ObsReport)
//    runs entirely at seq 0: it never consumes a tx_seq, is never logged or
//    replayed, and therefore leaves the bit-identical-replay property of
//    the checkpoint scheme untouched.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ipc/capture.hpp"
#include "ipc/channel.hpp"
#include "obs/trace.hpp"

namespace nisc::cosim {

/// Fault injected into the worker for crash-matrix tests. The trigger fires
/// when `at_instret` guest instructions have retired.
enum class FaultKind : std::uint8_t {
  None = 0,
  CrashAt = 1,    ///< raise(SIGKILL): the crash-matrix kill point
  HangAt = 2,     ///< stop making progress (supervisor deadline fires)
  GarbageAt = 3,  ///< write junk into the data socket (protocol error)
};

struct WorkerFault {
  FaultKind kind = FaultKind::None;
  std::uint64_t at_instret = 0;

  bool operator==(const WorkerFault&) const = default;
};

/// Everything a worker needs to run a guest, sent in the Start/Resume frame.
/// The observability fields ride in a tagged extension block ("WCX1") after
/// the original fields, so configs encoded by old supervisors decode here
/// with the defaults and configs encoded here decode in old workers (their
/// reader stops before the extension).
struct WorkerConfig {
  std::string guest_source;       ///< RV32IM assembly, assembled in the worker
  std::uint64_t mem_size = 1 << 20;
  std::uint64_t ckpt_every = 64;  ///< checkpoint cadence in retired instructions
  WorkerFault fault;

  // -- observability extension (DESIGN.md §10.5) ----------------------------
  bool trace = false;             ///< enable the worker's trace rings
  bool obs_export = false;        ///< speak the ClockSync/PullObs side-band
  std::uint64_t trace_buf = 0;    ///< per-thread ring capacity (0 = default)
  std::uint32_t clock_period_ps = 1000;  ///< guest cycle -> sim_ps conversion
  std::uint32_t worker_index = 0;        ///< namespaces the worker's flow ids
  std::string session_label = "worker";  ///< process label in merged traces

  bool operator==(const WorkerConfig&) const = default;
};

std::vector<std::uint8_t> encode_worker_config(const WorkerConfig& config);
WorkerConfig decode_worker_config(std::span<const std::uint8_t> payload);

/// Frame opcodes. 0x0x: supervisor -> worker; 0x1x: worker -> supervisor.
enum class WorkerOp : std::uint8_t {
  Start = 0x01,      ///< payload: WorkerConfig — run the guest from reset
  Resume = 0x02,     ///< payload: WorkerConfig | checkpoint bytes — restore then run
  WriteAck = 0x03,   ///< payload: u64 irq high-water mark; seq echoes the DevWrite
  ReadReply = 0x04,  ///< payload: u32 value | u64 irq high-water mark
  Irq = 0x05,        ///< irq socket only; payload: u32 line; seq: irq ordinal
  ClockSync = 0x06,  ///< seq 0; payload: u64 supervisor steady-clock ns
  PullObs = 0x07,    ///< seq 0; empty payload — request an ObsReport

  Hello = 0x10,      ///< payload: u32 protocol magic [| u32 feature bits]
  Ckpt = 0x11,       ///< payload: checkpoint bytes (ISS + WRKR + CHAN sections)
  DevWrite = 0x12,   ///< payload: u32 addr | u32 value
  DevRead = 0x13,    ///< payload: u32 addr
  Done = 0x14,       ///< payload: u8 halt reason | final checkpoint bytes
  ClockSyncAck = 0x15,  ///< seq 0; payload: u64 worker steady-clock ns
  ObsReport = 0x16,     ///< seq 0; payload: WorkerObsReport
};

const char* worker_op_name(WorkerOp op) noexcept;

/// Magic carried by Hello frames (protocol version 1).
inline constexpr std::uint32_t kWorkerHelloMagic = 0x314B5257u;  // "WRK1"

/// Hello feature bits (appended after the magic; absent = no features).
inline constexpr std::uint32_t kWorkerFeatureObs = 1u << 0;

/// Magic closing the optional trace-id trailer on fixed-payload frames.
inline constexpr std::uint32_t kFrameTraceMagic = 0x44495446u;  // "FTID"

/// Magic opening the WorkerConfig observability extension block.
inline constexpr std::uint32_t kWorkerConfigExtMagic = 0x31584357u;  // "WCX1"

/// Guard on frame bodies; anything larger is stream corruption.
inline constexpr std::uint32_t kMaxWorkerFrame = 64u << 20;

struct WorkerFrame {
  WorkerOp op = WorkerOp::Hello;
  std::uint64_t seq = 0;
  std::uint64_t trace_id = 0;  ///< 0 = no correlation trailer on the wire
  std::vector<std::uint8_t> payload;

  bool operator==(const WorkerFrame&) const = default;
};

/// Payload size of ops eligible for the trace-id trailer; 0 for ops whose
/// payload is variable (those never carry a trailer).
std::size_t worker_op_fixed_payload(WorkerOp op) noexcept;

/// Writes one frame (atomically, as a single send). A nonzero trace_id on a
/// fixed-payload op is appended as the 12-byte trailer.
void send_frame(ipc::Channel& channel, const WorkerFrame& frame);

/// Blocking read of one frame; throws RuntimeError on a malformed or
/// oversized header (the supervisor treats that as a protocol error and
/// recycles the worker). Strips a well-formed trace-id trailer into
/// frame.trace_id.
WorkerFrame recv_frame(ipc::Channel& channel);

/// Trace-id peeker for an ipc::ObsTap on a worker-protocol socket: returns
/// the correlation-trailer id of one complete Tx transfer (send_frame
/// writes a whole frame per send, so Tx transfers are parseable; Rx traffic
/// arrives as header/body chunks and yields 0).
std::uint64_t peek_frame_trace_id(ipc::CaptureDir dir,
                                  std::span<const std::uint8_t> bytes) noexcept;

/// Everything a worker exports on PullObs and before Done: its steady-clock
/// reading (for offset drift checks), its metrics registry rendered as the
/// schema-1 JSON, and its trace rings.
struct WorkerObsReport {
  std::uint64_t worker_now_ns = 0;
  std::string metrics_json;
  obs::TraceSnapshot trace;

  bool operator==(const WorkerObsReport&) const = default;
};

std::vector<std::uint8_t> encode_obs_report(const WorkerObsReport& report);
WorkerObsReport decode_obs_report(std::span<const std::uint8_t> payload);

// -- guest-visible device ABI (ecall, args a0/a1, selector a7) --------------
inline constexpr std::uint32_t kEcallExit = 0;      ///< a0: exit code
inline constexpr std::uint32_t kEcallDevWrite = 1;  ///< a0: addr, a1: value
inline constexpr std::uint32_t kEcallDevRead = 2;   ///< a0: addr -> a0: value
inline constexpr std::uint32_t kEcallIrqPop = 3;    ///< -> a0: line or ~0u

/// Device register that raises an interrupt when written (line = value).
inline constexpr std::uint32_t kDevIrqTriggerAddr = 0x100;
/// Read-only register returning the number of writes the device has applied.
inline constexpr std::uint32_t kDevOpCountAddr = 0x104;

/// Runs the worker protocol over the two channels until the guest halts or
/// the supervisor goes away. Returns the process exit code (0 = guest ran
/// to completion and Done was sent).
int run_worker(ipc::Channel data, ipc::Channel irq);

}  // namespace nisc::cosim
