#include "cosim/supervisor.hpp"

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <optional>

#include "cosim/bytes.hpp"
#include "ipc/capture.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sysc/kernel.hpp"
#include "sysc/sc_time.hpp"
#include "util/error.hpp"

namespace nisc::cosim {

using util::RuntimeError;

namespace {

/// The supervisor's SystemC-backed device model. Registers live in a map;
/// every *applied* write advances the simulation (a timed notification the
/// device process consumes), so the kernel section of an augmented
/// checkpoint is a deterministic function of the applied write sequence —
/// replays (which are deduplicated) leave it untouched.
class DeviceModel {
 public:
  DeviceModel() {
    sysc::sc_simcontext::ContextGuard guard(ctx_);
    irq_event_ = std::make_unique<sysc::sc_event>("dev_irq");
    sysc::sc_process& update = ctx_.create_method("dev_update", [this] { ++updates_; });
    update.dont_initialize();
    update.make_sensitive(*irq_event_);
  }

  std::uint32_t read(std::uint32_t addr) const {
    if (addr == kDevOpCountAddr) return static_cast<std::uint32_t>(writes_);
    const auto it = regs_.find(addr);
    return it == regs_.end() ? 0 : it->second;
  }

  /// Applies a write; returns the interrupt line to raise, if any.
  std::optional<std::uint32_t> write(std::uint32_t addr, std::uint32_t value) {
    regs_[addr] = value;
    ++writes_;
    irq_event_->notify(sysc::sc_time::from_ps(10000));
    ctx_.run(sysc::sc_time::from_ps(20000));
    if (addr == kDevIrqTriggerAddr) return value & 0x1F;
    return std::nullopt;
  }

  sysc::kernel_state state() const { return ctx_.save_state(); }

 private:
  sysc::sc_simcontext ctx_;
  std::unique_ptr<sysc::sc_event> irq_event_;
  std::map<std::uint32_t, std::uint32_t> regs_;
  std::uint64_t writes_ = 0;
  std::uint64_t updates_ = 0;
};

struct SocketPair {
  ipc::Fd parent;
  ipc::Fd child;
};

SocketPair make_socketpair() {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    throw RuntimeError(std::string("socketpair: ") + std::strerror(errno));
  }
  return SocketPair{ipc::Fd(sv[0]), ipc::Fd(sv[1])};
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

void write_file(const std::filesystem::path& path, std::span<const std::uint8_t> bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

void write_file(const std::filesystem::path& path, const std::string& text) {
  write_file(path, std::span<const std::uint8_t>(
                       reinterpret_cast<const std::uint8_t*>(text.data()), text.size()));
}

}  // namespace

struct Supervisor::Impl {
  explicit Impl(SupervisorConfig config) : cfg(std::move(config)) {
    util::require(!cfg.worker_path.empty(), "supervisor: worker_path is required");
  }

  ~Impl() { kill_child(); }

  SupervisorConfig cfg;
  DeviceModel device;

  pid_t pid = -1;
  ipc::Channel data;
  ipc::Channel irq;

  // -- crash-consistency bookkeeping ----------------------------------------
  std::uint64_t applied_seq = 0;  ///< highest worker frame seq applied
  std::uint64_t irq_tx_seq = 0;   ///< interrupts raised (logical, applied writes only)
  /// Replies to applied requests, for answering replays after a restore.
  /// Keyed by the worker's request seq; pruned at every checkpoint.
  struct LoggedReply {
    bool is_read = false;
    std::uint32_t value = 0;
    std::uint64_t irq_mark = 0;  ///< irq_tx_seq right after the original apply
  };
  std::map<std::uint64_t, LoggedReply> reply_log;
  /// Raised interrupts the worker may not have durably absorbed yet
  /// (seq -> line); pruned at every checkpoint, re-sent on resume.
  std::map<std::uint64_t, std::uint32_t> irq_log;

  std::vector<std::uint8_t> latest_ckpt;    ///< augmented, encoded
  std::uint64_t latest_irqs_delivered = 0;  ///< from the latest checkpoint

  SupervisorOutcome outcome;
  int spawn_count = 0;

  // -- observability (DESIGN.md §10.5-10.6) ---------------------------------
  std::uint32_t worker_features = 0;  ///< from the latest Hello
  int ckpts_since_pull = 0;
  /// Last-N-transfers ring on the data socket; survives kill_child (the
  /// shared_ptr keeps it alive after the channel closes), so a postmortem
  /// bundle contains the dying worker's final wire traffic.
  std::shared_ptr<ipc::WireCapture> wire_capture;

  bool obs_active() const noexcept {
    return cfg.obs_export && (worker_features & kWorkerFeatureObs) != 0;
  }

  // -- child lifecycle -------------------------------------------------------

  void spawn() {
    obs::ScopedSpan span("sup.spawn", "sup", "spawn", static_cast<std::uint64_t>(spawn_count));
    SocketPair data_sp = make_socketpair();
    SocketPair irq_sp = make_socketpair();

    const std::string data_fd = std::to_string(data_sp.child.get());
    const std::string irq_fd = std::to_string(irq_sp.child.get());
    const pid_t child = ::fork();
    if (child < 0) throw RuntimeError(std::string("fork: ") + std::strerror(errno));
    if (child == 0) {
      // Child: the socketpair fds are inherited; tell the worker which ones.
      data_sp.parent.reset();
      irq_sp.parent.reset();
      ::execl(cfg.worker_path.c_str(), "cosim_issworker", "--data-fd", data_fd.c_str(),
              "--irq-fd", irq_fd.c_str(), static_cast<char*>(nullptr));
      ::_exit(127);  // exec failed; the parent sees EOF on the sockets
    }
    pid = child;
    data_sp.child.reset();
    irq_sp.child.reset();
    data = ipc::Channel::from_socket(std::move(data_sp.parent));
    irq = ipc::Channel::from_socket(std::move(irq_sp.parent));
    data.set_io_timeout(cfg.hang_timeout_ms);
    irq.set_io_timeout(cfg.hang_timeout_ms);
    std::shared_ptr<ipc::WireObserver> data_tap;
    if (!cfg.postmortem_dir.empty() || cfg.obs_export) {
      wire_capture = std::make_shared<ipc::WireCapture>(cfg.session_label + "-data");
      data.attach_capture(wire_capture);
      data_tap =
          std::make_shared<ipc::ObsTap>("sup.data", peek_frame_trace_id, "dev_access", "flow");
    }
    // A channel holds one observer slot; compose the supervisor's own tap
    // with the injected one (e.g. a live conformance monitor) when both run.
    if (data_tap && cfg.data_observer) {
      data.attach_observer(std::make_shared<ipc::FanoutWireObserver>(
          std::vector<std::shared_ptr<ipc::WireObserver>>{data_tap, cfg.data_observer}));
    } else if (data_tap || cfg.data_observer) {
      data.attach_observer(data_tap ? data_tap : cfg.data_observer);
    }
    if (cfg.irq_observer) irq.attach_observer(cfg.irq_observer);

    // Handshake: Hello, then Start (fresh) or Resume (replay the latest
    // checkpoint and re-send the interrupts it had not absorbed).
    const WorkerFrame hello = recv_frame(data);
    if (hello.op != WorkerOp::Hello) {
      throw RuntimeError(std::string("supervisor: expected Hello, got ") +
                         worker_op_name(hello.op));
    }
    ByteReader r(hello.payload, "Hello payload");
    const std::uint32_t magic = r.u32();
    if (magic != kWorkerHelloMagic) {
      throw RuntimeError("supervisor: worker protocol magic mismatch");
    }
    // Feature bits follow the magic since the obs side-band landed; a Hello
    // without them is an older worker (no side-band spoken).
    worker_features = r.remaining() >= 4 ? r.u32() : 0;

    WorkerConfig worker_cfg = cfg.worker;
    worker_cfg.fault = spawn_count < static_cast<int>(cfg.fault_plan.size())
                           ? cfg.fault_plan[static_cast<std::size_t>(spawn_count)]
                           : WorkerFault{};
    if (obs_active()) worker_cfg.obs_export = true;
    ++spawn_count;

    if (latest_ckpt.empty()) {
      send_frame(data, WorkerFrame{WorkerOp::Start, 0, 0, encode_worker_config(worker_cfg)});
    } else {
      ByteWriter w;
      const std::vector<std::uint8_t> encoded_cfg = encode_worker_config(worker_cfg);
      w.blob(encoded_cfg);
      w.bytes(latest_ckpt);
      send_frame(data, WorkerFrame{WorkerOp::Resume, 0, 0, w.take()});
    }
    // Re-send every logged interrupt the replayed run has not yet absorbed —
    // on the Start path too: a crash before the first checkpoint replays
    // from reset, and its deduplicated device writes will not re-raise the
    // interrupts the original run already produced, yet the replayed acks
    // carry the historical irq high-water marks the worker must drain to.
    for (const auto& [seq, line] : irq_log) {
      if (seq <= latest_irqs_delivered) continue;
      ByteWriter payload;
      payload.u32(line);
      send_frame(irq, WorkerFrame{WorkerOp::Irq, seq, 0, payload.take()});
    }

    if (worker_cfg.obs_export) clock_sync();
  }

  /// Clock-offset handshake (DESIGN.md §10.5): the worker answers the
  /// ClockSync ping with its steady clock; assuming symmetric transit, its
  /// reading was taken at our (t0+t1)/2, so offset = midpoint - worker_ns.
  void clock_sync() {
    obs::ScopedSpan span("sup.clock_sync", "sup");
    const std::uint64_t t0 = now_ns();
    ByteWriter w;
    w.u64(t0);
    send_frame(data, WorkerFrame{WorkerOp::ClockSync, 0, 0, w.take()});
    const WorkerFrame ack = recv_frame(data);
    const std::uint64_t t1 = now_ns();
    if (ack.op != WorkerOp::ClockSyncAck) {
      throw RuntimeError(std::string("supervisor: expected ClockSyncAck, got ") +
                         worker_op_name(ack.op));
    }
    ByteReader r(ack.payload, "ClockSyncAck payload");
    const std::uint64_t worker_ns = r.u64();
    outcome.clock_offset_ns =
        static_cast<std::int64_t>((t0 + t1) / 2) - static_cast<std::int64_t>(worker_ns);
    static obs::Gauge& g_offset = obs::gauge("sup.clock_offset_ns");
    g_offset.set(outcome.clock_offset_ns);
  }

  bool child_dead() {
    if (pid < 0) return true;
    int status = 0;
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) {
      pid = -1;  // reaped
      return true;
    }
    return false;
  }

  void kill_child() noexcept {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      pid = -1;
    }
    data.close();
    irq.close();
  }

  void recover(const char* reason) {
    ++outcome.recoveries;
    static obs::Counter& c_recoveries = obs::counter("sup.recoveries");
    c_recoveries.add(1);
    obs::instant(reason, "sup", "recoveries", static_cast<std::uint64_t>(outcome.recoveries));
    // Flight recorder first, while the dying worker's wire ring and last
    // ObsReport are still what they were at the failure.
    write_postmortem(reason);
    if (outcome.recoveries > cfg.max_recoveries) {
      kill_child();
      throw RuntimeError("supervisor: recovery limit exceeded (" +
                         std::to_string(cfg.max_recoveries) + ")");
    }
    obs::ScopedSpan span("sup.recover", "sup");
    // Epoch boundary for live conformance monitors: a SIGKILL legitimately
    // truncates a frame mid-wire, so announce the respawn before the old
    // sockets die — the monitors reset their decoders and resynchronize on
    // the replacement pair's fresh handshake.
    data.notify_observer("respawn");
    irq.notify_observer("respawn");
    kill_child();
    spawn();
  }

  /// The merged view of the session: supervisor rings as pid 1, the last
  /// exported worker rings (rebased by the measured clock offset) as pid 2.
  std::vector<obs::ProcessTrace> merged_processes() const {
    std::vector<obs::ProcessTrace> processes;
    obs::ProcessTrace sup;
    sup.label = cfg.session_label + "/supervisor";
    sup.pid = 1;
    sup.snapshot = obs::take_trace_snapshot();
    processes.push_back(std::move(sup));
    obs::ProcessTrace wrk;
    wrk.label = cfg.session_label + "/worker";
    wrk.pid = 2;
    wrk.clock_offset_ns = outcome.clock_offset_ns;
    wrk.snapshot = outcome.worker_trace;
    processes.push_back(std::move(wrk));
    return processes;
  }

  /// Crash flight recorder (DESIGN.md §10.6): writes one bundle directory
  /// per recovery. Best-effort by design — a full disk must not stop the
  /// recovery path, so every failure here is swallowed.
  void write_postmortem(const char* reason) noexcept {
    if (cfg.postmortem_dir.empty()) return;
    try {
      namespace fs = std::filesystem;
      const fs::path dir =
          fs::path(cfg.postmortem_dir) /
          (cfg.session_label + "-pm" + std::to_string(outcome.postmortem_paths.size() + 1));
      fs::create_directories(dir);
      std::vector<std::string> files;

      obs::write_chrome_trace((dir / "trace.json").string(), merged_processes());
      files.push_back("trace.json");

      write_file(dir / "metrics.json", obs::MetricsRegistry::instance().render_json());
      files.push_back("metrics.json");
      write_file(dir / "worker_metrics.json",
                 outcome.worker_metrics_json.empty() ? std::string("{}\n")
                                                     : outcome.worker_metrics_json);
      files.push_back("worker_metrics.json");

      std::vector<std::uint8_t> capture_dump;
      std::string capture_text;
      if (wire_capture) {
        capture_dump = wire_capture->dump();
        capture_text = wire_capture->render_text();
        write_file(dir / "wire.capture", std::span<const std::uint8_t>(capture_dump));
        files.push_back("wire.capture");
      }

      if (latest_ckpt.empty()) {
        write_file(dir / "checkpoint.txt", std::string("no checkpoint captured\n"));
      } else {
        write_file(dir / "checkpoint.txt", describe_checkpoint(decode_checkpoint(latest_ckpt)));
        write_file(dir / "checkpoint.ckpt", std::span<const std::uint8_t>(latest_ckpt));
        files.push_back("checkpoint.ckpt");
      }
      files.push_back("checkpoint.txt");

      std::string findings;
      findings += std::string("reason: ") + reason + "\n";
      findings += "recoveries: " + std::to_string(outcome.recoveries) + "\n";
      findings += "clock_offset_ns: " + std::to_string(outcome.clock_offset_ns) + "\n";
      if (!capture_text.empty()) findings += "\nwire capture (last transfers):\n" + capture_text;
      if (cfg.findings_hook) findings += "\nconformance:\n" + cfg.findings_hook(capture_dump);
      write_file(dir / "findings.txt", findings);
      files.push_back("findings.txt");

      std::string manifest = "{\"schema\":1,\"session\":\"" + cfg.session_label +
                             "\",\"reason\":\"" + reason +
                             "\",\"recoveries\":" + std::to_string(outcome.recoveries) +
                             ",\"clock_offset_ns\":" + std::to_string(outcome.clock_offset_ns) +
                             ",\"files\":[";
      for (std::size_t i = 0; i < files.size(); ++i) {
        if (i > 0) manifest += ',';
        manifest += '"' + files[i] + '"';
      }
      manifest += "]}\n";
      write_file(dir / "MANIFEST.json", manifest);

      outcome.postmortem_paths.push_back(dir.string());
      static obs::Counter& c_bundles = obs::counter("sup.postmortems");
      c_bundles.add(1);
    } catch (...) {
      // Recovery matters more than the bundle.
    }
  }

  // -- frame handling --------------------------------------------------------

  /// Augments a worker checkpoint with the supervisor-side sections and
  /// stores it as the resume point. Logical counters only — replays change
  /// none of them, so the augmented bytes are identical whether or not a
  /// recovery happened on the way here.
  std::vector<std::uint8_t> augment(std::span<const std::uint8_t> worker_ckpt) {
    Checkpoint checkpoint = decode_checkpoint(worker_ckpt);
    checkpoint.kernel = device.state();
    ChannelSnapshot sup;
    sup.label = "sup-data";
    sup.tx_seq = outcome.writes_applied + outcome.reads_served;
    sup.rx_seq = applied_seq;
    checkpoint.channels.push_back(std::move(sup));
    return encode_checkpoint(checkpoint);
  }

  void store_checkpoint(std::span<const std::uint8_t> worker_ckpt) {
    const Checkpoint checkpoint = decode_checkpoint(worker_ckpt);
    latest_ckpt = augment(worker_ckpt);
    static obs::Counter& c_ckpts = obs::counter("sup.checkpoints");
    c_ckpts.add(1);

    // Prune: everything at or below the checkpoint's counters is durable.
    std::uint64_t worker_tx = 0;
    for (const ChannelSnapshot& chan : checkpoint.channels) {
      if (chan.label == "worker-data") worker_tx = chan.tx_seq;
    }
    std::erase_if(reply_log, [worker_tx](const auto& e) { return e.first <= worker_tx; });
    if (checkpoint.worker) {
      latest_irqs_delivered = checkpoint.worker->irqs_delivered;
      std::erase_if(irq_log,
                    [this](const auto& e) { return e.first <= latest_irqs_delivered; });
    }

    if (!cfg.checkpoint_path.empty()) {
      std::ofstream out(cfg.checkpoint_path, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(latest_ckpt.data()),
                static_cast<std::streamsize>(latest_ckpt.size()));
    }
  }

  void handle_dev_write(const WorkerFrame& frame) {
    // The flow-finish joins the worker's flow-begin around the ecall that
    // sent this frame: one arrow per correlated device access in the merged
    // timeline.
    obs::ScopedSpan span("sup.dev_write", "sup", "seq", frame.seq);
    obs::flow_end("dev_access", "flow", frame.trace_id);
    ByteReader r(frame.payload, "DevWrite payload");
    const std::uint32_t addr = r.u32();
    const std::uint32_t value = r.u32();
    std::uint64_t irq_mark = 0;
    // chaos_no_dedup (the NL413 negative control) treats every replay as
    // fresh: the device effect is applied twice, exactly the duplication
    // the model checker's counterexample predicts.
    if (!cfg.chaos_no_dedup && frame.seq <= applied_seq) {
      // Replay of an applied write: re-ack with the *historical* irq mark so
      // the worker drains interrupts at the same instruction boundary as the
      // original run.
      irq_mark = logged_reply(frame, false).irq_mark;
    } else {
      applied_seq = frame.seq;
      ++outcome.writes_applied;
      if (const std::optional<std::uint32_t> line = device.write(addr, value)) {
        ++irq_tx_seq;
        ++outcome.irqs_sent;
        irq_log.emplace(irq_tx_seq, *line);
        ByteWriter payload;
        payload.u32(*line);
        send_frame(irq, WorkerFrame{WorkerOp::Irq, irq_tx_seq, 0, payload.take()});
      }
      irq_mark = irq_tx_seq;
      reply_log.emplace(frame.seq, LoggedReply{false, 0, irq_mark});
    }
    ByteWriter ack;
    ack.u64(irq_mark);
    send_frame(data, WorkerFrame{WorkerOp::WriteAck, frame.seq, frame.trace_id, ack.take()});
  }

  void handle_dev_read(const WorkerFrame& frame) {
    obs::ScopedSpan span("sup.dev_read", "sup", "seq", frame.seq);
    obs::flow_end("dev_access", "flow", frame.trace_id);
    ByteReader r(frame.payload, "DevRead payload");
    const std::uint32_t addr = r.u32();
    std::uint32_t value = 0;
    std::uint64_t irq_mark = 0;
    if (!cfg.chaos_no_dedup && frame.seq <= applied_seq) {
      // Replay: answer from the log — the device may have moved on since.
      const LoggedReply& logged = logged_reply(frame, true);
      value = logged.value;
      irq_mark = logged.irq_mark;
    } else {
      applied_seq = frame.seq;
      ++outcome.reads_served;
      value = device.read(addr);
      irq_mark = irq_tx_seq;
      reply_log.emplace(frame.seq, LoggedReply{true, value, irq_mark});
    }
    ByteWriter reply;
    reply.u32(value);
    reply.u64(irq_mark);
    send_frame(data, WorkerFrame{WorkerOp::ReadReply, frame.seq, frame.trace_id, reply.take()});
  }

  const LoggedReply& logged_reply(const WorkerFrame& frame, bool want_read) {
    const auto it = reply_log.find(frame.seq);
    if (it == reply_log.end() || it->second.is_read != want_read) {
      throw RuntimeError("supervisor: replayed " + std::string(worker_op_name(frame.op)) +
                         " seq " + std::to_string(frame.seq) +
                         " diverges from the logged history");
    }
    return it->second;
  }

  /// Pulls the worker's trace rings + metrics every obs_pull_every applied
  /// checkpoints. Fire-and-forget at seq 0: the ObsReport comes back through
  /// the normal receive loop, so a worker busy running the guest never
  /// stalls the supervisor here.
  void maybe_pull_obs() {
    if (!obs_active()) return;
    if (++ckpts_since_pull < cfg.obs_pull_every) return;
    ckpts_since_pull = 0;
    send_frame(data, WorkerFrame{WorkerOp::PullObs, 0, 0, {}});
    static obs::Counter& c_pulls = obs::counter("sup.obs_pulls");
    c_pulls.add(1);
  }

  /// Returns true when the session is complete (Done handled).
  bool handle(const WorkerFrame& frame) {
    switch (frame.op) {
      case WorkerOp::Ckpt:
        if (frame.seq > applied_seq) {
          applied_seq = frame.seq;
          store_checkpoint(frame.payload);
          maybe_pull_obs();
        }
        return false;
      case WorkerOp::ObsReport: {
        const WorkerObsReport report = decode_obs_report(frame.payload);
        outcome.worker_trace = report.trace;
        outcome.worker_metrics_json = report.metrics_json;
        return false;
      }
      case WorkerOp::ClockSyncAck:
        return false;  // late ack after a recovery race; offset already set
      case WorkerOp::DevWrite:
        handle_dev_write(frame);
        return false;
      case WorkerOp::DevRead:
        handle_dev_read(frame);
        return false;
      case WorkerOp::Done: {
        ByteReader r(frame.payload, "Done payload");
        outcome.guest_halt = r.u8();
        outcome.final_checkpoint = augment(r.bytes(r.remaining()));
        if (!cfg.checkpoint_path.empty()) {
          std::ofstream out(cfg.checkpoint_path, std::ios::binary | std::ios::trunc);
          out.write(reinterpret_cast<const char*>(outcome.final_checkpoint.data()),
                    static_cast<std::streamsize>(outcome.final_checkpoint.size()));
        }
        return true;
      }
      default:
        throw RuntimeError(std::string("supervisor: unexpected ") + worker_op_name(frame.op) +
                           " frame");
    }
  }

  SupervisorOutcome run() {
    obs::ScopedSpan span("sup.session", "sup");
    spawn();
    for (;;) {
      if (!data.readable(cfg.hang_timeout_ms)) {
        recover(child_dead() ? "sup.recover.death" : "sup.recover.hang");
        continue;
      }
      WorkerFrame frame;
      try {
        frame = recv_frame(data);
      } catch (const std::exception&) {
        recover(child_dead() ? "sup.recover.death" : "sup.recover.protocol");
        continue;
      }
      try {
        if (handle(frame)) break;
      } catch (const RuntimeError&) {
        recover("sup.recover.protocol");
      }
    }
    // Let the worker exit cleanly; SIGKILL whatever refuses.
    if (pid > 0) {
      int status = 0;
      if (::waitpid(pid, &status, WNOHANG) == pid) pid = -1;
    }
    kill_child();
    if (!cfg.trace_out.empty()) {
      obs::write_chrome_trace(cfg.trace_out, merged_processes());
    }
    return std::move(outcome);
  }
};

Supervisor::Supervisor(SupervisorConfig config) : impl_(std::make_unique<Impl>(std::move(config))) {}
Supervisor::~Supervisor() = default;

SupervisorOutcome Supervisor::run() { return impl_->run(); }

}  // namespace nisc::cosim
