#include "cosim/supervisor.hpp"

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstring>
#include <fstream>
#include <optional>

#include "cosim/bytes.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "sysc/kernel.hpp"
#include "sysc/sc_time.hpp"
#include "util/error.hpp"

namespace nisc::cosim {

using util::RuntimeError;

namespace {

/// The supervisor's SystemC-backed device model. Registers live in a map;
/// every *applied* write advances the simulation (a timed notification the
/// device process consumes), so the kernel section of an augmented
/// checkpoint is a deterministic function of the applied write sequence —
/// replays (which are deduplicated) leave it untouched.
class DeviceModel {
 public:
  DeviceModel() {
    sysc::sc_simcontext::ContextGuard guard(ctx_);
    irq_event_ = std::make_unique<sysc::sc_event>("dev_irq");
    sysc::sc_process& update = ctx_.create_method("dev_update", [this] { ++updates_; });
    update.dont_initialize();
    update.make_sensitive(*irq_event_);
  }

  std::uint32_t read(std::uint32_t addr) const {
    if (addr == kDevOpCountAddr) return static_cast<std::uint32_t>(writes_);
    const auto it = regs_.find(addr);
    return it == regs_.end() ? 0 : it->second;
  }

  /// Applies a write; returns the interrupt line to raise, if any.
  std::optional<std::uint32_t> write(std::uint32_t addr, std::uint32_t value) {
    regs_[addr] = value;
    ++writes_;
    irq_event_->notify(sysc::sc_time::from_ps(10000));
    ctx_.run(sysc::sc_time::from_ps(20000));
    if (addr == kDevIrqTriggerAddr) return value & 0x1F;
    return std::nullopt;
  }

  sysc::kernel_state state() const { return ctx_.save_state(); }

 private:
  sysc::sc_simcontext ctx_;
  std::unique_ptr<sysc::sc_event> irq_event_;
  std::map<std::uint32_t, std::uint32_t> regs_;
  std::uint64_t writes_ = 0;
  std::uint64_t updates_ = 0;
};

struct SocketPair {
  ipc::Fd parent;
  ipc::Fd child;
};

SocketPair make_socketpair() {
  int sv[2];
  if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
    throw RuntimeError(std::string("socketpair: ") + std::strerror(errno));
  }
  return SocketPair{ipc::Fd(sv[0]), ipc::Fd(sv[1])};
}

}  // namespace

struct Supervisor::Impl {
  explicit Impl(SupervisorConfig config) : cfg(std::move(config)) {
    util::require(!cfg.worker_path.empty(), "supervisor: worker_path is required");
  }

  ~Impl() { kill_child(); }

  SupervisorConfig cfg;
  DeviceModel device;

  pid_t pid = -1;
  ipc::Channel data;
  ipc::Channel irq;

  // -- crash-consistency bookkeeping ----------------------------------------
  std::uint64_t applied_seq = 0;  ///< highest worker frame seq applied
  std::uint64_t irq_tx_seq = 0;   ///< interrupts raised (logical, applied writes only)
  /// Replies to applied requests, for answering replays after a restore.
  /// Keyed by the worker's request seq; pruned at every checkpoint.
  struct LoggedReply {
    bool is_read = false;
    std::uint32_t value = 0;
    std::uint64_t irq_mark = 0;  ///< irq_tx_seq right after the original apply
  };
  std::map<std::uint64_t, LoggedReply> reply_log;
  /// Raised interrupts the worker may not have durably absorbed yet
  /// (seq -> line); pruned at every checkpoint, re-sent on resume.
  std::map<std::uint64_t, std::uint32_t> irq_log;

  std::vector<std::uint8_t> latest_ckpt;    ///< augmented, encoded
  std::uint64_t latest_irqs_delivered = 0;  ///< from the latest checkpoint

  SupervisorOutcome outcome;
  int spawn_count = 0;

  // -- child lifecycle -------------------------------------------------------

  void spawn() {
    obs::ScopedSpan span("sup.spawn", "sup", "spawn", static_cast<std::uint64_t>(spawn_count));
    SocketPair data_sp = make_socketpair();
    SocketPair irq_sp = make_socketpair();

    const std::string data_fd = std::to_string(data_sp.child.get());
    const std::string irq_fd = std::to_string(irq_sp.child.get());
    const pid_t child = ::fork();
    if (child < 0) throw RuntimeError(std::string("fork: ") + std::strerror(errno));
    if (child == 0) {
      // Child: the socketpair fds are inherited; tell the worker which ones.
      data_sp.parent.reset();
      irq_sp.parent.reset();
      ::execl(cfg.worker_path.c_str(), "cosim_issworker", "--data-fd", data_fd.c_str(),
              "--irq-fd", irq_fd.c_str(), static_cast<char*>(nullptr));
      ::_exit(127);  // exec failed; the parent sees EOF on the sockets
    }
    pid = child;
    data_sp.child.reset();
    irq_sp.child.reset();
    data = ipc::Channel::from_socket(std::move(data_sp.parent));
    irq = ipc::Channel::from_socket(std::move(irq_sp.parent));
    data.set_io_timeout(cfg.hang_timeout_ms);
    irq.set_io_timeout(cfg.hang_timeout_ms);

    // Handshake: Hello, then Start (fresh) or Resume (replay the latest
    // checkpoint and re-send the interrupts it had not absorbed).
    const WorkerFrame hello = recv_frame(data);
    if (hello.op != WorkerOp::Hello) {
      throw RuntimeError(std::string("supervisor: expected Hello, got ") +
                         worker_op_name(hello.op));
    }
    ByteReader r(hello.payload, "Hello payload");
    const std::uint32_t magic = r.u32();
    if (magic != kWorkerHelloMagic) {
      throw RuntimeError("supervisor: worker protocol magic mismatch");
    }

    WorkerConfig worker_cfg = cfg.worker;
    worker_cfg.fault = spawn_count < static_cast<int>(cfg.fault_plan.size())
                           ? cfg.fault_plan[static_cast<std::size_t>(spawn_count)]
                           : WorkerFault{};
    ++spawn_count;

    if (latest_ckpt.empty()) {
      send_frame(data, WorkerFrame{WorkerOp::Start, 0, encode_worker_config(worker_cfg)});
    } else {
      ByteWriter w;
      const std::vector<std::uint8_t> encoded_cfg = encode_worker_config(worker_cfg);
      w.blob(encoded_cfg);
      w.bytes(latest_ckpt);
      send_frame(data, WorkerFrame{WorkerOp::Resume, 0, w.take()});
    }
    // Re-send every logged interrupt the replayed run has not yet absorbed —
    // on the Start path too: a crash before the first checkpoint replays
    // from reset, and its deduplicated device writes will not re-raise the
    // interrupts the original run already produced, yet the replayed acks
    // carry the historical irq high-water marks the worker must drain to.
    for (const auto& [seq, line] : irq_log) {
      if (seq <= latest_irqs_delivered) continue;
      ByteWriter payload;
      payload.u32(line);
      send_frame(irq, WorkerFrame{WorkerOp::Irq, seq, payload.take()});
    }
  }

  bool child_dead() {
    if (pid < 0) return true;
    int status = 0;
    const pid_t r = ::waitpid(pid, &status, WNOHANG);
    if (r == pid) {
      pid = -1;  // reaped
      return true;
    }
    return false;
  }

  void kill_child() noexcept {
    if (pid > 0) {
      ::kill(pid, SIGKILL);
      ::waitpid(pid, nullptr, 0);
      pid = -1;
    }
    data.close();
    irq.close();
  }

  void recover(const char* reason) {
    ++outcome.recoveries;
    static obs::Counter& c_recoveries = obs::counter("sup.recoveries");
    c_recoveries.add(1);
    obs::instant(reason, "sup", "recoveries", static_cast<std::uint64_t>(outcome.recoveries));
    if (outcome.recoveries > cfg.max_recoveries) {
      kill_child();
      throw RuntimeError("supervisor: recovery limit exceeded (" +
                         std::to_string(cfg.max_recoveries) + ")");
    }
    obs::ScopedSpan span("sup.recover", "sup");
    kill_child();
    spawn();
  }

  // -- frame handling --------------------------------------------------------

  /// Augments a worker checkpoint with the supervisor-side sections and
  /// stores it as the resume point. Logical counters only — replays change
  /// none of them, so the augmented bytes are identical whether or not a
  /// recovery happened on the way here.
  std::vector<std::uint8_t> augment(std::span<const std::uint8_t> worker_ckpt) {
    Checkpoint checkpoint = decode_checkpoint(worker_ckpt);
    checkpoint.kernel = device.state();
    ChannelSnapshot sup;
    sup.label = "sup-data";
    sup.tx_seq = outcome.writes_applied + outcome.reads_served;
    sup.rx_seq = applied_seq;
    checkpoint.channels.push_back(std::move(sup));
    return encode_checkpoint(checkpoint);
  }

  void store_checkpoint(std::span<const std::uint8_t> worker_ckpt) {
    const Checkpoint checkpoint = decode_checkpoint(worker_ckpt);
    latest_ckpt = augment(worker_ckpt);
    static obs::Counter& c_ckpts = obs::counter("sup.checkpoints");
    c_ckpts.add(1);

    // Prune: everything at or below the checkpoint's counters is durable.
    std::uint64_t worker_tx = 0;
    for (const ChannelSnapshot& chan : checkpoint.channels) {
      if (chan.label == "worker-data") worker_tx = chan.tx_seq;
    }
    std::erase_if(reply_log, [worker_tx](const auto& e) { return e.first <= worker_tx; });
    if (checkpoint.worker) {
      latest_irqs_delivered = checkpoint.worker->irqs_delivered;
      std::erase_if(irq_log,
                    [this](const auto& e) { return e.first <= latest_irqs_delivered; });
    }

    if (!cfg.checkpoint_path.empty()) {
      std::ofstream out(cfg.checkpoint_path, std::ios::binary | std::ios::trunc);
      out.write(reinterpret_cast<const char*>(latest_ckpt.data()),
                static_cast<std::streamsize>(latest_ckpt.size()));
    }
  }

  void handle_dev_write(const WorkerFrame& frame) {
    ByteReader r(frame.payload, "DevWrite payload");
    const std::uint32_t addr = r.u32();
    const std::uint32_t value = r.u32();
    std::uint64_t irq_mark = 0;
    if (frame.seq <= applied_seq) {
      // Replay of an applied write: re-ack with the *historical* irq mark so
      // the worker drains interrupts at the same instruction boundary as the
      // original run.
      irq_mark = logged_reply(frame, false).irq_mark;
    } else {
      applied_seq = frame.seq;
      ++outcome.writes_applied;
      if (const std::optional<std::uint32_t> line = device.write(addr, value)) {
        ++irq_tx_seq;
        ++outcome.irqs_sent;
        irq_log.emplace(irq_tx_seq, *line);
        ByteWriter payload;
        payload.u32(*line);
        send_frame(irq, WorkerFrame{WorkerOp::Irq, irq_tx_seq, payload.take()});
      }
      irq_mark = irq_tx_seq;
      reply_log.emplace(frame.seq, LoggedReply{false, 0, irq_mark});
    }
    ByteWriter ack;
    ack.u64(irq_mark);
    send_frame(data, WorkerFrame{WorkerOp::WriteAck, frame.seq, ack.take()});
  }

  void handle_dev_read(const WorkerFrame& frame) {
    ByteReader r(frame.payload, "DevRead payload");
    const std::uint32_t addr = r.u32();
    std::uint32_t value = 0;
    std::uint64_t irq_mark = 0;
    if (frame.seq <= applied_seq) {
      // Replay: answer from the log — the device may have moved on since.
      const LoggedReply& logged = logged_reply(frame, true);
      value = logged.value;
      irq_mark = logged.irq_mark;
    } else {
      applied_seq = frame.seq;
      ++outcome.reads_served;
      value = device.read(addr);
      irq_mark = irq_tx_seq;
      reply_log.emplace(frame.seq, LoggedReply{true, value, irq_mark});
    }
    ByteWriter reply;
    reply.u32(value);
    reply.u64(irq_mark);
    send_frame(data, WorkerFrame{WorkerOp::ReadReply, frame.seq, reply.take()});
  }

  const LoggedReply& logged_reply(const WorkerFrame& frame, bool want_read) {
    const auto it = reply_log.find(frame.seq);
    if (it == reply_log.end() || it->second.is_read != want_read) {
      throw RuntimeError("supervisor: replayed " + std::string(worker_op_name(frame.op)) +
                         " seq " + std::to_string(frame.seq) +
                         " diverges from the logged history");
    }
    return it->second;
  }

  /// Returns true when the session is complete (Done handled).
  bool handle(const WorkerFrame& frame) {
    switch (frame.op) {
      case WorkerOp::Ckpt:
        if (frame.seq > applied_seq) {
          applied_seq = frame.seq;
          store_checkpoint(frame.payload);
        }
        return false;
      case WorkerOp::DevWrite:
        handle_dev_write(frame);
        return false;
      case WorkerOp::DevRead:
        handle_dev_read(frame);
        return false;
      case WorkerOp::Done: {
        ByteReader r(frame.payload, "Done payload");
        outcome.guest_halt = r.u8();
        outcome.final_checkpoint = augment(r.bytes(r.remaining()));
        if (!cfg.checkpoint_path.empty()) {
          std::ofstream out(cfg.checkpoint_path, std::ios::binary | std::ios::trunc);
          out.write(reinterpret_cast<const char*>(outcome.final_checkpoint.data()),
                    static_cast<std::streamsize>(outcome.final_checkpoint.size()));
        }
        return true;
      }
      default:
        throw RuntimeError(std::string("supervisor: unexpected ") + worker_op_name(frame.op) +
                           " frame");
    }
  }

  SupervisorOutcome run() {
    obs::ScopedSpan span("sup.session", "sup");
    spawn();
    for (;;) {
      if (!data.readable(cfg.hang_timeout_ms)) {
        recover(child_dead() ? "sup.recover.death" : "sup.recover.hang");
        continue;
      }
      WorkerFrame frame;
      try {
        frame = recv_frame(data);
      } catch (const std::exception&) {
        recover(child_dead() ? "sup.recover.death" : "sup.recover.protocol");
        continue;
      }
      try {
        if (handle(frame)) break;
      } catch (const RuntimeError&) {
        recover("sup.recover.protocol");
      }
    }
    // Let the worker exit cleanly; SIGKILL whatever refuses.
    if (pid > 0) {
      int status = 0;
      if (::waitpid(pid, &status, WNOHANG) == pid) pid = -1;
    }
    kill_child();
    return std::move(outcome);
  }
};

Supervisor::Supervisor(SupervisorConfig config) : impl_(std::make_unique<Impl>(std::move(config))) {}
Supervisor::~Supervisor() = default;

SupervisorOutcome Supervisor::run() { return impl_->run(); }

}  // namespace nisc::cosim
