#include "cosim/pragma.hpp"

#include <cctype>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace nisc::cosim {
namespace {

using util::RuntimeError;
using util::starts_with;
using util::trim;

/// True when the line holds an instruction or data statement a breakpoint
/// can land on (not blank, not a pure comment, not a pure label, not a
/// directive).
bool is_code_line(std::string_view line) {
  std::string_view t = trim(line);
  if (t.empty()) return false;
  if (t[0] == '#' || t[0] == ';') return false;
  if (t.size() >= 2 && t[0] == '/' && t[1] == '/') return false;
  // Strip leading labels.
  while (true) {
    std::size_t colon = t.find(':');
    if (colon == std::string_view::npos) break;
    std::string_view head = trim(t.substr(0, colon));
    bool ident = !head.empty();
    for (char c : head) {
      if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.')) ident = false;
    }
    if (!ident) break;
    t = trim(t.substr(colon + 1));
  }
  if (t.empty()) return false;
  if (t[0] == '.') return false;  // directive
  if (t[0] == '#' || t[0] == ';') return false;
  return true;
}

/// Parses `iss_in("port", var)` after the `#pragma ` prefix.
PragmaBinding parse_pragma(std::string_view text, int line_no) {
  PragmaBinding binding;
  binding.pragma_line = line_no;
  text = trim(text);
  if (starts_with(text, "iss_in")) {
    binding.direction = BindDirection::IssToSc;
    text.remove_prefix(6);
  } else if (starts_with(text, "iss_out")) {
    binding.direction = BindDirection::ScToIss;
    text.remove_prefix(7);
  } else {
    throw RuntimeError("line " + std::to_string(line_no) +
                       ": unknown pragma (expected iss_in/iss_out): " + std::string(text));
  }
  text = trim(text);
  if (text.empty() || text.front() != '(' || text.back() != ')') {
    throw RuntimeError("line " + std::to_string(line_no) + ": malformed pragma arguments");
  }
  text = text.substr(1, text.size() - 2);
  auto parts = util::split(text, ',');
  if (parts.size() != 2) {
    throw RuntimeError("line " + std::to_string(line_no) +
                       ": pragma needs (\"port\", variable)");
  }
  std::string_view port = trim(parts[0]);
  if (port.size() < 2 || port.front() != '"' || port.back() != '"') {
    throw RuntimeError("line " + std::to_string(line_no) + ": port name must be quoted");
  }
  binding.port = std::string(port.substr(1, port.size() - 2));
  binding.variable = std::string(trim(parts[1]));
  if (binding.port.empty() || binding.variable.empty()) {
    throw RuntimeError("line " + std::to_string(line_no) + ": empty port or variable");
  }
  return binding;
}

}  // namespace

FilteredSource filter_pragmas(std::string_view source) {
  // Split into lines, keeping order.
  std::vector<std::string> lines;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    std::size_t eol = source.find('\n', pos);
    if (eol == std::string_view::npos) {
      if (pos < source.size()) lines.emplace_back(source.substr(pos));
      break;
    }
    lines.emplace_back(source.substr(pos, eol - pos));
    pos = eol + 1;
  }

  FilteredSource out;
  int label_counter = 0;

  // Pass A: parse pragmas and compute which source line each synthetic
  // breakpoint label precedes.
  std::vector<std::vector<std::string>> labels_at(lines.size() + 1);
  std::vector<bool> is_pragma(lines.size(), false);
  auto next_code_line = [&](std::size_t from) -> std::size_t {
    std::size_t j = from;
    while (j < lines.size() && !is_code_line(lines[j])) ++j;
    return j;
  };

  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::string_view line = trim(lines[i]);
    if (!starts_with(line, "#pragma")) continue;
    is_pragma[i] = true;
    PragmaBinding binding = parse_pragma(line.substr(7), static_cast<int>(i) + 1);
    binding.label = "__bp_" + std::to_string(label_counter++);

    std::size_t stmt = next_code_line(i + 1);
    if (stmt >= lines.size()) {
      throw RuntimeError("line " + std::to_string(binding.pragma_line) +
                         ": pragma has no following statement");
    }
    std::size_t bp_line = stmt;
    if (binding.direction == BindDirection::IssToSc) {
      // Breakpoint on the line immediately following the annotated statement.
      bp_line = next_code_line(stmt + 1);
      if (bp_line >= lines.size()) {
        throw RuntimeError("line " + std::to_string(binding.pragma_line) +
                           ": iss_in pragma needs a statement after the annotated one");
      }
    }
    binding.statement_line = static_cast<int>(stmt) + 1;
    binding.breakpoint_line = static_cast<int>(bp_line) + 1;
    labels_at[bp_line].push_back(binding.label);
    out.bindings.push_back(std::move(binding));
  }

  // Pass B: emit, dropping pragma lines and injecting labels.
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (const std::string& label : labels_at[i]) {
      out.source += label;
      out.source += ":\n";
    }
    if (is_pragma[i]) continue;
    out.source += lines[i];
    out.source += '\n';
  }
  return out;
}

std::vector<BreakpointBinding> resolve_bindings(const std::vector<PragmaBinding>& bindings,
                                                const iss::Program& program) {
  std::vector<BreakpointBinding> resolved;
  resolved.reserve(bindings.size());
  for (const PragmaBinding& b : bindings) {
    BreakpointBinding r;
    r.direction = b.direction;
    r.port = b.port;
    r.variable = b.variable;
    r.breakpoint_addr = program.symbol(b.label);
    r.variable_addr = program.symbol(b.variable);
    resolved.push_back(std::move(r));
  }
  return resolved;
}

}  // namespace nisc::cosim
