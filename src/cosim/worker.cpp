#include "cosim/worker.hpp"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <deque>
#include <exception>
#include <optional>
#include <thread>

#include "cosim/bytes.hpp"
#include "cosim/checkpoint.hpp"
#include "iss/assembler.hpp"
#include "iss/cpu.hpp"
#include "iss/program.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace nisc::cosim {

using util::RuntimeError;

const char* worker_op_name(WorkerOp op) noexcept {
  switch (op) {
    case WorkerOp::Start: return "Start";
    case WorkerOp::Resume: return "Resume";
    case WorkerOp::WriteAck: return "WriteAck";
    case WorkerOp::ReadReply: return "ReadReply";
    case WorkerOp::Irq: return "Irq";
    case WorkerOp::Hello: return "Hello";
    case WorkerOp::Ckpt: return "Ckpt";
    case WorkerOp::DevWrite: return "DevWrite";
    case WorkerOp::DevRead: return "DevRead";
    case WorkerOp::Done: return "Done";
  }
  return "?";
}

std::vector<std::uint8_t> encode_worker_config(const WorkerConfig& config) {
  ByteWriter w;
  w.blob({reinterpret_cast<const std::uint8_t*>(config.guest_source.data()),
          config.guest_source.size()});
  w.u64(config.mem_size);
  w.u64(config.ckpt_every);
  w.u8(static_cast<std::uint8_t>(config.fault.kind));
  w.u64(config.fault.at_instret);
  return w.take();
}

WorkerConfig decode_worker_config(std::span<const std::uint8_t> payload) {
  ByteReader r(payload, "worker config");
  WorkerConfig config;
  const std::vector<std::uint8_t> source = r.blob();
  config.guest_source.assign(reinterpret_cast<const char*>(source.data()), source.size());
  config.mem_size = r.u64();
  config.ckpt_every = r.u64();
  util::require(config.ckpt_every > 0, "worker config: ckpt_every must be positive");
  config.fault.kind = static_cast<FaultKind>(r.u8());
  config.fault.at_instret = r.u64();
  return config;
}

void send_frame(ipc::Channel& channel, const WorkerFrame& frame) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(1 + 8 + frame.payload.size()));
  w.u8(static_cast<std::uint8_t>(frame.op));
  w.u64(frame.seq);
  w.bytes(frame.payload);
  channel.send(w.data());
}

WorkerFrame recv_frame(ipc::Channel& channel) {
  std::uint8_t head[4];
  channel.recv_exact(head);
  const std::uint32_t body_len = static_cast<std::uint32_t>(head[0]) | (head[1] << 8) |
                                 (head[2] << 16) | (static_cast<std::uint32_t>(head[3]) << 24);
  if (body_len < 1 + 8 || body_len > kMaxWorkerFrame) {
    throw RuntimeError("worker frame: implausible body length " + std::to_string(body_len) +
                       " (stream corrupt?)");
  }
  std::vector<std::uint8_t> body(body_len);
  channel.recv_exact(body);
  ByteReader r(body, "worker frame body");
  WorkerFrame frame;
  frame.op = static_cast<WorkerOp>(r.u8());
  frame.seq = r.u64();
  frame.payload = r.bytes(r.remaining());
  return frame;
}

// ---------------------------------------------------------------------------
// Worker main loop

namespace {

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

/// The guest-facing side of one supervised session.
class WorkerSession {
 public:
  WorkerSession(ipc::Channel& data, ipc::Channel& irq, WorkerConfig config)
      : data_(data), irq_(irq), config_(std::move(config)), cpu_(config_.mem_size) {
    const iss::Program program = iss::assemble(config_.guest_source);
    program.load_into(cpu_.mem());
    cpu_.set_pc(program.entry);
    install_hooks();
  }

  void restore(const Checkpoint& checkpoint) {
    util::require(checkpoint.iss.has_value(), "resume checkpoint lacks an ISS section");
    const std::uint64_t t0 = now_us();
    checkpoint.iss->apply(cpu_);
    if (checkpoint.worker) {
      irqs_delivered_ = checkpoint.worker->irqs_delivered;
      pending_irqs_.assign(checkpoint.worker->pending_irqs.begin(),
                           checkpoint.worker->pending_irqs.end());
    }
    for (const ChannelSnapshot& chan : checkpoint.channels) {
      if (chan.label == "worker-data") {
        tx_seq_ = chan.tx_seq;
        replies_rx_ = chan.rx_seq;
        util::require(chan.inflight.empty(),
                      "resume checkpoint violates the frame-boundary invariant");
      }
    }
    static obs::Histogram& h_restore = obs::histogram("ckpt.restore_us", obs::default_us_bounds());
    h_restore.observe(now_us() - t0);
    resumed_ = true;
  }

  /// Runs the guest to completion, emitting checkpoints every
  /// config.ckpt_every retired instructions.
  void run() {
    obs::instant(resumed_ ? "worker.resume" : "worker.start", "worker", "instret",
                 cpu_.instret());
    for (;;) {
      const std::uint64_t next_ckpt =
          (cpu_.instret() / config_.ckpt_every + 1) * config_.ckpt_every;
      const iss::Halt halt = cpu_.run(next_ckpt - cpu_.instret());
      if (halt == iss::Halt::Quantum) {
        send_checkpoint(WorkerOp::Ckpt, iss::Halt::None);
        continue;
      }
      send_checkpoint(WorkerOp::Done, halt);
      return;
    }
  }

 private:
  void install_hooks() {
    cpu_.set_ecall_handler([this](iss::Cpu& cpu) { return on_ecall(cpu); });
    if (config_.fault.kind != FaultKind::None) {
      cpu_.set_trace_hook([this](std::uint32_t, std::uint32_t) {
        if (fault_armed_ && cpu_.instret() == config_.fault.at_instret) trigger_fault();
      });
    }
  }

  iss::Cpu::EcallResult on_ecall(iss::Cpu& cpu) {
    switch (cpu.reg(17)) {  // a7
      case kEcallDevWrite:
        dev_write(cpu.reg(10), cpu.reg(11));
        return iss::Cpu::EcallResult::Handled;
      case kEcallDevRead:
        cpu.set_reg(10, dev_read(cpu.reg(10)));
        return iss::Cpu::EcallResult::Handled;
      case kEcallIrqPop: {
        std::uint32_t line = ~0u;
        if (!pending_irqs_.empty()) {
          line = pending_irqs_.front();
          pending_irqs_.pop_front();
        }
        cpu.set_reg(10, line);
        return iss::Cpu::EcallResult::Handled;
      }
      default:
        return iss::Cpu::EcallResult::Halt;  // kEcallExit and unknown selectors
    }
  }

  void dev_write(std::uint32_t addr, std::uint32_t value) {
    ByteWriter w;
    w.u32(addr);
    w.u32(value);
    send_frame(data_, WorkerFrame{WorkerOp::DevWrite, ++tx_seq_, w.take()});
    const WorkerFrame ack = expect_reply(WorkerOp::WriteAck);
    ByteReader r(ack.payload, "WriteAck payload");
    drain_irqs(r.u64());
  }

  std::uint32_t dev_read(std::uint32_t addr) {
    ByteWriter w;
    w.u32(addr);
    send_frame(data_, WorkerFrame{WorkerOp::DevRead, ++tx_seq_, w.take()});
    const WorkerFrame reply = expect_reply(WorkerOp::ReadReply);
    ByteReader r(reply.payload, "ReadReply payload");
    const std::uint32_t value = r.u32();
    drain_irqs(r.u64());
    return value;
  }

  WorkerFrame expect_reply(WorkerOp op) {
    const WorkerFrame frame = recv_frame(data_);
    if (frame.op != op || frame.seq != tx_seq_) {
      throw RuntimeError(std::string("worker: expected ") + worker_op_name(op) + " seq " +
                         std::to_string(tx_seq_) + ", got " + worker_op_name(frame.op) + " seq " +
                         std::to_string(frame.seq));
    }
    ++replies_rx_;
    return frame;
  }

  /// Consumes irq frames until the delivered count reaches `target` (the
  /// high-water mark the last ack reported). Interrupt delivery thereby
  /// happens at deterministic points in the guest instruction stream.
  void drain_irqs(std::uint64_t target) {
    while (irqs_delivered_ < target) {
      const WorkerFrame frame = recv_frame(irq_);
      if (frame.op != WorkerOp::Irq) {
        throw RuntimeError(std::string("worker: unexpected ") + worker_op_name(frame.op) +
                           " on the irq socket");
      }
      if (frame.seq <= irqs_delivered_) continue;  // resend overlap after resume
      if (frame.seq != irqs_delivered_ + 1) {
        throw RuntimeError("worker: irq gap (have " + std::to_string(irqs_delivered_) +
                           ", got seq " + std::to_string(frame.seq) + ")");
      }
      ByteReader r(frame.payload, "Irq payload");
      irqs_delivered_ = frame.seq;
      pending_irqs_.push_back(r.u32());
    }
  }

  void send_checkpoint(WorkerOp op, iss::Halt halt) {
    const std::uint64_t t0 = now_us();
    // The checkpoint frame consumes a sequence number *before* the snapshot
    // is taken, so the stored tx_seq covers this very frame: a resumed
    // worker then re-numbers its replayed frames exactly as the original
    // run did, which is what makes the supervisor's dedup line up.
    const std::uint64_t seq = ++tx_seq_;
    Checkpoint checkpoint;
    checkpoint.iss = IssSnapshot::capture(cpu_);
    WorkerSnapshot worker;
    worker.irqs_delivered = irqs_delivered_;
    worker.pending_irqs.assign(pending_irqs_.begin(), pending_irqs_.end());
    checkpoint.worker = worker;
    ChannelSnapshot chan;
    chan.label = "worker-data";
    chan.tx_seq = tx_seq_;
    chan.rx_seq = replies_rx_;
    checkpoint.channels.push_back(std::move(chan));
    ByteWriter w;
    if (op == WorkerOp::Done) w.u8(static_cast<std::uint8_t>(halt));
    w.bytes(encode_checkpoint(checkpoint));
    static obs::Histogram& h_save = obs::histogram("ckpt.save_us", obs::default_us_bounds());
    h_save.observe(now_us() - t0);
    send_frame(data_, WorkerFrame{op, seq, w.take()});
  }

  void trigger_fault() {
    fault_armed_ = false;
    obs::instant("worker.fault", "worker", "instret", cpu_.instret());
    switch (config_.fault.kind) {
      case FaultKind::CrashAt:
        ::raise(SIGKILL);  // dies here; never returns
        return;
      case FaultKind::HangAt:
        for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
      case FaultKind::GarbageAt: {
        const std::uint8_t junk[16] = {0xEE, 0xEE, 0xEE, 0xEE, 0xEE, 0xEE, 0xEE, 0xEE,
                                       0xEE, 0xEE, 0xEE, 0xEE, 0xEE, 0xEE, 0xEE, 0xEE};
        data_.send(junk);
        return;  // keeps running; the supervisor will kill it
      }
      case FaultKind::None: return;
    }
  }

  ipc::Channel& data_;
  ipc::Channel& irq_;
  WorkerConfig config_;
  iss::Cpu cpu_;
  std::uint64_t tx_seq_ = 0;
  std::uint64_t replies_rx_ = 0;
  std::uint64_t irqs_delivered_ = 0;
  std::deque<std::uint32_t> pending_irqs_;
  bool fault_armed_ = true;
  bool resumed_ = false;
};

}  // namespace

int run_worker(ipc::Channel data, ipc::Channel irq) {
  try {
    // Bounded I/O so an orphaned worker (supervisor killed) exits instead
    // of lingering.
    data.set_io_timeout(30000);
    irq.set_io_timeout(30000);
    ByteWriter hello;
    hello.u32(kWorkerHelloMagic);
    send_frame(data, WorkerFrame{WorkerOp::Hello, 0, hello.take()});

    const WorkerFrame init = recv_frame(data);
    WorkerConfig config;
    std::optional<Checkpoint> restore;
    if (init.op == WorkerOp::Start) {
      config = decode_worker_config(init.payload);
    } else if (init.op == WorkerOp::Resume) {
      ByteReader r(init.payload, "Resume payload");
      config = decode_worker_config(r.blob());
      restore = decode_checkpoint(r.bytes(r.remaining()));
    } else {
      throw RuntimeError(std::string("worker: expected Start/Resume, got ") +
                         worker_op_name(init.op));
    }

    WorkerSession session(data, irq, std::move(config));
    if (restore) session.restore(*restore);
    session.run();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cosim_issworker: %s\n", e.what());
    return 1;
  }
}

}  // namespace nisc::cosim
