#include "cosim/worker.hpp"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <deque>
#include <exception>
#include <memory>
#include <optional>
#include <thread>

#include "cosim/bytes.hpp"
#include "cosim/checkpoint.hpp"
#include "iss/assembler.hpp"
#include "iss/cpu.hpp"
#include "iss/program.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/error.hpp"

namespace nisc::cosim {

using util::RuntimeError;

const char* worker_op_name(WorkerOp op) noexcept {
  switch (op) {
    case WorkerOp::Start: return "Start";
    case WorkerOp::Resume: return "Resume";
    case WorkerOp::WriteAck: return "WriteAck";
    case WorkerOp::ReadReply: return "ReadReply";
    case WorkerOp::Irq: return "Irq";
    case WorkerOp::ClockSync: return "ClockSync";
    case WorkerOp::PullObs: return "PullObs";
    case WorkerOp::Hello: return "Hello";
    case WorkerOp::Ckpt: return "Ckpt";
    case WorkerOp::DevWrite: return "DevWrite";
    case WorkerOp::DevRead: return "DevRead";
    case WorkerOp::Done: return "Done";
    case WorkerOp::ClockSyncAck: return "ClockSyncAck";
    case WorkerOp::ObsReport: return "ObsReport";
  }
  return "?";
}

std::vector<std::uint8_t> encode_worker_config(const WorkerConfig& config) {
  ByteWriter w;
  w.blob({reinterpret_cast<const std::uint8_t*>(config.guest_source.data()),
          config.guest_source.size()});
  w.u64(config.mem_size);
  w.u64(config.ckpt_every);
  w.u8(static_cast<std::uint8_t>(config.fault.kind));
  w.u64(config.fault.at_instret);
  // Observability extension: tagged so pre-extension decoders (which stop
  // here) and post-extension decoders (which verify the magic) both work.
  w.u32(kWorkerConfigExtMagic);
  std::uint8_t flags = 0;
  if (config.trace) flags |= 1;
  if (config.obs_export) flags |= 2;
  w.u8(flags);
  w.u64(config.trace_buf);
  w.u32(config.clock_period_ps);
  w.u32(config.worker_index);
  w.str(config.session_label);
  return w.take();
}

WorkerConfig decode_worker_config(std::span<const std::uint8_t> payload) {
  ByteReader r(payload, "worker config");
  WorkerConfig config;
  const std::vector<std::uint8_t> source = r.blob();
  config.guest_source.assign(reinterpret_cast<const char*>(source.data()), source.size());
  config.mem_size = r.u64();
  config.ckpt_every = r.u64();
  util::require(config.ckpt_every > 0, "worker config: ckpt_every must be positive");
  config.fault.kind = static_cast<FaultKind>(r.u8());
  config.fault.at_instret = r.u64();
  if (r.remaining() >= 4 && r.u32() == kWorkerConfigExtMagic) {
    const std::uint8_t flags = r.u8();
    config.trace = (flags & 1) != 0;
    config.obs_export = (flags & 2) != 0;
    config.trace_buf = r.u64();
    config.clock_period_ps = r.u32();
    config.worker_index = r.u32();
    config.session_label = r.str();
    // Bytes after the extension belong to a future revision; ignore them.
  }
  return config;
}

std::size_t worker_op_fixed_payload(WorkerOp op) noexcept {
  switch (op) {
    case WorkerOp::DevWrite: return 8;   // u32 addr | u32 value
    case WorkerOp::DevRead: return 4;    // u32 addr
    case WorkerOp::WriteAck: return 8;   // u64 irq high-water
    case WorkerOp::ReadReply: return 12; // u32 value | u64 irq high-water
    case WorkerOp::Irq: return 4;        // u32 line
    default: return 0;
  }
}

void send_frame(ipc::Channel& channel, const WorkerFrame& frame) {
  const std::size_t fixed = worker_op_fixed_payload(frame.op);
  const bool trailer = frame.trace_id != 0 && fixed != 0 && frame.payload.size() == fixed;
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(1 + 8 + frame.payload.size() + (trailer ? 12 : 0)));
  w.u8(static_cast<std::uint8_t>(frame.op));
  w.u64(frame.seq);
  w.bytes(frame.payload);
  if (trailer) {
    w.u64(frame.trace_id);
    w.u32(kFrameTraceMagic);
  }
  channel.send(w.data());
}

WorkerFrame recv_frame(ipc::Channel& channel) {
  std::uint8_t head[4];
  channel.recv_exact(head);
  const std::uint32_t body_len = static_cast<std::uint32_t>(head[0]) | (head[1] << 8) |
                                 (head[2] << 16) | (static_cast<std::uint32_t>(head[3]) << 24);
  if (body_len < 1 + 8 || body_len > kMaxWorkerFrame) {
    throw RuntimeError("worker frame: implausible body length " + std::to_string(body_len) +
                       " (stream corrupt?)");
  }
  std::vector<std::uint8_t> body(body_len);
  channel.recv_exact(body);
  ByteReader r(body, "worker frame body");
  WorkerFrame frame;
  frame.op = static_cast<WorkerOp>(r.u8());
  frame.seq = r.u64();
  frame.payload = r.bytes(r.remaining());
  // Strip the optional correlation trailer: only fixed-payload ops carry it,
  // and only when the length and closing magic both line up (anything else
  // is a plain payload from an older peer).
  const std::size_t fixed = worker_op_fixed_payload(frame.op);
  if (fixed != 0 && frame.payload.size() == fixed + 12) {
    const std::uint8_t* tail = frame.payload.data() + fixed;
    const std::uint32_t magic = static_cast<std::uint32_t>(tail[8]) | (tail[9] << 8) |
                                (tail[10] << 16) | (static_cast<std::uint32_t>(tail[11]) << 24);
    if (magic == kFrameTraceMagic) {
      std::uint64_t id = 0;
      for (int i = 7; i >= 0; --i) id = (id << 8) | tail[i];
      frame.trace_id = id;
      frame.payload.resize(fixed);
    }
  }
  return frame;
}

std::uint64_t peek_frame_trace_id(ipc::CaptureDir dir,
                                  std::span<const std::uint8_t> bytes) noexcept {
  if (dir != ipc::CaptureDir::Tx || bytes.size() < 4 + 1 + 8 + 12) return 0;
  const std::uint32_t body_len = static_cast<std::uint32_t>(bytes[0]) | (bytes[1] << 8) |
                                 (bytes[2] << 16) | (static_cast<std::uint32_t>(bytes[3]) << 24);
  if (bytes.size() != 4u + body_len) return 0;  // not a single whole frame
  const std::size_t fixed = worker_op_fixed_payload(static_cast<WorkerOp>(bytes[4]));
  if (fixed == 0 || body_len != 1 + 8 + fixed + 12) return 0;
  const std::uint8_t* tail = bytes.data() + 4 + 1 + 8 + fixed;
  const std::uint32_t magic = static_cast<std::uint32_t>(tail[8]) | (tail[9] << 8) |
                              (tail[10] << 16) | (static_cast<std::uint32_t>(tail[11]) << 24);
  if (magic != kFrameTraceMagic) return 0;
  std::uint64_t id = 0;
  for (int i = 7; i >= 0; --i) id = (id << 8) | tail[i];
  return id;
}

std::vector<std::uint8_t> encode_obs_report(const WorkerObsReport& report) {
  ByteWriter w;
  w.u64(report.worker_now_ns);
  w.blob({reinterpret_cast<const std::uint8_t*>(report.metrics_json.data()),
          report.metrics_json.size()});
  w.bytes(obs::encode_trace_snapshot(report.trace));
  return w.take();
}

WorkerObsReport decode_obs_report(std::span<const std::uint8_t> payload) {
  ByteReader r(payload, "obs report");
  WorkerObsReport report;
  report.worker_now_ns = r.u64();
  const std::vector<std::uint8_t> json = r.blob();
  report.metrics_json.assign(reinterpret_cast<const char*>(json.data()), json.size());
  report.trace = obs::decode_trace_snapshot(r.bytes(r.remaining()));
  return report;
}

// ---------------------------------------------------------------------------
// Worker main loop

namespace {

std::uint64_t now_us() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::microseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                        std::chrono::steady_clock::now().time_since_epoch())
                                        .count());
}

void send_obs_report(ipc::Channel& data) {
  WorkerObsReport report;
  report.worker_now_ns = now_ns();
  report.metrics_json = obs::MetricsRegistry::instance().render_json();
  report.trace = obs::take_trace_snapshot();
  send_frame(data, WorkerFrame{WorkerOp::ObsReport, 0, 0, encode_obs_report(report)});
}

void send_clock_sync_ack(ipc::Channel& data) {
  ByteWriter w;
  w.u64(now_ns());
  send_frame(data, WorkerFrame{WorkerOp::ClockSyncAck, 0, 0, w.take()});
}

/// The guest-facing side of one supervised session.
class WorkerSession {
 public:
  WorkerSession(ipc::Channel& data, ipc::Channel& irq, WorkerConfig config)
      : data_(data), irq_(irq), config_(std::move(config)), cpu_(config_.mem_size) {
    const iss::Program program = iss::assemble(config_.guest_source);
    program.load_into(cpu_.mem());
    cpu_.set_pc(program.entry);
    install_hooks();
  }

  void restore(const Checkpoint& checkpoint) {
    util::require(checkpoint.iss.has_value(), "resume checkpoint lacks an ISS section");
    const std::uint64_t t0 = now_us();
    checkpoint.iss->apply(cpu_);
    if (checkpoint.worker) {
      irqs_delivered_ = checkpoint.worker->irqs_delivered;
      pending_irqs_.assign(checkpoint.worker->pending_irqs.begin(),
                           checkpoint.worker->pending_irqs.end());
    }
    for (const ChannelSnapshot& chan : checkpoint.channels) {
      if (chan.label == "worker-data") {
        tx_seq_ = chan.tx_seq;
        replies_rx_ = chan.rx_seq;
        util::require(chan.inflight.empty(),
                      "resume checkpoint violates the frame-boundary invariant");
      }
    }
    static obs::Histogram& h_restore = obs::histogram("ckpt.restore_us", obs::default_us_bounds());
    h_restore.observe(now_us() - t0);
    resumed_ = true;
  }

  /// Runs the guest to completion, emitting checkpoints every
  /// config.ckpt_every retired instructions.
  void run() {
    update_sim_time();
    obs::instant(resumed_ ? "worker.resume" : "worker.start", "worker", "instret",
                 cpu_.instret());
    for (;;) {
      const std::uint64_t next_ckpt =
          (cpu_.instret() / config_.ckpt_every + 1) * config_.ckpt_every;
      const iss::Halt halt = cpu_.run(next_ckpt - cpu_.instret());
      update_sim_time();
      if (halt == iss::Halt::Quantum) {
        send_checkpoint(WorkerOp::Ckpt, iss::Halt::None);
        poll_sideband();
        continue;
      }
      if (config_.obs_export) send_obs_report(data_);
      send_checkpoint(WorkerOp::Done, halt);
      return;
    }
  }

 private:
  void install_hooks() {
    cpu_.set_ecall_handler([this](iss::Cpu& cpu) { return on_ecall(cpu); });
    if (config_.fault.kind != FaultKind::None) {
      cpu_.set_trace_hook([this](std::uint32_t, std::uint32_t) {
        if (fault_armed_ && cpu_.instret() == config_.fault.at_instret) trigger_fault();
      });
    }
  }

  /// Publishes guest time (cycles x clock period) for this thread's trace
  /// events, so worker spans carry sim_ps like kernel-side spans do.
  void update_sim_time() noexcept {
    obs::set_thread_sim_time_ps(cpu_.cycles() * config_.clock_period_ps);
  }

  iss::Cpu::EcallResult on_ecall(iss::Cpu& cpu) {
    update_sim_time();
    switch (cpu.reg(17)) {  // a7
      case kEcallDevWrite:
        dev_write(cpu.reg(10), cpu.reg(11));
        return iss::Cpu::EcallResult::Handled;
      case kEcallDevRead:
        cpu.set_reg(10, dev_read(cpu.reg(10)));
        return iss::Cpu::EcallResult::Handled;
      case kEcallIrqPop: {
        std::uint32_t line = ~0u;
        if (!pending_irqs_.empty()) {
          line = pending_irqs_.front();
          pending_irqs_.pop_front();
        }
        cpu.set_reg(10, line);
        return iss::Cpu::EcallResult::Handled;
      }
      default:
        return iss::Cpu::EcallResult::Halt;  // kEcallExit and unknown selectors
    }
  }

  /// Flow id stamped on the frame carrying `seq`: the worker index (1-based
  /// so ids are nonzero) in the top 16 bits keeps ids unique across a
  /// many-worker merge. 0 (= no trailer) while tracing is off.
  std::uint64_t flow_id_for(std::uint64_t seq) const noexcept {
    if (!obs::tracing_enabled()) return 0;
    return (static_cast<std::uint64_t>(config_.worker_index + 1) << 48) | seq;
  }

  void dev_write(std::uint32_t addr, std::uint32_t value) {
    obs::ScopedSpan span("worker.ecall.dev_write", "worker", "addr", addr);
    ByteWriter w;
    w.u32(addr);
    w.u32(value);
    const std::uint64_t seq = ++tx_seq_;
    const std::uint64_t flow = flow_id_for(seq);
    obs::flow_begin("dev_access", "flow", flow);
    send_frame(data_, WorkerFrame{WorkerOp::DevWrite, seq, flow, w.take()});
    const WorkerFrame ack = expect_reply(WorkerOp::WriteAck);
    ByteReader r(ack.payload, "WriteAck payload");
    drain_irqs(r.u64());
  }

  std::uint32_t dev_read(std::uint32_t addr) {
    obs::ScopedSpan span("worker.ecall.dev_read", "worker", "addr", addr);
    ByteWriter w;
    w.u32(addr);
    const std::uint64_t seq = ++tx_seq_;
    const std::uint64_t flow = flow_id_for(seq);
    obs::flow_begin("dev_access", "flow", flow);
    send_frame(data_, WorkerFrame{WorkerOp::DevRead, seq, flow, w.take()});
    const WorkerFrame reply = expect_reply(WorkerOp::ReadReply);
    ByteReader r(reply.payload, "ReadReply payload");
    const std::uint32_t value = r.u32();
    drain_irqs(r.u64());
    return value;
  }

  /// Consumes an observability side-band frame (seq 0, never logged);
  /// returns false for anything else.
  bool handle_sideband(const WorkerFrame& frame) {
    switch (frame.op) {
      case WorkerOp::PullObs:
        send_obs_report(data_);
        return true;
      case WorkerOp::ClockSync:
        send_clock_sync_ack(data_);
        return true;
      default:
        return false;
    }
  }

  /// Drains side-band requests parked on the data socket at a checkpoint
  /// boundary (no request of ours is outstanding, so anything readable here
  /// must be side-band).
  void poll_sideband() {
    if (!config_.obs_export) return;
    while (data_.readable(0)) {
      const WorkerFrame frame = recv_frame(data_);
      if (!handle_sideband(frame)) {
        throw RuntimeError(std::string("worker: unexpected ") + worker_op_name(frame.op) +
                           " at a checkpoint boundary");
      }
    }
  }

  WorkerFrame expect_reply(WorkerOp op) {
    for (;;) {
      const WorkerFrame frame = recv_frame(data_);
      if (handle_sideband(frame)) continue;
      if (frame.op != op || frame.seq != tx_seq_) {
        throw RuntimeError(std::string("worker: expected ") + worker_op_name(op) + " seq " +
                           std::to_string(tx_seq_) + ", got " + worker_op_name(frame.op) +
                           " seq " + std::to_string(frame.seq));
      }
      ++replies_rx_;
      return frame;
    }
  }

  /// Consumes irq frames until the delivered count reaches `target` (the
  /// high-water mark the last ack reported). Interrupt delivery thereby
  /// happens at deterministic points in the guest instruction stream.
  void drain_irqs(std::uint64_t target) {
    while (irqs_delivered_ < target) {
      const WorkerFrame frame = recv_frame(irq_);
      if (frame.op != WorkerOp::Irq) {
        throw RuntimeError(std::string("worker: unexpected ") + worker_op_name(frame.op) +
                           " on the irq socket");
      }
      if (frame.seq <= irqs_delivered_) continue;  // resend overlap after resume
      if (frame.seq != irqs_delivered_ + 1) {
        throw RuntimeError("worker: irq gap (have " + std::to_string(irqs_delivered_) +
                           ", got seq " + std::to_string(frame.seq) + ")");
      }
      ByteReader r(frame.payload, "Irq payload");
      irqs_delivered_ = frame.seq;
      pending_irqs_.push_back(r.u32());
    }
  }

  void send_checkpoint(WorkerOp op, iss::Halt halt) {
    const std::uint64_t t0 = now_us();
    obs::ScopedSpan span("worker.checkpoint", "worker", "instret", cpu_.instret());
    // The checkpoint frame consumes a sequence number *before* the snapshot
    // is taken, so the stored tx_seq covers this very frame: a resumed
    // worker then re-numbers its replayed frames exactly as the original
    // run did, which is what makes the supervisor's dedup line up.
    const std::uint64_t seq = ++tx_seq_;
    Checkpoint checkpoint;
    checkpoint.iss = IssSnapshot::capture(cpu_);
    WorkerSnapshot worker;
    worker.irqs_delivered = irqs_delivered_;
    worker.pending_irqs.assign(pending_irqs_.begin(), pending_irqs_.end());
    checkpoint.worker = worker;
    ChannelSnapshot chan;
    chan.label = "worker-data";
    chan.tx_seq = tx_seq_;
    chan.rx_seq = replies_rx_;
    checkpoint.channels.push_back(std::move(chan));
    ByteWriter w;
    if (op == WorkerOp::Done) w.u8(static_cast<std::uint8_t>(halt));
    w.bytes(encode_checkpoint(checkpoint));
    static obs::Histogram& h_save = obs::histogram("ckpt.save_us", obs::default_us_bounds());
    h_save.observe(now_us() - t0);
    send_frame(data_, WorkerFrame{op, seq, 0, w.take()});
  }

  void trigger_fault() {
    fault_armed_ = false;
    obs::instant("worker.fault", "worker", "instret", cpu_.instret());
    switch (config_.fault.kind) {
      case FaultKind::CrashAt:
        ::raise(SIGKILL);  // dies here; never returns
        return;
      case FaultKind::HangAt:
        for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
      case FaultKind::GarbageAt: {
        const std::uint8_t junk[16] = {0xEE, 0xEE, 0xEE, 0xEE, 0xEE, 0xEE, 0xEE, 0xEE,
                                       0xEE, 0xEE, 0xEE, 0xEE, 0xEE, 0xEE, 0xEE, 0xEE};
        data_.send(junk);
        return;  // keeps running; the supervisor will kill it
      }
      case FaultKind::None: return;
    }
  }

  ipc::Channel& data_;
  ipc::Channel& irq_;
  WorkerConfig config_;
  iss::Cpu cpu_;
  std::uint64_t tx_seq_ = 0;
  std::uint64_t replies_rx_ = 0;
  std::uint64_t irqs_delivered_ = 0;
  std::deque<std::uint32_t> pending_irqs_;
  bool fault_armed_ = true;
  bool resumed_ = false;
};

}  // namespace

int run_worker(ipc::Channel data, ipc::Channel irq) {
  try {
    // Bounded I/O so an orphaned worker (supervisor killed) exits instead
    // of lingering.
    data.set_io_timeout(30000);
    irq.set_io_timeout(30000);
    ByteWriter hello;
    hello.u32(kWorkerHelloMagic);
    hello.u32(kWorkerFeatureObs);  // pre-feature supervisors ignore the tail
    send_frame(data, WorkerFrame{WorkerOp::Hello, 0, 0, hello.take()});

    const WorkerFrame init = recv_frame(data);
    WorkerConfig config;
    std::optional<Checkpoint> restore;
    if (init.op == WorkerOp::Start) {
      config = decode_worker_config(init.payload);
    } else if (init.op == WorkerOp::Resume) {
      ByteReader r(init.payload, "Resume payload");
      config = decode_worker_config(r.blob());
      restore = decode_checkpoint(r.bytes(r.remaining()));
    } else {
      throw RuntimeError(std::string("worker: expected Start/Resume, got ") +
                         worker_op_name(init.op));
    }

    if (config.trace) {
      obs::enable_tracing(config.trace_buf);
      // Wire-level counters + flow steps for every correlated frame we send.
      data.attach_observer(
          std::make_shared<ipc::ObsTap>("worker.data", peek_frame_trace_id, "dev_access", "flow"));
    }
    if (config.obs_export) {
      // Clock-offset handshake: reply with our steady clock so the
      // supervisor can rebase our ring timestamps onto its timeline.
      const WorkerFrame sync = recv_frame(data);
      if (sync.op != WorkerOp::ClockSync) {
        throw RuntimeError(std::string("worker: expected ClockSync, got ") +
                           worker_op_name(sync.op));
      }
      send_clock_sync_ack(data);
    }

    WorkerSession session(data, irq, std::move(config));
    if (restore) session.restore(*restore);
    session.run();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cosim_issworker: %s\n", e.what());
    return 1;
  }
}

}  // namespace nisc::cosim
