// GDB-Kernel co-simulation (paper §3): the wrapper embedded in the SystemC
// kernel.
//
// The SystemC simulation kernel is the master. At the beginning of every
// simulation cycle the modified scheduler (here: this kernel extension)
// checks — non-blocking, through the IPC pipe — whether GDB (the stub
// attached to the ISS) is stopped at a breakpoint (paper Fig. 3):
//
//   * breakpoint bound to an iss_in port  -> read the guest variable via
//     the remote protocol, store it in the port, wake its iss_processes;
//   * breakpoint bound to an iss_out port -> copy the port's value into the
//     guest variable before the stopped instruction executes;
//   * then resume the ISS with `continue`.
//
// Unlike the GDB-Wrapper baseline there is no per-cycle blocking round
// trip: while no data crosses the boundary the only cost is one
// non-blocking poll per cycle.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "cosim/error.hpp"
#include "cosim/pragma.hpp"
#include "cosim/time_budget.hpp"
#include "rsp/client.hpp"
#include "sysc/iss_port.hpp"
#include "sysc/kernel.hpp"

namespace nisc::cosim {

struct GdbKernelOptions {
  /// ISS instructions granted per microsecond of simulated time (the CPU's
  /// nominal speed relative to the hardware clock).
  std::uint64_t instructions_per_us = 10000;
  /// Resume the target automatically after elaboration.
  bool auto_continue = true;
  /// Gate iss_out injections on fresh hardware values: the guest blocks at
  /// its breakpoint until hardware wrote a not-yet-consumed value. Disable
  /// for status-register-style polling of the same value.
  bool inject_requires_fresh = true;
  /// Reverse throttle: simulated time stalls (briefly) while more than this
  /// many granted-but-unexecuted instructions are outstanding, so a
  /// host-scheduling hiccup on the ISS thread cannot masquerade as a slow
  /// simulated CPU. 0 disables.
  std::uint64_t max_budget_lead = 8192;
};

struct GdbKernelStats {
  std::uint64_t polls = 0;              ///< non-blocking stop checks
  std::uint64_t breakpoint_events = 0;  ///< serviced bindings
  std::uint64_t values_to_sc = 0;       ///< guest variable -> iss_in port
  std::uint64_t values_from_sc = 0;     ///< iss_out port -> guest variable
};

class GdbKernelExtension : public sysc::kernel_extension {
 public:
  /// `client` talks to the stub of the ISS; `budget` (may be null) is
  /// deposited as simulated time advances; `bindings` come from the pragma
  /// filter (resolve_bindings).
  GdbKernelExtension(rsp::GdbClient& client, TimeBudget* budget,
                     std::vector<BreakpointBinding> bindings, GdbKernelOptions options = {});

  void on_elaboration(sysc::sc_simcontext& ctx) override;
  void on_cycle_begin(sysc::sc_simcontext& ctx) override;
  void on_cycle_end(sysc::sc_simcontext& ctx) override;
  void on_time_advance(sysc::sc_simcontext& ctx, const sysc::sc_time& now) override;
  bool on_starvation(sysc::sc_simcontext& ctx) override;
  void on_run_end(sysc::sc_simcontext& ctx) override;

  /// True once the guest program hit its final ebreak (or faulted).
  bool target_finished() const noexcept { return finished_; }

  /// Set when the scheme died on its IPC boundary (reply deadline blown,
  /// peer gone): the simulation was stopped gracefully and this carries the
  /// wire post-mortem.
  const std::optional<CosimError>& error() const noexcept { return error_; }

  const GdbKernelStats& stats() const noexcept { return stats_; }

 private:
  /// Ends the run on a transport failure: latches a CosimError with the
  /// client channel's wire capture and stops the simulation.
  void fail(sysc::sc_simcontext& ctx, const std::string& what);
  /// Returns false when the stop must stay deferred (port still draining).
  bool service_stop(sysc::sc_simcontext& ctx, const rsp::StopReply& stop);

  /// True when delivering into `port` now cannot overwrite a value whose
  /// iss_process has not run yet (it runs two delta cycles after delivery).
  bool delivery_safe(sysc::sc_simcontext& ctx, sysc::iss_port_base* port) const;

  rsp::GdbClient& client_;
  TimeBudget* budget_;
  std::vector<BreakpointBinding> bindings_;
  std::map<std::uint32_t, const BreakpointBinding*> by_addr_;
  GdbKernelOptions options_;
  bool finished_ = false;
  std::optional<CosimError> error_;
  std::uint64_t last_time_ps_ = 0;
  std::uint64_t deposit_remainder_ = 0;
  /// A stop whose iss_in delivery must wait for the port to drain. The ISS
  /// stays halted meanwhile: natural backpressure.
  std::optional<rsp::StopReply> deferred_stop_;
  std::map<const sysc::iss_port_base*, std::uint64_t> last_delivery_delta_;
  GdbKernelStats stats_;
  /// stats_ values already pushed into the metrics registry (on_run_end
  /// publishes the delta, so the per-cycle poll path stays counter-free).
  GdbKernelStats published_;
};

}  // namespace nisc::cosim
