// GDB-Wrapper co-simulation: the state-of-the-art baseline of Benini et al.
// (IEEE Computer 2003, paper ref. [14]) that both proposed schemes improve
// upon.
//
// The wrapper is an ordinary SystemC module the hardware designer must
// instantiate explicitly. An sc_method sensitive to the clock drives the
// communication: ISS and SystemC evolve in *lock-step*, with every cycle's
// synchronization mediated by the host OS through a blocking IPC round trip
// over the GDB remote protocol — the bottleneck the paper's Table 1
// quantifies. Two lock-step granularities are provided:
//
//   * Quantum (default, the [14] model): one blocking round trip per clock
//     cycle runs the ISS for at most `instructions_per_cycle` instructions
//     (vendor packet qnisc.run), stopping early at breakpoints;
//   * SingleStep (ablation): one blocking `s` round trip per instruction.
//
// Variable<->port bindings are serviced whenever the ISS stops on a
// breakpoint line, with the same placement semantics as the GDB-Kernel
// scheme.
#pragma once

#include <map>
#include <optional>
#include <vector>

#include "cosim/error.hpp"
#include "cosim/pragma.hpp"
#include "rsp/client.hpp"
#include "sysc/iss_port.hpp"
#include "sysc/sc_module.hpp"
#include "sysc/sc_port.hpp"

namespace nisc::cosim {

enum class LockstepMode : std::uint8_t { Quantum, SingleStep };

struct GdbWrapperOptions {
  /// ISS instructions allowed per clock posedge (the lock-step ratio).
  std::uint64_t instructions_per_cycle = 8;
  LockstepMode mode = LockstepMode::Quantum;
};

struct GdbWrapperStats {
  std::uint64_t cycles = 0;             ///< wrapper activations
  std::uint64_t steps = 0;              ///< blocking RSP round trips (sync)
  std::uint64_t breakpoint_events = 0;
  std::uint64_t values_to_sc = 0;
  std::uint64_t values_from_sc = 0;
};

class GdbWrapperModule : public sysc::sc_module {
 public:
  GdbWrapperModule(std::string name, rsp::GdbClient& client,
                   std::vector<BreakpointBinding> bindings, GdbWrapperOptions options = {});

  /// Clock driving the lock-step (bind before elaboration).
  sysc::sc_in<bool> clk{"clk"};

  bool target_finished() const noexcept { return finished_; }

  /// Set when the lock-step transport died (reply deadline blown, peer
  /// gone): the simulation was stopped and this carries the wire
  /// post-mortem.
  const std::optional<CosimError>& error() const noexcept { return error_; }

  const GdbWrapperStats& stats() const noexcept { return stats_; }

  void on_elaboration() override;

 private:
  void cycle();
  void fail(const std::string& what);
  void cycle_quantum();
  void cycle_single_step();
  /// Returns false when the binding must wait (no fresh hardware value).
  bool service_breakpoint(const BreakpointBinding& binding);
  /// Handles one stop; returns true when the wrapper should end this cycle.
  bool handle_stop(std::uint32_t pc, int signal);

  rsp::GdbClient& client_;
  std::vector<BreakpointBinding> bindings_;
  std::map<std::uint32_t, const BreakpointBinding*> by_addr_;
  GdbWrapperOptions options_;
  const BreakpointBinding* pending_binding_ = nullptr;
  bool finished_ = false;
  std::optional<CosimError> error_;
  GdbWrapperStats stats_;
};

}  // namespace nisc::cosim
