// CosimError: structured failure record for a co-simulation scheme.
//
// When a scheme's IPC boundary dies (peer gone, corrupted stream the
// protocol could not recover, reply deadline blown), the extension ends the
// simulation gracefully and leaves one of these behind instead of crashing:
// what failed, on which scheme, plus a post-mortem of the last wire
// transfers — both human-readable and as a frame dump `cosim_lint --frames`
// can re-validate.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ipc/capture.hpp"

namespace nisc::cosim {

struct CosimError {
  std::string scheme;   ///< "gdb-wrapper", "gdb-kernel", "driver-kernel"
  std::string message;  ///< what went wrong, with the underlying error text
  /// Human rendering of the last wire transfers (never empty: a scheme with
  /// no capture attached says so explicitly).
  std::string post_mortem;
  /// The same transfers as concatenated Driver-Kernel frames, ready for
  /// `cosim_lint --frames` (empty without a capture).
  std::vector<std::uint8_t> capture_frames;

  std::string to_string() const {
    return "[" + scheme + "] " + message + "\n--- last wire transfers ---\n" + post_mortem;
  }
};

/// Builds a CosimError, folding in `capture`'s ring (may be null).
inline CosimError make_cosim_error(std::string scheme, std::string message,
                                   const std::shared_ptr<ipc::WireCapture>& capture) {
  CosimError error;
  error.scheme = std::move(scheme);
  error.message = std::move(message);
  if (capture != nullptr && !capture->empty()) {
    error.post_mortem = capture->render_text();
    error.capture_frames = capture->dump();
  } else {
    error.post_mortem = "(no wire transfers captured before the failure)\n";
  }
  return error;
}

}  // namespace nisc::cosim
