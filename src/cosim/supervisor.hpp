// Session supervisor: spawns the ISS as a real child process, watches it,
// and recovers it from the last crash-consistent checkpoint (DESIGN.md §12).
//
// The supervisor plays the SystemC side of the paper's Driver-Kernel scheme
// for a supervised session: it owns a device model backed by a
// sysc::sc_simcontext (applied device writes advance simulated time), the
// data socket, and the dedicated interrupt socket. The worker protocol is
// defined in cosim/worker.hpp.
//
// Recovery triggers, matching the failure taxonomy in ISSUE/DESIGN §12:
//  * death    — waitpid reports the child gone (SIGKILL, abort, exit);
//  * hang     — no frame within `hang_timeout_ms` while the child lives;
//  * protocol — an undecodable frame arrives (stream corruption).
// On any trigger the supervisor SIGKILLs what remains of the child, spawns
// a fresh worker over fresh socketpairs, replays the latest checkpoint
// (Resume frame + re-sent interrupts), and continues. Replayed frames are
// deduplicated by sequence number; replayed device reads are answered from
// a reply log (pruned at each checkpoint), so a recovered run's final
// checkpoint is bit-identical to an uninterrupted run's.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cosim/checkpoint.hpp"
#include "cosim/worker.hpp"
#include "ipc/channel.hpp"
#include "obs/trace.hpp"

namespace nisc::cosim {

struct SupervisorConfig {
  /// Path to the cosim_issworker binary.
  std::string worker_path;
  /// Guest program + cadence shipped to every spawn. Its trace/obs_export
  /// fields control the *worker's* rings and side-band; the fields below
  /// control the supervisor side (obs_export here also forces the worker
  /// flag on, since the side-band needs both ends).
  WorkerConfig worker;
  /// Fault injected into spawn N (fault_plan[N]); spawns beyond the end run
  /// clean. Lets a crash-matrix cell kill the worker several times.
  std::vector<WorkerFault> fault_plan;
  /// No frame for this long while the child lives => hang, recover.
  int hang_timeout_ms = 5000;
  /// Abort after this many recoveries (RuntimeError).
  int max_recoveries = 8;
  /// When non-empty, every checkpoint is also written to this file (the
  /// crash-matrix failure artifact and the cosim_ckpt handoff point).
  std::string checkpoint_path;

  // -- cross-process observability (DESIGN.md §10.5-10.6) -------------------
  /// Speak the observability side-band: clock-offset handshake per spawn,
  /// periodic ObsReport pulls, final pull before Done. Requires a worker
  /// that advertises kWorkerFeatureObs in its Hello (older workers degrade
  /// to the plain protocol).
  bool obs_export = false;
  /// Pull an ObsReport every N applied checkpoints (>= 1).
  int obs_pull_every = 1;
  /// Labels the session: merged-trace process names, postmortem directory
  /// names.
  std::string session_label = "cosim";
  /// When non-empty, the merged supervisor+worker Chrome trace is written
  /// here after a successful run.
  std::string trace_out;
  /// When non-empty, every recovery (death/hang/protocol error) writes a
  /// postmortem bundle into a fresh subdirectory of this path before the
  /// worker is respawned.
  std::string postmortem_dir;
  /// Optional hook rendering conformance findings from the wire-capture
  /// dump for the bundle's findings.txt (the analysis layer links *against*
  /// cosim, so the supervisor cannot call it directly; tools inject e.g.
  /// analysis::check_capture here).
  std::function<std::string(std::span<const std::uint8_t> capture_dump)> findings_hook;

  // -- live conformance taps (DESIGN.md §11) --------------------------------
  /// Attached to every spawn's data / irq socket (composed with the
  /// supervisor's own ObsTap when observability is on). Each recovery
  /// announces itself with an out-of-band "respawn" wire event *before* the
  /// old child is killed, so a live monitor (analysis::
  /// LiveConformanceMonitor) can reset its decoders at the epoch boundary.
  std::shared_ptr<ipc::WireObserver> data_observer;
  std::shared_ptr<ipc::WireObserver> irq_observer;

  /// Chaos knob for the NL413 negative control: skip the sequence-number
  /// dedup so recovery replays re-apply device effects. A supervised run
  /// with a kill then diverges from the uninterrupted control run — the
  /// real-system shadow of `cosim_lint --model=worker --env=crash
  /// --no-reply-log`.
  bool chaos_no_dedup = false;
};

struct SupervisorOutcome {
  /// Guest halt reason (iss::Halt) reported by the worker's Done frame.
  std::uint8_t guest_halt = 0;
  /// Times the worker was respawned.
  int recoveries = 0;
  /// Final checkpoint, augmented with the supervisor's kernel section and
  /// channel snapshot — the bit-comparison surface of the crash matrix.
  std::vector<std::uint8_t> final_checkpoint;
  std::uint64_t writes_applied = 0;
  std::uint64_t reads_served = 0;
  std::uint64_t irqs_sent = 0;

  // -- observability (populated when obs_export ran) ------------------------
  /// Worker steady-clock offset from the latest ClockSync handshake:
  /// supervisor_ns = worker_ns + clock_offset_ns.
  std::int64_t clock_offset_ns = 0;
  /// Last ObsReport the worker exported (trace rings + metrics JSON).
  obs::TraceSnapshot worker_trace;
  std::string worker_metrics_json;
  /// Postmortem bundles written, in order.
  std::vector<std::string> postmortem_paths;
};

/// Runs one supervised session to completion. Single-threaded and
/// synchronous; construct, call run() once, inspect the outcome.
class Supervisor {
 public:
  explicit Supervisor(SupervisorConfig config);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  SupervisorOutcome run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace nisc::cosim
