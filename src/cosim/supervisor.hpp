// Session supervisor: spawns the ISS as a real child process, watches it,
// and recovers it from the last crash-consistent checkpoint (DESIGN.md §12).
//
// The supervisor plays the SystemC side of the paper's Driver-Kernel scheme
// for a supervised session: it owns a device model backed by a
// sysc::sc_simcontext (applied device writes advance simulated time), the
// data socket, and the dedicated interrupt socket. The worker protocol is
// defined in cosim/worker.hpp.
//
// Recovery triggers, matching the failure taxonomy in ISSUE/DESIGN §12:
//  * death    — waitpid reports the child gone (SIGKILL, abort, exit);
//  * hang     — no frame within `hang_timeout_ms` while the child lives;
//  * protocol — an undecodable frame arrives (stream corruption).
// On any trigger the supervisor SIGKILLs what remains of the child, spawns
// a fresh worker over fresh socketpairs, replays the latest checkpoint
// (Resume frame + re-sent interrupts), and continues. Replayed frames are
// deduplicated by sequence number; replayed device reads are answered from
// a reply log (pruned at each checkpoint), so a recovered run's final
// checkpoint is bit-identical to an uninterrupted run's.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "cosim/checkpoint.hpp"
#include "cosim/worker.hpp"
#include "ipc/channel.hpp"

namespace nisc::cosim {

struct SupervisorConfig {
  /// Path to the cosim_issworker binary.
  std::string worker_path;
  /// Guest program + cadence shipped to every spawn.
  WorkerConfig worker;
  /// Fault injected into spawn N (fault_plan[N]); spawns beyond the end run
  /// clean. Lets a crash-matrix cell kill the worker several times.
  std::vector<WorkerFault> fault_plan;
  /// No frame for this long while the child lives => hang, recover.
  int hang_timeout_ms = 5000;
  /// Abort after this many recoveries (RuntimeError).
  int max_recoveries = 8;
  /// When non-empty, every checkpoint is also written to this file (the
  /// crash-matrix failure artifact and the cosim_ckpt handoff point).
  std::string checkpoint_path;
};

struct SupervisorOutcome {
  /// Guest halt reason (iss::Halt) reported by the worker's Done frame.
  std::uint8_t guest_halt = 0;
  /// Times the worker was respawned.
  int recoveries = 0;
  /// Final checkpoint, augmented with the supervisor's kernel section and
  /// channel snapshot — the bit-comparison surface of the crash matrix.
  std::vector<std::uint8_t> final_checkpoint;
  std::uint64_t writes_applied = 0;
  std::uint64_t reads_served = 0;
  std::uint64_t irqs_sent = 0;
};

/// Runs one supervised session to completion. Single-threaded and
/// synchronous; construct, call run() once, inspect the outcome.
class Supervisor {
 public:
  explicit Supervisor(SupervisorConfig config);
  ~Supervisor();

  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  SupervisorOutcome run();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace nisc::cosim
