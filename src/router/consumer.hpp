// Packet consumer (paper §5): a SystemC module attached to a router output
// port verifying the integrity of received packets against the host-side
// golden checksum.
#pragma once

#include "router/packet.hpp"
#include "sysc/sc_fifo.hpp"
#include "sysc/sc_module.hpp"

namespace nisc::router {

struct ConsumerStats {
  std::uint64_t received = 0;
  std::uint64_t checksum_ok = 0;
  std::uint64_t checksum_bad = 0;
};

class Consumer : public sysc::sc_module {
 public:
  Consumer(std::string name, sysc::sc_fifo<Packet>& fifo)
      : sc_module(std::move(name)), fifo_(fifo) {
    declare_thread("consume", &Consumer::consume_loop);
  }

  const ConsumerStats& stats() const noexcept { return stats_; }

  /// The most recently received packet (valid when received > 0).
  const Packet& last_packet() const noexcept { return last_; }

 private:
  void consume_loop() {
    for (;;) {
      Packet packet = fifo_.read();  // blocking
      last_ = packet;
      ++stats_.received;
      if (packet.checksum == packet.golden_checksum()) {
        ++stats_.checksum_ok;
      } else {
        ++stats_.checksum_bad;
      }
    }
  }

  sysc::sc_fifo<Packet>& fifo_;
  ConsumerStats stats_;
  Packet last_;
};

}  // namespace nisc::router
