// The static routing table embedded in the router (paper §5): each entry
// matches a destination address to an output port.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "util/error.hpp"

namespace nisc::router {

class RoutingTable {
 public:
  /// Routes destination address `dst` to `port`. Overwrites earlier entries.
  void add_route(std::uint8_t dst, int port) {
    util::require(port >= 0, "RoutingTable: negative port");
    table_[dst] = port;
  }

  /// Output port for `dst`; nullopt when unrouted (packet is dropped).
  std::optional<int> lookup(std::uint8_t dst) const noexcept {
    int port = table_[dst];
    if (port < 0) return std::nullopt;
    return port;
  }

  /// Number of routed destination addresses.
  std::size_t size() const noexcept {
    std::size_t n = 0;
    for (int p : table_) {
      if (p >= 0) ++n;
    }
    return n;
  }

  /// dst -> dst % num_ports over `address_space` destinations.
  static RoutingTable uniform(int num_ports, int address_space = 256) {
    util::require(num_ports > 0 && address_space >= 1 && address_space <= 256,
                  "RoutingTable::uniform: bad arguments");
    RoutingTable table;
    for (int dst = 0; dst < address_space; ++dst) {
      table.add_route(static_cast<std::uint8_t>(dst), dst % num_ports);
    }
    return table;
  }

 private:
  std::array<int, 256> table_ = [] {
    std::array<int, 256> t{};
    t.fill(-1);
    return t;
  }();
};

}  // namespace nisc::router
