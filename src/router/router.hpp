// The 4x4 packet router of the paper's case study (§5), an extension of the
// SystemC 2.0.1 "Multicast Helix Packet Switch" example.
//
// Packets entering the router are buffered in per-input FIFOs. Forwarding
// processes pop the next packet (round robin), offload the checksum
// computation to a CPU — through iss ports, under whichever co-simulation
// scheme is active — stamp the result, look up the destination in the
// static routing table and forward to the matching output FIFO.
//
// Multi-processor operation (the paper's architectural template, §3,
// assumes "several processors interacting with hardware blocks"): the
// router can drive `engines` independent CPUs, one forwarding process per
// engine, each with its own to_cpu/from_cpu port pair. Packets are load
// balanced across whichever CPU is free.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "router/packet.hpp"
#include "router/routing_table.hpp"
#include "sysc/iss_port.hpp"
#include "sysc/sc_fifo.hpp"
#include "sysc/sc_module.hpp"

namespace nisc::router {

/// How packet data crosses to the CPU.
enum class OffloadMode {
  WordStream,  ///< one 32-bit word at a time (GDB schemes: variables)
  BulkPacket,  ///< whole packet per transfer (Driver-Kernel: one message)
};

struct RouterStats {
  std::uint64_t accepted = 0;            ///< packets popped from input FIFOs
  std::uint64_t checksummed = 0;         ///< results received from the CPUs
  std::uint64_t forwarded = 0;           ///< pushed to an output FIFO
  std::uint64_t dropped_no_route = 0;    ///< destination not in the table
  std::uint64_t dropped_output_full = 0; ///< output FIFO overflow
  std::array<std::uint64_t, kNumPorts> per_output{};
  std::vector<std::uint64_t> per_engine; ///< packets checksummed per CPU
};

class Router : public sysc::sc_module {
 public:
  Router(std::string name, RoutingTable table, OffloadMode mode,
         std::size_t fifo_capacity = 8, int engines = 1);

  sysc::sc_fifo<Packet>& input(int port);
  sysc::sc_fifo<Packet>& output(int port);

  /// Producers notify this event after pushing into an input FIFO.
  sysc::sc_event& enqueue_event() noexcept { return enqueue_event_; }

  OffloadMode mode() const noexcept { return mode_; }
  int engines() const noexcept { return engines_; }
  const RouterStats& stats() const noexcept { return stats_; }

  /// iss port names the co-simulation bindings/messages must use. With a
  /// single engine the names are "<router>.to_cpu"/"<router>.from_cpu";
  /// with several, "<router>.to_cpu<k>"/"<router>.from_cpu<k>".
  std::string to_cpu_port_name(int engine = 0) const;
  std::string from_cpu_port_name(int engine = 0) const;

 private:
  void forward_loop(int engine);
  bool pop_next(Packet& out);
  std::uint32_t offload_checksum(int engine, const Packet& packet);

  RoutingTable table_;
  OffloadMode mode_;
  int engines_;
  std::array<std::unique_ptr<sysc::sc_fifo<Packet>>, kNumPorts> inputs_;
  std::array<std::unique_ptr<sysc::sc_fifo<Packet>>, kNumPorts> outputs_;
  sysc::sc_event enqueue_event_;

  // Per engine, exactly one of the to_cpu flavors exists (offload mode).
  std::vector<std::unique_ptr<sysc::iss_out<std::uint32_t>>> to_cpu_word_;
  std::vector<std::unique_ptr<sysc::iss_out<PacketWire>>> to_cpu_bulk_;
  std::vector<std::unique_ptr<sysc::iss_in<std::uint32_t>>> from_cpu_;

  int round_robin_ = 0;
  RouterStats stats_;
};

}  // namespace nisc::router
