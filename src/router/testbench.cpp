#include "router/testbench.hpp"

#include <algorithm>
#include <chrono>

namespace nisc::router {

const char* scheme_name(Scheme scheme) noexcept {
  switch (scheme) {
    case Scheme::GdbWrapper: return "GDB-Wrapper";
    case Scheme::GdbKernel: return "GDB-Kernel";
    case Scheme::DriverKernel: return "Driver-Kernel";
  }
  return "?";
}

Testbench::Testbench(TestbenchConfig config) : config_(config) {
  ctx_ = std::make_unique<sysc::sc_simcontext>();
  clock_ = &ctx_->create<sysc::sc_clock>("clk", config_.clock_period);

  const OffloadMode mode = config_.scheme == Scheme::DriverKernel ? OffloadMode::BulkPacket
                                                                  : OffloadMode::WordStream;
  util::require(config_.num_cpus >= 1, "Testbench: need at least one CPU");
  router_ = &ctx_->create<Router>("router",
                                  RoutingTable::uniform(kNumPorts, config_.address_space), mode,
                                  config_.fifo_capacity, config_.num_cpus);

  util::require(config_.num_producers >= 1 && config_.num_producers <= kNumPorts,
                "Testbench: 1..4 producers");
  for (int i = 0; i < config_.num_producers; ++i) {
    ProducerConfig pc;
    pc.port = i;
    pc.delay = config_.inter_packet_delay;
    pc.num_packets = config_.packets_per_producer;
    pc.seed = config_.seed + static_cast<std::uint64_t>(i) * 7919;
    pc.address_space = config_.address_space;
    producers_.push_back(&ctx_->create<Producer>("producer" + std::to_string(i),
                                                 router_->input(i), router_->enqueue_event(), pc));
  }
  for (int i = 0; i < kNumPorts; ++i) {
    consumers_.push_back(
        &ctx_->create<Consumer>("consumer" + std::to_string(i), router_->output(i)));
  }

  for (int cpu = 0; cpu < config_.num_cpus; ++cpu) {
    switch (config_.scheme) {
      case Scheme::GdbKernel: {
        cosim::GdbTargetConfig tc;
        tc.transport = config_.transport.value_or(ipc::Transport::Pipe);
        tc.fault_plan = config_.fault_plan;
        tc.reply_timeout_ms = config_.reply_timeout_ms;
        tc.io_timeout_ms = config_.io_timeout_ms;
        tc.watchdog = config_.watchdog;
        tc.wire_observer = config_.wire_observer;
        auto target = std::make_unique<cosim::GdbTarget>(
            word_stream_checksum_source(router_->to_cpu_port_name(cpu),
                                        router_->from_cpu_port_name(cpu)),
            tc);
        cosim::GdbKernelOptions options;
        options.instructions_per_us = config_.instructions_per_us;
        auto ext = std::make_unique<cosim::GdbKernelExtension>(
            target->client(), &target->budget(), target->bindings(), options);
        ctx_->register_extension(ext.get());
        target->start();
        gdb_targets_.push_back(std::move(target));
        gdb_exts_.push_back(std::move(ext));
        break;
      }
      case Scheme::GdbWrapper: {
        cosim::GdbTargetConfig tc;
        tc.transport = config_.transport.value_or(ipc::Transport::Pipe);
        tc.throttled = false;  // the wrapper's explicit lock-step paces the ISS
        tc.fault_plan = config_.fault_plan;
        tc.reply_timeout_ms = config_.reply_timeout_ms;
        tc.io_timeout_ms = config_.io_timeout_ms;
        tc.wire_observer = config_.wire_observer;
        auto target = std::make_unique<cosim::GdbTarget>(
            word_stream_checksum_source(router_->to_cpu_port_name(cpu),
                                        router_->from_cpu_port_name(cpu)),
            tc);
        cosim::GdbWrapperOptions options;
        options.instructions_per_cycle = std::max<std::uint64_t>(
            1, config_.instructions_per_us * config_.clock_period.ps() / 1000000);
        auto& wrapper = ctx_->create<cosim::GdbWrapperModule>(
            "wrapper" + std::to_string(cpu), target->client(), target->bindings(), options);
        wrapper.clk.bind(clock_->signal());
        wrappers_.push_back(&wrapper);
        target->start();
        gdb_targets_.push_back(std::move(target));
        break;
      }
      case Scheme::DriverKernel: {
        cosim::DriverTargetConfig dc;
        dc.transport = config_.transport.value_or(ipc::Transport::SocketPair);
        dc.rtos = config_.rtos;
        dc.fault_plan = config_.fault_plan;
        dc.io_timeout_ms = config_.io_timeout_ms;
        dc.pay_timeout_ms = config_.pay_timeout_ms;
        dc.watchdog = config_.watchdog;
        dc.wire_observer = config_.wire_observer;
        dc.irq_observer = config_.irq_observer;
        dc.write_port = router_->from_cpu_port_name(cpu);
        dc.read_port = router_->to_cpu_port_name(cpu);
        auto target = std::make_unique<cosim::DriverTarget>(bulk_checksum_source(), dc);
        cosim::DriverKernelOptions options;
        options.instructions_per_us = config_.instructions_per_us;
        options.owned_ports = {router_->to_cpu_port_name(cpu)};
        // Announce every pushed packet on the interrupt socket so the
        // DriverIrq delivery/acknowledge cycle is exercised (and can be
        // live-monitored) in every Driver-Kernel cell.
        options.data_irq = static_cast<int>(cpu);
        auto ext = std::make_unique<cosim::DriverKernelExtension>(
            target->take_data_endpoint(), target->take_interrupt_endpoint(),
            &target->budget(), options);
        ctx_->register_extension(ext.get());
        target->start();
        driver_targets_.push_back(std::move(target));
        driver_exts_.push_back(std::move(ext));
        break;
      }
    }
  }
}

Testbench::~Testbench() { shutdown(); }

void Testbench::shutdown() {
  if (shut_down_) return;
  shut_down_ = true;
  for (auto& target : gdb_targets_) target->shutdown();
  for (auto& target : driver_targets_) target->shutdown();
  for (auto& ext : gdb_exts_) ctx_->unregister_extension(ext.get());
  for (auto& ext : driver_exts_) ctx_->unregister_extension(ext.get());
}

void Testbench::run_for(sysc::sc_time duration) {
  util::require(!shut_down_, "Testbench: run after shutdown");
  auto start = std::chrono::steady_clock::now();
  ctx_->run(duration);
  wall_seconds_ += std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
}

void Testbench::run_until_drained(sysc::sc_time max_duration, sysc::sc_time window) {
  util::require(config_.packets_per_producer > 0,
                "run_until_drained needs bounded producers");
  const sysc::sc_time end = ctx_->time_stamp() + max_duration;
  while (ctx_->time_stamp() < end) {
    run_for(window);
    TestbenchReport r = report();
    bool producers_done = std::all_of(producers_.begin(), producers_.end(),
                                      [](const Producer* p) { return p->stats().done; });
    std::uint64_t settled =
        r.received + r.dropped_input + r.dropped_no_route + r.dropped_output;
    if (producers_done && settled == r.produced) return;
  }
}

std::optional<cosim::CosimError> Testbench::cosim_error() const {
  for (const auto& ext : gdb_exts_) {
    if (ext->error()) return ext->error();
  }
  for (const cosim::GdbWrapperModule* wrapper : wrappers_) {
    if (wrapper->error()) return wrapper->error();
  }
  for (const auto& ext : driver_exts_) {
    if (ext->error()) return ext->error();
  }
  return std::nullopt;
}

bool Testbench::degraded() const {
  for (const auto& ext : driver_exts_) {
    if (ext->quiesced()) return true;
  }
  for (const auto& target : driver_targets_) {
    if (target->throttle_lost() || target->driver().degraded()) return true;
  }
  return false;
}

std::uint64_t Testbench::faults_injected() const {
  std::uint64_t total = 0;
  for (const auto& target : gdb_targets_) {
    if (target->fault_state()) total += target->fault_state()->stats().total_injected();
  }
  for (const auto& target : driver_targets_) {
    if (target->fault_state()) total += target->fault_state()->stats().total_injected();
  }
  return total;
}

TestbenchReport Testbench::report() const {
  TestbenchReport r;
  for (const Producer* p : producers_) {
    r.produced += p->stats().produced;
    r.accepted += p->stats().accepted;
    r.dropped_input += p->stats().dropped_input;
  }
  const RouterStats& rs = router_->stats();
  r.forwarded = rs.forwarded;
  r.dropped_no_route = rs.dropped_no_route;
  r.dropped_output = rs.dropped_output_full;
  for (const Consumer* c : consumers_) {
    r.received += c->stats().received;
    r.checksum_ok += c->stats().checksum_ok;
    r.checksum_bad += c->stats().checksum_bad;
  }
  r.forwarded_pct = r.produced == 0 ? 0.0
                                    : 100.0 * static_cast<double>(r.received) /
                                          static_cast<double>(r.produced);
  r.wall_seconds = wall_seconds_;
  r.sim_time = ctx_->time_stamp();
  r.kernel_delta_cycles = ctx_->stats().delta_cycles;

  for (const auto& target : gdb_targets_) {
    r.rsp_transactions += target->client().stats().transactions;
  }
  for (const auto& ext : gdb_exts_) r.breakpoint_events += ext->stats().breakpoint_events;
  for (const cosim::GdbWrapperModule* wrapper : wrappers_) {
    r.breakpoint_events += wrapper->stats().breakpoint_events;
    r.lockstep_steps += wrapper->stats().steps;
  }
  for (const auto& ext : driver_exts_) {
    r.driver_messages += ext->stats().messages_in + ext->stats().messages_out;
  }
  return r;
}

}  // namespace nisc::router
