// The software side of the case study: checksum applications executed by
// the ISS (paper §5, "the checksum calculation is performed by an
// application executed by a CPU, as commonly done in embedded routers").
#pragma once

#include <string>

namespace nisc::router {

/// Bare-metal guest for the GDB-Wrapper / GDB-Kernel schemes: loops forever
/// reading kWireWords words through the `word_in` variable (bound to the
/// router's to_cpu iss_out port by a #pragma iss_out), accumulating the
/// 32-bit word sum, and publishing it through `csum_out` (bound to the
/// from_cpu iss_in port by a #pragma iss_in).
std::string word_stream_checksum_source(const std::string& to_cpu_port,
                                        const std::string& from_cpu_port);

/// RTOS guest for the Driver-Kernel scheme: loops forever reading a whole
/// packet (kWireWords * 4 bytes) from the SystemC device driver (blocking
/// SYS_DEV_READ), computing the word sum, and writing the 4-byte result
/// back with SYS_DEV_WRITE.
std::string bulk_checksum_source();

/// Host-side reference of what both guests compute (32-bit word sum).
/// Provided for documentation symmetry; equals Packet::golden_checksum().
std::string guest_programs_doc();

}  // namespace nisc::router
