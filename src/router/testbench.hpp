// Full case-study testbench: router + producers + consumers + the selected
// co-simulation scheme, ready to run. Powers the examples, the integration
// tests and the Table 1 / Figure 7 benchmarks.
#pragma once

#include <memory>
#include <vector>

#include "cosim/driver_kernel.hpp"
#include "cosim/gdb_kernel.hpp"
#include "cosim/gdb_wrapper.hpp"
#include "cosim/session.hpp"
#include "router/consumer.hpp"
#include "router/guest_programs.hpp"
#include "router/producer.hpp"
#include "router/router.hpp"
#include "sysc/sysc.hpp"

namespace nisc::router {

/// The three co-simulation schemes the paper compares.
enum class Scheme {
  GdbWrapper,   ///< baseline [14]: explicit wrapper module, lock-step
  GdbKernel,    ///< paper §3: wrapper embedded in the SystemC kernel
  DriverKernel, ///< paper §4: device driver in the OS on the ISS
};

const char* scheme_name(Scheme scheme) noexcept;

struct TestbenchConfig {
  Scheme scheme = Scheme::GdbKernel;
  sysc::sc_time clock_period = sysc::sc_time::from_ps(10000);  // 10 ns
  sysc::sc_time inter_packet_delay = sysc::sc_time::from_ps(2000000);  // 2 us
  std::uint64_t packets_per_producer = 10;  ///< 0 = unbounded
  int num_producers = kNumPorts;
  /// Number of checksum CPUs (the paper's multi-processor template): each
  /// gets its own ISS instance, port pair and co-simulation session.
  int num_cpus = 1;
  std::size_t fifo_capacity = 8;
  int address_space = 16;
  std::uint64_t seed = 42;
  /// Simulated CPU speed: ISS instructions per simulated microsecond.
  std::uint64_t instructions_per_us = 400000;
  /// RTOS cost model (Driver-Kernel only).
  rtos::RtosConfig rtos;
  /// IPC transport (pipe for GDB schemes, sockets for Driver-Kernel, as in
  /// the paper; override for the transport ablation).
  std::optional<ipc::Transport> transport;
  /// Fault-injection plan installed on every CPU's target-side transport
  /// (the stub endpoint for the GDB schemes, the driver data endpoint for
  /// Driver-Kernel). Empty = healthy wire, zero overhead.
  ipc::FaultPlan fault_plan;
  /// Live wire tap attached to every session's SystemC-side endpoint (e.g.
  /// an analysis::LiveConformanceMonitor). Shared across CPUs; null = none.
  std::shared_ptr<ipc::WireObserver> wire_observer;
  /// Live wire tap on every Driver-Kernel session's pump-side interrupt
  /// endpoint (the DriverIrq automaton's channel). Shared; null = none.
  std::shared_ptr<ipc::WireObserver> irq_observer;
  /// Resilience knobs forwarded to each session (see cosim::GdbTargetConfig
  /// / DriverTargetConfig). Matrix tests shrink these so every fault cell
  /// settles quickly.
  int reply_timeout_ms = 10000;
  int io_timeout_ms = 30000;
  int pay_timeout_ms = 5000;
  bool watchdog = false;
};

struct TestbenchReport {
  // traffic
  std::uint64_t produced = 0;
  std::uint64_t accepted = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t received = 0;
  std::uint64_t checksum_ok = 0;
  std::uint64_t checksum_bad = 0;
  std::uint64_t dropped_input = 0;
  std::uint64_t dropped_no_route = 0;
  std::uint64_t dropped_output = 0;
  double forwarded_pct = 0.0;  ///< received / produced * 100 (Figure 7 metric)
  // timing
  double wall_seconds = 0.0;
  sysc::sc_time sim_time;
  // co-simulation traffic (scheme-dependent; zero when not applicable)
  std::uint64_t rsp_transactions = 0;
  std::uint64_t breakpoint_events = 0;
  std::uint64_t lockstep_steps = 0;
  std::uint64_t driver_messages = 0;
  std::uint64_t kernel_delta_cycles = 0;
};

/// One self-contained co-simulated router scenario.
class Testbench {
 public:
  explicit Testbench(TestbenchConfig config);
  ~Testbench();

  Testbench(const Testbench&) = delete;
  Testbench& operator=(const Testbench&) = delete;

  /// Advances the simulation by `duration` (callable repeatedly).
  void run_for(sysc::sc_time duration);

  /// Runs in `window` steps until every produced packet is accounted for
  /// (received or dropped) or `max_duration` of simulated time elapsed.
  /// Requires bounded producers.
  void run_until_drained(sysc::sc_time max_duration,
                         sysc::sc_time window = sysc::sc_time::from_ps(10000000));

  /// Snapshot of all statistics.
  TestbenchReport report() const;

  /// First structured failure across every session (GDB-Kernel extension,
  /// GDB-Wrapper module, Driver-Kernel extension), if any ended the run or
  /// quiesced its port. Carries the wire post-mortem.
  std::optional<cosim::CosimError> cosim_error() const;

  /// True when any session degraded without a hard failure: a Driver-Kernel
  /// port quiesced, a device driver stopped exchanging data, or a target
  /// abandoned time correlation.
  bool degraded() const;

  /// Total transport faults injected across all sessions (0 when
  /// `fault_plan` is empty).
  std::uint64_t faults_injected() const;

  /// Stops the ISS side; called automatically on destruction.
  void shutdown();

  Router& router() noexcept { return *router_; }
  sysc::sc_simcontext& context() noexcept { return *ctx_; }
  const std::vector<Producer*>& producers() const noexcept { return producers_; }
  const std::vector<Consumer*>& consumers() const noexcept { return consumers_; }

 private:
  TestbenchConfig config_;
  std::unique_ptr<sysc::sc_simcontext> ctx_;
  sysc::sc_clock* clock_ = nullptr;
  Router* router_ = nullptr;
  std::vector<Producer*> producers_;
  std::vector<Consumer*> consumers_;

  // scheme plumbing, one entry per CPU (only the active scheme's vectors
  // are populated)
  std::vector<std::unique_ptr<cosim::GdbTarget>> gdb_targets_;
  std::vector<std::unique_ptr<cosim::GdbKernelExtension>> gdb_exts_;
  std::vector<cosim::GdbWrapperModule*> wrappers_;
  std::vector<std::unique_ptr<cosim::DriverTarget>> driver_targets_;
  std::vector<std::unique_ptr<cosim::DriverKernelExtension>> driver_exts_;

  double wall_seconds_ = 0.0;
  bool shut_down_ = false;
};

}  // namespace nisc::router
