// The packet type of the paper's case study (§5): Source address,
// Destination address, Packet identifier (for debugging), Data field, and
// Checksum. The checksum is computed *in software* by the application
// running on the ISS; the host-side golden value is used by the consumer to
// verify integrity.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace nisc::router {

inline constexpr int kNumPorts = 4;      ///< 4 input and 4 output ports (§5)
inline constexpr int kPayloadWords = 4;  ///< data field size
inline constexpr int kWireWords = kPayloadWords + 2;  ///< header + payload

struct Packet {
  std::uint8_t src = 0;
  std::uint8_t dst = 0;
  std::uint32_t id = 0;
  std::array<std::uint32_t, kPayloadWords> payload{};
  std::uint32_t checksum = 0;  ///< filled in by the CPU during forwarding

  bool operator==(const Packet&) const = default;

  /// The words the checksum covers, in wire order: header word
  /// (src | dst<<8), id, then the payload.
  std::array<std::uint32_t, kWireWords> wire_words() const noexcept;

  /// wire_words() as little-endian bytes (what the guest program sees).
  std::vector<std::uint8_t> checksum_bytes() const;

  /// Host-side reference checksum (util::word_sum32 over checksum_bytes()).
  std::uint32_t golden_checksum() const noexcept;
};

/// Trivially copyable bulk image of a packet's checksum-covered words; used
/// as the iss_out payload in the Driver-Kernel scheme, where a whole packet
/// crosses the boundary in one message.
struct PacketWire {
  std::uint32_t words[kWireWords];
};
static_assert(sizeof(PacketWire) == kWireWords * 4);

/// Packs a packet for bulk transfer.
PacketWire to_wire(const Packet& packet) noexcept;

}  // namespace nisc::router
