// Packet producer (paper §5): a SystemC module attached to a router input
// port generating packets with random destination addresses at a
// configurable inter-packet delay — the independent variable of Figure 7.
#pragma once

#include "router/packet.hpp"
#include "sysc/sc_fifo.hpp"
#include "sysc/sc_module.hpp"
#include "util/rng.hpp"

namespace nisc::router {

struct ProducerConfig {
  int port = 0;                     ///< source address stamped into packets
  sysc::sc_time delay{};            ///< inter-packet delay
  std::uint64_t num_packets = 0;    ///< 0 = produce forever
  std::uint64_t seed = 1;
  int address_space = 16;           ///< destinations drawn from [0, space)
};

struct ProducerStats {
  std::uint64_t produced = 0;       ///< generation attempts
  std::uint64_t accepted = 0;       ///< entered the input FIFO
  std::uint64_t dropped_input = 0;  ///< lost: input FIFO full
  bool done = false;                ///< finished its quota
};

class Producer : public sysc::sc_module {
 public:
  Producer(std::string name, sysc::sc_fifo<Packet>& fifo, sysc::sc_event& enqueue_event,
           ProducerConfig config);

  const ProducerStats& stats() const noexcept { return stats_; }

  /// Deterministically builds packet `index` for this producer's stream
  /// (exposed so tests can predict the traffic).
  Packet make_packet(std::uint64_t index);

 private:
  void produce_loop();

  sysc::sc_fifo<Packet>& fifo_;
  sysc::sc_event& enqueue_event_;
  ProducerConfig config_;
  util::Rng rng_;
  ProducerStats stats_;
};

}  // namespace nisc::router
