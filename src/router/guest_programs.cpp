#include "router/guest_programs.hpp"

#include "router/packet.hpp"

namespace nisc::router {

std::string word_stream_checksum_source(const std::string& to_cpu_port,
                                        const std::string& from_cpu_port) {
  std::string source = R"(# Checksum application, GDB-scheme flavor (bare metal).
# Receives packet words one at a time through `word_in` and returns the
# 32-bit word-sum checksum through `csum_out`.
_start:
main_loop:
    li s1, )" + std::to_string(kWireWords) + R"(
    li s2, 0
    la t1, word_in
word_loop:
    #pragma iss_out(")" + to_cpu_port + R"(", word_in)
    lw t0, 0(t1)
    add s2, s2, t0
    addi s1, s1, -1
    bnez s1, word_loop
    la t2, csum_out
    #pragma iss_in(")" + from_cpu_port + R"(", csum_out)
    sw s2, 0(t2)
    nop
    j main_loop
word_in:  .word 0
csum_out: .word 0
)";
  return source;
}

std::string bulk_checksum_source() {
  const int bytes = kWireWords * 4;
  std::string source = R"(# Checksum application, Driver-Kernel flavor (runs on the RTOS).
# Reads a whole packet from the SystemC device (dev 0), checksums it and
# writes the result back through the driver.
_start:
main_loop:
    li s3, )" + std::to_string(bytes) + R"(
    la s2, buf
read_loop:
    li a0, 0
    mv a1, s2
    mv a2, s3
    li a7, SYS_DEV_READ
    ecall
    add s2, s2, a0
    sub s3, s3, a0
    bnez s3, read_loop
    la t1, buf
    li s1, )" + std::to_string(kWireWords) + R"(
    li s2, 0
sum_loop:
    lw t0, 0(t1)
    add s2, s2, t0
    addi t1, t1, 4
    addi s1, s1, -1
    bnez s1, sum_loop
    la t1, out
    sw s2, 0(t1)
    li a0, 0
    la a1, out
    li a2, 4
    li a7, SYS_DEV_WRITE
    ecall
    j main_loop
buf: .space )" + std::to_string(bytes) + R"(
out: .word 0
)";
  return source;
}

std::string guest_programs_doc() {
  return "checksum = 32-bit word sum over " + std::to_string(kWireWords) +
         " little-endian words (header, id, payload)";
}

}  // namespace nisc::router
