#include "router/producer.hpp"

namespace nisc::router {

Producer::Producer(std::string name, sysc::sc_fifo<Packet>& fifo,
                   sysc::sc_event& enqueue_event, ProducerConfig config)
    : sc_module(std::move(name)), fifo_(fifo), enqueue_event_(enqueue_event),
      config_(config), rng_(config.seed) {
  util::require(config_.address_space >= 1 && config_.address_space <= 256,
                "Producer: bad address space");
  declare_thread("produce", &Producer::produce_loop);
}

Packet Producer::make_packet(std::uint64_t index) {
  Packet packet;
  packet.src = static_cast<std::uint8_t>(config_.port);
  packet.dst = static_cast<std::uint8_t>(rng_.below(static_cast<std::uint64_t>(config_.address_space)));
  packet.id = static_cast<std::uint32_t>(index);
  for (auto& word : packet.payload) word = rng_.next_u32();
  return packet;
}

void Producer::produce_loop() {
  for (std::uint64_t i = 0; config_.num_packets == 0 || i < config_.num_packets; ++i) {
    Packet packet = make_packet(i);
    ++stats_.produced;
    if (fifo_.nb_write(packet)) {
      ++stats_.accepted;
      enqueue_event_.notify_delta();
    } else {
      // The router (waiting on the CPU checksum) has fallen behind: the
      // packet is lost. This is the effect Figure 7 plots.
      ++stats_.dropped_input;
    }
    if (config_.delay > sysc::sc_time::zero()) {
      sysc::wait(config_.delay);
    } else {
      sysc::wait(sysc::sc_time::from_ps(1));
    }
  }
  stats_.done = true;
}

}  // namespace nisc::router
