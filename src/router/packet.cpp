#include "router/packet.hpp"

#include "util/checksum.hpp"

namespace nisc::router {

std::array<std::uint32_t, kWireWords> Packet::wire_words() const noexcept {
  std::array<std::uint32_t, kWireWords> words{};
  words[0] = static_cast<std::uint32_t>(src) | (static_cast<std::uint32_t>(dst) << 8);
  words[1] = id;
  for (int i = 0; i < kPayloadWords; ++i) words[static_cast<std::size_t>(i) + 2] = payload[static_cast<std::size_t>(i)];
  return words;
}

std::vector<std::uint8_t> Packet::checksum_bytes() const {
  auto words = wire_words();
  std::vector<std::uint8_t> bytes;
  bytes.reserve(kWireWords * 4);
  for (std::uint32_t w : words) {
    bytes.push_back(static_cast<std::uint8_t>(w));
    bytes.push_back(static_cast<std::uint8_t>(w >> 8));
    bytes.push_back(static_cast<std::uint8_t>(w >> 16));
    bytes.push_back(static_cast<std::uint8_t>(w >> 24));
  }
  return bytes;
}

std::uint32_t Packet::golden_checksum() const noexcept {
  auto bytes = checksum_bytes();
  return util::word_sum32(bytes);
}

PacketWire to_wire(const Packet& packet) noexcept {
  PacketWire wire{};
  auto words = packet.wire_words();
  for (int i = 0; i < kWireWords; ++i) wire.words[i] = words[static_cast<std::size_t>(i)];
  return wire;
}

}  // namespace nisc::router
