#include "router/router.hpp"

namespace nisc::router {

using sysc::wait;

Router::Router(std::string name, RoutingTable table, OffloadMode mode,
               std::size_t fifo_capacity, int engines)
    : sc_module(std::move(name)),
      table_(std::move(table)),
      mode_(mode),
      engines_(engines),
      enqueue_event_(this->name() + ".enqueue") {
  util::require(engines_ >= 1 && engines_ <= 16, "Router: 1..16 engines");
  stats_.per_engine.assign(static_cast<std::size_t>(engines_), 0);
  for (int i = 0; i < kNumPorts; ++i) {
    inputs_[static_cast<std::size_t>(i)] = std::make_unique<sysc::sc_fifo<Packet>>(
        this->name() + ".in" + std::to_string(i), fifo_capacity);
    outputs_[static_cast<std::size_t>(i)] = std::make_unique<sysc::sc_fifo<Packet>>(
        this->name() + ".out" + std::to_string(i), fifo_capacity);
  }
  for (int e = 0; e < engines_; ++e) {
    if (mode_ == OffloadMode::WordStream) {
      to_cpu_word_.push_back(
          std::make_unique<sysc::iss_out<std::uint32_t>>(to_cpu_port_name(e)));
    } else {
      to_cpu_bulk_.push_back(std::make_unique<sysc::iss_out<PacketWire>>(to_cpu_port_name(e)));
    }
    from_cpu_.push_back(std::make_unique<sysc::iss_in<std::uint32_t>>(from_cpu_port_name(e)));
    declare_thread("forward" + std::to_string(e), [this, e] { forward_loop(e); });
  }
}

std::string Router::to_cpu_port_name(int engine) const {
  util::require(engine >= 0 && engine < engines_, "Router: bad engine");
  return engines_ == 1 ? name() + ".to_cpu" : name() + ".to_cpu" + std::to_string(engine);
}

std::string Router::from_cpu_port_name(int engine) const {
  util::require(engine >= 0 && engine < engines_, "Router: bad engine");
  return engines_ == 1 ? name() + ".from_cpu" : name() + ".from_cpu" + std::to_string(engine);
}

sysc::sc_fifo<Packet>& Router::input(int port) {
  util::require(port >= 0 && port < kNumPorts, "Router::input: bad port");
  return *inputs_[static_cast<std::size_t>(port)];
}

sysc::sc_fifo<Packet>& Router::output(int port) {
  util::require(port >= 0 && port < kNumPorts, "Router::output: bad port");
  return *outputs_[static_cast<std::size_t>(port)];
}

bool Router::pop_next(Packet& out) {
  for (int scanned = 0; scanned < kNumPorts; ++scanned) {
    int port = (round_robin_ + scanned) % kNumPorts;
    if (inputs_[static_cast<std::size_t>(port)]->nb_read(out)) {
      round_robin_ = (port + 1) % kNumPorts;
      return true;
    }
  }
  return false;
}

std::uint32_t Router::offload_checksum(int engine, const Packet& packet) {
  const auto e = static_cast<std::size_t>(engine);
  if (mode_ == OffloadMode::WordStream) {
    // One word per handshake: write, wait until the co-simulation layer
    // reports the CPU consumed it.
    for (std::uint32_t word : packet.wire_words()) {
      to_cpu_word_[e]->write(word);
      while (to_cpu_word_[e]->has_fresh_value()) wait(to_cpu_word_[e]->consumed_event());
    }
  } else {
    to_cpu_bulk_[e]->write(to_wire(packet));
    while (to_cpu_bulk_[e]->has_fresh_value()) wait(to_cpu_bulk_[e]->consumed_event());
  }
  // Await the CPU's result on the return port.
  while (!from_cpu_[e]->has_fresh_value()) wait(from_cpu_[e]->written_event());
  std::uint32_t checksum = from_cpu_[e]->read();
  from_cpu_[e]->consume_fresh();
  return checksum;
}

void Router::forward_loop(int engine) {
  for (;;) {
    Packet packet;
    while (!pop_next(packet)) wait(enqueue_event_);
    ++stats_.accepted;

    packet.checksum = offload_checksum(engine, packet);
    ++stats_.checksummed;
    ++stats_.per_engine[static_cast<std::size_t>(engine)];

    auto port = table_.lookup(packet.dst);
    if (!port) {
      ++stats_.dropped_no_route;
      continue;
    }
    if (outputs_[static_cast<std::size_t>(*port)]->nb_write(packet)) {
      ++stats_.forwarded;
      ++stats_.per_output[static_cast<std::size_t>(*port)];
    } else {
      ++stats_.dropped_output_full;
    }
  }
}

}  // namespace nisc::router
