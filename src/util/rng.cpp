#include "util/rng.hpp"

namespace nisc::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept { return (x << k) | (x >> (64 - k)); }

}  // namespace

void Rng::reseed(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  require(bound > 0, "Rng::below: bound must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    std::uint64_t r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

std::uint64_t Rng::between(std::uint64_t lo, std::uint64_t hi) {
  require(lo <= hi, "Rng::between: lo must be <= hi");
  if (lo == 0 && hi == ~0ULL) return next_u64();
  return lo + below(hi - lo + 1);
}

double Rng::next_double() noexcept {
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

}  // namespace nisc::util
