// Small string utilities used by the assembler, the RSP codec, and tools.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace nisc::util {

/// Strips leading and trailing whitespace.
std::string_view trim(std::string_view s) noexcept;

/// Splits on `sep`, keeping empty fields.
std::vector<std::string_view> split(std::string_view s, char sep);

/// Splits on any run of whitespace, dropping empty fields.
std::vector<std::string_view> split_ws(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix) noexcept;
bool ends_with(std::string_view s, std::string_view suffix) noexcept;

/// Parses a signed integer: decimal, 0x-hex, 0b-binary, optional leading '-'.
/// Returns nullopt on malformed input or overflow of int64.
std::optional<std::int64_t> parse_int(std::string_view s) noexcept;

/// Lower-cases ASCII.
std::string to_lower(std::string_view s);

}  // namespace nisc::util
