// Deterministic pseudo-random number generator (xoshiro256**).
//
// Used wherever the paper's case study needs randomness (packet destination
// addresses, payloads) so that every co-simulation run is reproducible from
// a seed.
#pragma once

#include <cstdint>

#include "util/error.hpp"

namespace nisc::util {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, tiny state.
class Rng {
 public:
  /// Seeds the generator via splitmix64 expansion of `seed`.
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept { reseed(seed); }

  /// Re-seeds in place.
  void reseed(std::uint64_t seed) noexcept;

  /// Next raw 64-bit value.
  std::uint64_t next_u64() noexcept;

  /// Next 32-bit value.
  std::uint32_t next_u32() noexcept { return static_cast<std::uint32_t>(next_u64() >> 32); }

  /// Uniform value in [0, bound). `bound` must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi);

  /// Uniform double in [0, 1).
  double next_double() noexcept;

  /// Bernoulli draw with probability `p` (clamped to [0,1]).
  bool chance(double p) noexcept;

 private:
  std::uint64_t state_[4];
};

}  // namespace nisc::util
