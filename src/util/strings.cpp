#include "util/strings.hpp"

#include <cctype>
#include <limits>

namespace nisc::util {

std::string_view trim(std::string_view s) noexcept {
  std::size_t begin = 0;
  std::size_t end = s.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(s[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) noexcept {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) noexcept {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

std::optional<std::int64_t> parse_int(std::string_view s) noexcept {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  bool negative = false;
  if (s[0] == '-' || s[0] == '+') {
    negative = s[0] == '-';
    s.remove_prefix(1);
    if (s.empty()) return std::nullopt;
  }
  int base = 10;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    base = 16;
    s.remove_prefix(2);
  } else if (s.size() > 2 && s[0] == '0' && (s[1] == 'b' || s[1] == 'B')) {
    base = 2;
    s.remove_prefix(2);
  }
  std::uint64_t value = 0;
  const std::uint64_t limit = static_cast<std::uint64_t>(std::numeric_limits<std::int64_t>::max()) + (negative ? 1 : 0);
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = c - 'A' + 10;
    } else {
      return std::nullopt;
    }
    if (digit >= base) return std::nullopt;
    std::uint64_t next = value * static_cast<std::uint64_t>(base) + static_cast<std::uint64_t>(digit);
    if (next > limit || next / base != value) return std::nullopt;
    value = next;
  }
  if (negative) return -static_cast<std::int64_t>(value);
  return static_cast<std::int64_t>(value);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

}  // namespace nisc::util
