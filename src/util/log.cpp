#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

namespace nisc::util {
namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("NISC_LOG");
  if (env == nullptr) return LogLevel::Off;
  if (std::strcmp(env, "debug") == 0) return LogLevel::Debug;
  if (std::strcmp(env, "info") == 0) return LogLevel::Info;
  if (std::strcmp(env, "warn") == 0) return LogLevel::Warn;
  if (std::strcmp(env, "error") == 0) return LogLevel::Error;
  return LogLevel::Off;
}

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level{level_from_env()};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

/// Parsed $NISC_LOG_COMPONENTS (empty = no filtering).
const std::vector<std::string>& component_filter() {
  static const std::vector<std::string> filter = [] {
    std::vector<std::string> out;
    const char* env = std::getenv("NISC_LOG_COMPONENTS");
    if (env == nullptr) return out;
    std::string current;
    for (const char* p = env;; ++p) {
      if (*p == ',' || *p == '\0') {
        if (!current.empty()) out.push_back(current);
        current.clear();
        if (*p == '\0') break;
      } else if (*p != ' ') {
        current += *p;
      }
    }
    return out;
  }();
  return filter;
}

std::atomic<LogSimTimeProvider> g_sim_time_provider{nullptr};

/// Monotonic seconds since the first log line.
double monotonic_seconds() {
  using clock = std::chrono::steady_clock;
  static const clock::time_point start = clock::now();
  return std::chrono::duration<double>(clock::now() - start).count();
}

/// "sim=1.250us " when a simulation is active on this thread, "" otherwise.
std::string sim_time_prefix() {
  LogSimTimeProvider provider = g_sim_time_provider.load(std::memory_order_acquire);
  if (provider == nullptr) return {};
  std::uint64_t ps = 0;
  if (!provider(&ps)) return {};
  char buf[48];
  if (ps >= 1000000000000ULL) {
    std::snprintf(buf, sizeof(buf), "sim=%.6fs ", static_cast<double>(ps) / 1e12);
  } else if (ps >= 1000000ULL) {
    std::snprintf(buf, sizeof(buf), "sim=%.3fus ", static_cast<double>(ps) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "sim=%llups ", static_cast<unsigned long long>(ps));
  }
  return buf;
}

}  // namespace

void set_log_level(LogLevel level) noexcept { level_storage().store(level); }

LogLevel log_level() noexcept { return level_storage().load(); }

void set_log_sim_time_provider(LogSimTimeProvider provider) noexcept {
  g_sim_time_provider.store(provider, std::memory_order_release);
}

bool log_component_enabled(const std::string& component) {
  const std::vector<std::string>& filter = component_filter();
  if (filter.empty()) return true;
  for (const std::string& allowed : filter) {
    if (allowed == component) return true;
  }
  return false;
}

void log_line(LogLevel level, const std::string& component, const std::string& message) {
  if (level < log_level()) return;
  if (!log_component_enabled(component)) return;
  const double t = monotonic_seconds();
  const std::string sim = sim_time_prefix();
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%s] %.3fs %s%s: %s\n", level_name(level), t, sim.c_str(),
               component.c_str(), message.c_str());
}

}  // namespace nisc::util
