#include "util/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace nisc::util {
namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("NISC_LOG");
  if (env == nullptr) return LogLevel::Off;
  if (std::strcmp(env, "debug") == 0) return LogLevel::Debug;
  if (std::strcmp(env, "info") == 0) return LogLevel::Info;
  if (std::strcmp(env, "warn") == 0) return LogLevel::Warn;
  if (std::strcmp(env, "error") == 0) return LogLevel::Error;
  return LogLevel::Off;
}

std::atomic<LogLevel>& level_storage() {
  static std::atomic<LogLevel> level{level_from_env()};
  return level;
}

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept { level_storage().store(level); }

LogLevel log_level() noexcept { return level_storage().load(); }

void log_line(LogLevel level, const std::string& component, const std::string& message) {
  if (level < log_level()) return;
  static std::mutex mu;
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%s] %s: %s\n", level_name(level), component.c_str(), message.c_str());
}

}  // namespace nisc::util
