// Host-side reference checksums.
//
// The paper's router offloads checksum computation to a program running on
// the ISS; these host implementations are the golden reference the consumer
// uses to verify packet integrity, and what tests compare the guest
// program's output against.
#pragma once

#include <cstdint>
#include <span>

namespace nisc::util {

/// RFC 1071 Internet checksum: one's-complement sum of 16-bit words
/// (little-endian pairing, odd trailing byte zero-padded), complemented.
std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept;

/// CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF, no reflection).
std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data) noexcept;

/// Simple 32-bit additive checksum over little-endian words; trailing bytes
/// are zero-extended. This is the algorithm the guest assembly programs
/// implement (cheap on RV32 yet order-sensitive enough to catch swaps).
std::uint32_t word_sum32(std::span<const std::uint8_t> data) noexcept;

/// CRC-32 (IEEE 802.3: poly 0xEDB88320 reflected, init/final-xor 0xFFFFFFFF).
/// Integrity seal on every checkpoint section (DESIGN.md §12).
std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept;

/// Incremental CRC-32: feed chunks with `crc32_update` starting from
/// `crc32_init()`, then finalize with `crc32_final`.
std::uint32_t crc32_init() noexcept;
std::uint32_t crc32_update(std::uint32_t state, std::span<const std::uint8_t> data) noexcept;
std::uint32_t crc32_final(std::uint32_t state) noexcept;

}  // namespace nisc::util
