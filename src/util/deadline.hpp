// Monotonic deadline arithmetic for bounded blocking calls.
//
// Every blocking path in the co-simulation stack (IPC polls, RSP replies,
// budget waits, session joins) is expressed against a Deadline so that
// EINTR retries and partial progress never silently extend the total wait
// (see ipc::poll_readable for the bug class this prevents).
#pragma once

#include <chrono>

namespace nisc::util {

/// A fixed point in monotonic time, or "never". Cheap to copy.
class Deadline {
 public:
  using clock = std::chrono::steady_clock;

  /// A deadline that never expires (remaining_ms() == -1 forever).
  static Deadline never() noexcept { return Deadline(); }

  /// Expires `ms` milliseconds from now; ms < 0 means never.
  static Deadline after_ms(int ms) noexcept {
    Deadline d;
    if (ms >= 0) {
      d.unlimited_ = false;
      d.at_ = clock::now() + std::chrono::milliseconds(ms);
    }
    return d;
  }

  bool unlimited() const noexcept { return unlimited_; }

  bool expired() const noexcept {
    return !unlimited_ && clock::now() >= at_;
  }

  /// Milliseconds left, clamped to >= 0; -1 when unlimited. Suitable for
  /// passing straight to poll(2)-style timeout arguments. Rounded *up*: a
  /// live deadline never reports 0, which would turn short bounded waits
  /// (e.g. a 1 ms idle poll) into hot non-blocking spins.
  int remaining_ms() const noexcept {
    if (unlimited_) return -1;
    auto left = std::chrono::ceil<std::chrono::milliseconds>(at_ - clock::now());
    return left.count() > 0 ? static_cast<int>(left.count()) : 0;
  }

 private:
  Deadline() noexcept = default;

  bool unlimited_ = true;
  clock::time_point at_{};
};

}  // namespace nisc::util
