// Minimal thread-safe leveled logger.
//
// Logging is off by default (level Off) so benchmarks and tests stay quiet;
// set NISC_LOG=debug|info|warn|error in the environment or call
// set_level() to enable.
//
// Each line carries a monotonic wall-clock timestamp (seconds since the
// first log call) and, when a simulation context is active on the logging
// thread, the current simulated time:
//
//   [INFO] 1.042s sim=2.500us gdb-kernel: target finished ...
//
// NISC_LOG_COMPONENTS=a,b restricts output to the named components
// (exact-match, comma-separated); unset or empty logs everything.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace nisc::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global log threshold.
void set_log_level(LogLevel level) noexcept;

/// Current global log threshold (initialized from $NISC_LOG on first use).
LogLevel log_level() noexcept;

/// Emits one line to stderr if `level` passes the threshold and `component`
/// passes the $NISC_LOG_COMPONENTS filter. Thread-safe.
void log_line(LogLevel level, const std::string& component, const std::string& message);

/// True when `component` passes the $NISC_LOG_COMPONENTS filter.
bool log_component_enabled(const std::string& component);

/// Simulated-time hook: the SystemC kernel installs a provider that writes
/// the current sim time (picoseconds) for the calling thread and returns
/// true, or returns false when no simulation is active there. util cannot
/// depend on sysc, so the kernel injects the function pointer at
/// construction. Passing nullptr uninstalls.
using LogSimTimeProvider = bool (*)(std::uint64_t* sim_ps);
void set_log_sim_time_provider(LogSimTimeProvider provider) noexcept;

namespace detail {
class LogStream {
 public:
  LogStream(LogLevel level, const char* component) : level_(level), component_(component) {}
  ~LogStream() { log_line(level_, component_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace nisc::util

#define NISC_LOG(level, component)                                      \
  if (::nisc::util::log_level() <= ::nisc::util::LogLevel::level)       \
  ::nisc::util::detail::LogStream(::nisc::util::LogLevel::level, component)

#define NISC_DEBUG(component) NISC_LOG(Debug, component)
#define NISC_INFO(component) NISC_LOG(Info, component)
#define NISC_WARN(component) NISC_LOG(Warn, component)
#define NISC_ERROR(component) NISC_LOG(Error, component)
