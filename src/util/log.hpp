// Minimal thread-safe leveled logger.
//
// Logging is off by default (level Off) so benchmarks and tests stay quiet;
// set NISC_LOG=debug|info|warn|error in the environment or call
// set_level() to enable.
#pragma once

#include <sstream>
#include <string>

namespace nisc::util {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Sets the global log threshold.
void set_log_level(LogLevel level) noexcept;

/// Current global log threshold (initialized from $NISC_LOG on first use).
LogLevel log_level() noexcept;

/// Emits one line to stderr if `level` passes the threshold. Thread-safe.
void log_line(LogLevel level, const std::string& component, const std::string& message);

namespace detail {
class LogStream {
 public:
  LogStream(LogLevel level, const char* component) : level_(level), component_(component) {}
  ~LogStream() { log_line(level_, component_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  const char* component_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace nisc::util

#define NISC_LOG(level, component)                                      \
  if (::nisc::util::log_level() <= ::nisc::util::LogLevel::level)       \
  ::nisc::util::detail::LogStream(::nisc::util::LogLevel::level, component)

#define NISC_DEBUG(component) NISC_LOG(Debug, component)
#define NISC_INFO(component) NISC_LOG(Info, component)
#define NISC_WARN(component) NISC_LOG(Warn, component)
#define NISC_ERROR(component) NISC_LOG(Error, component)
