#include "util/hex.hpp"

namespace nisc::util {

char hex_digit(unsigned nibble) {
  require(nibble < 16, "hex_digit: nibble out of range");
  return "0123456789abcdef"[nibble];
}

int hex_value(char c) noexcept {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

std::string hex_encode(std::span<const std::uint8_t> data) {
  std::string out;
  out.reserve(data.size() * 2);
  for (std::uint8_t b : data) {
    out.push_back(hex_digit(b >> 4));
    out.push_back(hex_digit(b & 0xF));
  }
  return out;
}

Result<std::vector<std::uint8_t>> hex_decode(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    return Result<std::vector<std::uint8_t>>::failure("hex_decode: odd length");
  }
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    int hi = hex_value(hex[i]);
    int lo = hex_value(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      return Result<std::vector<std::uint8_t>>::failure("hex_decode: invalid digit");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

std::string hex_encode_u32_le(std::uint32_t value) {
  std::uint8_t bytes[4];
  write_le(bytes, 4, value);
  return hex_encode(bytes);
}

Result<std::uint32_t> hex_decode_u32_le(std::string_view hex) {
  auto bytes = hex_decode(hex);
  if (!bytes.ok()) return Result<std::uint32_t>::failure(bytes.error());
  if (bytes.value().size() != 4) {
    return Result<std::uint32_t>::failure("hex_decode_u32_le: need 8 hex chars");
  }
  return read_le(bytes.value(), 4);
}

std::uint32_t read_le(std::span<const std::uint8_t> bytes, unsigned width) {
  require(width >= 1 && width <= 4, "read_le: width must be 1..4");
  require(bytes.size() >= width, "read_le: span too small");
  std::uint32_t v = 0;
  for (unsigned i = 0; i < width; ++i) v |= static_cast<std::uint32_t>(bytes[i]) << (8 * i);
  return v;
}

void write_le(std::span<std::uint8_t> bytes, unsigned width, std::uint32_t value) {
  require(width >= 1 && width <= 4, "write_le: width must be 1..4");
  require(bytes.size() >= width, "write_le: span too small");
  for (unsigned i = 0; i < width; ++i) bytes[i] = static_cast<std::uint8_t>(value >> (8 * i));
}

}  // namespace nisc::util
