// Minimal recursive-descent JSON parser (RFC 8259 subset, no surrogate
// escapes). In-repo consumers: the Chrome-trace exporter round-trip test,
// the cosim_stat report tool, and the BENCH_*.json regression check — all
// read-side tooling, none performance-critical.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace nisc::util {

class JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

/// One parsed JSON value. Numbers are stored as double (plus the raw text
/// for exact integer retrieval).
class JsonValue {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;

  Kind kind() const noexcept { return kind_; }
  bool is_null() const noexcept { return kind_ == Kind::Null; }
  bool is_object() const noexcept { return kind_ == Kind::Object; }
  bool is_array() const noexcept { return kind_ == Kind::Array; }
  bool is_number() const noexcept { return kind_ == Kind::Number; }
  bool is_string() const noexcept { return kind_ == Kind::String; }
  bool is_bool() const noexcept { return kind_ == Kind::Bool; }

  bool as_bool() const;
  double as_double() const;
  std::int64_t as_int() const;
  std::uint64_t as_uint() const;
  const std::string& as_string() const;
  const JsonArray& as_array() const;
  const JsonObject& as_object() const;

  /// Object member access; returns nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const noexcept;
  /// Object member access; throws RuntimeError when absent.
  const JsonValue& at(std::string_view key) const;

 private:
  friend class JsonParser;
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;  // String value or Number raw text
  std::shared_ptr<JsonArray> array_;
  std::shared_ptr<JsonObject> object_;
};

/// Parses one JSON document (trailing whitespace allowed, trailing garbage
/// rejected). Throws RuntimeError with offset context on malformed input.
JsonValue parse_json(std::string_view text);

/// Reads and parses a JSON file. Throws RuntimeError on I/O or parse error.
JsonValue parse_json_file(const std::string& path);

}  // namespace nisc::util
