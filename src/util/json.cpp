#include "util/json.hpp"

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace nisc::util {

namespace {

[[noreturn]] void parse_fail(std::size_t pos, const std::string& what) {
  throw RuntimeError("json: " + what + " at offset " + std::to_string(pos));
}

}  // namespace

bool JsonValue::as_bool() const {
  require(kind_ == Kind::Bool, "json: not a bool");
  return bool_;
}

double JsonValue::as_double() const {
  require(kind_ == Kind::Number, "json: not a number");
  return number_;
}

std::int64_t JsonValue::as_int() const {
  require(kind_ == Kind::Number, "json: not a number");
  return static_cast<std::int64_t>(std::strtoll(string_.c_str(), nullptr, 10));
}

std::uint64_t JsonValue::as_uint() const {
  require(kind_ == Kind::Number, "json: not a number");
  return static_cast<std::uint64_t>(std::strtoull(string_.c_str(), nullptr, 10));
}

const std::string& JsonValue::as_string() const {
  require(kind_ == Kind::String, "json: not a string");
  return string_;
}

const JsonArray& JsonValue::as_array() const {
  require(kind_ == Kind::Array, "json: not an array");
  return *array_;
}

const JsonObject& JsonValue::as_object() const {
  require(kind_ == Kind::Object, "json: not an object");
  return *object_;
}

const JsonValue* JsonValue::find(std::string_view key) const noexcept {
  if (kind_ != Kind::Object) return nullptr;
  auto it = object_->find(std::string(key));
  return it == object_->end() ? nullptr : &it->second;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  require(v != nullptr, "json: missing key \"" + std::string(key) + "\"");
  return *v;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) parse_fail(pos_, "trailing garbage");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) parse_fail(pos_, "unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) parse_fail(pos_, std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind_ = JsonValue::Kind::String;
        v.string_ = parse_string();
        return v;
      }
      case 't': {
        JsonValue v;
        if (!consume_literal("true")) parse_fail(pos_, "bad literal");
        v.kind_ = JsonValue::Kind::Bool;
        v.bool_ = true;
        return v;
      }
      case 'f': {
        JsonValue v;
        if (!consume_literal("false")) parse_fail(pos_, "bad literal");
        v.kind_ = JsonValue::Kind::Bool;
        v.bool_ = false;
        return v;
      }
      case 'n': {
        JsonValue v;
        if (!consume_literal("null")) parse_fail(pos_, "bad literal");
        return v;
      }
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) parse_fail(pos_, "unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) parse_fail(pos_, "unterminated escape");
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) parse_fail(pos_, "bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else parse_fail(pos_, "bad \\u escape");
          }
          // ASCII only (enough for our own emitters); others become '?'.
          out += code < 0x80 ? static_cast<char>(code) : '?';
          break;
        }
        default: parse_fail(pos_, "bad escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) parse_fail(pos_, "expected a value");
    JsonValue v;
    v.kind_ = JsonValue::Kind::Number;
    v.string_ = std::string(text_.substr(start, pos_ - start));
    char* end = nullptr;
    v.number_ = std::strtod(v.string_.c_str(), &end);
    if (end != v.string_.c_str() + v.string_.size()) parse_fail(start, "malformed number");
    return v;
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::Array;
    v.array_ = std::make_shared<JsonArray>();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array_->push_back(parse_value());
      skip_ws();
      char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') parse_fail(pos_ - 1, "expected ',' or ']'");
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::Object;
    v.object_ = std::make_shared<JsonObject>();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      (*v.object_)[std::move(key)] = parse_value();
      skip_ws();
      char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') parse_fail(pos_ - 1, "expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue parse_json(std::string_view text) { return JsonParser(text).parse_document(); }

JsonValue parse_json_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw RuntimeError("json: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse_json(buf.str());
}

}  // namespace nisc::util
