#include "util/loc.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace nisc::util {

LocCount count_loc(std::string_view source) {
  LocCount count;
  bool in_block_comment = false;
  std::size_t pos = 0;
  while (pos <= source.size()) {
    std::size_t eol = source.find('\n', pos);
    std::string_view line = source.substr(pos, eol == std::string_view::npos ? std::string_view::npos : eol - pos);
    pos = (eol == std::string_view::npos) ? source.size() + 1 : eol + 1;
    if (eol == std::string_view::npos && line.empty() && pos > source.size()) break;

    bool has_code = false;
    bool has_comment = in_block_comment;
    for (std::size_t i = 0; i < line.size(); ++i) {
      char c = line[i];
      if (in_block_comment) {
        if (c == '*' && i + 1 < line.size() && line[i + 1] == '/') {
          in_block_comment = false;
          ++i;
        }
        continue;
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') {
        has_comment = true;
        break;  // rest of line is comment
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        has_comment = true;
        ++i;
        continue;
      }
      if ((c == '#' || c == ';') && !has_code && trim(line.substr(0, i)).empty()) {
        has_comment = true;
        break;  // assembly-style full-line comment
      }
      if (!std::isspace(static_cast<unsigned char>(c))) has_code = true;
    }
    if (has_code) {
      ++count.code;
    } else if (has_comment) {
      ++count.comment;
    } else if (!trim(line).empty()) {
      ++count.code;
    } else {
      ++count.blank;
    }
  }
  return count;
}

LocCount count_loc_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw RuntimeError("count_loc_file: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return count_loc(buf.str());
}

}  // namespace nisc::util
