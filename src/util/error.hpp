// Error handling primitives shared by all niscosim modules.
//
// Programming errors (precondition violations) throw LogicError; recoverable
// runtime failures (I/O, protocol, guest faults) throw or return RuntimeError
// via Result<T>.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace nisc::util {

/// Thrown on precondition/invariant violations: indicates a bug in the
/// caller, not an environmental condition.
class LogicError : public std::logic_error {
 public:
  explicit LogicError(const std::string& what) : std::logic_error(what) {}
};

/// Thrown on recoverable runtime failures (I/O errors, malformed protocol
/// traffic, guest program faults).
class RuntimeError : public std::runtime_error {
 public:
  explicit RuntimeError(const std::string& what) : std::runtime_error(what) {}
};

/// Throws LogicError with `msg` when `cond` is false. Used to check public
/// API preconditions; always enabled (not tied to NDEBUG).
inline void require(bool cond, const std::string& msg) {
  if (!cond) throw LogicError(msg);
}

/// A value-or-error sum type for fallible operations on hot or noexcept-ish
/// paths where exceptions would be awkward (e.g. non-blocking I/O).
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}                  // NOLINT
  Result(RuntimeError err) : data_(std::move(err)) {}           // NOLINT
  static Result failure(const std::string& msg) { return Result(RuntimeError(msg)); }

  bool ok() const noexcept { return std::holds_alternative<T>(data_); }
  explicit operator bool() const noexcept { return ok(); }

  /// Returns the contained value; throws the stored error if not ok().
  T& value() & {
    if (!ok()) throw std::get<RuntimeError>(data_);
    return std::get<T>(data_);
  }
  const T& value() const& {
    if (!ok()) throw std::get<RuntimeError>(data_);
    return std::get<T>(data_);
  }
  T&& value() && {
    if (!ok()) throw std::get<RuntimeError>(data_);
    return std::move(std::get<T>(data_));
  }

  /// Returns the stored error message; empty when ok().
  std::string error() const {
    if (ok()) return {};
    return std::get<RuntimeError>(data_).what();
  }

 private:
  std::variant<T, RuntimeError> data_;
};

}  // namespace nisc::util
