// Source lines-of-code counter for the paper's §5 software-complexity
// comparison (Driver-Kernel vs GDB-Kernel programming effort).
#pragma once

#include <string>
#include <string_view>

namespace nisc::util {

struct LocCount {
  int code = 0;     ///< non-blank, non-comment lines
  int comment = 0;  ///< pure comment lines
  int blank = 0;    ///< whitespace-only lines
  int total() const noexcept { return code + comment + blank; }
};

/// Counts LoC in a C/C++ or RV32 assembly source string. Handles //, /* */
/// and leading-'#'/';' assembly comments. A line holding both code and a
/// comment counts as code.
LocCount count_loc(std::string_view source);

/// Counts LoC in a file on disk; throws RuntimeError if unreadable.
LocCount count_loc_file(const std::string& path);

}  // namespace nisc::util
