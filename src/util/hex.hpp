// Hex and little-endian byte codecs used by the RSP protocol and the ISS.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/error.hpp"

namespace nisc::util {

/// Lower-case hex digit for `nibble` in [0, 15].
char hex_digit(unsigned nibble);

/// Value of hex digit `c`; returns -1 for non-hex characters.
int hex_value(char c) noexcept;

/// Encodes `data` as lower-case hex, two characters per byte.
std::string hex_encode(std::span<const std::uint8_t> data);

/// Decodes a hex string into bytes. Fails on odd length or non-hex chars.
Result<std::vector<std::uint8_t>> hex_decode(std::string_view hex);

/// Encodes a 32-bit value as 8 hex chars in *target byte order* (little
/// endian), the register encoding used by the GDB remote protocol.
std::string hex_encode_u32_le(std::uint32_t value);

/// Inverse of hex_encode_u32_le.
Result<std::uint32_t> hex_decode_u32_le(std::string_view hex);

/// Reads a little-endian value of Width bytes from `bytes` (must have at
/// least Width elements).
std::uint32_t read_le(std::span<const std::uint8_t> bytes, unsigned width);

/// Writes the low `width` bytes of `value` little-endian into `bytes`.
void write_le(std::span<std::uint8_t> bytes, unsigned width, std::uint32_t value);

}  // namespace nisc::util
