#include "util/checksum.hpp"

namespace nisc::util {

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>(data[i]) | (static_cast<std::uint32_t>(data[i + 1]) << 8);
  }
  if (i < data.size()) sum += data[i];
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data) noexcept {
  std::uint16_t crc = 0xFFFF;
  for (std::uint8_t byte : data) {
    crc ^= static_cast<std::uint16_t>(byte) << 8;
    for (int bit = 0; bit < 8; ++bit) {
      if (crc & 0x8000) {
        crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021);
      } else {
        crc = static_cast<std::uint16_t>(crc << 1);
      }
    }
  }
  return crc;
}

std::uint32_t word_sum32(std::span<const std::uint8_t> data) noexcept {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 4 <= data.size(); i += 4) {
    std::uint32_t w = static_cast<std::uint32_t>(data[i]) |
                      (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                      (static_cast<std::uint32_t>(data[i + 2]) << 16) |
                      (static_cast<std::uint32_t>(data[i + 3]) << 24);
    sum += w;
  }
  std::uint32_t tail = 0;
  for (unsigned shift = 0; i < data.size(); ++i, shift += 8) {
    tail |= static_cast<std::uint32_t>(data[i]) << shift;
  }
  sum += tail;
  return sum;
}

namespace {

struct Crc32Table {
  std::uint32_t entries[256];
  Crc32Table() noexcept {
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      entries[i] = c;
    }
  }
};

const Crc32Table& crc32_table() noexcept {
  static const Crc32Table table;
  return table;
}

}  // namespace

std::uint32_t crc32_init() noexcept { return 0xFFFFFFFFu; }

std::uint32_t crc32_update(std::uint32_t state, std::span<const std::uint8_t> data) noexcept {
  const Crc32Table& table = crc32_table();
  for (std::uint8_t byte : data) state = table.entries[(state ^ byte) & 0xFF] ^ (state >> 8);
  return state;
}

std::uint32_t crc32_final(std::uint32_t state) noexcept { return state ^ 0xFFFFFFFFu; }

std::uint32_t crc32(std::span<const std::uint8_t> data) noexcept {
  return crc32_final(crc32_update(crc32_init(), data));
}

}  // namespace nisc::util
