#include "util/checksum.hpp"

namespace nisc::util {

std::uint16_t internet_checksum(std::span<const std::uint8_t> data) noexcept {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 1 < data.size(); i += 2) {
    sum += static_cast<std::uint32_t>(data[i]) | (static_cast<std::uint32_t>(data[i + 1]) << 8);
  }
  if (i < data.size()) sum += data[i];
  while (sum >> 16) sum = (sum & 0xFFFF) + (sum >> 16);
  return static_cast<std::uint16_t>(~sum);
}

std::uint16_t crc16_ccitt(std::span<const std::uint8_t> data) noexcept {
  std::uint16_t crc = 0xFFFF;
  for (std::uint8_t byte : data) {
    crc ^= static_cast<std::uint16_t>(byte) << 8;
    for (int bit = 0; bit < 8; ++bit) {
      if (crc & 0x8000) {
        crc = static_cast<std::uint16_t>((crc << 1) ^ 0x1021);
      } else {
        crc = static_cast<std::uint16_t>(crc << 1);
      }
    }
  }
  return crc;
}

std::uint32_t word_sum32(std::span<const std::uint8_t> data) noexcept {
  std::uint32_t sum = 0;
  std::size_t i = 0;
  for (; i + 4 <= data.size(); i += 4) {
    std::uint32_t w = static_cast<std::uint32_t>(data[i]) |
                      (static_cast<std::uint32_t>(data[i + 1]) << 8) |
                      (static_cast<std::uint32_t>(data[i + 2]) << 16) |
                      (static_cast<std::uint32_t>(data[i + 3]) << 24);
    sum += w;
  }
  std::uint32_t tail = 0;
  for (unsigned shift = 0; i < data.size(); ++i, shift += 8) {
    tail |= static_cast<std::uint32_t>(data[i]) << shift;
  }
  sum += tail;
  return sum;
}

}  // namespace nisc::util
