// Abstract domains for the flow analyzer: a value-range interval domain, an
// initialization (taint) lattice, and the must-write lattice the
// binding-liveness rule uses — all packed into one register-file state so a
// single forward pass serves every NL3xx rule.
//
// Register values are tracked as intervals, optionally relative to the
// symbolic initial stack pointer (sp0): `value = (base == Sp ? sp0 : 0) +
// range`. That keeps push/pop arithmetic exact without knowing where the
// environment put the stack, which is what the stack-balance rule needs; it
// also lets sp-relative accesses opt out of the out-of-bounds check instead
// of drowning it in false positives. The initialization lattice
// (Init < Mixed > Uninit) records assignment, not data validity: any write
// initializes, so one uninitialized read does not cascade. `written` is a
// must-lattice (bitwise AND on join) over the tracked variable addresses of
// iss_in pragma bindings.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/cfg.hpp"
#include "iss/isa.hpp"

namespace nisc::analysis {

/// A closed interval of 32-bit values, kept in int64 so sp-relative offsets
/// stay signed and address arithmetic cannot overflow.
struct Interval {
  static constexpr std::int64_t kMin = -(std::int64_t(1) << 31);
  static constexpr std::int64_t kMax = (std::int64_t(1) << 32) - 1;

  std::int64_t lo = kMin;
  std::int64_t hi = kMax;

  static Interval top() noexcept { return {kMin, kMax}; }
  static Interval exact(std::int64_t v) noexcept { return {v, v}; }
  static Interval bounded(std::int64_t lo, std::int64_t hi) noexcept {
    if (lo < kMin || hi > kMax || lo > hi) return top();
    return {lo, hi};
  }

  bool is_top() const noexcept { return lo <= kMin && hi >= kMax; }
  bool is_exact() const noexcept { return lo == hi; }
  bool contains(std::int64_t v) const noexcept { return lo <= v && v <= hi; }

  Interval plus(const Interval& o) const noexcept {
    if (is_top() || o.is_top()) return top();
    return bounded(lo + o.lo, hi + o.hi);
  }
  Interval minus(const Interval& o) const noexcept {
    if (is_top() || o.is_top()) return top();
    return bounded(lo - o.hi, hi - o.lo);
  }

  /// Least upper bound; returns true when `*this` grew.
  bool join(const Interval& o) noexcept;
  /// Widening: bounds that grew jump straight to the lattice extremes.
  bool widen(const Interval& o) noexcept;

  bool operator==(const Interval&) const = default;
};

/// Abstract value of one register.
struct AbsValue {
  enum class Base : std::uint8_t { None, Sp };
  enum class Init : std::uint8_t { Init, Uninit, Mixed };

  Interval range = Interval::top();
  Base base = Base::None;
  Init init = Init::Uninit;

  static AbsValue uninit() noexcept { return {Interval::top(), Base::None, Init::Uninit}; }
  static AbsValue top_init() noexcept { return {Interval::top(), Base::None, Init::Init}; }
  static AbsValue exact(std::uint32_t v) noexcept {
    return {Interval::exact(v), Base::None, Init::Init};
  }
  /// The environment-provided stack pointer: sp0 + 0.
  static AbsValue sp_entry() noexcept { return {Interval::exact(0), Base::Sp, Init::Init}; }

  bool maybe_uninit() const noexcept { return init != Init::Init; }
  bool is_exact_addr() const noexcept { return base == Base::None && range.is_exact(); }

  bool join(const AbsValue& o) noexcept;
  bool widen(const AbsValue& o) noexcept;

  bool operator==(const AbsValue&) const = default;
};

/// The dataflow state: one AbsValue per architectural register plus the
/// must-written bitset over tracked variable addresses.
struct RegState {
  std::array<AbsValue, 32> regs;
  std::uint64_t written = ~std::uint64_t(0);  ///< must-lattice top: AND-joined

  bool operator==(const RegState&) const = default;
};

/// Dataflow domain over RegState; plugs into run_forward().
class RegDomain {
 public:
  /// `tracked` lists variable addresses whose must-written bits the state
  /// carries (at most 64; extras are ignored).
  explicit RegDomain(std::vector<std::uint32_t> tracked = {});

  using State = RegState;
  State boundary() const;
  bool join(State& into, const State& from) const;
  bool widen(State& into, const State& from) const;
  void transfer(const CfgInstr& instr, State& state) const;

  /// Index of `addr` in the tracked list, -1 when untracked.
  int tracked_index(std::uint32_t addr) const noexcept;
  std::size_t tracked_count() const noexcept { return tracked_.size(); }

  /// Architectural source registers `instr` reads (ecall reads a7).
  static std::vector<std::uint8_t> regs_read(const iss::Instr& instr);

  /// Abstract effective address rs1 + imm of a load or store.
  static AbsValue effective_address(const State& state, const iss::Instr& instr);

 private:
  std::vector<std::uint32_t> tracked_;
};

}  // namespace nisc::analysis
