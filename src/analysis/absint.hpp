// Abstract domains for the flow analyzer: a value-range interval domain, an
// initialization (taint) lattice, and the must-write lattice the
// binding-liveness rule uses — all packed into one register-file state so a
// single forward pass serves every NL3xx rule.
//
// Register values are tracked as intervals, optionally relative to the
// symbolic *entry value* of a register: `value = entry(entry_reg) + range`.
// The whole-program pass only seeds the stack pointer symbolically
// (`Base::Sp` is an alias for `Base::Entry` with `entry_reg == 2`), which
// keeps push/pop arithmetic exact without knowing where the environment put
// the stack; the interprocedural summary pass (analysis/summary.hpp) seeds
// *every* register symbolically, so a function's exit state reads as a
// function of its entry state — that is what makes callee summaries
// composable at call sites. The initialization lattice
// (Init < Mixed > Uninit) records assignment, not data validity: any write
// initializes, so one uninitialized read does not cascade. `written` is a
// must-lattice (bitwise AND on join) over the tracked variable addresses of
// iss_in pragma bindings.
//
// The state also carries a small frame-slot map: word stores through an
// exactly-known address record the stored value, and a later exact-match
// word load restores it. This is what lets the analyzer see through the
// standard prologue/epilogue spill/reload of callee-saved registers (the
// NL314 rule would otherwise flag every correct function). The model
// deliberately assumes frame slots are not aliased through unrelated
// pointers — a wrong assumption can only *hide* a defect, never invent one,
// which is the right failure direction for a zero-false-positive linter.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "analysis/cfg.hpp"
#include "iss/isa.hpp"

namespace nisc::analysis {

/// A closed interval of 32-bit values, kept in int64 so sp-relative offsets
/// stay signed and address arithmetic cannot overflow.
struct Interval {
  static constexpr std::int64_t kMin = -(std::int64_t(1) << 31);
  static constexpr std::int64_t kMax = (std::int64_t(1) << 32) - 1;

  std::int64_t lo = kMin;
  std::int64_t hi = kMax;

  static Interval top() noexcept { return {kMin, kMax}; }
  static Interval exact(std::int64_t v) noexcept { return {v, v}; }
  static Interval bounded(std::int64_t lo, std::int64_t hi) noexcept {
    if (lo < kMin || hi > kMax || lo > hi) return top();
    return {lo, hi};
  }

  bool is_top() const noexcept { return lo <= kMin && hi >= kMax; }
  bool is_exact() const noexcept { return lo == hi; }
  bool contains(std::int64_t v) const noexcept { return lo <= v && v <= hi; }

  Interval plus(const Interval& o) const noexcept {
    if (is_top() || o.is_top()) return top();
    return bounded(lo + o.lo, hi + o.hi);
  }
  Interval minus(const Interval& o) const noexcept {
    if (is_top() || o.is_top()) return top();
    return bounded(lo - o.hi, hi - o.lo);
  }

  /// Least upper bound; returns true when `*this` grew.
  bool join(const Interval& o) noexcept;
  /// Widening: bounds that grew jump straight to the lattice extremes.
  bool widen(const Interval& o) noexcept;
  /// Narrowing: bounds the widening threw to an extreme are pulled back to
  /// the recomputed bound; finite bounds are kept (no oscillation).
  bool narrow(const Interval& o) noexcept;

  bool operator==(const Interval&) const = default;
};

/// Abstract value of one register.
struct AbsValue {
  /// `Entry` means "relative to the entry value of register `entry_reg`";
  /// `Sp` is the historical alias for the sp-relative case (entry_reg == 2).
  enum class Base : std::uint8_t { None, Entry, Sp = Entry };
  enum class Init : std::uint8_t { Init, Uninit, Mixed };

  Interval range = Interval::top();
  Base base = Base::None;
  Init init = Init::Uninit;
  std::uint8_t entry_reg = 2;  ///< meaningful only when base == Entry

  static AbsValue uninit() noexcept { return {Interval::top(), Base::None, Init::Uninit}; }
  static AbsValue top_init() noexcept { return {Interval::top(), Base::None, Init::Init}; }
  static AbsValue exact(std::uint32_t v) noexcept {
    return {Interval::exact(v), Base::None, Init::Init};
  }
  /// The environment-provided stack pointer: sp0 + 0.
  static AbsValue sp_entry() noexcept { return {Interval::exact(0), Base::Sp, Init::Init, 2}; }
  /// The symbolic entry value of register `r` (summary-pass boundary).
  static AbsValue entry(std::uint8_t r, Init init = Init::Uninit) noexcept {
    return {Interval::exact(0), Base::Entry, init, r};
  }

  bool maybe_uninit() const noexcept { return init != Init::Init; }
  bool is_exact_addr() const noexcept { return base == Base::None && range.is_exact(); }
  /// Relative to the symbolic entry stack pointer.
  bool is_sp_rel() const noexcept { return base == Base::Entry && entry_reg == 2; }
  /// Relative to the symbolic entry value of register `r`.
  bool is_entry_rel(std::uint8_t r) const noexcept {
    return base == Base::Entry && entry_reg == r;
  }
  /// Exactly the unmodified entry value of register `r`.
  bool is_entry_identity(std::uint8_t r) const noexcept {
    return is_entry_rel(r) && range == Interval::exact(0);
  }
  /// True when the two values share a base symbol (None, or same entry reg).
  bool same_base(const AbsValue& o) const noexcept {
    return base == o.base && (base == Base::None || entry_reg == o.entry_reg);
  }

  bool join(const AbsValue& o) noexcept;
  bool widen(const AbsValue& o) noexcept;
  /// Descending refinement from a recomputed (sound) value: pulls widened
  /// interval bounds back in, recovers a base symbol the widening smashed
  /// to unbounded top, and resolves a Mixed init to the recomputed verdict.
  bool narrow(const AbsValue& o) noexcept;

  bool operator==(const AbsValue& o) const noexcept {
    return same_base(o) && range == o.range && init == o.init;
  }
};

/// Key of one tracked frame slot: the address's base symbol (Base::None
/// slots use entry_reg 0) and the exact offset from it.
struct FrameKey {
  AbsValue::Base base = AbsValue::Base::None;
  std::uint8_t entry_reg = 0;
  std::int64_t offset = 0;

  auto operator<=>(const FrameKey&) const = default;
};

/// Frame-slot key for an exactly-offset address; nullopt when the address
/// is not exact relative to its base symbol.
std::optional<FrameKey> frame_key_of(const AbsValue& addr) noexcept;

/// The dataflow state: one AbsValue per architectural register plus the
/// must-written bitset over tracked variable addresses and the frame-slot
/// map for exact word spills/reloads.
struct RegState {
  std::array<AbsValue, 32> regs;
  std::uint64_t written = ~std::uint64_t(0);  ///< must-lattice top: AND-joined
  std::map<FrameKey, AbsValue> frame;         ///< exact word stores, intersected on join
  /// Bottom marker: the program point is unreachable (e.g. after a call to a
  /// function that provably never returns). Joins ignore dead states and
  /// checks must not report from them.
  bool dead = false;

  bool operator==(const RegState&) const = default;
};

/// Dataflow domain over RegState; plugs into run_forward().
class RegDomain {
 public:
  /// `tracked` lists variable addresses whose must-written bits the state
  /// carries (at most 64; extras are ignored).
  explicit RegDomain(std::vector<std::uint32_t> tracked = {});

  using State = RegState;
  State boundary() const;
  bool join(State& into, const State& from) const;
  bool widen(State& into, const State& from) const;
  /// Descending sweep step: `from` is the state recomputed from (already
  /// sound) narrowed predecessors, so register values narrow pointwise and
  /// the must-components (written bits, frame slots) adopt the recomputed,
  /// strictly-better information.
  bool narrow(State& into, const State& from) const;
  void transfer(const CfgInstr& instr, State& state) const;

  /// Index of `addr` in the tracked list, -1 when untracked.
  int tracked_index(std::uint32_t addr) const noexcept;
  std::size_t tracked_count() const noexcept { return tracked_.size(); }
  const std::vector<std::uint32_t>& tracked() const noexcept { return tracked_; }

  /// Architectural source registers `instr` reads (ecall reads a7).
  static std::vector<std::uint8_t> regs_read(const iss::Instr& instr);

  /// Like regs_read, but excludes the *data* operand of a store (rs2 unless
  /// it doubles as the address base): spilling an uninitialized register to
  /// the stack is the canonical prologue idiom, not a use of garbage, so
  /// the uninitialized-read rules (NL302/NL311) key off this set.
  static std::vector<std::uint8_t> regs_read_values(const iss::Instr& instr);

  /// Abstract effective address rs1 + imm of a load or store.
  static AbsValue effective_address(const State& state, const iss::Instr& instr);

 private:
  std::vector<std::uint32_t> tracked_;
};

}  // namespace nisc::analysis
