#include "analysis/cfg.hpp"

#include <algorithm>
#include <set>

namespace nisc::analysis {
namespace {

/// Control-transfer class of one decoded instruction.
enum class Term : std::uint8_t {
  None,          // falls through
  Cond,          // conditional branch
  Jump,          // jal rd=x0
  Call,          // jal rd!=x0
  Ret,           // jalr x0, ra, 0
  Indirect,      // jalr x0 through any other register (jr / jump table)
  IndirectCall,  // jalr with a link register
  Halt,          // ebreak or undecodable word: execution stops
};

Term classify(const iss::Instr& instr) {
  using iss::Op;
  switch (instr.op) {
    case Op::Beq:
    case Op::Bne:
    case Op::Blt:
    case Op::Bge:
    case Op::Bltu:
    case Op::Bgeu: return Term::Cond;
    case Op::Jal: return instr.rd == 0 ? Term::Jump : Term::Call;
    case Op::Jalr:
      if (instr.rd != 0) return Term::IndirectCall;
      if (instr.rs1 == 1 && instr.imm == 0) return Term::Ret;
      return Term::Indirect;
    case Op::Ebreak:
    case Op::Illegal: return Term::Halt;
    default: return Term::None;
  }
}

}  // namespace

Cfg Cfg::build(const iss::Program& program) {
  Cfg cfg;
  if (program.code.empty()) return cfg;

  // Decode the code table. The assembler emits it in ascending address
  // order, one entry per instruction word.
  std::vector<CfgInstr> instrs;
  instrs.reserve(program.code.size());
  std::set<std::uint32_t> code_addrs;
  for (const iss::CodeLoc& loc : program.code) {
    std::uint64_t off = loc.addr - program.base;
    if (off + 4 > program.bytes.size()) continue;
    std::uint32_t word = static_cast<std::uint32_t>(program.bytes[off]) |
                         (static_cast<std::uint32_t>(program.bytes[off + 1]) << 8) |
                         (static_cast<std::uint32_t>(program.bytes[off + 2]) << 16) |
                         (static_cast<std::uint32_t>(program.bytes[off + 3]) << 24);
    instrs.push_back({loc.addr, iss::decode(word), loc.line});
    code_addrs.insert(loc.addr);
  }
  if (instrs.empty()) return cfg;
  auto is_code = [&](std::uint32_t addr) { return code_addrs.count(addr) > 0; };

  // Conservative indirect-jump target set: address-taken code labels, or
  // every code symbol when nothing was address-taken.
  bool has_indirect = false;
  std::set<std::uint32_t> call_target_set;
  std::set<std::uint32_t> return_sites;
  for (const CfgInstr& ci : instrs) {
    Term term = classify(ci.instr);
    if (term == Term::Indirect || term == Term::IndirectCall) has_indirect = true;
    if (term == Term::Call || term == Term::IndirectCall) {
      if (is_code(ci.addr + 4)) return_sites.insert(ci.addr + 4);
    }
    if (term == Term::Call) {
      std::uint32_t target = ci.addr + static_cast<std::uint32_t>(ci.instr.imm);
      if (is_code(target)) call_target_set.insert(target);
    }
  }
  std::set<std::uint32_t> indirect_targets;
  if (has_indirect) {
    for (std::uint32_t addr : program.address_taken) {
      if (is_code(addr)) indirect_targets.insert(addr);
    }
    if (indirect_targets.empty()) {
      for (const auto& [name, addr] : program.symbols) {
        if (is_code(addr)) indirect_targets.insert(addr);
      }
    }
  }

  // Leaders: the entry, every labeled / address-taken code address, every
  // control-transfer target, the instruction after every transfer, and any
  // address discontinuity (.org gaps).
  std::set<std::uint32_t> leaders;
  leaders.insert(instrs.front().addr);
  if (is_code(program.entry)) leaders.insert(program.entry);
  for (const auto& [name, addr] : program.symbols) {
    if (is_code(addr)) leaders.insert(addr);
  }
  for (std::uint32_t addr : program.address_taken) {
    if (is_code(addr)) leaders.insert(addr);
  }
  for (std::uint32_t addr : return_sites) leaders.insert(addr);
  for (std::uint32_t addr : indirect_targets) leaders.insert(addr);
  for (const CfgInstr& ci : instrs) {
    Term term = classify(ci.instr);
    if (term == Term::Cond || term == Term::Jump || term == Term::Call) {
      std::uint32_t target = ci.addr + static_cast<std::uint32_t>(ci.instr.imm);
      if (is_code(target)) leaders.insert(target);
    }
    if (term != Term::None && is_code(ci.addr + 4)) leaders.insert(ci.addr + 4);
  }

  // Carve instructions into blocks.
  for (std::size_t i = 0; i < instrs.size(); ++i) {
    bool discontinuous = i > 0 && instrs[i].addr != instrs[i - 1].addr + 4;
    if (i == 0 || discontinuous || leaders.count(instrs[i].addr) > 0) {
      cfg.blocks_.push_back(BasicBlock{instrs[i].addr, {}, {}, {}});
    }
    cfg.blocks_.back().instrs.push_back(instrs[i]);
    cfg.block_of_instr_[instrs[i].addr] = cfg.blocks_.size() - 1;
  }

  // Edges from each block's last instruction. Return edges are deferred:
  // they need the intra-procedural reachability of each call target, which
  // needs the other edges in place first.
  auto add_edge = [&](std::size_t from, std::uint32_t to_addr, EdgeKind kind) {
    auto it = cfg.block_of_instr_.find(to_addr);
    if (it == cfg.block_of_instr_.end()) return;  // transfer into data: no edge
    cfg.blocks_[from].succs.push_back({it->second, kind});
    cfg.blocks_[it->second].preds.push_back({from, kind});
  };
  struct PendingCall {
    std::size_t block;                  // block whose call produced the return site
    std::uint32_t return_site;          // call addr + 4
    std::vector<std::uint32_t> targets; // possible callee entries
  };
  std::vector<PendingCall> pending_calls;
  for (std::size_t b = 0; b < cfg.blocks_.size(); ++b) {
    const CfgInstr& last = cfg.blocks_[b].instrs.back();
    std::uint32_t target = last.addr + static_cast<std::uint32_t>(last.instr.imm);
    switch (classify(last.instr)) {
      case Term::None:
        add_edge(b, last.addr + 4, EdgeKind::FallThrough);
        break;
      case Term::Cond:
        add_edge(b, target, EdgeKind::Branch);
        add_edge(b, last.addr + 4, EdgeKind::FallThrough);
        break;
      case Term::Jump:
        add_edge(b, target, EdgeKind::Jump);
        break;
      case Term::Call:
        add_edge(b, target, EdgeKind::Call);
        add_edge(b, last.addr + 4, EdgeKind::CallFall);
        pending_calls.push_back({b, last.addr + 4, {target}});
        break;
      case Term::Ret:
        break;  // paired with its calls below
      case Term::Indirect:
        for (std::uint32_t t : indirect_targets) add_edge(b, t, EdgeKind::Indirect);
        break;
      case Term::IndirectCall:
        for (std::uint32_t t : indirect_targets) {
          add_edge(b, t, EdgeKind::Call);
          call_target_set.insert(t);
        }
        add_edge(b, last.addr + 4, EdgeKind::CallFall);
        pending_calls.push_back({b, last.addr + 4,
                                 {indirect_targets.begin(), indirect_targets.end()}});
        break;
      case Term::Halt: break;
    }
  }

  // Call-site-paired Return edges: a call's return site only receives
  // Return edges from the ret blocks of its own callee body — the blocks
  // reachable from the callee entry over intra-procedural edges. The body
  // walk per target is memoized, so the cost is one BFS per distinct callee.
  std::map<std::uint32_t, std::vector<std::size_t>> ret_blocks_of_target;
  auto ret_blocks_of = [&](std::uint32_t target) -> const std::vector<std::size_t>& {
    auto it = ret_blocks_of_target.find(target);
    if (it != ret_blocks_of_target.end()) return it->second;
    std::vector<std::size_t>& rets = ret_blocks_of_target[target];
    auto entry_it = cfg.block_of_instr_.find(target);
    if (entry_it == cfg.block_of_instr_.end()) return rets;  // call into data
    std::vector<bool> seen(cfg.blocks_.size(), false);
    std::vector<std::size_t> work{entry_it->second};
    seen[entry_it->second] = true;
    while (!work.empty()) {
      std::size_t b = work.back();
      work.pop_back();
      if (classify(cfg.blocks_[b].instrs.back().instr) == Term::Ret) rets.push_back(b);
      for (const CfgEdge& e : cfg.blocks_[b].succs) {
        if (!(edge_bit(e.kind) & kIntraprocEdges)) continue;
        if (!seen[e.block]) {
          seen[e.block] = true;
          work.push_back(e.block);
        }
      }
    }
    return rets;
  };
  for (const PendingCall& call : pending_calls) {
    std::set<std::size_t> sources;  // dedupe: two targets can share a ret block
    for (std::uint32_t target : call.targets) {
      for (std::size_t ret_block : ret_blocks_of(target)) sources.insert(ret_block);
    }
    for (std::size_t ret_block : sources) {
      add_edge(ret_block, call.return_site, EdgeKind::Return);
    }
  }

  cfg.entry_ = cfg.block_at(program.entry);
  cfg.call_targets_.assign(call_target_set.begin(), call_target_set.end());
  return cfg;
}

std::size_t Cfg::block_at(std::uint32_t addr) const noexcept {
  auto it = block_of_instr_.find(addr);
  return it == block_of_instr_.end() ? npos : it->second;
}

const CfgInstr* Cfg::instr_at(std::uint32_t addr) const noexcept {
  std::size_t b = block_at(addr);
  if (b == npos) return nullptr;
  for (const CfgInstr& ci : blocks_[b].instrs) {
    if (ci.addr == addr) return &ci;
  }
  return nullptr;
}

}  // namespace nisc::analysis
