#include "analysis/elab.hpp"

#include "sysc/iss_port.hpp"
#include "sysc/sc_module.hpp"
#include "sysc/sc_port.hpp"

namespace nisc::analysis {

std::size_t check_elaboration(const sysc::sc_simcontext& ctx, DiagEngine& diags) {
  std::size_t before = diags.diagnostics().size();

  for (const sysc::sc_object* obj : ctx.objects()) {
    if (const auto* port = dynamic_cast<const sysc::sc_port_base*>(obj)) {
      if (!port->bound()) {
        diags.report(Severity::Error, "elab.unbound-port",
                     std::string(port->port_kind()) + " '" + port->name() +
                         "' is not bound to a signal; elaboration would fail");
      }
    }
  }

  for (const sysc::sc_process* process : ctx.process_list()) {
    if (process->kind() != sysc::process_kind::IssMethod) continue;
    std::size_t sensitivity = process->static_sensitivity_count();
    // Deferred entries (sensitive << port.pos() before binding) resolve at
    // elaboration; count them as sensitivity-to-be.
    for (const sysc::sc_object* obj : ctx.objects()) {
      if (const auto* module = dynamic_cast<const sysc::sc_module*>(obj)) {
        sensitivity += module->pending_sensitivity_count(process);
      }
    }
    if (sensitivity == 0) {
      diags.report(Severity::Warning, "elab.iss-process-not-sensitized",
                   "iss_process '" + process->name() +
                       "' has no sensitivity; ISS traffic can never trigger it");
    }
  }

  return diags.diagnostics().size() - before;
}

std::size_t check_iss_bindings(const sysc::sc_simcontext& ctx,
                               std::span<const cosim::BreakpointBinding> bindings,
                               DiagEngine& diags) {
  std::size_t before = diags.diagnostics().size();

  for (const sysc::iss_port_base* port : ctx.iss_ports()) {
    bool bound = false;
    for (const cosim::BreakpointBinding& b : bindings) {
      if (b.port == port->name()) bound = true;
    }
    if (!bound) {
      diags.report(Severity::Warning, "elab.iss-port-unbound",
                   std::string(port->is_input() ? "iss_in" : "iss_out") + " port '" +
                       port->name() + "' has no breakpoint binding; no guest pragma routes "
                       "data through it");
    }
  }

  for (const cosim::BreakpointBinding& b : bindings) {
    const sysc::iss_port_base* port = ctx.find_iss_port(b.port);
    if (port == nullptr) {
      diags.report(Severity::Error, "elab.binding-unknown-port",
                   "breakpoint binding for variable '" + b.variable + "' names iss port '" +
                       b.port + "' which does not exist in the design");
      continue;
    }
    const bool needs_input = b.direction == cosim::BindDirection::IssToSc;
    if (needs_input != port->is_input()) {
      diags.report(Severity::Error, "elab.binding-direction",
                   "binding for variable '" + b.variable + "' is " +
                       (needs_input ? "iss_in" : "iss_out") + " but port '" + b.port +
                       "' is an " + (port->is_input() ? "iss_in" : "iss_out") + " port");
    }
  }

  return diags.diagnostics().size() - before;
}

}  // namespace nisc::analysis
