// Bottom-up, context-insensitive function summaries over the abstract
// domain of analysis/absint.hpp.
//
// Each function is analyzed once on a fully *symbolic* boundary — every
// register holds the opaque entry value of itself (AbsValue::entry) — so
// the fixpoint describes the function as a transformer of its entry state:
//
//   * exit_regs  — the register file at return, entry-relative where
//                  possible ("a0 := entry(a0) + 4", "s1 := 0", ...)
//   * sp_delta   — exact stack-pointer displacement at return, when provable
//   * entry_reads — entry registers whose value is consumed before being
//                  overwritten (value-based: reads of any Entry(k)-derived
//                  value count, so a value copied through a temporary is
//                  still attributed to the register the caller must set)
//   * mem        — loads/stores whose address is entry-relative, i.e. the
//                  function's memory footprint as a function of its
//                  arguments
//   * must_written — tracked pragma-variable bits definitely written
//
// Summaries compose: a call site inside a function folds the callee's
// (already computed) summary into the symbolic state, so entry_reads and
// mem propagate transitively through call chains. Strongly connected
// components of the call graph are iterated to a fixpoint; an SCC that
// fails to converge within kMaxSccRounds collapses to the havoc summary.
//
// The havoc summary is the deliberate model of an *unresolved* call
// (indirect with no address-taken labels, or a call into data): every
// register except x0/sp becomes unknown-but-initialized, the frame-slot map
// is dropped, and no read/footprint/write claims are made. sp is assumed
// ABI-balanced — this can hide a defect behind an unresolved call but can
// never invent one, matching the analyzer's zero-false-positive contract
// (sp-relative addresses are never flagged out-of-map, so a wrong balance
// assumption cannot surface as a bogus NL303/NL312).
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "analysis/absint.hpp"
#include "analysis/callgraph.hpp"
#include "analysis/cfg.hpp"

namespace nisc::analysis {

/// Evidence that a function consumes the entry value of a register.
struct EntryRead {
  std::uint8_t reg = 0;    ///< entry register whose value is consumed
  std::uint32_t addr = 0;  ///< first instruction that consumes it
  int line = 0;

  bool operator==(const EntryRead&) const = default;
};

/// One entry-relative memory access: address = entry(entry_reg) + offset.
struct MemAccess {
  std::uint8_t entry_reg = 0;
  Interval offset;
  std::uint32_t size = 4;
  bool is_store = false;
  std::uint32_t addr = 0;  ///< instruction evidence
  int line = 0;

  bool operator==(const MemAccess&) const = default;
};

/// Most entry-relative accesses a summary records before truncating.
constexpr std::size_t kMaxSummaryMem = 32;

struct FunctionSummary {
  bool havoc = false;        ///< unresolved target: assume nothing but ABI sp
  bool reached_ret = false;  ///< false: the function provably never returns
  std::array<AbsValue, 32> exit_regs{};
  std::optional<std::int64_t> sp_delta;
  std::vector<EntryRead> entry_reads;  ///< at most one entry per register
  std::vector<MemAccess> mem;
  bool mem_truncated = false;  ///< footprint overflowed kMaxSummaryMem
  std::uint64_t must_written = 0;
  std::vector<std::pair<std::uint32_t, int>> rets;  ///< reachable ret (addr, line)

  static FunctionSummary make_havoc();

  /// Entry value of `reg` consumed on some path? (linear scan; ≤31 entries)
  const EntryRead* read_of(std::uint8_t reg) const noexcept;

  bool operator==(const FunctionSummary&) const = default;
};

/// Folds `summary` into a caller state sitting just after the call
/// instruction: exit registers are translated from the callee's
/// entry-relative terms into the caller's own terms (the caller's registers
/// at the call *are* the callee's entry values), must-written bits are
/// imported, and frame slots the callee provably stores over are dropped.
/// A no-return summary marks the state dead.
void apply_summary(const FunctionSummary& summary, RegState& state);

/// The symbolic boundary the summary fixpoint starts from: regs[r] =
/// entry(r) for every r, x0 pinned to zero, nothing written.
RegState symbolic_boundary();

/// Domain for per-function flows that step over calls via their summaries:
/// wraps RegDomain, substituting a configurable boundary and folding the
/// call-site summary into the state right after each call instruction.
class CallAwareDomain {
 public:
  using State = RegState;

  CallAwareDomain(RegDomain inner, State boundary,
                  std::map<std::uint32_t, const FunctionSummary*> site_summaries)
      : inner_(std::move(inner)),
        boundary_(std::move(boundary)),
        site_summaries_(std::move(site_summaries)) {}

  State boundary() const { return boundary_; }
  bool join(State& into, const State& from) const { return inner_.join(into, from); }
  bool widen(State& into, const State& from) const { return inner_.widen(into, from); }
  void transfer(const CfgInstr& instr, State& state) const {
    inner_.transfer(instr, state);
    auto it = site_summaries_.find(instr.addr);
    if (it != site_summaries_.end()) apply_summary(*it->second, state);
  }

  const RegDomain& inner() const noexcept { return inner_; }
  const FunctionSummary* summary_at(std::uint32_t addr) const noexcept {
    auto it = site_summaries_.find(addr);
    return it == site_summaries_.end() ? nullptr : it->second;
  }

 private:
  RegDomain inner_;
  State boundary_;
  std::map<std::uint32_t, const FunctionSummary*> site_summaries_;
};

/// SCC iterations before a recursive component is forced to havoc.
constexpr int kMaxSccRounds = 16;

class SummaryTable {
 public:
  /// Computes a summary for every CallGraph function, bottom-up over SCCs.
  /// `tracked` is the pragma-variable address list (see RegDomain).
  static SummaryTable compute(const Cfg& cfg, const CallGraph& cg,
                              std::vector<std::uint32_t> tracked);

  const FunctionSummary& of(std::size_t fn) const { return summaries_.at(fn); }
  const std::vector<FunctionSummary>& all() const noexcept { return summaries_; }

  /// Summary a call site folds in: the single resolved callee's, or havoc
  /// for unresolved / multi-target sites.
  const FunctionSummary& at_site(const CallGraph& cg, std::size_t site) const;

  /// addr-of-call -> summary map for every call site of `fn`, ready for
  /// CallAwareDomain.
  std::map<std::uint32_t, const FunctionSummary*> site_summaries(const CallGraph& cg,
                                                                 std::size_t fn) const;

 private:
  std::vector<FunctionSummary> summaries_;
  FunctionSummary havoc_ = FunctionSummary::make_havoc();
};

/// JSON fragment `"functions":[...]` describing every summary (dumped under
/// the cosim_lint --json "summaries" member; schema documented in
/// DESIGN.md §8.5).
std::string render_summaries_json(const CallGraph& cg, const SummaryTable& table);

}  // namespace nisc::analysis
