// Bottom-up, context-sensitive function summaries over the abstract domain
// of analysis/absint.hpp, cloned per k-limited call string.
//
// Each clone (function, call-site suffix) is analyzed on a fully *symbolic*
// boundary — every register holds the opaque entry value of itself
// (AbsValue::entry) — so the fixpoint describes the function as a
// transformer of its entry state:
//
//   * exit_regs  — the register file at return, entry-relative where
//                  possible ("a0 := entry(a0) + 4", "s1 := 0", ...)
//   * sp_delta   — exact stack-pointer displacement at return, when provable
//   * entry_reads — entry registers whose value is consumed before being
//                  overwritten (value-based: reads of any Entry(k)-derived
//                  value count, so a value copied through a temporary is
//                  still attributed to the register the caller must set)
//   * mem        — loads/stores whose address is entry-relative, i.e. the
//                  function's memory footprint as a function of its
//                  arguments
//   * must_written — tracked pragma-variable bits definitely written
//
// Summaries compose: a call site inside a function folds the callee's
// (already computed) summary into the symbolic state, resolved under the
// caller clone's own context — the callee clone keyed by pushing the call
// site onto the caller's call string, truncated to the last k sites
// (classic k-limited call-strings). k = 0 degenerates to one summary per
// function with every caller joined (the pre-context behavior); k = 1 gives
// one clone per immediate call site.
//
// Strongly connected components of the call graph iterate to a fixpoint in
// three phases: a few plain rounds, then FunctionSummary::widen_from
// acceleration (interval bounds jump to the lattice extremes, footprints
// collapse per (register, size, kind) group) until the ascending chain
// stops, then a bounded descending (narrowing) phase that re-runs the
// summary computation from the widened post-fixpoint to pull overshot
// bounds back in. Recursive helpers therefore get sound *finite* summaries
// — exact sp_delta, bounded intervals — instead of the old havoc collapse;
// the havoc fallback survives only as a backstop that SummaryStats counts
// (and CI keeps at zero across the committed clean guests).
//
// The havoc summary remains the deliberate model of an *unresolved* call
// (indirect with no address-taken labels, or a call into data): every
// register except x0/sp becomes unknown-but-initialized, the frame-slot map
// is dropped, and no read/footprint/write claims are made. A *resolved*
// indirect site with several possible targets no longer havocs: the targets'
// summaries are joined with multi-target semantics (exit states joined,
// footprints unioned, entry-read and must-write claims intersected — a
// definite claim must hold whichever target the jalr picks). sp is assumed
// ABI-balanced under havoc — this can hide a defect behind an unresolved
// call but can never invent one, matching the analyzer's
// zero-false-positive contract.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "analysis/absint.hpp"
#include "analysis/callgraph.hpp"
#include "analysis/cfg.hpp"

namespace nisc::analysis {

/// A k-limited call-string suffix: CallGraph::sites() indices, outermost
/// call first, the site that entered the function last. Empty = the root
/// context (program entry, or every caller joined when k == 0).
using Context = std::vector<std::size_t>;

/// `ctx` extended by call site `site`, truncated to the last `k` entries.
Context context_push(const Context& ctx, std::size_t site, std::size_t k);

/// Human-readable call-string: "line 4 > line 12" (empty for the root).
std::string context_label(const CallGraph& cg, const Context& ctx);

/// Evidence that a function consumes the entry value of a register.
struct EntryRead {
  std::uint8_t reg = 0;    ///< entry register whose value is consumed
  std::uint32_t addr = 0;  ///< first instruction that consumes it
  int line = 0;

  bool operator==(const EntryRead&) const = default;
};

/// One entry-relative memory access: address = entry(entry_reg) + offset.
struct MemAccess {
  std::uint8_t entry_reg = 0;
  Interval offset;
  std::uint32_t size = 4;
  bool is_store = false;
  std::uint32_t addr = 0;  ///< instruction evidence
  int line = 0;

  bool operator==(const MemAccess&) const = default;
};

/// Most entry-relative accesses a summary records before truncating.
constexpr std::size_t kMaxSummaryMem = 32;

struct FunctionSummary {
  bool havoc = false;        ///< unresolved target: assume nothing but ABI sp
  bool reached_ret = false;  ///< false: the function provably never returns
  std::array<AbsValue, 32> exit_regs{};
  std::optional<std::int64_t> sp_delta;
  std::vector<EntryRead> entry_reads;  ///< at most one entry per register
  std::vector<MemAccess> mem;
  bool mem_truncated = false;  ///< footprint overflowed kMaxSummaryMem
  std::uint64_t must_written = 0;
  std::vector<std::pair<std::uint32_t, int>> rets;  ///< reachable ret (addr, line)

  static FunctionSummary make_havoc();

  /// Entry value of `reg` consumed on some path? (linear scan; ≤31 entries)
  const EntryRead* read_of(std::uint8_t reg) const noexcept;

  /// Multi-target join: the summary of "one of these functions runs".
  /// Exit states join, footprints union; entry-read and must-write claims
  /// intersect (a definite claim must hold for EVERY possible target).
  /// A never-returning target contributes reads/footprint but no exit state.
  void join_target(const FunctionSummary& o);

  /// SCC widening accelerator: exit registers widen pointwise, the
  /// footprint collapses to one widened interval per (register, size, kind)
  /// group so a recursive frame chain cannot grow the list forever, and the
  /// read/ret sets union. Monotone, finite ascending chain.
  void widen_from(const FunctionSummary& o);

  bool operator==(const FunctionSummary&) const = default;
};

/// Folds `summary` into a caller state sitting just after the call
/// instruction: exit registers are translated from the callee's
/// entry-relative terms into the caller's own terms (the caller's registers
/// at the call *are* the callee's entry values), must-written bits are
/// imported, and frame slots the callee provably stores over are dropped.
/// A no-return summary marks the state dead.
void apply_summary(const FunctionSummary& summary, RegState& state);

/// The symbolic boundary the summary fixpoint starts from: regs[r] =
/// entry(r) for every r, x0 pinned to zero, nothing written.
RegState symbolic_boundary();

/// Domain for per-function flows that step over calls via their summaries:
/// wraps RegDomain, substituting a configurable boundary and folding the
/// call-site summary into the state right after each call instruction.
/// Summaries are held by value: multi-target sites carry a joined summary
/// that exists nowhere else.
class CallAwareDomain {
 public:
  using State = RegState;

  CallAwareDomain(RegDomain inner, State boundary,
                  std::map<std::uint32_t, FunctionSummary> site_summaries)
      : inner_(std::move(inner)),
        boundary_(std::move(boundary)),
        site_summaries_(std::move(site_summaries)) {}

  State boundary() const { return boundary_; }
  bool join(State& into, const State& from) const { return inner_.join(into, from); }
  bool widen(State& into, const State& from) const { return inner_.widen(into, from); }
  bool narrow(State& into, const State& from) const { return inner_.narrow(into, from); }
  void transfer(const CfgInstr& instr, State& state) const {
    inner_.transfer(instr, state);
    auto it = site_summaries_.find(instr.addr);
    if (it != site_summaries_.end()) apply_summary(it->second, state);
  }

  const RegDomain& inner() const noexcept { return inner_; }
  const FunctionSummary* summary_at(std::uint32_t addr) const noexcept {
    auto it = site_summaries_.find(addr);
    return it == site_summaries_.end() ? nullptr : &it->second;
  }

 private:
  RegDomain inner_;
  State boundary_;
  std::map<std::uint32_t, FunctionSummary> site_summaries_;
};

/// Plain SCC rounds before widening acceleration kicks in.
constexpr int kSccPlainRounds = 4;
/// Hard cap on SCC rounds; exceeding it havocs the SCC (backstop only —
/// widening is supposed to converge well before, and --stats counts hits).
constexpr int kMaxSccRounds = 16;
/// Bounded descending sweeps, both per-function (dataflow narrowing) and
/// per-SCC (summary recomputation from the widened post-fixpoint).
constexpr int kNarrowSweeps = 2;
/// Clone-count cap per function; call strings beyond it fold into the root
/// clone (counted by SummaryStats::clone_overflows).
constexpr std::size_t kMaxClonesPerFunction = 32;

/// Precision accounting for cosim_lint --stats.
struct SummaryStats {
  std::size_t functions = 0;             ///< CallGraph functions
  std::size_t clones = 0;                ///< materialized (function, context) clones
  std::size_t havoc_summaries = 0;       ///< clones that ended up havoc'd
  std::size_t narrowing_iterations = 0;  ///< descending sweeps executed
  std::size_t clone_overflows = 0;       ///< contexts folded into the root clone
};

class SummaryTable {
 public:
  /// Computes a summary for every (function, context) clone, bottom-up over
  /// SCCs. `tracked` is the pragma-variable address list (see RegDomain);
  /// `context_k` is the call-string depth (0 = context-insensitive).
  static SummaryTable compute(const Cfg& cfg, const CallGraph& cg,
                              std::vector<std::uint32_t> tracked, std::size_t context_k = 1);

  /// Root-context clone of `fn` (always present).
  const FunctionSummary& of(std::size_t fn) const;
  /// Clone of `fn` under `ctx`; falls back to the root clone when the exact
  /// context was never materialized (clone-cap overflow, k truncation).
  const FunctionSummary& of(std::size_t fn, const Context& ctx) const;

  /// Contexts materialized for `fn`, root context first.
  const std::vector<Context>& contexts_of(std::size_t fn) const;

  /// Summary a call site folds in under the caller clone `caller_ctx`: the
  /// join of every resolved callee's clone summary, or havoc for unresolved
  /// sites. Multi-target sites join instead of collapsing to havoc.
  FunctionSummary at_site(const CallGraph& cg, std::size_t site,
                          const Context& caller_ctx = {}) const;

  /// addr-of-call -> summary map for every call site of `fn` under `ctx`,
  /// ready for CallAwareDomain.
  std::map<std::uint32_t, FunctionSummary> site_summaries(const CallGraph& cg, std::size_t fn,
                                                          const Context& ctx = {}) const;

  const SummaryStats& stats() const noexcept { return stats_; }
  std::size_t context_k() const noexcept { return context_k_; }

 private:
  using Key = std::pair<std::size_t, Context>;
  std::map<Key, FunctionSummary> summaries_;
  std::vector<std::vector<Context>> contexts_;
  SummaryStats stats_;
  std::size_t context_k_ = 1;
};

/// JSON fragment `"context_k":K,"functions":[...]` describing every summary
/// (dumped under the cosim_lint --json "summaries" member; schema documented
/// in DESIGN.md §8.6). The root clone of each function is always emitted
/// (with "context":[]); non-root clones appear only when their summary
/// differs from the root's, carrying the call-string line list.
std::string render_summaries_json(const CallGraph& cg, const SummaryTable& table);

}  // namespace nisc::analysis
