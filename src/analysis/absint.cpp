#include "analysis/absint.hpp"

#include <algorithm>
#include <optional>

namespace nisc::analysis {
namespace {

using iss::Op;

AbsValue::Init join_init(AbsValue::Init a, AbsValue::Init b) noexcept {
  return a == b ? a : AbsValue::Init::Mixed;
}

/// Concrete evaluation of a register-register op, mirroring Cpu::execute so
/// exact abstract values stay exact (division and shift edge cases match the
/// RISC-V spec the ISS implements).
std::uint32_t eval_concrete(Op op, std::uint32_t a, std::uint32_t b) noexcept {
  switch (op) {
    case Op::Add: return a + b;
    case Op::Sub: return a - b;
    case Op::Sll: return a << (b & 31);
    case Op::Srl: return a >> (b & 31);
    case Op::Sra: return static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >> (b & 31));
    case Op::Xor: return a ^ b;
    case Op::Or: return a | b;
    case Op::And: return a & b;
    case Op::Mul: return a * b;
    case Op::Mulh:
      return static_cast<std::uint32_t>((static_cast<std::int64_t>(static_cast<std::int32_t>(a)) *
                                         static_cast<std::int64_t>(static_cast<std::int32_t>(b))) >>
                                        32);
    case Op::Mulhsu:
      return static_cast<std::uint32_t>((static_cast<std::int64_t>(static_cast<std::int32_t>(a)) *
                                         static_cast<std::int64_t>(static_cast<std::uint64_t>(b))) >>
                                        32);
    case Op::Mulhu:
      return static_cast<std::uint32_t>((static_cast<std::uint64_t>(a) * static_cast<std::uint64_t>(b)) >> 32);
    case Op::Div:
      if (b == 0) return ~0u;
      if (a == 0x80000000u && b == ~0u) return a;
      return static_cast<std::uint32_t>(static_cast<std::int32_t>(a) / static_cast<std::int32_t>(b));
    case Op::Divu: return b == 0 ? ~0u : a / b;
    case Op::Rem:
      if (b == 0) return a;
      if (a == 0x80000000u && b == ~0u) return 0;
      return static_cast<std::uint32_t>(static_cast<std::int32_t>(a) % static_cast<std::int32_t>(b));
    case Op::Remu: return b == 0 ? a : a % b;
    default: return 0;
  }
}

/// Wraps an exact base-less interval back into [0, 2^32).
AbsValue normalized(AbsValue v) noexcept {
  if (v.base == AbsValue::Base::None && v.range.is_exact()) {
    v.range = Interval::exact(static_cast<std::uint32_t>(v.range.lo));
  }
  return v;
}

/// Key-intersection with value-join: slots only survive when both paths
/// agree a word was stored there.
bool join_frames(std::map<FrameKey, AbsValue>& into, const std::map<FrameKey, AbsValue>& from) {
  bool changed = false;
  for (auto it = into.begin(); it != into.end();) {
    auto fit = from.find(it->first);
    if (fit == from.end()) {
      it = into.erase(it);
      changed = true;
    } else {
      changed = it->second.join(fit->second) || changed;
      ++it;
    }
  }
  return changed;
}

}  // namespace

std::optional<FrameKey> frame_key_of(const AbsValue& addr) noexcept {
  if (!addr.range.is_exact()) return std::nullopt;
  FrameKey key;
  key.base = addr.base;
  key.entry_reg = addr.base == AbsValue::Base::Entry ? addr.entry_reg : std::uint8_t{0};
  key.offset = addr.base == AbsValue::Base::None
                   ? static_cast<std::int64_t>(static_cast<std::uint32_t>(addr.range.lo))
                   : addr.range.lo;
  return key;
}

bool Interval::join(const Interval& o) noexcept {
  std::int64_t nlo = std::min(lo, o.lo);
  std::int64_t nhi = std::max(hi, o.hi);
  bool changed = nlo != lo || nhi != hi;
  lo = nlo;
  hi = nhi;
  return changed;
}

bool Interval::widen(const Interval& o) noexcept {
  std::int64_t nlo = o.lo < lo ? kMin : lo;
  std::int64_t nhi = o.hi > hi ? kMax : hi;
  bool changed = nlo != lo || nhi != hi;
  lo = nlo;
  hi = nhi;
  return changed;
}

bool Interval::narrow(const Interval& o) noexcept {
  bool changed = false;
  if (lo == kMin && o.lo > lo) {
    lo = o.lo;
    changed = true;
  }
  if (hi == kMax && o.hi < hi) {
    hi = o.hi;
    changed = true;
  }
  return changed;
}

bool AbsValue::join(const AbsValue& o) noexcept {
  Init ninit = join_init(init, o.init);
  bool changed = ninit != init;
  init = ninit;
  if (!same_base(o)) {
    changed = changed || base != Base::None || !range.is_top();
    base = Base::None;
    range = Interval::top();
    return changed;
  }
  return range.join(o.range) || changed;
}

bool AbsValue::widen(const AbsValue& o) noexcept {
  Init ninit = join_init(init, o.init);
  bool changed = ninit != init;
  init = ninit;
  if (!same_base(o)) {
    changed = changed || base != Base::None || !range.is_top();
    base = Base::None;
    range = Interval::top();
    return changed;
  }
  return range.widen(o.range) || changed;
}

bool AbsValue::narrow(const AbsValue& o) noexcept {
  // A base symbol the widening collapsed to unbounded top is recovered
  // wholesale from the recomputed value (the recomputation is sound, so
  // adopting it cannot under-approximate more than one descending step).
  if (base == Base::None && range.is_top() && o.base != Base::None) {
    Init old_init = init;
    *this = o;
    init = old_init == Init::Mixed ? o.init : old_init;
    return true;
  }
  bool changed = false;
  if (init == Init::Mixed && o.init != init) {
    init = o.init;
    changed = true;
  }
  if (!same_base(o)) return changed;
  return range.narrow(o.range) || changed;
}

RegDomain::RegDomain(std::vector<std::uint32_t> tracked) : tracked_(std::move(tracked)) {
  if (tracked_.size() > 64) tracked_.resize(64);
}

RegDomain::State RegDomain::boundary() const {
  State state;
  for (AbsValue& v : state.regs) v = AbsValue::uninit();
  state.regs[0] = AbsValue::exact(0);
  state.regs[2] = AbsValue::sp_entry();  // the environment provides a stack
  state.written = 0;                     // ...but has written none of the variables
  return state;
}

bool RegDomain::join(State& into, const State& from) const {
  if (from.dead) return false;  // bottom contributes nothing
  if (into.dead) {
    into = from;
    return true;
  }
  bool changed = false;
  for (std::size_t r = 0; r < into.regs.size(); ++r) {
    changed = into.regs[r].join(from.regs[r]) || changed;
  }
  std::uint64_t nwritten = into.written & from.written;
  changed = changed || nwritten != into.written;
  into.written = nwritten;
  changed = join_frames(into.frame, from.frame) || changed;
  return changed;
}

bool RegDomain::widen(State& into, const State& from) const {
  if (from.dead) return false;
  if (into.dead) {
    into = from;
    return true;
  }
  bool changed = false;
  for (std::size_t r = 0; r < into.regs.size(); ++r) {
    changed = into.regs[r].widen(from.regs[r]) || changed;
  }
  std::uint64_t nwritten = into.written & from.written;
  changed = changed || nwritten != into.written;
  into.written = nwritten;
  changed = join_frames(into.frame, from.frame) || changed;
  return changed;
}

bool RegDomain::narrow(State& into, const State& from) const {
  if (into.dead) return false;  // already bottom: nothing to refine
  if (from.dead) {
    into = from;  // recomputation proved the point unreachable
    return true;
  }
  bool changed = false;
  for (std::size_t r = 0; r < into.regs.size(); ++r) {
    changed = into.regs[r].narrow(from.regs[r]) || changed;
  }
  // Must-components: the recomputed value is derived from sound (narrowed)
  // inputs, so it is at least as precise — adopt it.
  if (into.written != from.written) {
    into.written = from.written;
    changed = true;
  }
  if (into.frame != from.frame) {
    into.frame = from.frame;
    changed = true;
  }
  return changed;
}

int RegDomain::tracked_index(std::uint32_t addr) const noexcept {
  for (std::size_t i = 0; i < tracked_.size(); ++i) {
    if (tracked_[i] == addr) return static_cast<int>(i);
  }
  return -1;
}

std::vector<std::uint8_t> RegDomain::regs_read(const iss::Instr& instr) {
  switch (instr.op) {
    case Op::Add: case Op::Sub: case Op::Sll: case Op::Slt: case Op::Sltu:
    case Op::Xor: case Op::Srl: case Op::Sra: case Op::Or: case Op::And:
    case Op::Mul: case Op::Mulh: case Op::Mulhsu: case Op::Mulhu:
    case Op::Div: case Op::Divu: case Op::Rem: case Op::Remu:
    case Op::Sb: case Op::Sh: case Op::Sw:
    case Op::Beq: case Op::Bne: case Op::Blt: case Op::Bge:
    case Op::Bltu: case Op::Bgeu:
      return {instr.rs1, instr.rs2};
    case Op::Addi: case Op::Slti: case Op::Sltiu: case Op::Xori: case Op::Ori:
    case Op::Andi: case Op::Slli: case Op::Srli: case Op::Srai:
    case Op::Lb: case Op::Lh: case Op::Lw: case Op::Lbu: case Op::Lhu:
    case Op::Jalr:
      return {instr.rs1};
    case Op::Ecall:
      return {17};  // a7 selects the syscall; other args depend on its value
    default:
      return {};
  }
}

std::vector<std::uint8_t> RegDomain::regs_read_values(const iss::Instr& instr) {
  switch (instr.op) {
    case Op::Sb: case Op::Sh: case Op::Sw:
      return {instr.rs1};  // rs2 is the stored datum, not a value use
    default:
      return regs_read(instr);
  }
}

AbsValue RegDomain::effective_address(const State& state, const iss::Instr& instr) {
  AbsValue base = state.regs[instr.rs1];
  AbsValue addr{base.range.plus(Interval::exact(instr.imm)), base.base, AbsValue::Init::Init,
                base.entry_reg};
  return normalized(addr);
}

void RegDomain::transfer(const CfgInstr& ci, State& state) const {
  if (state.dead) return;  // bottom: nothing executes here
  const iss::Instr& in = ci.instr;
  auto set = [&](AbsValue v) {
    if (in.rd != 0) state.regs[in.rd] = normalized(v);
  };
  const AbsValue& a = state.regs[in.rs1];
  const AbsValue& b = state.regs[in.rs2];
  const bool both_exact = a.is_exact_addr() && b.is_exact_addr();

  switch (in.op) {
    case Op::Lui:
      set(AbsValue::exact(static_cast<std::uint32_t>(in.imm)));
      break;
    case Op::Auipc:
      set(AbsValue::exact(ci.addr + static_cast<std::uint32_t>(in.imm)));
      break;
    case Op::Addi:
      set({a.range.plus(Interval::exact(in.imm)), a.base, AbsValue::Init::Init, a.entry_reg});
      break;
    case Op::Add:
      if (a.base != AbsValue::Base::None && b.base != AbsValue::Base::None) {
        set(AbsValue::top_init());  // entry(i) + entry(j) is not representable
      } else if (a.base != AbsValue::Base::None) {
        set({a.range.plus(b.range), a.base, AbsValue::Init::Init, a.entry_reg});
      } else {
        set({a.range.plus(b.range), b.base, AbsValue::Init::Init, b.entry_reg});
      }
      break;
    case Op::Sub:
      if (a.base == AbsValue::Base::Entry && a.same_base(b)) {
        set({a.range.minus(b.range), AbsValue::Base::None, AbsValue::Init::Init});
      } else if (b.base != AbsValue::Base::None) {
        set(AbsValue::top_init());  // -entry(j) is not representable
      } else {
        set({a.range.minus(b.range), a.base, AbsValue::Init::Init, a.entry_reg});
      }
      break;
    case Op::Slti: case Op::Sltiu: case Op::Slt: case Op::Sltu:
      set({Interval::bounded(0, 1), AbsValue::Base::None, AbsValue::Init::Init});
      break;
    case Op::Xori: case Op::Ori: case Op::Andi: case Op::Slli: case Op::Srli: case Op::Srai: {
      if (a.is_exact_addr()) {
        Op rop;
        switch (in.op) {
          case Op::Xori: rop = Op::Xor; break;
          case Op::Ori: rop = Op::Or; break;
          case Op::Andi: rop = Op::And; break;
          case Op::Slli: rop = Op::Sll; break;
          case Op::Srli: rop = Op::Srl; break;
          default: rop = Op::Sra; break;
        }
        set(AbsValue::exact(eval_concrete(rop, static_cast<std::uint32_t>(a.range.lo),
                                          static_cast<std::uint32_t>(in.imm))));
      } else {
        set(AbsValue::top_init());
      }
      break;
    }
    case Op::Sll: case Op::Srl: case Op::Sra: case Op::Xor: case Op::Or: case Op::And:
    case Op::Mul: case Op::Mulh: case Op::Mulhsu: case Op::Mulhu:
    case Op::Div: case Op::Divu: case Op::Rem: case Op::Remu:
      if (both_exact) {
        set(AbsValue::exact(eval_concrete(in.op, static_cast<std::uint32_t>(a.range.lo),
                                          static_cast<std::uint32_t>(b.range.lo))));
      } else {
        set(AbsValue::top_init());
      }
      break;
    case Op::Lw: {
      AbsValue addr = effective_address(state, in);
      if (auto key = frame_key_of(addr)) {
        auto it = state.frame.find(*key);
        if (it != state.frame.end()) {
          set(it->second);  // exact reload of a spilled word, garbage and all
          break;
        }
      }
      set(AbsValue::top_init());
      break;
    }
    case Op::Lb: case Op::Lh: case Op::Lbu: case Op::Lhu:
      set(AbsValue::top_init());  // sub-word loads never hit a tracked slot
      break;
    case Op::Sb: case Op::Sh: case Op::Sw: {
      AbsValue addr = effective_address(state, in);
      if (addr.is_exact_addr()) {
        int idx = tracked_index(static_cast<std::uint32_t>(addr.range.lo));
        if (idx >= 0) state.written |= std::uint64_t(1) << idx;
      }
      if (auto key = frame_key_of(addr)) {
        if (in.op == Op::Sw) {
          state.frame[*key] = state.regs[in.rs2];
        } else {
          state.frame.erase(*key);  // sub-word store shreds the slot
        }
      }
      break;
    }
    case Op::Jal:
    case Op::Jalr:
      set(AbsValue::exact(ci.addr + 4));
      break;
    case Op::Ecall:
      state.regs[10] = AbsValue::top_init();  // a0 carries the syscall result
      break;
    default:  // branches, fence, ebreak, illegal: no register effects
      break;
  }
}

}  // namespace nisc::analysis
