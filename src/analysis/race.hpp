// Delta-cycle race detector.
//
// Implements sysc::access_monitor: sc_signal<T>::read()/write() report every
// access (channel, process, delta) while a monitor is installed, and the
// kernel calls on_delta_end() after each delta cycle. The monitor keeps
// per-delta writer/reader sets per channel and reports:
//
//  * race.write-write (error): two distinct processes wrote the same signal
//    in one delta cycle. sc_signal keeps a single pending next-value, so the
//    final value is whichever writer the scheduler happened to dispatch
//    last — classic SystemC nondeterminism.
//  * race.read-after-write (warning): a process read a signal that a
//    *different* process wrote in the same delta cycle. With deferred-update
//    signals the read returns the pre-delta value, but the code's behaviour
//    silently changes if the channel is ever swapped for one with immediate
//    semantics (iss ports!) or the processes are merged — an evaluation-
//    order dependence worth surfacing.
//
// Accesses from outside any process (testbench top-level code, which runs
// strictly before or after the scheduler's evaluate phase) are ignored:
// their ordering against processes is deterministic.
//
// Each (rule, channel) pair is reported once per monitoring session to keep
// cyclic designs from flooding the log; total_races() still counts every
// occurrence.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/diag.hpp"
#include "sysc/kernel.hpp"

namespace nisc::analysis {

class race_monitor final : public sysc::access_monitor {
 public:
  /// Diagnostics go to `diags` (not owned; must outlive the monitor).
  explicit race_monitor(DiagEngine& diags) : diags_(&diags) {}

  /// RAII attach: installs the monitor on `ctx`, restores the previous one
  /// on destruction.
  class scoped_attach {
   public:
    scoped_attach(sysc::sc_simcontext& ctx, race_monitor& monitor)
        : ctx_(&ctx), previous_(ctx.monitor()) {
      ctx.set_monitor(&monitor);
    }
    ~scoped_attach() { ctx_->set_monitor(previous_); }

    scoped_attach(const scoped_attach&) = delete;
    scoped_attach& operator=(const scoped_attach&) = delete;

   private:
    sysc::sc_simcontext* ctx_;
    sysc::access_monitor* previous_;
  };

  void on_channel_write(const sysc::sc_object& channel, const sysc::sc_process* writer,
                        std::uint64_t delta) override;
  void on_channel_read(const sysc::sc_object& channel, const sysc::sc_process* reader,
                       std::uint64_t delta) override;
  void on_delta_end(sysc::sc_simcontext& ctx, std::uint64_t delta) override;

  /// Total race occurrences observed (including ones deduplicated away).
  std::uint64_t total_races() const noexcept { return total_races_; }

 private:
  struct ChannelAccess {
    std::vector<const sysc::sc_process*> writers;
    std::vector<const sysc::sc_process*> readers;
  };

  void flush(std::uint64_t delta);

  DiagEngine* diags_;
  std::map<const sysc::sc_object*, ChannelAccess> accesses_;
  std::set<std::string> reported_;  // "rule\0channel" pairs already reported
  std::uint64_t total_races_ = 0;
};

}  // namespace nisc::analysis
