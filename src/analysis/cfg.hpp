// Basic-block control-flow graph construction over assembled guest programs.
//
// Built from the assembler's code table (iss::Program::code), so only bytes
// that were emitted as instructions become CFG nodes — data words never
// decode into phantom blocks. Direct branches and jumps produce exact edges;
// indirect jumps (jr / jalr through a register) produce conservative edges
// to every address-taken code label (jump tables materialize their targets
// with la/.word, which the assembler records), falling back to every code
// symbol when no address was taken. Calls (jal/jalr with a link register)
// carry two complementary edge kinds so analyses can pick their view:
//   * Call / Return  — interprocedural paths through the callee body
//   * CallFall       — the summary edge straight to the return site,
//                      treating the callee as a balanced no-op
// Return edges are call-site-paired: a `ret` only targets the return sites
// of calls whose callee body (intra-procedural reachability from the call
// target) contains that ret — so the whole-program pass never joins a
// return state into a call site that cannot have produced it. Calls into
// data (no decodable target) contribute no Return edges; their return
// sites are reached only when some resolvable call shares them.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "iss/isa.hpp"
#include "iss/program.hpp"

namespace nisc::analysis {

/// Why an edge exists between two basic blocks.
enum class EdgeKind : std::uint8_t {
  FallThrough,  ///< sequential successor
  Branch,       ///< taken conditional branch
  Jump,         ///< unconditional direct jump (jal rd=x0)
  Call,         ///< jal/jalr with a link register: edge to the callee entry
  CallFall,     ///< call summary edge to the return site (intra-procedural view)
  Return,       ///< ret: edge to a recorded return site
  Indirect,     ///< jr/jalr through a register: conservative target edge
};

/// Bitmask over EdgeKind, selecting which edges an analysis follows.
using EdgeMask = unsigned;

constexpr EdgeMask edge_bit(EdgeKind kind) noexcept {
  return 1u << static_cast<unsigned>(kind);
}

/// Interprocedural view: real paths only (through callee bodies, not over
/// the call summary shortcut).
constexpr EdgeMask kInterprocEdges =
    edge_bit(EdgeKind::FallThrough) | edge_bit(EdgeKind::Branch) | edge_bit(EdgeKind::Jump) |
    edge_bit(EdgeKind::Call) | edge_bit(EdgeKind::Return) | edge_bit(EdgeKind::Indirect);

/// Intra-procedural view: stay in one function, stepping over calls via the
/// summary edge (callees are assumed balanced; they are checked separately).
constexpr EdgeMask kIntraprocEdges =
    edge_bit(EdgeKind::FallThrough) | edge_bit(EdgeKind::Branch) | edge_bit(EdgeKind::Jump) |
    edge_bit(EdgeKind::CallFall) | edge_bit(EdgeKind::Indirect);

struct CfgEdge {
  std::size_t block = 0;  ///< index of the other endpoint
  EdgeKind kind = EdgeKind::FallThrough;
};

/// One decoded instruction of the program under analysis.
struct CfgInstr {
  std::uint32_t addr = 0;
  iss::Instr instr;
  int line = 0;  ///< 1-based source line, 0 when unknown
};

struct BasicBlock {
  std::uint32_t start = 0;  ///< address of the first instruction
  std::vector<CfgInstr> instrs;
  std::vector<CfgEdge> succs;
  std::vector<CfgEdge> preds;
};

class Cfg {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// Builds the CFG of `program` from its code table.
  static Cfg build(const iss::Program& program);

  const std::vector<BasicBlock>& blocks() const noexcept { return blocks_; }
  bool empty() const noexcept { return blocks_.empty(); }

  /// Index of the entry block (the block holding Program::entry); npos when
  /// the entry point is not an instruction.
  std::size_t entry() const noexcept { return entry_; }

  /// Index of the block whose instruction range contains `addr`; npos when
  /// `addr` is not an instruction address.
  std::size_t block_at(std::uint32_t addr) const noexcept;

  /// The instruction record at exactly `addr`; nullptr when none.
  const CfgInstr* instr_at(std::uint32_t addr) const noexcept;

  /// Entry addresses of every directly-called function (jal call targets).
  const std::vector<std::uint32_t>& call_targets() const noexcept { return call_targets_; }

 private:
  std::vector<BasicBlock> blocks_;
  std::size_t entry_ = npos;
  std::map<std::uint32_t, std::size_t> block_of_instr_;  // instr addr -> block index
  std::vector<std::uint32_t> call_targets_;
};

}  // namespace nisc::analysis
