#include "analysis/summary.hpp"

#include <algorithm>

#include "analysis/dataflow.hpp"
#include "analysis/diag.hpp"
#include "iss/isa.hpp"

namespace nisc::analysis {
namespace {

using iss::Op;

bool is_load(Op op) {
  return op == Op::Lb || op == Op::Lh || op == Op::Lw || op == Op::Lbu || op == Op::Lhu;
}
bool is_store(Op op) { return op == Op::Sb || op == Op::Sh || op == Op::Sw; }

std::uint32_t access_size(Op op) {
  switch (op) {
    case Op::Lb: case Op::Lbu: case Op::Sb: return 1;
    case Op::Lh: case Op::Lhu: case Op::Sh: return 2;
    default: return 4;
  }
}

bool is_ret(const iss::Instr& in) {
  return in.op == Op::Jalr && in.rd == 0 && in.rs1 == 1 && in.imm == 0;
}

AbsValue wrap_exact(AbsValue v) noexcept {
  if (v.base == AbsValue::Base::None && v.range.is_exact()) {
    v.range = Interval::exact(static_cast<std::uint32_t>(v.range.lo));
  }
  return v;
}

/// Rewrites a callee-exit value (entry-relative) into the caller's terms:
/// the caller's registers at the call *are* the callee's entry values.
AbsValue translate(const AbsValue& exit, const std::array<AbsValue, 32>& entry_vals) {
  if (exit.base != AbsValue::Base::Entry) return exit;
  const AbsValue& e = entry_vals[exit.entry_reg];
  return wrap_exact({e.range.plus(exit.range), e.base, e.init, e.entry_reg});
}

/// One symbolic-fixpoint pass over a single function, reading callee
/// summaries from `table` (bottom defaults for not-yet-computed SCC peers).
FunctionSummary summarize(const Cfg& cfg, const CallGraph& cg, std::size_t f,
                          const SummaryTable& table, const std::vector<std::uint32_t>& tracked) {
  const Function& fn = cg.functions()[f];
  CallAwareDomain dom(RegDomain(tracked), symbolic_boundary(), table.site_summaries(cg, f));
  DataflowResult<CallAwareDomain> flow = run_forward(cfg, dom, kIntraprocEdges, fn.entry_block);

  FunctionSummary s;
  for (std::size_t b : fn.blocks) {
    if (!flow.out[b] || flow.out[b]->dead) continue;
    const CfgInstr& last = cfg.blocks()[b].instrs.back();
    if (!is_ret(last.instr)) continue;
    s.rets.emplace_back(last.addr, last.line);
    if (!s.reached_ret) {
      s.reached_ret = true;
      s.exit_regs = flow.out[b]->regs;
      s.must_written = flow.out[b]->written;
    } else {
      for (std::size_t r = 0; r < 32; ++r) s.exit_regs[r].join(flow.out[b]->regs[r]);
      s.must_written &= flow.out[b]->written;
    }
  }
  const AbsValue& sp = s.exit_regs[2];
  if (s.reached_ret && sp.is_sp_rel() && sp.range.is_exact()) s.sp_delta = sp.range.lo;

  // Replay every reachable block to harvest entry reads and the
  // entry-relative memory footprint, folding callee claims in transitively.
  std::map<std::uint8_t, EntryRead> reads;
  auto note_read = [&](std::uint8_t entry_reg, const CfgInstr& ci) {
    if (entry_reg != 0) reads.emplace(entry_reg, EntryRead{entry_reg, ci.addr, ci.line});
  };
  auto note_mem = [&](MemAccess m) {
    if (s.mem_truncated || m.offset.is_top()) return;
    if (std::find(s.mem.begin(), s.mem.end(), m) != s.mem.end()) return;
    if (s.mem.size() >= kMaxSummaryMem) {
      s.mem_truncated = true;
      return;
    }
    s.mem.push_back(std::move(m));
  };
  for (std::size_t b : fn.blocks) {
    if (!flow.in[b] || flow.in[b]->dead) continue;
    RegState state = *flow.in[b];
    for (const CfgInstr& ci : cfg.blocks()[b].instrs) {
      if (state.dead) break;
      for (std::uint8_t q : RegDomain::regs_read_values(ci.instr)) {
        const AbsValue& v = state.regs[q];
        if (v.base == AbsValue::Base::Entry) note_read(v.entry_reg, ci);
      }
      if (is_load(ci.instr.op) || is_store(ci.instr.op)) {
        AbsValue addr = RegDomain::effective_address(state, ci.instr);
        if (addr.base == AbsValue::Base::Entry && !addr.range.is_top()) {
          note_mem({addr.entry_reg, addr.range, access_size(ci.instr.op), is_store(ci.instr.op),
                    ci.addr, ci.line});
        }
      }
      if (const FunctionSummary* callee = dom.summary_at(ci.addr)) {
        if (!callee->havoc) {
          RegState at_call = state;
          dom.inner().transfer(ci, at_call);  // link register written first
          for (const EntryRead& er : callee->entry_reads) {
            const AbsValue& v = at_call.regs[er.reg];
            if (v.base == AbsValue::Base::Entry) note_read(v.entry_reg, ci);
          }
          for (const MemAccess& m : callee->mem) {
            const AbsValue& v = at_call.regs[m.entry_reg];
            if (v.base == AbsValue::Base::Entry && !v.range.is_top()) {
              note_mem({v.entry_reg, v.range.plus(m.offset), m.size, m.is_store, ci.addr, ci.line});
            }
          }
          if (callee->mem_truncated) s.mem_truncated = true;
        }
      }
      dom.transfer(ci, state);
    }
  }
  for (auto& [reg, read] : reads) s.entry_reads.push_back(read);
  return s;
}

}  // namespace

FunctionSummary FunctionSummary::make_havoc() {
  FunctionSummary s;
  s.havoc = true;
  s.reached_ret = true;
  for (AbsValue& v : s.exit_regs) v = AbsValue::top_init();
  s.exit_regs[0] = AbsValue::exact(0);
  s.exit_regs[2] = AbsValue::entry(2, AbsValue::Init::Init);  // ABI-balanced sp
  return s;
}

const EntryRead* FunctionSummary::read_of(std::uint8_t reg) const noexcept {
  for (const EntryRead& er : entry_reads) {
    if (er.reg == reg) return &er;
  }
  return nullptr;
}

void apply_summary(const FunctionSummary& summary, RegState& state) {
  if (state.dead) return;
  if (summary.havoc) {
    for (std::size_t r = 1; r < 32; ++r) {
      if (r != 2) state.regs[r] = AbsValue::top_init();
    }
    state.frame.clear();
    return;
  }
  if (!summary.reached_ret) {
    state.dead = true;
    return;
  }
  const std::array<AbsValue, 32> entry_vals = state.regs;
  for (std::size_t r = 1; r < 32; ++r) {
    state.regs[r] = translate(summary.exit_regs[r], entry_vals);
  }
  state.written |= summary.must_written;
  for (const MemAccess& m : summary.mem) {
    if (!m.is_store) continue;
    const AbsValue& base = entry_vals[m.entry_reg];
    AbsValue addr =
        wrap_exact({base.range.plus(m.offset), base.base, AbsValue::Init::Init, base.entry_reg});
    if (auto key = frame_key_of(addr)) state.frame.erase(*key);
  }
  if (summary.mem_truncated) state.frame.clear();  // stores beyond the cap are unknown
}

RegState symbolic_boundary() {
  RegState state;
  for (std::size_t r = 0; r < 32; ++r) {
    state.regs[r] = AbsValue::entry(static_cast<std::uint8_t>(r), AbsValue::Init::Init);
  }
  state.regs[0] = AbsValue::exact(0);
  state.written = 0;
  return state;
}

SummaryTable SummaryTable::compute(const Cfg& cfg, const CallGraph& cg,
                                   std::vector<std::uint32_t> tracked) {
  SummaryTable table;
  table.summaries_.resize(cg.functions().size());  // bottom: reached_ret = false
  for (std::size_t sidx = 0; sidx < cg.sccs().size(); ++sidx) {
    const std::vector<std::size_t>& scc = cg.sccs()[sidx];
    const bool recursive = cg.scc_is_recursive(sidx);
    int rounds = 0;
    bool changed = true;
    while (changed) {
      changed = false;
      for (std::size_t f : scc) {
        FunctionSummary s = summarize(cfg, cg, f, table, tracked);
        if (!(s == table.summaries_[f])) {
          table.summaries_[f] = std::move(s);
          changed = true;
        }
      }
      if (!recursive) break;
      if (changed && ++rounds >= kMaxSccRounds) {
        // Non-converging recursion: give up precisely, not unsoundly.
        for (std::size_t f : scc) table.summaries_[f] = FunctionSummary::make_havoc();
        break;
      }
    }
  }
  return table;
}

const FunctionSummary& SummaryTable::at_site(const CallGraph& cg, std::size_t site) const {
  const CallSite& s = cg.sites()[site];
  if (!s.resolved || s.callees.size() != 1) return havoc_;
  return summaries_[s.callees.front()];
}

std::map<std::uint32_t, const FunctionSummary*> SummaryTable::site_summaries(
    const CallGraph& cg, std::size_t fn) const {
  std::map<std::uint32_t, const FunctionSummary*> map;
  for (std::size_t site : cg.functions()[fn].call_sites) {
    map[cg.sites()[site].addr] = &at_site(cg, site);
  }
  return map;
}

std::string render_summaries_json(const CallGraph& cg, const SummaryTable& table) {
  std::string out = "\"functions\":[";
  for (std::size_t f = 0; f < cg.functions().size(); ++f) {
    const Function& fn = cg.functions()[f];
    const FunctionSummary& s = table.of(f);
    if (f) out += ',';
    out += "{\"name\":\"";
    out += json_escape(fn.name);
    out += "\",\"entry\":";
    out += std::to_string(fn.entry_addr);
    out += ",\"havoc\":";
    out += s.havoc ? "true" : "false";
    out += ",\"returns\":";
    out += s.reached_ret ? "true" : "false";
    out += ",\"sp_delta\":";
    out += s.sp_delta ? std::to_string(*s.sp_delta) : "null";
    out += ",\"reads\":[";
    for (std::size_t i = 0; i < s.entry_reads.size(); ++i) {
      if (i) out += ',';
      out += "{\"reg\":\"";
      out += iss::reg_abi_name(s.entry_reads[i].reg);
      out += "\",\"line\":";
      out += std::to_string(s.entry_reads[i].line);
      out += '}';
    }
    out += "],\"mem\":[";
    for (std::size_t i = 0; i < s.mem.size(); ++i) {
      const MemAccess& m = s.mem[i];
      if (i) out += ',';
      out += "{\"reg\":\"";
      out += iss::reg_abi_name(m.entry_reg);
      out += "\",\"lo\":";
      out += std::to_string(m.offset.lo);
      out += ",\"hi\":";
      out += std::to_string(m.offset.hi);
      out += ",\"size\":";
      out += std::to_string(m.size);
      out += ",\"store\":";
      out += m.is_store ? "true" : "false";
      out += ",\"line\":";
      out += std::to_string(m.line);
      out += '}';
    }
    out += "],\"mem_truncated\":";
    out += s.mem_truncated ? "true" : "false";
    out += '}';
  }
  out += ']';
  return out;
}

}  // namespace nisc::analysis
