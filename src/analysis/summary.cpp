#include "analysis/summary.hpp"

#include <algorithm>
#include <tuple>

#include "analysis/dataflow.hpp"
#include "analysis/diag.hpp"
#include "iss/isa.hpp"

namespace nisc::analysis {
namespace {

using iss::Op;

bool is_load(Op op) {
  return op == Op::Lb || op == Op::Lh || op == Op::Lw || op == Op::Lbu || op == Op::Lhu;
}
bool is_store(Op op) { return op == Op::Sb || op == Op::Sh || op == Op::Sw; }

std::uint32_t access_size(Op op) {
  switch (op) {
    case Op::Lb: case Op::Lbu: case Op::Sb: return 1;
    case Op::Lh: case Op::Lhu: case Op::Sh: return 2;
    default: return 4;
  }
}

bool is_ret(const iss::Instr& in) {
  return in.op == Op::Jalr && in.rd == 0 && in.rs1 == 1 && in.imm == 0;
}

AbsValue wrap_exact(AbsValue v) noexcept {
  if (v.base == AbsValue::Base::None && v.range.is_exact()) {
    v.range = Interval::exact(static_cast<std::uint32_t>(v.range.lo));
  }
  return v;
}

/// Rewrites a callee-exit value (entry-relative) into the caller's terms:
/// the caller's registers at the call *are* the callee's entry values.
AbsValue translate(const AbsValue& exit, const std::array<AbsValue, 32>& entry_vals) {
  if (exit.base != AbsValue::Base::Entry) return exit;
  const AbsValue& e = entry_vals[exit.entry_reg];
  return wrap_exact({e.range.plus(exit.range), e.base, e.init, e.entry_reg});
}

/// One symbolic-fixpoint pass over a single function clone, stepping over
/// call sites via `env` (addr -> callee summary under this clone's context;
/// bottom defaults for not-yet-computed SCC peers). `narrow_iters` counts
/// the descending sweeps the inner dataflow executes.
FunctionSummary summarize(const Cfg& cfg, const CallGraph& cg, std::size_t f,
                          std::map<std::uint32_t, FunctionSummary> env,
                          const std::vector<std::uint32_t>& tracked,
                          std::size_t* narrow_iters) {
  const Function& fn = cg.functions()[f];
  CallAwareDomain dom(RegDomain(tracked), symbolic_boundary(), std::move(env));
  DataflowResult<CallAwareDomain> flow = run_forward(cfg, dom, kIntraprocEdges, fn.entry_block, 8,
                                                     kNarrowSweeps, narrow_iters);

  FunctionSummary s;
  for (std::size_t b : fn.blocks) {
    if (!flow.out[b] || flow.out[b]->dead) continue;
    const CfgInstr& last = cfg.blocks()[b].instrs.back();
    if (!is_ret(last.instr)) continue;
    s.rets.emplace_back(last.addr, last.line);
    if (!s.reached_ret) {
      s.reached_ret = true;
      s.exit_regs = flow.out[b]->regs;
      s.must_written = flow.out[b]->written;
    } else {
      for (std::size_t r = 0; r < 32; ++r) s.exit_regs[r].join(flow.out[b]->regs[r]);
      s.must_written &= flow.out[b]->written;
    }
  }
  const AbsValue& sp = s.exit_regs[2];
  if (s.reached_ret && sp.is_sp_rel() && sp.range.is_exact()) s.sp_delta = sp.range.lo;

  // Replay every reachable block to harvest entry reads and the
  // entry-relative memory footprint, folding callee claims in transitively.
  std::map<std::uint8_t, EntryRead> reads;
  auto note_read = [&](std::uint8_t entry_reg, const CfgInstr& ci) {
    if (entry_reg != 0) reads.emplace(entry_reg, EntryRead{entry_reg, ci.addr, ci.line});
  };
  auto note_mem = [&](MemAccess m) {
    if (s.mem_truncated || m.offset.is_top()) return;
    if (std::find(s.mem.begin(), s.mem.end(), m) != s.mem.end()) return;
    if (s.mem.size() >= kMaxSummaryMem) {
      s.mem_truncated = true;
      return;
    }
    s.mem.push_back(std::move(m));
  };
  for (std::size_t b : fn.blocks) {
    if (!flow.in[b] || flow.in[b]->dead) continue;
    RegState state = *flow.in[b];
    for (const CfgInstr& ci : cfg.blocks()[b].instrs) {
      if (state.dead) break;
      for (std::uint8_t q : RegDomain::regs_read_values(ci.instr)) {
        const AbsValue& v = state.regs[q];
        if (v.base == AbsValue::Base::Entry) note_read(v.entry_reg, ci);
      }
      if (is_load(ci.instr.op) || is_store(ci.instr.op)) {
        AbsValue addr = RegDomain::effective_address(state, ci.instr);
        if (addr.base == AbsValue::Base::Entry && !addr.range.is_top()) {
          note_mem({addr.entry_reg, addr.range, access_size(ci.instr.op), is_store(ci.instr.op),
                    ci.addr, ci.line});
        }
      }
      if (const FunctionSummary* callee = dom.summary_at(ci.addr)) {
        if (!callee->havoc) {
          RegState at_call = state;
          dom.inner().transfer(ci, at_call);  // link register written first
          for (const EntryRead& er : callee->entry_reads) {
            const AbsValue& v = at_call.regs[er.reg];
            if (v.base == AbsValue::Base::Entry) note_read(v.entry_reg, ci);
          }
          for (const MemAccess& m : callee->mem) {
            const AbsValue& v = at_call.regs[m.entry_reg];
            if (v.base == AbsValue::Base::Entry && !v.range.is_top()) {
              note_mem({v.entry_reg, v.range.plus(m.offset), m.size, m.is_store, ci.addr, ci.line});
            }
          }
          if (callee->mem_truncated) s.mem_truncated = true;
        }
      }
      dom.transfer(ci, state);
    }
  }
  for (auto& [reg, read] : reads) s.entry_reads.push_back(read);
  return s;
}

}  // namespace

Context context_push(const Context& ctx, std::size_t site, std::size_t k) {
  if (k == 0) return {};
  Context out = ctx;
  out.push_back(site);
  if (out.size() > k) out.erase(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(out.size() - k));
  return out;
}

std::string context_label(const CallGraph& cg, const Context& ctx) {
  std::string out;
  for (std::size_t i = 0; i < ctx.size(); ++i) {
    if (i) out += " > ";
    out += "line ";
    out += std::to_string(cg.sites()[ctx[i]].line);
  }
  return out;
}

FunctionSummary FunctionSummary::make_havoc() {
  FunctionSummary s;
  s.havoc = true;
  s.reached_ret = true;
  for (AbsValue& v : s.exit_regs) v = AbsValue::top_init();
  s.exit_regs[0] = AbsValue::exact(0);
  s.exit_regs[2] = AbsValue::entry(2, AbsValue::Init::Init);  // ABI-balanced sp
  return s;
}

const EntryRead* FunctionSummary::read_of(std::uint8_t reg) const noexcept {
  for (const EntryRead& er : entry_reads) {
    if (er.reg == reg) return &er;
  }
  return nullptr;
}

void FunctionSummary::join_target(const FunctionSummary& o) {
  if (havoc || o.havoc) {
    *this = make_havoc();
    return;
  }
  // Definite claims survive only when every target makes them.
  std::vector<EntryRead> kept;
  for (const EntryRead& er : entry_reads) {
    if (o.read_of(er.reg) != nullptr) kept.push_back(er);
  }
  entry_reads = std::move(kept);
  // The footprint is a may-set: union, respecting the cap.
  for (const MemAccess& m : o.mem) {
    if (std::find(mem.begin(), mem.end(), m) != mem.end()) continue;
    if (mem.size() >= kMaxSummaryMem) {
      mem_truncated = true;
      break;
    }
    mem.push_back(m);
  }
  mem_truncated = mem_truncated || o.mem_truncated;
  if (!o.reached_ret) return;  // a never-returning target adds no exit state
  if (!reached_ret) {
    reached_ret = true;
    exit_regs = o.exit_regs;
    sp_delta = o.sp_delta;
    must_written = o.must_written;
    rets = o.rets;
    return;
  }
  for (std::size_t r = 0; r < 32; ++r) exit_regs[r].join(o.exit_regs[r]);
  if (sp_delta != o.sp_delta) sp_delta.reset();
  must_written &= o.must_written;
  for (const auto& ret : o.rets) {
    if (std::find(rets.begin(), rets.end(), ret) == rets.end()) rets.push_back(ret);
  }
}

void FunctionSummary::widen_from(const FunctionSummary& o) {
  if (havoc || o.havoc) {
    *this = make_havoc();
    return;
  }
  for (const EntryRead& er : o.entry_reads) {
    if (read_of(er.reg) == nullptr) entry_reads.push_back(er);
  }
  for (const auto& ret : o.rets) {
    if (std::find(rets.begin(), rets.end(), ret) == rets.end()) rets.push_back(ret);
  }
  // Collapse the footprint to one widened interval per (register, size,
  // kind) group: a recursive frame chain would otherwise add one entry per
  // round forever. Evidence (addr/line) sticks with the group's first entry.
  std::map<std::tuple<std::uint8_t, std::uint32_t, bool>, MemAccess> groups;
  auto fold = [&](const MemAccess& m, bool accelerate) {
    auto key = std::make_tuple(m.entry_reg, m.size, m.is_store);
    auto it = groups.find(key);
    if (it == groups.end()) {
      groups.emplace(key, m);
    } else if (accelerate) {
      it->second.offset.widen(m.offset);
    } else {
      it->second.offset.join(m.offset);
    }
  };
  for (const MemAccess& m : mem) fold(m, false);
  for (const MemAccess& m : o.mem) fold(m, true);
  mem.clear();
  for (auto& [key, m] : groups) mem.push_back(m);
  mem_truncated = mem_truncated || o.mem_truncated;
  if (!o.reached_ret) return;
  if (!reached_ret) {
    reached_ret = true;
    exit_regs = o.exit_regs;
    sp_delta = o.sp_delta;
    must_written = o.must_written;
    return;
  }
  for (std::size_t r = 0; r < 32; ++r) exit_regs[r].widen(o.exit_regs[r]);
  if (sp_delta != o.sp_delta) sp_delta.reset();
  must_written &= o.must_written;
}

void apply_summary(const FunctionSummary& summary, RegState& state) {
  if (state.dead) return;
  if (summary.havoc) {
    for (std::size_t r = 1; r < 32; ++r) {
      if (r != 2) state.regs[r] = AbsValue::top_init();
    }
    state.frame.clear();
    return;
  }
  if (!summary.reached_ret) {
    state.dead = true;
    return;
  }
  const std::array<AbsValue, 32> entry_vals = state.regs;
  for (std::size_t r = 1; r < 32; ++r) {
    state.regs[r] = translate(summary.exit_regs[r], entry_vals);
  }
  state.written |= summary.must_written;
  for (const MemAccess& m : summary.mem) {
    if (!m.is_store) continue;
    const AbsValue& base = entry_vals[m.entry_reg];
    AbsValue addr =
        wrap_exact({base.range.plus(m.offset), base.base, AbsValue::Init::Init, base.entry_reg});
    if (auto key = frame_key_of(addr)) state.frame.erase(*key);
  }
  if (summary.mem_truncated) state.frame.clear();  // stores beyond the cap are unknown
}

RegState symbolic_boundary() {
  RegState state;
  for (std::size_t r = 0; r < 32; ++r) {
    state.regs[r] = AbsValue::entry(static_cast<std::uint8_t>(r), AbsValue::Init::Init);
  }
  state.regs[0] = AbsValue::exact(0);
  state.written = 0;
  return state;
}

SummaryTable SummaryTable::compute(const Cfg& cfg, const CallGraph& cg,
                                   std::vector<std::uint32_t> tracked, std::size_t context_k) {
  SummaryTable table;
  table.context_k_ = context_k;
  const std::size_t nfns = cg.functions().size();
  table.contexts_.resize(nfns);
  table.stats_.functions = nfns;
  for (std::size_t f = 0; f < nfns; ++f) table.contexts_[f].push_back(Context{});

  // Top-down clone discovery: the closure of k-limited call strings over
  // resolved call sites. Recursive functions keep the root clone only — the
  // SCC fixpoint joins their callers anyway, and per-cycle clones would
  // multiply the iteration space for no precision.
  if (context_k > 0) {
    std::vector<std::pair<std::size_t, Context>> work;
    work.reserve(nfns);
    for (std::size_t f = 0; f < nfns; ++f) work.push_back({f, Context{}});
    while (!work.empty()) {
      std::pair<std::size_t, Context> item = std::move(work.back());
      work.pop_back();
      for (std::size_t site : cg.functions()[item.first].call_sites) {
        const CallSite& cs = cg.sites()[site];
        if (!cs.resolved) continue;
        Context nctx = context_push(item.second, site, context_k);
        for (std::size_t g : cs.callees) {
          if (cg.scc_is_recursive(cg.functions()[g].scc)) continue;
          std::vector<Context>& known = table.contexts_[g];
          if (std::find(known.begin(), known.end(), nctx) != known.end()) continue;
          if (known.size() >= kMaxClonesPerFunction) {
            ++table.stats_.clone_overflows;
            continue;
          }
          known.push_back(nctx);
          work.push_back({g, nctx});
        }
      }
    }
  }
  for (std::size_t f = 0; f < nfns; ++f) {
    for (const Context& ctx : table.contexts_[f]) table.summaries_[{f, ctx}];  // bottom
  }

  std::size_t* ni = &table.stats_.narrowing_iterations;
  for (std::size_t sidx = 0; sidx < cg.sccs().size(); ++sidx) {
    const std::vector<std::size_t>& scc = cg.sccs()[sidx];
    const bool recursive = cg.scc_is_recursive(sidx);

    // One recompute pass over every clone of the SCC. Clones whose call-site
    // environment matches the root clone's (always true at k <= 1) reuse the
    // root's fresh summary instead of re-running the dataflow.
    auto sweep = [&](bool accelerate) {
      bool changed = false;
      for (std::size_t f : scc) {
        std::map<std::uint32_t, FunctionSummary> root_env;
        const FunctionSummary* root_sum = nullptr;
        for (const Context& ctx : table.contexts_[f]) {
          std::map<std::uint32_t, FunctionSummary> env = table.site_summaries(cg, f, ctx);
          FunctionSummary s;
          if (root_sum != nullptr && env == root_env) {
            s = *root_sum;
          } else {
            s = summarize(cfg, cg, f, std::move(env), tracked, ni);
          }
          FunctionSummary& slot = table.summaries_.at({f, ctx});
          if (accelerate) {
            FunctionSummary w = slot;
            w.widen_from(s);
            s = std::move(w);
          }
          if (!(s == slot)) {
            slot = std::move(s);
            changed = true;
          }
          if (ctx.empty()) {
            root_env = table.site_summaries(cg, f, ctx);
            root_sum = &slot;
          }
        }
      }
      return changed;
    };

    // Ascending phase: plain rounds, then widening acceleration, with the
    // havoc collapse kept only as a hard backstop.
    int rounds = 0;
    bool havocked = false;
    while (true) {
      bool changed = sweep(recursive && rounds >= kSccPlainRounds);
      if (!changed || !recursive) break;
      if (++rounds >= kMaxSccRounds) {
        for (std::size_t f : scc) {
          for (const Context& ctx : table.contexts_[f]) {
            table.summaries_.at({f, ctx}) = FunctionSummary::make_havoc();
          }
        }
        havocked = true;
        break;
      }
    }
    // Descending phase: recompute from the widened post-fixpoint. Each
    // sweep is F(X) with X a sound post-fixpoint, so stopping anywhere is
    // safe; the bound keeps worst-case cost linear in kNarrowSweeps.
    if (recursive && !havocked) {
      for (int n = 0; n < kNarrowSweeps; ++n) {
        bool improved = sweep(false);
        ++table.stats_.narrowing_iterations;
        if (!improved) break;
      }
    }
  }

  for (const auto& [key, s] : table.summaries_) {
    ++table.stats_.clones;
    if (s.havoc) ++table.stats_.havoc_summaries;
  }
  return table;
}

const FunctionSummary& SummaryTable::of(std::size_t fn) const {
  return summaries_.at({fn, Context{}});
}

const FunctionSummary& SummaryTable::of(std::size_t fn, const Context& ctx) const {
  auto it = summaries_.find({fn, ctx});
  return it != summaries_.end() ? it->second : of(fn);
}

const std::vector<Context>& SummaryTable::contexts_of(std::size_t fn) const {
  return contexts_[fn];
}

FunctionSummary SummaryTable::at_site(const CallGraph& cg, std::size_t site,
                                      const Context& caller_ctx) const {
  const CallSite& s = cg.sites()[site];
  if (!s.resolved || s.callees.empty()) return FunctionSummary::make_havoc();
  Context callee_ctx = context_push(caller_ctx, site, context_k_);
  FunctionSummary joined = of(s.callees.front(), callee_ctx);
  for (std::size_t i = 1; i < s.callees.size(); ++i) {
    joined.join_target(of(s.callees[i], callee_ctx));
  }
  return joined;
}

std::map<std::uint32_t, FunctionSummary> SummaryTable::site_summaries(const CallGraph& cg,
                                                                      std::size_t fn,
                                                                      const Context& ctx) const {
  std::map<std::uint32_t, FunctionSummary> map;
  for (std::size_t site : cg.functions()[fn].call_sites) {
    map.emplace(cg.sites()[site].addr, at_site(cg, site, ctx));
  }
  return map;
}

std::string render_summaries_json(const CallGraph& cg, const SummaryTable& table) {
  std::string out = "\"context_k\":";
  out += std::to_string(table.context_k());
  out += ",\"functions\":[";
  bool first_entry = true;
  auto emit = [&](std::size_t f, const Context& ctx, const FunctionSummary& s) {
    const Function& fn = cg.functions()[f];
    if (!first_entry) out += ',';
    first_entry = false;
    out += "{\"name\":\"";
    out += json_escape(fn.name);
    out += "\",\"entry\":";
    out += std::to_string(fn.entry_addr);
    out += ",\"context\":[";
    for (std::size_t i = 0; i < ctx.size(); ++i) {
      if (i) out += ',';
      out += std::to_string(cg.sites()[ctx[i]].line);
    }
    out += "],\"havoc\":";
    out += s.havoc ? "true" : "false";
    out += ",\"returns\":";
    out += s.reached_ret ? "true" : "false";
    out += ",\"sp_delta\":";
    out += s.sp_delta ? std::to_string(*s.sp_delta) : "null";
    out += ",\"reads\":[";
    for (std::size_t i = 0; i < s.entry_reads.size(); ++i) {
      if (i) out += ',';
      out += "{\"reg\":\"";
      out += iss::reg_abi_name(s.entry_reads[i].reg);
      out += "\",\"line\":";
      out += std::to_string(s.entry_reads[i].line);
      out += '}';
    }
    out += "],\"mem\":[";
    for (std::size_t i = 0; i < s.mem.size(); ++i) {
      const MemAccess& m = s.mem[i];
      if (i) out += ',';
      out += "{\"reg\":\"";
      out += iss::reg_abi_name(m.entry_reg);
      out += "\",\"lo\":";
      out += std::to_string(m.offset.lo);
      out += ",\"hi\":";
      out += std::to_string(m.offset.hi);
      out += ",\"size\":";
      out += std::to_string(m.size);
      out += ",\"store\":";
      out += m.is_store ? "true" : "false";
      out += ",\"line\":";
      out += std::to_string(m.line);
      out += '}';
    }
    out += "],\"mem_truncated\":";
    out += s.mem_truncated ? "true" : "false";
    out += '}';
  };
  for (std::size_t f = 0; f < cg.functions().size(); ++f) {
    const FunctionSummary& root = table.of(f);
    emit(f, Context{}, root);
    // Non-root clones appear only when context sensitivity actually changed
    // the summary — the common identical clone would just repeat the root.
    for (const Context& ctx : table.contexts_of(f)) {
      if (ctx.empty()) continue;
      const FunctionSummary& s = table.of(f, ctx);
      if (s == root) continue;
      emit(f, ctx, s);
    }
  }
  out += ']';
  return out;
}

}  // namespace nisc::analysis
