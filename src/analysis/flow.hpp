// Flow-sensitive NL3xx rules: the analyses cosim-lint runs once a guest
// program assembles. Each rule is a pass over the basic-block CFG
// (analysis/cfg.hpp) using the worklist dataflow engine
// (analysis/dataflow.hpp) with the interval/taint register domain
// (analysis/absint.hpp); the NL31x rules additionally use the call graph
// (analysis/callgraph.hpp) and bottom-up function summaries
// (analysis/summary.hpp).
//
// Intraprocedural rules (PR 3):
//  * NL301 (warning): a pragma breakpoint address is not reachable from the
//    program entry along any CFG path — the ISS can never stop there.
//  * NL302 (warning): an instruction reads a register that is uninitialized
//    on EVERY path from the entry (x0 and sp are environment-provided).
//    The *data* operand of a store is exempt: spilling a caller-saved
//    register in a prologue is idiomatic, not a use of its value.
//  * NL303 (error): a load/store whose effective address is provably outside
//    the memory map [0, mem_size) on every path. Stack-relative and
//    unbounded addresses are never flagged — only definite faults.
//  * NL304 (warning): a function returns with the stack pointer provably
//    off its entry value (per-function analysis over intraprocedural edges;
//    callees are summarized as balanced and checked separately).
//  * NL305: binding liveness. Error when a bound variable's address is
//    provably outside the memory map (the co-simulation side could never
//    read or inject it); warning when an iss_in-bound variable might not be
//    written on some path from the entry to its breakpoint.
//
// Interprocedural rules (computed from call-graph summaries; disabled with
// FlowOptions::interproc = false):
//  * NL311 (warning): a call site passes a register that is uninitialized
//    on every path to the call, and the callee (transitively) consumes that
//    entry value.
//  * NL312 (error): a callee dereferences an address derived from a caller
//    argument, and with this call site's argument the access is provably
//    outside the memory map.
//  * NL313 (warning): a function returns with sp provably displaced and the
//    imbalance flows in through one of its callees — the cross-call
//    counterpart of NL304, which by design trusts callees to balance.
//  * NL314 (warning): a callee provably fails to preserve a callee-saved
//    register (s0-s11) whose caller value is still live (read after the
//    call before being rewritten) — an ABI/calling-convention violation
//    with observable effect.
//  * NL315 (warning): an iss_in-bound variable's only writes live in a
//    function that is unreachable from the entry; refines the matching
//    NL305 warning (which it replaces) with the dead-callee evidence.
//
// When the intra- and inter-procedural passes flag the same (rule, PC,
// operand) triple, one diagnostic is emitted with a "via call from <line>"
// note instead of two entries.
//
// All rules are definite-evidence only: an inconclusive analysis stays
// silent, so a clean guest produces zero NL3xx findings.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/diag.hpp"
#include "cosim/pragma.hpp"
#include "iss/program.hpp"

namespace nisc::analysis {

struct FlowOptions {
  /// Size of the guest memory map the loads/stores must stay inside.
  std::uint64_t mem_size = std::uint64_t(1) << 20;
  /// Run the interprocedural pass (call graph + summaries + NL31x).
  bool interproc = true;
};

/// Sink for flow findings; the caller applies nolint/suppression and file
/// attribution. `line` is the original source line (0 when unknown).
using FlowReport =
    std::function<void(Severity severity, std::string rule, std::string message, int line)>;

/// Runs every NL3xx rule over an assembled program and its pragma bindings.
/// When `summaries_json` is non-null and the interprocedural pass ran, it
/// receives the "functions":[...] summary-dump fragment (see summary.hpp).
void check_flow(const iss::Program& program, const std::vector<cosim::PragmaBinding>& bindings,
                const FlowOptions& options, const FlowReport& report,
                std::string* summaries_json = nullptr);

}  // namespace nisc::analysis
