// Flow-sensitive NL3xx rules: the analyses cosim-lint runs once a guest
// program assembles. Each rule is a pass over the basic-block CFG
// (analysis/cfg.hpp) using the worklist dataflow engine
// (analysis/dataflow.hpp) with the interval/taint register domain
// (analysis/absint.hpp); the NL31x rules additionally use the call graph
// (analysis/callgraph.hpp) and bottom-up function summaries
// (analysis/summary.hpp).
//
// Intraprocedural rules (PR 3):
//  * NL301 (warning): a pragma breakpoint address is not reachable from the
//    program entry along any CFG path — the ISS can never stop there.
//  * NL302 (warning): an instruction reads a register that is uninitialized
//    on EVERY path from the entry (x0 and sp are environment-provided).
//    The *data* operand of a store is exempt: spilling a caller-saved
//    register in a prologue is idiomatic, not a use of its value.
//  * NL303 (error): a load/store whose effective address is provably outside
//    the memory map [0, mem_size) on every path. Stack-relative and
//    unbounded addresses are never flagged — only definite faults.
//  * NL304 (warning): a function returns with the stack pointer provably
//    off its entry value (per-function analysis over intraprocedural edges;
//    callees are summarized as balanced and checked separately).
//  * NL305: binding liveness. Error when a bound variable's address is
//    provably outside the memory map (the co-simulation side could never
//    read or inject it); warning when an iss_in-bound variable might not be
//    written on some path from the entry to its breakpoint.
//
// Interprocedural rules (computed from call-graph summaries; disabled with
// FlowOptions::interproc = false):
//  * NL311 (warning): a call site passes a register that is uninitialized
//    on every path to the call, and the callee (transitively) consumes that
//    entry value. At a resolved multi-target site the claim must hold for
//    every possible callee (summaries join with entry-read intersection).
//  * NL312 (error): a callee dereferences an address derived from a caller
//    argument, and with this call site's argument the access is provably
//    outside the memory map. Single-target sites only: a footprint entry of
//    a joined multi-target summary belongs to just one of the candidates.
//  * NL313 (warning): a function returns with sp provably displaced and the
//    imbalance flows in through one of its callees — the cross-call
//    counterpart of NL304, which by design trusts callees to balance.
//  * NL314 (warning): a callee provably fails to preserve a callee-saved
//    register (s0-s11) whose caller value is still live (read after the
//    call before being rewritten) — an ABI/calling-convention violation
//    with observable effect. Fires on multi-target sites too: the joined
//    exit state only proves a clobber when every candidate clobbers.
//
// Context-sensitive rules (computed in the top-down clone pass, which walks
// one clone per k-limited call string — FlowOptions::context_k; k = 0
// reproduces the joined, context-insensitive view):
//  * NL315 (warning): an iss_in-bound variable's only writes live in a
//    function that is unreachable from the entry; refines the matching
//    NL305 warning (which it replaces) with the dead-callee evidence.
//  * NL316 (error): under some call string the caller's concrete stack
//    pointer places the callee's frame stores over a bound variable's word
//    — the co-simulation binding would be silently clobbered by stack
//    growth. Needs an exact sp, which survives only in an unjoined clone;
//    with context_k = 0 the joined sp interval stays silent.
//  * NL317 (warning): a context-divergent callee-saved clobber — under this
//    call string the caller's live register value is provably initialized
//    and provably destroyed by the callee, but the context-joined view
//    (which NL314 checks) masks it behind a Mixed initialization state.
//
// When the intra- and inter-procedural passes flag the same (rule, PC,
// operand) triple, one diagnostic is emitted with a "via call from <line>"
// note instead of two entries. Clones share the same keys, so the same
// defect reached over several call strings stays one diagnostic.
//
// All rules are definite-evidence only: an inconclusive analysis stays
// silent, so a clean guest produces zero NL3xx findings.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/diag.hpp"
#include "cosim/pragma.hpp"
#include "iss/program.hpp"

namespace nisc::analysis {

struct FlowOptions {
  /// Size of the guest memory map the loads/stores must stay inside.
  std::uint64_t mem_size = std::uint64_t(1) << 20;
  /// Run the interprocedural pass (call graph + summaries + NL31x).
  bool interproc = true;
  /// Call-string depth for context-sensitive summaries and the top-down
  /// clone pass: 0 joins every caller (context-insensitive), 1 keeps one
  /// clone per immediate call site.
  std::size_t context_k = 1;
};

/// Precision counters for cosim_lint --stats (mirrors analysis::SummaryStats
/// so this header stays free of the summary machinery).
struct FlowStats {
  std::size_t functions = 0;             ///< discovered call-graph functions
  std::size_t clones = 0;                ///< materialized (function, context) clones
  std::size_t havoc_summaries = 0;       ///< clones whose summary fell back to havoc
  std::size_t narrowing_iterations = 0;  ///< descending sweeps executed
  std::size_t clone_overflows = 0;       ///< call strings folded into the root clone
};

/// Sink for flow findings; the caller applies nolint/suppression and file
/// attribution. `line` is the original source line (0 when unknown).
using FlowReport =
    std::function<void(Severity severity, std::string rule, std::string message, int line)>;

/// Runs every NL3xx rule over an assembled program and its pragma bindings.
/// When `summaries_json` is non-null and the interprocedural pass ran, it
/// receives the "context_k":K,"functions":[...] summary-dump fragment (see
/// summary.hpp); `stats`, when non-null, receives the precision counters.
void check_flow(const iss::Program& program, const std::vector<cosim::PragmaBinding>& bindings,
                const FlowOptions& options, const FlowReport& report,
                std::string* summaries_json = nullptr, FlowStats* stats = nullptr);

}  // namespace nisc::analysis
