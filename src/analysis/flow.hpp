// Flow-sensitive NL3xx rules: the analyses cosim-lint runs once a guest
// program assembles. Each rule is a pass over the basic-block CFG
// (analysis/cfg.hpp) using the worklist dataflow engine
// (analysis/dataflow.hpp) with the interval/taint register domain
// (analysis/absint.hpp).
//
//  * NL301 (warning): a pragma breakpoint address is not reachable from the
//    program entry along any CFG path — the ISS can never stop there.
//  * NL302 (warning): an instruction reads a register that is uninitialized
//    on EVERY path from the entry (x0 and sp are environment-provided).
//  * NL303 (error): a load/store whose effective address is provably outside
//    the memory map [0, mem_size) on every path. Stack-relative and
//    unbounded addresses are never flagged — only definite faults.
//  * NL304 (warning): a function returns with the stack pointer provably
//    off its entry value (per-function analysis over intraprocedural edges;
//    callees are summarized as balanced and checked separately).
//  * NL305: binding liveness. Error when a bound variable's address is
//    provably outside the memory map (the co-simulation side could never
//    read or inject it); warning when an iss_in-bound variable might not be
//    written on some path from the entry to its breakpoint.
//
// All rules are definite-evidence only: an inconclusive analysis stays
// silent, so a clean guest produces zero NL3xx findings.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "analysis/diag.hpp"
#include "cosim/pragma.hpp"
#include "iss/program.hpp"

namespace nisc::analysis {

struct FlowOptions {
  /// Size of the guest memory map the loads/stores must stay inside.
  std::uint64_t mem_size = std::uint64_t(1) << 20;
};

/// Sink for flow findings; the caller applies nolint/suppression and file
/// attribution. `line` is the original source line (0 when unknown).
using FlowReport =
    std::function<void(Severity severity, std::string rule, std::string message, int line)>;

/// Runs every NL3xx rule over an assembled program and its pragma bindings.
void check_flow(const iss::Program& program, const std::vector<cosim::PragmaBinding>& bindings,
                const FlowOptions& options, const FlowReport& report);

}  // namespace nisc::analysis
