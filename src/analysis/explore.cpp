#include "analysis/explore.hpp"

#include <algorithm>
#include <array>
#include <deque>
#include <unordered_map>

namespace nisc::analysis {

EnvOptions EnvOptions::faulty() {
  EnvOptions env;
  env.lossy = true;
  env.duplicating = true;
  env.corrupting = true;
  env.disconnecting = true;
  return env;
}

const char* violation_kind_name(ViolationKind kind) noexcept {
  switch (kind) {
    case ViolationKind::Deadlock: return "deadlock";
    case ViolationKind::UnspecifiedReception: return "unspecified-reception";
    case ViolationKind::StuckProgress: return "stuck-progress";
    case ViolationKind::DuplicateEffect: return "duplicate-effect";
    case ViolationKind::LostAck: return "lost-ack";
  }
  return "?";
}

const char* violation_rule(ViolationKind kind) noexcept {
  switch (kind) {
    case ViolationKind::Deadlock: return "NL410";
    case ViolationKind::UnspecifiedReception: return "NL411";
    case ViolationKind::StuckProgress: return "NL412";
    case ViolationKind::DuplicateEffect: return "NL413";
    case ViolationKind::LostAck: return "NL414";
  }
  return "NL410";
}

namespace {

/// One global state of the composition: both endpoint states plus, per
/// channel, a FIFO each way and a liveness flag. The crash-environment
/// bookkeeping (effect masks, last checkpoint, crash budget) rides along so
/// duplicate/lost effects are distinguishable global states, not a property
/// recovered from traces.
struct GlobalState {
  int a = 0;
  int b = 0;
  /// queues[channel][0] carries A->B, queues[channel][1] carries B->A.
  std::vector<std::array<std::vector<int>, 2>> queues;
  std::vector<char> open;
  int crashes = 0;   ///< crash/respawn cycles taken so far
  int b_ckpt = -1;   ///< B state restored on respawn; -1 = CrashSpec::b_restart
  int dup_effect = -1;  ///< unit applied twice by A (NL413), else -1
  std::uint32_t a_mask = 0;       ///< units A has applied (ProtoTransition::apply_effect)
  std::uint32_t b_mask = 0;       ///< units B has retired (ProtoTransition::retire_effect)
  std::uint32_t b_ckpt_mask = 0;  ///< b_mask recorded by the last checkpoint
};

std::string key_of(const GlobalState& s) {
  std::string key = std::to_string(s.a) + "." + std::to_string(s.b);
  for (std::size_t c = 0; c < s.queues.size(); ++c) {
    key += s.open[c] != 0 ? "|" : "!";
    for (int dir = 0; dir < 2; ++dir) {
      for (int sym : s.queues[c][dir]) key += static_cast<char>('a' + sym);
      if (dir == 0) key += "/";
    }
  }
  if (s.crashes != 0 || s.a_mask != 0 || s.b_mask != 0 || s.b_ckpt >= 0 || s.dup_effect >= 0) {
    key += '#';
    for (int v : {s.crashes, static_cast<int>(s.a_mask), static_cast<int>(s.b_mask), s.b_ckpt,
                  static_cast<int>(s.b_ckpt_mask), s.dup_effect}) {
      key += std::to_string(v);
      key += '.';
    }
  }
  return key;
}

/// NL414: after a recovery, B sits in a state awaiting the ack of an effect
/// A has already applied but B never retired — the ack is gone for good when
/// no replay re-ack can reach B. Returns the starved unit, or -1.
int lost_ack_unit(const ProtocolModel& model, const GlobalState& s) {
  if (s.crashes == 0) return -1;
  const int unit = model.endpoint_b.state(s.b).awaiting_effect;
  if (unit < 0 || unit >= 32) return -1;
  const std::uint32_t bit = 1u << unit;
  if ((s.a_mask & bit) == 0 || (s.b_mask & bit) != 0) return -1;
  return unit;
}

/// Connection-reset semantics: a closed endpoint never consumes its inbox,
/// so clear it to keep dead letters from blocking the composition forever.
void apply_closed_clearing(const ProtocolModel& model, GlobalState& s) {
  if (model.endpoint_a.state(s.a).closed) {
    for (auto& q : s.queues) q[1].clear();
  }
  if (model.endpoint_b.state(s.b).closed) {
    for (auto& q : s.queues) q[0].clear();
  }
}

bool accepting(const ProtocolModel& model, const GlobalState& s) {
  if (!model.endpoint_a.state(s.a).accepting) return false;
  if (!model.endpoint_b.state(s.b).accepting) return false;
  for (const auto& q : s.queues) {
    if (!q[0].empty() || !q[1].empty()) return false;
  }
  return true;
}

std::string render_state(const ProtocolModel& model, const GlobalState& s) {
  std::string out = model.endpoint_a.role() + "=" + model.endpoint_a.state(s.a).name + " " +
                    model.endpoint_b.role() + "=" + model.endpoint_b.state(s.b).name;
  for (std::size_t c = 0; c < s.queues.size(); ++c) {
    if (s.open[c] == 0) out += " " + model.channel_name(static_cast<int>(c)) + "=cut";
    for (int dir = 0; dir < 2; ++dir) {
      if (s.queues[c][dir].empty()) continue;
      out += " " + model.channel_name(static_cast<int>(c)) + (dir == 0 ? "[a->b]=" : "[b->a]=");
      for (std::size_t i = 0; i < s.queues[c][dir].size(); ++i) {
        if (i > 0) out += ",";
        out += model.symbol_name(s.queues[c][dir][i]);
      }
    }
  }
  return out;
}

struct Successor {
  GlobalState state;
  TraceStep step;
};

const char* effect_suffix(TraceStep::Effect effect) {
  switch (effect) {
    case TraceStep::Effect::Normal: return "";
    case TraceStep::Effect::Lost: return " [lost]";
    case TraceStep::Effect::Duplicated: return " [duplicated]";
    case TraceStep::Effect::Corrupted: return " [arrives as garbage]";
    case TraceStep::Effect::Cut: return "";
    case TraceStep::Effect::Crashed: return "";
  }
  return "";
}

/// Folds a transition's crash-bookkeeping tags into the successor state.
/// Applying a unit whose mask bit is already set is the NL413 witness.
void apply_crash_tags(const ProtoTransition& t, GlobalState& next) {
  if (t.apply_effect >= 0 && t.apply_effect < 32) {
    const std::uint32_t bit = 1u << t.apply_effect;
    if ((next.a_mask & bit) != 0 && next.dup_effect < 0) next.dup_effect = t.apply_effect;
    next.a_mask |= bit;
  }
  if (t.retire_effect >= 0 && t.retire_effect < 32) {
    next.b_mask |= 1u << t.retire_effect;
  }
  if (t.ckpt_state >= 0) {
    next.b_ckpt = t.ckpt_state;
    next.b_ckpt_mask = t.ckpt_mask;
  }
}

/// Appends every move available to one endpoint ('A' or 'B').
void endpoint_successors(const ProtocolModel& model, const EnvOptions& env, const GlobalState& s,
                         char who, std::vector<Successor>& out) {
  const bool is_a = who == 'A';
  const ProtocolAutomaton& self = is_a ? model.endpoint_a : model.endpoint_b;
  const ProtocolAutomaton& peer = is_a ? model.endpoint_b : model.endpoint_a;
  const int own_state = is_a ? s.a : s.b;
  const int peer_state = is_a ? s.b : s.a;
  const int out_dir = is_a ? 0 : 1;  // queue index this endpoint sends into
  const int in_dir = is_a ? 1 : 0;

  const auto emit = [&](const ProtoTransition& t, TraceStep step, auto&& mutate_queues) {
    Successor succ;
    succ.state = s;
    (is_a ? succ.state.a : succ.state.b) = t.to;
    mutate_queues(succ.state);
    apply_crash_tags(t, succ.state);
    apply_closed_clearing(model, succ.state);
    succ.step = std::move(step);
    succ.step.endpoint = who;
    out.push_back(std::move(succ));
  };

  for (const ProtoTransition& t : self.from(own_state)) {
    if (t.kind == ActionKind::Internal) {
      TraceStep step;
      step.kind = ActionKind::Internal;
      step.text = self.role() + ": " + t.label;
      emit(t, std::move(step), [](GlobalState&) {});
      continue;
    }
    const auto ch = static_cast<std::size_t>(t.channel);
    if (t.kind == ActionKind::Recv) {
      const std::vector<int>& inbox = s.queues[ch][static_cast<std::size_t>(in_dir)];
      if (inbox.empty() || inbox.front() != t.symbol) continue;
      TraceStep step;
      step.kind = ActionKind::Recv;
      step.symbol = t.symbol;
      step.channel = t.channel;
      step.text = self.role() + " receives " + model.symbol_name(t.symbol) + " on " +
                  model.channel_name(t.channel);
      emit(t, std::move(step), [&](GlobalState& next) {
        auto& q = next.queues[ch][static_cast<std::size_t>(in_dir)];
        q.erase(q.begin());
      });
      continue;
    }

    // Send.
    if (s.open[ch] == 0) continue;  // cut channel: the write blocks/fails
    const auto send_step = [&](TraceStep::Effect effect) {
      TraceStep step;
      step.kind = ActionKind::Send;
      step.symbol = t.symbol;
      step.channel = t.channel;
      step.effect = effect;
      step.text = self.role() + " sends " + model.symbol_name(t.symbol) + " on " +
                  model.channel_name(t.channel) + effect_suffix(effect);
      return step;
    };
    if (peer.state(peer_state).closed) {
      // Peer tore its wire down: the bytes go nowhere (connection reset).
      TraceStep step = send_step(TraceStep::Effect::Normal);
      step.text += " (peer closed, discarded)";
      emit(t, std::move(step), [](GlobalState&) {});
      continue;
    }
    const std::vector<int>& outbox = s.queues[ch][static_cast<std::size_t>(out_dir)];
    if (outbox.size() >= env.channel_capacity) continue;  // backpressure
    emit(t, send_step(TraceStep::Effect::Normal), [&](GlobalState& next) {
      next.queues[ch][static_cast<std::size_t>(out_dir)].push_back(t.symbol);
    });
    if (env.lossy) {
      emit(t, send_step(TraceStep::Effect::Lost), [](GlobalState&) {});
    }
    if (env.duplicating && outbox.size() + 2 <= env.channel_capacity) {
      emit(t, send_step(TraceStep::Effect::Duplicated), [&](GlobalState& next) {
        auto& q = next.queues[ch][static_cast<std::size_t>(out_dir)];
        q.push_back(t.symbol);
        q.push_back(t.symbol);
      });
    }
    if (env.corrupting && model.garbage_symbol >= 0) {
      emit(t, send_step(TraceStep::Effect::Corrupted), [&](GlobalState& next) {
        next.queues[ch][static_cast<std::size_t>(out_dir)].push_back(model.garbage_symbol);
      });
    }
  }
}

/// The crash move: the environment kills endpoint B mid-run and the
/// supervisor respawns it. Modeled atomically — B restarts from its last
/// checkpoint (or CrashSpec::b_restart when none), every in-flight queue is
/// flushed (SIGKILL + fresh sockets), A snaps from a handshake state back to
/// serving (Hello/Start/Resume never ride the modeled wire), and the
/// environment re-delivers the interrupt for every unit that was applied by
/// A but is unretired in the restored B — exactly Supervisor::recover()'s
/// irq-log replay. Only offered in A states where the real supervisor polls
/// (handlers run atomically between polls).
void crash_successors(const ProtocolModel& model, const EnvOptions& env, const GlobalState& s,
                      std::vector<Successor>& out) {
  const CrashSpec& crash = model.crash;
  if (!env.crashing || !crash.enabled) return;
  if (s.crashes >= static_cast<int>(env.max_crashes)) return;
  if (model.endpoint_b.state(s.b).closed) return;
  const auto a_in = [&](const std::vector<int>& states) {
    return std::find(states.begin(), states.end(), s.a) != states.end();
  };
  const bool in_handshake = a_in(crash.a_handshake_states);
  if (!in_handshake && !a_in(crash.a_stable_states)) return;

  Successor succ;
  succ.state = s;
  GlobalState& next = succ.state;
  ++next.crashes;
  const bool from_ckpt = s.b_ckpt >= 0;
  next.b = from_ckpt ? s.b_ckpt : crash.b_restart;
  next.b_mask = from_ckpt ? s.b_ckpt_mask : 0;
  if (in_handshake) next.a = crash.a_serve;
  for (auto& q : next.queues) {
    q[0].clear();
    q[1].clear();
  }
  std::string resent;
  for (int u = 0; u < crash.units && u < static_cast<int>(crash.unit_irq_symbols.size()); ++u) {
    const int sym = crash.unit_irq_symbols[static_cast<std::size_t>(u)];
    if (sym < 0 || crash.irq_channel < 0) continue;
    const std::uint32_t bit = 1u << u;
    if ((next.a_mask & bit) == 0 || (next.b_mask & bit) != 0) continue;
    next.queues[static_cast<std::size_t>(crash.irq_channel)][0].push_back(sym);
    if (!resent.empty()) resent += ",";
    resent += model.symbol_name(sym);
  }
  succ.step.endpoint = 'E';
  succ.step.kind = ActionKind::Internal;
  succ.step.effect = TraceStep::Effect::Crashed;
  succ.step.text = "environment kills " + model.endpoint_b.role() + "; respawn from " +
                   model.endpoint_b.state(next.b).name +
                   (resent.empty() ? "" : " (irq re-sent: " + resent + ")");
  out.push_back(std::move(succ));
}

std::vector<Successor> successors(const ProtocolModel& model, const EnvOptions& env,
                                  const GlobalState& s) {
  std::vector<Successor> out;
  endpoint_successors(model, env, s, 'A', out);
  endpoint_successors(model, env, s, 'B', out);
  crash_successors(model, env, s, out);
  if (env.disconnecting) {
    for (std::size_t c = 0; c < s.open.size(); ++c) {
      if (s.open[c] == 0) continue;
      Successor succ;
      succ.state = s;
      succ.state.open[c] = 0;
      succ.state.queues[c][0].clear();
      succ.state.queues[c][1].clear();
      succ.step.endpoint = 'E';
      succ.step.kind = ActionKind::Internal;
      succ.step.channel = static_cast<int>(c);
      succ.step.effect = TraceStep::Effect::Cut;
      succ.step.text = "environment cuts channel " + model.channel_name(static_cast<int>(c));
      out.push_back(std::move(succ));
    }
  }
  return out;
}

/// Dedup key: two counterexamples reaching the same violating state through
/// the same fault attribution are the same bug.
std::string violation_key(ViolationKind kind, const GlobalState& s,
                          const std::vector<TraceStep>& trace) {
  int faults_a = 0;
  int faults_b = 0;
  int cuts = 0;
  int crashes = 0;
  for (const TraceStep& step : trace) {
    if (step.effect == TraceStep::Effect::Normal) continue;
    if (step.effect == TraceStep::Effect::Cut) {
      ++cuts;
    } else if (step.effect == TraceStep::Effect::Crashed) {
      ++crashes;
    } else if (step.endpoint == 'A') {
      ++faults_a;
    } else {
      ++faults_b;
    }
  }
  return std::string(violation_kind_name(kind)) + "#" + key_of(s) + "#" +
         std::to_string(faults_a) + "." + std::to_string(faults_b) + "." + std::to_string(cuts) +
         "." + std::to_string(crashes);
}

}  // namespace

ExploreReport explore(const ProtocolModel& model, const EnvOptions& env,
                      const ExploreLimits& limits) {
  ExploreReport report;
  report.model = model.name;
  report.env = env;

  struct Node {
    GlobalState state;
    int parent = -1;
    TraceStep step;  ///< edge from parent
    bool accept = false;
    bool dead = false;  ///< no successors, not accepting
  };
  std::vector<Node> nodes;
  std::vector<std::vector<int>> children;
  std::unordered_map<std::string, int> visited;
  std::deque<int> frontier;

  GlobalState initial;
  initial.queues.resize(model.channels.size());
  initial.open.assign(model.channels.size(), 1);

  nodes.push_back(Node{initial, -1, {}, accepting(model, initial), false});
  children.emplace_back();
  visited.emplace(key_of(initial), 0);
  frontier.push_back(0);

  const auto trace_to = [&](int id) {
    std::vector<TraceStep> trace;
    for (int cur = id; cur > 0; cur = nodes[static_cast<std::size_t>(cur)].parent) {
      trace.push_back(nodes[static_cast<std::size_t>(cur)].step);
    }
    std::reverse(trace.begin(), trace.end());
    return trace;
  };

  std::vector<std::string> seen_keys;
  std::size_t count_by_kind[5] = {};
  const auto add_violation = [&](ViolationKind kind, int id) {
    if (count_by_kind[static_cast<int>(kind)] >= limits.max_violations_per_kind) return;
    const Node& node = nodes[static_cast<std::size_t>(id)];
    std::vector<TraceStep> trace = trace_to(id);
    std::string key = violation_key(kind, node.state, trace);
    for (const std::string& seen : seen_keys) {
      if (seen == key) return;
    }
    seen_keys.push_back(std::move(key));
    ++count_by_kind[static_cast<int>(kind)];
    report.violations.push_back(
        Counterexample{kind, std::move(trace), render_state(model, node.state)});
  };

  while (!frontier.empty()) {
    const int id = frontier.front();
    frontier.pop_front();
    // Copy out: successor insertion reallocates `nodes`.
    const GlobalState state = nodes[static_cast<std::size_t>(id)].state;
    std::vector<Successor> succs = successors(model, env, state);
    report.edges += succs.size();
    if (succs.empty() && !nodes[static_cast<std::size_t>(id)].accept) {
      nodes[static_cast<std::size_t>(id)].dead = true;
      bool queued = false;
      for (const auto& q : state.queues) {
        if (!q[0].empty() || !q[1].empty()) queued = true;
      }
      // A post-recovery ack starvation is the sharper diagnosis than the
      // generic deadlock/unspecified-reception it manifests as.
      if (lost_ack_unit(model, state) >= 0) {
        add_violation(ViolationKind::LostAck, id);
      } else {
        add_violation(queued ? ViolationKind::UnspecifiedReception : ViolationKind::Deadlock, id);
      }
    }
    for (Successor& succ : succs) {
      std::string key = key_of(succ.state);
      auto [it, inserted] = visited.emplace(std::move(key), static_cast<int>(nodes.size()));
      if (!inserted) {
        children[static_cast<std::size_t>(id)].push_back(it->second);
        continue;
      }
      if (nodes.size() >= limits.max_states) {
        report.complete = false;
        visited.erase(it);
        break;
      }
      const int child = static_cast<int>(nodes.size());
      const bool accept = accepting(model, succ.state);
      const bool fresh_dup =
          succ.state.dup_effect >= 0 && state.dup_effect < 0;  // this edge re-applied the unit
      nodes.push_back(Node{std::move(succ.state), id, std::move(succ.step), accept, false});
      children[static_cast<std::size_t>(id)].push_back(child);
      children.emplace_back();
      frontier.push_back(child);
      if (fresh_dup) add_violation(ViolationKind::DuplicateEffect, child);
    }
    if (!report.complete) break;
  }
  report.states = nodes.size();

  // Stuck-progress: states from which no accepting state is reachable.
  // Needs the full graph, so skip when the search was truncated.
  if (report.complete) {
    std::vector<std::vector<int>> parents_of(nodes.size());
    for (std::size_t from = 0; from < children.size(); ++from) {
      for (int to : children[from]) {
        parents_of[static_cast<std::size_t>(to)].push_back(static_cast<int>(from));
      }
    }
    std::vector<char> can_accept(nodes.size(), 0);
    std::deque<int> work;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      if (nodes[i].accept) {
        can_accept[i] = 1;
        work.push_back(static_cast<int>(i));
      }
    }
    while (!work.empty()) {
      const int id = work.front();
      work.pop_front();
      for (int parent : parents_of[static_cast<std::size_t>(id)]) {
        if (can_accept[static_cast<std::size_t>(parent)] == 0) {
          can_accept[static_cast<std::size_t>(parent)] = 1;
          work.push_back(parent);
        }
      }
    }
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      // Deadlocks are already reported with their sharper rule.
      if (can_accept[i] == 0 && !nodes[i].dead) {
        add_violation(lost_ack_unit(model, nodes[i].state) >= 0 ? ViolationKind::LostAck
                                                                : ViolationKind::StuckProgress,
                      static_cast<int>(i));
      }
    }
  }
  return report;
}

namespace {

std::string render_trace_line(const Counterexample& ce) {
  std::string out;
  for (std::size_t i = 0; i < ce.trace.size(); ++i) {
    if (i > 0) out += "; ";
    out += ce.trace[i].text;
  }
  return out.empty() ? "<initial state>" : out;
}

}  // namespace

void report_violations(const ExploreReport& report, DiagEngine& diags) {
  const SourceLoc loc{"<model:" + report.model + ">", 0, 0};
  for (const Counterexample& ce : report.violations) {
    diags.report(Severity::Error, violation_rule(ce.kind),
                 std::string(violation_kind_name(ce.kind)) + " at " + ce.state +
                     "; trace: " + render_trace_line(ce),
                 loc);
  }
}

std::string render_text(const ExploreReport& report) {
  std::string out = "model " + report.model + ": " + std::to_string(report.states) + " states, " +
                    std::to_string(report.edges) + " edges" +
                    (report.complete ? "" : " (truncated at the state limit)") + "\n";
  if (report.violations.empty()) {
    out += report.complete
               ? "  clean: no deadlock, unspecified reception, or stuck-progress state\n"
               : "  no violation found before truncation (raise the state limit to conclude)\n";
    return out;
  }
  for (const Counterexample& ce : report.violations) {
    out += std::string("  [") + violation_rule(ce.kind) + "] " + violation_kind_name(ce.kind) +
           " at " + ce.state + "\n";
    for (std::size_t i = 0; i < ce.trace.size(); ++i) {
      out += "    " + std::to_string(i + 1) + ". " + ce.trace[i].text + "\n";
    }
  }
  return out;
}

std::string render_json(const ExploreReport& report) {
  std::string out;
  const auto field = [&out](const char* name, const std::string& value, bool quoted) {
    if (!out.empty() && out.back() != '{' && out.back() != '[') out += ",";
    out += "\"";
    out += name;
    out += quoted ? "\":\"" : "\":";
    out += value;
    if (quoted) out += "\"";
  };
  const auto flag = [](bool b) { return std::string(b ? "true" : "false"); };
  out += "{";
  field("model", json_escape(report.model), true);
  out += ",\"env\":{";
  field("capacity", std::to_string(report.env.channel_capacity), false);
  field("lossy", flag(report.env.lossy), false);
  field("duplicating", flag(report.env.duplicating), false);
  field("corrupting", flag(report.env.corrupting), false);
  field("disconnecting", flag(report.env.disconnecting), false);
  field("crashing", flag(report.env.crashing), false);
  field("max_crashes", std::to_string(report.env.max_crashes), false);
  out += "}";
  field("states", std::to_string(report.states), false);
  field("edges", std::to_string(report.edges), false);
  field("complete", flag(report.complete), false);
  out += ",\"violations\":[";
  for (std::size_t i = 0; i < report.violations.size(); ++i) {
    const Counterexample& ce = report.violations[i];
    if (i > 0) out += ",";
    out += "{";
    field("kind", violation_kind_name(ce.kind), true);
    field("rule", violation_rule(ce.kind), true);
    field("state", json_escape(ce.state), true);
    out += ",\"trace\":[";
    for (std::size_t j = 0; j < ce.trace.size(); ++j) {
      if (j > 0) out += ",";
      out += "\"";
      out += json_escape(ce.trace[j].text);
      out += "\"";
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

FaultPlanResult fault_plan_for(const Counterexample& ce, char endpoint) {
  FaultPlanResult result;
  std::uint64_t nth = 0;
  for (const TraceStep& step : ce.trace) {
    if (step.effect == TraceStep::Effect::Cut || step.effect == TraceStep::Effect::Crashed) {
      // A FaultPlan speaks wire faults only; crash placement needs the
      // crash-matrix harness (CrashAt / chaos knobs) instead.
      result.complete = false;
      continue;
    }
    if (step.kind != ActionKind::Send) continue;
    if (step.endpoint == endpoint) ++nth;
    if (step.effect == TraceStep::Effect::Normal) continue;
    if (step.endpoint != endpoint) {
      result.complete = false;
      continue;
    }
    switch (step.effect) {
      case TraceStep::Effect::Lost: result.plan.drop_send(nth); break;
      case TraceStep::Effect::Duplicated: result.plan.duplicate_send(nth); break;
      case TraceStep::Effect::Corrupted: result.plan.corrupt_send(nth, 4); break;
      default: result.complete = false; break;
    }
  }
  return result;
}

}  // namespace nisc::analysis
