#include "analysis/flow.hpp"

#include <map>
#include <set>

#include "analysis/absint.hpp"
#include "analysis/cfg.hpp"
#include "analysis/dataflow.hpp"

namespace nisc::analysis {
namespace {

using iss::Op;

bool is_load(Op op) {
  return op == Op::Lb || op == Op::Lh || op == Op::Lw || op == Op::Lbu || op == Op::Lhu;
}
bool is_store(Op op) { return op == Op::Sb || op == Op::Sh || op == Op::Sw; }

std::uint32_t access_size(Op op) {
  switch (op) {
    case Op::Lb: case Op::Lbu: case Op::Sb: return 1;
    case Op::Lh: case Op::Lhu: case Op::Sh: return 2;
    default: return 4;
  }
}

bool is_ret(const iss::Instr& in) {
  return in.op == Op::Jalr && in.rd == 0 && in.rs1 == 1 && in.imm == 0;
}

const char* reg_name(std::uint8_t r) {
  static const char* names[32] = {"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
                                  "s0",   "s1", "a0", "a1", "a2", "a3", "a4", "a5",
                                  "a6",   "a7", "s2", "s3", "s4", "s5", "s6", "s7",
                                  "s8",   "s9", "s10", "s11", "t3", "t4", "t5", "t6"};
  return names[r & 31];
}

/// State at `addr` inside its block: the block in-state transferred through
/// every preceding instruction. Returns false when the block is unreachable.
bool state_before(const Cfg& cfg, const DataflowResult<RegDomain>& flow, const RegDomain& domain,
                  std::uint32_t addr, RegState& out) {
  std::size_t b = cfg.block_at(addr);
  if (b == Cfg::npos || !flow.in[b]) return false;
  out = *flow.in[b];
  for (const CfgInstr& ci : cfg.blocks()[b].instrs) {
    if (ci.addr == addr) return true;
    domain.transfer(ci, out);
  }
  return false;
}

/// NL301: every pragma breakpoint must be reachable from the entry.
void check_reachability(const Cfg& cfg, const iss::Program& program,
                        const std::vector<cosim::PragmaBinding>& bindings,
                        const std::vector<bool>& reachable, const FlowReport& report) {
  for (const cosim::PragmaBinding& b : bindings) {
    if (!program.has_symbol(b.label)) continue;  // lint.asm already fired
    std::size_t block = cfg.block_at(program.symbols.at(b.label));
    if (block == Cfg::npos) continue;  // label points into data, not code
    if (!reachable[block]) {
      report(Severity::Warning, "NL301",
             "breakpoint for port '" + b.port + "' on line " + std::to_string(b.breakpoint_line) +
                 " is unreachable from the program entry; the ISS can never stop there",
             b.breakpoint_line);
    }
  }
}

/// NL302 + NL303: replay each reachable block from its fixpoint in-state,
/// flagging definite uninitialized reads and definite out-of-map accesses.
void check_values(const Cfg& cfg, const DataflowResult<RegDomain>& flow, const RegDomain& domain,
                  const FlowOptions& options, const FlowReport& report) {
  std::set<std::pair<std::uint32_t, std::uint8_t>> reported_uninit;
  std::set<std::uint32_t> reported_oob;
  for (std::size_t b = 0; b < cfg.blocks().size(); ++b) {
    if (!flow.in[b]) continue;
    RegState state = *flow.in[b];
    for (const CfgInstr& ci : cfg.blocks()[b].instrs) {
      for (std::uint8_t r : RegDomain::regs_read(ci.instr)) {
        if (r == 0) continue;
        if (state.regs[r].init == AbsValue::Init::Uninit &&
            reported_uninit.emplace(ci.addr, r).second) {
          // Messages in this pass are built with += : chained operator+
          // trips a spurious GCC 12 -Wrestrict at -O2.
          std::string message = "'";
          message += iss::disassemble(ci.instr);
          message += "' reads register ";
          message += reg_name(r);
          message += " which is never written on any path from the entry";
          report(Severity::Warning, "NL302", std::move(message), ci.line);
        }
      }
      if (is_load(ci.instr.op) || is_store(ci.instr.op)) {
        AbsValue addr = RegDomain::effective_address(state, ci.instr);
        // Only base-less bounded intervals can prove an access out of map;
        // sp-relative and unbounded addresses stay silent.
        if (addr.base == AbsValue::Base::None && !addr.range.is_top()) {
          std::int64_t limit = static_cast<std::int64_t>(options.mem_size) - access_size(ci.instr.op);
          if ((addr.range.lo > limit || addr.range.hi < 0) && reported_oob.insert(ci.addr).second) {
            std::string message = "'";
            message += iss::disassemble(ci.instr);
            message += "' accesses address ";
            if (addr.range.is_exact()) {
              message += std::to_string(addr.range.lo);
            } else {
              message += "[";
              message += std::to_string(addr.range.lo);
              message += ", ";
              message += std::to_string(addr.range.hi);
              message += "]";
            }
            message += " which is outside the ";
            message += std::to_string(options.mem_size);
            message += "-byte memory map on every path";
            report(Severity::Error, "NL303", std::move(message), ci.line);
          }
        }
      }
      domain.transfer(ci, state);
    }
  }
}

/// NL304: per-function stack balance. Each function (the entry plus every
/// call target) is analyzed over intraprocedural edges with callees
/// summarized as balanced; at every reachable `ret` the stack pointer must
/// be provably back at its entry value.
void check_stack_balance(const Cfg& cfg, const iss::Program& program, const FlowReport& report) {
  std::vector<std::uint32_t> roots = cfg.call_targets();
  roots.push_back(program.entry);
  std::set<std::size_t> seen_roots;
  std::set<std::uint32_t> reported;
  RegDomain domain;
  for (std::uint32_t root : roots) {
    std::size_t entry = cfg.block_at(root);
    if (entry == Cfg::npos || !seen_roots.insert(entry).second) continue;
    DataflowResult<RegDomain> flow = run_forward(cfg, domain, kIntraprocEdges, entry);
    for (std::size_t b = 0; b < cfg.blocks().size(); ++b) {
      if (!flow.in[b]) continue;
      const CfgInstr& last = cfg.blocks()[b].instrs.back();
      if (!is_ret(last.instr)) continue;
      RegState state;
      if (!state_before(cfg, flow, domain, last.addr, state)) continue;
      const AbsValue& sp = state.regs[2];
      // Only a provable imbalance fires: sp must still be sp0-relative with
      // an exact non-zero offset. A repointed or unbounded sp stays silent.
      if (sp.base == AbsValue::Base::Sp && sp.range.is_exact() && sp.range.lo != 0 &&
          reported.insert(last.addr).second) {
        report(Severity::Warning, "NL304",
               "function entered at address " + std::to_string(root) + " returns with sp " +
                   std::to_string(sp.range.lo) + " bytes away from its entry value",
               last.line);
      }
    }
  }
}

/// NL305: binding liveness. A bound variable must live inside the memory
/// map, and an iss_in-bound variable must be written on every path from the
/// entry to its breakpoint.
void check_binding_liveness(const Cfg& cfg, const DataflowResult<RegDomain>& flow,
                            const RegDomain& domain, const iss::Program& program,
                            const std::vector<cosim::PragmaBinding>& bindings,
                            const FlowOptions& options, const FlowReport& report) {
  for (const cosim::PragmaBinding& b : bindings) {
    if (!program.has_symbol(b.variable)) continue;  // lint.variable-undefined already fired
    std::uint32_t var_addr = program.symbols.at(b.variable);
    if (static_cast<std::uint64_t>(var_addr) + 4 > options.mem_size) {
      report(Severity::Error, "NL305",
             "variable '" + b.variable + "' bound to port '" + b.port + "' lives at address " +
                 std::to_string(var_addr) + ", outside the " + std::to_string(options.mem_size) +
                 "-byte memory map; the binding can never carry data",
             b.pragma_line);
      continue;
    }
    if (b.direction != cosim::BindDirection::IssToSc) continue;
    if (!program.has_symbol(b.label)) continue;
    int tracked = domain.tracked_index(var_addr);
    if (tracked < 0) continue;  // more bindings than tracked slots: stay silent
    RegState state;
    if (!state_before(cfg, flow, domain, program.symbols.at(b.label), state)) continue;
    if ((state.written & (std::uint64_t(1) << tracked)) == 0) {
      report(Severity::Warning, "NL305",
             "variable '" + b.variable + "' bound to iss_in port '" + b.port +
                 "' may reach its breakpoint on line " + std::to_string(b.breakpoint_line) +
                 " without being written; the port would sample a stale value",
             b.pragma_line);
    }
  }
}

}  // namespace

void check_flow(const iss::Program& program, const std::vector<cosim::PragmaBinding>& bindings,
                const FlowOptions& options, const FlowReport& report) {
  Cfg cfg = Cfg::build(program);
  if (cfg.blocks().empty() || cfg.entry() == Cfg::npos) return;

  std::vector<std::uint32_t> tracked;
  for (const cosim::PragmaBinding& b : bindings) {
    if (b.direction == cosim::BindDirection::IssToSc && program.has_symbol(b.variable)) {
      tracked.push_back(program.symbols.at(b.variable));
    }
  }
  RegDomain domain(std::move(tracked));

  std::vector<bool> reachable = reachable_blocks(cfg, cfg.entry(), kInterprocEdges);
  DataflowResult<RegDomain> flow = run_forward(cfg, domain, kInterprocEdges, cfg.entry());

  check_reachability(cfg, program, bindings, reachable, report);
  check_values(cfg, flow, domain, options, report);
  check_stack_balance(cfg, program, report);
  check_binding_liveness(cfg, flow, domain, program, bindings, options, report);
}

}  // namespace nisc::analysis
